// AtomTable unit tests (ISSUE 7 satellite): the kAtomInvalid (0xFFFFFFFF) vs
// kAtomEmpty (0) asymmetry, interning across index growth, reference
// stability, and the concurrent-read/seldom-write contract (cross-thread
// intern-then-NameOf under TSAN).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/lang/atoms.h"

namespace turnstile {
namespace {

TEST(AtomTableTest, EmptyStringIsAtomZeroNotInvalid) {
  AtomTable table;
  // The asymmetry hazard: Find("") must return the *valid* atom 0, never the
  // kAtomInvalid sentinel — callers that treat atoms as truthy would conflate
  // the two.
  EXPECT_EQ(table.Find(""), kAtomEmpty);
  EXPECT_EQ(table.Intern(""), kAtomEmpty);
  EXPECT_NE(kAtomEmpty, kAtomInvalid);
  EXPECT_EQ(table.NameOf(kAtomEmpty), "");
}

TEST(AtomTableTest, FindNeverInternedReturnsInvalid) {
  AtomTable table;
  EXPECT_EQ(table.Find("never-interned"), kAtomInvalid);
  // Probing must not have grown the table.
  EXPECT_EQ(table.size(), 1u);  // just the empty string
  // NameOf on the sentinel (or any out-of-range atom) is the empty string,
  // not a crash — same contract as before the concurrent rewrite.
  EXPECT_EQ(table.NameOf(kAtomInvalid), "");
  EXPECT_EQ(table.NameOf(12345), "");
}

TEST(AtomTableTest, InternIsIdempotentAndFindAgrees) {
  AtomTable table;
  Atom a = table.Intern("alpha");
  Atom b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("alpha"), a);
  EXPECT_EQ(table.Find("alpha"), a);
  EXPECT_EQ(table.Find("beta"), b);
  EXPECT_EQ(table.NameOf(a), "alpha");
  EXPECT_EQ(table.NameOf(b), "beta");
}

TEST(AtomTableTest, SurvivesIndexGrowthAndKeepsReferencesStable) {
  AtomTable table;
  // 40k atoms: crosses the initial 1024-slot index several doublings and
  // spills into multiple storage chunks (8192 strings each).
  constexpr int kCount = 40000;
  std::vector<Atom> atoms;
  atoms.reserve(kCount);
  const std::string& first = table.NameOf(table.Intern("atom-0"));
  for (int i = 1; i < kCount; ++i) {
    atoms.push_back(table.Intern("atom-" + std::to_string(i)));
  }
  // The reference taken before any growth still points at live storage.
  EXPECT_EQ(first, "atom-0");
  for (int i = 1; i < kCount; ++i) {
    EXPECT_EQ(table.Find("atom-" + std::to_string(i)), atoms[i - 1]);
    if (i % 5000 == 0) {
      EXPECT_EQ(table.NameOf(atoms[i - 1]), "atom-" + std::to_string(i));
    }
  }
  EXPECT_EQ(table.size(), static_cast<size_t>(kCount) + 1);  // + atom 0
}

TEST(AtomTableTest, CrossThreadInternThenNameOfIsStable) {
  AtomTable table;
  // Writers intern disjoint key ranges while readers continuously Find and
  // NameOf whatever is already published. Under TSAN this is the data-race
  // proof for the lock-free read paths.
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 4000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        size_t size = table.size();
        for (Atom a = 0; a < size; a += 97) {
          const std::string& name = table.NameOf(a);
          // Every published atom must round-trip through Find.
          EXPECT_EQ(table.Find(name), a);
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        std::string name = "w" + std::to_string(w) + "-" + std::to_string(i);
        Atom atom = table.Intern(name);
        // Intern-then-NameOf stability: the returned atom resolves to the
        // interned spelling immediately on the interning thread.
        EXPECT_EQ(table.NameOf(atom), name);
        EXPECT_EQ(table.Find(name), atom);
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_EQ(table.size(), static_cast<size_t>(kWriters) * kPerWriter + 1);
  // Post-join: every atom interned by every writer is observable everywhere.
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPerWriter; i += 500) {
      std::string name = "w" + std::to_string(w) + "-" + std::to_string(i);
      Atom atom = table.Find(name);
      ASSERT_NE(atom, kAtomInvalid) << name;
      EXPECT_EQ(table.NameOf(atom), name);
    }
  }
}

TEST(AtomTableTest, ConcurrentInternOfTheSameKeysConverges) {
  AtomTable table;
  // All threads intern the SAME key set: exactly one atom per key must win,
  // and every thread must agree on the winner.
  constexpr int kThreads = 4;
  constexpr int kKeys = 2000;
  std::vector<std::vector<Atom>> seen(kThreads, std::vector<Atom>(kKeys));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kKeys; ++i) {
        seen[t][i] = table.Intern("shared-" + std::to_string(i));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]);
  }
  EXPECT_EQ(table.size(), static_cast<size_t>(kKeys) + 1);
}

TEST(AtomTableTest, GlobalHelpersShareOneTable) {
  Atom a = InternAtom("global-helper-key");
  EXPECT_EQ(AtomTable::Global().Find("global-helper-key"), a);
  EXPECT_EQ(AtomName(a), "global-helper-key");
}

}  // namespace
}  // namespace turnstile
