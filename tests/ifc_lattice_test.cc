// Privacy-rule DAG: flow queries, cycle detection, reachability cache.
#include "src/ifc/lattice.h"

#include <gtest/gtest.h>

#include "src/support/rng.h"

namespace turnstile {
namespace {

struct Fixture {
  LabelSpace space;
  RuleGraph graph{&space};
};

TEST(RuleGraphTest, ReflexiveFlow) {
  Fixture f;
  LabelId a = f.space.Intern("A");
  EXPECT_TRUE(f.graph.CanFlowLabel(a, a));
}

TEST(RuleGraphTest, DirectAndTransitiveFlow) {
  // employee -> customer -> internal (the paper's §2/Fig. 4 example).
  Fixture f;
  ASSERT_TRUE(f.graph.AddRuleChain("employee -> customer -> internal").ok());
  LabelId employee = f.space.Intern("employee");
  LabelId customer = f.space.Intern("customer");
  LabelId internal = f.space.Intern("internal");
  EXPECT_TRUE(f.graph.CanFlowLabel(employee, customer));
  EXPECT_TRUE(f.graph.CanFlowLabel(customer, internal));
  EXPECT_TRUE(f.graph.CanFlowLabel(employee, internal));  // transitivity
  EXPECT_FALSE(f.graph.CanFlowLabel(internal, employee));  // no reverse flow
  EXPECT_FALSE(f.graph.CanFlowLabel(customer, employee));
}

TEST(RuleGraphTest, RuleChainWithoutSpaces) {
  Fixture f;
  ASSERT_TRUE(f.graph.AddRuleChain("A->B").ok());
  EXPECT_TRUE(f.graph.CanFlowLabel(f.space.Intern("A"), f.space.Intern("B")));
}

TEST(RuleGraphTest, MalformedChainsAreRejected) {
  Fixture f;
  EXPECT_FALSE(f.graph.AddRuleChain("A").ok());
  EXPECT_FALSE(f.graph.AddRuleChain("A -> ").ok());
  EXPECT_FALSE(f.graph.AddRuleChain("").ok());
}

TEST(RuleGraphTest, DisconnectedLabelsCannotFlow) {
  Fixture f;
  ASSERT_TRUE(f.graph.AddRuleChain("A -> B").ok());
  LabelId c = f.space.Intern("C");
  EXPECT_FALSE(f.graph.CanFlowLabel(f.space.Intern("A"), c));
  EXPECT_FALSE(f.graph.CanFlowLabel(c, f.space.Intern("B")));
}

TEST(RuleGraphTest, DuplicateRulesAreIgnored) {
  Fixture f;
  f.graph.AddRule("A", "B");
  f.graph.AddRule("A", "B");
  EXPECT_EQ(f.graph.edge_count(), 1u);
}

TEST(RuleGraphTest, AcyclicGraphValidates) {
  Fixture f;
  ASSERT_TRUE(f.graph.AddRuleChain("US -> EU").ok());
  ASSERT_TRUE(f.graph.AddRuleChain("L1 -> L2 -> L3").ok());
  EXPECT_TRUE(f.graph.Validate().ok());
}

TEST(RuleGraphTest, CycleIsDetected) {
  Fixture f;
  ASSERT_TRUE(f.graph.AddRuleChain("A -> B -> C -> A").ok());
  Status status = f.graph.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kPolicyError);
  EXPECT_NE(status.message().find("cycle"), std::string::npos);
}

TEST(RuleGraphTest, SelfLoopIsACycle) {
  Fixture f;
  f.graph.AddRule("A", "A");
  EXPECT_FALSE(f.graph.Validate().ok());
}

TEST(RuleGraphTest, DiamondIsNotACycle) {
  Fixture f;
  f.graph.AddRule("A", "B");
  f.graph.AddRule("A", "C");
  f.graph.AddRule("B", "D");
  f.graph.AddRule("C", "D");
  EXPECT_TRUE(f.graph.Validate().ok());
  EXPECT_TRUE(f.graph.CanFlowLabel(f.space.Intern("A"), f.space.Intern("D")));
}

TEST(RuleGraphTest, SetFlowEmptyDataAlwaysFlows) {
  Fixture f;
  LabelSet receiver({f.space.Intern("A")});
  EXPECT_TRUE(f.graph.CanFlowSet(LabelSet(), receiver));
  EXPECT_TRUE(f.graph.CanFlowSet(LabelSet(), LabelSet()));
}

TEST(RuleGraphTest, SetFlowNonEmptyIntoUnlabelledIsForbidden) {
  Fixture f;
  LabelSet data({f.space.Intern("A")});
  EXPECT_FALSE(f.graph.CanFlowSet(data, LabelSet()));
}

TEST(RuleGraphTest, SubsetRuleHolds) {
  // X ⊑ Y if X ⊆ Y (Denning): identity paths make subsets flow.
  Fixture f;
  LabelId p = f.space.Intern("P");
  LabelId q = f.space.Intern("Q");
  LabelSet single({p});
  LabelSet compound({p, q});
  EXPECT_TRUE(f.graph.CanFlowSet(single, compound));
  EXPECT_FALSE(f.graph.CanFlowSet(compound, single));  // Q has nowhere to go
}

TEST(RuleGraphTest, SetFlowUsesHierarchy) {
  // NVR policy (Fig. 7): US -> EU, L1 -> L2 -> L3.
  Fixture f;
  ASSERT_TRUE(f.graph.AddRuleChain("US -> EU").ok());
  ASSERT_TRUE(f.graph.AddRuleChain("L1 -> L2 -> L3").ok());
  LabelSet us_l1({f.space.Intern("US"), f.space.Intern("L1")});
  LabelSet eu_l3({f.space.Intern("EU"), f.space.Intern("L3")});
  LabelSet eu_l1({f.space.Intern("EU"), f.space.Intern("L1")});
  // A frame of a US L1 employee may go to an EU L3 manager...
  EXPECT_TRUE(f.graph.CanFlowSet(us_l1, eu_l3));
  // ...but an EU L3 manager's frame must not reach a US L1 viewer.
  EXPECT_FALSE(f.graph.CanFlowSet(eu_l3, us_l1));
  EXPECT_FALSE(f.graph.CanFlowSet(eu_l3, eu_l1));  // level violation
}

TEST(RuleGraphTest, CacheGrowsOnQueriesAndResetsOnNewRule) {
  Fixture f;
  ASSERT_TRUE(f.graph.AddRuleChain("A -> B -> C").ok());
  EXPECT_EQ(f.graph.cache_size(), 0u);
  f.graph.CanFlowLabel(f.space.Intern("A"), f.space.Intern("C"));
  EXPECT_EQ(f.graph.cache_size(), 1u);
  f.graph.CanFlowLabel(f.space.Intern("A"), f.space.Intern("C"));
  EXPECT_EQ(f.graph.cache_size(), 1u);  // hit, no growth
  f.graph.AddRule("C", "D");
  EXPECT_EQ(f.graph.cache_size(), 0u);  // invalidated
  // New edge is honored after invalidation.
  EXPECT_TRUE(f.graph.CanFlowLabel(f.space.Intern("A"), f.space.Intern("D")));
}

// Property test: CanFlowLabel agrees with a naive recomputation, is reflexive
// and transitive, on random DAGs.
class LatticePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LatticePropertyTest, ReachabilityLaws) {
  Rng rng(GetParam());
  LabelSpace space;
  RuleGraph graph(&space);
  constexpr int kLabels = 12;
  for (int i = 0; i < kLabels; ++i) {
    space.Intern("L" + std::to_string(i));
  }
  // Random DAG: only edges i -> j with i < j (guaranteed acyclic).
  for (int i = 0; i < kLabels; ++i) {
    for (int j = i + 1; j < kLabels; ++j) {
      if (rng.NextBool(0.2)) {
        graph.AddRule("L" + std::to_string(i), "L" + std::to_string(j));
      }
    }
  }
  ASSERT_TRUE(graph.Validate().ok());
  for (int a = 0; a < kLabels; ++a) {
    EXPECT_TRUE(graph.CanFlowLabel(static_cast<LabelId>(a), static_cast<LabelId>(a)));
    for (int b = 0; b < kLabels; ++b) {
      for (int c = 0; c < kLabels; ++c) {
        if (graph.CanFlowLabel(static_cast<LabelId>(a), static_cast<LabelId>(b)) &&
            graph.CanFlowLabel(static_cast<LabelId>(b), static_cast<LabelId>(c))) {
          EXPECT_TRUE(graph.CanFlowLabel(static_cast<LabelId>(a), static_cast<LabelId>(c)))
              << "transitivity violated: L" << a << " -> L" << b << " -> L" << c;
        }
      }
    }
  }
  // Edges never point backwards in this construction, so flow implies order.
  for (int a = 0; a < kLabels; ++a) {
    for (int b = 0; b < a; ++b) {
      EXPECT_FALSE(graph.CanFlowLabel(static_cast<LabelId>(a), static_cast<LabelId>(b)))
          << "L" << a << " must not flow backwards to L" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticePropertyTest,
                         ::testing::Values(3u, 17u, 99u, 2024u, 777777u));

}  // namespace
}  // namespace turnstile
