#include "src/lang/printer.h"

#include <gtest/gtest.h>

#include "src/lang/parser.h"

namespace turnstile {
namespace {

std::string Reprint(std::string_view source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  if (!program.ok()) {
    return "";
  }
  return PrintProgram(*program);
}

// Structural equality of two trees, ignoring node ids and locations.
bool TreesEqual(const NodePtr& a, const NodePtr& b) {
  if (a->kind != b->kind || a->str != b->str || a->num != b->num ||
      a->children.size() != b->children.size()) {
    return false;
  }
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!TreesEqual(a->children[i], b->children[i])) {
      return false;
    }
  }
  return true;
}

// Property: parsing the printed output yields a structurally identical tree.
void ExpectRoundTrip(std::string_view source) {
  auto first = ParseProgram(source);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::string printed = PrintProgram(*first);
  auto second = ParseProgram(printed);
  ASSERT_TRUE(second.ok()) << "reprint failed to parse:\n" << printed << "\n"
                           << second.status().ToString();
  EXPECT_TRUE(TreesEqual(first->root, second->root))
      << "round-trip mismatch. printed:\n" << printed;
  // Print must also be a fixed point: printing the reparsed tree is identical.
  EXPECT_EQ(printed, PrintProgram(*second));
}

TEST(PrinterTest, SimpleStatements) {
  EXPECT_EQ(Reprint("let a=1;"), "let a = 1;\n");
  EXPECT_EQ(Reprint("f ( a , b );"), "f(a, b);\n");
}

TEST(PrinterTest, StringEscaping) {
  EXPECT_EQ(Reprint("let s = 'a\\n\"b';"), "let s = \"a\\n\\\"b\";\n");
}

struct RoundTripCase {
  const char* name;
  const char* source;
};

class PrinterRoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(PrinterRoundTripTest, ParsePrintParseIsStable) {
  ExpectRoundTrip(GetParam().source);
}

INSTANTIATE_TEST_SUITE_P(
    Syntax, PrinterRoundTripTest,
    ::testing::Values(
        RoundTripCase{"var_decls", "let a = 1, b; const c = a + b; var d;"},
        RoundTripCase{"precedence", "let x = 1 + 2 * 3 - (4 + 5) / 6 % 7;"},
        RoundTripCase{"logical", "let x = a && b || c ?? d;"},
        RoundTripCase{"comparison", "let x = a === b && c !== d && e < f && g >= h;"},
        RoundTripCase{"unary", "let x = !a; let y = -b; let z = typeof c; delete o.k;"},
        RoundTripCase{"update", "i++; --j; let k = i++ + --j;"},
        RoundTripCase{"conditional", "let x = a ? b : c ? d : e;"},
        RoundTripCase{"assignment_ops", "a = 1; b += 2; c *= 3; d &&= 4;"},
        RoundTripCase{"member_chain", "a.b.c[d].e(f).g;"},
        RoundTripCase{"optional_chain", "let x = a?.b?.c;"},
        RoundTripCase{"calls", "f(); g(1, \"two\", [3], { four: 4 }); h(...args);"},
        RoundTripCase{"array_object", "let x = [1, [2, 3], { a: { b: [] } }];"},
        RoundTripCase{"object_forms",
                      "let o = { a: 1, \"b c\": 2, [k]: 3, short, m(x) { return x; } };"},
        RoundTripCase{"functions", "function f(a, ...rest) { return rest; } let g = "
                                   "function(x) { return x; };"},
        RoundTripCase{"arrows", "let f = x => x + 1; let g = (a, b) => { return a * b; }; "
                                "let h = () => ({ a: 1 });"},
        RoundTripCase{"nested_closure", "let f = x => (y => x + y);"},
        RoundTripCase{"class_decl", "class A extends B {\n constructor(x) { this.x = x; }\n "
                                    "get2() { return this.x; }\n}"},
        RoundTripCase{"new_expr", "let p = new Promise(cb); let q = new ns.Thing(1, 2);"},
        RoundTripCase{"if_else", "if (a) { f(); } else if (b) { g(); } else { h(); }"},
        RoundTripCase{"if_no_block", "if (a) f();"},
        RoundTripCase{"loops", "while (a) { f(); } for (let i = 0; i < 3; i++) { g(i); } "
                               "for (;;) { break; }"},
        RoundTripCase{"for_of", "for (let p of scene.persons) { send(p); }"},
        RoundTripCase{"try_catch", "try { f(); } catch (e) { g(e); } finally { h(); }"},
        RoundTripCase{"throw", "throw makeError(\"bad\");"},
        RoundTripCase{"await_async",
                      "async function f() { let x = await g(); return x; } let h = async "
                      "() => { await f(); };"},
        RoundTripCase{"sequence", "let x = (a, b, c);"},
        RoundTripCase{"spread_array", "let xs = [1, ...ys, 2];"},
        RoundTripCase{"negative_number", "let x = -1.5; let y = 2e3;"},
        RoundTripCase{"paper_fig2a",
                      "socket.on(\"data\", frame => {\n"
                      "  const scene = analyzeVideoFrame(frame);\n"
                      "  for (let person of scene.persons) {\n"
                      "    person.description = person.action + \" at \" + scene.location;\n"
                      "    if (person.employeeID) { deviceControl.send(person); }\n"
                      "  }\n"
                      "  emailSender.send(scene);\n"
                      "  storage.send(scene);\n"
                      "});"}),
    [](const ::testing::TestParamInfo<RoundTripCase>& tpi) { return tpi.param.name; });

TEST(PrinterTest, ExpressionStatementWithLeadingObjectIsParenthesized) {
  auto program = ParseProgram("({ a: 1 });");
  ASSERT_TRUE(program.ok());
  std::string printed = PrintProgram(*program);
  auto again = ParseProgram(printed);
  ASSERT_TRUE(again.ok()) << printed;
}

TEST(PrinterTest, PrintSingleExpressionNode) {
  NodePtr call = MakeCall(MakeMember(MakeIdentifier("storage"), "send"),
                          {MakeIdentifier("scene")});
  EXPECT_EQ(PrintNode(call), "storage.send(scene)");
}

TEST(PrinterTest, SynthesizedDiftCallPrints) {
  // __dift.invoke(storage, "send", [scene])
  NodePtr args = MakeNode(NodeKind::kArrayLit, {MakeIdentifier("scene")});
  NodePtr call = MakeCall(MakeMember(MakeIdentifier("__dift"), "invoke"),
                          {MakeIdentifier("storage"), MakeStringLit("send"), args});
  EXPECT_EQ(PrintNode(call), "__dift.invoke(storage, \"send\", [scene])");
}

}  // namespace
}  // namespace turnstile
