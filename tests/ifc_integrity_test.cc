// Extension (paper §8 future work): integrity labels through the same
// lattice machinery. Privacy (confidentiality) rules point from less to more
// private; integrity rules point from more to less trusted — "data from X may
// be used where at most Y-trust is required". The RuleGraph, labellers and
// tracker are unchanged; only the policy's reading differs.
#include <gtest/gtest.h>

#include "src/dift/tracker.h"
#include "src/lang/parser.h"

namespace turnstile {
namespace {

// trusted -> vetted -> untrusted: trusted data may be used anywhere, untrusted
// data only at untrusted-tolerant sinks.
constexpr const char* kIntegrityPolicy = R"json({
  "labellers": {
    "bySource": { "$fn":
      "m => (m.origin === \"plc\" ? \"trusted\" : (m.origin === \"gateway\" ? \"vetted\" : \"untrusted\"))" },
    "actuator": { "$const": "vetted" },
    "dashboard": { "$const": "untrusted" }
  },
  "rules": ["trusted -> vetted", "vetted -> untrusted"]
})json";

class IntegrityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto policy = Policy::FromJsonText(kIntegrityPolicy);
    ASSERT_TRUE(policy.ok()) << policy.status().ToString();
    policy_ = std::shared_ptr<Policy>(std::move(policy).value().release());
    tracker_ = std::make_unique<DiftTracker>(&interp_, policy_);
    tracker_->Install();
  }

  void RunSource(const std::string& source) {
    auto program = ParseProgram(source);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    ASSERT_TRUE(interp_.RunProgram(*program).ok());
    ASSERT_TRUE(interp_.RunEventLoop().ok());
  }

  Value Global(const std::string& name) {
    Value* slot = interp_.global_env()->Lookup(name);
    return slot != nullptr ? *slot : Value::Undefined();
  }

  Interpreter interp_;
  std::shared_ptr<Policy> policy_;
  std::unique_ptr<DiftTracker> tracker_;
};

TEST_F(IntegrityTest, TrustedCommandsReachTheActuator) {
  RunSource(R"(
    let acted = [];
    let actuator = __dift.label({ apply: cmd => { acted.push(cmd.value); } }, "actuator");
    let cmd = __dift.label({ origin: "plc", value: "open-valve" }, "bySource");
    __dift.invoke(actuator, "apply", [cmd]);
  )");
  EXPECT_EQ(Global("acted").ToDisplayString(), "[open-valve]");
  EXPECT_TRUE(tracker_->violations().empty());
}

TEST_F(IntegrityTest, UntrustedCommandsAreBlockedFromTheActuator) {
  // untrusted -/-> vetted: low-integrity data must not drive the actuator.
  RunSource(R"(
    let acted = [];
    let actuator = __dift.label({ apply: cmd => { acted.push(cmd.value); } }, "actuator");
    let cmd = __dift.label({ origin: "web-form", value: "open-valve" }, "bySource");
    __dift.invoke(actuator, "apply", [cmd]);
  )");
  EXPECT_EQ(Global("acted").ToDisplayString(), "[]");
  ASSERT_EQ(tracker_->violations().size(), 1u);
  EXPECT_EQ(tracker_->violations()[0].data_labels, "{untrusted}");
}

TEST_F(IntegrityTest, AnythingMayReachTheDashboard) {
  RunSource(R"(
    let shown = [];
    let dashboard = __dift.label({ render: m => { shown.push(m.origin); } }, "dashboard");
    for (let origin of ["plc", "gateway", "web-form"]) {
      let m = __dift.label({ origin: origin, value: 1 }, "bySource");
      __dift.invoke(dashboard, "render", [m]);
    }
  )");
  EXPECT_EQ(Global("shown").ToDisplayString(), "[plc, gateway, web-form]");
  EXPECT_TRUE(tracker_->violations().empty());
}

TEST_F(IntegrityTest, EndorsementViaConstantLabeller) {
  // A validation step endorses untrusted input: the checked fields are copied
  // into a fresh object that is relabelled with a constant labeller (the
  // §4.3 declassify/endorse mechanism — a label function that ignores the
  // value). The tainted original is discarded.
  RunSource(R"(
    let acted = [];
    let actuator = __dift.label({ apply: cmd => { acted.push(cmd.value); } }, "actuator");
    let raw = __dift.label({ origin: "web-form", value: "set-temp:21" }, "bySource");
    let endorsed = __dift.label({ value: raw.value, checked: true }, "actuator");
    __dift.invoke(actuator, "apply", [endorsed]);
    // The unvalidated original is still rejected.
    __dift.invoke(actuator, "apply", [raw]);
  )");
  EXPECT_EQ(Global("acted").ToDisplayString(), "[set-temp:21]");
  ASSERT_EQ(tracker_->violations().size(), 1u);
  EXPECT_EQ(tracker_->violations()[0].data_labels, "{untrusted}");
}

TEST_F(IntegrityTest, CompoundMixedIntegrityTakesTheWeakest) {
  RunSource(R"(
    let trusted = __dift.label("plc-reading", "bySource");
    let actuator = __dift.label({ apply: v => v }, "actuator");
    let web = __dift.label({ origin: "web", note: "hint" }, "bySource");
    let mixed = __dift.binaryOp("+", trusted, web.note);
    let allowed = __dift.check(mixed, actuator);
  )");
  // "plc-reading" labelled via bySource: a string has no .origin, the
  // labeller returns "untrusted"... so mixed is untrusted either way; the
  // check must refuse.
  EXPECT_FALSE(Global("allowed").Truthy());
}

}  // namespace
}  // namespace turnstile
