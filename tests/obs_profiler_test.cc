// The hierarchical span profiler: per-message span trees from a real corpus
// app, monitor/app attribution, per-line VM coverage, exporter validity, and
// the disabled-path no-op contract. Each TEST runs in its own process (ctest
// discovery), so global profiler/recorder state never leaks across tests.
#include "src/obs/profiler.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/corpus/driver.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/support/json.h"

namespace turnstile {
namespace obs {
namespace {

constexpr const char* kApp = "geo-fence";  // node-entry app with DIFT ops
constexpr int kMessages = 6;

// Drives `kMessages` messages of the selective version under the enabled
// global profiler. Warm-up happens outside the profiled window so caches
// (compiled labellers, chunks) do not pollute attribution.
void RunProfiledApp(std::optional<ExecTier> tier = std::nullopt) {
  const CorpusApp* app = FindCorpusApp(kApp);
  ASSERT_NE(app, nullptr);
  auto runtime = AppRuntime::Create(*app, AppVersion::kSelective, tier);
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  Rng rng(0xBE11C0DE);
  for (int seq = 0; seq < 3; ++seq) {
    ASSERT_TRUE((*runtime)->DriveMessage(&rng, seq).ok());
  }
  Profiler::Global().Enable();
  for (int seq = 0; seq < kMessages; ++seq) {
    ASSERT_TRUE((*runtime)->DriveMessage(&rng, 100 + seq).ok());
  }
}

TEST(ProfilerDisabledTest, HotPathsAreNoOps) {
  Profiler& profiler = Profiler::Global();
  ASSERT_FALSE(profiler.enabled());  // disabled is the default
  EXPECT_EQ(profiler.BeginMessage(7, "n1"), 0u);
  EXPECT_EQ(profiler.BeginSpan(SpanKind::kLoopTurn, "turn", false), 0u);
  profiler.EndSpan(1);  // must not crash
  profiler.EnterFrame(&profiler, "f", 1);
  profiler.ExitFrame();
  profiler.EnterVm();
  profiler.LineTick(3);
  profiler.ExitVm();
  EXPECT_EQ(profiler.SpanSnapshot().size(), 0u);
  EXPECT_EQ(profiler.FunctionsSnapshot().size(), 0u);
  EXPECT_EQ(profiler.LinesSnapshot().size(), 0u);
  EXPECT_DOUBLE_EQ(profiler.vm_seconds(), 0.0);
  OverheadSplit split = profiler.split();
  EXPECT_DOUBLE_EQ(split.app_s, 0.0);
  EXPECT_DOUBLE_EQ(split.monitor_s, 0.0);
  EXPECT_DOUBLE_EQ(split.fraction(), 0.0);
}

TEST(ProfilerEnableTest, CoEnablesTraceRecorderAndRestoresOnDisable) {
  ASSERT_FALSE(TraceRecorder::Global().enabled());
  Profiler::Global().Enable();
  EXPECT_TRUE(TraceRecorder::Global().enabled());
  Profiler::Global().Disable();
  EXPECT_FALSE(TraceRecorder::Global().enabled());
}

TEST(ProfilerSpanTreeTest, CorpusAppBuildsPerMessageTrees) {
  RunProfiledApp();
  std::vector<ProfileSpan> spans = Profiler::Global().SpanSnapshot();
  Profiler::Global().Disable();
  ASSERT_FALSE(spans.empty());

  std::unordered_map<uint64_t, const ProfileSpan*> by_id;
  for (const ProfileSpan& span : spans) {
    by_id[span.id] = &span;
  }

  // One inject root per driven message, each with at least one complete
  // child span.
  std::vector<const ProfileSpan*> roots;
  for (const ProfileSpan& span : spans) {
    if (span.kind == SpanKind::kInject) {
      roots.push_back(&span);
      EXPECT_EQ(span.parent, 0u);
      EXPECT_NE(span.trace_id, 0u);
    }
  }
  ASSERT_EQ(roots.size(), static_cast<size_t>(kMessages));
  for (const ProfileSpan* root : roots) {
    int complete_children = 0;
    for (const ProfileSpan& span : spans) {
      if (span.parent == root->id && !span.open && span.end_s >= span.start_s) {
        ++complete_children;
        // Temporal nesting: a child runs within its parent's interval.
        EXPECT_GE(span.start_s, root->start_s);
        EXPECT_LE(span.end_s, root->end_s + 1e-9);
      }
    }
    EXPECT_GE(complete_children, 1) << "message root " << root->id << " has no complete child";
  }

  // inject -> loop turn -> __dift.* nesting: at least one DIFT span whose
  // ancestor chain passes through a turn span and terminates at an inject
  // root. Node-enter markers sit under turns too.
  bool found_dift_chain = false;
  bool found_node_enter = false;
  for (const ProfileSpan& span : spans) {
    bool is_dift = span.kind == SpanKind::kDiftLabel || span.kind == SpanKind::kDiftBinaryOp ||
                   span.kind == SpanKind::kDiftCheck || span.kind == SpanKind::kDiftInvoke;
    if (span.kind == SpanKind::kNodeEnter) {
      auto parent = by_id.find(span.parent);
      if (parent != by_id.end() && parent->second->kind == SpanKind::kLoopTurn) {
        found_node_enter = true;
      }
    }
    if (!is_dift) {
      continue;
    }
    EXPECT_TRUE(span.monitor) << "DIFT span '" << span.name << "' not tagged monitor";
    bool through_turn = false;
    const ProfileSpan* cursor = &span;
    for (size_t hops = 0; hops <= spans.size(); ++hops) {
      auto parent = by_id.find(cursor->parent);
      if (cursor->parent == 0 || parent == by_id.end()) {
        break;
      }
      cursor = parent->second;
      if (cursor->kind == SpanKind::kLoopTurn) {
        through_turn = true;
      }
      if (cursor->kind == SpanKind::kInject) {
        if (through_turn) {
          found_dift_chain = true;
        }
        break;
      }
    }
  }
  EXPECT_TRUE(found_dift_chain) << "no __dift span nested under inject -> turn";
  EXPECT_TRUE(found_node_enter) << "no node-enter marker under a loop turn";
}

TEST(ProfilerExportTest, ChromeTraceParsesAsValidJsonWithCompleteSpans) {
  RunProfiledApp();
  std::string dumped = Profiler::Global().ChromeTraceJson().Dump(/*pretty=*/true);
  Profiler::Global().Disable();

  auto parsed = Json::Parse(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& trace = *parsed;
  ASSERT_TRUE(trace["traceEvents"].is_array());
  ASSERT_FALSE(trace["traceEvents"].array_items().empty());
  EXPECT_EQ(trace.GetString("displayTimeUnit"), "ms");

  int inject_events = 0;
  for (const Json& event : trace["traceEvents"].array_items()) {
    EXPECT_EQ(event.GetString("ph"), "X");  // every span exports complete
    EXPECT_TRUE(event["ts"].is_number());
    EXPECT_TRUE(event["dur"].is_number());
    EXPECT_GE(event.GetNumber("dur"), 0.0);
    EXPECT_TRUE(event["tid"].is_number());
    std::string cat = event.GetString("cat");
    EXPECT_TRUE(cat == "app" || cat == "monitor") << cat;
    if (event["args"].GetString("kind") == "inject") {
      ++inject_events;
    }
  }
  // >= 1 complete span per driven message.
  EXPECT_EQ(inject_events, kMessages);

  // The embedded profile summary rides along for tooling.
  ASSERT_TRUE(trace["turnstileProfile"].is_object());
  EXPECT_TRUE(trace["turnstileProfile"]["split"].Has("overhead_fraction"));
  EXPECT_FALSE(trace["turnstileProfile"]["functions"].array_items().empty());
}

TEST(ProfilerExportTest, CollapsedStacksAreWellFormed) {
  RunProfiledApp();
  std::string folded = Profiler::Global().CollapsedStacks();
  Profiler::Global().Disable();
  ASSERT_FALSE(folded.empty());
  size_t start = 0;
  int lines = 0;
  bool saw_nested_stack = false;
  while (start < folded.size()) {
    size_t end = folded.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "missing trailing newline";
    std::string line = folded.substr(start, end - start);
    start = end + 1;
    ++lines;
    // "frame;frame;frame <integer usec>"
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string stack = line.substr(0, space);
    std::string value = line.substr(space + 1);
    ASSERT_FALSE(stack.empty()) << line;
    ASSERT_FALSE(value.empty()) << line;
    EXPECT_EQ(value.find_first_not_of("0123456789"), std::string::npos) << line;
    EXPECT_GT(std::atoll(value.c_str()), 0) << line;
    if (stack.find(';') != std::string::npos) {
      saw_nested_stack = true;
      EXPECT_EQ(stack.rfind("inject:", 0), 0u) << "stack does not start at a root: " << line;
    }
  }
  EXPECT_GT(lines, 0);
  EXPECT_TRUE(saw_nested_stack) << "no multi-frame stack in:\n" << folded;
}

TEST(ProfilerAttributionTest, MonitorAppSplitAndFunctionTagging) {
  RunProfiledApp();
  Profiler& profiler = Profiler::Global();
  OverheadSplit split = profiler.split();
  std::vector<FunctionProfile> functions = profiler.FunctionsSnapshot();
  profiler.Disable();

  EXPECT_GT(split.app_s, 0.0);
  EXPECT_GT(split.monitor_s, 0.0);
  EXPECT_GT(split.fraction(), 0.0);
  EXPECT_LT(split.fraction(), 1.0);

  bool dift_monitor = false;
  bool app_function = false;
  for (const FunctionProfile& fn : functions) {
    EXPECT_GT(fn.calls, 0u);
    EXPECT_GE(fn.total_s + 1e-12, fn.self_s);
    if (fn.name.rfind("__dift.", 0) == 0) {
      EXPECT_TRUE(fn.monitor) << fn.name;
      dift_monitor = true;
    }
    if (!fn.monitor && fn.self_s > 0.0) {
      app_function = true;
    }
  }
  EXPECT_TRUE(dift_monitor) << "no __dift.* frame was profiled";
  EXPECT_TRUE(app_function) << "no app-side frame with self time";
}

TEST(ProfilerAttributionTest, LineSelfTimeCoversVmWallTime) {
  // Pin the bytecode tier: the line clock lives in the VM dispatch loop, so
  // this must hold regardless of the TURNSTILE_EXEC_TIER default.
  RunProfiledApp(ExecTier::kBytecode);
  Profiler& profiler = Profiler::Global();
  double vm_seconds = profiler.vm_seconds();
  std::vector<LineProfile> lines = profiler.LinesSnapshot();
  profiler.Disable();

  ASSERT_GT(vm_seconds, 0.0);
  ASSERT_FALSE(lines.empty());
  double line_self_total = 0.0;
  bool real_source_line = false;
  for (const LineProfile& line : lines) {
    line_self_total += line.self_s;
    if (line.line > 0 && line.ticks > 0) {
      real_source_line = true;
    }
  }
  EXPECT_TRUE(real_source_line) << "line table attributed nothing to 1-based source lines";
  // The acceptance bar: per-line attribution accounts for >= 95% of measured
  // VM wall time (the clock partitions VM time over lines by construction;
  // the remainder is pre-first-instruction overhead per activation).
  EXPECT_GE(line_self_total, 0.95 * vm_seconds)
      << "line self " << line_self_total << "s vs vm wall " << vm_seconds << "s";
}

TEST(ProfilerMetricsTest, PerNodeLatencyHistogramWithPercentiles) {
  RunProfiledApp();
  Profiler::Global().Disable();
  Json snapshot = Metrics::Global().ToJson();
  // geo-fence's flow has a single node "gf"; its turn latencies land in a
  // node-labeled histogram with derived percentile estimates.
  const Json& hist = snapshot["histograms"][MetricWithLabel("flow.node_turn_seconds", "node", "gf")];
  ASSERT_TRUE(hist.is_object()) << snapshot.Dump(true);
  EXPECT_GE(hist.GetNumber("count"), static_cast<double>(kMessages));
  EXPECT_TRUE(hist.Has("p50"));
  EXPECT_TRUE(hist.Has("p90"));
  EXPECT_TRUE(hist.Has("p99"));
  EXPECT_GE(hist.GetNumber("p99") + 1e-15, hist.GetNumber("p50"));
}

TEST(ProfilerEnvTest, TurnstileTraceEnablesRecorderWithCapacity) {
  TraceRecorder::Global().Disable();
  ASSERT_FALSE(TraceRecorder::Global().enabled());
  setenv("TURNSTILE_TRACE", "128", 1);
  ReapplyEnvObsConfigForTest();
  EXPECT_TRUE(TraceRecorder::Global().enabled());
  EXPECT_EQ(TraceRecorder::Global().capacity(), 128u);
  unsetenv("TURNSTILE_TRACE");
  TraceRecorder::Global().Disable();
}

}  // namespace
}  // namespace obs
}  // namespace turnstile
