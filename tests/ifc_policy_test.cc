// Policy parsing: labellers, rules, injections (Figs. 4 and 7).
#include "src/ifc/policy.h"

#include <gtest/gtest.h>

namespace turnstile {
namespace {

// The example IFC policy from Fig. 4, in this reproduction's JSON format.
constexpr const char* kFig4Policy = R"json({
  "labellers": {
    "Scene": { "persons": { "$map": {
      "$fn": "item => (item.employeeID ? \"employee\" : \"customer\")" } } }
  },
  "rules": ["employee -> customer", "customer -> internal"],
  "injections": [
    { "line": 2, "object": "scene", "labeller": "Scene" }
  ]
})json";

// The NVR policy from Fig. 7.
constexpr const char* kFig7Policy = R"json({
  "labellers": {
    "onRecognize": { "predictions": { "$map": {
      "$fn": "item => { let employee = getEmployeeById(item.userid); return [employee.region, employee.level]; }" } } },
    "mailer": { "sendMail": {
      "$invoke": "(object, args) => getEmployeeByEmail(args[0].to).level" } },
    "nodeRegion": { "$fn": "node => node.settings.region" }
  },
  "rules": ["US -> EU", "L1 -> L2", "L2 -> L3"],
  "injections": [
    { "file": "face-recognition.js", "line": 5, "object": "result", "labeller": "onRecognize" },
    { "file": "email-notification.js", "line": 7, "object": "smtpTransport", "labeller": "mailer" },
    { "file": "frame-storage.js", "line": 44, "object": "node", "labeller": "nodeRegion" }
  ]
})json";

TEST(PolicyTest, ParsesFig4Policy) {
  auto policy = Policy::FromJsonText(kFig4Policy);
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  const LabellerSpec* scene = (*policy)->FindLabeller("Scene");
  ASSERT_NE(scene, nullptr);
  ASSERT_EQ(scene->kind, LabellerSpec::Kind::kObject);
  ASSERT_EQ(scene->fields.size(), 1u);
  EXPECT_EQ(scene->fields[0].first, "persons");
  const LabellerSpec* persons = scene->fields[0].second.get();
  ASSERT_EQ(persons->kind, LabellerSpec::Kind::kMap);
  EXPECT_EQ(persons->element->kind, LabellerSpec::Kind::kFn);
  EXPECT_NE(persons->element->fn_source.find("employeeID"), std::string::npos);

  ASSERT_EQ((*policy)->injections().size(), 1u);
  EXPECT_EQ((*policy)->injections()[0].object, "scene");
  EXPECT_EQ((*policy)->injections()[0].line, 2);

  // Rule hierarchy: employee -> customer -> internal.
  LabelSpace& space = (*policy)->space();
  EXPECT_TRUE((*policy)->rules().CanFlowLabel(*space.Find("employee"),
                                              *space.Find("internal")));
}

TEST(PolicyTest, ParsesFig7Policy) {
  auto policy = Policy::FromJsonText(kFig7Policy);
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  ASSERT_EQ((*policy)->injections().size(), 3u);
  EXPECT_EQ((*policy)->injections()[1].file, "email-notification.js");
  const LabellerSpec* mailer = (*policy)->FindLabeller("mailer");
  ASSERT_NE(mailer, nullptr);
  ASSERT_EQ(mailer->kind, LabellerSpec::Kind::kObject);
  EXPECT_EQ(mailer->fields[0].second->kind, LabellerSpec::Kind::kInvoke);
}

TEST(PolicyTest, ConstLabellerForms) {
  auto policy = Policy::FromJsonText(R"json({
    "labellers": {
      "declassified": { "$const": "public" },
      "multi": { "$const": ["A", "B"] },
      "shorthand": { "field": "C" }
    },
    "rules": ["A -> B"]
  })json");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  EXPECT_EQ((*policy)->FindLabeller("declassified")->const_labels,
            std::vector<std::string>{"public"});
  EXPECT_EQ((*policy)->FindLabeller("multi")->const_labels,
            (std::vector<std::string>{"A", "B"}));
  const LabellerSpec* shorthand = (*policy)->FindLabeller("shorthand");
  ASSERT_EQ(shorthand->kind, LabellerSpec::Kind::kObject);
  EXPECT_EQ(shorthand->fields[0].second->kind, LabellerSpec::Kind::kConst);
}

TEST(PolicyTest, CyclicRulesAreRejected) {
  auto policy = Policy::FromJsonText(R"json({
    "labellers": {},
    "rules": ["A -> B", "B -> A"]
  })json");
  ASSERT_FALSE(policy.ok());
  EXPECT_EQ(policy.status().code(), StatusCode::kPolicyError);
  EXPECT_NE(policy.status().message().find("cycle"), std::string::npos);
}

TEST(PolicyTest, UnknownLabellerInInjectionIsRejected) {
  auto policy = Policy::FromJsonText(R"json({
    "labellers": { "known": { "$const": "L" } },
    "rules": [],
    "injections": [{ "line": 1, "object": "x", "labeller": "unknown" }]
  })json");
  ASSERT_FALSE(policy.ok());
  EXPECT_NE(policy.status().message().find("unknown"), std::string::npos);
}

TEST(PolicyTest, InjectionMissingFieldsIsRejected) {
  auto policy = Policy::FromJsonText(R"json({
    "labellers": { "l": { "$const": "L" } },
    "rules": [],
    "injections": [{ "line": 1, "labeller": "l" }]
  })json");
  EXPECT_FALSE(policy.ok());
}

TEST(PolicyTest, MalformedJsonIsRejected) {
  EXPECT_FALSE(Policy::FromJsonText("{ nope").ok());
  EXPECT_FALSE(Policy::FromJsonText("[]").ok());
}

TEST(PolicyTest, BadLabellerSpecsAreRejected) {
  EXPECT_FALSE(Policy::FromJsonText(R"json({"labellers": {"x": 42}, "rules": []})json").ok());
  EXPECT_FALSE(Policy::FromJsonText(R"json({"labellers": {"x": {}}, "rules": []})json").ok());
  EXPECT_FALSE(
      Policy::FromJsonText(R"json({"labellers": {"x": {"$fn": 1}}, "rules": []})json").ok());
  EXPECT_FALSE(
      Policy::FromJsonText(R"json({"labellers": {"x": {"$const": 3}}, "rules": []})json").ok());
}

TEST(PolicyTest, ProgrammaticConstruction) {
  Policy policy;
  auto spec = std::make_shared<LabellerSpec>();
  spec->kind = LabellerSpec::Kind::kConst;
  spec->const_labels = {"Alpha"};
  policy.AddLabeller("alpha", spec);
  policy.AddInjection({"app.js", 3, "msg", "alpha"});
  EXPECT_NE(policy.FindLabeller("alpha"), nullptr);
  ASSERT_EQ(policy.injections().size(), 1u);
  LabelSet set = policy.MakeLabelSet({"Alpha", "Beta", "Alpha"});
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace turnstile
