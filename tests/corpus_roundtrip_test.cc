// Corpus-wide structural properties:
//   - every app's source survives Parse -> Print -> Parse structurally
//     (printer fidelity on real-world-shaped programs),
//   - both analyzers are deterministic across repeated runs,
//   - instrumentation of every Part-2 app is idempotent in its statistics.
#include <gtest/gtest.h>

#include "src/analysis/analyzer.h"
#include "src/baseline/querydl.h"
#include "src/corpus/corpus.h"
#include "src/corpus/driver.h"
#include "src/instrument/instrumentor.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"
#include "src/obs/audit.h"

namespace turnstile {
namespace {

bool TreesEqual(const NodePtr& a, const NodePtr& b) {
  if (a->kind != b->kind || a->str != b->str || a->num != b->num ||
      a->children.size() != b->children.size()) {
    return false;
  }
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!TreesEqual(a->children[i], b->children[i])) {
      return false;
    }
  }
  return true;
}

TEST(CorpusRoundTripTest, EveryAppSourceRoundTripsThroughThePrinter) {
  for (const CorpusApp& app : Corpus()) {
    auto first = ParseProgram(app.source, app.name + ".js");
    ASSERT_TRUE(first.ok()) << app.name;
    std::string printed = PrintProgram(*first);
    auto second = ParseProgram(printed, app.name + ".reprinted.js");
    ASSERT_TRUE(second.ok()) << app.name << ":\n" << printed;
    EXPECT_TRUE(TreesEqual(first->root, second->root)) << app.name;
    // Fixed point: printing again is byte-identical.
    EXPECT_EQ(printed, PrintProgram(*second)) << app.name;
  }
}

TEST(CorpusRoundTripTest, AnalyzersAreDeterministic) {
  for (const CorpusApp& app : Corpus()) {
    auto program = ParseProgram(app.source, app.name + ".js");
    ASSERT_TRUE(program.ok());
    auto t1 = AnalyzeProgram(*program);
    auto t2 = AnalyzeProgram(*program);
    ASSERT_TRUE(t1.ok() && t2.ok()) << app.name;
    ASSERT_EQ(t1->paths.size(), t2->paths.size()) << app.name;
    for (size_t i = 0; i < t1->paths.size(); ++i) {
      EXPECT_EQ(t1->paths[i].source_ast, t2->paths[i].source_ast) << app.name;
      EXPECT_EQ(t1->paths[i].sink_ast, t2->paths[i].sink_ast) << app.name;
    }
    EXPECT_EQ(t1->sensitive_ast_nodes, t2->sensitive_ast_nodes) << app.name;

    auto q1 = QueryDlAnalyze(*program);
    auto q2 = QueryDlAnalyze(*program);
    ASSERT_TRUE(q1.ok() && q2.ok()) << app.name;
    EXPECT_EQ(q1->paths.size(), q2->paths.size()) << app.name;
  }
}

TEST(CorpusRoundTripTest, AnalysisIsStableUnderReprinting) {
  // Detection results must not depend on formatting: analyzing the reprinted
  // source finds the same number of paths.
  for (const CorpusApp& app : Corpus()) {
    auto original = ParseProgram(app.source, app.name + ".js");
    ASSERT_TRUE(original.ok());
    auto reprinted = ParseProgram(PrintProgram(*original), app.name + ".js");
    ASSERT_TRUE(reprinted.ok());
    auto before = AnalyzeProgram(*original);
    auto after = AnalyzeProgram(*reprinted);
    ASSERT_TRUE(before.ok() && after.ok());
    EXPECT_EQ(before->paths.size(), after->paths.size()) << app.name;
  }
}

TEST(CorpusRoundTripTest, RoundTrippedInstrumentationPreservesBehaviourOnEveryApp) {
  // The deployment invariant, extended to a version x tier matrix: instrument
  // -> print -> re-parse -> re-resolve -> (compile ->) run produces the same
  // sink traffic and the same violation set as running the in-memory
  // instrumented tree, on every corpus app, under both execution tiers.
  struct Cell {
    AppVersion version;
    ExecTier tier;
    const char* name;
  };
  constexpr Cell kMatrix[] = {
      {AppVersion::kSelective, ExecTier::kTreeWalk, "selective/treewalk"},
      {AppVersion::kSelective, ExecTier::kBytecode, "selective/bytecode-fused"},
      {AppVersion::kSelective, ExecTier::kBytecodeLowered, "selective/bytecode-lowered"},
      {AppVersion::kRoundTrip, ExecTier::kTreeWalk, "roundtrip/treewalk"},
      {AppVersion::kRoundTrip, ExecTier::kBytecode, "roundtrip/bytecode-fused"},
      {AppVersion::kRoundTrip, ExecTier::kBytecodeLowered, "roundtrip/bytecode-lowered"},
  };
  obs::AuditLedger& ledger = obs::AuditLedger::Global();
  for (const CorpusApp& app : Corpus()) {
    std::vector<std::string> baseline;
    for (const Cell& cell : kMatrix) {
      // Fresh per-cell enable: resets the ledger sequence and (through the
      // recorder co-enable) trace numbering, so each cell's canonical ledger
      // — every monitor decision in order — is directly comparable.
      ledger.Disable();
      ledger.Enable(1u << 16);
      auto runtime = AppRuntime::Create(app, cell.version, cell.tier);
      ASSERT_TRUE(runtime.ok()) << app.name << " [" << cell.name
                                << "]: " << runtime.status().ToString();
      Rng rng(977u);
      for (int seq = 0; seq < 3; ++seq) {
        ASSERT_TRUE((*runtime)->DriveMessage(&rng, seq).ok()) << app.name << " [" << cell.name
                                                              << "]";
      }
      std::vector<std::string> summary;
      for (const IoRecord& record : (*runtime)->interp().io_world().records) {
        summary.push_back(record.channel + "|" + record.op + "|" + record.detail + "|" +
                          record.payload);
      }
      for (const Violation& violation : (*runtime)->tracker()->violations()) {
        summary.push_back("violation|" + violation.sink + "|" + violation.data_labels + "|" +
                          violation.receiver_labels);
      }
      for (const obs::AuditEvent& event : ledger.Snapshot()) {
        summary.push_back("audit|" + event.Canonical());
      }
      EXPECT_EQ(ledger.dropped(), 0u) << app.name << " [" << cell.name << "]";
      ledger.Disable();
      if (&cell == &kMatrix[0]) {
        baseline = std::move(summary);
      } else {
        EXPECT_EQ(baseline, summary) << app.name << " [" << cell.name << "]";
      }
    }
  }
}

TEST(CorpusRoundTripTest, InstrumentationStatsAreDeterministic) {
  for (const CorpusApp& app : Corpus()) {
    if (app.bucket != CorpusBucket::kTurnstileOnly && app.bucket != CorpusBucket::kBothFind) {
      continue;
    }
    auto program = ParseProgram(app.source, app.name + ".js");
    auto policy = Policy::FromJsonText(app.policy_json);
    auto analysis = AnalyzeProgram(*program);
    ASSERT_TRUE(program.ok() && policy.ok() && analysis.ok()) << app.name;
    auto a = InstrumentProgram(*program, **policy, InstrumentMode::kSelective, &*analysis);
    auto b = InstrumentProgram(*program, **policy, InstrumentMode::kSelective, &*analysis);
    ASSERT_TRUE(a.ok() && b.ok()) << app.name;
    EXPECT_EQ(a->stats.binary_ops_wrapped, b->stats.binary_ops_wrapped) << app.name;
    EXPECT_EQ(a->stats.invokes_wrapped, b->stats.invokes_wrapped) << app.name;
    EXPECT_EQ(a->stats.labels_injected, b->stats.labels_injected) << app.name;
    EXPECT_EQ(a->program.node_count, b->program.node_count) << app.name;
    // Selective never injects more than exhaustive.
    auto exhaustive =
        InstrumentProgram(*program, **policy, InstrumentMode::kExhaustive, &*analysis);
    ASSERT_TRUE(exhaustive.ok());
    EXPECT_LE(a->stats.binary_ops_wrapped, exhaustive->stats.binary_ops_wrapped) << app.name;
    EXPECT_LE(a->stats.invokes_wrapped, exhaustive->stats.invokes_wrapped) << app.name;
  }
}

}  // namespace
}  // namespace turnstile
