#include "src/support/json.h"

#include <gtest/gtest.h>

namespace turnstile {
namespace {

TEST(JsonTest, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
}

TEST(JsonTest, ScalarTypes) {
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(3.5).is_number());
  EXPECT_TRUE(Json("hi").is_string());
  EXPECT_TRUE(Json::Array().is_array());
  EXPECT_TRUE(Json::Object().is_object());
}

TEST(JsonTest, ObjectSetAndLookup) {
  Json obj = Json::Object();
  obj.Set("name", "turnstile");
  obj.Set("count", 61);
  EXPECT_EQ(obj.GetString("name"), "turnstile");
  EXPECT_EQ(obj.GetNumber("count"), 61);
  EXPECT_TRUE(obj["missing"].is_null());
  EXPECT_EQ(obj.GetString("missing", "fallback"), "fallback");
}

TEST(JsonTest, SetReplacesExistingKey) {
  Json obj = Json::Object();
  obj.Set("k", 1);
  obj.Set("k", 2);
  EXPECT_EQ(obj.GetNumber("k"), 2);
  EXPECT_EQ(obj.object_items().size(), 1u);
}

TEST(JsonTest, ChainedLookupOnNonObjectIsSafe) {
  Json j(42.0);
  EXPECT_TRUE(j["a"]["b"]["c"].is_null());
}

TEST(JsonTest, ArrayAppendAndIndex) {
  Json arr = Json::Array();
  arr.Append(1);
  arr.Append("two");
  ASSERT_EQ(arr.array_items().size(), 2u);
  EXPECT_EQ(arr[0].number_value(), 1);
  EXPECT_EQ(arr[1].string_value(), "two");
  EXPECT_TRUE(arr[5].is_null());
}

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_EQ(Json::Parse("true")->bool_value(), true);
  EXPECT_EQ(Json::Parse("-2.5e2")->number_value(), -250.0);
  EXPECT_EQ(Json::Parse("\"a\\nb\"")->string_value(), "a\nb");
}

TEST(JsonParseTest, ParsesNestedDocument) {
  auto result = Json::Parse(R"({
    "rules": ["employee -> customer", "customer -> internal"],
    "nested": {"deep": [1, 2, {"x": true}]}
  })");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Json& doc = *result;
  EXPECT_EQ(doc["rules"][0].string_value(), "employee -> customer");
  EXPECT_TRUE(doc["nested"]["deep"][2]["x"].bool_value());
}

TEST(JsonParseTest, AcceptsCommentsAndTrailingCommas) {
  auto result = Json::Parse(R"({
    // the label hierarchy
    "rules": ["a -> b",],
  })");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)["rules"][0].string_value(), "a -> b");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1, 2").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("{1: 2}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
}

TEST(JsonParseTest, ParsesUnicodeEscapes) {
  auto result = Json::Parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->string_value(), "A\xc3\xa9");
}

TEST(JsonDumpTest, CompactRoundTrip) {
  Json obj = Json::Object();
  obj.Set("a", 1);
  Json arr = Json::Array();
  arr.Append("x\"y");
  arr.Append(Json(nullptr));
  obj.Set("list", std::move(arr));
  std::string dumped = obj.Dump();
  EXPECT_EQ(dumped, R"({"a":1,"list":["x\"y",null]})");
  auto reparsed = Json::Parse(dumped);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, obj);
}

TEST(JsonDumpTest, PrettyPrintIsReparsable) {
  auto doc = Json::Parse(R"({"a": [1, {"b": "c"}], "d": null})");
  ASSERT_TRUE(doc.ok());
  std::string pretty = doc->Dump(/*pretty=*/true);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto again = Json::Parse(pretty);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *doc);
}

TEST(JsonDumpTest, EscapesControlCharacters) {
  Json j(std::string("a\x01z"));
  EXPECT_EQ(j.Dump(), "\"a\\u0001z\"");
}

}  // namespace
}  // namespace turnstile
