// Built-in globals: console, Math, JSON, Object, array/string methods,
// promises, timers and the event loop.
#include <gtest/gtest.h>

#include "src/interp/interp.h"
#include "src/lang/parser.h"

namespace turnstile {
namespace {

struct RunOutcome {
  Value result;
  std::vector<IoRecord> records;
};

RunOutcome RunScript(const std::string& source, const std::string& var = "result") {
  Interpreter interp;
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  Status status = interp.RunProgram(*program);
  EXPECT_TRUE(status.ok()) << status.ToString();
  Status loop_status = interp.RunEventLoop();
  EXPECT_TRUE(loop_status.ok()) << loop_status.ToString();
  Value* slot = interp.global_env()->Lookup(var);
  return {slot != nullptr ? *slot : Value::Undefined(), interp.io_world().records};
}

double RunNumber(const std::string& source) { return RunScript(source).result.ToNumber(); }
std::string RunString(const std::string& source) {
  return RunScript(source).result.ToDisplayString();
}

TEST(BuiltinsTest, ConsoleLogRecordsToIoWorld) {
  RunOutcome out = RunScript("console.log(\"hello\", 42);");
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].channel, "console");
  EXPECT_EQ(out.records[0].payload, "hello 42");
}

TEST(BuiltinsTest, MathFunctions) {
  EXPECT_DOUBLE_EQ(RunNumber("let result = Math.floor(2.9);"), 2);
  EXPECT_DOUBLE_EQ(RunNumber("let result = Math.max(1, 9, 4);"), 9);
  EXPECT_DOUBLE_EQ(RunNumber("let result = Math.min(3, -2);"), -2);
  EXPECT_DOUBLE_EQ(RunNumber("let result = Math.abs(-5);"), 5);
  EXPECT_DOUBLE_EQ(RunNumber("let result = Math.pow(2, 8);"), 256);
}

TEST(BuiltinsTest, MathRandomIsDeterministicPerInterpreter) {
  double a = RunNumber("let result = Math.random();");
  double b = RunNumber("let result = Math.random();");
  EXPECT_DOUBLE_EQ(a, b);  // fresh interpreter, same seed
  EXPECT_GE(a, 0.0);
  EXPECT_LT(a, 1.0);
}

TEST(BuiltinsTest, JsonStringifyAndParse) {
  EXPECT_EQ(RunString("let result = JSON.stringify({ a: 1, b: [true, null] });"),
            R"({"a":1,"b":[true,null]})");
  EXPECT_DOUBLE_EQ(RunNumber("let o = JSON.parse(\"{\\\"x\\\": 7}\"); let result = o.x;"), 7);
}

TEST(BuiltinsTest, JsonStringifySkipsFunctionsAndInternals) {
  EXPECT_EQ(RunString("let result = JSON.stringify({ a: 1, f: () => 1, __hidden: 2 });"),
            R"({"a":1})");
}

TEST(BuiltinsTest, JsonParseFailureIsCatchable) {
  EXPECT_EQ(RunString("let result = \"no\"; try { JSON.parse(\"{bad\"); } "
                      "catch (e) { result = \"caught\"; }"),
            "caught");
}

TEST(BuiltinsTest, ObjectKeysValuesAssign) {
  EXPECT_EQ(RunString("let result = Object.keys({ a: 1, b: 2 }).join(\",\");"), "a,b");
  EXPECT_DOUBLE_EQ(RunNumber("let result = Object.values({ a: 3, b: 4 })[1];"), 4);
  EXPECT_DOUBLE_EQ(
      RunNumber("let t = { a: 1 }; Object.assign(t, { b: 2 }, { a: 9 }); let result = t.a + t.b;"),
      11);
}

TEST(BuiltinsTest, ArrayIsArray) {
  EXPECT_TRUE(RunScript("let result = Array.isArray([1]);").result.AsBool());
  EXPECT_FALSE(RunScript("let result = Array.isArray({});").result.AsBool());
}

TEST(BuiltinsTest, ArrayMethods) {
  EXPECT_DOUBLE_EQ(RunNumber("let a = [1]; a.push(2, 3); let result = a.length;"), 3);
  EXPECT_DOUBLE_EQ(RunNumber("let a = [1, 2]; let result = a.pop() + a.length;"), 3);
  EXPECT_DOUBLE_EQ(RunNumber("let a = [5, 6]; let result = a.shift();"), 5);
  EXPECT_EQ(RunString("let result = [3, 1, 2].sort().join(\"\");"), "123");
  EXPECT_EQ(RunString("let result = [1, 2, 3].reverse().join(\"\");"), "321");
  EXPECT_EQ(RunString("let result = [1, 2, 3].map(x => x * 2).join(\",\");"), "2,4,6");
  EXPECT_EQ(RunString("let result = [1, 2, 3, 4].filter(x => x % 2 === 0).join(\",\");"), "2,4");
  EXPECT_DOUBLE_EQ(RunNumber("let result = [1, 2, 3].reduce((a, b) => a + b, 10);"), 16);
  EXPECT_DOUBLE_EQ(RunNumber("let result = [1, 2, 3].indexOf(2);"), 1);
  EXPECT_TRUE(RunScript("let result = [1, 2].includes(2);").result.AsBool());
  EXPECT_DOUBLE_EQ(RunNumber("let result = [4, 8, 15].find(x => x > 5);"), 8);
  EXPECT_TRUE(RunScript("let result = [1, 2].some(x => x === 2);").result.AsBool());
  EXPECT_EQ(RunString("let result = [1, 2, 3, 4].slice(1, 3).join(\"\");"), "23");
  EXPECT_EQ(RunString("let result = [1].concat([2, 3], 4).join(\"\");"), "1234");
  EXPECT_DOUBLE_EQ(RunNumber("let s = 0; [1, 2].forEach(x => { s += x; }); let result = s;"), 3);
}

TEST(BuiltinsTest, StringMethods) {
  EXPECT_EQ(RunString("let result = \"a,b,c\".split(\",\").join(\"-\");"), "a-b-c");
  EXPECT_EQ(RunString("let result = \"AbC\".toLowerCase();"), "abc");
  EXPECT_EQ(RunString("let result = \"AbC\".toUpperCase();"), "ABC");
  EXPECT_DOUBLE_EQ(RunNumber("let result = \"hello\".indexOf(\"ll\");"), 2);
  EXPECT_TRUE(RunScript("let result = \"turnstile\".includes(\"stile\");").result.AsBool());
  EXPECT_TRUE(RunScript("let result = \"policy.json\".endsWith(\".json\");").result.AsBool());
  EXPECT_TRUE(RunScript("let result = \"deviceA\".startsWith(\"device\");").result.AsBool());
  EXPECT_EQ(RunString("let result = \"abcdef\".substring(1, 3);"), "bc");
  EXPECT_EQ(RunString("let result = \"abcdef\".slice(-2);"), "ef");
  EXPECT_EQ(RunString("let result = \"  x \".trim();"), "x");
  EXPECT_EQ(RunString("let result = \"a-b-c\".replace(\"-\", \"+\");"), "a+b-c");
  EXPECT_EQ(RunString("let result = \"xyz\".charAt(1);"), "y");
  EXPECT_DOUBLE_EQ(RunNumber("let result = \"A\".charCodeAt(0);"), 65);
  EXPECT_DOUBLE_EQ(RunNumber("let result = \"camera\".length;"), 6);
}

TEST(BuiltinsTest, Conversions) {
  EXPECT_DOUBLE_EQ(RunNumber("let result = parseInt(\"42px\");"), 42);
  EXPECT_DOUBLE_EQ(RunNumber("let result = parseFloat(\"2.5rest\");"), 2.5);
  EXPECT_EQ(RunString("let result = String(12);"), "12");
  EXPECT_DOUBLE_EQ(RunNumber("let result = Number(\"3.5\");"), 3.5);
  EXPECT_TRUE(RunScript("let result = Boolean(\"x\");").result.AsBool());
  EXPECT_TRUE(RunScript("let result = isNaN(Number(\"nope\"));").result.AsBool());
}

TEST(BuiltinsTest, ErrorConstructor) {
  EXPECT_EQ(RunString("let e = new Error(\"bad thing\"); let result = e.message;"), "bad thing");
}

TEST(BuiltinsTest, FunctionCallApplyBind) {
  EXPECT_DOUBLE_EQ(RunNumber("function f(a, b) { return this.base + a + b; } "
                             "let result = f.call({ base: 10 }, 1, 2);"),
                   13);
  EXPECT_DOUBLE_EQ(RunNumber("function f(a, b) { return this.base + a + b; } "
                             "let result = f.apply({ base: 20 }, [1, 2]);"),
                   23);
  EXPECT_DOUBLE_EQ(RunNumber("function f(x) { return this.base * x; } "
                             "let g = f.bind({ base: 3 }); let result = g(4);"),
                   12);
}

TEST(BuiltinsTest, SetTimeoutRunsViaEventLoopInOrder) {
  RunOutcome out = RunScript(R"(
    let order = [];
    setTimeout(() => { order.push("late"); }, 50);
    setTimeout(() => { order.push("early"); }, 10);
    order.push("sync");
    let result = order;
  )");
  // RunProgram finishes before the loop runs; then timers fire by time order.
  EXPECT_EQ(out.result.ToDisplayString(), "[sync, early, late]");
}

TEST(BuiltinsTest, VirtualTimeAdvancesWithTimers) {
  Interpreter interp;
  auto program = ParseProgram("setTimeout(() => {}, 2500);");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(interp.RunProgram(*program).ok());
  ASSERT_TRUE(interp.RunEventLoop().ok());
  EXPECT_DOUBLE_EQ(interp.VirtualNow(), 2.5);
}

TEST(BuiltinsTest, DateNowReflectsVirtualTime) {
  RunOutcome out = RunScript(R"(
    let result = 0;
    setTimeout(() => { result = Date.now(); }, 1000);
  )");
  EXPECT_DOUBLE_EQ(out.result.ToNumber(), 1000.0);
}

TEST(BuiltinsTest, PromiseResolveThen) {
  RunOutcome out = RunScript(R"(
    let result = "pending";
    let p = new Promise((resolve, reject) => { resolve("done"); });
    p.then(v => { result = v; });
  )");
  EXPECT_EQ(out.result.ToDisplayString(), "done");
}

TEST(BuiltinsTest, PromiseRejectCatch) {
  RunOutcome out = RunScript(R"(
    let result = "pending";
    let p = new Promise((resolve, reject) => { reject("nope"); });
    p.catch(e => { result = e; });
  )");
  EXPECT_EQ(out.result.ToDisplayString(), "nope");
}

TEST(BuiltinsTest, PromiseThenChainsOneLevel) {
  RunOutcome out = RunScript(R"(
    let result = 0;
    new Promise(res => { res(5); }).then(v => v + 1).then(v => { result = v; });
  )");
  EXPECT_DOUBLE_EQ(out.result.ToNumber(), 6);
}

TEST(BuiltinsTest, AwaitSettledPromise) {
  RunOutcome out = RunScript(R"(
    let result = 0;
    async function main() {
      let v = await new Promise(res => { res(41); });
      result = v + 1;
    }
    main();
  )");
  EXPECT_DOUBLE_EQ(out.result.ToNumber(), 42);
}

TEST(BuiltinsTest, AwaitNonPromisePassesThrough) {
  EXPECT_DOUBLE_EQ(RunNumber("async function f() { return (await 7) + 1; } "
                             "let result = 0; f().then(v => { result = v; });"),
                   8);
}

TEST(BuiltinsTest, RequireUnknownModuleFails) {
  Interpreter interp;
  auto program = ParseProgram("let m = require(\"no-such-module\");");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(interp.RunProgram(*program).ok());
}

}  // namespace
}  // namespace turnstile
