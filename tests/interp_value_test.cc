// Direct unit tests for the Value model: coercions, identity, equality and
// the value-type/reference-type distinction the DIFT boxing design rests on.
#include "src/interp/value.h"

#include <cmath>

#include <gtest/gtest.h>

namespace turnstile {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().IsUndefined());
  EXPECT_TRUE(Value::Null().IsNull());
  EXPECT_TRUE(Value(true).IsBool());
  EXPECT_TRUE(Value(2.5).IsNumber());
  EXPECT_TRUE(Value("s").IsString());
  EXPECT_TRUE(Value(MakeObject()).IsObject());
  EXPECT_TRUE(Value(MakeArray()).IsArray());
  EXPECT_TRUE(Value(MakeNativeFunction("f", nullptr)).IsFunction());
}

TEST(ValueTest, ValueTypesHaveNoIdentity) {
  // The §4.4 premise: value types cannot key the label map.
  EXPECT_EQ(Value(1.0).IdentityKey(), nullptr);
  EXPECT_EQ(Value("x").IdentityKey(), nullptr);
  EXPECT_EQ(Value(true).IdentityKey(), nullptr);
  EXPECT_EQ(Value().IdentityKey(), nullptr);
  EXPECT_TRUE(Value("x").IsValueType());

  ObjectPtr obj = MakeObject();
  Value a(obj);
  Value b(obj);
  EXPECT_NE(a.IdentityKey(), nullptr);
  EXPECT_EQ(a.IdentityKey(), b.IdentityKey());  // copies share identity
  EXPECT_FALSE(a.IsValueType());
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value().Truthy());
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_FALSE(Value(0.0).Truthy());
  EXPECT_FALSE(Value(std::nan("")).Truthy());
  EXPECT_FALSE(Value("").Truthy());
  EXPECT_TRUE(Value(-1.0).Truthy());
  EXPECT_TRUE(Value("0").Truthy());  // JS quirk: non-empty string
  EXPECT_TRUE(Value(MakeObject()).Truthy());
  EXPECT_TRUE(Value(MakeArray()).Truthy());
}

TEST(ValueTest, ToNumberCoercions) {
  EXPECT_DOUBLE_EQ(Value(true).ToNumber(), 1.0);
  EXPECT_DOUBLE_EQ(Value(false).ToNumber(), 0.0);
  EXPECT_DOUBLE_EQ(Value::Null().ToNumber(), 0.0);
  EXPECT_DOUBLE_EQ(Value(" 42 ").ToNumber(), 42.0);
  EXPECT_DOUBLE_EQ(Value("").ToNumber(), 0.0);
  EXPECT_TRUE(std::isnan(Value("4x").ToNumber()));
  EXPECT_TRUE(std::isnan(Value().ToNumber()));
}

TEST(ValueTest, DisplayStrings) {
  EXPECT_EQ(Value().ToDisplayString(), "undefined");
  EXPECT_EQ(Value::Null().ToDisplayString(), "null");
  EXPECT_EQ(Value(2.5).ToDisplayString(), "2.5");
  EXPECT_EQ(Value(3.0).ToDisplayString(), "3");
  ArrayPtr arr = MakeArray({Value(1.0), Value("a")});
  EXPECT_EQ(Value(arr).ToDisplayString(), "[1, a]");
  ObjectPtr obj = MakeObject();
  obj->Set("k", Value("v"));
  EXPECT_EQ(Value(obj).ToDisplayString(), "{ k: \"v\" }");
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(Value().TypeName(), "undefined");
  EXPECT_STREQ(Value::Null().TypeName(), "object");  // the JS quirk
  EXPECT_STREQ(Value(1.0).TypeName(), "number");
  EXPECT_STREQ(Value("s").TypeName(), "string");
  EXPECT_STREQ(Value(MakeArray()).TypeName(), "object");
  EXPECT_STREQ(Value(MakeNativeFunction("f", nullptr)).TypeName(), "function");
}

TEST(ValueTest, StrictEquality) {
  EXPECT_TRUE(Value(1.0).StrictEquals(Value(1.0)));
  EXPECT_FALSE(Value(1.0).StrictEquals(Value("1")));
  EXPECT_TRUE(Value("a").StrictEquals(Value("a")));
  EXPECT_TRUE(Value().StrictEquals(Value()));
  EXPECT_FALSE(Value().StrictEquals(Value::Null()));
  ObjectPtr obj = MakeObject();
  EXPECT_TRUE(Value(obj).StrictEquals(Value(obj)));
  EXPECT_FALSE(Value(MakeObject()).StrictEquals(Value(MakeObject())));
}

TEST(ValueTest, ObjectInsertionOrderAndDelete) {
  ObjectPtr obj = MakeObject();
  obj->Set("b", Value(1.0));
  obj->Set("a", Value(2.0));
  obj->Set("b", Value(3.0));  // overwrite keeps position
  ASSERT_EQ(obj->insertion_order.size(), 2u);
  EXPECT_EQ(AtomName(obj->insertion_order[0]), "b");
  obj->Delete("b");
  EXPECT_FALSE(obj->Has("b"));
  ASSERT_EQ(obj->insertion_order.size(), 1u);
  EXPECT_EQ(AtomName(obj->insertion_order[0]), "a");
}

TEST(ValueTest, ObjectTrapsFire) {
  ObjectPtr obj = MakeObject();
  int sets = 0;
  int deletes = 0;
  obj->set_trap = [&sets](Object&, const std::string&, const Value&) { ++sets; };
  obj->delete_trap = [&deletes](Object&, const std::string&) { ++deletes; };
  obj->Set("x", Value(1.0));
  obj->Set("x", Value(2.0));
  obj->Delete("x");
  obj->Delete("x");  // already gone: no trap
  EXPECT_EQ(sets, 2);
  EXPECT_EQ(deletes, 1);
}

TEST(ValueTest, BoxingHelpers) {
  Value plain("payload");
  EXPECT_FALSE(IsBox(plain));
  EXPECT_TRUE(Unbox(plain).StrictEquals(plain));

  ObjectPtr box = MakeObject();
  box->is_box = true;
  box->box_payload = plain;
  Value boxed(box);
  EXPECT_TRUE(IsBox(boxed));
  EXPECT_EQ(Unbox(boxed).AsString(), "payload");

  ObjectPtr outer = MakeObject();
  outer->is_box = true;
  outer->box_payload = boxed;
  EXPECT_TRUE(IsBox(Unbox(Value(outer))));  // one layer removed: still a box
  EXPECT_EQ(UnboxDeep(Value(outer)).AsString(), "payload");
}

TEST(ValueTest, BoxesForwardTruthinessAndNumbers) {
  ObjectPtr box = MakeObject();
  box->is_box = true;
  box->box_payload = Value(0.0);
  EXPECT_FALSE(Value(box).Truthy());  // falsy payload, unlike plain objects
  EXPECT_DOUBLE_EQ(Value(box).ToNumber(), 0.0);
  box->box_payload = Value(7.0);
  EXPECT_TRUE(Value(box).Truthy());
  EXPECT_EQ(Value(box).ToDisplayString(), "7");
}

TEST(ValueTest, ClassMethodLookupWalksTheChain) {
  auto base = std::make_shared<ClassInfo>();
  base->name = "Base";
  base->methods["ping"] = MakeNativeFunction("ping", nullptr);
  auto derived = std::make_shared<ClassInfo>();
  derived->name = "Derived";
  derived->superclass = base;
  derived->methods["pong"] = MakeNativeFunction("pong", nullptr);
  EXPECT_NE(derived->FindMethod("pong"), nullptr);
  EXPECT_NE(derived->FindMethod("ping"), nullptr);  // inherited
  EXPECT_EQ(derived->FindMethod("zap"), nullptr);
}

}  // namespace
}  // namespace turnstile
