// Strict environment-variable parsing (src/support/env.h): the whole-string
// integer contract behind TURNSTILE_FLEET_SHARDS and
// TURNSTILE_BENCH_INSTANCES. Malformed values never half-parse — they keep
// the default and warn once per variable, the ExecTierFromName arrangement.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/support/env.h"

namespace turnstile {
namespace {

constexpr const char* kVar = "TURNSTILE_SUPPORT_ENV_TEST_VAR";

class EnvIntTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResetEnvWarningsForTest();
    unsetenv(kVar);
  }
  void TearDown() override { unsetenv(kVar); }
};

TEST_F(EnvIntTest, UnsetReturnsFallback) {
  EXPECT_EQ(EnvInt(kVar, 7, 1, 100), 7);
}

TEST_F(EnvIntTest, WholeStringIntegerParses) {
  setenv(kVar, "42", 1);
  EXPECT_EQ(EnvInt(kVar, 7, 1, 100), 42);
  setenv(kVar, "1", 1);
  EXPECT_EQ(EnvInt(kVar, 7, 1, 100), 1);
  setenv(kVar, "100", 1);
  EXPECT_EQ(EnvInt(kVar, 7, 1, 100), 100);
}

TEST_F(EnvIntTest, TrailingGarbageKeepsDefault) {
  // "12abc" must NOT parse as 12 — the silent-atoi failure mode this
  // contract exists to kill.
  for (const char* bad : {"12abc", "4 ", " 4", "0x10", "4.5", ""}) {
    setenv(kVar, bad, 1);
    EXPECT_EQ(EnvInt(kVar, 7, 1, 100), 7) << "value: '" << bad << "'";
  }
}

TEST_F(EnvIntTest, OutOfRangeKeepsDefault) {
  for (const char* bad : {"-3", "0", "101", "99999999999999999999"}) {
    setenv(kVar, bad, 1);
    EXPECT_EQ(EnvInt(kVar, 7, 1, 100), 7) << "value: '" << bad << "'";
  }
}

TEST_F(EnvIntTest, NegativeBoundsWorkWhenAllowed) {
  setenv(kVar, "-3", 1);
  EXPECT_EQ(EnvInt(kVar, 0, -10, 10), -3);
}

}  // namespace
}  // namespace turnstile
