// Sharded fleet runtime: the differential gate. A FleetRuntime spreading
// corpus apps across worker shards must produce, for every instance,
// byte-identical io records, violations and canonical audit ledger to a
// single-threaded AppRuntime run with the same seed and message sequence —
// including instances that share a per-shard Policy, and instances fed by a
// cross-shard app→app wire. Runs under the TSAN CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/corpus/driver.h"
#include "src/runtime/context.h"
#include "src/runtime/fleet.h"
#include "src/runtime/shard.h"
#include "src/support/env.h"

namespace turnstile {
namespace {

constexpr int kMessages = 5;
constexpr uint64_t kSeed = 977u;
constexpr size_t kAuditCapacity = 1u << 16;

// The observable record of one instance, rendered exactly as
// runtime_isolation_test renders it.
struct Outcome {
  std::string status;
  std::string io;
  std::string violations;
  std::string audit;
};

Outcome Collect(AppRuntime& runtime, RuntimeContext& context) {
  Outcome out;
  std::ostringstream io;
  for (const IoRecord& record : runtime.interp().io_world().records) {
    io << record.channel << "|" << record.op << "|" << record.detail << "|" << record.payload
       << "\n";
  }
  out.io = io.str();
  if (runtime.tracker() != nullptr) {
    std::ostringstream violations;
    for (const Violation& v : runtime.tracker()->violations()) {
      violations << v.sink << " " << v.data_labels << " -> " << v.receiver_labels << "\n";
    }
    out.violations = violations.str();
  }
  out.audit = context.audit().CanonicalLog();
  return out;
}

// Single-threaded reference: same enable-then-Create arrangement the fleet's
// shard threads use, driven sequentially on the caller's thread.
Outcome RunReference(const CorpusApp& app) {
  Outcome out;
  auto context = RuntimeContext::CreateIsolated();
  context->audit().Enable(kAuditCapacity);
  auto runtime = AppRuntime::Create(app, AppVersion::kSelective, std::nullopt, context.get());
  if (!runtime.ok()) {
    out.status = app.name + ": " + runtime.status().ToString();
    return out;
  }
  Rng rng(kSeed);
  for (int seq = 0; seq < kMessages; ++seq) {
    Status status = (*runtime)->DriveMessage(&rng, seq);
    if (!status.ok()) {
      out.status = app.name + ": " + status.ToString();
      return out;
    }
  }
  return Collect(**runtime, *context);
}

std::vector<const CorpusApp*> ManagedApps() {
  std::vector<const CorpusApp*> picked;
  for (const CorpusApp& app : Corpus()) {
    if (app.bucket == CorpusBucket::kTurnstileOnly || app.bucket == CorpusBucket::kBothFind) {
      picked.push_back(&app);
    }
  }
  return picked;
}

FleetRuntime::Options TestOptions(int shards) {
  FleetRuntime::Options options;
  options.shards = shards;
  options.rng_seed = kSeed;
  options.audit_capacity = kAuditCapacity;
  return options;
}

TEST(FleetRuntimeTest, FleetMatchesSingleThreadedRuns) {
  std::vector<const CorpusApp*> apps = ManagedApps();
  ASSERT_GE(apps.size(), 6u) << "differential gate needs >= 6 managed corpus apps";
  apps.resize(6);

  FleetRuntime fleet(TestOptions(/*shards=*/3));
  ASSERT_GE(fleet.shard_count(), 2);

  std::vector<std::string> ids;
  for (const CorpusApp* app : apps) {
    ids.push_back(fleet.AddApp(*app));
  }
  // Two extra tenants of the first two apps: the same-app-under-sharing case,
  // landing on shards that already host (or don't host) their Policy.
  std::vector<const CorpusApp*> tenants = apps;
  ids.push_back(fleet.AddApp(*apps[0]));
  tenants.push_back(apps[0]);
  ids.push_back(fleet.AddApp(*apps[1]));
  tenants.push_back(apps[1]);

  Status started = fleet.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();
  for (int seq = 0; seq < kMessages; ++seq) {
    for (const std::string& id : ids) {
      ASSERT_TRUE(fleet.Post(id, seq));
    }
  }
  fleet.Drain();
  fleet.Stop();  // joins shard threads: instance state is safe to read
  EXPECT_EQ(fleet.errors(), std::vector<std::string>{});
  EXPECT_EQ(fleet.messages_processed(), ids.size() * kMessages);

  for (size_t i = 0; i < ids.size(); ++i) {
    SCOPED_TRACE(ids[i]);
    Outcome reference = RunReference(*tenants[i]);
    ASSERT_EQ(reference.status, "");
    AppRuntime* runtime = fleet.runtime_of(ids[i]);
    RuntimeContext* context = fleet.context_of(ids[i]);
    ASSERT_NE(runtime, nullptr);
    ASSERT_NE(context, nullptr);
    Outcome fleet_outcome = Collect(*runtime, *context);
    EXPECT_EQ(fleet_outcome.io, reference.io);
    EXPECT_EQ(fleet_outcome.violations, reference.violations);
    EXPECT_EQ(fleet_outcome.audit, reference.audit);
    EXPECT_NE(fleet_outcome.audit, "") << "managed apps must ledger decisions";
  }
}

TEST(FleetRuntimeTest, PerShardPolicySharingIsPointerEqualAndHarmless) {
  std::vector<const CorpusApp*> apps = ManagedApps();
  ASSERT_FALSE(apps.empty());
  const CorpusApp& app = *apps.front();

  FleetRuntime fleet(TestOptions(/*shards=*/1));
  std::string first = fleet.AddApp(app);
  std::string second = fleet.AddApp(app);
  ASSERT_TRUE(fleet.Start().ok());
  for (int seq = 0; seq < kMessages; ++seq) {
    ASSERT_TRUE(fleet.Post(first, seq));
    ASSERT_TRUE(fleet.Post(second, seq));
  }
  fleet.Drain();
  fleet.Stop();
  EXPECT_EQ(fleet.errors(), std::vector<std::string>{});

  AppRuntime* a = fleet.runtime_of(first);
  AppRuntime* b = fleet.runtime_of(second);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // One shard, one app: both tenants share the parsed Policy (and with it the
  // LabelSetPool + RuleGraph memo caches)...
  ASSERT_NE(a->policy(), nullptr);
  EXPECT_EQ(a->policy().get(), b->policy().get());
  // ...and sharing changes nothing observable: both match the (unshared)
  // single-threaded reference byte for byte.
  Outcome reference = RunReference(app);
  ASSERT_EQ(reference.status, "");
  Outcome first_outcome = Collect(*a, *fleet.context_of(first));
  Outcome second_outcome = Collect(*b, *fleet.context_of(second));
  EXPECT_EQ(first_outcome.audit, reference.audit);
  EXPECT_EQ(second_outcome.audit, reference.audit);
  EXPECT_EQ(first_outcome.io, reference.io);
  EXPECT_EQ(second_outcome.io, reference.io);

  // Opting out re-parses per instance.
  FleetRuntime::Options unshared = TestOptions(/*shards=*/1);
  unshared.share_policies = false;
  FleetRuntime fleet2(unshared);
  std::string c = fleet2.AddApp(app);
  std::string d = fleet2.AddApp(app);
  ASSERT_TRUE(fleet2.Start().ok());
  fleet2.Stop();
  ASSERT_NE(fleet2.runtime_of(c), nullptr);
  EXPECT_NE(fleet2.runtime_of(c)->policy().get(), fleet2.runtime_of(d)->policy().get());
}

// Finds a managed (A, B) pair where A emits terminal sends (flow outputs)
// when driven — the precondition for a meaningful wire — and B has an entry
// point to deliver into.
std::pair<const CorpusApp*, const CorpusApp*> PickWiredPair(
    std::vector<Json>* captured_payloads) {
  std::vector<const CorpusApp*> apps = ManagedApps();
  const CorpusApp* source = nullptr;
  for (const CorpusApp* app : apps) {
    auto context = RuntimeContext::CreateIsolated();
    auto runtime = AppRuntime::Create(*app, AppVersion::kSelective, std::nullopt, context.get());
    if (!runtime.ok()) {
      continue;
    }
    std::vector<Json> captured;
    (*runtime)->engine().set_terminal_sink(
        [&captured](const std::string&, const Value& msg, uint64_t) {
          captured.push_back(FleetSerializeMessage(msg));
        });
    Rng rng(kSeed);
    bool ok = true;
    for (int seq = 0; seq < kMessages && ok; ++seq) {
      ok = (*runtime)->DriveMessage(&rng, seq).ok();
    }
    if (ok && !captured.empty()) {
      source = app;
      *captured_payloads = std::move(captured);
      break;
    }
  }
  const CorpusApp* destination = nullptr;
  for (const CorpusApp* app : apps) {
    if (app != source && !app->entry_kind.empty()) {
      destination = app;
      break;
    }
  }
  return {source, destination};
}

TEST(FleetRuntimeTest, CrossShardWireMatchesSerializedReplay) {
  // Reference leg: capture app A's terminal sends through the fleet's own
  // serialization, then replay them into a fresh single-threaded B.
  std::vector<Json> payloads;
  auto [source, destination] = PickWiredPair(&payloads);
  ASSERT_NE(source, nullptr) << "no managed app produces terminal sends";
  ASSERT_NE(destination, nullptr);
  ASSERT_FALSE(payloads.empty());

  Outcome reference_b;
  {
    auto context = RuntimeContext::CreateIsolated();
    context->audit().Enable(kAuditCapacity);
    auto runtime =
        AppRuntime::Create(*destination, AppVersion::kSelective, std::nullopt, context.get());
    ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
    for (const Json& payload : payloads) {
      ASSERT_TRUE((*runtime)->InjectValue(FleetMaterializeMessage(payload)).ok());
    }
    reference_b = Collect(**runtime, *context);
  }

  // Fleet leg: A pinned to shard 0, B to shard 1, wired. Only A is posted to;
  // everything B processes arrived over the cross-shard route.
  FleetRuntime fleet(TestOptions(/*shards=*/2));
  std::string a = fleet.AddApp(*source, /*shard=*/0);
  std::string b = fleet.AddApp(*destination, /*shard=*/1);
  ASSERT_TRUE(fleet.Wire(a, b).ok());
  ASSERT_TRUE(fleet.Start().ok());
  for (int seq = 0; seq < kMessages; ++seq) {
    ASSERT_TRUE(fleet.Post(a, seq));
  }
  fleet.Drain();
  fleet.Stop();
  EXPECT_EQ(fleet.errors(), std::vector<std::string>{});
  // Every captured terminal send became one routed delivery.
  EXPECT_EQ(fleet.messages_processed(),
            static_cast<uint64_t>(kMessages) + payloads.size());

  AppRuntime* routed = fleet.runtime_of(b);
  ASSERT_NE(routed, nullptr);
  Outcome fleet_b = Collect(*routed, *fleet.context_of(b));
  EXPECT_EQ(fleet_b.io, reference_b.io);
  EXPECT_EQ(fleet_b.violations, reference_b.violations);
  EXPECT_EQ(fleet_b.audit, reference_b.audit);

  // The wire must not perturb the source either.
  Outcome reference_a = RunReference(*source);
  Outcome fleet_a = Collect(*fleet.runtime_of(a), *fleet.context_of(a));
  EXPECT_EQ(fleet_a.io, reference_a.io);
  EXPECT_EQ(fleet_a.audit, reference_a.audit);
}

TEST(FleetRuntimeTest, MailboxBoundsExternalProducersAndDrainsOnClose) {
  ShardMailbox mailbox(/*capacity=*/2);
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (int i = 0; i < 6; ++i) {
      FleetEnvelope env;
      env.seq = i;
      if (mailbox.Push(std::move(env), /*bounded=*/true)) {
        pushed.fetch_add(1);
      }
    }
  });
  // Backpressure: with no consumer, the producer wedges at capacity.
  while (mailbox.depth() < 2) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(mailbox.depth(), 2u);
  EXPECT_LE(pushed.load(), 3);  // 2 queued + at most 1 in flight

  // A consumer drains in FIFO order and releases the producer.
  std::vector<FleetEnvelope> batch;
  int expected_seq = 0;
  while (expected_seq < 6) {
    ASSERT_TRUE(mailbox.PopAll(&batch));
    for (const FleetEnvelope& env : batch) {
      EXPECT_EQ(env.seq, expected_seq++);
    }
    batch.clear();
  }
  producer.join();
  EXPECT_EQ(pushed.load(), 6);

  // Closed: pushes are rejected, the consumer wakes and terminates.
  mailbox.Close();
  FleetEnvelope env;
  EXPECT_FALSE(mailbox.Push(std::move(env), /*bounded=*/true));
  EXPECT_FALSE(mailbox.PopAll(&batch));
  EXPECT_TRUE(batch.empty());

  // An unbounded push ignores capacity entirely (the shard-origin path).
  ShardMailbox roomy(/*capacity=*/1);
  for (int i = 0; i < 4; ++i) {
    FleetEnvelope extra;
    EXPECT_TRUE(roomy.Push(std::move(extra), /*bounded=*/false));
  }
  EXPECT_EQ(roomy.depth(), 4u);
}

TEST(FleetRuntimeTest, ShardCountComesFromStrictEnvParse) {
  ResetEnvWarningsForTest();
  ASSERT_EQ(unsetenv("TURNSTILE_FLEET_SHARDS"), 0);
  EXPECT_EQ(FleetRuntime::ShardsFromEnv(4), 4);
  ASSERT_EQ(setenv("TURNSTILE_FLEET_SHARDS", "8", 1), 0);
  EXPECT_EQ(FleetRuntime::ShardsFromEnv(4), 8);
  // Trailing garbage, negatives, and out-of-range values all keep the
  // default (warning once on stderr).
  for (const char* bad : {"8abc", "-2", "0", "", "257", "twelve"}) {
    ASSERT_EQ(setenv("TURNSTILE_FLEET_SHARDS", bad, 1), 0);
    EXPECT_EQ(FleetRuntime::ShardsFromEnv(4), 4) << "value: '" << bad << "'";
  }
  ASSERT_EQ(unsetenv("TURNSTILE_FLEET_SHARDS"), 0);

  FleetRuntime::Options options;
  options.shards = 2;
  FleetRuntime fleet(options);
  EXPECT_EQ(fleet.shard_count(), 2);
  fleet.Stop();
}

}  // namespace
}  // namespace turnstile
