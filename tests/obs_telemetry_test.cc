// The live metrics plane (ISSUE 10): TelemetryServer routing and lifecycle,
// provider swapping, published fleet traces, and the JSONL snapshot writer.
#include "src/obs/telemetry.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/metrics.h"
#include "src/support/json.h"

namespace turnstile {
namespace obs {
namespace {

// Minimal blocking HTTP/1.0 GET against 127.0.0.1:<port>; returns the whole
// response (status line + headers + body) or "" on connect failure. The
// server closes the connection after one response, so read-until-EOF is the
// framing.
std::string HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(TelemetryServerTest, ServesDefaultMetricsProvider) {
  TelemetryServer server;
  ASSERT_TRUE(server.Start(0).ok());  // ephemeral port
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  Metrics::Global().GetCounter("telemetry.test_counter")->Increment(7);
  std::string response = HttpGet(server.port(), "/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  // Prometheus names are sanitized (dots -> underscores).
  EXPECT_NE(response.find("telemetry_test_counter 7"), std::string::npos);
  EXPECT_GE(server.requests_served(), 1u);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(TelemetryServerTest, CustomProvidersAndUnhealthy503) {
  TelemetryServer server;
  ASSERT_TRUE(server.Start(0).ok());

  // Default health: 200 with ok=true.
  std::string healthy = HttpGet(server.port(), "/healthz");
  EXPECT_NE(healthy.find("200 OK"), std::string::npos);
  EXPECT_NE(BodyOf(healthy).find("\"ok\""), std::string::npos);

  server.SetMetricsProvider([] { return std::string("custom_metric 1\n"); });
  server.SetHealthProvider([] {
    Json health = Json::Object();
    health.Set("ok", Json(false));
    health.Set("reason", Json("shard 2 dead"));
    return health;
  });
  EXPECT_NE(HttpGet(server.port(), "/metrics").find("custom_metric 1"), std::string::npos);
  std::string sick = HttpGet(server.port(), "/healthz");
  EXPECT_NE(sick.find("503"), std::string::npos);
  EXPECT_NE(BodyOf(sick).find("shard 2 dead"), std::string::npos);

  // Detach: the defaults come back.
  server.ClearProviders();
  EXPECT_NE(HttpGet(server.port(), "/healthz").find("200 OK"), std::string::npos);
  server.Stop();
}

TEST(TelemetryServerTest, PublishedTracesAreServedById) {
  TelemetryServer server;
  ASSERT_TRUE(server.Start(0).ok());

  // Nothing published yet: both routes 404.
  EXPECT_NE(HttpGet(server.port(), "/traces").find("404"), std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/traces/3").find("404"), std::string::npos);

  server.PublishFullTrace("{\"traceEvents\":[]}");
  server.PublishTrace(3, "{\"fleet_trace\":3}");
  EXPECT_NE(BodyOf(HttpGet(server.port(), "/traces")).find("traceEvents"), std::string::npos);
  EXPECT_NE(BodyOf(HttpGet(server.port(), "/traces/3")).find("\"fleet_trace\":3"),
            std::string::npos);
  // Unknown id and malformed id are 404s, not crashes.
  EXPECT_NE(HttpGet(server.port(), "/traces/99").find("404"), std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "/traces/3x").find("404"), std::string::npos);
  server.Stop();
}

TEST(TelemetryServerTest, UnknownPathIs404AndLifecycleIsStrict) {
  TelemetryServer server;
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_NE(HttpGet(server.port(), "/no-such-route").find("404"), std::string::npos);
  // Double start fails while running; Stop is idempotent.
  EXPECT_FALSE(server.Start(0).ok());
  server.Stop();
  server.Stop();
  EXPECT_EQ(server.port(), 0);
  // Restart after Stop works.
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_NE(HttpGet(server.port(), "/healthz").find("200 OK"), std::string::npos);
  server.Stop();
}

TEST(TelemetrySnapshotWriterTest, AppendsParsableJsonlSnapshots) {
  std::string path = ::testing::TempDir() + "/telemetry_snapshots.jsonl";
  std::remove(path.c_str());

  Metrics metrics;
  metrics.GetCounter("writer.test_counter")->Increment(5);
  TelemetrySnapshotWriter writer;
  // Long interval: the Stop()-time final snapshot is the one under test.
  ASSERT_TRUE(writer.Start(path, /*interval_ms=*/60000, &metrics).ok());
  ASSERT_TRUE(writer.running());
  EXPECT_FALSE(writer.Start(path).ok());  // already running
  writer.Stop();
  EXPECT_FALSE(writer.running());
  EXPECT_GE(writer.snapshots_written(), 1u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    ++lines;
    auto parsed = Json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_TRUE(parsed.value().Has("seq"));
    EXPECT_TRUE(parsed.value().Has("metrics"));
    EXPECT_NE(line.find("writer.test_counter"), std::string::npos);
  }
  EXPECT_GE(lines, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace turnstile
