// Hash-consed label sets: canonicalization, inline-mask vs spilled
// representation equivalence, memoized unions and memoized set-level flow
// checks surviving rule-graph mutation.
#include "src/ifc/labelset_pool.h"

#include <gtest/gtest.h>

#include "src/ifc/lattice.h"

namespace turnstile {
namespace {

TEST(LabelSetPoolTest, InternCanonicalizesToOneHandle) {
  LabelSpace space;
  LabelSetPool pool(&space);
  EXPECT_EQ(pool.Intern(std::vector<LabelId>{}), kEmptyLabelSetRef);
  LabelSetRef ab = pool.Intern(std::vector<LabelId>{0, 1});
  EXPECT_NE(ab, kEmptyLabelSetRef);
  // Order and duplicates do not matter: same set, same handle.
  EXPECT_EQ(pool.Intern(std::vector<LabelId>{1, 0}), ab);
  EXPECT_EQ(pool.Intern(std::vector<LabelId>{1, 0, 1, 0}), ab);
  EXPECT_EQ(pool.Intern(LabelSet({0, 1})), ab);
  // A different set gets a different handle.
  EXPECT_NE(pool.Intern(std::vector<LabelId>{0, 2}), ab);
  // {}, {0,1}, {0,2}: three distinct sets plus nothing else.
  EXPECT_EQ(pool.size(), 3u);
}

TEST(LabelSetPoolTest, SingleAndInsertBuildTheSameSets) {
  LabelSpace space;
  LabelSetPool pool(&space);
  LabelSetRef a = pool.Single(3);
  EXPECT_EQ(a, pool.Intern(std::vector<LabelId>{3}));
  EXPECT_EQ(pool.Single(3), a);  // memoized
  LabelSetRef ab = pool.Insert(a, 7);
  EXPECT_EQ(ab, pool.Intern(std::vector<LabelId>{3, 7}));
  EXPECT_EQ(pool.Insert(ab, 3), ab);  // already present: same handle back
}

TEST(LabelSetPoolTest, InlineAndSpilledRepresentationsAgree) {
  LabelSpace space;
  LabelSetPool pool(&space);
  // All ids < 64: inline mask.
  LabelSetRef small = pool.Intern(std::vector<LabelId>{1, 5, 63});
  EXPECT_TRUE(pool.IsInline(small));
  EXPECT_EQ(pool.MaskOf(small),
            (uint64_t{1} << 1) | (uint64_t{1} << 5) | (uint64_t{1} << 63));
  // An id >= 64 spills the set to the sorted-vector representation.
  LabelSetRef big = pool.Intern(std::vector<LabelId>{1, 5, 64});
  EXPECT_FALSE(pool.IsInline(big));

  // Contains agrees across representations.
  for (LabelId id : {1u, 5u, 63u, 64u, 2u}) {
    EXPECT_EQ(pool.Contains(small, id), LabelSet({1, 5, 63}).Contains(id)) << id;
    EXPECT_EQ(pool.Contains(big, id), LabelSet({1, 5, 64}).Contains(id)) << id;
  }
  // IsSubsetOf agrees whether the pair is inline/inline, inline/spilled or
  // spilled/spilled.
  LabelSetRef small_sub = pool.Intern(std::vector<LabelId>{1, 5});
  LabelSetRef big_sub = pool.Intern(std::vector<LabelId>{5, 64});
  EXPECT_TRUE(pool.IsSubsetOf(small_sub, small));
  EXPECT_FALSE(pool.IsSubsetOf(small, small_sub));
  EXPECT_TRUE(pool.IsSubsetOf(small_sub, big));
  EXPECT_FALSE(pool.IsSubsetOf(big_sub, small));
  EXPECT_TRUE(pool.IsSubsetOf(big_sub, big));
  // Union across the representation boundary interns the right set.
  EXPECT_EQ(pool.Union(small, big), pool.Intern(std::vector<LabelId>{1, 5, 63, 64}));
  EXPECT_EQ(pool.Materialize(pool.Union(small, big)).ids(),
            (std::vector<LabelId>{1, 5, 63, 64}));
}

TEST(LabelSetPoolTest, UnionIsMemoizedAndAbsorptionSkipsTheCache) {
  LabelSpace space;
  LabelSetPool pool(&space);
  LabelSetRef a = pool.Intern(std::vector<LabelId>{0, 1});
  LabelSetRef b = pool.Intern(std::vector<LabelId>{2});
  LabelSetRef ab = pool.Union(a, b);
  EXPECT_EQ(ab, pool.Intern(std::vector<LabelId>{0, 1, 2}));
  uint64_t hits = pool.union_cache_hits();
  EXPECT_EQ(pool.Union(a, b), ab);
  EXPECT_EQ(pool.Union(b, a), ab);  // symmetric key
  EXPECT_EQ(pool.union_cache_hits(), hits + 2);
  // Absorption (a ∪ sub = a) is answered from the masks without touching the
  // cache; identity and empty unions short-circuit too.
  LabelSetRef sub = pool.Intern(std::vector<LabelId>{1});
  hits = pool.union_cache_hits();
  EXPECT_EQ(pool.Union(a, sub), a);
  EXPECT_EQ(pool.Union(a, a), a);
  EXPECT_EQ(pool.Union(a, kEmptyLabelSetRef), a);
  EXPECT_EQ(pool.Union(kEmptyLabelSetRef, a), a);
  EXPECT_EQ(pool.union_cache_hits(), hits);
}

TEST(LabelSetPoolTest, RenderMatchesLabelSetToStringAndIsCached) {
  LabelSpace space;
  LabelId employee = space.Intern("employee");
  LabelId customer = space.Intern("customer");
  LabelSetPool pool(&space);
  LabelSetRef both = pool.Intern(std::vector<LabelId>{customer, employee});
  EXPECT_EQ(pool.Render(both), LabelSet({employee, customer}).ToString(space));
  EXPECT_EQ(pool.Render(both), "{employee, customer}");
  EXPECT_EQ(pool.Render(kEmptyLabelSetRef), "{}");
  uint64_t computed = pool.renders_computed();
  pool.Render(both);
  pool.Render(both);
  EXPECT_EQ(pool.renders_computed(), computed);  // cached after first render
}

TEST(LabelSetPoolTest, SetFlowMemoSurvivesRuleGraphMutation) {
  LabelSpace space;
  RuleGraph graph(&space);
  LabelSetPool pool(&space);
  ASSERT_TRUE(graph.AddRuleChain("a -> b").ok());
  LabelSetRef a = pool.Single(*space.Find("a"));
  LabelSetRef b = pool.Single(*space.Find("b"));
  LabelSetRef c = pool.Single(space.Intern("c"));

  EXPECT_TRUE(graph.CanFlowSet(a, b, pool));
  EXPECT_FALSE(graph.CanFlowSet(a, c, pool));
  EXPECT_EQ(graph.set_cache_size(), 2u);
  // Repeat queries are answered from the memo (size does not grow).
  EXPECT_TRUE(graph.CanFlowSet(a, b, pool));
  EXPECT_EQ(graph.set_cache_size(), 2u);

  // Mutating the rule graph must invalidate the memo: a -> c was forbidden
  // above and becomes allowed, even though the handles are unchanged.
  ASSERT_TRUE(graph.AddRuleChain("a -> c").ok());
  EXPECT_EQ(graph.set_cache_size(), 0u);
  EXPECT_TRUE(graph.CanFlowSet(a, c, pool));
  EXPECT_TRUE(graph.CanFlowSet(a, b, pool));

  // Subset flows (X ⊆ Y) short-circuit before the memo.
  size_t cached = graph.set_cache_size();
  LabelSetRef ab = pool.Union(a, b);
  EXPECT_TRUE(graph.CanFlowSet(a, ab, pool));
  EXPECT_EQ(graph.set_cache_size(), cached);

  // Empty-set edge cases mirror the LabelSet overload.
  EXPECT_TRUE(graph.CanFlowSet(kEmptyLabelSetRef, c, pool));
  EXPECT_FALSE(graph.CanFlowSet(a, kEmptyLabelSetRef, pool));
}

}  // namespace
}  // namespace turnstile
