// The inlined DIFT tracker: labelling, Fig. 5 semantics, boxing of value
// types, proxy handling of dynamic properties, and violation detection.
#include "src/dift/tracker.h"

#include <gtest/gtest.h>

#include "src/lang/parser.h"

namespace turnstile {
namespace {

constexpr const char* kBasicPolicy = R"json({
  "labellers": {
    "employeeOrCustomer": {
      "$fn": "item => (item.employeeID ? \"employee\" : \"customer\")" },
    "scene": { "persons": { "$map": {
      "$fn": "item => (item.employeeID ? \"employee\" : \"customer\")" } } },
    "secret": { "$const": "secret" },
    "public": { "$const": "public" },
    "multi": { "$const": ["A", "B"] },
    "byContent": { "$fn": "s => (s.includes(\"face\") ? \"secret\" : null)" },
    "mailerByRecipient": { "send": {
      "$invoke": "(obj, args) => (args[0] === \"boss\" ? \"secret\" : \"public\")" } }
  },
  "rules": ["employee -> customer", "customer -> internal", "public -> secret", "A -> B"]
})json";

class TrackerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto policy = Policy::FromJsonText(kBasicPolicy);
    ASSERT_TRUE(policy.ok()) << policy.status().ToString();
    policy_ = std::shared_ptr<Policy>(std::move(policy).value().release());
    tracker_ = std::make_unique<DiftTracker>(&interp_, policy_);
    tracker_->Install();
  }

  // Runs MiniScript source with __dift installed.
  void RunSource(const std::string& source) {
    auto program = ParseProgram(source);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    Status status = interp_.RunProgram(*program);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_TRUE(interp_.RunEventLoop().ok());
  }

  Value Global(const std::string& name) {
    Value* slot = interp_.global_env()->Lookup(name);
    return slot != nullptr ? *slot : Value::Undefined();
  }

  std::vector<std::string> LabelsOf(const Value& v) {
    LabelSet set = tracker_->DeepLabel(v);
    std::vector<std::string> names;
    for (LabelId id : set.ids()) {
      names.push_back(policy_->space().NameOf(id));
    }
    return names;
  }

  Interpreter interp_;
  std::shared_ptr<Policy> policy_;
  std::unique_ptr<DiftTracker> tracker_;
};

TEST_F(TrackerTest, LabelObjectWithFnLabeller) {
  RunSource(R"(
    let person = { employeeID: 17, name: "kim" };
    __dift.label(person, "employeeOrCustomer");
    let labels = __dift.labelsOf(person);
  )");
  EXPECT_EQ(Global("labels").ToDisplayString(), "[employee]");
}

TEST_F(TrackerTest, LabelDependsOnValue) {
  // Value-dependent labels (§4.4): same labeller, different run-time values.
  RunSource(R"(
    let visitor = { name: "anon" };
    __dift.label(visitor, "employeeOrCustomer");
    let labels = __dift.labelsOf(visitor);
  )");
  EXPECT_EQ(Global("labels").ToDisplayString(), "[customer]");
}

TEST_F(TrackerTest, LabelValueTypeCreatesBox) {
  RunSource(R"(
    let frame = __dift.label("face-bytes", "secret");
    let labels = __dift.labelsOf(frame);
    let raw = __dift.unwrap(frame);
  )");
  EXPECT_EQ(Global("labels").ToDisplayString(), "[secret]");
  EXPECT_EQ(Global("raw").ToDisplayString(), "face-bytes");
  EXPECT_TRUE(IsBox(Global("frame")));
  EXPECT_EQ(tracker_->stats().boxes_created, 1u);
}

TEST_F(TrackerTest, FnLabellerReturningNullDoesNotBox) {
  RunSource(R"(
    let data = __dift.label("just-telemetry", "byContent");
  )");
  EXPECT_FALSE(IsBox(Global("data")));
  EXPECT_TRUE(LabelsOf(Global("data")).empty());
}

TEST_F(TrackerTest, MapLabellerLabelsElementsAndContainer) {
  RunSource(R"(
    let scene = { location: "lobby",
                  persons: [{ employeeID: 1 }, { name: "guest" }] };
    __dift.label(scene, "scene");
    let sceneLabels = __dift.labelsOf(scene);
    let p0 = __dift.labelsOf(scene.persons[0]);
    let p1 = __dift.labelsOf(scene.persons[1]);
  )");
  EXPECT_EQ(Global("sceneLabels").ToDisplayString(), "[employee, customer]");
  EXPECT_EQ(Global("p0").ToDisplayString(), "[employee]");
  EXPECT_EQ(Global("p1").ToDisplayString(), "[customer]");
}

TEST_F(TrackerTest, BinaryOpProducesCompoundLabel) {
  // Fig. 5 (binaryOp): v1 ⊙ v2 ↦ P1 ∪ P2.
  RunSource(R"(
    let a = __dift.label("alpha", "secret");
    let b = __dift.label("beta", "public");
    let c = __dift.binaryOp("+", a, b);
    let labels = __dift.labelsOf(c);
    let value = __dift.unwrap(c);
  )");
  EXPECT_EQ(Global("value").ToDisplayString(), "alphabeta");
  EXPECT_EQ(Global("labels").ToDisplayString(), "[public, secret]");
  EXPECT_EQ(tracker_->stats().binary_ops, 1u);
}

TEST_F(TrackerTest, BinaryOpOnUnlabelledOperandsAddsNoBox) {
  RunSource(R"(
    let c = __dift.binaryOp("*", 6, 7);
  )");
  EXPECT_FALSE(IsBox(Global("c")));
  EXPECT_DOUBLE_EQ(Global("c").AsNumber(), 42);
}

TEST_F(TrackerTest, BoxesAreTransparentToArithmetic) {
  RunSource(R"(
    let n = __dift.label(21, "secret");
    let doubled = __dift.binaryOp("*", n, 2);
    let raw = __dift.unwrap(doubled);
    let labels = __dift.labelsOf(doubled);
  )");
  EXPECT_DOUBLE_EQ(Global("raw").AsNumber(), 42);
  EXPECT_EQ(Global("labels").ToDisplayString(), "[secret]");
}

TEST_F(TrackerTest, CheckAllowsFlowUpTheHierarchy) {
  RunSource(R"(
    let data = __dift.label({ id: 1 }, "public");
    let receiver = __dift.label({ sinkish: true }, "secret");
    let allowed = __dift.check(data, receiver);
  )");
  EXPECT_TRUE(Global("allowed").AsBool());
  EXPECT_TRUE(tracker_->violations().empty());
}

TEST_F(TrackerTest, CheckForbidsFlowDownTheHierarchy) {
  RunSource(R"(
    let data = __dift.label({ id: 1 }, "secret");
    let receiver = __dift.label({ sinkish: true }, "public");
    let allowed = __dift.check(data, receiver);
  )");
  EXPECT_FALSE(Global("allowed").AsBool());
  ASSERT_EQ(tracker_->violations().size(), 1u);
  EXPECT_EQ(tracker_->violations()[0].data_labels, "{secret}");
  EXPECT_EQ(tracker_->violations()[0].receiver_labels, "{public}");
}

TEST_F(TrackerTest, CheckUnlabeledReceiverIsAllowedByDefault) {
  RunSource(R"(
    let data = __dift.label({ id: 1 }, "secret");
    let allowed = __dift.check(data, { plain: true });
  )");
  EXPECT_TRUE(Global("allowed").AsBool());
}

TEST_F(TrackerTest, StrictModeFlagsUnlabeledReceivers) {
  DiftTracker::Options options;
  options.strict_unlabeled_receivers = true;
  DiftTracker strict(&interp_, policy_, options);
  strict.Install();  // replaces __dift
  RunSource(R"(
    let data = __dift.label({ id: 1 }, "secret");
    let allowed = __dift.check(data, { plain: true });
  )");
  EXPECT_FALSE(Global("allowed").AsBool());
  EXPECT_EQ(strict.violations().size(), 1u);
}

TEST_F(TrackerTest, InvokeChecksArgumentsAgainstInvokeLabeller) {
  RunSource(R"(
    let sent = [];
    let mailer = { send: (to, body) => { sent.push(to); return "ok"; } };
    __dift.label(mailer, "mailerByRecipient");
    let frame = __dift.label("face-frame", "secret");
    // secret -> secret: allowed.
    __dift.invoke(mailer, "send", ["boss", frame]);
    // secret -> public: forbidden, call must be blocked (enforce mode).
    __dift.invoke(mailer, "send", ["intern", frame]);
  )");
  EXPECT_EQ(Global("sent").ToDisplayString(), "[boss]");
  ASSERT_EQ(tracker_->violations().size(), 1u);
  EXPECT_EQ(tracker_->violations()[0].sink, "send");
}

TEST_F(TrackerTest, ReportModeLetsViolatingCallProceed) {
  DiftTracker::Options options;
  options.mode = DiftTracker::Options::Mode::kReport;
  DiftTracker reporter(&interp_, policy_, options);
  reporter.Install();
  RunSource(R"(
    let sent = [];
    let mailer = { send: to => { sent.push(to); } };
    __dift.label(mailer, "mailerByRecipient");
    let frame = __dift.label("x", "secret");
    __dift.invoke(mailer, "send", ["intern", frame]);
  )");
  EXPECT_EQ(Global("sent").ToDisplayString(), "[intern]");  // proceeded
  EXPECT_EQ(reporter.violations().size(), 1u);              // but recorded
}

TEST_F(TrackerTest, InvokeLabelsResultWithArgumentUnion) {
  RunSource(R"(
    let svc = { combine: (a, b) => a + "/" + b };
    let x = __dift.label("x", "secret");
    let out = __dift.invoke(svc, "combine", [x, "plain"]);
    let labels = __dift.labelsOf(out);
    let raw = __dift.unwrap(out);
  )");
  EXPECT_EQ(Global("raw").ToDisplayString(), "x/plain");
  EXPECT_EQ(Global("labels").ToDisplayString(), "[secret]");
}

TEST_F(TrackerTest, InvokeUnwrapsArgumentsForNativeSinks) {
  RunSource(R"(
    let fs = require("fs");
    let frame = __dift.label("pixel-data", "secret");
    __dift.invoke(fs, "writeFileSync", ["/out.bin", frame]);
  )");
  ASSERT_EQ(interp_.io_world().records.size(), 1u);
  // The sink received the raw value, not a box rendering.
  EXPECT_EQ(interp_.io_world().records[0].payload, "pixel-data");
}

TEST_F(TrackerTest, LabelledDataInsideMessageObjectIsCaught) {
  // DeepLabel: a labelled frame nested in msg.payload is still checked.
  RunSource(R"(
    let receiver = __dift.label({ name: "store" }, "public");
    let msg = { payload: __dift.label("face", "secret"), topic: "frames" };
    let allowed = __dift.check(msg, receiver);
  )");
  EXPECT_FALSE(Global("allowed").AsBool());
}

TEST_F(TrackerTest, DynamicPropertyCreationPropagatesToContainer) {
  // The proxy trap (§4.4): properties created at run time fold their labels
  // into the tracked container.
  RunSource(R"(
    let scene = __dift.label({ location: "hall", persons: [] }, "scene");
    let secretFrame = __dift.label({ data: "bytes" }, "secret");
    scene.lastFrame = secretFrame;   // dynamic property, not in the policy
    let labels = __dift.labelsOf(scene);
  )");
  std::string labels = Global("labels").ToDisplayString();
  EXPECT_NE(labels.find("secret"), std::string::npos) << labels;
}

TEST_F(TrackerTest, CompoundConstLabelAndSubsetFlow) {
  RunSource(R"(
    let ab = __dift.label({ v: 1 }, "multi");
    let labels = __dift.labelsOf(ab);
  )");
  EXPECT_EQ(Global("labels").ToDisplayString(), "[A, B]");
}

TEST_F(TrackerTest, DeclassificationViaConstLabeller) {
  // A constant labeller overrides the computed label (§4.3: declassification
  // is a label function that always returns Q).
  RunSource(R"(
    let data = __dift.label({ v: "x" }, "secret");
    __dift.label(data, "public");
    let labels = __dift.labelsOf(data);
  )");
  // Labels accumulate (conservative union); declassification is expressed by
  // checking against the *destination*: public ⊑ secret holds.
  std::string labels = Global("labels").ToDisplayString();
  EXPECT_NE(labels.find("public"), std::string::npos);
}

TEST_F(TrackerTest, UnknownLabellerIsAnError) {
  auto program = ParseProgram("__dift.label({}, \"nope\");");
  ASSERT_TRUE(program.ok());
  Status status = interp_.RunProgram(*program);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("nope"), std::string::npos);
}

TEST_F(TrackerTest, StatsAreCounted) {
  RunSource(R"(
    let a = __dift.label("v", "secret");
    let b = __dift.binaryOp("+", a, "!");
    __dift.check(a, b);
    let o = { f: x => x };
    __dift.invoke(o, "f", [a]);
  )");
  const TrackerStats& stats = tracker_->stats();
  EXPECT_EQ(stats.label_calls, 1u);
  EXPECT_EQ(stats.binary_ops, 1u);
  EXPECT_EQ(stats.checks, 1u);
  EXPECT_EQ(stats.invokes, 1u);
  EXPECT_GE(stats.boxes_created, 1u);
}

TEST_F(TrackerTest, PaperFig2bEndToEnd) {
  // The instrumented FaceRecognizer path of Fig. 2b, driven with two frames:
  // one containing an employee (storable) and one a customer.
  RunSource(R"(
    let stored = [];
    let mailed = [];
    let storage = { send: s => { stored.push("ok"); } };
    let emailSender = { send: s => { mailed.push("ok"); } };
    function analyzeVideoFrame(frame) {
      return { location: "door",
               persons: [frame.isEmployee ? { employeeID: 9, action: "enters" }
                                          : { action: "waits" }] };
    }
    function handle(frame) {
      const scene = __dift.label(analyzeVideoFrame(frame), "scene");
      for (let person of scene.persons) {
        person.description = __dift.binaryOp("+",
            __dift.binaryOp("+", person.action, " at "), scene.location);
      }
      __dift.invoke(emailSender, "send", [scene]);
      __dift.invoke(storage, "send", [scene]);
    }
    handle({ isEmployee: true });
    handle({ isEmployee: false });
  )");
  // The sinks are unlabeled (fail-open default), so both calls proceed; the
  // assertion here is the data-path mechanics of the instrumented code shape.
  EXPECT_EQ(Global("stored").ToDisplayString(), "[ok, ok]");
  EXPECT_EQ(Global("mailed").ToDisplayString(), "[ok, ok]");
}

TEST_F(TrackerTest, StoreWithDisconnectedLabelBlocksLabelledScenes) {
  // A store labelled "public" may not receive employee-labelled scenes:
  // there is no employee -> public rule, so the flow is forbidden and, in
  // enforce mode, the call never happens.
  RunSource(R"(
    let stored = [];
    let store = __dift.label({ send: s => { stored.push(1); } }, "public");
    let sceneEmployee = __dift.label({ persons: [{ employeeID: 2 }] }, "scene");
    __dift.invoke(store, "send", [sceneEmployee]);
  )");
  EXPECT_EQ(Global("stored").ToDisplayString(), "[]");
  EXPECT_GE(tracker_->violations().size(), 1u);
}

TEST_F(TrackerTest, ViolationRenderingIsByteIdenticalToLabelSetToString) {
  // The interned-pool renderings feed the violation report verbatim; they
  // must stay byte-identical to the LabelSet::ToString format so recorded
  // violations and provenance do not change across the interning layer.
  RunSource(R"(
    let data = __dift.label({ v: 1 }, "multi");
    __dift.label(data, "secret");
    let receiver = __dift.label({ sinkish: true }, "public");
    __dift.check(data, receiver, "store");
  )");
  ASSERT_EQ(tracker_->violations().size(), 1u);
  const Violation& violation = tracker_->violations()[0];
  // Label ids follow rules-interning order (secret precedes A and B).
  EXPECT_EQ(violation.data_labels, "{secret, A, B}");
  EXPECT_EQ(violation.data_labels,
            tracker_->DeepLabel(Global("data")).ToString(policy_->space()));
  EXPECT_EQ(violation.receiver_labels, "{public}");
  EXPECT_EQ(violation.receiver_labels,
            tracker_->GetLabel(Global("receiver")).ToString(policy_->space()));
  // Provenance: one attachment event per data label (in label-id order),
  // then the violation itself with the same renderings.
  ASSERT_EQ(violation.provenance.size(), 4u);
  EXPECT_EQ(violation.provenance[0].subject, "secret");
  EXPECT_EQ(violation.provenance[0].detail, "attached 'secret'");
  EXPECT_EQ(violation.provenance[1].subject, "multi");
  EXPECT_EQ(violation.provenance[1].detail, "attached 'A'");
  EXPECT_EQ(violation.provenance[2].subject, "multi");
  EXPECT_EQ(violation.provenance[2].detail, "attached 'B'");
  EXPECT_EQ(violation.provenance[3].detail, "{secret, A, B} cannot flow to {public}");
}

TEST_F(TrackerTest, DeepLabelMemoIsInvalidatedByHeapWrites) {
  // Repeated checks of an unchanged message are answered from the deep-label
  // memo; a plain property write on the (untracked) container — which the
  // tracker never observes directly — must invalidate it.
  RunSource(R"(
    let receiver = __dift.label({ name: "store" }, "public");
    let msg = { topic: "frames", payload: "plain" };
    let before = __dift.check(msg, receiver);
    let beforeAgain = __dift.check(msg, receiver);
    msg.payload = __dift.label("face", "secret");
    let after = __dift.check(msg, receiver);
  )");
  EXPECT_TRUE(Global("before").AsBool());
  EXPECT_TRUE(Global("beforeAgain").AsBool());
  EXPECT_FALSE(Global("after").AsBool());
}

TEST_F(TrackerTest, DeepLabelMemoHitsBetweenUnchangedChecks) {
  RunSource(R"(
    let receiver = __dift.label({ name: "store" }, "secret");
    let msg = { payload: __dift.label("face", "public") };
  )");
  Value msg = Global("msg");
  Value receiver = Global("receiver");
  ASSERT_TRUE(tracker_->Check(msg, receiver, "store").ok());
  uint64_t hits = tracker_->stats().deep_label_memo_hits;
  // No interpreter activity between these checks: every repeat is a memo hit.
  ASSERT_TRUE(tracker_->Check(msg, receiver, "store").ok());
  ASSERT_TRUE(tracker_->Check(msg, receiver, "store").ok());
  EXPECT_EQ(tracker_->stats().deep_label_memo_hits, hits + 2);
  // AttachLabel mutates the label map, which must drop the memo.
  tracker_->AttachLabel(msg, LabelSet({policy_->space().Intern("employee")}));
  hits = tracker_->stats().deep_label_memo_hits;
  LabelSet after = tracker_->DeepLabel(msg);
  EXPECT_EQ(tracker_->stats().deep_label_memo_hits, hits);  // recomputed
  EXPECT_TRUE(after.Contains(*policy_->space().Find("employee")));
}

TEST_F(TrackerTest, TrackerDestructionClearsItsProxyTraps) {
  // The traps capture the owning tracker; a destroyed tracker must not leave
  // them dangling on objects that live on in the interpreter.
  ObjectPtr object = MakeObject();
  object->Set("v", Value(1.0));
  {
    DiftTracker ephemeral(&interp_, policy_);
    ASSERT_TRUE(ephemeral.Label(Value(object), "secret").ok());
    EXPECT_TRUE(static_cast<bool>(object->set_trap));
  }
  EXPECT_FALSE(static_cast<bool>(object->set_trap));
  EXPECT_FALSE(static_cast<bool>(object->delete_trap));
  object->Set("later", Value(2.0));  // must not touch the dead tracker
}

}  // namespace
}  // namespace turnstile
