// Fleet-wide distributed tracing (ISSUE 10's tentpole): a wired two-app pair
// on different shards must assemble into ONE fleet trace whose hops span both
// shards and chain through the wire (hop 1's parent_span names hop 0's local
// trace), and the live telemetry plane must answer /metrics + /healthz while
// shards are actively processing. Runs under the TSAN CI job.
#include "src/obs/fleet_trace.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/corpus/driver.h"
#include "src/obs/telemetry.h"
#include "src/runtime/context.h"
#include "src/runtime/fleet.h"
#include "src/runtime/shard.h"

namespace turnstile {
namespace {

constexpr int kMessages = 4;
constexpr uint64_t kSeed = 977u;

// Minimal HTTP/1.0 GET (the server closes after one response).
std::string HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::vector<const CorpusApp*> ManagedApps() {
  std::vector<const CorpusApp*> picked;
  for (const CorpusApp& app : Corpus()) {
    if (app.bucket == CorpusBucket::kTurnstileOnly || app.bucket == CorpusBucket::kBothFind) {
      picked.push_back(&app);
    }
  }
  return picked;
}

// (A, B) where A emits terminal sends when driven and B accepts injection —
// the same probe fleet_runtime_test uses for its wire differential.
std::pair<const CorpusApp*, const CorpusApp*> PickWiredPair() {
  std::vector<const CorpusApp*> apps = ManagedApps();
  const CorpusApp* source = nullptr;
  for (const CorpusApp* app : apps) {
    auto context = RuntimeContext::CreateIsolated();
    auto runtime = AppRuntime::Create(*app, AppVersion::kSelective, std::nullopt, context.get());
    if (!runtime.ok()) {
      continue;
    }
    int sends = 0;
    (*runtime)->engine().set_terminal_sink(
        [&sends](const std::string&, const Value&, uint64_t) { ++sends; });
    Rng rng(kSeed);
    bool ok = true;
    for (int seq = 0; seq < kMessages && ok; ++seq) {
      ok = (*runtime)->DriveMessage(&rng, seq).ok();
    }
    if (ok && sends > 0) {
      source = app;
      break;
    }
  }
  const CorpusApp* destination = nullptr;
  for (const CorpusApp* app : apps) {
    if (app != source && !app->entry_kind.empty()) {
      destination = app;
      break;
    }
  }
  return {source, destination};
}

TEST(FleetTraceTest, WiredPairAssemblesCrossShardTrace) {
  auto [source, destination] = PickWiredPair();
  ASSERT_NE(source, nullptr) << "no managed app produces terminal sends";
  ASSERT_NE(destination, nullptr);

  FleetRuntime::Options options;
  options.shards = 2;
  options.rng_seed = kSeed;
  options.audit_capacity = 1u << 16;
  options.trace_capacity = 1u << 12;  // turns on per-context recorders + fleet ids
  FleetRuntime fleet(options);
  std::string a = fleet.AddApp(*source, /*shard=*/0);
  std::string b = fleet.AddApp(*destination, /*shard=*/1);
  ASSERT_TRUE(fleet.Wire(a, b).ok());
  ASSERT_TRUE(fleet.Start().ok());
  for (int seq = 0; seq < kMessages; ++seq) {
    ASSERT_TRUE(fleet.Post(a, seq));
  }
  fleet.Drain();
  fleet.Stop();  // joins shard threads: recorders are quiescent
  EXPECT_EQ(fleet.errors(), std::vector<std::string>{});

  obs::FleetTraceAssembler assembled = fleet.AssembleTrace();
  EXPECT_EQ(assembled.context_count(), 2u);
  // One fleet trace per posted message, each with at least one wire crossing
  // overall (A fans every terminal send into B).
  EXPECT_EQ(assembled.fleet_trace_count(), static_cast<size_t>(kMessages));
  EXPECT_GE(assembled.wire_hops(), 1u);

  // Find a fleet trace that crossed the wire and check the stitched chain.
  bool found_crossing = false;
  for (uint64_t id : assembled.FleetTraceIds()) {
    std::vector<obs::FleetTraceAssembler::Hop> hops = assembled.HopsOf(id);
    if (hops.size() < 2) {
      continue;
    }
    found_crossing = true;
    // Hop 0: the injection on A's shard, with recorded spans.
    EXPECT_EQ(hops[0].hop, 0u);
    EXPECT_EQ(hops[0].shard, 0);
    EXPECT_EQ(hops[0].source, a);
    EXPECT_EQ(hops[0].parent_span, 0u);
    EXPECT_FALSE(hops[0].events.empty());
    // Hop 1: the continuation on B's shard, chained through the wire: its
    // parent_span is A's local trace id for hop 0.
    EXPECT_EQ(hops[1].hop, 1u);
    EXPECT_EQ(hops[1].shard, 1);
    EXPECT_EQ(hops[1].source, b);
    EXPECT_EQ(hops[1].parent_span, hops[0].local_trace_id);
    EXPECT_FALSE(hops[1].events.empty());
    break;
  }
  EXPECT_TRUE(found_crossing) << "no assembled fleet trace spans both shards";

  // The Chrome export reflects the same story: a lane per shard and at least
  // one flow arrow ("s" start + "f" finish) across the wire.
  Json chrome = assembled.ChromeTraceJson();
  std::string rendered = chrome.Dump(false);
  EXPECT_NE(rendered.find("\"name\":\"shard0\""), std::string::npos);
  EXPECT_NE(rendered.find("\"name\":\"shard1\""), std::string::npos);
  EXPECT_NE(rendered.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(rendered.find("\"ph\":\"f\""), std::string::npos);
}

TEST(FleetTraceTest, TelemetryServesWhileShardsProcess) {
  std::vector<const CorpusApp*> apps = ManagedApps();
  ASSERT_GE(apps.size(), 3u);
  apps.resize(3);

  obs::TelemetryServer server;
  ASSERT_TRUE(server.Start(0).ok());

  FleetRuntime::Options options;
  options.shards = 3;
  options.rng_seed = kSeed;
  options.audit_capacity = 1u << 16;
  FleetRuntime fleet(options);
  std::vector<std::string> ids;
  for (const CorpusApp* app : apps) {
    ids.push_back(fleet.AddApp(*app));
  }
  ASSERT_TRUE(fleet.Start().ok());
  fleet.AttachTelemetry(&server);

  // A posting thread keeps all three shards busy while this thread scrapes.
  std::thread poster([&] {
    for (int seq = 0; seq < 40; ++seq) {
      for (const std::string& id : ids) {
        fleet.Post(id, seq);
      }
    }
  });
  bool saw_depth = false;
  bool saw_queue = false;
  bool saw_healthy = false;
  for (int i = 0; i < 50; ++i) {
    std::string metrics = HttpGet(server.port(), "/metrics");
    EXPECT_NE(metrics.find("200 OK"), std::string::npos);
    saw_depth = saw_depth || metrics.find("shard_mailbox_depth") != std::string::npos;
    saw_queue = saw_queue || metrics.find("fleet_queue_seconds") != std::string::npos;
    std::string health = HttpGet(server.port(), "/healthz");
    saw_healthy = saw_healthy || (health.find("200 OK") != std::string::npos &&
                                  health.find("\"ok\":true") != std::string::npos);
  }
  poster.join();
  fleet.Drain();
  EXPECT_TRUE(saw_depth);
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_healthy);

  // Stop() detaches the fleet's providers (blocking on any in-flight scrape)
  // before joining shards, so a post-Stop scrape serves the defaults.
  fleet.Stop();
  EXPECT_EQ(fleet.errors(), std::vector<std::string>{});
  EXPECT_NE(HttpGet(server.port(), "/healthz").find("200 OK"), std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace turnstile
