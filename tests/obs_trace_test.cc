// The observability trace recorder: span recording for a wired flow, ring
// buffer eviction, and the disabled-path no-op guarantee.
#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include "src/dift/tracker.h"
#include "src/flow/engine.h"

namespace turnstile {
namespace {

using obs::SpanKind;
using obs::TraceEvent;
using obs::TraceRecorder;

// The flow engine and interpreter report into the global recorder, so these
// tests drive it and restore the disabled default afterwards.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { TraceRecorder::Global().Disable(); }
};

TEST_F(TraceTest, DisabledRecorderIsANoOp) {
  TraceRecorder& recorder = TraceRecorder::Global();
  ASSERT_FALSE(recorder.enabled());
  EXPECT_EQ(recorder.StartTrace("n1"), 0u);
  recorder.Record(SpanKind::kNodeEnter, "n1");
  EXPECT_EQ(recorder.current_trace(), 0u);
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST_F(TraceTest, RecordsAndFiltersByTrace) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(16);
  uint64_t first = recorder.StartTrace("a");
  recorder.Record(SpanKind::kNodeEnter, "a");
  uint64_t second = recorder.StartTrace("b");
  recorder.Record(SpanKind::kNodeEnter, "b");
  EXPECT_NE(first, 0u);
  EXPECT_NE(second, first);
  EXPECT_EQ(recorder.OriginOf(first), "a");
  EXPECT_EQ(recorder.OriginOf(second), "b");
  // Each trace: its kInject plus one kNodeEnter.
  std::vector<TraceEvent> events = recorder.EventsForTrace(first);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, SpanKind::kInject);
  EXPECT_EQ(events[1].kind, SpanKind::kNodeEnter);
  EXPECT_EQ(recorder.traces_started(), 2u);
}

TEST_F(TraceTest, RingBufferEvictsOldest) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(SpanKind::kLoopTurn, "turn" + std::to_string(i));
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  std::vector<TraceEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().subject, "turn6");  // oldest surviving
  EXPECT_EQ(events.back().subject, "turn9");
  // Sequence numbers stay monotonic across eviction.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

TEST_F(TraceTest, RingWrapAroundDropsEventsButKeepsOrigins) {
  // The ring evicts oldest-first across ALL traces, so a long-lived trace can
  // lose its head (including its kInject) while newer traces stay complete.
  // EventsForTrace answers with whatever survives — partial is not an error.
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(4);
  uint64_t old_trace = recorder.StartTrace("old-origin");
  recorder.Record(SpanKind::kNodeEnter, "old-node");
  uint64_t new_trace = recorder.StartTrace("new-origin");
  recorder.Record(SpanKind::kNodeEnter, "new-a");
  recorder.Record(SpanKind::kNodeEnter, "new-b");
  // Ring now holds the 4 most recent events; old_trace's kInject (event #1)
  // was evicted, its kNodeEnter survives.
  EXPECT_EQ(recorder.dropped(), 1u);
  std::vector<TraceEvent> old_events = recorder.EventsForTrace(old_trace);
  ASSERT_EQ(old_events.size(), 1u);
  EXPECT_EQ(old_events[0].kind, SpanKind::kNodeEnter);
  // The origin map lives beside the ring, so attribution survives eviction.
  EXPECT_EQ(recorder.OriginOf(old_trace), "old-origin");
  // The newer trace is still complete: kInject + two node spans.
  EXPECT_EQ(recorder.EventsForTrace(new_trace).size(), 3u);
}

TEST_F(TraceTest, RingWrapAroundFullyEvictedTraceKeepsOriginOnly) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(2);
  uint64_t gone = recorder.StartTrace("evicted-origin");
  recorder.Record(SpanKind::kNodeEnter, "gone-node");
  recorder.StartTrace("later");
  recorder.Record(SpanKind::kNodeEnter, "later-node");
  // Both of `gone`'s events rolled off: empty answer, not an error, and the
  // origin is still queryable until Clear()/Disable().
  EXPECT_TRUE(recorder.EventsForTrace(gone).empty());
  EXPECT_EQ(recorder.OriginOf(gone), "evicted-origin");
  EXPECT_EQ(recorder.dropped(), 2u);
  recorder.Clear();
  EXPECT_EQ(recorder.OriginOf(gone), "");
}

TEST_F(TraceTest, ScopedTraceRestoresPrevious) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(16);
  uint64_t outer = recorder.StartTrace("outer");
  {
    obs::ScopedTrace scope(recorder, 42);
    EXPECT_EQ(recorder.current_trace(), 42u);
  }
  EXPECT_EQ(recorder.current_trace(), outer);
}

constexpr const char* kPipelineModule = R"(
  module.exports = function(RED) {
    function PassNode(config) {
      RED.nodes.createNode(this, config);
      let node = this;
      node.on("input", msg => { node.send(msg); });
    }
    function EndNode(config) {
      RED.nodes.createNode(this, config);
      let node = this;
      node.on("input", msg => { node.send(msg); });
    }
    RED.nodes.registerType("pass", PassNode);
    RED.nodes.registerType("end", EndNode);
  };
)";

TEST_F(TraceTest, ThreeNodeFlowProducesSpans) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(256);

  Interpreter interp;
  FlowEngine engine(&interp);
  ASSERT_TRUE(engine.LoadModule(kPipelineModule, "pipeline.js").ok());
  auto flow = Json::Parse(R"([
    { "id": "n1", "type": "pass", "wires": ["n2"] },
    { "id": "n2", "type": "pass", "wires": ["n3"] },
    { "id": "n3", "type": "end", "wires": [] }
  ])");
  ASSERT_TRUE(flow.ok());
  ASSERT_TRUE(engine.InstantiateFlow(*flow).ok());

  ObjectPtr msg = MakeObject();
  msg->Set("payload", Value("ping"));
  ASSERT_TRUE(engine.InjectInput("n1", Value(msg)).ok());
  ASSERT_TRUE(interp.RunEventLoop().ok());

  ASSERT_EQ(recorder.traces_started(), 1u);
  std::vector<TraceEvent> events = recorder.EventsForTrace(1);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(recorder.OriginOf(1), "n1");

  // Count the structural spans: the whole cascade from one inject must be
  // attributed to the single trace.
  int injects = 0, enters = 0, wire_sends = 0, terminal_sends = 0;
  for (const TraceEvent& event : events) {
    EXPECT_EQ(event.trace_id, 1u);
    switch (event.kind) {
      case SpanKind::kInject:
        ++injects;
        EXPECT_EQ(event.subject, "n1");
        break;
      case SpanKind::kNodeEnter:
        ++enters;
        break;
      case SpanKind::kNodeSend:
        if (event.detail == "(terminal)") {
          ++terminal_sends;
        } else {
          ++wire_sends;
        }
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(injects, 1);
  EXPECT_EQ(enters, 3);         // n1, n2, n3 each saw the message
  EXPECT_EQ(wire_sends, 2);     // n1->n2, n2->n3
  EXPECT_EQ(terminal_sends, 1); // n3 has no wires

  // A second inject opens a distinct trace.
  ObjectPtr msg2 = MakeObject();
  msg2->Set("payload", Value("pong"));
  ASSERT_TRUE(engine.InjectInput("n1", Value(msg2)).ok());
  ASSERT_TRUE(interp.RunEventLoop().ok());
  EXPECT_EQ(recorder.traces_started(), 2u);
  EXPECT_FALSE(recorder.EventsForTrace(2).empty());
}

TEST_F(TraceTest, DisabledFlowStillRoutes) {
  // With the recorder left disabled, the same flow routes normally and no
  // events are buffered — the disabled path must not perturb execution.
  TraceRecorder& recorder = TraceRecorder::Global();
  ASSERT_FALSE(recorder.enabled());

  Interpreter interp;
  FlowEngine engine(&interp);
  ASSERT_TRUE(engine.LoadModule(kPipelineModule, "pipeline.js").ok());
  auto flow = Json::Parse(R"([
    { "id": "n1", "type": "pass", "wires": ["n2"] },
    { "id": "n2", "type": "end", "wires": [] }
  ])");
  ASSERT_TRUE(flow.ok());
  ASSERT_TRUE(engine.InstantiateFlow(*flow).ok());
  ObjectPtr msg = MakeObject();
  msg->Set("payload", Value("quiet"));
  ASSERT_TRUE(engine.InjectInput("n1", Value(msg)).ok());
  ASSERT_TRUE(interp.RunEventLoop().ok());
  EXPECT_EQ(engine.messages_routed(), 1);
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.traces_started(), 0u);
}

TEST_F(TraceTest, DiftCheckSpansCarryMemoizedLabelDetail) {
  // With tracing enabled, every __dift check records a kDiftCheck span whose
  // detail renders both label sets. The rendering is memoized per interned
  // handle pair: repeated checks of the same sets reuse one string instead of
  // re-formatting label names per event.
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Enable(64);

  Interpreter interp;
  auto policy = Policy::FromJsonText(R"json({
    "labellers": { "secret": { "$const": "secret" },
                   "public": { "$const": "public" } },
    "rules": ["public -> secret"]
  })json");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  std::shared_ptr<Policy> shared(std::move(*policy).release());
  DiftTracker tracker(&interp, shared);

  auto data = tracker.Label(Value("payload"), "secret");
  ASSERT_TRUE(data.ok());
  ObjectPtr sink = MakeObject();
  auto receiver = tracker.Label(Value(sink), "public");
  ASSERT_TRUE(receiver.ok());

  uint64_t renders_before = shared->pool().renders_computed();
  ASSERT_TRUE(tracker.Check(*data, *receiver, "store").ok());
  ASSERT_TRUE(tracker.Check(*data, *receiver, "store").ok());
  ASSERT_TRUE(tracker.Check(*data, *receiver, "store").ok());
  // The label sets were rendered at most once each across all three checks.
  EXPECT_LE(shared->pool().renders_computed() - renders_before, 2u);

  int check_spans = 0;
  for (const TraceEvent& event : recorder.Snapshot()) {
    if (event.kind != SpanKind::kDiftCheck) {
      continue;
    }
    ++check_spans;
    EXPECT_EQ(event.subject, "store");
    EXPECT_EQ(event.detail, "{secret} vs {public}");
  }
  EXPECT_EQ(check_spans, 3);
}

TEST_F(TraceTest, EventToStringNamesKindAndSubject) {
  TraceEvent event;
  event.trace_id = 3;
  event.kind = SpanKind::kDiftLabel;
  event.subject = "Frame";
  event.detail = "secret";
  std::string rendered = event.ToString();
  EXPECT_NE(rendered.find(obs::SpanKindName(SpanKind::kDiftLabel)), std::string::npos);
  EXPECT_NE(rendered.find("Frame"), std::string::npos);
}

}  // namespace
}  // namespace turnstile
