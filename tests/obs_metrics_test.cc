// The observability metrics registry: counter/gauge/histogram semantics,
// JSON + Prometheus exposition, and hot-path thread safety.
#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace turnstile {
namespace obs {
namespace {

TEST(CounterTest, IncrementAndDelta) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddAndNegative) {
  Gauge g;
  g.Set(10);
  g.Add(-25);
  EXPECT_EQ(g.value(), -15);
}

TEST(HistogramTest, BucketSemantics) {
  Histogram h({1.0, 2.0, 5.0});
  h.Observe(0.5);   // <= 1
  h.Observe(1.0);   // <= 1 (le is inclusive)
  h.Observe(1.5);   // <= 2
  h.Observe(4.0);   // <= 5
  h.Observe(100.0); // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 107.0);
  // Cumulative counts per bound + the +Inf total.
  std::vector<uint64_t> cumulative = h.CumulativeCounts();
  ASSERT_EQ(cumulative.size(), 4u);
  EXPECT_EQ(cumulative[0], 2u);
  EXPECT_EQ(cumulative[1], 3u);
  EXPECT_EQ(cumulative[2], 4u);
  EXPECT_EQ(cumulative[3], 5u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, QuantileOnEmptyHistogramIsZero) {
  Histogram h({1.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.9), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);
}

TEST(HistogramTest, QuantileOnSingleSampleReturnsTheSample) {
  // With one observation every quantile IS that observation; bucket
  // interpolation must not report a fraction of the bucket's lower bound.
  Histogram h({1.0, 2.0, 5.0});
  h.Observe(1.7);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.7);
  EXPECT_DOUBLE_EQ(h.Quantile(0.9), 1.7);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 1.7);
  // Also when the lone sample lands in the +Inf bucket.
  Histogram inf({1.0, 2.0});
  inf.Observe(100.0);
  EXPECT_DOUBLE_EQ(inf.Quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(inf.Quantile(0.99), 100.0);
}

TEST(HistogramTest, DefaultLatencyBoundsAreSorted) {
  std::vector<double> bounds = Histogram::DefaultLatencyBounds();
  ASSERT_FALSE(bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(MetricsTest, InstrumentPointersAreStable) {
  Metrics metrics;
  Counter* a = metrics.GetCounter("flow.messages_routed");
  Counter* b = metrics.GetCounter("flow.messages_routed");
  EXPECT_EQ(a, b);
  EXPECT_NE(metrics.GetCounter("other"), a);
  // Names are per-kind namespaces: a gauge may share a counter's name.
  EXPECT_NE(static_cast<void*>(metrics.GetGauge("flow.messages_routed")),
            static_cast<void*>(a));
}

TEST(MetricsTest, HistogramBoundsApplyOnFirstRegistrationOnly) {
  Metrics metrics;
  Histogram* h = metrics.GetHistogram("x", {1.0, 2.0});
  Histogram* again = metrics.GetHistogram("x", {99.0});
  EXPECT_EQ(h, again);
  EXPECT_EQ(h->bounds().size(), 2u);
}

TEST(MetricsTest, ToJsonIsValidAndComplete) {
  Metrics metrics;
  metrics.GetCounter("dift.checks")->Increment(7);
  metrics.GetGauge("interp.queue_depth")->Set(3);
  metrics.GetHistogram("analysis.taint_seconds", {0.1, 1.0})->Observe(0.05);

  Json snapshot = metrics.ToJson();
  // Round-trip through the serializer: the exposition must be valid JSON.
  auto parsed = Json::Parse(snapshot.Dump(/*pretty=*/true));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ((*parsed)["counters"].GetNumber("dift.checks"), 7);
  EXPECT_EQ((*parsed)["gauges"].GetNumber("interp.queue_depth"), 3);
  const Json& histogram = (*parsed)["histograms"]["analysis.taint_seconds"];
  EXPECT_EQ(histogram.GetNumber("count"), 1);
  EXPECT_DOUBLE_EQ(histogram.GetNumber("sum"), 0.05);
  // Two bounds + the +Inf bucket.
  EXPECT_EQ(histogram["buckets"].array_items().size(), 3u);
}

TEST(MetricsTest, PrometheusTextFormat) {
  Metrics metrics;
  metrics.GetCounter("dift.label_calls")->Increment(3);
  metrics.GetHistogram("interp.turn_seconds", {0.5})->Observe(0.25);

  std::string text = metrics.ToPrometheusText();
  // Dots are sanitized to underscores; families carry TYPE lines.
  EXPECT_NE(text.find("# TYPE dift_label_calls counter"), std::string::npos);
  EXPECT_NE(text.find("dift_label_calls 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE interp_turn_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("interp_turn_seconds_bucket{le=\"0.5\"} 1"), std::string::npos);
  EXPECT_NE(text.find("interp_turn_seconds_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("interp_turn_seconds_count 1"), std::string::npos);
}

TEST(MetricsTest, ConcurrentIncrementsAreLossless) {
  Metrics metrics;
  Counter* counter = metrics.GetCounter("stress.counter");
  Histogram* histogram = metrics.GetHistogram("stress.histogram", {0.5});
  constexpr int kThreads = 8;
  constexpr int kIterations = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, histogram] {
      for (int i = 0; i < kIterations; ++i) {
        counter->Increment();
        histogram->Observe(i % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->value(), static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(histogram->count(), static_cast<uint64_t>(kThreads) * kIterations);
  std::vector<uint64_t> cumulative = histogram->CumulativeCounts();
  ASSERT_EQ(cumulative.size(), 2u);
  EXPECT_EQ(cumulative[0], static_cast<uint64_t>(kThreads) * kIterations / 2);
}

TEST(MetricsTest, GlobalIsASingleton) {
  EXPECT_EQ(&Metrics::Global(), &Metrics::Global());
}

TEST(MetricsTest, ResetAllForTestZeroesInstruments) {
  Metrics metrics;
  Counter* counter = metrics.GetCounter("a");
  Gauge* gauge = metrics.GetGauge("b");
  Histogram* histogram = metrics.GetHistogram("c", {1.0});
  counter->Increment(5);
  gauge->Set(5);
  histogram->Observe(0.5);
  metrics.ResetAllForTest();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(histogram->count(), 0u);
}

// --- derived quantiles (ISSUE 5 satellite) -----------------------------------

TEST(HistogramQuantileTest, LinearInterpolationWithinBuckets) {
  Histogram h({10.0, 20.0, 30.0});
  // 10 observations uniform in (0,10], 10 in (10,20].
  for (int i = 0; i < 10; ++i) {
    h.Observe(5.0);
    h.Observe(15.0);
  }
  // p50: rank 10 of 20 lands exactly at the first bucket's upper edge.
  EXPECT_DOUBLE_EQ(h.Quantile(0.50), 10.0);
  // p75: rank 15, 5 of 10 into the (10,20] bucket -> 15.0.
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 15.0);
  // p25: rank 5, halfway into the first bucket, interpolated from 0.
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 5.0);
  // q clamps to [0,1].
  EXPECT_DOUBLE_EQ(h.Quantile(1.5), h.Quantile(1.0));
}

TEST(HistogramQuantileTest, EmptyAndOverflowCases) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty histogram
  h.Observe(100.0);  // everything in +Inf
  // A single sample is reported exactly, even from the overflow bucket.
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 100.0);
  h.Observe(100.0);
  // No finite upper edge to interpolate towards: clamp to the largest bound.
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 2.0);
}

TEST(MetricsTest, JsonSnapshotCarriesPercentileEstimates) {
  Metrics metrics;
  Histogram* h = metrics.GetHistogram("lat", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.5);
  Json snapshot = metrics.ToJson();
  const Json& entry = snapshot["histograms"]["lat"];
  ASSERT_TRUE(entry.is_object());
  EXPECT_TRUE(entry.Has("p50"));
  EXPECT_TRUE(entry.Has("p90"));
  EXPECT_TRUE(entry.Has("p99"));
  EXPECT_GT(entry.GetNumber("p50"), 0.0);
  EXPECT_GE(entry.GetNumber("p99"), entry.GetNumber("p50"));
}

TEST(MetricsTest, FloatGaugeInJsonAndPrometheus) {
  Metrics metrics;
  metrics.GetFloatGauge("dift.overhead_fraction")->Set(0.125);
  EXPECT_DOUBLE_EQ(metrics.ToJson()["gauges"].GetNumber("dift.overhead_fraction"), 0.125);
  std::string text = metrics.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE dift_overhead_fraction gauge\n"), std::string::npos);
  EXPECT_NE(text.find("dift_overhead_fraction 0.125\n"), std::string::npos);
  metrics.ResetAllForTest();
  EXPECT_DOUBLE_EQ(metrics.GetFloatGauge("dift.overhead_fraction")->value(), 0.0);
}

// --- Prometheus exposition edge cases (ISSUE 5 satellite) --------------------

TEST(PrometheusTest, MetricNameSanitization) {
  // Dots and dashes map to '_'; a leading digit gains a '_' prefix.
  EXPECT_EQ(PrometheusName("flow.node-turn.seconds"), "flow_node_turn_seconds");
  EXPECT_EQ(PrometheusName("2fast"), "_2fast");
  EXPECT_EQ(PrometheusName(""), "_");
  EXPECT_EQ(PrometheusName("ok_name:sub"), "ok_name:sub");

  Metrics metrics;
  metrics.GetCounter("weird metric/name")->Increment();
  std::string text = metrics.ToPrometheusText();
  EXPECT_NE(text.find("weird_metric_name 1\n"), std::string::npos);
  EXPECT_EQ(text.find("weird metric/name"), std::string::npos);
}

TEST(PrometheusTest, LabelValueEscaping) {
  EXPECT_EQ(PrometheusLabelValue("plain"), "plain");
  EXPECT_EQ(PrometheusLabelValue("back\\slash"), "back\\\\slash");
  EXPECT_EQ(PrometheusLabelValue("quo\"te"), "quo\\\"te");
  EXPECT_EQ(PrometheusLabelValue("new\nline"), "new\\nline");

  // A labeled series renders with the escaped value and a sanitized family.
  Metrics metrics;
  metrics.GetFloatGauge(MetricWithLabel("dift.overhead_fraction", "app", "we\"ird\napp"))
      ->Set(0.5);
  std::string text = metrics.ToPrometheusText();
  EXPECT_NE(text.find("dift_overhead_fraction{app=\"we\\\"ird\\napp\"} 0.5\n"),
            std::string::npos);
  // The TYPE line carries the bare family name, no label block.
  EXPECT_NE(text.find("# TYPE dift_overhead_fraction gauge\n"), std::string::npos);
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeWithInfTotal) {
  Metrics metrics;
  Histogram* h = metrics.GetHistogram("lat.seconds", {1.0, 2.0, 5.0});
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(4.0);
  h->Observe(100.0);
  std::string text = metrics.ToPrometheusText();
  // `le` buckets are cumulative and the +Inf bucket equals the total count.
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"5\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 4\n"), std::string::npos);
}

TEST(MetricsConcurrencyTest, TwoContextRegistriesPlusSnapshotterStayConsistent) {
  // The RuntimeContext scenario: two app instances record into their own
  // registries on their own threads while a third thread snapshots both.
  // Counts must come out exact per registry, instrument pointers must stay
  // stable across concurrent registration, and every snapshot taken
  // mid-flight must be well-formed JSON (no torn output).
  Metrics registry_a;
  Metrics registry_b;
  constexpr uint64_t kIncrements = 50000;

  Counter* a_before = registry_a.GetCounter("work.items");
  Counter* b_before = registry_b.GetCounter("work.items");

  std::atomic<bool> stop{false};
  std::thread writer_a([&] {
    Counter* c = registry_a.GetCounter("work.items");
    Histogram* h = registry_a.GetHistogram("work.seconds");
    for (uint64_t i = 0; i < kIncrements; ++i) {
      c->Increment();
      h->Observe(1e-6 * static_cast<double>(i % 100));
      // Keep registering fresh labelled instruments so registration races
      // with the snapshotter's map walk, not just with atomic updates.
      if (i % 8192 == 0) {
        registry_a.GetCounter(MetricWithLabel("work.phase", "n", std::to_string(i)));
      }
    }
  });
  std::thread writer_b([&] {
    Counter* c = registry_b.GetCounter("work.items");
    for (uint64_t i = 0; i < kIncrements; ++i) {
      c->Increment();
    }
  });
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (Metrics* m : {&registry_a, &registry_b}) {
        std::string dump = m->ToJson().Dump();
        auto parsed = Json::Parse(dump);
        ASSERT_TRUE(parsed.ok()) << "torn JSON snapshot: " << dump;
        EXPECT_FALSE(m->ToPrometheusText().empty());
      }
    }
  });
  writer_a.join();
  writer_b.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();

  // Counter pointer stability: GetCounter after the storm returns the same
  // instrument it returned before it.
  EXPECT_EQ(registry_a.GetCounter("work.items"), a_before);
  EXPECT_EQ(registry_b.GetCounter("work.items"), b_before);
  // Disjoint and exact: each registry saw only its own writer.
  EXPECT_EQ(a_before->value(), kIncrements);
  EXPECT_EQ(b_before->value(), kIncrements);
  EXPECT_EQ(registry_a.GetHistogram("work.seconds")->count(), kIncrements);
}

TEST(HistogramTest, MergeFoldsBucketsCountAndSum) {
  Histogram a({0.001, 0.01, 0.1});
  Histogram b({0.001, 0.01, 0.1});
  a.Observe(0.0005);
  a.Observe(0.05);
  b.Observe(0.005);
  b.Observe(0.05);
  b.Observe(5.0);  // +Inf bucket

  ASSERT_TRUE(a.Merge(b));
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.sum(), 0.0005 + 0.05 + 0.005 + 0.05 + 5.0);
  // Cumulative per-le counts: <=0.001 holds 1, <=0.01 adds b's 0.005, <=0.1
  // holds both 0.05s, +Inf catches everything.
  std::vector<uint64_t> cumulative = a.CumulativeCounts();
  ASSERT_EQ(cumulative.size(), 4u);
  EXPECT_EQ(cumulative[0], 1u);
  EXPECT_EQ(cumulative[1], 2u);
  EXPECT_EQ(cumulative[2], 4u);
  EXPECT_EQ(cumulative[3], 5u);
  // The source is untouched; quantiles now answer over the merged population.
  EXPECT_EQ(b.count(), 3u);
  EXPECT_GT(a.Quantile(0.99), 0.0);
}

TEST(HistogramTest, MergeIsRepeatableAndMergesEmpties) {
  Histogram into(Histogram::DefaultLatencyBounds());
  Histogram empty(Histogram::DefaultLatencyBounds());
  ASSERT_TRUE(into.Merge(empty));
  EXPECT_EQ(into.count(), 0u);

  Histogram shard(Histogram::DefaultLatencyBounds());
  shard.Observe(0.002);
  ASSERT_TRUE(into.Merge(shard));
  ASSERT_TRUE(into.Merge(shard));  // per-shard merged twice = counted twice
  EXPECT_EQ(into.count(), 2u);
  EXPECT_DOUBLE_EQ(into.sum(), 0.004);
}

TEST(HistogramTest, MergeRejectsMismatchedBoundsUntouched) {
  Histogram a({0.001, 0.01});
  Histogram b({0.001, 0.5});
  b.Observe(0.2);
  EXPECT_FALSE(a.Merge(b));
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(HistogramTest, MergeRejectionIsCountedNotSilent) {
  // A rejected merge must leave a visible trail: every bounds mismatch bumps
  // the global obs.merge_rejected counter (delta-based so the test is immune
  // to other tests in this binary having tripped it first).
  Counter* rejected = Metrics::Global().GetCounter("obs.merge_rejected");
  const uint64_t before = rejected->value();

  Histogram target(Histogram::DefaultLatencyBounds());
  Histogram differs({1.0, 2.0});
  differs.Observe(1.5);
  EXPECT_FALSE(target.Merge(differs));
  EXPECT_FALSE(target.Merge(differs));
  EXPECT_EQ(rejected->value(), before + 2);

  // A compatible merge leaves the rejection counter alone.
  Histogram same(Histogram::DefaultLatencyBounds());
  same.Observe(0.002);
  EXPECT_TRUE(target.Merge(same));
  EXPECT_EQ(rejected->value(), before + 2);
}

TEST(PrometheusTest, LabeledHistogramMergesLeIntoLabelBlock) {
  Metrics metrics;
  Histogram* h = metrics.GetHistogram(MetricWithLabel("turn.seconds", "node", "gf"), {1.0});
  h->Observe(0.5);
  h->Observe(3.0);
  std::string text = metrics.ToPrometheusText();
  EXPECT_NE(text.find("turn_seconds_bucket{node=\"gf\",le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("turn_seconds_bucket{node=\"gf\",le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("turn_seconds_sum{node=\"gf\"} 3.5\n"), std::string::npos);
  EXPECT_NE(text.find("turn_seconds_count{node=\"gf\"} 2\n"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace turnstile
