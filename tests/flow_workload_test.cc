// Workload synthesis contracts: every $-template placeholder expands
// deterministically per (rng state, seq) — the property both the benches and
// the fleet runtime's differential gate rely on — and the streaming
// completion-time model handles its edge cases (empty stream, saturating
// rate, idle arrivals, zero rate).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/flow/workload.h"
#include "src/interp/value.h"
#include "src/support/json.h"
#include "src/support/rng.h"

namespace turnstile {
namespace {

constexpr const char* kPlaceholders[] = {"$frame", "$word",  "$sentence", "$num", "$id",
                                         "$email", "$topic", "$seq",      "$json"};

std::string Render(const Json& tmpl, uint64_t seed, int seq) {
  Rng rng(seed);
  return UnboxDeep(GenerateMessage(tmpl, &rng, seq)).ToDisplayString();
}

TEST(FlowWorkloadTest, EveryPlaceholderExpandsDeterministicallyPerRngAndSeq) {
  for (const char* placeholder : kPlaceholders) {
    SCOPED_TRACE(placeholder);
    Json tmpl{std::string(placeholder)};
    // Same rng seed + same seq -> byte-identical expansion.
    EXPECT_EQ(Render(tmpl, 977u, 3), Render(tmpl, 977u, 3));
    // $seq ignores the rng; everything else is a pure function of rng state.
    std::string different_seed = Render(tmpl, 978u, 3);
    if (std::string(placeholder) == "$seq") {
      EXPECT_EQ(Render(tmpl, 977u, 3), different_seed);
    } else {
      EXPECT_NE(Render(tmpl, 977u, 3), different_seed);
    }
  }
}

TEST(FlowWorkloadTest, SeqReachesFrameAndSeqPlaceholders) {
  // $frame embeds the sequence number; $seq *is* the sequence number.
  EXPECT_NE(Render(Json(std::string("$frame")), 977u, 1),
            Render(Json(std::string("$frame")), 977u, 2));
  EXPECT_EQ(Render(Json(std::string("$seq")), 1u, 41), "41");
  Rng rng(1u);
  Value seq_value = GenerateMessage(Json(std::string("$seq")), &rng, 7);
  ASSERT_TRUE(seq_value.IsNumber());
  EXPECT_EQ(seq_value.AsNumber(), 7.0);
}

TEST(FlowWorkloadTest, UnknownPlaceholderAndLiteralsCopyVerbatim) {
  EXPECT_EQ(Render(Json(std::string("$nope")), 977u, 0), "$nope");
  EXPECT_EQ(Render(Json(std::string("plain")), 977u, 0), "plain");
  // Dollar placeholders nested in objects/arrays expand in template order, so
  // a fixed seed renders the whole composite message identically.
  Json tmpl = Json::Object();
  tmpl.Set("id", Json(std::string("$id")));
  Json readings = Json::Array();
  readings.Append(Json(std::string("$num")));
  readings.Append(Json(std::string("$num")));
  tmpl.Set("readings", readings);
  std::string once = Render(tmpl, 42u, 0);
  EXPECT_EQ(once, Render(tmpl, 42u, 0));
  EXPECT_NE(once, Render(tmpl, 43u, 0));
}

TEST(FlowWorkloadTest, StreamCompletionTimeEmptyStreamIsZero) {
  EXPECT_EQ(StreamCompletionTime({}, 10.0), 0.0);
  EXPECT_EQ(StreamCompletionTime({}, 0.0), 0.0);
}

TEST(FlowWorkloadTest, StreamCompletionTimeSaturatedRateIsSumOfWork) {
  // Arrivals at 1000 Hz but 0.1 s of work per message: the queue never
  // drains, so completion is arrival-independent total work.
  std::vector<double> proc = {0.1, 0.1, 0.1, 0.1};
  EXPECT_DOUBLE_EQ(StreamCompletionTime(proc, 1000.0), 0.4);
  // Rate 0 disables pacing entirely (period 0): same serial sum.
  EXPECT_DOUBLE_EQ(StreamCompletionTime(proc, 0.0), 0.4);
}

TEST(FlowWorkloadTest, StreamCompletionTimeIdleArrivalsAreWorkConserving) {
  // 1 Hz arrivals, 0.01 s work: every message starts at its arrival instant,
  // so completion = last arrival + its own processing.
  std::vector<double> proc(5, 0.01);
  EXPECT_DOUBLE_EQ(StreamCompletionTime(proc, 1.0), 4.0 + 0.01);
  // One slow message delays its successor past that successor's arrival.
  std::vector<double> bursty = {1.5, 0.01};  // arrivals at t=0 and t=1
  EXPECT_DOUBLE_EQ(StreamCompletionTime(bursty, 1.0), 1.5 + 0.01);
}

TEST(FlowWorkloadTest, RelativeRuntimeGuardsZeroOriginal) {
  EXPECT_DOUBLE_EQ(RelativeRuntime({0.2, 0.2}, {}, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(RelativeRuntime({0.2, 0.2}, {0.1, 0.1}, 1000.0), 2.0);
}

}  // namespace
}  // namespace turnstile
