#include "src/lang/parser.h"

#include <gtest/gtest.h>

#include "src/lang/printer.h"

namespace turnstile {
namespace {

Program MustParse(std::string_view source) {
  auto result = ParseProgram(source);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) {
    return Program{MakeNode(NodeKind::kProgram), "<error>", 0};
  }
  return std::move(result).value();
}

// Returns the first statement of the parsed program.
NodePtr FirstStmt(std::string_view source) {
  Program p = MustParse(source);
  EXPECT_FALSE(p.root->children.empty());
  return p.root->children.empty() ? MakeNode(NodeKind::kEmpty) : p.root->children[0];
}

// Returns the expression of the first (expression) statement.
NodePtr FirstExpr(std::string_view source) {
  NodePtr stmt = FirstStmt(source);
  EXPECT_EQ(stmt->kind, NodeKind::kExprStmt);
  return stmt->children.empty() ? MakeNode(NodeKind::kEmpty) : stmt->children[0];
}

TEST(ParserTest, VarDeclWithMultipleDeclarators) {
  NodePtr decl = FirstStmt("let a = 1, b, c = a;");
  ASSERT_EQ(decl->kind, NodeKind::kVarDecl);
  EXPECT_EQ(decl->str, "let");
  ASSERT_EQ(decl->children.size(), 3u);
  EXPECT_EQ(decl->children[0]->str, "a");
  EXPECT_EQ(decl->children[0]->children[0]->kind, NodeKind::kNumberLit);
  EXPECT_TRUE(decl->children[1]->children.empty());
  EXPECT_EQ(decl->children[2]->children[0]->kind, NodeKind::kIdentifier);
}

TEST(ParserTest, BinaryPrecedence) {
  NodePtr expr = FirstExpr("1 + 2 * 3;");
  ASSERT_EQ(expr->kind, NodeKind::kBinaryExpr);
  EXPECT_EQ(expr->str, "+");
  EXPECT_EQ(expr->children[1]->kind, NodeKind::kBinaryExpr);
  EXPECT_EQ(expr->children[1]->str, "*");
}

TEST(ParserTest, LeftAssociativity) {
  NodePtr expr = FirstExpr("a - b - c;");
  ASSERT_EQ(expr->kind, NodeKind::kBinaryExpr);
  // (a - b) - c
  EXPECT_EQ(expr->children[0]->kind, NodeKind::kBinaryExpr);
  EXPECT_EQ(expr->children[1]->kind, NodeKind::kIdentifier);
}

TEST(ParserTest, LogicalVsBinaryKinds) {
  NodePtr expr = FirstExpr("a && b || c ?? d;");
  EXPECT_EQ(expr->kind, NodeKind::kLogicalExpr);
  NodePtr cmp = FirstExpr("a == b;");
  EXPECT_EQ(cmp->kind, NodeKind::kBinaryExpr);
}

TEST(ParserTest, AssignmentIsRightAssociative) {
  NodePtr expr = FirstExpr("a = b = 1;");
  ASSERT_EQ(expr->kind, NodeKind::kAssignExpr);
  EXPECT_EQ(expr->children[1]->kind, NodeKind::kAssignExpr);
}

TEST(ParserTest, CompoundAssignmentOperators) {
  EXPECT_EQ(FirstExpr("a += 1;")->str, "+=");
  EXPECT_EQ(FirstExpr("a *= 2;")->str, "*=");
}

TEST(ParserTest, InvalidAssignmentTargetFails) {
  EXPECT_FALSE(ParseProgram("1 = 2;").ok());
  EXPECT_FALSE(ParseProgram("a + b = 2;").ok());
}

TEST(ParserTest, MemberAndIndexChains) {
  NodePtr expr = FirstExpr("a.b[c].d;");
  ASSERT_EQ(expr->kind, NodeKind::kMemberExpr);
  EXPECT_EQ(expr->str, "d");
  NodePtr index = expr->children[0];
  ASSERT_EQ(index->kind, NodeKind::kIndexExpr);
  NodePtr inner = index->children[0];
  ASSERT_EQ(inner->kind, NodeKind::kMemberExpr);
  EXPECT_EQ(inner->str, "b");
}

TEST(ParserTest, CallWithArgumentsAndSpread) {
  NodePtr expr = FirstExpr("f(1, ...rest, g());");
  ASSERT_EQ(expr->kind, NodeKind::kCallExpr);
  ASSERT_EQ(expr->children.size(), 4u);  // callee + 3 args
  EXPECT_EQ(expr->children[2]->kind, NodeKind::kSpreadElement);
  EXPECT_EQ(expr->children[3]->kind, NodeKind::kCallExpr);
}

TEST(ParserTest, MethodCallOnMember) {
  NodePtr expr = FirstExpr("storage.send(scene);");
  ASSERT_EQ(expr->kind, NodeKind::kCallExpr);
  EXPECT_EQ(expr->children[0]->kind, NodeKind::kMemberExpr);
  EXPECT_EQ(expr->children[0]->str, "send");
}

TEST(ParserTest, ArrowFunctionSingleParam) {
  NodePtr expr = FirstExpr("x => x + 1;");
  ASSERT_EQ(expr->kind, NodeKind::kArrowFunction);
  EXPECT_EQ(expr->children[0]->children.size(), 1u);
  EXPECT_EQ(expr->children[1]->kind, NodeKind::kBinaryExpr);
}

TEST(ParserTest, ArrowFunctionParenParamsAndBlockBody) {
  NodePtr expr = FirstExpr("(a, b) => { return a + b; };");
  ASSERT_EQ(expr->kind, NodeKind::kArrowFunction);
  EXPECT_EQ(expr->children[0]->children.size(), 2u);
  EXPECT_EQ(expr->children[1]->kind, NodeKind::kBlockStmt);
}

TEST(ParserTest, ParenthesizedExpressionIsNotArrow) {
  NodePtr expr = FirstExpr("(a + b) * c;");
  EXPECT_EQ(expr->kind, NodeKind::kBinaryExpr);
  EXPECT_EQ(expr->str, "*");
}

TEST(ParserTest, NestedArrowClosures) {
  NodePtr expr = FirstExpr("x => (y => x + y);");
  ASSERT_EQ(expr->kind, NodeKind::kArrowFunction);
  EXPECT_EQ(expr->children[1]->kind, NodeKind::kArrowFunction);
}

TEST(ParserTest, FunctionDeclarationAndExpression) {
  NodePtr decl = FirstStmt("function add(a, b) { return a + b; }");
  ASSERT_EQ(decl->kind, NodeKind::kFunctionDecl);
  EXPECT_EQ(decl->str, "add");

  NodePtr expr = FirstExpr("(function(x) { return x; });");
  EXPECT_EQ(expr->kind, NodeKind::kFunctionExpr);
}

TEST(ParserTest, RestParameter) {
  NodePtr decl = FirstStmt("function f(a, ...rest) {}");
  NodePtr params = decl->children[0];
  ASSERT_EQ(params->children.size(), 2u);
  EXPECT_EQ(params->children[1]->kind, NodeKind::kRestParam);
  EXPECT_EQ(params->children[1]->str, "rest");
}

TEST(ParserTest, ObjectLiteralForms) {
  NodePtr expr = FirstExpr(R"(({ a: 1, "b c": 2, [k]: 3, short, method(x) { return x; } });)");
  ASSERT_EQ(expr->kind, NodeKind::kObjectLit);
  ASSERT_EQ(expr->children.size(), 5u);
  EXPECT_EQ(expr->children[0]->str, "a");
  EXPECT_EQ(expr->children[1]->str, "b c");
  EXPECT_EQ(expr->children[2]->num, 1);  // computed
  EXPECT_EQ(expr->children[3]->children[0]->kind, NodeKind::kIdentifier);
  EXPECT_EQ(expr->children[4]->children[0]->kind, NodeKind::kFunctionExpr);
}

TEST(ParserTest, ArrayLiteralWithSpreadAndTrailingComma) {
  NodePtr expr = FirstExpr("[1, ...xs, 2,];");
  ASSERT_EQ(expr->kind, NodeKind::kArrayLit);
  EXPECT_EQ(expr->children.size(), 3u);
  EXPECT_EQ(expr->children[1]->kind, NodeKind::kSpreadElement);
}

TEST(ParserTest, ClassWithExtendsAndMethods) {
  NodePtr cls = FirstStmt(R"(class Camera extends Device {
    constructor(id) { this.id = id; }
    snap() { return this.id; }
  })");
  ASSERT_EQ(cls->kind, NodeKind::kClassDecl);
  EXPECT_EQ(cls->str, "Camera");
  EXPECT_EQ(cls->children[0]->str, "Device");
  ASSERT_EQ(cls->children.size(), 3u);
  EXPECT_EQ(cls->children[1]->str, "constructor");
  EXPECT_EQ(cls->children[2]->str, "snap");
}

TEST(ParserTest, NewExpression) {
  NodePtr expr = FirstExpr("new Promise(cb);");
  ASSERT_EQ(expr->kind, NodeKind::kNewExpr);
  EXPECT_EQ(expr->children[0]->str, "Promise");
  EXPECT_EQ(expr->children.size(), 2u);
}

TEST(ParserTest, IfElseChain) {
  NodePtr stmt = FirstStmt("if (a) { f(); } else if (b) { g(); } else { h(); }");
  ASSERT_EQ(stmt->kind, NodeKind::kIfStmt);
  ASSERT_EQ(stmt->children.size(), 3u);
  EXPECT_EQ(stmt->children[2]->kind, NodeKind::kIfStmt);
}

TEST(ParserTest, ForClassic) {
  NodePtr stmt = FirstStmt("for (let i = 0; i < 10; i++) { use(i); }");
  ASSERT_EQ(stmt->kind, NodeKind::kForStmt);
  EXPECT_EQ(stmt->children[0]->kind, NodeKind::kVarDecl);
  EXPECT_EQ(stmt->children[1]->kind, NodeKind::kBinaryExpr);
  EXPECT_EQ(stmt->children[2]->kind, NodeKind::kUpdateExpr);
}

TEST(ParserTest, ForWithEmptyParts) {
  NodePtr stmt = FirstStmt("for (;;) { break; }");
  ASSERT_EQ(stmt->kind, NodeKind::kForStmt);
  EXPECT_EQ(stmt->children[0]->kind, NodeKind::kEmpty);
  EXPECT_EQ(stmt->children[1]->kind, NodeKind::kEmpty);
  EXPECT_EQ(stmt->children[2]->kind, NodeKind::kEmpty);
}

TEST(ParserTest, ForOf) {
  NodePtr stmt = FirstStmt("for (let person of scene.persons) { use(person); }");
  ASSERT_EQ(stmt->kind, NodeKind::kForOfStmt);
  EXPECT_EQ(stmt->str, "let");
  EXPECT_EQ(stmt->children[0]->str, "person");
  EXPECT_EQ(stmt->children[1]->kind, NodeKind::kMemberExpr);
}

TEST(ParserTest, TryCatchFinally) {
  NodePtr stmt = FirstStmt("try { f(); } catch (e) { g(e); } finally { h(); }");
  ASSERT_EQ(stmt->kind, NodeKind::kTryStmt);
  EXPECT_EQ(stmt->children[1]->str, "e");
  EXPECT_EQ(stmt->children[2]->kind, NodeKind::kBlockStmt);
  EXPECT_EQ(stmt->children[3]->kind, NodeKind::kBlockStmt);
}

TEST(ParserTest, AwaitExpression) {
  NodePtr stmt = FirstStmt("async function f() { let x = await g(); }");
  NodePtr body = stmt->children[1];
  NodePtr decl = body->children[0];
  EXPECT_EQ(decl->children[0]->children[0]->kind, NodeKind::kAwaitExpr);
}

TEST(ParserTest, ConditionalExpression) {
  NodePtr expr = FirstExpr("a ? b : c;");
  ASSERT_EQ(expr->kind, NodeKind::kConditionalExpr);
  EXPECT_EQ(expr->children.size(), 3u);
}

TEST(ParserTest, UnaryAndUpdate) {
  EXPECT_EQ(FirstExpr("!a;")->kind, NodeKind::kUnaryExpr);
  EXPECT_EQ(FirstExpr("typeof a;")->str, "typeof");
  NodePtr prefix = FirstExpr("++a;");
  EXPECT_EQ(prefix->kind, NodeKind::kUpdateExpr);
  EXPECT_EQ(prefix->num, 1);
  NodePtr postfix = FirstExpr("a--;");
  EXPECT_EQ(postfix->num, 0);
}

TEST(ParserTest, OptionalChaining) {
  NodePtr expr = FirstExpr("a?.b;");
  ASSERT_EQ(expr->kind, NodeKind::kMemberExpr);
  EXPECT_EQ(expr->num, 1);
}

TEST(ParserTest, SequenceExpression) {
  NodePtr expr = FirstExpr("(a, b, c);");
  ASSERT_EQ(expr->kind, NodeKind::kSequenceExpr);
  EXPECT_EQ(expr->children.size(), 3u);
}

TEST(ParserTest, NodeIdsAreUniqueAndDense) {
  Program p = MustParse("let a = 1; function f(x) { return x + a; }");
  std::vector<bool> seen(static_cast<size_t>(p.node_count), false);
  int count = 0;
  ForEachNode(p.root, [&](const NodePtr& n) {
    ASSERT_GE(n->id, 0);
    ASSERT_LT(n->id, p.node_count);
    EXPECT_FALSE(seen[static_cast<size_t>(n->id)]) << "duplicate id " << n->id;
    seen[static_cast<size_t>(n->id)] = true;
    ++count;
  });
  EXPECT_EQ(count, p.node_count);
}

TEST(ParserTest, RenumberAfterSynthesis) {
  Program p = MustParse("let a = 1;");
  p.root->children.push_back(MakeNode(NodeKind::kExprStmt, {MakeIdentifier("a")}));
  int n = RenumberNodes(&p);
  EXPECT_EQ(n, p.node_count);
  ForEachNode(p.root, [&](const NodePtr& node) { EXPECT_GE(node->id, 0); });
}

TEST(ParserTest, SyntaxErrorsAreReportedWithLocation) {
  auto result = ParseProgram("let = 3;", "app.js");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("app.js"), std::string::npos);
}

TEST(ParserTest, PaperFigure2aParses) {
  // The FaceRecognizer snippet from the paper (Fig. 2a), adapted to balanced
  // braces.
  const char* source = R"(
    socket.on("data", frame => {
      const scene = analyzeVideoFrame(frame);
      for (let person of scene.persons) {
        person.description = person.action + " at " + scene.location;
        if (person.employeeID) {
          deviceControl.send(person);
        }
      }
      emailSender.send(scene);
      storage.send(scene);
    });
  )";
  Program p = MustParse(source);
  EXPECT_GT(p.node_count, 30);
}

}  // namespace
}  // namespace turnstile
