// Regression suite for tricky interpreter semantics: closure capture, abrupt
// completion interplay, spread/rest composition, and box transparency in
// library code.
#include <gtest/gtest.h>

#include "src/dift/tracker.h"
#include "src/interp/interp.h"
#include "src/lang/parser.h"

namespace turnstile {
namespace {

Value RunAndGet(const std::string& source, const std::string& var = "result") {
  Interpreter interp;
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  Status status = interp.RunProgram(*program);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(interp.RunEventLoop().ok());
  Value* slot = interp.global_env()->Lookup(var);
  return slot != nullptr ? *slot : Value::Undefined();
}

TEST(SemanticsTest, ForOfFreshBindingPerIteration) {
  // Each iteration gets a fresh loop variable, so closures capture distinct
  // values (the let-in-loop semantics).
  EXPECT_EQ(RunAndGet(R"(
    let fns = [];
    for (let i of [1, 2, 3]) {
      fns.push(() => i);
    }
    let result = fns.map(f => f()).join(",");
  )").ToDisplayString(),
            "1,2,3");
}

TEST(SemanticsTest, SharedMutableCapture) {
  // Two closures over the same binding observe each other's writes.
  EXPECT_DOUBLE_EQ(RunAndGet(R"(
    function makePair() {
      let n = 0;
      return { inc: () => { n = n + 1; }, get: () => n };
    }
    let pair = makePair();
    pair.inc();
    pair.inc();
    let result = pair.get();
  )").AsNumber(),
                   2);
}

TEST(SemanticsTest, FinallyOverridesReturn) {
  EXPECT_EQ(RunAndGet(R"(
    function f() {
      try {
        return "try";
      } finally {
        out.push("finally ran");
      }
    }
    out = [];
    let result = f() + "/" + out.length;
  )").ToDisplayString(),
            "try/1");
}

TEST(SemanticsTest, CatchRethrowPropagates) {
  EXPECT_EQ(RunAndGet(R"(
    let result = "";
    try {
      try {
        throw "inner";
      } catch (e) {
        throw e + "+rethrown";
      }
    } catch (e) {
      result = e;
    }
  )").ToDisplayString(),
            "inner+rethrown");
}

TEST(SemanticsTest, ThrowAcrossFunctionBoundaryIsCatchable) {
  EXPECT_EQ(RunAndGet(R"(
    function deep(n) {
      if (n === 0) {
        throw { code: 42 };
      }
      return deep(n - 1);
    }
    let result = 0;
    try {
      deep(5);
    } catch (e) {
      result = e.code;
    }
  )").AsNumber(),
            42);
}

TEST(SemanticsTest, SpreadIntoRestRoundTrips) {
  EXPECT_EQ(RunAndGet(R"(
    function gather(first, ...rest) {
      return first + ":" + rest.join("");
    }
    let parts = [1, 2, 3, 4];
    let result = gather(...parts);
  )").ToDisplayString(),
            "1:234");
}

TEST(SemanticsTest, HoistedFunctionUsableBeforeDeclaration) {
  EXPECT_DOUBLE_EQ(RunAndGet(R"(
    let result = later(20);
    function later(x) { return x * 2 + 2; }
  )").AsNumber(),
                   42);
}

TEST(SemanticsTest, ShadowingAcrossNestedClosuresReadsNearestBinding) {
  // Three distinct `x` bindings: the slot-resolved reads must each hit their
  // own scope, and the inner writes must not leak outward.
  EXPECT_EQ(RunAndGet(R"(
    let x = "g";
    function outer() {
      let x = "o";
      function inner() {
        let x = "i";
        x = x + "!";
        return x;
      }
      return inner() + x;
    }
    let result = outer() + x;
  )").ToDisplayString(),
            "i!og");
}

TEST(SemanticsTest, CatchParamShadowsWithoutLeaking) {
  // The catch parameter lives in its own one-slot frame; the outer binding
  // with the same name is untouched by writes inside the handler.
  EXPECT_EQ(RunAndGet(R"(
    let e = "outer";
    let seen = "";
    try {
      throw "thrown";
    } catch (e) {
      e = e + "+edited";
      seen = e;
    }
    let result = seen + "/" + e;
  )").ToDisplayString(),
            "thrown+edited/outer");
}

TEST(SemanticsTest, NamedFunctionExpressionSelfReferenceRecurses) {
  // The resolver gives named function expressions a self-binding slot inside
  // their own frame, visible even when the outer variable is reassigned.
  EXPECT_DOUBLE_EQ(RunAndGet(R"(
    let f = function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); };
    let g = f;
    f = null;
    let result = g(5);
  )").AsNumber(),
                   120);
}

TEST(SemanticsTest, ForOfIterableEvaluatesInOuterScope) {
  // The loop variable's per-iteration frame must not be in scope while the
  // iterable expression itself evaluates.
  EXPECT_EQ(RunAndGet(R"(
    let item = "outer";
    let out = [];
    for (let item of [item + "1", item + "2"]) {
      out.push(item);
    }
    let result = out.join(",");
  )").ToDisplayString(),
            "outer1,outer2");
}

TEST(SemanticsTest, MethodExtractedLosesThisButBindRestores) {
  EXPECT_DOUBLE_EQ(RunAndGet(R"(
    class Box {
      constructor() { this.v = 7; }
      get2() { return this.v; }
    }
    let box = new Box();
    let bound = box.get2.bind(box);
    let result = bound();
  )").AsNumber(),
                   7);
}

TEST(SemanticsTest, NestedPromisesSettleInOrder) {
  EXPECT_EQ(RunAndGet(R"(
    let order = [];
    new Promise(res => { res(1); }).then(v => { order.push("p1:" + v); });
    new Promise(res => { res(2); }).then(v => { order.push("p2:" + v); });
    setTimeout(() => { order.push("timer"); }, 0);
    let result = order;
  )").ToDisplayString(),
            "[p1:1, p2:2, timer]");  // microtasks before macrotasks
}

TEST(SemanticsTest, ImplicitGlobalAssignmentDefines) {
  EXPECT_DOUBLE_EQ(RunAndGet(R"(
    function init() { counter = 10; }
    init();
    counter = counter + 1;
    let result = counter;
  )").AsNumber(),
                   11);
}

// --- box transparency in library paths ----------------------------------------

constexpr const char* kBoxPolicy = R"json({
  "labellers": { "mark": { "$const": "marked" } },
  "rules": []
})json";

struct BoxFixture {
  Interpreter interp;
  std::shared_ptr<Policy> policy;
  std::unique_ptr<DiftTracker> tracker;

  BoxFixture() {
    auto parsed = Policy::FromJsonText(kBoxPolicy);
    policy = std::shared_ptr<Policy>(std::move(parsed).value().release());
    tracker = std::make_unique<DiftTracker>(&interp, policy);
    tracker->Install();
  }

  Value Run(const std::string& source, const std::string& var = "result") {
    auto program = ParseProgram(source);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    Status status = interp.RunProgram(*program);
    EXPECT_TRUE(status.ok()) << status.ToString();
    Value* slot = interp.global_env()->Lookup(var);
    return slot != nullptr ? *slot : Value::Undefined();
  }
};

TEST(SemanticsTest, BoxedStringWorksWithStringMethods) {
  BoxFixture f;
  EXPECT_EQ(f.Run(R"(
    let s = __dift.label("Secret Data", "mark");
    let result = s.toLowerCase() + "/" + s.length + "/" + s.includes("Data");
  )").ToDisplayString(),
            "secret data/11/true");
}

TEST(SemanticsTest, BoxedValuesInArraysSurviveJoinAndIndexOf) {
  BoxFixture f;
  EXPECT_EQ(f.Run(R"(
    let x = __dift.label("b", "mark");
    let xs = ["a", x, "c"];
    let result = xs.join("-") + "/" + xs.indexOf(x);
  )").ToDisplayString(),
            "a-b-c/1");
}

TEST(SemanticsTest, BoxedNumberComparesAndSwitchesBranches) {
  BoxFixture f;
  EXPECT_EQ(f.Run(R"(
    let n = __dift.label(5, "mark");
    let result = (n > 3 ? "big" : "small") + "/" + (n === 5);
  )").ToDisplayString(),
            "big/true");
}

TEST(SemanticsTest, BoxedKeyIndexesObjects) {
  BoxFixture f;
  EXPECT_EQ(f.Run(R"(
    let key = __dift.label("door", "mark");
    let state = { door: "locked" };
    let result = state[key];
  )").ToDisplayString(),
            "locked");
}

TEST(SemanticsTest, JsonStringifyUnwrapsBoxes) {
  BoxFixture f;
  EXPECT_EQ(f.Run(R"(
    let v = __dift.label("x", "mark");
    let result = JSON.stringify({ field: v });
  )").ToDisplayString(),
            "{\"field\":\"x\"}");
}

}  // namespace
}  // namespace turnstile
