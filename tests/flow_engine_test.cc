// The RedFlow engine: module loading, type registration, flow wiring,
// message routing, and the workload/timing model.
#include "src/flow/engine.h"

#include <gtest/gtest.h>

#include "src/flow/workload.h"
#include "src/lang/parser.h"

namespace turnstile {
namespace {

constexpr const char* kFilterModule = R"(
  module.exports = function(RED) {
    function UpperNode(config) {
      RED.nodes.createNode(this, config);
      let node = this;
      node.on("input", msg => {
        msg.payload = msg.payload.toUpperCase();
        node.send(msg);
      });
    }
    function CollectNode(config) {
      RED.nodes.createNode(this, config);
      let node = this;
      node.on("input", msg => {
        collected.push(msg.payload);
      });
    }
    RED.nodes.registerType("upper", UpperNode);
    RED.nodes.registerType("collect", CollectNode);
  };
)";

Json MustJson(const std::string& text) {
  auto json = Json::Parse(text);
  EXPECT_TRUE(json.ok()) << json.status().ToString();
  return json.ok() ? *json : Json();
}

TEST(FlowEngineTest, RegistersTypesFromModule) {
  Interpreter interp;
  interp.DefineGlobal("collected", Value(MakeArray()));
  FlowEngine engine(&interp);
  ASSERT_TRUE(engine.LoadModule(kFilterModule, "filter.js").ok());
  auto types = engine.registered_types();
  EXPECT_EQ(types.size(), 2u);
}

TEST(FlowEngineTest, RoutesMessagesAlongWires) {
  Interpreter interp;
  interp.DefineGlobal("collected", Value(MakeArray()));
  FlowEngine engine(&interp);
  ASSERT_TRUE(engine.LoadModule(kFilterModule, "filter.js").ok());
  ASSERT_TRUE(engine.InstantiateFlow(MustJson(R"([
    { "id": "n1", "type": "upper", "wires": ["n2"] },
    { "id": "n2", "type": "collect", "wires": [] }
  ])")).ok());

  ObjectPtr msg = MakeObject();
  msg->Set("payload", Value("hello"));
  ASSERT_TRUE(engine.InjectInput("n1", Value(msg)).ok());
  ASSERT_TRUE(interp.RunEventLoop().ok());

  Value* collected = interp.global_env()->Lookup("collected");
  ASSERT_NE(collected, nullptr);
  EXPECT_EQ(collected->ToDisplayString(), "[HELLO]");
  EXPECT_EQ(engine.messages_routed(), 1);
}

TEST(FlowEngineTest, UnknownTypeFailsInstantiation) {
  Interpreter interp;
  FlowEngine engine(&interp);
  ASSERT_TRUE(engine.LoadModule(kFilterModule, "filter.js").ok());
  EXPECT_FALSE(engine.InstantiateFlow(MustJson(R"([
    { "id": "n1", "type": "no-such-type", "wires": [] }
  ])")).ok());
}

TEST(FlowEngineTest, UnknownInjectTargetFails) {
  Interpreter interp;
  FlowEngine engine(&interp);
  EXPECT_FALSE(engine.InjectInput("ghost", Value(1.0)).ok());
}

TEST(FlowEngineTest, ConfigReachesConstructor) {
  Interpreter interp;
  FlowEngine engine(&interp);
  ASSERT_TRUE(engine.LoadModule(R"(
    module.exports = function(RED) {
      function EchoNode(config) {
        RED.nodes.createNode(this, config);
        let node = this;
        node.on("input", msg => {
          node.send({ payload: config.prefix + msg.payload });
        });
      }
      RED.nodes.registerType("echo", EchoNode);
    };
  )", "echo.js").ok());
  ASSERT_TRUE(engine.InstantiateFlow(MustJson(R"([
    { "id": "e1", "type": "echo", "config": { "prefix": ">> " }, "wires": [] }
  ])")).ok());
  ObjectPtr msg = MakeObject();
  msg->Set("payload", Value("x"));
  ASSERT_TRUE(engine.InjectInput("e1", Value(msg)).ok());
  ASSERT_TRUE(interp.RunEventLoop().ok());
  EXPECT_EQ(engine.terminal_sends(), 1);
}

TEST(FlowEngineTest, ArraySendFansOut) {
  Interpreter interp;
  interp.DefineGlobal("collected", Value(MakeArray()));
  FlowEngine engine(&interp);
  ASSERT_TRUE(engine.LoadModule(R"(
    module.exports = function(RED) {
      function SplitNode(config) {
        RED.nodes.createNode(this, config);
        let node = this;
        node.on("input", msg => {
          node.send([{ payload: 1 }, { payload: 2 }]);
        });
      }
      function CollectNode(config) {
        RED.nodes.createNode(this, config);
        this.on("input", msg => { collected.push(msg.payload); });
      }
      RED.nodes.registerType("split", SplitNode);
      RED.nodes.registerType("collect", CollectNode);
    };
  )", "split.js").ok());
  ASSERT_TRUE(engine.InstantiateFlow(MustJson(R"([
    { "id": "s", "type": "split", "wires": ["c"] },
    { "id": "c", "type": "collect", "wires": [] }
  ])")).ok());
  ASSERT_TRUE(engine.InjectInput("s", Value(MakeObject())).ok());
  ASSERT_TRUE(interp.RunEventLoop().ok());
  Value* collected = interp.global_env()->Lookup("collected");
  EXPECT_EQ(collected->ToDisplayString(), "[1, 2]");
  EXPECT_EQ(engine.messages_routed(), 2);
}

TEST(FlowEngineTest, NodesCanUseIoModules) {
  Interpreter interp;
  FlowEngine engine(&interp);
  ASSERT_TRUE(engine.LoadModule(R"(
    module.exports = function(RED) {
      let fs = require("fs");
      function StoreNode(config) {
        RED.nodes.createNode(this, config);
        this.on("input", msg => {
          fs.writeFileSync("/frames/" + msg.seq, msg.payload);
        });
      }
      RED.nodes.registerType("store", StoreNode);
    };
  )", "store.js").ok());
  ASSERT_TRUE(engine.InstantiateFlow(MustJson(R"([
    { "id": "st", "type": "store", "wires": [] }
  ])")).ok());
  ObjectPtr msg = MakeObject();
  msg->Set("seq", Value(7.0));
  msg->Set("payload", Value("pixels"));
  ASSERT_TRUE(engine.InjectInput("st", Value(msg)).ok());
  ASSERT_TRUE(interp.RunEventLoop().ok());
  ASSERT_EQ(interp.io_world().records.size(), 1u);
  EXPECT_EQ(interp.io_world().records[0].detail, "/frames/7");
}

// --- workload generation ------------------------------------------------------

TEST(WorkloadTest, TemplateExpansionIsDeterministic) {
  Json tmpl = MustJson(R"({ "payload": "$frame", "topic": "$topic", "n": "$num",
                            "seq": "$seq", "fixed": "literal", "count": 3 })");
  Rng a(42);
  Rng b(42);
  Value va = GenerateMessage(tmpl, &a, 5);
  Value vb = GenerateMessage(tmpl, &b, 5);
  EXPECT_EQ(va.ToDisplayString(), vb.ToDisplayString());
  EXPECT_EQ(va.AsObject()->Get("fixed").ToDisplayString(), "literal");
  EXPECT_DOUBLE_EQ(va.AsObject()->Get("seq").AsNumber(), 5.0);
  EXPECT_DOUBLE_EQ(va.AsObject()->Get("count").AsNumber(), 3.0);
  EXPECT_NE(va.AsObject()->Get("payload").ToDisplayString().find("frame#5"),
            std::string::npos);
}

TEST(WorkloadTest, FrameContentsVary) {
  Json tmpl = MustJson(R"({ "payload": "$frame" })");
  Rng rng(7);
  bool employee = false;
  bool other = false;
  for (int i = 0; i < 50; ++i) {
    std::string frame =
        GenerateMessage(tmpl, &rng, i).AsObject()->Get("payload").ToDisplayString();
    if (frame.find("employee:") != std::string::npos) {
      employee = true;
    } else {
      other = true;
    }
  }
  EXPECT_TRUE(employee);
  EXPECT_TRUE(other);
}

// --- streaming-time model ------------------------------------------------------

TEST(TimingTest, SlowRateHidesProcessingTime) {
  // 10 messages, 1 ms each, at 2 Hz: the stream is arrival-dominated.
  std::vector<double> proc(10, 0.001);
  double t = StreamCompletionTime(proc, 2.0);
  EXPECT_NEAR(t, 9 * 0.5 + 0.001, 1e-9);
}

TEST(TimingTest, FastRateIsProcessingDominated) {
  // 10 messages, 10 ms each, at 1000 Hz: processing back-to-back.
  std::vector<double> proc(10, 0.010);
  double t = StreamCompletionTime(proc, 1000.0);
  EXPECT_NEAR(t, 10 * 0.010, 1e-9);
}

TEST(TimingTest, RelativeRuntimeConvergesToProcRatioAtHighRate) {
  std::vector<double> original(100, 0.001);
  std::vector<double> managed(100, 0.0015);  // 50% slower per message
  EXPECT_NEAR(RelativeRuntime(managed, original, 100000.0), 1.5, 1e-6);
}

TEST(TimingTest, RelativeRuntimeNearOneAtLowRate) {
  std::vector<double> original(100, 0.001);
  std::vector<double> managed(100, 0.0015);
  double rel = RelativeRuntime(managed, original, 2.0);
  EXPECT_GT(rel, 1.0);
  EXPECT_LT(rel, 1.0001);  // overhead fully masked by idle time
}

TEST(TimingTest, OverheadGrowsMonotonicallyWithRate) {
  std::vector<double> original(200, 0.002);
  std::vector<double> managed(200, 0.003);
  double previous = 0.0;
  for (double rate : {2.0, 10.0, 30.0, 100.0, 250.0, 500.0, 1000.0}) {
    double rel = RelativeRuntime(managed, original, rate);
    EXPECT_GE(rel, previous - 1e-12) << "at rate " << rate;
    previous = rel;
  }
}

TEST(TimingTest, QueueBacklogCarriesOver) {
  // One slow message delays the rest when the rate leaves no slack.
  std::vector<double> proc = {0.5, 0.001, 0.001};
  double t = StreamCompletionTime(proc, 10.0);  // arrivals at 0, .1, .2
  EXPECT_NEAR(t, 0.5 + 0.001 + 0.001, 1e-9);
}

}  // namespace
}  // namespace turnstile
