// Label interning and compound-label (set) operations.
#include "src/ifc/label.h"

#include <gtest/gtest.h>

#include "src/support/rng.h"

namespace turnstile {
namespace {

TEST(LabelSpaceTest, InternIsIdempotent) {
  LabelSpace space;
  LabelId a = space.Intern("employee");
  LabelId b = space.Intern("customer");
  EXPECT_NE(a, b);
  EXPECT_EQ(space.Intern("employee"), a);
  EXPECT_EQ(space.size(), 2u);
  EXPECT_EQ(space.NameOf(a), "employee");
}

TEST(LabelSpaceTest, FindReturnsNulloptForUnknown) {
  LabelSpace space;
  space.Intern("a");
  ASSERT_TRUE(space.Find("a").has_value());
  EXPECT_EQ(*space.Find("a"), 0u);
  EXPECT_EQ(space.Find("zzz"), std::nullopt);
}

TEST(LabelSetTest, ConstructionSortsAndDedups) {
  LabelSet set({3, 1, 2, 1, 3});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.ids(), (std::vector<LabelId>{1, 2, 3}));
}

TEST(LabelSetTest, InsertKeepsSorted) {
  LabelSet set;
  set.Insert(5);
  set.Insert(1);
  set.Insert(3);
  set.Insert(3);
  EXPECT_EQ(set.ids(), (std::vector<LabelId>{1, 3, 5}));
}

TEST(LabelSetTest, ContainsAndSubset) {
  LabelSet small({1, 2});
  LabelSet big({1, 2, 3});
  EXPECT_TRUE(small.Contains(2));
  EXPECT_FALSE(small.Contains(3));
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(LabelSet().IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
}

TEST(LabelSetTest, UnionMatchesFig5Semantics) {
  // Fig. 5 (binaryOp): label(a + b) = label(a) ∪ label(b).
  LabelSet p({1});
  LabelSet q({2});
  LabelSet compound = LabelSet::Union(p, q);
  EXPECT_EQ(compound.ids(), (std::vector<LabelId>{1, 2}));
  // P ⊑ {P, Q} and Q ⊑ {P, Q} via the subset rule.
  EXPECT_TRUE(p.IsSubsetOf(compound));
  EXPECT_TRUE(q.IsSubsetOf(compound));
}

TEST(LabelSetTest, ToStringUsesNames) {
  LabelSpace space;
  LabelSet set;
  set.Insert(space.Intern("employee"));
  set.Insert(space.Intern("customer"));
  EXPECT_EQ(set.ToString(space), "{employee, customer}");
  EXPECT_EQ(LabelSet().ToString(space), "{}");
}

// Property tests: union is commutative, associative, idempotent, monotone.
class LabelSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

LabelSet RandomSet(Rng& rng) {
  LabelSet out;
  size_t n = rng.NextBelow(6);
  for (size_t i = 0; i < n; ++i) {
    out.Insert(static_cast<LabelId>(rng.NextBelow(10)));
  }
  return out;
}

TEST_P(LabelSetPropertyTest, UnionLaws) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    LabelSet a = RandomSet(rng);
    LabelSet b = RandomSet(rng);
    LabelSet c = RandomSet(rng);
    // Commutative.
    EXPECT_EQ(LabelSet::Union(a, b), LabelSet::Union(b, a));
    // Associative.
    EXPECT_EQ(LabelSet::Union(LabelSet::Union(a, b), c),
              LabelSet::Union(a, LabelSet::Union(b, c)));
    // Idempotent.
    EXPECT_EQ(LabelSet::Union(a, a), a);
    // Monotone: operands are subsets of the union.
    EXPECT_TRUE(a.IsSubsetOf(LabelSet::Union(a, b)));
    EXPECT_TRUE(b.IsSubsetOf(LabelSet::Union(a, b)));
    // Identity.
    EXPECT_EQ(LabelSet::Union(a, LabelSet()), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelSetPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 987654321u));

}  // namespace
}  // namespace turnstile
