// TURNSTILE_EXEC_TIER parsing: the accepted spellings select their tier, and
// an unrecognized value keeps the fused-bytecode default while logging one
// loud warning naming the accepted values (a silent fall-through here once
// made `TURNSTILE_EXEC_TIER=tree-walk` benchmark the wrong tier).
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "src/interp/interp.h"

namespace turnstile {
namespace {

// The CI tree-walk job exports TURNSTILE_EXEC_TIER for the whole suite, so
// every test here restores whatever value the process started with.
class ScopedExecTierEnv {
 public:
  explicit ScopedExecTierEnv(const char* value) {
    const char* prior = std::getenv("TURNSTILE_EXEC_TIER");
    had_prior_ = prior != nullptr;
    if (had_prior_) {
      prior_ = prior;
    }
    if (value != nullptr) {
      ::setenv("TURNSTILE_EXEC_TIER", value, 1);
    } else {
      ::unsetenv("TURNSTILE_EXEC_TIER");
    }
  }
  ~ScopedExecTierEnv() {
    if (had_prior_) {
      ::setenv("TURNSTILE_EXEC_TIER", prior_.c_str(), 1);
    } else {
      ::unsetenv("TURNSTILE_EXEC_TIER");
    }
  }

 private:
  bool had_prior_ = false;
  std::string prior_;
};

TEST(ExecTierFromNameTest, AcceptedSpellings) {
  EXPECT_EQ(ExecTierFromName("bytecode"), ExecTier::kBytecode);
  EXPECT_EQ(ExecTierFromName("bytecode-lowered"), ExecTier::kBytecodeLowered);
  EXPECT_EQ(ExecTierFromName("treewalk"), ExecTier::kTreeWalk);
}

TEST(ExecTierFromNameTest, RejectsNearMisses) {
  EXPECT_EQ(ExecTierFromName("tree-walk"), std::nullopt);
  EXPECT_EQ(ExecTierFromName("Bytecode"), std::nullopt);
  EXPECT_EQ(ExecTierFromName("vm"), std::nullopt);
  EXPECT_EQ(ExecTierFromName(""), std::nullopt);
}

TEST(ExecTierEnvTest, ValidValuesSelectTheTier) {
  {
    ScopedExecTierEnv env("treewalk");
    Interpreter interp;
    EXPECT_EQ(interp.exec_tier(), ExecTier::kTreeWalk);
  }
  {
    ScopedExecTierEnv env("bytecode-lowered");
    Interpreter interp;
    EXPECT_EQ(interp.exec_tier(), ExecTier::kBytecodeLowered);
  }
  {
    ScopedExecTierEnv env("bytecode");
    Interpreter interp;
    EXPECT_EQ(interp.exec_tier(), ExecTier::kBytecode);
  }
  {
    ScopedExecTierEnv env(nullptr);
    Interpreter interp;
    EXPECT_EQ(interp.exec_tier(), ExecTier::kBytecode);
  }
}

TEST(ExecTierEnvTest, UnrecognizedValueWarnsOnceAndKeepsDefault) {
  ScopedExecTierEnv env("tree-walk");
  ResetExecTierWarningForTest();

  testing::internal::CaptureStderr();
  Interpreter interp;
  std::string warning = testing::internal::GetCapturedStderr();

  EXPECT_EQ(interp.exec_tier(), ExecTier::kBytecode);
  EXPECT_NE(warning.find("TURNSTILE_EXEC_TIER"), std::string::npos) << warning;
  EXPECT_NE(warning.find("tree-walk"), std::string::npos) << warning;
  EXPECT_NE(warning.find("\"bytecode\""), std::string::npos) << warning;
  EXPECT_NE(warning.find("\"bytecode-lowered\""), std::string::npos) << warning;
  EXPECT_NE(warning.find("\"treewalk\""), std::string::npos) << warning;

  // The warning is a process-wide one-shot: apps construct interpreters in
  // loops, and one line is a signal while a thousand is log spam.
  testing::internal::CaptureStderr();
  Interpreter again;
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  EXPECT_EQ(again.exec_tier(), ExecTier::kBytecode);
}

}  // namespace
}  // namespace turnstile
