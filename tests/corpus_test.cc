// Corpus integrity: population structure, per-bucket analyzer outcomes
// (§6.1's buckets emerge from running the real analyzers on every app), and
// runnability of every application in all three versions.
#include "src/corpus/corpus.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/analysis/analyzer.h"
#include "src/baseline/querydl.h"
#include "src/corpus/driver.h"
#include "src/lang/parser.h"

namespace turnstile {
namespace {

TEST(CorpusTest, SixtyOneAppsWithUniqueNames) {
  const auto& apps = Corpus();
  EXPECT_EQ(apps.size(), 61u);
  std::set<std::string> names;
  for (const CorpusApp& app : apps) {
    EXPECT_TRUE(names.insert(app.name).second) << "duplicate name " << app.name;
  }
}

TEST(CorpusTest, BucketSizesMatchThePaper) {
  std::map<CorpusBucket, int> counts;
  for (const CorpusApp& app : Corpus()) {
    ++counts[app.bucket];
  }
  EXPECT_EQ(counts[CorpusBucket::kTurnstileOnly], 22);
  EXPECT_EQ(counts[CorpusBucket::kBothFind], 5);
  EXPECT_EQ(counts[CorpusBucket::kQueryDlOnly], 2);
  EXPECT_EQ(counts[CorpusBucket::kBothMiss], 26);
  EXPECT_EQ(counts[CorpusBucket::kNoPaths], 6);
}

TEST(CorpusTest, EveryAppParsesAndHasValidMetadata) {
  for (const CorpusApp& app : Corpus()) {
    auto program = ParseProgram(app.source, app.name + ".js");
    EXPECT_TRUE(program.ok()) << app.name << ": " << program.status().ToString();
    EXPECT_TRUE(Json::Parse(app.flow_json).ok()) << app.name;
    EXPECT_TRUE(Json::Parse(app.message_template).ok()) << app.name;
    auto policy = Policy::FromJsonText(app.policy_json);
    EXPECT_TRUE(policy.ok()) << app.name << ": " << policy.status().ToString();
    EXPECT_GE(app.ground_truth_paths, 0);
    EXPECT_FALSE(app.notes.empty()) << app.name;
  }
}

TEST(CorpusTest, FindCorpusApp) {
  EXPECT_NE(FindCorpusApp("nlp.js"), nullptr);
  EXPECT_NE(FindCorpusApp("modbus"), nullptr);
  EXPECT_EQ(FindCorpusApp("no-such-app"), nullptr);
}

// The §6.1 bucket semantics must hold under the *measured* analyzers.
TEST(CorpusTest, BucketOutcomesAreMeasuredNotAsserted) {
  for (const CorpusApp& app : Corpus()) {
    auto program = ParseProgram(app.source, app.name + ".js");
    ASSERT_TRUE(program.ok()) << app.name;
    auto turnstile_result = AnalyzeProgram(*program);
    auto querydl_result = QueryDlAnalyze(*program);
    ASSERT_TRUE(turnstile_result.ok()) << app.name;
    ASSERT_TRUE(querydl_result.ok()) << app.name;
    size_t t = turnstile_result->paths.size();
    size_t q = querydl_result->paths.size();
    switch (app.bucket) {
      case CorpusBucket::kTurnstileOnly:
        EXPECT_GT(t, 0u) << app.name;
        EXPECT_EQ(q, 0u) << app.name;
        break;
      case CorpusBucket::kBothFind:
        EXPECT_GT(t, 0u) << app.name;
        EXPECT_GT(q, 0u) << app.name;
        break;
      case CorpusBucket::kQueryDlOnly:
        EXPECT_EQ(t, 0u) << app.name;
        EXPECT_GT(q, 0u) << app.name;
        break;
      case CorpusBucket::kBothMiss:
        EXPECT_EQ(t, 0u) << app.name;
        EXPECT_EQ(q, 0u) << app.name;
        EXPECT_GT(app.ground_truth_paths, 0) << app.name;
        break;
      case CorpusBucket::kNoPaths:
        EXPECT_EQ(t, 0u) << app.name;
        EXPECT_EQ(q, 0u) << app.name;
        EXPECT_EQ(app.ground_truth_paths, 0) << app.name;
        break;
    }
    // Neither tool reports more paths than the manual annotation.
    EXPECT_LE(t, static_cast<size_t>(app.ground_truth_paths)) << app.name;
    EXPECT_LE(q, static_cast<size_t>(app.ground_truth_paths)) << app.name;
  }
}

TEST(CorpusTest, HeadlineNumbersLandInTheReportedShape) {
  int gt = 0;
  int t_total = 0;
  int q_total = 0;
  int t_positive = 0;
  for (const CorpusApp& app : Corpus()) {
    auto program = ParseProgram(app.source, app.name + ".js");
    ASSERT_TRUE(program.ok());
    auto t = AnalyzeProgram(*program);
    auto q = QueryDlAnalyze(*program);
    ASSERT_TRUE(t.ok() && q.ok());
    gt += app.ground_truth_paths;
    t_total += static_cast<int>(t->paths.size());
    q_total += static_cast<int>(q->paths.size());
    if (!t->paths.empty()) {
      ++t_positive;
    }
  }
  EXPECT_EQ(t_positive, 27);             // the paper's Part-2 population
  EXPECT_GE(t_total, 3 * q_total);       // "3× more privacy-sensitive dataflows"
  EXPECT_GT(t_total, gt / 2);            // Turnstile covers most of ground truth
  EXPECT_LT(q_total, gt / 4);            // QueryDL covers a small fraction
}

// Every app must be runnable in all three §6.2 versions.
struct RunCase {
  const char* version_name;
  AppVersion version;
};

class CorpusRunTest : public ::testing::TestWithParam<RunCase> {};

TEST_P(CorpusRunTest, AllAppsRunTenMessages) {
  for (const CorpusApp& app : Corpus()) {
    auto runtime = AppRuntime::Create(app, GetParam().version);
    ASSERT_TRUE(runtime.ok()) << app.name << ": " << runtime.status().ToString();
    Rng rng(2026);
    for (int seq = 0; seq < 10; ++seq) {
      Status status = (*runtime)->DriveMessage(&rng, seq);
      ASSERT_TRUE(status.ok()) << app.name << " msg " << seq << ": " << status.ToString();
    }
    EXPECT_GT((*runtime)->eval_count(), 0u) << app.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Versions, CorpusRunTest,
                         ::testing::Values(RunCase{"original", AppVersion::kOriginal},
                                           RunCase{"selective", AppVersion::kSelective},
                                           RunCase{"exhaustive", AppVersion::kExhaustive}),
                         [](const ::testing::TestParamInfo<RunCase>& tpi) {
                           return tpi.param.version_name;
                         });

TEST(CorpusRunTest, ManagedVersionsProduceSameSinkTrafficAsOriginal) {
  // The §6.2 placeholder policies are violation-free, and the tracker runs in
  // report mode — so managed runs must emit exactly the same I/O records.
  for (const char* name : {"camera-motion", "modbus", "nlp.js", "dispatch-hub"}) {
    const CorpusApp* app = FindCorpusApp(name);
    ASSERT_NE(app, nullptr);
    std::map<AppVersion, std::vector<std::string>> payloads;
    for (AppVersion version :
         {AppVersion::kOriginal, AppVersion::kSelective, AppVersion::kExhaustive}) {
      auto runtime = AppRuntime::Create(*app, version);
      ASSERT_TRUE(runtime.ok()) << name << ": " << runtime.status().ToString();
      Rng rng(7);
      for (int seq = 0; seq < 5; ++seq) {
        ASSERT_TRUE((*runtime)->DriveMessage(&rng, seq).ok()) << name;
      }
      for (const IoRecord& record : (*runtime)->interp().io_world().records) {
        payloads[version].push_back(record.channel + "|" + record.detail + "|" +
                                    record.payload);
      }
    }
    EXPECT_EQ(payloads[AppVersion::kOriginal], payloads[AppVersion::kSelective]) << name;
    EXPECT_EQ(payloads[AppVersion::kOriginal], payloads[AppVersion::kExhaustive]) << name;
  }
}

// --- Table 2 census substrate ---------------------------------------------------

TEST(CensusTest, PopulationTotalsMatchTable2) {
  auto repos = GenerateCensusPopulation(42);
  EXPECT_EQ(repos.size(), 1149u);
  std::map<std::string, int> by_framework;
  for (const CensusRepo& repo : repos) {
    ++by_framework[repo.true_framework];
  }
  EXPECT_EQ(by_framework["Node-RED"], 677);
  EXPECT_EQ(by_framework["Azure IoT"], 357);
  EXPECT_EQ(by_framework["HomeBridge"], 57);
  EXPECT_EQ(by_framework["OpenHAB"], 14);
  EXPECT_EQ(by_framework["SmartThings"], 29);
  EXPECT_EQ(by_framework["AWS Greengrass"], 15);
}

TEST(CensusTest, DetectorClassifiesEveryGeneratedRepo) {
  auto repos = GenerateCensusPopulation(7);
  for (const CensusRepo& repo : repos) {
    EXPECT_EQ(DetectFramework(repo.main_source_excerpt), repo.true_framework) << repo.name;
  }
}

TEST(CensusTest, DetectorIgnoresUnrelatedSources) {
  EXPECT_EQ(DetectFramework("let x = require('express'); x();"), "");
  EXPECT_EQ(DetectFramework(""), "");
}

TEST(CensusTest, GenerationIsDeterministicPerSeed) {
  auto a = GenerateCensusPopulation(5);
  auto b = GenerateCensusPopulation(5);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].name, b[0].name);
  EXPECT_EQ(a[100].main_source_excerpt, b[100].main_source_excerpt);
}

}  // namespace
}  // namespace turnstile
