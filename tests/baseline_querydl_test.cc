// QueryDL (CodeQL stand-in): finds direct flows, misses dynamic dispatch and
// promise steps, but resolves the prototype chain — the relative strengths
// and weaknesses §6.1 reports.
#include "src/baseline/querydl.h"

#include <gtest/gtest.h>

#include "src/analysis/analyzer.h"
#include "src/lang/parser.h"

namespace turnstile {
namespace {

QueryDlResult Analyze(const std::string& source) {
  auto program = ParseProgram(source, "app.js");
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto result = QueryDlAnalyze(*program);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : QueryDlResult{};
}

AnalysisResult TurnstileAnalyze(const std::string& source) {
  auto program = ParseProgram(source, "app.js");
  EXPECT_TRUE(program.ok());
  auto result = AnalyzeProgram(*program);
  EXPECT_TRUE(result.ok());
  return result.ok() ? std::move(result).value() : AnalysisResult{};
}

TEST(QueryDlTest, DirectSocketFlowIsFound) {
  QueryDlResult r = Analyze(R"(
    let net = require("net");
    let socket = net.connect(554, "cam.local");
    socket.on("data", frame => {
      socket.write(frame);
    });
  )");
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_EQ(r.paths[0].source_description, "net socket data");
  EXPECT_EQ(r.paths[0].sink_description, "socket write");
  EXPECT_GT(r.stats.ir_instructions, 0);
  EXPECT_GT(r.stats.closure_word_ops, 0u);
}

TEST(QueryDlTest, DirectHelperFunctionFlowIsFound) {
  QueryDlResult r = Analyze(R"(
    let net = require("net");
    let fs = require("fs");
    let socket = net.connect(1, "h");
    function formatFrame(data) { return "f:" + data; }
    socket.on("data", frame => {
      fs.writeFileSync("/log", formatFrame(frame));
    });
  )");
  EXPECT_EQ(r.paths.size(), 1u);
}

TEST(QueryDlTest, DynamicDispatchIsMissed) {
  // Turnstile resolves handlers[kind](frame); QueryDL does not (§6.1).
  const char* source = R"(
    let net = require("net");
    let socket = net.connect(2, "h");
    let handlers = {
      forward: data => { socket.write(data); },
      drop: data => {}
    };
    socket.on("data", frame => {
      let kind = "forward";
      handlers[kind](frame);
    });
  )";
  EXPECT_TRUE(Analyze(source).paths.empty());
  EXPECT_EQ(TurnstileAnalyze(source).paths.size(), 1u);
}

TEST(QueryDlTest, FunctionValueThroughCallReturnIsMissed) {
  // The callee is produced by a factory call — needs value propagation that
  // QueryDL's direct resolution lacks.
  const char* source = R"(
    let net = require("net");
    let socket = net.connect(3, "h");
    function makeSender(target) {
      return data => { target.write(data); };
    }
    let send = makeSender(socket);
    socket.on("data", frame => { send(frame); });
  )";
  EXPECT_TRUE(Analyze(source).paths.empty());
  EXPECT_EQ(TurnstileAnalyze(source).paths.size(), 1u);
}

TEST(QueryDlTest, TagThroughParameterIsMissed) {
  // The socket is passed into a helper; its type tag does not survive the
  // parameter boundary, so the `.write` inside is not recognized as a sink.
  const char* source = R"(
    let net = require("net");
    let socket = net.connect(4, "h");
    function pump(sock) {
      sock.on("data", frame => { sock.write(frame); });
    }
    pump(socket);
  )";
  EXPECT_TRUE(Analyze(source).paths.empty());
  EXPECT_EQ(TurnstileAnalyze(source).paths.size(), 1u);
}

TEST(QueryDlTest, PromiseThenStepIsMissed) {
  const char* source = R"(
    let deepstack = require("deepstack");
    let fs = require("fs");
    let net = require("net");
    let socket = net.connect(5, "h");
    socket.on("data", frame => {
      deepstack.faceRecognition(frame, "s", 0.5).then(result => {
        fs.writeFileSync("/faces", result.predictions);
      });
    });
  )";
  QueryDlResult r = Analyze(source);
  bool face_path = false;
  for (const DataflowPath& path : r.paths) {
    if (path.source_description == "face recognition result") {
      face_path = true;
    }
  }
  EXPECT_FALSE(face_path);
}

TEST(QueryDlTest, InheritedMethodIsResolvedUnlikeTurnstile) {
  // The prototype-chain case where CodeQL outperformed Turnstile (§6.1).
  const char* source = R"(
    let net = require("net");
    let socket = net.connect(6, "h");
    class Base {
      deliver(data) { socket.write(data); }
    }
    class Forwarder extends Base {
      tag(data) { return data; }
    }
    let fwd = new Forwarder();
    socket.on("data", frame => {
      fwd.deliver(frame);
    });
  )";
  EXPECT_EQ(Analyze(source).paths.size(), 1u);
  EXPECT_TRUE(TurnstileAnalyze(source).paths.empty());
}

TEST(QueryDlTest, RedHttpNodeIsMissedByBothTools) {
  const char* source = R"(
    module.exports = function(RED) {
      RED.httpNode.on("request", (req, res) => {
        res.end(req.body);
      });
    };
  )";
  EXPECT_TRUE(Analyze(source).paths.empty());
  EXPECT_TRUE(TurnstileAnalyze(source).paths.empty());
}

TEST(QueryDlTest, NodeRedDirectPatternIsFound) {
  // `this.on("input")` requires resolving `this` through createNode — which
  // both tools' queries encode structurally; QueryDL handles only the
  // single-assignment `let node = this` shape when the registration uses a
  // direct function declaration. Here the callback is a function literal on
  // a tagged receiver chain, which QueryDL cannot type (RED is a parameter),
  // so it finds nothing.
  const char* source = R"(
    module.exports = function(RED) {
      function FilterNode(config) {
        RED.nodes.createNode(this, config);
        let node = this;
        node.on("input", msg => {
          node.send(msg);
        });
      }
      RED.nodes.registerType("filter", FilterNode);
    };
  )";
  EXPECT_TRUE(Analyze(source).paths.empty());
  EXPECT_EQ(TurnstileAnalyze(source).paths.size(), 1u);
}

TEST(QueryDlTest, ObjectLiteralMethodIsResolved) {
  QueryDlResult r = Analyze(R"(
    let net = require("net");
    let socket = net.connect(7, "h");
    let pipeline = {
      out(data) { socket.write(data); }
    };
    socket.on("data", frame => { pipeline.out(frame); });
  )");
  EXPECT_EQ(r.paths.size(), 1u);
}

TEST(QueryDlTest, FluentOnChainKeepsTag) {
  QueryDlResult r = Analyze(R"(
    let fs = require("fs");
    let net = require("net");
    let socket = net.connect(8, "h");
    fs.createReadStream("/video").on("data", chunk => {
      socket.write(chunk);
    });
  )");
  EXPECT_EQ(r.paths.size(), 1u);
}

TEST(QueryDlTest, NoFalsePositiveOnCleanProgram) {
  QueryDlResult r = Analyze(R"(
    let net = require("net");
    let socket = net.connect(9, "h");
    socket.on("data", frame => {
      socket.write("static-ack");
    });
  )");
  EXPECT_TRUE(r.paths.empty());
  EXPECT_EQ(r.stats.sources_found, 1);
  EXPECT_EQ(r.stats.sinks_found, 1);
}

TEST(QueryDlTest, StatsReflectIrSize) {
  QueryDlResult small = Analyze("let x = 1;");
  QueryDlResult big = Analyze(R"(
    let a = 1; let b = a + 2; let c = b * 3;
    function f(x) { return x + a; }
    let d = f(c);
  )");
  EXPECT_GT(big.stats.ir_instructions, small.stats.ir_instructions);
  EXPECT_GT(big.stats.flow_edges, small.stats.flow_edges);
}

}  // namespace
}  // namespace turnstile
