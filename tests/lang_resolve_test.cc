// The shared name-resolution ("sema") pass: slot/hops annotations, frame
// sizes, hoisting, shadowing, catch/for-of scoping, transparency of empty
// blocks, and the re-resolution invariant after printer round-trips.
#include "src/lang/resolve.h"

#include <gtest/gtest.h>

#include "src/interp/interp.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"

namespace turnstile {
namespace {

Program MustParse(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

// First identifier node with the given name on the given line (0 = any line).
NodePtr FindIdent(const Program& program, const std::string& name, int line = 0) {
  NodePtr found;
  ForEachNode(program.root, [&](const NodePtr& node) {
    if (found == nullptr && node->kind == NodeKind::kIdentifier && node->str == name &&
        (line == 0 || node->loc.line == line)) {
      found = node;
    }
  });
  return found;
}

NodePtr FindKind(const Program& program, NodeKind kind) {
  NodePtr found;
  ForEachNode(program.root, [&](const NodePtr& node) {
    if (found == nullptr && node->kind == kind) {
      found = node;
    }
  });
  return found;
}

TEST(ResolveTest, MarksProgramResolved) {
  Program program = MustParse("let a = 1;\nlet b = a;");
  EXPECT_FALSE(IsResolved(program));
  ResolveProgram(program);
  EXPECT_TRUE(IsResolved(program));
  // Top-level declarations live in the name-keyed global environment.
  NodePtr use = FindIdent(program, "a", 2);
  ASSERT_NE(use, nullptr);
  EXPECT_EQ(use->hops, kHopsGlobal);
  EXPECT_EQ(use->atom, InternAtom("a"));
}

TEST(ResolveTest, ShadowingAcrossNestedClosures) {
  Program program = MustParse(
      "let x = 1;\n"
      "function outer() {\n"
      "  let x = 2;\n"
      "  function inner() {\n"
      "    let x = 3;\n"
      "    return x;\n"        // line 6: innermost x
      "  }\n"
      "  return inner() + x;\n"  // line 8: outer()'s x
      "}\n"
      "let result = outer() + x;\n");  // line 10: global x
  SemaResult sema = ResolveProgram(program);

  NodePtr innermost = FindIdent(program, "x", 6);
  NodePtr middle = FindIdent(program, "x", 8);
  NodePtr global = FindIdent(program, "x", 10);
  ASSERT_NE(innermost, nullptr);
  ASSERT_NE(middle, nullptr);
  ASSERT_NE(global, nullptr);

  // Each use resolves into its own scope: same-frame slot reads for the two
  // locals, a global-map probe for the top-level one.
  EXPECT_EQ(innermost->hops, 0);
  EXPECT_EQ(middle->hops, 0);
  EXPECT_EQ(global->hops, kHopsGlobal);

  // And to three distinct bindings.
  int b_inner = sema.use_to_binding.at(innermost->id);
  int b_middle = sema.use_to_binding.at(middle->id);
  EXPECT_NE(b_inner, b_middle);
  EXPECT_EQ(sema.use_to_binding.count(global->id), 1u);
  EXPECT_NE(sema.use_to_binding.at(global->id), b_inner);
  EXPECT_TRUE(sema.bindings[static_cast<size_t>(
      sema.use_to_binding.at(global->id))].is_global);
}

TEST(ResolveTest, FunctionHoistingBeforeDeclaration) {
  Program program = MustParse(
      "function wrapper() {\n"
      "  let a = helper();\n"   // use precedes the declaration
      "  function helper() { return 42; }\n"
      "  return a;\n"
      "}\n"
      "let result = wrapper();\n");
  SemaResult sema = ResolveProgram(program);
  NodePtr use = FindIdent(program, "helper", 2);
  ASSERT_NE(use, nullptr);
  EXPECT_GE(use->slot, 0);
  NodePtr decl;
  ForEachNode(program.root, [&](const NodePtr& node) {
    if (node->kind == NodeKind::kFunctionDecl && node->str == "helper") {
      decl = node;
    }
  });
  ASSERT_NE(decl, nullptr);
  // The pre-declaration use binds to the hoisted declaration.
  EXPECT_EQ(sema.use_to_binding.at(use->id), sema.decl_binding_by_ast.at(decl->id));
  EXPECT_EQ(use->slot, decl->slot);

  Interpreter interp;
  ASSERT_TRUE(interp.RunProgram(program).ok());
  Value* result = interp.global_env()->Lookup("result");
  ASSERT_NE(result, nullptr);
  EXPECT_DOUBLE_EQ(result->AsNumber(), 42.0);
}

TEST(ResolveTest, CatchParamScoping) {
  Program program = MustParse(
      "let e = \"outer\";\n"
      "let seen = \"\";\n"
      "try {\n"
      "  throw \"thrown\";\n"
      "} catch (e) {\n"
      "  seen = e;\n"          // line 6: the catch parameter, not the global
      "}\n"
      "let after = e;\n");     // line 8: the global again
  SemaResult sema = ResolveProgram(program);

  NodePtr try_node = FindKind(program, NodeKind::kTryStmt);
  ASSERT_NE(try_node, nullptr);
  EXPECT_EQ(try_node->frame_size, 1u);  // the catch frame holds exactly `e`
  const NodePtr& param = try_node->children[1];
  EXPECT_EQ(param->slot, 0);

  NodePtr inside = FindIdent(program, "e", 6);
  NodePtr outside = FindIdent(program, "e", 8);
  ASSERT_NE(inside, nullptr);
  ASSERT_NE(outside, nullptr);
  EXPECT_GE(inside->hops, 0);  // slot-indexed catch frame
  EXPECT_EQ(inside->slot, 0);
  EXPECT_EQ(outside->hops, kHopsGlobal);
  EXPECT_EQ(sema.use_to_binding.at(inside->id), sema.use_to_binding.at(param->id));

  Interpreter interp;
  ASSERT_TRUE(interp.RunProgram(program).ok());
  EXPECT_EQ(interp.global_env()->Lookup("seen")->ToDisplayString(), "thrown");
  EXPECT_EQ(interp.global_env()->Lookup("after")->ToDisplayString(), "outer");
}

TEST(ResolveTest, ForOfLoopVariableCapture) {
  Program program = MustParse(
      "let item = \"outer\";\n"
      "let fns = [];\n"
      "for (let item of [item + \"1\", item + \"2\"]) {\n"
      "  fns.push(() => item);\n"
      "}\n"
      "let result = fns.map(f => f()).join(\",\");\n");
  SemaResult sema = ResolveProgram(program);

  NodePtr for_of = FindKind(program, NodeKind::kForOfStmt);
  ASSERT_NE(for_of, nullptr);
  EXPECT_EQ(for_of->frame_size, 1u);  // per-iteration frame: just the loop var
  const NodePtr& loop_var = for_of->children[0];
  EXPECT_EQ(loop_var->slot, 0);

  // The iterable evaluates in the OUTER scope: `item` inside the array
  // literal is the global, not the loop variable.
  NodePtr iterable_use;
  ForEachNode(for_of->children[1], [&](const NodePtr& node) {
    if (iterable_use == nullptr && node->kind == NodeKind::kIdentifier &&
        node->str == "item") {
      iterable_use = node;
    }
  });
  ASSERT_NE(iterable_use, nullptr);
  EXPECT_EQ(iterable_use->hops, kHopsGlobal);

  // The closure captures the loop variable across the arrow's call frame.
  NodePtr captured = FindIdent(program, "item", 4);
  ASSERT_NE(captured, nullptr);
  EXPECT_GT(captured->hops, 0);
  EXPECT_EQ(sema.use_to_binding.at(captured->id), sema.use_to_binding.at(loop_var->id));

  Interpreter interp;
  ASSERT_TRUE(interp.RunProgram(program).ok());
  ASSERT_TRUE(interp.RunEventLoop().ok());
  EXPECT_EQ(interp.global_env()->Lookup("result")->ToDisplayString(), "outer1,outer2");
}

TEST(ResolveTest, TransparentBlocksDoNotCountAsHops) {
  Program program = MustParse(
      "function f(a) {\n"
      "  {\n"
      "    out = a;\n"          // line 3: through two transparent blocks
      "  }\n"
      "  return out;\n"
      "}\n"
      "function g(a) {\n"
      "  let pad = 0;\n"
      "  { let inner = 1; use2 = a + inner; }\n"  // line 9: two real frames
      "  return pad;\n"
      "}\n");
  ResolveProgram(program);

  // f's body block and the inner block both declare nothing, so neither
  // materializes a frame: `a` is 0 hops away, at slot 1 (slot 0 is `this`).
  NodePtr through_transparent = FindIdent(program, "a", 3);
  ASSERT_NE(through_transparent, nullptr);
  EXPECT_EQ(through_transparent->hops, 0);
  EXPECT_EQ(through_transparent->slot, 1);

  // g's body block (pad) and inner block (inner) each own a frame.
  NodePtr through_frames = FindIdent(program, "a", 9);
  ASSERT_NE(through_frames, nullptr);
  EXPECT_EQ(through_frames->hops, 2);
  EXPECT_EQ(through_frames->slot, 1);
}

TEST(ResolveTest, NamedFunctionExpressionSelfBinding) {
  Program program = MustParse(
      "let f = function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); };\n"
      "let result = f(5);\n");
  ResolveProgram(program);
  NodePtr fn = FindKind(program, NodeKind::kFunctionExpr);
  ASSERT_NE(fn, nullptr);
  EXPECT_GE(fn->slot, 0);  // the self-binding's slot in its own frame
  NodePtr self_use = FindIdent(program, "fact");
  ASSERT_NE(self_use, nullptr);
  EXPECT_EQ(self_use->hops, 0);
  EXPECT_EQ(self_use->slot, fn->slot);

  Interpreter interp;
  ASSERT_TRUE(interp.RunProgram(program).ok());
  EXPECT_DOUBLE_EQ(interp.global_env()->Lookup("result")->AsNumber(), 120.0);
}

TEST(ResolveTest, ReResolutionAfterPrinterRoundTrip) {
  const char* source =
      "function make(n) {\n"
      "  let acc = [];\n"
      "  for (let i of [1, 2, 3]) {\n"
      "    acc.push(() => n * i);\n"
      "  }\n"
      "  return acc.map(f => f()).join(\",\");\n"
      "}\n"
      "let result = make(10);\n";
  Program original = MustParse(source);
  ResolveProgram(original);
  EXPECT_TRUE(IsResolved(original));

  // A printer round-trip drops every annotation; the re-parsed tree must be
  // re-resolved before it can run on slot-indexed frames.
  std::string printed = PrintProgram(original);
  Program reparsed = MustParse(printed);
  EXPECT_FALSE(IsResolved(reparsed));
  ResolveProgram(reparsed);
  EXPECT_TRUE(IsResolved(reparsed));

  Interpreter a;
  Interpreter b;
  ASSERT_TRUE(a.RunProgram(original).ok());
  ASSERT_TRUE(b.RunProgram(reparsed).ok());
  EXPECT_EQ(a.global_env()->Lookup("result")->ToDisplayString(),
            b.global_env()->Lookup("result")->ToDisplayString());
  EXPECT_EQ(a.global_env()->Lookup("result")->ToDisplayString(), "10,20,30");
}

TEST(ResolveTest, ResolutionIsIdempotent) {
  Program program = MustParse(
      "let x = 1;\n"
      "function f(y) { let z = x + y; return z; }\n"
      "let result = f(2);\n");
  ResolveProgram(program);
  NodePtr fn = FindKind(program, NodeKind::kFunctionDecl);
  ASSERT_NE(fn, nullptr);
  uint32_t first_frame = fn->frame_size;
  ResolveProgram(program);  // overwrite every annotation
  EXPECT_EQ(fn->frame_size, first_frame);

  Interpreter interp;
  ASSERT_TRUE(interp.RunProgram(program).ok());
  EXPECT_DOUBLE_EQ(interp.global_env()->Lookup("result")->AsNumber(), 3.0);
}

}  // namespace
}  // namespace turnstile
