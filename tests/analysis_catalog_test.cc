// Catalog coverage: every rule family in the default catalog is exercised
// against the analyzer, so a regression in a rule entry fails a named test.
#include "src/analysis/catalog.h"

#include <gtest/gtest.h>

#include "src/analysis/analyzer.h"
#include "src/lang/parser.h"

namespace turnstile {
namespace {

size_t CountPaths(const std::string& source) {
  auto program = ParseProgram(source, "app.js");
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto result = AnalyzeProgram(*program);
  EXPECT_TRUE(result.ok());
  return result.ok() ? result->paths.size() : 0;
}

TEST(CatalogTest, LookupHelpers) {
  const Catalog& catalog = DefaultCatalog();
  EXPECT_NE(catalog.FindCallType("module:net", "connect"), nullptr);
  EXPECT_EQ(catalog.FindCallType("module:net", "nope"), nullptr);
  EXPECT_NE(catalog.FindCallbackSource("net.socket", "on", "data"), nullptr);
  EXPECT_EQ(catalog.FindCallbackSource("net.socket", "on", "close"), nullptr);
  EXPECT_NE(catalog.FindReturnSource("module:fs", "readFileSync"), nullptr);
  EXPECT_NE(catalog.FindSink("mqtt.client", "publish"), nullptr);
  EXPECT_EQ(catalog.FindSink("mqtt.client", "subscribe"), nullptr);
}

TEST(CatalogTest, HttpsAliasesHttp) {
  EXPECT_EQ(CountPaths(R"(
    let https = require("https");
    let fs = require("fs");
    https.get("https://svc/api", res => {
      res.on("data", body => {
        fs.writeFileSync("/cache", body);
      });
    });
  )"), 1u);
}

TEST(CatalogTest, WriteStreamSink) {
  EXPECT_EQ(CountPaths(R"(
    let fs = require("fs");
    let out = fs.createWriteStream("/log.bin");
    fs.createReadStream("/in.bin").on("data", chunk => {
      out.write(chunk);
    });
  )"), 1u);
}

TEST(CatalogTest, SqliteRowSource) {
  EXPECT_EQ(CountPaths(R"(
    let sqlite = require("sqlite3");
    let net = require("net");
    let db = new sqlite.Database("/d.db");
    let socket = net.connect(1, "h");
    db.get("SELECT * FROM t", (err, row) => {
      socket.write(row.value);
    });
  )"), 1u);
}

TEST(CatalogTest, ExpressJsonSink) {
  EXPECT_EQ(CountPaths(R"(
    let express = require("express");
    let app = express();
    app.post("/echo", (req, res) => {
      res.json({ echoed: req.body });
    });
  )"), 1u);
}

TEST(CatalogTest, NetServerConnectionSocket) {
  // The connection handler's socket parameter is tagged net.socket, so its
  // data events are sources and its writes are sinks.
  EXPECT_EQ(CountPaths(R"(
    let net = require("net");
    let server = net.createServer(conn => {
      conn.on("data", line => {
        conn.write("echo:" + line);
      });
    });
    server.listen(7000);
  )"), 1u);
}

TEST(CatalogTest, MqttTopicArgumentIsAlsoChecked) {
  // publish(topic, payload): both arguments are data-carrying.
  EXPECT_EQ(CountPaths(R"(
    let mqtt = require("mqtt");
    let net = require("net");
    let client = mqtt.connect("mqtt://b");
    let socket = net.connect(1, "h");
    socket.on("data", deviceId => {
      client.publish("state/" + deviceId, "online");
    });
  )"), 1u);
}

TEST(CatalogTest, SocketEndCarriesData) {
  EXPECT_EQ(CountPaths(R"(
    let net = require("net");
    let socket = net.connect(1, "h");
    socket.on("data", d => {
      socket.end("bye:" + d);
    });
  )"), 1u);
}

TEST(CatalogTest, EventRegistrationIsNotASinkItself) {
  // Passing tainted data as an event NAME is odd but must not count as a
  // dataflow: `.on` is control-flow registration, not a data sink.
  EXPECT_EQ(CountPaths(R"(
    let net = require("net");
    let socket = net.connect(1, "h");
    socket.on("data", d => {
      socket.on(d, x => x);
    });
  )"), 0u);
}

}  // namespace
}  // namespace turnstile
