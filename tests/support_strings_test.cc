#include "src/support/strings.h"

#include <gtest/gtest.h>

#include "src/support/rng.h"

namespace turnstile {
namespace {

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto parts = StrSplit("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitTrimmedDropsEmptiesAndTrims) {
  auto parts = StrSplitTrimmed("  a ; b ;; ", ';');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, ", "), "x, y, z");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(StrTrim("  hi \t\n"), "hi");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StringsTest, PrefixSuffixContains) {
  EXPECT_TRUE(StartsWith("turnstile", "turn"));
  EXPECT_FALSE(StartsWith("turn", "turnstile"));
  EXPECT_TRUE(EndsWith("policy.json", ".json"));
  EXPECT_TRUE(Contains("RED.nodes.createNode", "createNode"));
  EXPECT_FALSE(Contains("abc", "z"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(StrReplaceAll("a.b.c", ".", "->"), "a->b->c");
  EXPECT_EQ(StrReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(StrReplaceAll("abc", "", "x"), "abc");
}

TEST(StringsTest, NumberToStringMatchesJsStyle) {
  EXPECT_EQ(NumberToString(42), "42");
  EXPECT_EQ(NumberToString(-7), "-7");
  EXPECT_EQ(NumberToString(2.5), "2.5");
  EXPECT_EQ(NumberToString(0), "0");
  EXPECT_EQ(NumberToString(1.0 / 0.0), "Infinity");
  EXPECT_EQ(NumberToString(-1.0 / 0.0), "-Infinity");
  EXPECT_EQ(NumberToString(0.0 / 0.0), "NaN");
}

TEST(StringsTest, Repeat) {
  EXPECT_EQ(StrRepeat("ab", 3), "ababab");
  EXPECT_EQ(StrRepeat("x", 0), "");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, WordHasRequestedLength) {
  Rng rng(9);
  EXPECT_EQ(rng.NextWord(8).size(), 8u);
}

}  // namespace
}  // namespace turnstile
