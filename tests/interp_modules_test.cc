// Simulated I/O modules: fs, net, http, mqtt, nodemailer, sqlite3, deepstack.
#include <gtest/gtest.h>

#include "src/interp/interp.h"
#include "src/lang/parser.h"

namespace turnstile {
namespace {

struct RunOutcome {
  Value result;
  std::vector<IoRecord> records;
};

RunOutcome RunScript(Interpreter& interp, const std::string& source,
               const std::string& var = "result") {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  Status status = interp.RunProgram(*program);
  EXPECT_TRUE(status.ok()) << status.ToString();
  Status loop_status = interp.RunEventLoop();
  EXPECT_TRUE(loop_status.ok()) << loop_status.ToString();
  Value* slot = interp.global_env()->Lookup(var);
  return {slot != nullptr ? *slot : Value::Undefined(), interp.io_world().records};
}

RunOutcome RunScript(const std::string& source, const std::string& var = "result") {
  Interpreter interp;
  return RunScript(interp, source, var);
}

// Returns records on `channel`.
std::vector<IoRecord> RecordsOn(const std::vector<IoRecord>& records,
                                const std::string& channel) {
  std::vector<IoRecord> out;
  for (const IoRecord& r : records) {
    if (r.channel == channel) {
      out.push_back(r);
    }
  }
  return out;
}

TEST(ModulesTest, FsWriteIsRecordedAndReadable) {
  RunOutcome out = RunScript(R"(
    let fs = require("fs");
    fs.writeFileSync("/data/frame.jpg", "pixels");
    let result = fs.readFileSync("/data/frame.jpg");
  )");
  EXPECT_EQ(out.result.ToDisplayString(), "pixels");
  auto writes = RecordsOn(out.records, "fs");
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(writes[0].detail, "/data/frame.jpg");
  EXPECT_EQ(writes[0].payload, "pixels");
}

TEST(ModulesTest, FsReadOfUnknownFileReturnsSyntheticContent) {
  RunOutcome out = RunScript(R"(
    let fs = require("fs");
    let result = fs.readFileSync("/no/such/file");
  )");
  EXPECT_EQ(out.result.ToDisplayString(), "simulated-content:/no/such/file");
}

TEST(ModulesTest, FsAsyncReadDeliversViaEventLoop) {
  RunOutcome out = RunScript(R"(
    let fs = require("fs");
    let result = "";
    fs.readFile("/cfg.json", (err, data) => { result = data; });
  )");
  EXPECT_EQ(out.result.ToDisplayString(), "simulated-content:/cfg.json");
}

TEST(ModulesTest, FsReadStreamEmitsChunksThenEnd) {
  RunOutcome out = RunScript(R"(
    let fs = require("fs");
    let stream = fs.createReadStream("/video.raw");
    let chunks = 0;
    let ended = false;
    stream.on("data", chunk => { chunks = chunks + 1; });
    stream.on("end", () => { ended = true; });
    let result = 0;
    stream.on("end", () => { result = chunks; });
  )");
  EXPECT_DOUBLE_EQ(out.result.ToNumber(), 3);
}

TEST(ModulesTest, NetSocketRoundTrip) {
  RunOutcome out = RunScript(R"(
    let net = require("net");
    let socket = net.connect(8080, "camera.local");
    socket.on("connect", () => { socket.write("hello-camera"); });
  )");
  auto writes = RecordsOn(out.records, "net");
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(writes[0].detail, "camera.local");
  EXPECT_EQ(writes[0].payload, "hello-camera");
}

TEST(ModulesTest, HttpGetDeliversBody) {
  RunOutcome out = RunScript(R"(
    let http = require("http");
    let result = "";
    http.get("http://svc.example/api", res => {
      res.on("data", body => { result = body; });
    });
  )");
  EXPECT_EQ(out.result.ToDisplayString(), "http-body:http://svc.example/api");
}

TEST(ModulesTest, HttpRequestWriteIsRecorded) {
  RunOutcome out = RunScript(R"(
    let http = require("http");
    let req = http.request({ host: "collector.example", method: "POST" });
    req.write("telemetry-payload");
    req.end();
  )");
  auto writes = RecordsOn(out.records, "http");
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(writes[0].detail, "collector.example");
  EXPECT_EQ(writes[0].payload, "telemetry-payload");
}

TEST(ModulesTest, MqttPublishIsRecorded) {
  RunOutcome out = RunScript(R"(
    let mqtt = require("mqtt");
    let client = mqtt.connect("mqtt://broker.local");
    client.on("connect", () => { client.publish("door/lock", "OPEN"); });
  )");
  auto pubs = RecordsOn(out.records, "mqtt");
  ASSERT_EQ(pubs.size(), 1u);
  EXPECT_EQ(pubs[0].detail, "mqtt://broker.local/door/lock");
  EXPECT_EQ(pubs[0].payload, "OPEN");
}

TEST(ModulesTest, NodemailerSendMailRecordsRecipientAndBody) {
  RunOutcome out = RunScript(R"(
    let mailer = require("nodemailer");
    let transport = mailer.createTransport({ service: "smtp" });
    let result = "";
    transport.sendMail({ to: "admin@example.com", attachments: "frame-007" },
                       (err, info) => { result = info.accepted[0]; });
  )");
  EXPECT_EQ(out.result.ToDisplayString(), "admin@example.com");
  auto mails = RecordsOn(out.records, "smtp");
  ASSERT_EQ(mails.size(), 1u);
  EXPECT_EQ(mails[0].detail, "admin@example.com");
  EXPECT_EQ(mails[0].payload, "frame-007");
}

TEST(ModulesTest, SqliteRunRecordsSqlAndParams) {
  RunOutcome out = RunScript(R"js(
    let sqlite = require("sqlite3");
    let db = new sqlite.Database("/var/nvr.db");
    db.run("INSERT INTO frames VALUES (?)", ["frame-1"]);
  )js");
  auto runs = RecordsOn(out.records, "sqlite");
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].detail, "/var/nvr.db");
  EXPECT_NE(runs[0].payload.find("INSERT INTO frames"), std::string::npos);
  EXPECT_NE(runs[0].payload.find("frame-1"), std::string::npos);
}

TEST(ModulesTest, DeepstackReturnsPredictionsPromise) {
  RunOutcome out = RunScript(R"(
    let deepstack = require("deepstack");
    let result = -1;
    deepstack.faceRecognition("frame-bytes-abc", "http://ds.local", 0.8)
      .then(r => { result = r.predictions.length; });
  )");
  double n = out.result.ToNumber();
  EXPECT_GE(n, 0);
  EXPECT_LE(n, 2);
}

TEST(ModulesTest, DeepstackIsDeterministicForSameFrame) {
  RunOutcome a = RunScript(R"(
    let deepstack = require("deepstack");
    let result = "";
    deepstack.faceRecognition("same-frame", "s", 0.5)
      .then(r => { result = JSON.stringify(r); });
  )");
  RunOutcome b = RunScript(R"(
    let deepstack = require("deepstack");
    let result = "";
    deepstack.faceRecognition("same-frame", "s", 0.5)
      .then(r => { result = JSON.stringify(r); });
  )");
  EXPECT_EQ(a.result.ToDisplayString(), b.result.ToDisplayString());
}

TEST(ModulesTest, ModulesAreCachedPerInterpreter) {
  RunOutcome out = RunScript(R"(
    let a = require("fs");
    let b = require("fs");
    let result = a === b;
  )");
  EXPECT_TRUE(out.result.AsBool());
}

TEST(ModulesTest, HarnessCanInjectEventsIntoEmitters) {
  // A harness (the flow engine / bench driver) pushes data into a socket the
  // application is listening on.
  Interpreter interp;
  auto program = ParseProgram(R"(
    let net = require("net");
    let socket = net.connect(554, "rtsp.camera");
    let received = [];
    socket.on("data", frame => { received.push(frame); });
    let result = received;
  )");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(interp.RunProgram(*program).ok());
  ASSERT_TRUE(interp.RunEventLoop().ok());

  auto& sockets = interp.io_world().emitters["net.socket"];
  ASSERT_EQ(sockets.size(), 1u);
  interp.EmitEvent(sockets[0], "data", {Value("frame-1")});
  interp.EmitEvent(sockets[0], "data", {Value("frame-2")});
  ASSERT_TRUE(interp.RunEventLoop().ok());

  Value* received = interp.global_env()->Lookup("received");
  ASSERT_NE(received, nullptr);
  EXPECT_EQ(received->ToDisplayString(), "[frame-1, frame-2]");
}

TEST(ModulesTest, IoRecordsCarryVirtualTimestamps) {
  RunOutcome out = RunScript(R"(
    let fs = require("fs");
    setTimeout(() => { fs.writeFileSync("/late.txt", "x"); }, 2000);
  )");
  auto writes = RecordsOn(out.records, "fs");
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_DOUBLE_EQ(writes[0].time, 2.0);
}

}  // namespace
}  // namespace turnstile
