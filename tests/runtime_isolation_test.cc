// Multi-instance isolation (ISSUE 7): N corpus apps run concurrently on N
// std::threads, each on its own isolated RuntimeContext, and nothing leaks
// between them — per-context metrics and audit ledgers are disjoint, the
// violation set and the canonical audit log of every instance are
// byte-identical to a single-threaded run of the same app, and (under the
// TSAN CI job) the whole thing is data-race-free. This is the proof
// obligation of the RuntimeContext refactor: the enabling step for the
// sharded multi-tenant flow runtime.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/corpus/driver.h"
#include "src/runtime/context.h"

namespace turnstile {
namespace {

constexpr int kMessages = 5;
constexpr size_t kInstances = 6;  // acceptance floor is >= 4 concurrent

// Everything one app instance observably produces, plus the runtime counters
// recorded in its context's private registry.
struct InstanceOutcome {
  std::string status;       // "" when every step succeeded
  std::string io;           // rendered io_world records
  std::string violations;   // rendered tracker violation reports
  std::string audit;        // canonical audit-ledger log
  uint64_t audit_recorded = 0;
  uint64_t flow_injects = 0;
  uint64_t dift_checks = 0;
  uint64_t macrotasks = 0;
};

// Runs `app` to completion on `context` and collects the outcome. The audit
// ledger is enabled before the instance is built so module-load decisions are
// captured too — same arrangement as corpus_roundtrip_test, but against the
// context's own ledger instead of the global one.
InstanceOutcome RunInstance(const CorpusApp& app, RuntimeContext& context) {
  InstanceOutcome outcome;
  context.audit().Enable(1u << 16);
  auto runtime = AppRuntime::Create(app, AppVersion::kSelective, std::nullopt, &context);
  if (!runtime.ok()) {
    outcome.status = app.name + ": " + runtime.status().ToString();
    return outcome;
  }
  Rng rng(977u);
  for (int seq = 0; seq < kMessages; ++seq) {
    Status status = (*runtime)->DriveMessage(&rng, seq);
    if (!status.ok()) {
      outcome.status = app.name + ": " + status.ToString();
      return outcome;
    }
  }
  std::ostringstream io;
  for (const IoRecord& record : (*runtime)->interp().io_world().records) {
    io << record.channel << "|" << record.op << "|" << record.detail << "|" << record.payload
       << "\n";
  }
  outcome.io = io.str();
  if ((*runtime)->tracker() != nullptr) {
    std::ostringstream violations;
    for (const Violation& v : (*runtime)->tracker()->violations()) {
      violations << v.sink << " " << v.data_labels << " -> " << v.receiver_labels << "\n";
    }
    outcome.violations = violations.str();
  }
  outcome.audit = context.audit().CanonicalLog();
  outcome.audit_recorded = context.audit().recorded();
  outcome.flow_injects = context.metrics().GetCounter("flow.injects")->value();
  outcome.dift_checks = context.metrics().GetCounter("dift.checks")->value();
  outcome.macrotasks = context.metrics().GetCounter("interp.macrotasks_executed")->value();
  context.audit().Disable();
  return outcome;
}

// The apps under test: Turnstile-managed corpus apps (they carry usable
// policies), round-robined up to kInstances.
std::vector<const CorpusApp*> PickApps() {
  std::vector<const CorpusApp*> picked;
  for (const CorpusApp& app : Corpus()) {
    if (app.bucket != CorpusBucket::kTurnstileOnly && app.bucket != CorpusBucket::kBothFind) {
      continue;
    }
    picked.push_back(&app);
    if (picked.size() == kInstances) {
      break;
    }
  }
  return picked;
}

TEST(RuntimeIsolationTest, ConcurrentInstancesMatchSingleThreadedRuns) {
  std::vector<const CorpusApp*> apps = PickApps();
  ASSERT_GE(apps.size(), 4u);

  // Single-threaded reference pass: one isolated context per app, run
  // sequentially. Isolated-vs-isolated keeps the comparison exact (trace ids
  // and ledger sequences start at 1 in both passes).
  std::vector<InstanceOutcome> reference(apps.size());
  for (size_t i = 0; i < apps.size(); ++i) {
    auto context = RuntimeContext::CreateIsolated();
    reference[i] = RunInstance(*apps[i], *context);
    ASSERT_EQ(reference[i].status, "") << "reference run failed";
    EXPECT_GT(reference[i].audit_recorded, 0u)
        << apps[i]->name << ": managed apps must produce audit events";
  }

  // Concurrent pass: every instance on its own thread + context.
  std::vector<InstanceOutcome> concurrent(apps.size());
  {
    std::vector<std::unique_ptr<RuntimeContext>> contexts;
    for (size_t i = 0; i < apps.size(); ++i) {
      contexts.push_back(RuntimeContext::CreateIsolated());
    }
    std::vector<std::thread> threads;
    threads.reserve(apps.size());
    for (size_t i = 0; i < apps.size(); ++i) {
      threads.emplace_back([&, i] { concurrent[i] = RunInstance(*apps[i], *contexts[i]); });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }

  for (size_t i = 0; i < apps.size(); ++i) {
    SCOPED_TRACE(apps[i]->name);
    ASSERT_EQ(concurrent[i].status, "");
    // Violations and the canonical audit log are byte-identical to the
    // single-threaded run: concurrency must not change a single monitor
    // decision, nor the order decisions are recorded in.
    EXPECT_EQ(concurrent[i].violations, reference[i].violations);
    EXPECT_EQ(concurrent[i].audit, reference[i].audit);
    EXPECT_EQ(concurrent[i].io, reference[i].io);
    // Disjoint metrics: each context's registry holds exactly the work of its
    // own instance — the same counts the sequential pass recorded.
    EXPECT_EQ(concurrent[i].audit_recorded, reference[i].audit_recorded);
    EXPECT_EQ(concurrent[i].flow_injects, reference[i].flow_injects);
    EXPECT_EQ(concurrent[i].dift_checks, reference[i].dift_checks);
    EXPECT_EQ(concurrent[i].macrotasks, reference[i].macrotasks);
  }
}

TEST(RuntimeIsolationTest, SameAppConcurrentlyInManyContextsStaysDisjoint) {
  // The sharding scenario: one popular app, many tenants. Every instance runs
  // the SAME app concurrently; each context must still end up with the
  // identical (not merely similar) per-instance record.
  std::vector<const CorpusApp*> apps = PickApps();
  ASSERT_FALSE(apps.empty());
  const CorpusApp& app = *apps.front();

  auto ref_context = RuntimeContext::CreateIsolated();
  InstanceOutcome reference = RunInstance(app, *ref_context);
  ASSERT_EQ(reference.status, "");

  std::vector<InstanceOutcome> concurrent(kInstances);
  {
    std::vector<std::unique_ptr<RuntimeContext>> contexts;
    for (size_t i = 0; i < kInstances; ++i) {
      contexts.push_back(RuntimeContext::CreateIsolated());
    }
    std::vector<std::thread> threads;
    for (size_t i = 0; i < kInstances; ++i) {
      threads.emplace_back([&, i] { concurrent[i] = RunInstance(app, *contexts[i]); });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }
  for (size_t i = 0; i < kInstances; ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(concurrent[i].status, "");
    EXPECT_EQ(concurrent[i].audit, reference.audit);
    EXPECT_EQ(concurrent[i].violations, reference.violations);
    EXPECT_EQ(concurrent[i].flow_injects, reference.flow_injects);
  }
}

TEST(RuntimeIsolationTest, IsolatedContextsDoNotTouchTheDefaultRegistry) {
  // Runtime counters recorded by an isolated instance must not move the
  // default context's registry. (Static-phase metrics — parse/analysis
  // timings, vm.chunks_compiled — stay process-wide by design; runtime
  // counters are the isolation boundary.)
  obs::Metrics& global = RuntimeContext::Default().metrics();
  uint64_t injects_before = global.GetCounter("flow.injects")->value();
  uint64_t checks_before = global.GetCounter("dift.checks")->value();
  uint64_t audit_before = global.GetCounter(
      obs::MetricWithLabel("audit.events_total", "kind", "flow_check"))->value();

  std::vector<const CorpusApp*> apps = PickApps();
  ASSERT_FALSE(apps.empty());
  auto context = RuntimeContext::CreateIsolated();
  InstanceOutcome outcome = RunInstance(*apps.front(), *context);
  ASSERT_EQ(outcome.status, "");
  EXPECT_GT(outcome.flow_injects, 0u);

  EXPECT_EQ(global.GetCounter("flow.injects")->value(), injects_before);
  EXPECT_EQ(global.GetCounter("dift.checks")->value(), checks_before);
  EXPECT_EQ(global.GetCounter(
                obs::MetricWithLabel("audit.events_total", "kind", "flow_check"))->value(),
            audit_before);
}

TEST(RuntimeIsolationTest, DefaultContextWrapsTheProcessSingletons) {
  RuntimeContext& def = RuntimeContext::Default();
  EXPECT_TRUE(def.is_default());
  EXPECT_EQ(&def.metrics(), &obs::Metrics::Global());
  EXPECT_EQ(&def.trace_recorder(), &obs::TraceRecorder::Global());
  EXPECT_EQ(&def.profiler(), &obs::Profiler::Global());
  EXPECT_EQ(&def.audit(), &obs::AuditLedger::Global());
  EXPECT_EQ(&def.atoms(), &AtomTable::Global());

  auto isolated = RuntimeContext::CreateIsolated();
  EXPECT_FALSE(isolated->is_default());
  EXPECT_NE(&isolated->metrics(), &def.metrics());
  EXPECT_NE(&isolated->trace_recorder(), &def.trace_recorder());
  EXPECT_NE(&isolated->profiler(), &def.profiler());
  EXPECT_NE(&isolated->audit(), &def.audit());
  // The atom table is shared by design: atoms are process-wide names.
  EXPECT_EQ(&isolated->atoms(), &def.atoms());
}

}  // namespace
}  // namespace turnstile
