// Scope/symbol resolution: bindings, shadowing, closures, hoisting, `this`.
#include "src/analysis/scope.h"

#include <gtest/gtest.h>

#include "src/lang/parser.h"

namespace turnstile {
namespace {

ResolvedProgram Resolve(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  static std::vector<Program> keepalive;  // resolver stores a Program pointer
  keepalive.push_back(std::move(program).value());
  return ResolveScopes(keepalive.back());
}

// Binding node of the identifier USE with the given name and line.
int BindingOfUse(const ResolvedProgram& resolved, const std::string& name, int line) {
  int result = -1;
  ForEachNode(resolved.program->root, [&](const NodePtr& node) {
    if (node->kind == NodeKind::kIdentifier && node->str == name && node->loc.line == line) {
      auto it = resolved.use_to_binding.find(node->id);
      if (it != resolved.use_to_binding.end()) {
        result = it->second;
      }
    }
  });
  return result;
}

TEST(ScopeTest, LocalBindingResolution) {
  ResolvedProgram r = Resolve("let a = 1;\nlet b = a + 2;");
  EXPECT_GE(BindingOfUse(r, "a", 2), 0);
}

TEST(ScopeTest, UnboundIdentifiersHaveNoEntry) {
  ResolvedProgram r = Resolve("console.log(mystery);");
  EXPECT_EQ(BindingOfUse(r, "mystery", 1), -1);
  EXPECT_EQ(BindingOfUse(r, "console", 1), -1);  // builtin: unresolved
}

TEST(ScopeTest, BlockShadowing) {
  ResolvedProgram r = Resolve(
      "let x = 1;\n"
      "{\n"
      "  let x = 2;\n"
      "  use(x);\n"      // line 4: inner x
      "}\n"
      "use(x);\n");      // line 6: outer x
  int inner = BindingOfUse(r, "x", 4);
  int outer = BindingOfUse(r, "x", 6);
  EXPECT_GE(inner, 0);
  EXPECT_GE(outer, 0);
  EXPECT_NE(inner, outer);
}

TEST(ScopeTest, ClosureCapturesOuterBinding) {
  ResolvedProgram r = Resolve(
      "let captured = 1;\n"
      "let f = () => {\n"
      "  return captured;\n"  // line 3
      "};\n");
  EXPECT_GE(BindingOfUse(r, "captured", 3), 0);
}

TEST(ScopeTest, ParameterShadowsOuter) {
  ResolvedProgram r = Resolve(
      "let v = 1;\n"
      "function f(v) {\n"
      "  return v;\n"  // line 3: the parameter
      "}\n"
      "use(v);\n");    // line 5: the outer v
  EXPECT_NE(BindingOfUse(r, "v", 3), BindingOfUse(r, "v", 5));
}

TEST(ScopeTest, FunctionDeclarationsHoistWithinScope) {
  // helper is used before it is declared — the idiomatic JS pattern.
  ResolvedProgram r = Resolve(
      "function caller() {\n"
      "  return helper(1);\n"  // line 2
      "}\n"
      "function helper(x) {\n"
      "  return x;\n"
      "}\n");
  int use = BindingOfUse(r, "helper", 2);
  ASSERT_GE(use, 0);
  // The use resolves to the hoisted declaration binding.
  auto decl_binding = [&]() {
    for (const auto& [ast, binding] : r.decl_binding_by_ast) {
      if (r.ast_by_id[static_cast<size_t>(ast)]->kind == NodeKind::kFunctionDecl &&
          r.ast_by_id[static_cast<size_t>(ast)]->str == "helper") {
        return binding;
      }
    }
    return -1;
  }();
  EXPECT_EQ(use, decl_binding);
}

TEST(ScopeTest, HoistingIsPerScope) {
  // The inner helper shadows the outer one for uses inside f.
  ResolvedProgram r = Resolve(
      "function helper() { return 1; }\n"
      "function f() {\n"
      "  let v = helper();\n"         // line 3: inner helper (hoisted)
      "  function helper() { return 2; }\n"
      "  return v;\n"
      "}\n"
      "use(helper);\n");              // line 7: outer helper
  EXPECT_NE(BindingOfUse(r, "helper", 3), BindingOfUse(r, "helper", 7));
}

TEST(ScopeTest, ThisResolvesToNearestNonArrowFunction) {
  ResolvedProgram r = Resolve(
      "function outer() {\n"
      "  let arrow = () => {\n"
      "    return this;\n"  // line 3: outer's this
      "  };\n"
      "  return this;\n"    // line 5: outer's this
      "}\n");
  int arrow_this = -1;
  int direct_this = -1;
  ForEachNode(r.program->root, [&](const NodePtr& node) {
    if (node->kind == NodeKind::kThisExpr) {
      auto it = r.use_to_binding.find(node->id);
      int binding = it == r.use_to_binding.end() ? -1 : it->second;
      if (node->loc.line == 3) {
        arrow_this = binding;
      } else if (node->loc.line == 5) {
        direct_this = binding;
      }
    }
  });
  ASSERT_GE(arrow_this, 0);
  EXPECT_EQ(arrow_this, direct_this);
}

TEST(ScopeTest, ClassMethodsAreRegistered) {
  ResolvedProgram r = Resolve(
      "class Base { ping() { return 1; } }\n"
      "class Derived extends Base { pong() { return 2; } }\n");
  ASSERT_EQ(r.classes.size(), 2u);
  EXPECT_EQ(r.classes[0].name, "Base");
  EXPECT_EQ(r.classes[1].super_name, "Base");
  EXPECT_TRUE(r.classes[0].methods.count("ping"));
  EXPECT_TRUE(r.classes[1].methods.count("pong"));
  EXPECT_FALSE(r.classes[1].methods.count("ping"));  // own methods only
}

TEST(ScopeTest, FunctionInfoHasParamsAndReturn) {
  ResolvedProgram r = Resolve("function f(a, b, ...rest) { return a; }");
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].param_bindings.size(), 3u);
  EXPECT_GE(r.functions[0].return_binding, 0);
  EXPECT_GE(r.functions[0].this_binding, 0);
}

TEST(ScopeTest, ArrowHasNoThisBinding) {
  ResolvedProgram r = Resolve("let f = x => x;");
  ASSERT_EQ(r.functions.size(), 1u);
  EXPECT_EQ(r.functions[0].this_binding, -1);
}

TEST(ScopeTest, CatchParameterIsScoped) {
  ResolvedProgram r = Resolve(
      "try { f(); } catch (e) {\n"
      "  use(e);\n"  // line 2
      "}\n");
  EXPECT_GE(BindingOfUse(r, "e", 2), 0);
}

TEST(ScopeTest, ForOfVariableIsScoped) {
  ResolvedProgram r = Resolve(
      "for (let item of list) {\n"
      "  use(item);\n"  // line 2
      "}\n");
  EXPECT_GE(BindingOfUse(r, "item", 2), 0);
  EXPECT_EQ(BindingOfUse(r, "list", 1), -1);  // unbound
}

}  // namespace
}  // namespace turnstile
