// End-to-end pipeline properties, checked over randomized workloads:
//
//   P1 (transparency / weak noninterference): when the policy admits every
//      flow, the managed application produces byte-identical sink traffic to
//      the original — for both instrumentation strategies, over random
//      message streams.
//   P2 (enforcement soundness): under a restrictive policy in enforce mode,
//      no sink record ever contains data the policy forbids, whatever the
//      input stream.
//   P3 (print/parse round-trip): an instrumented program survives
//      Print -> Parse -> run with identical behaviour (the instrumentor's
//      output is real source code, not an in-memory artifact).
//   P4 (report generation): every corpus app renders a well-formed report.
#include <gtest/gtest.h>

#include "src/analysis/report.h"
#include "src/corpus/corpus.h"
#include "src/corpus/driver.h"
#include "src/dift/tracker.h"
#include "src/instrument/instrumentor.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"

namespace turnstile {
namespace {

std::vector<std::string> SinkTraffic(Interpreter& interp) {
  std::vector<std::string> out;
  for (const IoRecord& record : interp.io_world().records) {
    out.push_back(record.channel + "|" + record.op + "|" + record.detail + "|" +
                  record.payload);
  }
  return out;
}

// --- P1: transparency over random seeds --------------------------------------

class TransparencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransparencyTest, ManagedEqualsOriginalOnViolationFreePolicies) {
  // A representative slice of the corpus (different entry kinds and sinks).
  // (modbus is exercised by the corpus suite; its 30 ms/message workload is
  // too slow to repeat across seeds here.)
  for (const char* name : {"camera-motion", "dispatch-hub", "watson",
                           "presence-tracker", "sqlite-history"}) {
    const CorpusApp* app = FindCorpusApp(name);
    ASSERT_NE(app, nullptr) << name;
    std::vector<std::string> traffic[3];
    int index = 0;
    for (AppVersion version :
         {AppVersion::kOriginal, AppVersion::kSelective, AppVersion::kExhaustive}) {
      auto runtime = AppRuntime::Create(*app, version);
      ASSERT_TRUE(runtime.ok()) << name << ": " << runtime.status().ToString();
      Rng rng(GetParam());
      for (int seq = 0; seq < 8; ++seq) {
        ASSERT_TRUE((*runtime)->DriveMessage(&rng, seq).ok()) << name;
      }
      traffic[index++] = SinkTraffic((*runtime)->interp());
      if (version != AppVersion::kOriginal) {
        EXPECT_TRUE((*runtime)->tracker()->violations().empty())
            << name << ": placeholder policies must be violation-free";
      }
    }
    EXPECT_EQ(traffic[0], traffic[1]) << name << " selective diverged";
    EXPECT_EQ(traffic[0], traffic[2]) << name << " exhaustive diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransparencyTest,
                         ::testing::Values(11u, 222u, 3333u, 44444u));

// --- P2: enforcement soundness ------------------------------------------------

constexpr const char* kGuardedApp = R"(
  let net = require("net");
  let fs = require("fs");
  let socket = net.connect(554, "cam");
  socket.on("data", frame => {
    frame = __dift.label(frame, "Frame");
    let archive = __dift.label(fs, "Archive");
    archive.writeFileSync("/archive.bin", frame);
  });
)";

constexpr const char* kGuardPolicy = R"json({
  "labellers": {
    "Frame": { "$fn": "f => (f.includes(\"secret\") ? \"secret\" : \"public\")" },
    "Archive": { "$const": "publicArchive" }
  },
  "rules": ["public -> publicArchive"]
})json";

class EnforcementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnforcementTest, ForbiddenDataNeverReachesTheSink) {
  auto program = ParseProgram(kGuardedApp, "guarded.js");
  ASSERT_TRUE(program.ok());
  auto policy_result = Policy::FromJsonText(kGuardPolicy);
  ASSERT_TRUE(policy_result.ok());
  std::shared_ptr<Policy> policy(std::move(policy_result).value().release());
  auto analysis = AnalyzeProgram(*program);
  ASSERT_TRUE(analysis.ok());
  auto instrumented =
      InstrumentProgram(*program, *policy, InstrumentMode::kSelective, &*analysis);
  ASSERT_TRUE(instrumented.ok());

  Interpreter interp;
  DiftTracker tracker(&interp, policy);  // default: enforce
  tracker.Install();
  ASSERT_TRUE(interp.RunProgram(instrumented->program).ok());
  ASSERT_TRUE(interp.RunEventLoop().ok());

  Rng rng(GetParam());
  int secret_count = 0;
  auto& sockets = interp.io_world().emitters["net.socket"];
  ASSERT_FALSE(sockets.empty());
  for (int i = 0; i < 40; ++i) {
    bool is_secret = rng.NextBool(0.5);
    secret_count += is_secret;
    std::string frame = (is_secret ? "secret:" : "routine:") + rng.NextWord(12);
    interp.EmitEvent(sockets[0], "data", {Value(frame)});
    ASSERT_TRUE(interp.RunEventLoop().ok());
  }
  // Soundness: nothing containing "secret" was written.
  int written = 0;
  for (const IoRecord& record : interp.io_world().records) {
    EXPECT_EQ(record.payload.find("secret:"), std::string::npos)
        << "forbidden payload leaked: " << record.payload;
    ++written;
  }
  // Completeness on this workload: everything else was written, and every
  // secret frame produced a violation.
  EXPECT_EQ(written, 40 - secret_count);
  EXPECT_EQ(static_cast<int>(tracker.violations().size()), secret_count);
  // Provenance: every violation explains itself — the chain names the
  // labeller that attached the offending label and the sink it hit, even
  // with the trace recorder disabled (the default here).
  for (const Violation& violation : tracker.violations()) {
    ASSERT_FALSE(violation.provenance.empty());
    bool names_labeller = false;
    bool names_sink = false;
    for (const obs::TraceEvent& event : violation.provenance) {
      if (event.kind == obs::SpanKind::kDiftLabel && event.subject == "Frame") {
        names_labeller = true;
      }
      if (event.kind == obs::SpanKind::kViolation &&
          event.subject.find("writeFileSync") != std::string::npos) {
        names_sink = true;
      }
    }
    EXPECT_TRUE(names_labeller) << ExplainViolation(violation);
    EXPECT_TRUE(names_sink) << ExplainViolation(violation);
    // The rendered explanation is the user-facing artifact.
    std::string explained = ExplainViolation(violation);
    EXPECT_NE(explained.find("Frame"), std::string::npos) << explained;
    EXPECT_NE(explained.find("writeFileSync"), std::string::npos) << explained;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnforcementTest,
                         ::testing::Values(5u, 1979u, 31337u, 424242u, 8675309u));

// --- P3: print/parse round-trip of instrumented programs ----------------------

TEST(PipelineRoundTripTest, InstrumentedSourceRunsIdentically) {
  for (const char* name : {"camera-motion", "nlp.js", "geo-fence"}) {
    const CorpusApp* app = FindCorpusApp(name);
    ASSERT_NE(app, nullptr);
    auto program = ParseProgram(app->source, app->name + ".js");
    ASSERT_TRUE(program.ok());
    auto policy_result = Policy::FromJsonText(app->policy_json);
    ASSERT_TRUE(policy_result.ok());
    std::shared_ptr<Policy> policy(std::move(policy_result).value().release());
    auto analysis = AnalyzeProgram(*program);
    ASSERT_TRUE(analysis.ok());
    auto instrumented =
        InstrumentProgram(*program, *policy, InstrumentMode::kExhaustive, &*analysis);
    ASSERT_TRUE(instrumented.ok());

    // Reparse the printed instrumented source.
    std::string printed = PrintProgram(instrumented->program);
    auto reparsed = ParseProgram(printed, app->name + ".printed.js");
    ASSERT_TRUE(reparsed.ok()) << name << ": " << reparsed.status().ToString() << "\n"
                               << printed;

    // Both must be loadable and produce the same module registrations.
    for (const Program* variant : {&instrumented->program, &*reparsed}) {
      Interpreter interp;
      DiftTracker tracker(&interp, policy);
      tracker.Install();
      FlowEngine engine(&interp);
      ASSERT_TRUE(engine.LoadModule(*variant).ok()) << name;
      EXPECT_FALSE(engine.registered_types().empty()) << name;
    }
  }
}

// --- P4: reports --------------------------------------------------------------

TEST(ReportTest, EveryCorpusAppRendersAReport) {
  for (const CorpusApp& app : Corpus()) {
    auto program = ParseProgram(app.source, app.name + ".js");
    ASSERT_TRUE(program.ok());
    auto analysis = AnalyzeProgram(*program);
    ASSERT_TRUE(analysis.ok());
    std::string html = RenderHtmlReport(*program, app.source, *analysis);
    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_NE(html.find(app.name), std::string::npos);
    if (!analysis->paths.empty()) {
      EXPECT_NE(html.find("class=\"flow\""), std::string::npos) << app.name;
      EXPECT_NE(html.find("source"), std::string::npos) << app.name;
    }
    std::string text = RenderTextReport(*program, app.source, *analysis);
    EXPECT_NE(text.find(app.name), std::string::npos);
  }
}

TEST(ReportTest, HighlightsSourceAndSinkLines) {
  const char* source =
      "let net = require(\"net\");\n"
      "let s = net.connect(1, \"h\");\n"
      "s.on(\"data\", d => {\n"
      "  s.write(d);\n"
      "});\n";
  auto program = ParseProgram(source, "tiny.js");
  ASSERT_TRUE(program.ok());
  auto analysis = AnalyzeProgram(*program);
  ASSERT_TRUE(analysis.ok());
  ASSERT_EQ(analysis->paths.size(), 1u);
  std::string text = RenderTextReport(*program, source, *analysis);
  EXPECT_NE(text.find("S    3 |"), std::string::npos) << text;  // source line
  EXPECT_NE(text.find("!    4 |"), std::string::npos) << text;  // sink line
}

}  // namespace
}  // namespace turnstile
