// The Turnstile Dataflow Analyzer: source/sink detection, interprocedural and
// points-to propagation, framework knowledge, and the paper's documented
// blind spots.
#include "src/analysis/analyzer.h"

#include <gtest/gtest.h>

#include "src/lang/parser.h"

namespace turnstile {
namespace {

AnalysisResult Analyze(const std::string& source) {
  auto program = ParseProgram(source, "app.js");
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto result = AnalyzeProgram(*program);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : AnalysisResult{};
}

TEST(AnalyzerTest, DirectSocketFlow) {
  AnalysisResult r = Analyze(R"(
    let net = require("net");
    let socket = net.connect(554, "cam.local");
    socket.on("data", frame => {
      socket.write(frame);
    });
  )");
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_EQ(r.paths[0].source_description, "net socket data");
  EXPECT_EQ(r.paths[0].sink_description, "socket write");
}

TEST(AnalyzerTest, NoPathWhenDataDoesNotReachSink) {
  AnalysisResult r = Analyze(R"(
    let net = require("net");
    let socket = net.connect(554, "cam.local");
    socket.on("data", frame => {
      let size = 42;
      socket.write(size);
    });
  )");
  EXPECT_TRUE(r.paths.empty());
  EXPECT_EQ(r.stats.sources_found, 1);
  EXPECT_EQ(r.stats.sinks_found, 1);
}

TEST(AnalyzerTest, FlowThroughBinaryExpression) {
  AnalysisResult r = Analyze(R"(
    let net = require("net");
    let socket = net.connect(1, "h");
    socket.on("data", frame => {
      let message = "frame: " + frame;
      socket.write(message);
    });
  )");
  EXPECT_EQ(r.paths.size(), 1u);
}

TEST(AnalyzerTest, InterproceduralFlowThroughHelper) {
  AnalysisResult r = Analyze(R"(
    let fs = require("fs");
    let net = require("net");
    function describe(data) {
      return "content=" + data;
    }
    let socket = net.connect(2, "h");
    socket.on("data", chunk => {
      fs.writeFileSync("/log.txt", describe(chunk));
    });
  )");
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_EQ(r.paths[0].sink_description, "fs.writeFileSync");
}

TEST(AnalyzerTest, FlowThroughObjectProperty) {
  AnalysisResult r = Analyze(R"(
    let net = require("net");
    let socket = net.connect(3, "h");
    socket.on("data", frame => {
      let msg = { topic: "frames", payload: frame };
      socket.write(msg.payload);
    });
  )");
  EXPECT_EQ(r.paths.size(), 1u);
}

TEST(AnalyzerTest, DynamicDispatchIsResolvedByOverApproximation) {
  // foo[x](y): all functions reaching any property of foo are candidates
  // (§4.5 "sound over-approximation"). This is the pattern QueryDL misses.
  AnalysisResult r = Analyze(R"(
    let net = require("net");
    let socket = net.connect(4, "h");
    let handlers = {
      forward: data => { socket.write(data); },
      drop: data => {}
    };
    socket.on("data", frame => {
      let kind = frame.length > 3 ? "forward" : "drop";
      handlers[kind](frame);
    });
  )");
  ASSERT_EQ(r.paths.size(), 1u);
}

TEST(AnalyzerTest, FunctionValueThroughVariable) {
  AnalysisResult r = Analyze(R"(
    let net = require("net");
    let socket = net.connect(5, "h");
    function makeSender(target) {
      return data => { target.write(data); };
    }
    let send = makeSender(socket);
    socket.on("data", frame => { send(frame); });
  )");
  ASSERT_EQ(r.paths.size(), 1u) << "closure-returned function must be resolved";
}

TEST(AnalyzerTest, PromiseThenFlow) {
  AnalysisResult r = Analyze(R"(
    let deepstack = require("deepstack");
    let fs = require("fs");
    let net = require("net");
    let socket = net.connect(6, "h");
    socket.on("data", frame => {
      deepstack.faceRecognition(frame, "http://ds", 0.8).then(result => {
        fs.writeFileSync("/faces.json", result.predictions);
      });
    });
  )");
  // Two sources (socket data, recognition result) reach the same sink.
  EXPECT_GE(r.paths.size(), 1u);
  bool face_path = false;
  for (const DataflowPath& path : r.paths) {
    if (path.source_description == "face recognition result") {
      face_path = true;
    }
  }
  EXPECT_TRUE(face_path);
}

TEST(AnalyzerTest, NodeRedInputToSend) {
  AnalysisResult r = Analyze(R"(
    module.exports = function(RED) {
      function FilterNode(config) {
        RED.nodes.createNode(this, config);
        let node = this;
        node.on("input", msg => {
          msg.payload = msg.payload + "!";
          node.send(msg);
        });
      }
      RED.nodes.registerType("filter", FilterNode);
    };
  )");
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_EQ(r.paths[0].source_description, "Node-RED input message");
  EXPECT_EQ(r.paths[0].sink_description, "Node-RED send");
}

TEST(AnalyzerTest, MqttMessageToFs) {
  AnalysisResult r = Analyze(R"(
    let mqtt = require("mqtt");
    let fs = require("fs");
    let client = mqtt.connect("mqtt://broker");
    client.subscribe("sensors/#");
    client.on("message", (topic, payload) => {
      fs.appendFile("/sensors.log", payload, () => {});
    });
  )");
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_EQ(r.paths[0].source_description, "mqtt message");
}

TEST(AnalyzerTest, ReadFileSyncReturnIsASource) {
  AnalysisResult r = Analyze(R"(
    let fs = require("fs");
    let http = require("http");
    let config = fs.readFileSync("/secrets.json");
    let req = http.request({ host: "telemetry.example" });
    req.write(config);
    req.end();
  )");
  ASSERT_GE(r.paths.size(), 1u);
  EXPECT_EQ(r.paths[0].source_description, "fs.readFileSync content");
  EXPECT_EQ(r.paths[0].sink_description, "http request body");
}

TEST(AnalyzerTest, ExpressRequestToResponse) {
  AnalysisResult r = Analyze(R"(
    let express = require("express");
    let app = express();
    app.get("/profile", (req, res) => {
      res.send("hello " + req.query);
    });
    app.listen(3000);
  )");
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_EQ(r.paths[0].source_description, "express request");
  EXPECT_EQ(r.paths[0].sink_description, "express response");
}

TEST(AnalyzerTest, HttpServerRequestToSqlite) {
  AnalysisResult r = Analyze(R"js(
    let http = require("http");
    let sqlite = require("sqlite3");
    let db = new sqlite.Database("/data.db");
    http.createServer((req, res) => {
      db.run("INSERT INTO visits VALUES (?)", req, () => {});
      res.end("ok");
    }).listen(8080);
  )js");
  ASSERT_GE(r.paths.size(), 1u);
  bool sqlite_path = false;
  for (const DataflowPath& path : r.paths) {
    if (path.sink_description == "sqlite write") {
      sqlite_path = true;
    }
  }
  EXPECT_TRUE(sqlite_path);
}

TEST(AnalyzerTest, InheritedMethodIsTheDocumentedBlindSpot) {
  // Taint reaches the sink through a method inherited from a superclass.
  // Turnstile resolves only own methods (§6.1: CodeQL outperformed Turnstile
  // on reflective/prototype-chain code), so this path must NOT be found.
  AnalysisResult r = Analyze(R"(
    let net = require("net");
    let socket = net.connect(7, "h");
    class Base {
      deliver(data) { socket.write(data); }
    }
    class Forwarder extends Base {
      tag(data) { return data; }
    }
    let fwd = new Forwarder();
    socket.on("data", frame => {
      fwd.deliver(frame);
    });
  )");
  EXPECT_TRUE(r.paths.empty());
}

TEST(AnalyzerTest, OwnMethodIsResolved) {
  AnalysisResult r = Analyze(R"(
    let net = require("net");
    let socket = net.connect(8, "h");
    class Forwarder {
      deliver(data) { socket.write(data); }
    }
    let fwd = new Forwarder();
    socket.on("data", frame => {
      fwd.deliver(frame);
    });
  )");
  ASSERT_EQ(r.paths.size(), 1u);
}

TEST(AnalyzerTest, RedHttpNodeIsMissedByDesign) {
  // RED.httpNode is assigned dynamically by the Node-RED runtime; it cannot
  // be statically typed as an HTTP server, so flows through it are missed
  // (the 26-app miss bucket of §6.1).
  AnalysisResult r = Analyze(R"(
    module.exports = function(RED) {
      RED.httpNode.on("request", (req, res) => {
        res.end(req.body);
      });
    };
  )");
  EXPECT_TRUE(r.paths.empty());
  EXPECT_EQ(r.stats.sources_found, 0);
}

TEST(AnalyzerTest, MultipleDistinctPathsAreCounted) {
  AnalysisResult r = Analyze(R"(
    let net = require("net");
    let fs = require("fs");
    let mailer = require("nodemailer");
    let socket = net.connect(9, "h");
    let transport = mailer.createTransport({});
    socket.on("data", frame => {
      fs.writeFileSync("/frames.bin", frame);
      transport.sendMail({ to: "a@b.c", attachments: frame });
    });
  )");
  EXPECT_EQ(r.paths.size(), 2u);
}

TEST(AnalyzerTest, SensitiveNodeSetCoversThePath) {
  auto program = ParseProgram(R"(
    let net = require("net");
    let socket = net.connect(10, "h");
    socket.on("data", frame => {
      let enriched = frame + "!";
      socket.write(enriched);
    });
  )");
  ASSERT_TRUE(program.ok());
  auto result = AnalyzeProgram(*program);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->paths.size(), 1u);
  EXPECT_FALSE(result->sensitive_ast_nodes.empty());
  // The sink call and every via node belong to the sensitive set.
  for (int node : result->paths[0].via_ast_nodes) {
    EXPECT_TRUE(result->sensitive_ast_nodes.count(node)) << "missing node " << node;
  }
  // The sensitive set is a strict subset of the program (selectivity!).
  EXPECT_LT(result->sensitive_ast_nodes.size(),
            static_cast<size_t>(program->node_count));
}

TEST(AnalyzerTest, PathCarriesSourceLocations) {
  AnalysisResult r = Analyze(R"(
    let net = require("net");
    let socket = net.connect(11, "h");
    socket.on("data", frame => { socket.write(frame); });
  )");
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_GT(r.paths[0].source_loc.line, 0);
  EXPECT_GT(r.paths[0].sink_loc.line, 0);
}

TEST(AnalyzerTest, SpreadArgumentsFlowConservatively) {
  AnalysisResult r = Analyze(R"(
    let net = require("net");
    let socket = net.connect(12, "h");
    function fanout(a, b) { socket.write(b); }
    socket.on("data", frame => {
      let parts = [frame, frame];
      fanout(...parts);
    });
  )");
  EXPECT_EQ(r.paths.size(), 1u);
}

TEST(AnalyzerTest, ForOfPropagatesElementTaint) {
  AnalysisResult r = Analyze(R"(
    let net = require("net");
    let socket = net.connect(13, "h");
    socket.on("data", frame => {
      let queue = [frame];
      for (let item of queue) {
        socket.write(item);
      }
    });
  )");
  EXPECT_EQ(r.paths.size(), 1u);
}

TEST(AnalyzerTest, EmptyProgramHasNoFindings) {
  AnalysisResult r = Analyze("let x = 1 + 2;");
  EXPECT_TRUE(r.paths.empty());
  EXPECT_EQ(r.stats.sources_found, 0);
  EXPECT_EQ(r.stats.sinks_found, 0);
}

TEST(AnalyzerTest, Fig2aExampleIsDetected) {
  // The paper's running example (Fig. 2a): frame -> scene -> three sinks.
  AnalysisResult r = Analyze(R"(
    let net = require("net");
    let mailer = require("nodemailer");
    let fs = require("fs");
    let socket = net.connect(554, "rtsp.cam");
    let emailSender = mailer.createTransport({});
    function analyzeVideoFrame(f) { return { persons: [], raw: f }; }
    socket.on("data", frame => {
      const scene = analyzeVideoFrame(frame);
      for (let person of scene.persons) {
        person.description = person.action + " at " + scene.location;
      }
      emailSender.sendMail({ to: "admin@x", attachments: scene });
      fs.writeFileSync("/frames/latest.bin", scene);
    });
  )");
  EXPECT_EQ(r.paths.size(), 2u);  // socket data -> email, socket data -> fs
}

}  // namespace
}  // namespace turnstile
