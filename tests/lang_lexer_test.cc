#include "src/lang/lexer.h"

#include <gtest/gtest.h>

namespace turnstile {
namespace {

std::vector<Token> MustLex(std::string_view source) {
  auto result = Lex(source);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value_or({});
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto tokens = MustLex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].Is(TokenKind::kEndOfFile));
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto tokens = MustLex("let foo = bar;");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_TRUE(tokens[0].IsKeyword("let"));
  EXPECT_TRUE(tokens[1].Is(TokenKind::kIdentifier));
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_TRUE(tokens[2].IsPunct("="));
  EXPECT_EQ(tokens[3].text, "bar");
  EXPECT_TRUE(tokens[4].IsPunct(";"));
}

TEST(LexerTest, DollarAndUnderscoreIdentifiers) {
  auto tokens = MustLex("$map _priv $1");
  EXPECT_EQ(tokens[0].text, "$map");
  EXPECT_EQ(tokens[1].text, "_priv");
  EXPECT_EQ(tokens[2].text, "$1");
}

TEST(LexerTest, Numbers) {
  auto tokens = MustLex("42 3.25 0x1f 1e3 2e-2");
  EXPECT_DOUBLE_EQ(tokens[0].number, 42);
  EXPECT_DOUBLE_EQ(tokens[1].number, 3.25);
  EXPECT_DOUBLE_EQ(tokens[2].number, 31);
  EXPECT_DOUBLE_EQ(tokens[3].number, 1000);
  EXPECT_DOUBLE_EQ(tokens[4].number, 0.02);
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = MustLex(R"('a\'b' "c\nd" `tpl`)");
  EXPECT_EQ(tokens[0].text, "a'b");
  EXPECT_EQ(tokens[1].text, "c\nd");
  EXPECT_EQ(tokens[2].text, "tpl");
}

TEST(LexerTest, MultiCharPunctuatorsLongestMatch) {
  auto tokens = MustLex("a === b !== c => d ... e ?. f ?? g");
  EXPECT_TRUE(tokens[1].IsPunct("==="));
  EXPECT_TRUE(tokens[3].IsPunct("!=="));
  EXPECT_TRUE(tokens[5].IsPunct("=>"));
  EXPECT_TRUE(tokens[7].IsPunct("..."));
  EXPECT_TRUE(tokens[9].IsPunct("?."));
  EXPECT_TRUE(tokens[11].IsPunct("??"));
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = MustLex("a // line comment\n/* block\ncomment */ b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = MustLex("a\n  b");
  EXPECT_EQ(tokens[0].loc.line, 1);
  EXPECT_EQ(tokens[0].loc.column, 1);
  EXPECT_EQ(tokens[1].loc.line, 2);
  EXPECT_EQ(tokens[1].loc.column, 3);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("\"abc").ok());
}

TEST(LexerTest, UnterminatedBlockCommentFails) {
  EXPECT_FALSE(Lex("/* never closed").ok());
}

TEST(LexerTest, NewlineInPlainStringFails) {
  EXPECT_FALSE(Lex("\"a\nb\"").ok());
}

TEST(LexerTest, TemplateLiteralAllowsNewline) {
  auto tokens = MustLex("`a\nb`");
  EXPECT_EQ(tokens[0].text, "a\nb");
}

TEST(LexerTest, UnknownCharacterFails) {
  EXPECT_FALSE(Lex("a # b").ok());
}

}  // namespace
}  // namespace turnstile
