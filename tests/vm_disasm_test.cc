// DisassembleChunk rendering plus the fused-compiler selection contract:
// function bodies that mention `__dift` compile onto the labelled opcodes,
// clean ones alias the call-lowered chunk (one compile, pointer-equal cache
// entries), and the lowered oracle flavor never contains a labelled opcode.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/lang/ast.h"
#include "src/lang/parser.h"
#include "src/lang/resolve.h"
#include "src/vm/bytecode.h"
#include "src/vm/compiler.h"

namespace turnstile {
namespace {

constexpr const char* kSource = R"(
function sensitive(x) {
  let s = __dift.label(x, "secret");
  let ok = __dift.check(s, s);
  let t = __dift.binaryOp("+", s, "!");
  __dift.invoke(console, "log", [t, ok]);
  let out = { cache: 0 };
  out.cache = t;
  return out.cache;
}
function clean(a, b) {
  let pair = { left: a };
  pair.right = b;
  return pair.left + pair.right;
}
let result = sensitive("x") + clean(1, 2);
)";

// children[1] of a kFunctionDecl named `name`.
NodePtr FunctionBody(const NodePtr& root, const std::string& name) {
  for (const NodePtr& child : root->children) {
    if (child->kind == NodeKind::kFunctionDecl && child->str == name) {
      return child->children[1];
    }
  }
  return nullptr;
}

class VmDisasmTest : public testing::Test {
 protected:
  void SetUp() override {
    auto parsed = ParseProgram(kSource);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    program_ = std::move(parsed).value();
    ResolveProgram(program_);
  }

  Program program_;
};

TEST_F(VmDisasmTest, SensitiveFunctionCompilesOntoLabelledOpcodes) {
  NodePtr body = FunctionBody(program_.root, "sensitive");
  ASSERT_NE(body, nullptr);
  std::string fused = vm::DisassembleChunk(*vm::GetOrCompileFunctionBodyFused(body));

  EXPECT_NE(fused.find("DiftGuard"), std::string::npos) << fused;
  EXPECT_NE(fused.find("CheckSink"), std::string::npos) << fused;
  EXPECT_NE(fused.find("BinaryLabelled"), std::string::npos) << fused;
  EXPECT_NE(fused.find("CallLabelled"), std::string::npos) << fused;
  EXPECT_NE(fused.find("GetPropLabelled"), std::string::npos) << fused;
  EXPECT_NE(fused.find("SetPropLabelled"), std::string::npos) << fused;
  // `__dift.label` is not a recognized fused shape: it stays a call so the
  // tracker's labelling span/audit behavior is untouched.
  EXPECT_NE(fused.find("\"label\""), std::string::npos) << fused;
}

TEST_F(VmDisasmTest, LoweredOracleNeverUsesLabelledOpcodes) {
  NodePtr body = FunctionBody(program_.root, "sensitive");
  ASSERT_NE(body, nullptr);
  std::string lowered = vm::DisassembleChunk(*vm::GetOrCompileFunctionBody(body));

  EXPECT_EQ(lowered.find("Labelled"), std::string::npos) << lowered;
  EXPECT_EQ(lowered.find("CheckSink"), std::string::npos) << lowered;
  EXPECT_EQ(lowered.find("DiftGuard"), std::string::npos) << lowered;
}

TEST_F(VmDisasmTest, CleanChunksAliasTheLoweredCompile) {
  NodePtr body = FunctionBody(program_.root, "clean");
  ASSERT_NE(body, nullptr);
  vm::ChunkPtr lowered = vm::GetOrCompileFunctionBody(body);
  vm::ChunkPtr fused = vm::GetOrCompileFunctionBodyFused(body);
  EXPECT_EQ(fused.get(), lowered.get());

  std::string listing = vm::DisassembleChunk(*fused);
  EXPECT_EQ(listing.find("Labelled"), std::string::npos) << listing;

  // The top level never mentions __dift either (function bodies are separate
  // compilation units), so the program chunk aliases too.
  vm::ChunkPtr program_lowered = vm::GetOrCompileProgram(program_.root);
  vm::ChunkPtr program_fused = vm::GetOrCompileProgramFused(program_.root);
  EXPECT_EQ(program_fused.get(), program_lowered.get());
}

TEST_F(VmDisasmTest, ListingRendersOperandsAndLines) {
  NodePtr body = FunctionBody(program_.root, "sensitive");
  ASSERT_NE(body, nullptr);
  std::string fused = vm::DisassembleChunk(*vm::GetOrCompileFunctionBodyFused(body));

  EXPECT_NE(fused.find("; chunk:"), std::string::npos) << fused;
  EXPECT_NE(fused.find("; line "), std::string::npos) << fused;
  EXPECT_NE(fused.find("atom(cache)"), std::string::npos) << fused;
  EXPECT_NE(fused.find("r0"), std::string::npos) << fused;
  // Constant-pool rendering ("secret" is a string constant of the chunk).
  EXPECT_NE(fused.find("const \"secret\""), std::string::npos) << fused;
}

}  // namespace
}  // namespace turnstile
