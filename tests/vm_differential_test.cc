// Differential testing of the three execution tiers: every program runs under
// the DIFT-fused bytecode VM (the default), the call-lowered bytecode oracle,
// and the tree-walking oracle, and the observable outcomes — run/loop status,
// final values, simulated I/O records, DIFT violation reports, the canonical
// audit log — must be identical. The program corpus replays the sources of
// interp_eval_test and interp_semantics_test plus DIFT-heavy programs, so a
// semantic divergence introduced in any tier fails here with the offending
// program named.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/dift/tracker.h"
#include "src/interp/interp.h"
#include "src/lang/parser.h"
#include "src/obs/audit.h"

namespace turnstile {
namespace {

struct DiffProgram {
  const char* name;
  const char* source;
};

// Everything a MiniScript program can observably produce through the runtime.
struct TierOutcome {
  std::string run_status;    // "" when ok
  std::string loop_status;   // "" when ok
  std::string result;        // display string of the global `result`
  std::string io;            // rendered io_world records (sink writes)
  std::string violations;    // rendered DIFT violation reports
  std::string audit;         // canonical audit-ledger log (tracker runs)
  bool evals_counted = false;

  bool operator==(const TierOutcome& other) const {
    return run_status == other.run_status && loop_status == other.loop_status &&
           result == other.result && io == other.io && violations == other.violations &&
           audit == other.audit && evals_counted == other.evals_counted;
  }
};

std::ostream& operator<<(std::ostream& os, const TierOutcome& o) {
  return os << "run_status=\"" << o.run_status << "\" loop_status=\"" << o.loop_status
            << "\" result=\"" << o.result << "\" io=\"" << o.io << "\" violations=\""
            << o.violations << "\" audit=\"" << o.audit
            << "\" evals_counted=" << o.evals_counted;
}

// The basic policy from dift_tracker_test: value-dependent labellers plus
// rules that make secret->public flows (and invoke-labelled sinks) violate.
constexpr const char* kDiftPolicy = R"json({
  "labellers": {
    "employeeOrCustomer": {
      "$fn": "item => (item.employeeID ? \"employee\" : \"customer\")" },
    "secret": { "$const": "secret" },
    "public": { "$const": "public" },
    "mailerByRecipient": { "send": {
      "$invoke": "(obj, args) => (args[0] === \"boss\" ? \"secret\" : \"public\")" } },
    "anySink": { "$invoke": "(obj, args) => \"secret\"" }
  },
  "rules": ["employee -> customer", "public -> secret"]
})json";

TierOutcome RunTier(const std::string& source, ExecTier tier, bool with_tracker) {
  TierOutcome outcome;
  // Fresh ledger (and, via co-enable, fresh trace numbering) per tier run:
  // the canonical log — every monitor decision in order — must come out
  // byte-identical from both tiers.
  obs::AuditLedger& ledger = obs::AuditLedger::Global();
  ledger.Disable();
  ledger.Enable(1u << 16);
  Interpreter interp;
  interp.set_exec_tier(tier);

  std::shared_ptr<Policy> policy;
  std::unique_ptr<DiftTracker> tracker;
  if (with_tracker) {
    auto parsed = Policy::FromJsonText(kDiftPolicy);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    policy = std::shared_ptr<Policy>(std::move(parsed).value().release());
    tracker = std::make_unique<DiftTracker>(&interp, policy);
    tracker->Install();
  }

  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  if (!program.ok()) {
    return outcome;
  }
  Status run = interp.RunProgram(*program);
  outcome.run_status = run.ok() ? "" : run.ToString();
  Status loop = interp.RunEventLoop();
  outcome.loop_status = loop.ok() ? "" : loop.ToString();

  Value* slot = interp.global_env()->Lookup("result");
  outcome.result = slot != nullptr ? slot->ToDisplayString() : "<unset>";

  std::ostringstream io;
  for (const IoRecord& record : interp.io_world().records) {
    io << record.channel << "/" << record.op << "/" << record.detail << "/" << record.payload
       << "\n";
  }
  outcome.io = io.str();

  if (tracker != nullptr) {
    std::ostringstream violations;
    for (const Violation& v : tracker->violations()) {
      violations << v.sink << " " << v.data_labels << " -> " << v.receiver_labels << "\n";
    }
    outcome.violations = violations.str();
  }
  outcome.audit = ledger.CanonicalLog();
  ledger.Disable();
  outcome.evals_counted = interp.eval_count() > 0;
  return outcome;
}

void ExpectTiersAgree(const DiffProgram* programs, size_t count, bool with_tracker) {
  for (size_t i = 0; i < count; ++i) {
    SCOPED_TRACE(programs[i].name);
    TierOutcome fused = RunTier(programs[i].source, ExecTier::kBytecode, with_tracker);
    TierOutcome lowered =
        RunTier(programs[i].source, ExecTier::kBytecodeLowered, with_tracker);
    TierOutcome treewalk = RunTier(programs[i].source, ExecTier::kTreeWalk, with_tracker);
    EXPECT_EQ(fused, treewalk);
    EXPECT_EQ(lowered, treewalk);
  }
}

// --- interp_eval_test programs -----------------------------------------------

constexpr DiffProgram kEvalPrograms[] = {
    {"arith-precedence", "let result = 1 + 2 * 3;"},
    {"arith-paren", "let result = (1 + 2) * 3;"},
    {"arith-mod", "let result = 10 % 3;"},
    {"arith-pow", "let result = 2 ** 10;"},
    {"arith-div", "let result = 7 / 2;"},
    {"concat-str", "let result = \"a\" + \"b\" + 1;"},
    {"concat-num-first", "let result = 1 + 2 + \"x\";"},
    {"cmp-num", "let result = 1 < 2;"},
    {"cmp-str", "let result = \"a\" < \"b\";"},
    {"loose-eq", "let result = 1 == \"1\";"},
    {"strict-eq", "let result = 1 === \"1\";"},
    {"null-loose", "let result = null == undefined;"},
    {"null-strict", "let result = null === undefined;"},
    {"obj-identity", "let result = {} === {};"},
    {"obj-alias", "let a = {}; let b = a; let result = a === b;"},
    {"shortcircuit-and",
     "let hits = 0; function f() { hits = hits + 1; return true; } "
     "let x = false && f(); let result = hits;"},
    {"nullish-null", "let result = null ?? 5;"},
    {"nullish-zero", "let result = 0 ?? 5;"},
    {"or-zero", "let result = 0 || 5;"},
    {"ternary", "let result = 2 > 1 ? \"yes\" : \"no\";"},
    {"not-zero", "let result = !0;"},
    {"typeof-string", "let result = typeof \"s\";"},
    {"typeof-missing", "let result = typeof missing;"},
    {"postfix-value", "let i = 5; let result = i++;"},
    {"postfix-effect", "let i = 5; i++; let result = i;"},
    {"prefix-value", "let i = 5; let result = ++i;"},
    {"member-update", "let o = { n: 1 }; o.n++; let result = o.n;"},
    {"compound-assign", "let x = 2; x += 3; x *= 4; let result = x;"},
    {"compound-concat", "let s = \"a\"; s += \"b\"; let result = s;"},
    {"member-chain", "let o = { a: 1, b: { c: 2 } }; let result = o.a + o.b.c;"},
    {"member-set", "let o = {}; o.x = 9; let result = o.x;"},
    {"index-get", "let o = { k: 4 }; let key = \"k\"; let result = o[key];"},
    {"computed-key", "let k = \"dyn\"; let o = { [k]: \"v\" }; let result = o.dyn;"},
    {"shorthand-prop", "let a = 7; let o = { a }; let result = o.a;"},
    {"delete-prop", "let o = { a: 1 }; delete o.a; let result = typeof o.a;"},
    {"array-index", "let a = [1, 2, 3]; let result = a[0] + a[2];"},
    {"array-length", "let a = [1, 2, 3]; let result = a.length;"},
    {"array-grow", "let a = []; a[4] = 1; let result = a.length;"},
    {"array-spread", "let a = [1, ...[2, 3], 4]; let result = a.length;"},
    {"fn-decl", "function add(a, b) { return a + b; } let result = add(2, 3);"},
    {"arrow-curry",
     "let make = x => (y => x + y); let add2 = make(2); let result = add2(40);"},
    {"closure-counter",
     "function counter() { let n = 0; return () => { n = n + 1; return n; }; } "
     "let c = counter(); c(); c(); let result = c();"},
    {"rest-args",
     "function f(a, ...rest) { return rest.length; } let result = f(1, 2, 3, 4);"},
    {"spread-args",
     "function f(a, b, c) { return a + b + c; } let args = [1, 2, 3]; "
     "let result = f(...args);"},
    {"missing-args", "function f(a, b) { return typeof b; } let result = f(1);"},
    {"for-sum", "let s = 0; for (let i = 1; i <= 10; i++) { s += i; } let result = s;"},
    {"while-continue",
     "let s = 0; let i = 0; while (i < 5) { i++; if (i === 3) { continue; } s += i; } "
     "let result = s;"},
    {"for-break",
     "let s = 0; for (let i = 0; ; i++) { if (i === 4) { break; } s += i; } let result = s;"},
    {"for-of-sum", "let s = 0; for (let x of [10, 20, 30]) { s += x; } let result = s;"},
    {"for-of-string", "let n = 0; for (let c of \"abc\") { n++; } let result = n;"},
    {"block-scope", "let x = 1; { let x = 2; } let result = x;"},
    {"try-catch",
     "let result = \"none\"; try { throw \"boom\"; } catch (e) { result = e; }"},
    {"try-finally",
     "let result = \"\"; try { result += \"t\"; } catch (e) { result += \"c\"; } "
     "finally { result += \"f\"; }"},
    {"catch-across-call",
     "function risky() { throw { message: \"inner\" }; } let result = \"\"; "
     "try { risky(); } catch (e) { result = e.message; }"},
    {"uncaught-throw", "throw \"kaboom\";"},
    {"class-counter", R"(
      class Counter {
        constructor(start) { this.n = start; }
        bump() { this.n = this.n + 1; return this.n; }
      }
      let c = new Counter(10);
      c.bump();
      let result = c.bump();
    )"},
    {"class-inheritance", R"(
      class Device {
        describe() { return "device:" + this.id; }
      }
      class Camera extends Device {
        constructor(id) { this.id = id; }
      }
      let cam = new Camera("c1");
      let result = cam.describe();
    )"},
    {"method-override", R"(
      class A { who() { return "A"; } }
      class B extends A { who() { return "B"; } }
      let result = new B().who();
    )"},
    {"class-without-new", "class A {} A();"},
    {"this-in-arrow", R"(
      class Box {
        constructor() { this.v = 5; }
        total(items) {
          let sum = 0;
          items.forEach(x => { sum += x + this.v; });
          return sum;
        }
      }
      let result = new Box().total([1, 2]);
    )"},
    {"sequence-comma", "let result = (1, 2, 3);"},
    {"optional-nullish", "let o = null; let result = typeof o?.a;"},
    {"optional-chain", "let o = { a: { b: 3 } }; let result = o?.a?.b;"},
    {"in-present", "let result = \"a\" in { a: 1 };"},
    {"in-absent", "let result = \"b\" in { a: 1 };"},
    {"undeclared-ref", "let x = neverDeclared + 1;"},
    {"recursion-bound", "function f() { return f(); } f();"},
};

// --- interp_semantics_test programs ------------------------------------------

constexpr DiffProgram kSemanticsPrograms[] = {
    {"for-of-fresh-binding", R"(
      let fns = [];
      for (let i of [1, 2, 3]) {
        fns.push(() => i);
      }
      let result = fns.map(f => f()).join(",");
    )"},
    {"shared-capture", R"(
      function makePair() {
        let n = 0;
        return { inc: () => { n = n + 1; }, get: () => n };
      }
      let pair = makePair();
      pair.inc();
      pair.inc();
      let result = pair.get();
    )"},
    {"finally-overrides-return", R"(
      function f() {
        try {
          return "try";
        } finally {
          out.push("finally ran");
        }
      }
      out = [];
      let result = f() + "/" + out.length;
    )"},
    {"catch-rethrow", R"(
      let result = "";
      try {
        try {
          throw "inner";
        } catch (e) {
          throw e + "+rethrown";
        }
      } catch (e) {
        result = e;
      }
    )"},
    {"throw-across-calls", R"(
      function deep(n) {
        if (n === 0) {
          throw { code: 42 };
        }
        return deep(n - 1);
      }
      let result = 0;
      try {
        deep(5);
      } catch (e) {
        result = e.code;
      }
    )"},
    {"spread-into-rest", R"(
      function gather(first, ...rest) {
        return first + ":" + rest.join("");
      }
      let parts = [1, 2, 3, 4];
      let result = gather(...parts);
    )"},
    {"hoisted-function", R"(
      let result = later(20);
      function later(x) { return x * 2 + 2; }
    )"},
    {"nested-shadowing", R"(
      let x = "g";
      function outer() {
        let x = "o";
        function inner() {
          let x = "i";
          x = x + "!";
          return x;
        }
        return inner() + x;
      }
      let result = outer() + x;
    )"},
    {"catch-param-shadow", R"(
      let e = "outer";
      let seen = "";
      try {
        throw "thrown";
      } catch (e) {
        e = e + "+edited";
        seen = e;
      }
      let result = seen + "/" + e;
    )"},
    {"named-fn-expr-self", R"(
      let f = function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); };
      let g = f;
      f = null;
      let result = g(5);
    )"},
    {"for-of-outer-scope", R"(
      let item = "outer";
      let out = [];
      for (let item of [item + "1", item + "2"]) {
        out.push(item);
      }
      let result = out.join(",");
    )"},
    {"bind-restores-this", R"(
      class Box {
        constructor() { this.v = 7; }
        get2() { return this.v; }
      }
      let box = new Box();
      let bound = box.get2.bind(box);
      let result = bound();
    )"},
    {"promise-order", R"(
      let order = [];
      new Promise(res => { res(1); }).then(v => { order.push("p1:" + v); });
      new Promise(res => { res(2); }).then(v => { order.push("p2:" + v); });
      setTimeout(() => { order.push("timer"); }, 0);
      let result = order;
    )"},
    {"implicit-global", R"(
      function init() { counter = 10; }
      init();
      counter = counter + 1;
      let result = counter;
    )"},
    {"await-resolved", R"(
      async function get() { return 7; }
      async function main() { let v = await get(); hold = v + 1; }
      main();
      let result = typeof hold;
    )"},
    {"console-io", R"(
      console.log("plain", 1 + 1);
      for (let i of [1, 2]) { console.log("line" + i); }
      let result = "logged";
    )"},
    {"logical-assign", R"(
      let a = 0; a ||= 5;
      let b = 1; b &&= 7;
      let c = null; c ??= 9;
      let result = a + "/" + b + "/" + c;
    )"},
    {"update-in-loop-closure", R"(
      let total = 0;
      for (let i = 0; i < 3; i++) {
        let bump = () => { total += i; };
        bump();
      }
      let result = total;
    )"},
};

// --- DIFT programs (tracker installed, violations compared) ------------------

constexpr DiffProgram kDiftPrograms[] = {
    {"boxed-string-methods", R"(
      let s = __dift.label("Secret Data", "secret");
      let result = s.toLowerCase() + "/" + s.length + "/" + s.includes("Data");
    )"},
    {"boxed-in-arrays", R"(
      let x = __dift.label("b", "secret");
      let xs = ["a", x, "c"];
      let result = xs.join("-") + "/" + xs.indexOf(x);
    )"},
    {"boxed-number-branches", R"(
      let n = __dift.label(5, "secret");
      let result = (n > 3 ? "big" : "small") + "/" + (n === 5);
    )"},
    {"boxed-key-index", R"(
      let key = __dift.label("door", "secret");
      let state = { door: "locked" };
      let result = state[key];
    )"},
    {"json-unwraps-boxes", R"(
      let v = __dift.label("x", "secret");
      let result = JSON.stringify({ field: v });
    )"},
    {"check-allowed-flow", R"(
      let data = __dift.label({ id: 1 }, "public");
      let receiver = __dift.label({ sinkish: true }, "secret");
      let result = __dift.check(data, receiver);
    )"},
    {"check-forbidden-flow", R"(
      let data = __dift.label({ id: 1 }, "secret");
      let receiver = __dift.label({ sinkish: true }, "public");
      let result = __dift.check(data, receiver);
    )"},
    {"invoke-blocks-violation", R"(
      let sent = [];
      let mailer = { send: (to, body) => { sent.push(to); return "ok"; } };
      __dift.label(mailer, "mailerByRecipient");
      let frame = __dift.label("face-frame", "secret");
      __dift.invoke(mailer, "send", ["boss", frame]);
      __dift.invoke(mailer, "send", ["intern", frame]);
      let result = sent;
    )"},
    {"binary-op-compound-label", R"(
      let a = __dift.label("le", "secret");
      let b = __dift.label("ak", "public");
      let joined = __dift.binaryOp("+", a, b);
      let result = __dift.labelsOf(joined);
    )"},
    {"labels-flow-in-loops", R"(
      let acc = "";
      for (let part of [__dift.label("a", "secret"), "b"]) {
        acc = acc + part;
      }
      let result = acc + "/" + __dift.labelsOf(acc);
    )"},
    // $const declassification applied to a kBinaryLabelled result: the fused
    // opcode's output must be a first-class labelled value that later label()
    // calls can re-label, exactly as the call-lowered binaryOp's output is.
    {"declassify-through-binary", R"(
      let secret = __dift.label("s", "secret");
      let joined = __dift.binaryOp("+", secret, "-tail");
      let declassified = __dift.label(joined, "public");
      let result = __dift.labelsOf(declassified) + "/" + declassified;
    )"},
    // A wildcard (any-method) $invoke labeller must fire at kCallLabelled
    // sites: the {target, any} probe happens inside the fused tracker entry,
    // not in MiniScript glue. First write carries a public-labelled argument
    // into the secret-labelled sink (blocked); the second is clean.
    {"wildcard-invoke-labeller", R"(
      let written = [];
      let device = { write: (line) => { written.push(line); return written.length; } };
      __dift.label(device, "anySink");
      let note = __dift.label("note", "public");
      __dift.invoke(device, "write", [note]);
      __dift.invoke(device, "write", ["plain"]);
      let result = written.length;
    )"},
    // Deep-label memo invalidation: the first check memoizes msg's (empty)
    // deep label set; the labelled store `msg.body = secret` runs through
    // kSetPropLabelled, which must bump the heap write epoch so the second
    // check recomputes and sees the secret.
    {"memo-invalidation-on-labelled-store", R"(
      let secret = __dift.label("payload", "secret");
      let sink = __dift.label({ port: 1 }, "public");
      let msg = { body: "hello" };
      let before = __dift.check(msg, sink);
      msg.body = secret;
      let after = __dift.check(msg, sink);
      let result = "" + before + "/" + after;
    )"},
};

TEST(VmDifferentialTest, EvalProgramsAgreeAcrossTiers) {
  ExpectTiersAgree(kEvalPrograms, sizeof(kEvalPrograms) / sizeof(kEvalPrograms[0]),
                   /*with_tracker=*/false);
}

TEST(VmDifferentialTest, SemanticsProgramsAgreeAcrossTiers) {
  ExpectTiersAgree(kSemanticsPrograms,
                   sizeof(kSemanticsPrograms) / sizeof(kSemanticsPrograms[0]),
                   /*with_tracker=*/false);
}

TEST(VmDifferentialTest, DiftProgramsAgreeAcrossTiers) {
  ExpectTiersAgree(kDiftPrograms, sizeof(kDiftPrograms) / sizeof(kDiftPrograms[0]),
                   /*with_tracker=*/true);
}

// The same Program object (and therefore the same cached chunks) must be
// runnable by both tiers: compiled chunks capture resolver coordinates, not a
// particular Interpreter or tier.
TEST(VmDifferentialTest, SharedProgramRunsUnderBothTiers) {
  auto program = ParseProgram(
      "function twice(x) { return x * 2; } let result = twice(20) + 2;");
  ASSERT_TRUE(program.ok());
  for (ExecTier tier : {ExecTier::kBytecode, ExecTier::kBytecodeLowered, ExecTier::kTreeWalk,
                        ExecTier::kBytecode}) {
    Interpreter interp;
    interp.set_exec_tier(tier);
    ASSERT_TRUE(interp.RunProgram(*program).ok());
    EXPECT_EQ(interp.global_env()->Lookup("result")->ToDisplayString(), "42");
  }
}

}  // namespace
}  // namespace turnstile
