// The Code Instrumentor: rewriting correctness, selective-vs-exhaustive
// scoping, label injection, and end-to-end managed execution.
#include "src/instrument/instrumentor.h"

#include <gtest/gtest.h>

#include "src/baseline/querydl.h"
#include "src/dift/tracker.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"
#include "src/lang/resolve.h"

namespace turnstile {
namespace {

std::unique_ptr<Policy> MustPolicy(const std::string& text) {
  auto policy = Policy::FromJsonText(text);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  return policy.ok() ? std::move(policy).value() : nullptr;
}

constexpr const char* kEmptyPolicy = R"json({"labellers": {}, "rules": []})json";

InstrumentedProgram Instrument(const std::string& source, const std::string& policy_text,
                               InstrumentMode mode) {
  auto program = ParseProgram(source, "app.js");
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  auto policy = MustPolicy(policy_text);
  auto analysis = AnalyzeProgram(*program);
  EXPECT_TRUE(analysis.ok());
  auto instrumented = InstrumentProgram(*program, *policy, mode, &*analysis);
  EXPECT_TRUE(instrumented.ok()) << instrumented.status().ToString();
  return instrumented.ok() ? std::move(instrumented).value() : InstrumentedProgram{};
}

TEST(InstrumentorTest, OutputReparses) {
  InstrumentedProgram out = Instrument(R"(
    let net = require("net");
    let socket = net.connect(1, "h");
    socket.on("data", frame => {
      let msg = "got " + frame;
      socket.write(msg);
    });
  )", kEmptyPolicy, InstrumentMode::kExhaustive);
  std::string printed = PrintProgram(out.program);
  auto reparsed = ParseProgram(printed);
  ASSERT_TRUE(reparsed.ok()) << printed << "\n" << reparsed.status().ToString();
  EXPECT_NE(printed.find("__dift.invoke"), std::string::npos);
  EXPECT_NE(printed.find("__dift.binaryOp"), std::string::npos);
}

TEST(InstrumentorTest, ExhaustiveWrapsEverything) {
  const char* source = R"(
    let a = 1 + 2;
    let b = a * 3;
    let o = { send: x => x };
    o.send(b);
    let unrelated = "x" + "y";
  )";
  InstrumentedProgram exhaustive = Instrument(source, kEmptyPolicy,
                                              InstrumentMode::kExhaustive);
  EXPECT_EQ(exhaustive.stats.binary_ops_wrapped, 3);
  EXPECT_EQ(exhaustive.stats.invokes_wrapped, 1);
  EXPECT_GE(exhaustive.stats.tracks_injected, 1);
}

TEST(InstrumentorTest, SelectiveWrapsOnlySensitivePaths) {
  const char* source = R"(
    let net = require("net");
    let socket = net.connect(1, "h");
    socket.on("data", frame => {
      let msg = "got " + frame;
      socket.write(msg);
    });
    let unrelated = 1 + 2;
    let alsoUnrelated = { helper: x => x };
    alsoUnrelated.helper(unrelated);
  )";
  InstrumentedProgram selective = Instrument(source, kEmptyPolicy,
                                             InstrumentMode::kSelective);
  InstrumentedProgram exhaustive = Instrument(source, kEmptyPolicy,
                                              InstrumentMode::kExhaustive);
  // The sensitive path covers "got " + frame and socket.write; the unrelated
  // arithmetic and helper call must stay untouched in selective mode.
  EXPECT_EQ(selective.stats.binary_ops_wrapped, 1);
  EXPECT_LT(selective.stats.invokes_wrapped, exhaustive.stats.invokes_wrapped);
  EXPECT_LT(selective.stats.binary_ops_wrapped, exhaustive.stats.binary_ops_wrapped);
  EXPECT_EQ(selective.stats.tracks_injected, 0);  // tracking is exhaustive-only

  std::string printed = PrintProgram(selective.program);
  EXPECT_EQ(printed.find("__dift.binaryOp(\"+\", 1, 2)"), std::string::npos)
      << "unrelated arithmetic must not be instrumented:\n" << printed;
}

TEST(InstrumentorTest, ComparisonOperatorsAreNotWrapped) {
  InstrumentedProgram out = Instrument("let x = 1 < 2; let y = 1 === 1;", kEmptyPolicy,
                                       InstrumentMode::kExhaustive);
  EXPECT_EQ(out.stats.binary_ops_wrapped, 0);
}

TEST(InstrumentorTest, LabelInjectionOnDeclarator) {
  const char* policy = R"json({
    "labellers": { "Scene": { "$const": "secret" } },
    "rules": [],
    "injections": [{ "file": "app.js", "line": 3, "object": "scene", "labeller": "Scene" }]
  })json";
  InstrumentedProgram out = Instrument(R"(
    let x = 0;
    let scene = { persons: [] };
  )", policy, InstrumentMode::kSelective);
  EXPECT_EQ(out.stats.labels_injected, 1);
  std::string printed = PrintProgram(out.program);
  EXPECT_NE(printed.find("__dift.label({ persons: [] }, \"Scene\")"), std::string::npos)
      << printed;
}

TEST(InstrumentorTest, LabelInjectionOnParameter) {
  const char* policy = R"json({
    "labellers": { "Msg": { "$const": "secret" } },
    "rules": [],
    "injections": [{ "object": "msg", "labeller": "Msg" }]
  })json";
  InstrumentedProgram out = Instrument(R"(
    function handle(msg) {
      return msg;
    }
  )", policy, InstrumentMode::kSelective);
  EXPECT_EQ(out.stats.labels_injected, 1);
  std::string printed = PrintProgram(out.program);
  EXPECT_NE(printed.find("msg = __dift.label(msg, \"Msg\")"), std::string::npos) << printed;
}

TEST(InstrumentorTest, WrongFileInjectionDoesNotApply) {
  const char* policy = R"json({
    "labellers": { "L": { "$const": "secret" } },
    "rules": [],
    "injections": [{ "file": "other.js", "line": 2, "object": "x", "labeller": "L" }]
  })json";
  InstrumentedProgram out = Instrument("let x = 1;", policy, InstrumentMode::kSelective);
  EXPECT_EQ(out.stats.labels_injected, 0);
}

TEST(InstrumentorTest, DynamicIndexCallIsWrapped) {
  InstrumentedProgram out = Instrument(R"(
    let handlers = { go: x => x };
    let k = "go";
    handlers[k](1);
  )", kEmptyPolicy, InstrumentMode::kExhaustive);
  std::string printed = PrintProgram(out.program);
  EXPECT_NE(printed.find("__dift.invoke(handlers, k, [1])"), std::string::npos) << printed;
}

// --- end-to-end: instrument, run, enforce ------------------------------------

struct ManagedRun {
  std::unique_ptr<Interpreter> interp;
  std::shared_ptr<Policy> policy;
  std::unique_ptr<DiftTracker> tracker;
};

ManagedRun RunManaged(const std::string& source, const std::string& policy_text,
                      InstrumentMode mode) {
  ManagedRun run;
  auto program = ParseProgram(source, "app.js");
  EXPECT_TRUE(program.ok());
  run.policy = std::shared_ptr<Policy>(MustPolicy(policy_text).release());
  auto analysis = AnalyzeProgram(*program);
  EXPECT_TRUE(analysis.ok());
  auto instrumented = InstrumentProgram(*program, *run.policy, mode, &*analysis);
  EXPECT_TRUE(instrumented.ok()) << instrumented.status().ToString();

  run.interp = std::make_unique<Interpreter>();
  run.tracker = std::make_unique<DiftTracker>(run.interp.get(), run.policy);
  run.tracker->Install();
  Status status = run.interp->RunProgram(instrumented->program);
  EXPECT_TRUE(status.ok()) << status.ToString() << "\n"
                           << PrintProgram(instrumented->program);
  Status loop = run.interp->RunEventLoop();
  EXPECT_TRUE(loop.ok()) << loop.ToString();
  return run;
}

constexpr const char* kCameraPolicy = R"json({
  "labellers": {
    "Frame": { "$fn": "f => (f.includes(\"visitor\") ? \"visitor\" : \"employee\")" },
    "Store": { "$const": "employeeArchive" }
  },
  "rules": ["employee -> employeeArchive"]
})json";

constexpr const char* kCameraApp = R"(
  let net = require("net");
  let fs = require("fs");
  let socket = net.connect(554, "cam");
  let store = fs;
  store = __dift.label(store, "Store");
  socket.on("data", frame => {
    frame = __dift.label(frame, "Frame");
    store.writeFileSync("/archive.bin", frame);
  });
)";

TEST(InstrumentorTest, EndToEndEnforcementBlocksViolatingFlow) {
  // Employee frames may be archived; visitor frames may not.
  ManagedRun run = RunManaged(kCameraApp, kCameraPolicy, InstrumentMode::kSelective);
  auto& sockets = run.interp->io_world().emitters["net.socket"];
  ASSERT_EQ(sockets.size(), 1u);
  run.interp->EmitEvent(sockets[0], "data", {Value("employee-frame-1")});
  run.interp->EmitEvent(sockets[0], "data", {Value("visitor-frame-2")});
  ASSERT_TRUE(run.interp->RunEventLoop().ok());

  // Only the employee frame reached the archive.
  int archive_writes = 0;
  for (const IoRecord& record : run.interp->io_world().records) {
    if (record.channel == "fs") {
      ++archive_writes;
      EXPECT_EQ(record.payload, "employee-frame-1");
    }
  }
  EXPECT_EQ(archive_writes, 1);
  ASSERT_EQ(run.tracker->violations().size(), 1u);
  EXPECT_EQ(run.tracker->violations()[0].data_labels, "{visitor}");
}

TEST(InstrumentorTest, PrintedOutputReResolvesAndEnforcesIdentically) {
  // The invariant: instrumented output survives print → re-parse → re-resolve
  // and enforces the same policy decisions as the in-memory tree.
  auto program = ParseProgram(kCameraApp, "app.js");
  ASSERT_TRUE(program.ok());
  auto policy = std::shared_ptr<Policy>(MustPolicy(kCameraPolicy).release());
  auto analysis = AnalyzeProgram(*program);
  ASSERT_TRUE(analysis.ok());
  auto instrumented =
      InstrumentProgram(*program, *policy, InstrumentMode::kSelective, &*analysis);
  ASSERT_TRUE(instrumented.ok()) << instrumented.status().ToString();
  EXPECT_TRUE(IsResolved(instrumented->program));

  std::string printed = PrintProgram(instrumented->program);
  auto reparsed = ParseProgram(printed, "app.js");
  ASSERT_TRUE(reparsed.ok()) << printed << "\n" << reparsed.status().ToString();
  EXPECT_FALSE(IsResolved(*reparsed));  // the printer drops all annotations
  ResolveProgram(*reparsed);

  auto Drive = [&policy](const Program& prog) {
    std::vector<std::string> summary;
    Interpreter interp;
    DiftTracker tracker(&interp, policy);
    tracker.Install();
    EXPECT_TRUE(interp.RunProgram(prog).ok());
    EXPECT_TRUE(interp.RunEventLoop().ok());
    auto& sockets = interp.io_world().emitters["net.socket"];
    EXPECT_EQ(sockets.size(), 1u);
    interp.EmitEvent(sockets[0], "data", {Value("employee-frame-1")});
    interp.EmitEvent(sockets[0], "data", {Value("visitor-frame-2")});
    EXPECT_TRUE(interp.RunEventLoop().ok());
    for (const IoRecord& record : interp.io_world().records) {
      if (record.channel == "fs") {
        summary.push_back("write:" + record.payload);
      }
    }
    for (const Violation& violation : tracker.violations()) {
      summary.push_back("violation:" + violation.data_labels);
    }
    return summary;
  };

  std::vector<std::string> direct = Drive(instrumented->program);
  std::vector<std::string> round_tripped = Drive(*reparsed);
  EXPECT_EQ(direct, round_tripped);
  ASSERT_FALSE(direct.empty());
  EXPECT_EQ(direct.back(), "violation:{visitor}");
}

TEST(InstrumentorTest, UnmanagedAndManagedAgreeWhenPolicyAllows) {
  // Without violations the instrumented app must produce the same sink
  // payloads as the original.
  const char* app = R"(
    let net = require("net");
    let socket = net.connect(1, "h");
    socket.on("data", frame => {
      let enriched = "seen:" + frame;
      socket.write(enriched);
    });
  )";
  // Unmanaged run.
  Interpreter plain;
  auto program = ParseProgram(app, "app.js");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(plain.RunProgram(*program).ok());
  ASSERT_TRUE(plain.RunEventLoop().ok());
  auto& plain_sockets = plain.io_world().emitters["net.socket"];
  plain.EmitEvent(plain_sockets[0], "data", {Value("f1")});
  ASSERT_TRUE(plain.RunEventLoop().ok());

  // Managed (exhaustive — the most invasive mode).
  ManagedRun managed = RunManaged(app, kEmptyPolicy, InstrumentMode::kExhaustive);
  auto& managed_sockets = managed.interp->io_world().emitters["net.socket"];
  managed.interp->EmitEvent(managed_sockets[0], "data", {Value("f1")});
  ASSERT_TRUE(managed.interp->RunEventLoop().ok());

  auto PayloadsOf = [](Interpreter& interp) {
    std::vector<std::string> out;
    for (const IoRecord& record : interp.io_world().records) {
      if (record.channel == "net") {
        out.push_back(record.payload);
      }
    }
    return out;
  };
  EXPECT_EQ(PayloadsOf(plain), PayloadsOf(*managed.interp));
  EXPECT_TRUE(managed.tracker->violations().empty());
}

TEST(InstrumentorTest, ExhaustiveDoesMoreTrackerWorkThanSelective) {
  const char* app = R"(
    let net = require("net");
    let socket = net.connect(1, "h");
    let dictionary = { w1: "alpha", w2: "beta", w3: "gamma", w4: "delta" };
    let sizes = [1, 2, 3, 4, 5, 6, 7, 8];
    socket.on("data", frame => {
      let total = 0;
      for (let s of sizes) {
        total = total + s;
      }
      socket.write(frame);
    });
  )";
  ManagedRun selective = RunManaged(app, kEmptyPolicy, InstrumentMode::kSelective);
  ManagedRun exhaustive = RunManaged(app, kEmptyPolicy, InstrumentMode::kExhaustive);
  for (ManagedRun* run : {&selective, &exhaustive}) {
    auto& sockets = run->interp->io_world().emitters["net.socket"];
    run->interp->EmitEvent(sockets[0], "data", {Value("frame")});
    ASSERT_TRUE(run->interp->RunEventLoop().ok());
  }
  // Exhaustive tracking boxes the dictionary strings and array numbers;
  // selective does not touch them.
  EXPECT_GT(exhaustive.tracker->stats().boxes_created,
            selective.tracker->stats().boxes_created);
  EXPECT_GT(exhaustive.tracker->stats().binary_ops,
            selective.tracker->stats().binary_ops);
}

}  // namespace
}  // namespace turnstile
