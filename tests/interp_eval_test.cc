// Core evaluator semantics: expressions, control flow, functions, classes.
#include <gtest/gtest.h>

#include "src/interp/interp.h"
#include "src/lang/parser.h"

namespace turnstile {
namespace {

// Runs `source` and returns the value of the global variable `result`.
Value RunAndGet(const std::string& source, const std::string& var = "result") {
  Interpreter interp;
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  if (!program.ok()) {
    return Value::Undefined();
  }
  Status status = interp.RunProgram(*program);
  EXPECT_TRUE(status.ok()) << status.ToString();
  Status loop_status = interp.RunEventLoop();
  EXPECT_TRUE(loop_status.ok()) << loop_status.ToString();
  Value* slot = interp.global_env()->Lookup(var);
  return slot != nullptr ? *slot : Value::Undefined();
}

double RunNumber(const std::string& source) { return RunAndGet(source).ToNumber(); }
std::string RunString(const std::string& source) { return RunAndGet(source).ToDisplayString(); }

TEST(EvalTest, Arithmetic) {
  EXPECT_DOUBLE_EQ(RunNumber("let result = 1 + 2 * 3;"), 7);
  EXPECT_DOUBLE_EQ(RunNumber("let result = (1 + 2) * 3;"), 9);
  EXPECT_DOUBLE_EQ(RunNumber("let result = 10 % 3;"), 1);
  EXPECT_DOUBLE_EQ(RunNumber("let result = 2 ** 10;"), 1024);
  EXPECT_DOUBLE_EQ(RunNumber("let result = 7 / 2;"), 3.5);
}

TEST(EvalTest, StringConcatenation) {
  EXPECT_EQ(RunString("let result = \"a\" + \"b\" + 1;"), "ab1");
  EXPECT_EQ(RunString("let result = 1 + 2 + \"x\";"), "3x");
}

TEST(EvalTest, ComparisonAndEquality) {
  EXPECT_TRUE(RunAndGet("let result = 1 < 2;").AsBool());
  EXPECT_TRUE(RunAndGet("let result = \"a\" < \"b\";").AsBool());
  EXPECT_TRUE(RunAndGet("let result = 1 == \"1\";").AsBool());
  EXPECT_FALSE(RunAndGet("let result = 1 === \"1\";").AsBool());
  EXPECT_TRUE(RunAndGet("let result = null == undefined;").AsBool());
  EXPECT_FALSE(RunAndGet("let result = null === undefined;").AsBool());
}

TEST(EvalTest, ReferenceEqualityForObjects) {
  EXPECT_FALSE(RunAndGet("let result = {} === {};").AsBool());
  EXPECT_TRUE(RunAndGet("let a = {}; let b = a; let result = a === b;").AsBool());
}

TEST(EvalTest, LogicalShortCircuit) {
  EXPECT_DOUBLE_EQ(RunNumber("let hits = 0; function f() { hits = hits + 1; return true; } "
                             "let x = false && f(); let result = hits;"),
                   0);
  EXPECT_DOUBLE_EQ(RunNumber("let result = null ?? 5;"), 5);
  EXPECT_DOUBLE_EQ(RunNumber("let result = 0 ?? 5;"), 0);
  EXPECT_DOUBLE_EQ(RunNumber("let result = 0 || 5;"), 5);
}

TEST(EvalTest, TernaryAndUnary) {
  EXPECT_EQ(RunString("let result = 2 > 1 ? \"yes\" : \"no\";"), "yes");
  EXPECT_TRUE(RunAndGet("let result = !0;").AsBool());
  EXPECT_EQ(RunString("let result = typeof \"s\";"), "string");
  EXPECT_EQ(RunString("let result = typeof missing;"), "undefined");
}

TEST(EvalTest, UpdateExpressions) {
  EXPECT_DOUBLE_EQ(RunNumber("let i = 5; let result = i++;"), 5);
  EXPECT_DOUBLE_EQ(RunNumber("let i = 5; i++; let result = i;"), 6);
  EXPECT_DOUBLE_EQ(RunNumber("let i = 5; let result = ++i;"), 6);
  EXPECT_DOUBLE_EQ(RunNumber("let o = { n: 1 }; o.n++; let result = o.n;"), 2);
}

TEST(EvalTest, CompoundAssignment) {
  EXPECT_DOUBLE_EQ(RunNumber("let x = 2; x += 3; x *= 4; let result = x;"), 20);
  EXPECT_EQ(RunString("let s = \"a\"; s += \"b\"; let result = s;"), "ab");
}

TEST(EvalTest, ObjectsAndMembers) {
  EXPECT_DOUBLE_EQ(RunNumber("let o = { a: 1, b: { c: 2 } }; let result = o.a + o.b.c;"), 3);
  EXPECT_DOUBLE_EQ(RunNumber("let o = {}; o.x = 9; let result = o.x;"), 9);
  EXPECT_DOUBLE_EQ(RunNumber("let o = { k: 4 }; let key = \"k\"; let result = o[key];"), 4);
  EXPECT_EQ(RunString("let k = \"dyn\"; let o = { [k]: \"v\" }; let result = o.dyn;"), "v");
}

TEST(EvalTest, ShorthandProperties) {
  EXPECT_DOUBLE_EQ(RunNumber("let a = 7; let o = { a }; let result = o.a;"), 7);
}

TEST(EvalTest, DeleteProperty) {
  EXPECT_EQ(RunString("let o = { a: 1 }; delete o.a; let result = typeof o.a;"), "undefined");
}

TEST(EvalTest, Arrays) {
  EXPECT_DOUBLE_EQ(RunNumber("let a = [1, 2, 3]; let result = a[0] + a[2];"), 4);
  EXPECT_DOUBLE_EQ(RunNumber("let a = [1, 2, 3]; let result = a.length;"), 3);
  EXPECT_DOUBLE_EQ(RunNumber("let a = []; a[4] = 1; let result = a.length;"), 5);
  EXPECT_DOUBLE_EQ(RunNumber("let a = [1, ...[2, 3], 4]; let result = a.length;"), 4);
}

TEST(EvalTest, FunctionsAndClosures) {
  EXPECT_DOUBLE_EQ(RunNumber("function add(a, b) { return a + b; } let result = add(2, 3);"), 5);
  EXPECT_DOUBLE_EQ(RunNumber("let make = x => (y => x + y); let add2 = make(2); "
                             "let result = add2(40);"),
                   42);
  EXPECT_DOUBLE_EQ(
      RunNumber("function counter() { let n = 0; return () => { n = n + 1; return n; }; } "
                "let c = counter(); c(); c(); let result = c();"),
      3);
}

TEST(EvalTest, RestAndSpreadArguments) {
  EXPECT_DOUBLE_EQ(RunNumber("function f(a, ...rest) { return rest.length; } "
                             "let result = f(1, 2, 3, 4);"),
                   3);
  EXPECT_DOUBLE_EQ(RunNumber("function f(a, b, c) { return a + b + c; } "
                             "let args = [1, 2, 3]; let result = f(...args);"),
                   6);
}

TEST(EvalTest, DefaultUndefinedForMissingArgs) {
  EXPECT_EQ(RunString("function f(a, b) { return typeof b; } let result = f(1);"), "undefined");
}

TEST(EvalTest, ControlFlow) {
  EXPECT_DOUBLE_EQ(RunNumber("let s = 0; for (let i = 1; i <= 10; i++) { s += i; } "
                             "let result = s;"),
                   55);
  EXPECT_DOUBLE_EQ(RunNumber("let s = 0; let i = 0; while (i < 5) { i++; if (i === 3) { "
                             "continue; } s += i; } let result = s;"),
                   12);
  EXPECT_DOUBLE_EQ(RunNumber("let s = 0; for (let i = 0; ; i++) { if (i === 4) { break; } "
                             "s += i; } let result = s;"),
                   6);
  EXPECT_DOUBLE_EQ(RunNumber("let s = 0; for (let x of [10, 20, 30]) { s += x; } "
                             "let result = s;"),
                   60);
}

TEST(EvalTest, ForOfString) {
  EXPECT_DOUBLE_EQ(RunNumber("let n = 0; for (let c of \"abc\") { n++; } let result = n;"), 3);
}

TEST(EvalTest, BlockScoping) {
  EXPECT_DOUBLE_EQ(RunNumber("let x = 1; { let x = 2; } let result = x;"), 1);
}

TEST(EvalTest, TryCatchThrow) {
  EXPECT_EQ(RunString("let result = \"none\"; try { throw \"boom\"; } catch (e) { result = e; }"),
            "boom");
  EXPECT_EQ(RunString("let result = \"\"; try { result += \"t\"; } catch (e) { result += \"c\"; } "
                      "finally { result += \"f\"; }"),
            "tf");
  EXPECT_EQ(RunString("function risky() { throw { message: \"inner\" }; } let result = \"\"; "
                      "try { risky(); } catch (e) { result = e.message; }"),
            "inner");
}

TEST(EvalTest, UncaughtThrowIsAnError) {
  Interpreter interp;
  auto program = ParseProgram("throw \"kaboom\";");
  ASSERT_TRUE(program.ok());
  Status status = interp.RunProgram(*program);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("kaboom"), std::string::npos);
}

TEST(EvalTest, Classes) {
  EXPECT_DOUBLE_EQ(RunNumber(R"(
    class Counter {
      constructor(start) { this.n = start; }
      bump() { this.n = this.n + 1; return this.n; }
    }
    let c = new Counter(10);
    c.bump();
    let result = c.bump();
  )"),
                   12);
}

TEST(EvalTest, ClassInheritance) {
  EXPECT_EQ(RunString(R"(
    class Device {
      describe() { return "device:" + this.id; }
    }
    class Camera extends Device {
      constructor(id) { this.id = id; }
    }
    let cam = new Camera("c1");
    let result = cam.describe();
  )"),
            "device:c1");
}

TEST(EvalTest, MethodOverride) {
  EXPECT_EQ(RunString(R"(
    class A { who() { return "A"; } }
    class B extends A { who() { return "B"; } }
    let result = new B().who();
  )"),
            "B");
}

TEST(EvalTest, ClassWithoutNewFails) {
  Interpreter interp;
  auto program = ParseProgram("class A {} A();");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(interp.RunProgram(*program).ok());
}

TEST(EvalTest, ThisInMethodsAndArrows) {
  // Arrows capture `this` lexically from the enclosing method.
  EXPECT_DOUBLE_EQ(RunNumber(R"(
    class Box {
      constructor() { this.v = 5; }
      total(items) {
        let sum = 0;
        items.forEach(x => { sum += x + this.v; });
        return sum;
      }
    }
    let result = new Box().total([1, 2]);
  )"),
                   13);
}

TEST(EvalTest, SequenceAndComma) {
  EXPECT_DOUBLE_EQ(RunNumber("let result = (1, 2, 3);"), 3);
}

TEST(EvalTest, OptionalChainingShortCircuits) {
  EXPECT_EQ(RunString("let o = null; let result = typeof o?.a;"), "undefined");
  EXPECT_DOUBLE_EQ(RunNumber("let o = { a: { b: 3 } }; let result = o?.a?.b;"), 3);
}

TEST(EvalTest, InOperator) {
  EXPECT_TRUE(RunAndGet("let result = \"a\" in { a: 1 };").AsBool());
  EXPECT_FALSE(RunAndGet("let result = \"b\" in { a: 1 };").AsBool());
}

TEST(EvalTest, UndeclaredVariableIsAnError) {
  Interpreter interp;
  auto program = ParseProgram("let x = neverDeclared + 1;");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(interp.RunProgram(*program).ok());
}

TEST(EvalTest, RecursionDepthIsBounded) {
  Interpreter interp;
  auto program = ParseProgram("function f() { return f(); } f();");
  ASSERT_TRUE(program.ok());
  Status status = interp.RunProgram(*program);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("call depth"), std::string::npos);
}

TEST(EvalTest, EvalCountAdvances) {
  Interpreter interp;
  auto program = ParseProgram("let x = 1 + 2;");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(interp.RunProgram(*program).ok());
  EXPECT_GT(interp.eval_count(), 3u);
}

}  // namespace
}  // namespace turnstile
