// The flow-provenance audit ledger: ring/spill/drop semantics, stamping,
// canonical rendering, env configuration, metrics exposition (including
// Prometheus label-value escaping of app names), and the tracker/engine emit
// sites that feed it.
#include "src/obs/audit.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/dift/tracker.h"
#include "src/lang/parser.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"

namespace turnstile {
namespace obs {
namespace {

AuditEvent MakeEvent(AuditKind kind, const std::string& subject) {
  AuditEvent event;
  event.kind = kind;
  event.subject = subject;
  return event;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Every test drives the process-global ledger; start and finish disabled so
// tests compose in any order.
class AuditLedgerTest : public ::testing::Test {
 protected:
  void SetUp() override { AuditLedger::Global().Disable(); }
  void TearDown() override {
    AuditLedger::Global().set_app("");
    AuditLedger::Global().Disable();
  }
};

TEST_F(AuditLedgerTest, DisabledRecordIsANoOp) {
  AuditLedger& ledger = AuditLedger::Global();
  EXPECT_FALSE(ledger.enabled());
  ledger.Record(MakeEvent(AuditKind::kFlowCheck, "sink"));
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_EQ(ledger.recorded(), 0u);
}

TEST_F(AuditLedgerTest, RingKeepsNewestAndCountsDrops) {
  AuditLedger& ledger = AuditLedger::Global();
  ledger.Enable(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    ledger.Record(MakeEvent(AuditKind::kMerge, "op" + std::to_string(i)));
  }
  EXPECT_EQ(ledger.recorded(), 5u);
  EXPECT_EQ(ledger.dropped(), 2u);
  std::vector<AuditEvent> events = ledger.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].subject, "op2");
  EXPECT_EQ(events[2].subject, "op4");
  // Sequence numbers stamp in arrival order, 1-based.
  EXPECT_EQ(events[0].seq, 3u);
  EXPECT_EQ(events[2].seq, 5u);
}

TEST_F(AuditLedgerTest, ClearResetsSequenceButKeepsEnabled) {
  AuditLedger& ledger = AuditLedger::Global();
  ledger.Enable(8);
  ledger.Record(MakeEvent(AuditKind::kLabelAttach, "a"));
  ledger.Clear();
  EXPECT_TRUE(ledger.enabled());
  EXPECT_EQ(ledger.size(), 0u);
  ledger.Record(MakeEvent(AuditKind::kLabelAttach, "b"));
  EXPECT_EQ(ledger.Snapshot()[0].seq, 1u);
}

TEST_F(AuditLedgerTest, EnableCoEnablesRecorderAndDisableRestores) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Disable();
  AuditLedger& ledger = AuditLedger::Global();
  ledger.Enable();
  EXPECT_TRUE(recorder.enabled());
  ledger.Disable();
  EXPECT_FALSE(recorder.enabled());
}

TEST_F(AuditLedgerTest, RecordStampsAppAndTrace) {
  AuditLedger& ledger = AuditLedger::Global();
  ledger.Enable(8);
  ledger.set_app("camera-motion");
  ledger.Record(MakeEvent(AuditKind::kSinkWrite, "node1"));
  std::vector<AuditEvent> events = ledger.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].app, "camera-motion");
  // No trace was begun, so the stamp is the recorder's idle state.
  EXPECT_EQ(events[0].trace_id, TraceRecorder::Global().current_trace());
}

TEST_F(AuditLedgerTest, CanonicalRendersVerdictRuleAndStamps) {
  AuditLedger& ledger = AuditLedger::Global();
  ledger.Enable(8);
  ledger.set_app("app-x");
  AuditEvent deny = MakeEvent(AuditKind::kFlowCheck, "svc.send");
  deny.allowed = false;
  deny.data = 2;
  deny.receiver = 1;
  deny.labels = "{secret} vs {public}";
  deny.rule = "no rule allows 'secret'";
  ledger.Record(std::move(deny));
  std::string log = ledger.CanonicalLog();
  EXPECT_NE(log.find("flow_check[svc.send]"), std::string::npos) << log;
  EXPECT_NE(log.find("data=2 recv=1"), std::string::npos) << log;
  EXPECT_NE(log.find(" deny "), std::string::npos) << log;
  EXPECT_NE(log.find("rule='no rule allows 'secret''"), std::string::npos) << log;
  EXPECT_NE(log.find("app=app-x"), std::string::npos) << log;
}

TEST_F(AuditLedgerTest, SpillWritesEvictedAndFlushedEventsInOrder) {
  std::string path = ::testing::TempDir() + "/audit_spill.jsonl";
  std::remove(path.c_str());
  AuditLedger& ledger = AuditLedger::Global();
  ledger.Enable(/*capacity=*/2);
  ASSERT_TRUE(ledger.SetSpillPath(path));
  for (int i = 0; i < 5; ++i) {
    ledger.Record(MakeEvent(AuditKind::kMerge, "op" + std::to_string(i)));
  }
  // Three events were evicted into the file; two sit in the ring.
  EXPECT_EQ(ledger.spilled(), 3u);
  EXPECT_EQ(ledger.dropped(), 0u);
  ledger.FlushSpill();
  EXPECT_EQ(ledger.spilled(), 5u);
  ledger.Disable();  // closes the file
  std::string content = ReadWholeFile(path);
  std::vector<size_t> positions;
  for (int i = 0; i < 5; ++i) {
    size_t pos = content.find("\"subject\":\"op" + std::to_string(i) + "\"");
    ASSERT_NE(pos, std::string::npos) << content;
    positions.push_back(pos);
  }
  for (size_t i = 1; i < positions.size(); ++i) {
    EXPECT_LT(positions[i - 1], positions[i]);  // oldest first
  }
  std::remove(path.c_str());
}

TEST_F(AuditLedgerTest, CountersTrackKindsVerdictsAndDrops) {
  Metrics& metrics = Metrics::Global();
  Counter* flow_counter =
      metrics.GetCounter(MetricWithLabel("audit.events_total", "kind", "flow_check"));
  Counter* allowed_counter = metrics.GetCounter("audit.flows_allowed");
  Counter* denied_counter = metrics.GetCounter("audit.flows_denied");
  Counter* dropped_counter = metrics.GetCounter("audit.dropped_events");
  uint64_t flow0 = flow_counter->value();
  uint64_t allowed0 = allowed_counter->value();
  uint64_t denied0 = denied_counter->value();
  uint64_t dropped0 = dropped_counter->value();

  AuditLedger& ledger = AuditLedger::Global();
  ledger.Enable(/*capacity=*/1);
  AuditEvent allow = MakeEvent(AuditKind::kFlowCheck, "a");
  allow.allowed = true;
  ledger.Record(std::move(allow));
  AuditEvent deny = MakeEvent(AuditKind::kFlowCheck, "b");
  deny.allowed = false;
  ledger.Record(std::move(deny));  // evicts the first event -> one drop

  EXPECT_EQ(flow_counter->value(), flow0 + 2);
  EXPECT_EQ(allowed_counter->value(), allowed0 + 1);
  EXPECT_EQ(denied_counter->value(), denied0 + 1);
  EXPECT_EQ(dropped_counter->value(), dropped0 + 1);
}

TEST_F(AuditLedgerTest, PrometheusExpositionEscapesAppLabelValues) {
  // App names are operator-controlled strings: quotes and backslashes must
  // round-trip through the exposition escaping, not corrupt it.
  AuditLedger& ledger = AuditLedger::Global();
  ledger.Enable(8);
  ledger.set_app("weird\"app\\name");
  ledger.Record(MakeEvent(AuditKind::kSinkWrite, "n"));
  std::string text = Metrics::Global().ToPrometheusText();
  EXPECT_NE(text.find("audit_app_events{app=\"weird\\\"app\\\\name\"}"), std::string::npos)
      << text;
  // The kind-labelled family is exposed too.
  EXPECT_NE(text.find("audit_events_total{kind=\"sink_write\"}"), std::string::npos);
}

TEST_F(AuditLedgerTest, EnvVarEnablesLedgerWithCapacityOrSpillPath) {
  AuditLedger& ledger = AuditLedger::Global();
  // Numeric value: ring capacity.
  ::setenv("TURNSTILE_AUDIT", "64", 1);
  ReapplyEnvObsConfigForTest();
  EXPECT_TRUE(ledger.enabled());
  EXPECT_EQ(ledger.capacity(), 64u);
  EXPECT_FALSE(ledger.has_spill());
  ledger.Disable();
  // Non-numeric value: spill path at default capacity.
  std::string path = ::testing::TempDir() + "/audit_env.jsonl";
  ::setenv("TURNSTILE_AUDIT", path.c_str(), 1);
  ReapplyEnvObsConfigForTest();
  EXPECT_TRUE(ledger.enabled());
  EXPECT_EQ(ledger.capacity(), AuditLedger::kDefaultCapacity);
  EXPECT_TRUE(ledger.has_spill());
  ledger.Disable();
  std::remove(path.c_str());
  // "0" / unset leave it off.
  ::setenv("TURNSTILE_AUDIT", "0", 1);
  ReapplyEnvObsConfigForTest();
  EXPECT_FALSE(ledger.enabled());
  ::unsetenv("TURNSTILE_AUDIT");
}

// --- tracker integration: every kind is emitted by the real monitor ----------

constexpr const char* kPolicy = R"json({
  "labellers": {
    "secret": { "$const": "secret" },
    "public": { "$const": "public" },
    "mailerByRecipient": { "send": {
      "$invoke": "(obj, args) => (args[0] === \"boss\" ? \"secret\" : \"public\")" } }
  },
  "rules": ["public -> secret"]
})json";

class AuditEmitTest : public AuditLedgerTest {
 protected:
  void SetUp() override {
    AuditLedgerTest::SetUp();
    AuditLedger::Global().Enable(1u << 12);
    auto policy = Policy::FromJsonText(kPolicy);
    ASSERT_TRUE(policy.ok()) << policy.status().ToString();
    policy_ = std::shared_ptr<Policy>(std::move(policy).value().release());
    DiftTracker::Options options;
    options.mode = DiftTracker::Options::Mode::kReport;
    tracker_ = std::make_unique<DiftTracker>(&interp_, policy_, options);
    tracker_->Install();
  }

  void RunSource(const std::string& source) {
    auto program = ParseProgram(source);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    Status status = interp_.RunProgram(*program);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_TRUE(interp_.RunEventLoop().ok());
  }

  Value Lookup(const std::string& name) {
    Value* slot = interp_.global_env()->Lookup(name);
    return slot != nullptr ? *slot : Value::Undefined();
  }

  // Events of `kind` currently buffered.
  std::vector<AuditEvent> EventsOfKind(AuditKind kind) {
    std::vector<AuditEvent> out;
    for (AuditEvent& event : AuditLedger::Global().Snapshot()) {
      if (event.kind == kind) {
        out.push_back(std::move(event));
      }
    }
    return out;
  }

  Interpreter interp_;
  std::shared_ptr<Policy> policy_;
  std::unique_ptr<DiftTracker> tracker_;
};

TEST_F(AuditEmitTest, LabelAttachAndMergeAreLedgered) {
  RunSource(R"(
    let a = __dift.label("alpha", "secret");
    let b = __dift.binaryOp("+", a, "!");
  )");
  std::vector<AuditEvent> attaches = EventsOfKind(AuditKind::kLabelAttach);
  ASSERT_EQ(attaches.size(), 1u);
  EXPECT_EQ(attaches[0].subject, "secret");
  EXPECT_EQ(attaches[0].labels, "{secret}");
  EXPECT_NE(attaches[0].out, kEmptyLabelSetRef);
  std::vector<AuditEvent> merges = EventsOfKind(AuditKind::kMerge);
  ASSERT_EQ(merges.size(), 1u);
  EXPECT_EQ(merges[0].subject, "+");
  EXPECT_EQ(merges[0].labels, "{secret}");
}

TEST_F(AuditEmitTest, DeclassifyIsAConstRelabelOfLabelledData) {
  RunSource(R"(
    let data = __dift.label({ v: "x" }, "secret");
    __dift.label(data, "public");
  )");
  std::vector<AuditEvent> declassifies = EventsOfKind(AuditKind::kDeclassify);
  ASSERT_EQ(declassifies.size(), 1u);
  EXPECT_EQ(declassifies[0].subject, "public");
  // The prior label set rides in `data` so the ledger shows what was
  // declassified from.
  EXPECT_NE(declassifies[0].data, kEmptyLabelSetRef);
}

TEST_F(AuditEmitTest, FlowChecksCarryVerdictAndRule) {
  RunSource(R"(
    let pub = __dift.label({ ch: "board" }, "public");
    let sec = __dift.label({ ch: "vault" }, "secret");
    let ok = __dift.check(__dift.label("p", "public"), sec);
    let bad = __dift.check(__dift.label("s", "secret"), pub);
  )");
  EXPECT_TRUE(Lookup("ok").AsBool());
  EXPECT_FALSE(Lookup("bad").AsBool());
  std::vector<AuditEvent> checks = EventsOfKind(AuditKind::kFlowCheck);
  ASSERT_EQ(checks.size(), 2u);
  EXPECT_TRUE(checks[0].allowed);
  EXPECT_EQ(checks[0].rule, "public -> secret");
  EXPECT_FALSE(checks[1].allowed);
  EXPECT_EQ(checks[1].rule, "no rule allows 'secret'");
  EXPECT_EQ(checks[1].labels, "{secret} vs {public}");
  // Denied flow checks agree with the tracker's violation record.
  EXPECT_EQ(tracker_->violations().size(), 1u);
}

TEST_F(AuditEmitTest, InvokeLabellerFireAndSinkWriteAreLedgered) {
  RunSource(R"(
    let fs = require("fs");
    let mailer = { send: (to, body) => "ok" };
    __dift.label(mailer, "mailerByRecipient");
    let frame = __dift.label("face-frame", "secret");
    __dift.invoke(mailer, "send", ["boss", frame]);
    __dift.invoke(fs, "writeFileSync", ["/out.bin", frame]);
  )");
  std::vector<AuditEvent> fires = EventsOfKind(AuditKind::kInvokeLabeller);
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0].subject, "mailerByRecipient@send");
  EXPECT_EQ(fires[0].labels, "{secret}");
  std::vector<AuditEvent> sinks = EventsOfKind(AuditKind::kSinkWrite);
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(sinks[0].subject, "writeFileSync");
  EXPECT_EQ(sinks[0].labels, "{secret}");
}

}  // namespace
}  // namespace obs
}  // namespace turnstile
