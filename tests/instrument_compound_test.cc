// Compound assignments must not launder labels: `acc += tainted` is an
// implicit binary operation, so the instrumentor desugars it to
// `acc = __dift.binaryOp("+", acc, tainted)` along sensitive paths.
#include <gtest/gtest.h>

#include "src/analysis/analyzer.h"
#include "src/dift/tracker.h"
#include "src/instrument/instrumentor.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"

namespace turnstile {
namespace {

constexpr const char* kPolicy = R"json({
  "labellers": {
    "Frame": { "$fn": "f => (f.includes(\"secret\") ? \"secret\" : null)" },
    "PublicSink": { "$const": "public" }
  },
  "rules": ["public -> secret"]
})json";

TEST(CompoundAssignTest, DesugaredToBinaryOp) {
  auto program = ParseProgram(R"(
    let net = require("net");
    let socket = net.connect(1, "h");
    socket.on("data", frame => {
      let acc = "log:";
      acc += frame;
      socket.write(acc);
    });
  )", "app.js");
  ASSERT_TRUE(program.ok());
  auto policy = Policy::FromJsonText(kPolicy);
  ASSERT_TRUE(policy.ok());
  auto analysis = AnalyzeProgram(*program);
  ASSERT_TRUE(analysis.ok());
  auto instrumented =
      InstrumentProgram(*program, **policy, InstrumentMode::kSelective, &*analysis);
  ASSERT_TRUE(instrumented.ok());
  std::string printed = PrintProgram(instrumented->program);
  EXPECT_NE(printed.find("acc = __dift.binaryOp(\"+\", acc, frame)"), std::string::npos)
      << printed;
}

TEST(CompoundAssignTest, LabelsSurviveCompoundAccumulation) {
  auto program = ParseProgram(R"(
    let net = require("net");
    let socket = net.connect(1, "h");
    socket.on("data", frame => {
      frame = __dift.label(frame, "Frame");
      let report = "report:";
      report += frame;
      report += "!";
      leakedLabels = __dift.labelsOf(report);
      socket.write(report);
    });
  )", "app.js");
  ASSERT_TRUE(program.ok());
  auto policy_result = Policy::FromJsonText(kPolicy);
  ASSERT_TRUE(policy_result.ok());
  std::shared_ptr<Policy> policy(std::move(policy_result).value().release());
  auto analysis = AnalyzeProgram(*program);
  ASSERT_TRUE(analysis.ok());
  auto instrumented =
      InstrumentProgram(*program, *policy, InstrumentMode::kSelective, &*analysis);
  ASSERT_TRUE(instrumented.ok());

  Interpreter interp;
  DiftTracker tracker(&interp, policy);
  tracker.Install();
  ASSERT_TRUE(interp.RunProgram(instrumented->program).ok());
  ASSERT_TRUE(interp.RunEventLoop().ok());
  auto& sockets = interp.io_world().emitters["net.socket"];
  interp.EmitEvent(sockets[0], "data", {Value("secret:payload")});
  ASSERT_TRUE(interp.RunEventLoop().ok());

  Value* labels = interp.global_env()->Lookup("leakedLabels");
  ASSERT_NE(labels, nullptr);
  EXPECT_EQ(labels->ToDisplayString(), "[secret]")
      << "the secret label must ride through both += operations";
}

TEST(CompoundAssignTest, ArithmeticCompoundFormsDesugar) {
  auto program = ParseProgram(R"(
    let net = require("net");
    let socket = net.connect(1, "h");
    socket.on("data", frame => {
      let total = 1;
      total *= frame.length;
      total -= 2;
      socket.write(total);
    });
  )", "app.js");
  ASSERT_TRUE(program.ok());
  auto policy = Policy::FromJsonText(kPolicy);
  auto analysis = AnalyzeProgram(*program);
  ASSERT_TRUE(analysis.ok());
  auto instrumented =
      InstrumentProgram(*program, **policy, InstrumentMode::kSelective, &*analysis);
  ASSERT_TRUE(instrumented.ok());
  std::string printed = PrintProgram(instrumented->program);
  EXPECT_NE(printed.find("__dift.binaryOp(\"*\", total"), std::string::npos) << printed;
  EXPECT_NE(printed.find("__dift.binaryOp(\"-\", total"), std::string::npos) << printed;
}

TEST(CompoundAssignTest, LogicalCompoundFormsAreLeftAlone) {
  // &&= / ||= / ??= are control-flow selections, not value derivations.
  auto program = ParseProgram(R"(
    let net = require("net");
    let socket = net.connect(1, "h");
    socket.on("data", frame => {
      let v = frame;
      v ??= "fallback";
      socket.write(v);
    });
  )", "app.js");
  ASSERT_TRUE(program.ok());
  auto policy = Policy::FromJsonText(kPolicy);
  auto analysis = AnalyzeProgram(*program);
  ASSERT_TRUE(analysis.ok());
  auto instrumented =
      InstrumentProgram(*program, **policy, InstrumentMode::kExhaustive, &*analysis);
  ASSERT_TRUE(instrumented.ok());
  std::string printed = PrintProgram(instrumented->program);
  EXPECT_NE(printed.find("v ?\?= \"fallback\""), std::string::npos) << printed;
}

TEST(CompoundAssignTest, MemberTargetsDesugarToo) {
  auto program = ParseProgram(R"(
    let net = require("net");
    let socket = net.connect(1, "h");
    socket.on("data", frame => {
      let stats = { log: "" };
      stats.log += frame;
      socket.write(stats.log);
    });
  )", "app.js");
  ASSERT_TRUE(program.ok());
  auto policy = Policy::FromJsonText(kPolicy);
  auto analysis = AnalyzeProgram(*program);
  ASSERT_TRUE(analysis.ok());
  auto instrumented =
      InstrumentProgram(*program, **policy, InstrumentMode::kSelective, &*analysis);
  ASSERT_TRUE(instrumented.ok());
  std::string printed = PrintProgram(instrumented->program);
  EXPECT_NE(printed.find("stats.log = __dift.binaryOp(\"+\", stats.log, frame)"),
            std::string::npos)
      << printed;
}

}  // namespace
}  // namespace turnstile
