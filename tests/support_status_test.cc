#include "src/support/status.h"

#include <gtest/gtest.h>

namespace turnstile {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(PolicyError("x").code(), StatusCode::kPolicyError);
  EXPECT_EQ(RuntimeError("x").code(), StatusCode::kRuntimeError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  TURNSTILE_ASSIGN_OR_RETURN(h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagatesErrors) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> err = Quarter(6);  // 6/2 = 3 is odd
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace turnstile
