// The paper's §3 motivating example: the Smart Access Control System (SACS).
//
// A FaceRecognizer component (Fig. 2a) receives camera frames, recognizes
// people, and forwards data to a device controller, an email sender and a
// storage service. The IFC policy (Fig. 4) assigns value-dependent labels:
// "employee" frames may flow everywhere, "customer" frames must not reach
// the internal storage-bound email path below their level.
//
// This example runs the ORIGINAL code and the Turnstile-managed code side by
// side, demonstrating non-invasiveness (same source, same runtime) and
// dynamic enforcement (per-frame decisions).
#include <cstdio>

#include "src/analysis/analyzer.h"
#include "src/dift/tracker.h"
#include "src/instrument/instrumentor.h"
#include "src/lang/parser.h"

using namespace turnstile;

// Fig. 2a, completed into a runnable component. analyzeVideoFrame stands in
// for the on-premises face recognition model.
constexpr const char* kFaceRecognizer = R"(
  let net = require("net");
  let mailer = require("nodemailer");
  let fs = require("fs");

  let socket = net.connect(554, "rtsp.camera.local");
  let emailSender = mailer.createTransport({ service: "smtp" });
  let deviceControl = { send: person => { doorLog.push("unlock for " + person.employeeID); } };
  let storage = { send: scene => { fs.writeFileSync("/records/" + scene.seq, scene.location); } };
  doorLog = [];

  function analyzeVideoFrame(frame) {
    let persons = [];
    if (frame.includes("employee")) {
      persons.push({ employeeID: 7, action: "enters" });
    }
    if (frame.includes("customer")) {
      persons.push({ action: "waits" });
    }
    return { persons: persons, location: "front door", seq: frame.length };
  }

  socket.on("data", frame => {
    const scene = analyzeVideoFrame(frame);
    for (let person of scene.persons) {
      person.description = person.action + " at " + scene.location;
      if (person.employeeID) {
        deviceControl.send(person);
      }
    }
    emailSender.sendMail({ to: "admin@site", attachments: scene });
    storage.send(scene);
  });
)";

// Fig. 4's policy, extended with sink labels: storage accepts employee data
// only; email goes to internal staff (accepts everything).
constexpr const char* kPolicy = R"json({
  "labellers": {
    "Scene": { "persons": { "$map": {
      "$fn": "item => (item.employeeID ? \"employee\" : \"customer\")" } } },
    "EmployeeArchive": { "$const": "employeeArchive" },
    "InternalMail": { "$const": "internal" }
  },
  "rules": ["employee -> customer", "customer -> internal",
            "employee -> internal", "employee -> employeeArchive"],
  "injections": [
    { "object": "scene", "labeller": "Scene" },
    { "object": "storage", "labeller": "EmployeeArchive" },
    { "object": "emailSender", "labeller": "InternalMail" }
  ]
})json";

int RunVersion(bool managed) {
  auto program = ParseProgram(kFaceRecognizer, "face-recognizer.js");
  auto policy_result = Policy::FromJsonText(kPolicy);
  if (!program.ok() || !policy_result.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", program.ok()
                                                   ? policy_result.status().ToString().c_str()
                                                   : program.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<Policy> policy(std::move(policy_result).value().release());

  Interpreter interp;
  DiftTracker tracker(&interp, policy);
  Program to_run = std::move(*program);
  if (managed) {
    auto analysis = AnalyzeProgram(to_run);
    if (!analysis.ok()) {
      return 1;
    }
    auto instrumented =
        InstrumentProgram(to_run, *policy, InstrumentMode::kSelective, &*analysis);
    if (!instrumented.ok()) {
      std::fprintf(stderr, "instrumentation failed: %s\n",
                   instrumented.status().ToString().c_str());
      return 1;
    }
    to_run = std::move(instrumented->program);
    tracker.Install();
  }
  Status status = interp.RunProgram(to_run);
  if (!status.ok()) {
    std::fprintf(stderr, "run failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (!interp.RunEventLoop().ok()) {
    return 1;
  }

  // Stream three frames with different privacy implications.
  auto& sockets = interp.io_world().emitters["net.socket"];
  const char* frames[] = {"frame|employee badge visible|........",
                          "frame|customer at the door|.........",
                          "frame|employee and customer together|"};
  for (const char* frame : frames) {
    interp.EmitEvent(sockets[0], "data", {Value(frame)});
  }
  if (!interp.RunEventLoop().ok()) {
    return 1;
  }

  std::printf("%s version:\n", managed ? "privacy-managed" : "original");
  for (const IoRecord& record : interp.io_world().records) {
    std::printf("  [%s] %s %s <- %s\n", record.channel.c_str(), record.op.c_str(),
                record.detail.c_str(), record.payload.c_str());
  }
  if (managed) {
    for (const Violation& violation : tracker.violations()) {
      std::printf("  BLOCKED: flow of %s into %s-labelled sink '%s'\n",
                  violation.data_labels.c_str(), violation.receiver_labels.c_str(),
                  violation.sink.c_str());
    }
  }
  std::printf("\n");
  return 0;
}

int main() {
  std::printf("Smart Access Control System (paper §3)\n");
  std::printf("Frames: employee-only, customer-only, employee+customer.\n");
  std::printf("Policy: storage archives employee data only; email is internal.\n\n");
  if (RunVersion(/*managed=*/false) != 0) {
    return 1;
  }
  return RunVersion(/*managed=*/true);
}
