// Quickstart: the Turnstile pipeline on a 20-line application.
//
//   1. write an IFC policy (labellers + rules),
//   2. statically analyze the app for privacy-sensitive dataflows,
//   3. selectively instrument those paths,
//   4. run the instrumented app with the inlined DIFT tracker enforcing the
//      policy.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "src/analysis/analyzer.h"
#include "src/dift/tracker.h"
#include "src/instrument/instrumentor.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"

using namespace turnstile;

// A tiny camera app: frames from a socket are archived to disk.
constexpr const char* kApp = R"(
  let net = require("net");
  let fs = require("fs");
  let camera = net.connect(554, "front-door.cam");
  camera.on("data", frame => {
    let stamped = "cam1:" + frame;
    fs.writeFileSync("/archive/latest.bin", stamped);
  });
)";

// Policy: frames containing an employee may be archived; visitor frames may
// not (there is no visitor -> archive rule).
constexpr const char* kPolicy = R"json({
  "labellers": {
    "FrameContent": { "$fn": "f => (f.includes(\"employee\") ? \"employee\" : \"visitor\")" },
    "Archive": { "$const": "archive" }
  },
  "rules": ["employee -> archive"],
  "injections": [{ "object": "frame", "labeller": "FrameContent" }]
})json";

int main() {
  // 1. Parse the application and the policy.
  auto program = ParseProgram(kApp, "camera.js");
  auto policy_result = Policy::FromJsonText(kPolicy);
  if (!program.ok() || !policy_result.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  std::shared_ptr<Policy> policy(std::move(policy_result).value().release());

  // 2. Static analysis: find privacy-sensitive dataflows.
  auto analysis = AnalyzeProgram(*program);
  if (!analysis.ok()) {
    return 1;
  }
  std::printf("== dataflow analysis ==\n");
  for (const DataflowPath& path : analysis->paths) {
    std::printf("  %s (line %d)  -->  %s (line %d)\n", path.source_description.c_str(),
                path.source_loc.line, path.sink_description.c_str(), path.sink_loc.line);
  }

  // 3. Selective instrumentation.
  auto instrumented =
      InstrumentProgram(*program, *policy, InstrumentMode::kSelective, &*analysis);
  if (!instrumented.ok()) {
    return 1;
  }
  std::printf("\n== instrumented source ==\n%s\n",
              PrintProgram(instrumented->program).c_str());

  // 4. Run with the inlined DIFT tracker. The archive sink is labelled via a
  //    labeller applied programmatically here (a flow harness would normally
  //    do this through the policy's injections).
  Interpreter interp;
  DiftTracker tracker(&interp, policy);
  tracker.Install();
  if (!interp.RunProgram(instrumented->program).ok() || !interp.RunEventLoop().ok()) {
    return 1;
  }
  // Label the fs module as the archive sink.
  Value* fs_module = interp.global_env()->Lookup("fs");
  if (fs_module != nullptr) {
    auto labelled = tracker.Label(*fs_module, "Archive");
    if (!labelled.ok()) {
      return 1;
    }
  }

  // Stream two frames: an employee frame (allowed) and a visitor frame
  // (blocked by the missing visitor -> archive rule).
  auto& sockets = interp.io_world().emitters["net.socket"];
  interp.EmitEvent(sockets[0], "data", {Value("employee:alice|pixels...")});
  interp.EmitEvent(sockets[0], "data", {Value("visitor:unknown|pixels...")});
  if (!interp.RunEventLoop().ok()) {
    return 1;
  }

  std::printf("== run-time result ==\n");
  for (const IoRecord& record : interp.io_world().records) {
    std::printf("  archived: %s\n", record.payload.c_str());
  }
  for (const Violation& violation : tracker.violations()) {
    std::printf("  BLOCKED: %s data labelled %s cannot flow into %s\n",
                violation.sink.c_str(), violation.data_labels.c_str(),
                violation.receiver_labels.c_str());
  }
  return 0;
}
