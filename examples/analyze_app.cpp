// Developer tool: run the Turnstile Dataflow Analyzer (and the QueryDL
// baseline) on an arbitrary MiniScript application — the equivalent of the
// artifact's run-turnstile-single.js.
//
// Usage:
//   analyze_app <path/to/app.js>          analyze a source file
//   analyze_app --corpus <name>           analyze a bundled corpus app
//   analyze_app --report <out.html> ...   also write an HTML dataflow report
//   analyze_app                           analyze a built-in demo program
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/analysis/analyzer.h"
#include "src/analysis/report.h"
#include "src/baseline/querydl.h"
#include "src/corpus/corpus.h"
#include "src/lang/parser.h"
#include "src/support/stopwatch.h"

using namespace turnstile;

constexpr const char* kDemo = R"(
  let net = require("net");
  let fs = require("fs");
  let socket = net.connect(554, "camera.local");
  function persist(data) {
    fs.writeFileSync("/frames/latest", data);
  }
  socket.on("data", frame => {
    persist("ts:" + frame);
    socket.write("ack");
  });
)";

int main(int argc, char** argv) {
  std::string source;
  std::string name = "<demo>";
  std::string report_path;
  if (argc >= 3 && std::strcmp(argv[1], "--report") == 0) {
    report_path = argv[2];
    argv += 2;
    argc -= 2;
  }
  if (argc >= 3 && std::strcmp(argv[1], "--corpus") == 0) {
    const CorpusApp* app = FindCorpusApp(argv[2]);
    if (app == nullptr) {
      std::fprintf(stderr, "unknown corpus app '%s'; available apps:\n", argv[2]);
      for (const CorpusApp& candidate : Corpus()) {
        std::fprintf(stderr, "  %s\n", candidate.name.c_str());
      }
      return 1;
    }
    source = app->source;
    name = app->name + ".js";
  } else if (argc >= 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
    name = argv[1];
  } else {
    source = kDemo;
  }

  auto program = ParseProgram(source, name);
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n", program.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %d AST nodes\n\n", name.c_str(), program->node_count);

  Stopwatch turnstile_watch;
  auto turnstile_result = AnalyzeProgram(*program);
  double turnstile_ms = turnstile_watch.ElapsedMillis();
  if (!turnstile_result.ok()) {
    std::fprintf(stderr, "turnstile: %s\n", turnstile_result.status().ToString().c_str());
    return 1;
  }

  Stopwatch querydl_watch;
  auto querydl_result = QueryDlAnalyze(*program);
  double querydl_ms = querydl_watch.ElapsedMillis();
  if (!querydl_result.ok()) {
    std::fprintf(stderr, "querydl: %s\n", querydl_result.status().ToString().c_str());
    return 1;
  }

  std::printf("== Turnstile Dataflow Analyzer: %zu privacy-sensitive dataflows (%.2f ms) ==\n",
              turnstile_result->paths.size(), turnstile_ms);
  for (const DataflowPath& path : turnstile_result->paths) {
    std::printf("  %-28s line %-4d -->  %-24s line %d\n", path.source_description.c_str(),
                path.source_loc.line, path.sink_description.c_str(), path.sink_loc.line);
    std::printf("      via %zu expressions\n", path.via_ast_nodes.size());
  }
  std::printf("  sources: %d, sinks: %d, sensitive AST nodes: %zu / %d\n\n",
              turnstile_result->stats.sources_found, turnstile_result->stats.sinks_found,
              turnstile_result->sensitive_ast_nodes.size(), program->node_count);

  std::printf("== QueryDL baseline: %zu dataflows (%.2f ms) ==\n",
              querydl_result->paths.size(), querydl_ms);
  for (const DataflowPath& path : querydl_result->paths) {
    std::printf("  %-28s line %-4d -->  %-24s line %d\n", path.source_description.c_str(),
                path.source_loc.line, path.sink_description.c_str(), path.sink_loc.line);
  }
  std::printf("  IR instructions: %d, flow edges: %d, closure word-ops: %llu\n",
              querydl_result->stats.ir_instructions, querydl_result->stats.flow_edges,
              static_cast<unsigned long long>(querydl_result->stats.closure_word_ops));

  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << RenderHtmlReport(*program, source, *turnstile_result);
    std::printf("\nHTML report written to %s\n", report_path.c_str());
  } else {
    std::printf("\n%s", RenderTextReport(*program, source, *turnstile_result).c_str());
  }
  return 0;
}
