// The paper's §5 case study: a Network Video Recorder (NVR) built as a
// Node-RED flow, with the Fig. 7 IFC policy:
//
//   - faces of EU residents may only be stored in EU-located databases
//     (GDPR), expressed as the rule US -> EU (EU is more private);
//   - no employee receives emails showing higher-ranked employees
//     (L1 -> L2 -> L3).
//
// Four nodes: Frame Capture -> Face Recognition -> {Frame Storage,
// Email Notification}, all loaded as ordinary Node-RED modules into the
// RedFlow engine — the engine does not know the code is instrumented
// (platform-independence + non-invasiveness).
#include <cstdio>

#include "src/analysis/analyzer.h"
#include "src/analysis/report.h"
#include "src/dift/tracker.h"
#include "src/flow/engine.h"
#include "src/instrument/instrumentor.h"
#include "src/lang/parser.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

using namespace turnstile;

constexpr const char* kNvrModule = R"(module.exports = function(RED) {
  let deepstack = require("deepstack");
  let sqlite = require("sqlite3");
  let nodemailer = require("nodemailer");

  // Employee directory: region + rank per user id (the HR lookup the Fig. 7
  // label functions consult).
  employees = {
    user1: { region: "EU", level: "L3", email: "ceo@corp" },
    user2: { region: "US", level: "L2", email: "manager@corp" },
    user3: { region: "US", level: "L1", email: "intern@corp" }
  };
  // Assigned to globals so the policy's label functions (compiled in the
  // global scope, like the paper's inlined policy) can call them.
  getEmployeeById = function(id) {
    let hit = employees[id];
    return hit ? hit : { region: "US", level: "L1", email: "unknown@corp" };
  };
  getEmployeeByEmail = function(address) {
    for (let id of Object.keys(employees)) {
      if (employees[id].email === address) {
        return employees[id];
      }
    }
    return { region: "US", level: "L1" };
  };

  function FrameCaptureNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    node.on("input", msg => {
      node.send({ frame: msg.payload, source: config.camera });
    });
  }

  function FaceRecognitionNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    node.on("input", msg => {
      deepstack.faceRecognition(msg.frame, config.server, 0.6).then(result => {
        msg.payload = result.predictions;
        node.send(msg);
      });
    });
  }

  function FrameStorageNode(config) {
    RED.nodes.createNode(this, config);
    this.settings = { region: config.region };
    let node = this;
    let db = new sqlite.Database(config.path);
    node.on("input", msg => {
      db.run('INSERT INTO frames VALUES (?, ?)', [msg.source, msg.payload]);
      node.send(msg);
    });
  }

  function EmailNotificationNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let smtpTransport = nodemailer.createTransport({ service: "smtp" });
    node.on("input", msg => {
      let sendopts = { to: config.recipient, attachments: msg.payload };
      smtpTransport.sendMail(sendopts, (error, info) => {});
    });
  }

  RED.nodes.registerType("frame-capture", FrameCaptureNode);
  RED.nodes.registerType("face-recognition", FaceRecognitionNode);
  RED.nodes.registerType("frame-storage", FrameStorageNode);
  RED.nodes.registerType("email-notification", EmailNotificationNode);
};
)";

// Fig. 7, adapted to this reproduction's policy format. The recognizer's
// predictions are labelled {region, level} per face; the database node is
// labelled with its deployment region; the mailer is labelled with the
// recipient's rank at call time ($invoke).
constexpr const char* kNvrPolicy = R"json({
  "labellers": {
    "onRecognize": { "payload": { "$map": {
      "$fn": "item => { let e = getEmployeeById(item.userid); return [e.region, e.level]; }" } } },
    "mailer": { "sendMail": {
      "$invoke": "(object, args) => { let e = getEmployeeByEmail(args[0].to); return [e.region, e.level]; }" } },
    "nodeRegion": { "$fn": "node => (node.settings ? [node.settings.region, \"L3\"] : null)" },
    "dbRegion": { "$fn": "d => (d.path ? [d.path.includes(\"-us.db\") ? \"US\" : \"EU\", \"L3\"] : null)" }
  },
  "rules": ["US -> EU", "L1 -> L2", "L2 -> L3"],
  "injections": [
    { "object": "msg", "labeller": "onRecognize" },
    { "object": "smtpTransport", "labeller": "mailer" },
    { "object": "node", "labeller": "nodeRegion" },
    { "object": "db", "labeller": "dbRegion" }
  ]
})json";

constexpr const char* kFlow = R"json([
  { "id": "capture", "type": "frame-capture",
    "config": { "camera": "lobby-cam" }, "wires": ["recognize"] },
  { "id": "recognize", "type": "face-recognition",
    "config": { "server": "http://deepstack.local" }, "wires": ["store"] },
  { "id": "store", "type": "frame-storage",
    "config": { "path": "/var/nvr-us.db", "region": "US" }, "wires": ["notify"] },
  { "id": "notify", "type": "email-notification",
    "config": { "recipient": "intern@corp" }, "wires": [] }
])json";

int main() {
  std::printf("NVR case study (paper §5): US-located database, L1 email recipient.\n");
  std::printf("Expected: frames with EU or >L1 faces are blocked from the US store\n");
  std::printf("and from the intern's inbox; anonymous frames flow freely.\n\n");

  auto program = ParseProgram(kNvrModule, "nvr.js");
  auto policy_result = Policy::FromJsonText(kNvrPolicy);
  auto flow = Json::Parse(kFlow);
  if (!program.ok() || !policy_result.ok() || !flow.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", program.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<Policy> policy(std::move(policy_result).value().release());

  auto analysis = AnalyzeProgram(*program);
  if (!analysis.ok()) {
    return 1;
  }
  std::printf("static analysis found %zu privacy-sensitive dataflows\n\n",
              analysis->paths.size());
  auto instrumented =
      InstrumentProgram(*program, *policy, InstrumentMode::kSelective, &*analysis);
  if (!instrumented.ok()) {
    std::fprintf(stderr, "instrument: %s\n", instrumented.status().ToString().c_str());
    return 1;
  }

  // Trace every injected frame so blocked flows can explain themselves.
  obs::TraceRecorder::Global().Enable(4096);

  Interpreter interp;
  DiftTracker tracker(&interp, policy);
  tracker.Install();
  FlowEngine engine(&interp);
  Status status = engine.LoadModule(instrumented->program);
  if (!status.ok()) {
    std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }
  status = engine.InstantiateFlow(*flow);
  if (!status.ok()) {
    std::fprintf(stderr, "flow: %s\n", status.ToString().c_str());
    return 1;
  }

  // Stream frames whose simulated recognition results differ (the deepstack
  // module derives deterministic predictions from the frame content).
  for (int seq = 0; seq < 8; ++seq) {
    ObjectPtr msg = MakeObject();
    msg->Set("payload", Value("nvr-frame-" + std::to_string(seq * 7)));
    Status inject = engine.InjectInput("capture", Value(msg));
    if (!inject.ok()) {
      std::fprintf(stderr, "inject: %s\n", inject.ToString().c_str());
      return 1;
    }
    Status loop = interp.RunEventLoop();
    if (!loop.ok()) {
      std::fprintf(stderr, "loop: %s\n", loop.ToString().c_str());
      return 1;
    }
  }

  std::printf("deliveries that the policy allowed:\n");
  for (const IoRecord& record : interp.io_world().records) {
    if (record.channel == "sqlite" || record.channel == "smtp") {
      std::printf("  [%s] %s -> %s\n", record.channel.c_str(), record.op.c_str(),
                  record.detail.c_str());
    }
  }
  std::printf("\nflows blocked by the IFC policy:\n");
  for (const Violation& violation : tracker.violations()) {
    std::printf("  %s: data %s may not flow to receiver %s\n", violation.sink.c_str(),
                violation.data_labels.c_str(), violation.receiver_labels.c_str());
  }
  if (!tracker.violations().empty()) {
    std::printf("\nwhy was the first flow blocked?\n%s",
                ExplainViolation(tracker.violations().front()).c_str());
  }
  std::printf("\ntracker stats: %llu labels, %llu invokes, %llu boxes, %zu tracked objects\n",
              static_cast<unsigned long long>(tracker.stats().label_calls),
              static_cast<unsigned long long>(tracker.stats().invokes),
              static_cast<unsigned long long>(tracker.stats().boxes_created),
              tracker.tracked_count());
  tracker.PublishMetrics();
  std::printf("\nmetrics snapshot:\n%s\n",
              obs::Metrics::Global().ToJson().Dump(/*pretty=*/true).c_str());
  return 0;
}
