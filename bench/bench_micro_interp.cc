// Microbenchmarks for the MiniScript runtime substrate (google-benchmark):
// baseline interpreter throughput that the §6.2 overhead numbers are
// relative to.
#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "src/flow/engine.h"
#include "src/flow/workload.h"
#include "src/interp/interp.h"
#include "src/lang/parser.h"

namespace turnstile {
namespace {

// Runs `source`, then repeatedly calls the global function `tick()`. The
// default-constructed form inherits the interpreter's default execution tier
// (bytecode, unless TURNSTILE_EXEC_TIER overrides it); pass a tier to pin it.
struct TickFixture {
  Interpreter interp;
  FunctionPtr tick;

  explicit TickFixture(const char* source) { Init(source); }

  TickFixture(const char* source, ExecTier tier) {
    interp.set_exec_tier(tier);
    Init(source);
  }

  void Init(const char* source) {
    auto program = ParseProgram(source);
    if (!program.ok() || !interp.RunProgram(*program).ok()) {
      std::abort();
    }
    Value* fn = interp.global_env()->Lookup("tick");
    if (fn == nullptr || !fn->IsFunction()) {
      std::abort();
    }
    tick = fn->AsFunction();
  }

  void Run(benchmark::State& state) {
    for (auto _ : state) {
      auto result = interp.CallFunction(tick, Value::Undefined(), {});
      benchmark::DoNotOptimize(result.ok());
    }
  }
};

void BM_ArithmeticLoop(benchmark::State& state) {
  TickFixture f(R"(
    function tick() {
      let acc = 0;
      for (let i = 0; i < 100; i++) {
        acc = (acc * 31 + i) % 65521;
      }
      return acc;
    }
  )");
  f.Run(state);
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ArithmeticLoop);

void BM_StringConcat(benchmark::State& state) {
  TickFixture f(R"(
    function tick() {
      let s = "";
      for (let i = 0; i < 50; i++) {
        s = s + "x" + i;
      }
      return s.length;
    }
  )");
  f.Run(state);
}
BENCHMARK(BM_StringConcat);

void BM_PropertyAccess(benchmark::State& state) {
  TickFixture f(R"(
    let state = { a: { b: { c: 1 } }, n: 0 };
    function tick() {
      for (let i = 0; i < 100; i++) {
        state.n = state.n + state.a.b.c;
      }
      return state.n;
    }
  )");
  f.Run(state);
}
BENCHMARK(BM_PropertyAccess);

void BM_FunctionCalls(benchmark::State& state) {
  TickFixture f(R"(
    function add(a, b) { return a + b; }
    function tick() {
      let acc = 0;
      for (let i = 0; i < 100; i++) {
        acc = add(acc, i);
      }
      return acc;
    }
  )");
  f.Run(state);
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FunctionCalls);

void BM_ClosureCalls(benchmark::State& state) {
  TickFixture f(R"(
    function makeAdder(k) { return x => x + k; }
    let add7 = makeAdder(7);
    function tick() {
      let acc = 0;
      for (let i = 0; i < 100; i++) {
        acc = add7(acc);
      }
      return acc;
    }
  )");
  f.Run(state);
}
BENCHMARK(BM_ClosureCalls);

void BM_MethodDispatch(benchmark::State& state) {
  TickFixture f(R"(
    class Counter {
      constructor() { this.n = 0; }
      bump(k) { this.n = this.n + k; return this.n; }
    }
    let counter = new Counter();
    function tick() {
      for (let i = 0; i < 100; i++) {
        counter.bump(1);
      }
      return counter.n;
    }
  )");
  f.Run(state);
}
BENCHMARK(BM_MethodDispatch);

void BM_JsonParseNative(benchmark::State& state) {
  TickFixture f(R"(
    let blob = "{";
    for (let i = 0; i < 200; i++) {
      blob += '"k' + i + '":' + i + ",";
    }
    blob += '"end":0}';
    function tick() {
      return Object.keys(JSON.parse(blob)).length;
    }
  )");
  f.Run(state);
}
BENCHMARK(BM_JsonParseNative);

void BM_EventDispatch(benchmark::State& state) {
  Interpreter interp;
  auto program = ParseProgram(R"(
    let net = require("net");
    let socket = net.connect(1, "h");
    let count = 0;
    socket.on("data", d => { count = count + 1; });
  )");
  if (!program.ok() || !interp.RunProgram(*program).ok() || !interp.RunEventLoop().ok()) {
    std::abort();
  }
  ObjectPtr socket = interp.io_world().emitters["net.socket"].front();
  for (auto _ : state) {
    interp.EmitEvent(socket, "data", {Value("payload")});
    if (!interp.RunEventLoop().ok()) {
      std::abort();
    }
  }
}
BENCHMARK(BM_EventDispatch);

void BM_FlowMessageRouting(benchmark::State& state) {
  Interpreter interp;
  FlowEngine engine(&interp);
  Status status = engine.LoadModule(R"(
    module.exports = function(RED) {
      function RelayNode(config) {
        RED.nodes.createNode(this, config);
        let node = this;
        node.on("input", msg => { node.send(msg); });
      }
      RED.nodes.registerType("relay", RelayNode);
    };
  )", "relay.js");
  auto flow = Json::Parse(R"([
    { "id": "a", "type": "relay", "wires": ["b"] },
    { "id": "b", "type": "relay", "wires": ["c"] },
    { "id": "c", "type": "relay", "wires": [] }
  ])");
  if (!status.ok() || !flow.ok() || !engine.InstantiateFlow(*flow).ok()) {
    std::abort();
  }
  ObjectPtr msg = MakeObject();
  msg->Set("payload", Value("x"));
  for (auto _ : state) {
    if (!engine.InjectInput("a", Value(msg)).ok() || !interp.RunEventLoop().ok()) {
      std::abort();
    }
  }
}
BENCHMARK(BM_FlowMessageRouting);

// --- Per-opcode dispatch microbenches ----------------------------------------
// Each tick() keeps one bytecode operation family hot so the dispatch cost of
// that op dominates the sample. All are tier-parameterized (tier:0 =
// tree-walker oracle, tier:1 = bytecode VM) so the per-op dispatch gap between
// the two execution tiers is directly visible in one run.

void RunTierBench(benchmark::State& state, const char* source, int ops_per_tick) {
  TickFixture f(source, state.range(0) == 0 ? ExecTier::kTreeWalk : ExecTier::kBytecode);
  f.Run(state);
  state.SetItemsProcessed(state.iterations() * ops_per_tick);
}

#define TURNSTILE_TIER_BENCH(name) BENCHMARK(name)->ArgName("tier")->Arg(0)->Arg(1)

// kLoadSlot / kStoreSlot: local variable shuffle, no arithmetic to speak of.
void BM_OpLoadStoreSlot(benchmark::State& state) {
  RunTierBench(state, R"(
    function tick() {
      let a = 1; let b = 2; let t = 0;
      for (let i = 0; i < 100; i++) {
        t = a; a = b; b = t;
      }
      return a;
    }
  )", 300);
}
TURNSTILE_TIER_BENCH(BM_OpLoadStoreSlot);

// kBinary number fast path: add/mul/mod on doubles.
void BM_OpBinaryArith(benchmark::State& state) {
  RunTierBench(state, R"(
    function tick() {
      let acc = 1;
      for (let i = 0; i < 100; i++) {
        acc = (acc * 7 + 3) % 1000003;
      }
      return acc;
    }
  )", 300);
}
TURNSTILE_TIER_BENCH(BM_OpBinaryArith);

// kBinary compare + kJumpIfFalse: branchy code, both arms taken.
void BM_OpCompareBranch(benchmark::State& state) {
  RunTierBench(state, R"(
    function tick() {
      let lo = 0; let hi = 0;
      for (let i = 0; i < 100; i++) {
        if (i < 50) { lo = lo + 1; } else { hi = hi + 1; }
      }
      return lo + hi;
    }
  )", 100);
}
TURNSTILE_TIER_BENCH(BM_OpCompareBranch);

// kLoadGlobal: reads resolved to the global frame from inside a function.
void BM_OpGlobalLoad(benchmark::State& state) {
  RunTierBench(state, R"(
    let base = 17;
    function tick() {
      let acc = 0;
      for (let i = 0; i < 100; i++) {
        acc = acc + base;
      }
      return acc;
    }
  )", 100);
}
TURNSTILE_TIER_BENCH(BM_OpGlobalLoad);

// kCall with the contiguous register-window argument convention.
void BM_OpCallWindow(benchmark::State& state) {
  RunTierBench(state, R"(
    function mix(a, b, c) { return a + b * c; }
    function tick() {
      let acc = 0;
      for (let i = 0; i < 100; i++) {
        acc = mix(acc, i, 3);
      }
      return acc;
    }
  )", 100);
}
TURNSTILE_TIER_BENCH(BM_OpCallWindow);

// kEnvPush / kEnvPop: a non-transparent block per iteration.
void BM_OpEnvPushPop(benchmark::State& state) {
  RunTierBench(state, R"(
    function tick() {
      let acc = 0;
      for (let i = 0; i < 100; i++) {
        let captured = () => i;
        acc = acc + captured();
      }
      return acc;
    }
  )", 100);
}
TURNSTILE_TIER_BENCH(BM_OpEnvPushPop);

// kIterNew / kIterNext / kIterPop: for-of over a pre-built array.
void BM_OpIterNext(benchmark::State& state) {
  RunTierBench(state, R"(
    let data = [];
    for (let i = 0; i < 100; i++) { data.push(i); }
    function tick() {
      let acc = 0;
      for (let x of data) { acc = acc + x; }
      return acc;
    }
  )", 100);
}
TURNSTILE_TIER_BENCH(BM_OpIterNext);

// kGetPropAtom / kSetProp: member reads and writes on a stable shape.
void BM_OpPropAtom(benchmark::State& state) {
  RunTierBench(state, R"(
    let box = { n: 0 };
    function tick() {
      for (let i = 0; i < 100; i++) {
        box.n = box.n + 1;
      }
      return box.n;
    }
  )", 200);
}
TURNSTILE_TIER_BENCH(BM_OpPropAtom);

void BM_WorkloadGeneration(benchmark::State& state) {
  auto tmpl = Json::Parse(R"({ "payload": "$frame", "topic": "$topic", "seq": "$seq" })");
  if (!tmpl.ok()) {
    std::abort();
  }
  Rng rng(1);
  int seq = 0;
  for (auto _ : state) {
    Value msg = GenerateMessage(*tmpl, &rng, seq++);
    benchmark::DoNotOptimize(msg.IsObject());
  }
}
BENCHMARK(BM_WorkloadGeneration);

}  // namespace
}  // namespace turnstile

TURNSTILE_BENCHMARK_MAIN()
