// Microbenchmarks for the MiniScript runtime substrate (google-benchmark):
// baseline interpreter throughput that the §6.2 overhead numbers are
// relative to.
#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "src/flow/engine.h"
#include "src/flow/workload.h"
#include "src/interp/interp.h"
#include "src/lang/parser.h"

namespace turnstile {
namespace {

// Runs `source`, then repeatedly calls the global function `tick()`.
struct TickFixture {
  Interpreter interp;
  FunctionPtr tick;

  explicit TickFixture(const char* source) {
    auto program = ParseProgram(source);
    if (!program.ok() || !interp.RunProgram(*program).ok()) {
      std::abort();
    }
    Value* fn = interp.global_env()->Lookup("tick");
    if (fn == nullptr || !fn->IsFunction()) {
      std::abort();
    }
    tick = fn->AsFunction();
  }

  void Run(benchmark::State& state) {
    for (auto _ : state) {
      auto result = interp.CallFunction(tick, Value::Undefined(), {});
      benchmark::DoNotOptimize(result.ok());
    }
  }
};

void BM_ArithmeticLoop(benchmark::State& state) {
  TickFixture f(R"(
    function tick() {
      let acc = 0;
      for (let i = 0; i < 100; i++) {
        acc = (acc * 31 + i) % 65521;
      }
      return acc;
    }
  )");
  f.Run(state);
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ArithmeticLoop);

void BM_StringConcat(benchmark::State& state) {
  TickFixture f(R"(
    function tick() {
      let s = "";
      for (let i = 0; i < 50; i++) {
        s = s + "x" + i;
      }
      return s.length;
    }
  )");
  f.Run(state);
}
BENCHMARK(BM_StringConcat);

void BM_PropertyAccess(benchmark::State& state) {
  TickFixture f(R"(
    let state = { a: { b: { c: 1 } }, n: 0 };
    function tick() {
      for (let i = 0; i < 100; i++) {
        state.n = state.n + state.a.b.c;
      }
      return state.n;
    }
  )");
  f.Run(state);
}
BENCHMARK(BM_PropertyAccess);

void BM_FunctionCalls(benchmark::State& state) {
  TickFixture f(R"(
    function add(a, b) { return a + b; }
    function tick() {
      let acc = 0;
      for (let i = 0; i < 100; i++) {
        acc = add(acc, i);
      }
      return acc;
    }
  )");
  f.Run(state);
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FunctionCalls);

void BM_ClosureCalls(benchmark::State& state) {
  TickFixture f(R"(
    function makeAdder(k) { return x => x + k; }
    let add7 = makeAdder(7);
    function tick() {
      let acc = 0;
      for (let i = 0; i < 100; i++) {
        acc = add7(acc);
      }
      return acc;
    }
  )");
  f.Run(state);
}
BENCHMARK(BM_ClosureCalls);

void BM_MethodDispatch(benchmark::State& state) {
  TickFixture f(R"(
    class Counter {
      constructor() { this.n = 0; }
      bump(k) { this.n = this.n + k; return this.n; }
    }
    let counter = new Counter();
    function tick() {
      for (let i = 0; i < 100; i++) {
        counter.bump(1);
      }
      return counter.n;
    }
  )");
  f.Run(state);
}
BENCHMARK(BM_MethodDispatch);

void BM_JsonParseNative(benchmark::State& state) {
  TickFixture f(R"(
    let blob = "{";
    for (let i = 0; i < 200; i++) {
      blob += '"k' + i + '":' + i + ",";
    }
    blob += '"end":0}';
    function tick() {
      return Object.keys(JSON.parse(blob)).length;
    }
  )");
  f.Run(state);
}
BENCHMARK(BM_JsonParseNative);

void BM_EventDispatch(benchmark::State& state) {
  Interpreter interp;
  auto program = ParseProgram(R"(
    let net = require("net");
    let socket = net.connect(1, "h");
    let count = 0;
    socket.on("data", d => { count = count + 1; });
  )");
  if (!program.ok() || !interp.RunProgram(*program).ok() || !interp.RunEventLoop().ok()) {
    std::abort();
  }
  ObjectPtr socket = interp.io_world().emitters["net.socket"].front();
  for (auto _ : state) {
    interp.EmitEvent(socket, "data", {Value("payload")});
    if (!interp.RunEventLoop().ok()) {
      std::abort();
    }
  }
}
BENCHMARK(BM_EventDispatch);

void BM_FlowMessageRouting(benchmark::State& state) {
  Interpreter interp;
  FlowEngine engine(&interp);
  Status status = engine.LoadModule(R"(
    module.exports = function(RED) {
      function RelayNode(config) {
        RED.nodes.createNode(this, config);
        let node = this;
        node.on("input", msg => { node.send(msg); });
      }
      RED.nodes.registerType("relay", RelayNode);
    };
  )", "relay.js");
  auto flow = Json::Parse(R"([
    { "id": "a", "type": "relay", "wires": ["b"] },
    { "id": "b", "type": "relay", "wires": ["c"] },
    { "id": "c", "type": "relay", "wires": [] }
  ])");
  if (!status.ok() || !flow.ok() || !engine.InstantiateFlow(*flow).ok()) {
    std::abort();
  }
  ObjectPtr msg = MakeObject();
  msg->Set("payload", Value("x"));
  for (auto _ : state) {
    if (!engine.InjectInput("a", Value(msg)).ok() || !interp.RunEventLoop().ok()) {
      std::abort();
    }
  }
}
BENCHMARK(BM_FlowMessageRouting);

void BM_WorkloadGeneration(benchmark::State& state) {
  auto tmpl = Json::Parse(R"({ "payload": "$frame", "topic": "$topic", "seq": "$seq" })");
  if (!tmpl.ok()) {
    std::abort();
  }
  Rng rng(1);
  int seq = 0;
  for (auto _ : state) {
    Value msg = GenerateMessage(*tmpl, &rng, seq++);
    benchmark::DoNotOptimize(msg.IsObject());
  }
}
BENCHMARK(BM_WorkloadGeneration);

}  // namespace
}  // namespace turnstile

TURNSTILE_BENCHMARK_MAIN()
