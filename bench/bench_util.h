// Shared measurement helpers for the table/figure reproduction benches.
#ifndef TURNSTILE_BENCH_BENCH_UTIL_H_
#define TURNSTILE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_snapshot.h"
#include "src/corpus/corpus.h"
#include "src/corpus/driver.h"
#include "src/flow/workload.h"
#include "src/obs/profiler.h"
#include "src/support/stopwatch.h"

namespace turnstile {

// Number of workload messages per run; overridable for quick smoke runs.
inline int BenchMessageCount() {
  const char* env = std::getenv("TURNSTILE_BENCH_MESSAGES");
  if (env != nullptr) {
    int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  return 1000;  // the paper's E2 workload size
}

// Measures per-message processing time (wall seconds) for one app version.
// Exits the process on setup/run failure — a bench must not silently skip.
inline std::vector<double> MeasureProcTimes(const CorpusApp& app, AppVersion version,
                                            int messages) {
  auto runtime = AppRuntime::Create(app, version);
  if (!runtime.ok()) {
    std::fprintf(stderr, "FATAL: %s setup failed: %s\n", app.name.c_str(),
                 runtime.status().ToString().c_str());
    std::exit(1);
  }
  Rng rng(0xBE11C0DE);
  // Warm-up: populate caches (compiled labellers, module objects).
  for (int seq = 0; seq < 20; ++seq) {
    Status status = (*runtime)->DriveMessage(&rng, seq);
    if (!status.ok()) {
      std::fprintf(stderr, "FATAL: %s warm-up failed: %s\n", app.name.c_str(),
                   status.ToString().c_str());
      std::exit(1);
    }
  }
  std::vector<double> proc;
  proc.reserve(static_cast<size_t>(messages));
  for (int seq = 0; seq < messages; ++seq) {
    Stopwatch watch;
    Status status = (*runtime)->DriveMessage(&rng, 100 + seq);
    if (!status.ok()) {
      std::fprintf(stderr, "FATAL: %s message %d failed: %s\n", app.name.c_str(), seq,
                   status.ToString().c_str());
      std::exit(1);
    }
    proc.push_back(watch.ElapsedSeconds());
  }
  return proc;
}

// Per-app measurement set for the §6.2 experiments.
struct OverheadMeasurement {
  std::string app;
  std::vector<double> original;
  std::vector<double> selective;
  std::vector<double> exhaustive;
};

// Measures one app across all three versions with chunk-interleaved driving,
// so allocator/CPU-state drift affects every version equally instead of
// biasing whichever version ran last.
inline OverheadMeasurement MeasureInterleaved(const CorpusApp& app, int messages) {
  constexpr AppVersion kVersions[] = {AppVersion::kOriginal, AppVersion::kSelective,
                                      AppVersion::kExhaustive};
  OverheadMeasurement m;
  m.app = app.name;
  std::unique_ptr<AppRuntime> runtimes[3];
  Rng rngs[3] = {Rng(0xBE11C0DE), Rng(0xBE11C0DE), Rng(0xBE11C0DE)};
  for (int v = 0; v < 3; ++v) {
    auto runtime = AppRuntime::Create(app, kVersions[v]);
    if (!runtime.ok()) {
      std::fprintf(stderr, "FATAL: %s setup failed: %s\n", app.name.c_str(),
                   runtime.status().ToString().c_str());
      std::exit(1);
    }
    runtimes[v] = std::move(runtime).value();
    for (int seq = 0; seq < 20; ++seq) {  // warm-up
      if (!runtimes[v]->DriveMessage(&rngs[v], seq).ok()) {
        std::fprintf(stderr, "FATAL: %s warm-up failed\n", app.name.c_str());
        std::exit(1);
      }
    }
  }
  std::vector<double>* sinks[3] = {&m.original, &m.selective, &m.exhaustive};
  constexpr int kChunk = 25;
  for (int done = 0; done < messages; done += kChunk) {
    int chunk = std::min(kChunk, messages - done);
    for (int v = 0; v < 3; ++v) {
      for (int i = 0; i < chunk; ++i) {
        Stopwatch watch;
        Status status = runtimes[v]->DriveMessage(&rngs[v], 100 + done + i);
        if (!status.ok()) {
          std::fprintf(stderr, "FATAL: %s failed: %s\n", app.name.c_str(),
                       status.ToString().c_str());
          std::exit(1);
        }
        sinks[v]->push_back(watch.ElapsedSeconds());
      }
    }
  }
  return m;
}

// Measures all Part-2 apps (the 27 with ≥1 Turnstile-detected path,
// identified by bucket membership).
inline std::vector<OverheadMeasurement> MeasureAllOverheads(int messages) {
  std::vector<OverheadMeasurement> out;
  for (const CorpusApp& app : Corpus()) {
    if (app.bucket != CorpusBucket::kTurnstileOnly && app.bucket != CorpusBucket::kBothFind) {
      continue;
    }
    out.push_back(MeasureInterleaved(app, messages));
  }
  return out;
}

// Monitor-vs-app wall-time split for one app, measured by enabling the span
// profiler only around the driven messages. Prefers the selective version
// (the deployment configuration); apps whose analysis finds no paths or that
// carry no usable policy fall back to the original program, whose split is
// all-app by construction (fraction 0).
struct OverheadSplitMeasurement {
  std::string app;
  double app_seconds = 0.0;
  double monitor_seconds = 0.0;
  double fraction = 0.0;
  bool instrumented = false;  // false = fell back to the original version
};

inline OverheadSplitMeasurement MeasureOverheadSplit(const CorpusApp& app, int messages,
                                                     std::optional<ExecTier> tier = std::nullopt) {
  OverheadSplitMeasurement m;
  m.app = app.name;
  auto runtime = AppRuntime::Create(app, AppVersion::kSelective, tier);
  if (runtime.ok()) {
    m.instrumented = true;
  } else {
    runtime = AppRuntime::Create(app, AppVersion::kOriginal, tier);
    if (!runtime.ok()) {
      std::fprintf(stderr, "FATAL: %s setup failed: %s\n", app.name.c_str(),
                   runtime.status().ToString().c_str());
      std::exit(1);
    }
  }
  Rng rng(0xBE11C0DE);
  for (int seq = 0; seq < 20; ++seq) {  // warm-up outside the profiled window
    if (!(*runtime)->DriveMessage(&rng, seq).ok()) {
      std::fprintf(stderr, "FATAL: %s warm-up failed\n", app.name.c_str());
      std::exit(1);
    }
  }
  obs::Profiler& profiler = obs::Profiler::Global();
  profiler.Enable();
  for (int seq = 0; seq < messages; ++seq) {
    Status status = (*runtime)->DriveMessage(&rng, 100 + seq);
    if (!status.ok()) {
      std::fprintf(stderr, "FATAL: %s message %d failed: %s\n", app.name.c_str(), seq,
                   status.ToString().c_str());
      std::exit(1);
    }
  }
  obs::OverheadSplit split = profiler.split();
  profiler.Disable();
  m.app_seconds = split.app_s;
  m.monitor_seconds = split.monitor_s;
  m.fraction = split.fraction();
  return m;
}

// Median of a (copied) vector.
inline double Median(std::vector<double> values) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) {
    return values[mid];
  }
  return (values[mid - 1] + values[mid]) / 2.0;
}

}  // namespace turnstile

#endif  // TURNSTILE_BENCH_BENCH_UTIL_H_
