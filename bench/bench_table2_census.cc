// Reproduces Table 2: "Number of publicly available repositories on Github
// found for popular IoT frameworks."
//
// The paper crawled GitHub with framework-characteristic code signatures
// (e.g. "RED.nodes.createNode" for Node-RED). We reproduce the *measurement
// procedure* — the signature scanner — over a deterministic synthetic
// repository population calibrated to the paper's totals (DESIGN.md §1).
#include <cstdio>
#include <map>

#include "src/corpus/corpus.h"
#include "src/support/strings.h"

#include "bench/bench_util.h"

namespace turnstile {
namespace {

int CountOccurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

struct Row {
  int search_results = 0;
  int repositories = 0;
};

int Main() {
  std::vector<CensusRepo> population = GenerateCensusPopulation(0xEu);

  // The signatures the scanner searches for (the same ones DetectFramework
  // uses; re-derived here so the bench measures, not trusts, the generator).
  const std::pair<const char*, const char*> kSignatures[] = {
      {"Node-RED", "RED.nodes.createNode"},
      {"Azure IoT", "Client.fromConnectionString"},
      {"HomeBridge", "homebridge.registerAccessory"},
      {"OpenHAB", "openhab.rules.JSRule"},
      {"SmartThings", "new SmartApp"},
      {"AWS Greengrass", "greengrasssdk.client"},
  };

  std::map<std::string, Row> rows;
  int total_repos = 0;
  for (const CensusRepo& repo : population) {
    std::string detected = DetectFramework(repo.main_source_excerpt);
    if (detected.empty()) {
      continue;
    }
    Row& row = rows[detected];
    ++row.repositories;
    ++total_repos;
    for (const auto& [framework, signature] : kSignatures) {
      if (framework == detected) {
        row.search_results += CountOccurrences(repo.main_source_excerpt, signature);
      }
    }
  }

  std::printf("Table 2: repositories found per IoT framework (signature scan over %zu "
              "synthetic repositories)\n\n",
              population.size());
  std::printf("%-16s %14s %22s\n", "Framework", "Search Results", "Number of Repositories");
  std::printf("%-16s %14s %22s\n", "---------", "--------------", "----------------------");
  const char* kOrder[] = {"Node-RED",    "Azure IoT",   "HomeBridge",
                          "OpenHAB",     "SmartThings", "AWS Greengrass"};
  for (const char* framework : kOrder) {
    const Row& row = rows[framework];
    std::printf("%-16s %14d %15d (%.1f%%)\n", framework, row.search_results,
                row.repositories, 100.0 * row.repositories / total_repos);
  }
  std::printf("%-16s %14s %15d\n\n", "Total", "", total_repos);
  std::printf("Paper reference: Node-RED 2676/677 (58.9%%), Azure IoT 727/357 (31.1%%), "
              "HomeBridge 171/57 (5.0%%),\n                 OpenHAB 70/14 (1.2%%), "
              "SmartThings 42/29 (2.5%%), AWS Greengrass 27/15 (1.3%%)\n");
  return 0;
}

}  // namespace
}  // namespace turnstile

int main(int argc, char** argv) {
  int rc = turnstile::Main();
  turnstile::MaybeDumpMetricsSnapshot(argc, argv);
  return rc;
}
