// Fleet scaling bench: thousands of app instances sharded over worker
// threads, driven with hundreds of thousands of workload messages at mixed
// per-tenant rates through the FleetRuntime mailbox router.
//
//   bench_fleet [--instances=N] [--shards=N] [--messages=N] [--warmup=N]
//               [--trace-export=PATH] [--json[=PATH]]
//
//   --instances=N   tenant count (default: TURNSTILE_BENCH_INSTANCES, then
//                   1000). Tenants round-robin over the managed corpus apps
//                   and fall into three rate classes: every third instance
//                   receives half the base message count, every third double
//                   — the mixed-rate fleet the paper's multi-tenant setting
//                   implies.
//   --shards=N      worker shard count (default: TURNSTILE_FLEET_SHARDS,
//                   then 4). Run with --shards=1 and --shards=N to measure
//                   the sharding speedup; EXPERIMENTS.md records both.
//   --messages=N    base messages per instance (default:
//                   TURNSTILE_BENCH_MESSAGES, then 200).
//   --warmup=N      unrecorded messages per instance before the timed
//                   window (default 5).
//   --trace-export=PATH
//                   enables fleet trace propagation (per-context recorders +
//                   fleet trace ids), wires instance #0 -> instance #1 so
//                   messages cross shards, and writes the assembled Chrome
//                   trace (lane per shard, flow arrows per wire hop) to PATH
//                   after the run. Perfetto / chrome://tracing loads it.
//
// Reports per-shard and aggregate p50/p90/p99 message-processing latency —
// merged from every instance's context-private `multi.proc_seconds`
// histogram via obs::Histogram::Merge, after Drain(), so the hot path never
// locks — plus wall-clock throughput over the timed window, now split into
// queue-wait (enqueue->dequeue, `fleet.queue_seconds`) vs processing
// (`multi.proc_seconds`) so mailbox sit-time is no longer conflated with
// drive time. Everything lands in the global registry under `fleet.*` for
// the --json snapshot (BENCH_fleet.json in CI).
//
// When TURNSTILE_TELEMETRY started the live HTTP server, the fleet attaches
// to it after Start(): /metrics serves the per-shard health series and
// /healthz the per-shard liveness while the bench runs.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/profiler.h"
#include "src/runtime/fleet.h"
#include "src/support/env.h"
#include "tools/cli_args.h"

namespace turnstile {
namespace {

// Message-count multiplier for a tenant's rate class (slow / steady / hot).
int ClassMessages(size_t instance, int base) {
  switch (instance % 3) {
    case 0:
      return base / 2 > 0 ? base / 2 : 1;
    case 1:
      return base;
    default:
      return base * 2;
  }
}

void PublishQuantiles(obs::Metrics& global, const obs::Histogram& hist,
                      const std::string& scope) {
  global.GetFloatGauge("fleet.proc_p50_seconds" + scope)->Set(hist.Quantile(0.50));
  global.GetFloatGauge("fleet.proc_p90_seconds" + scope)->Set(hist.Quantile(0.90));
  global.GetFloatGauge("fleet.proc_p99_seconds" + scope)->Set(hist.Quantile(0.99));
}

int Main(int argc, char** argv) {
  // Fleet instances run on isolated contexts, which never apply process-env
  // obs config on their own — opt the bench process in explicitly so
  // TURNSTILE_TELEMETRY=<port|path> works for live soaks (EXPERIMENTS.md).
  obs::ApplyEnvObsConfig();
  int instances = static_cast<int>(EnvInt("TURNSTILE_BENCH_INSTANCES", 1000, 1, 100000));
  int shards = 0;  // 0 = FleetRuntime resolves TURNSTILE_FLEET_SHARDS
  int base_messages = static_cast<int>(EnvInt("TURNSTILE_BENCH_MESSAGES", 200, 1, 1000000));
  int warmup = 5;
  std::string trace_export;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    cli::FlagParse parse;
    if ((parse = cli::ParseIntFlag(arg, "--instances", "bench_fleet", 100000, &instances)) !=
        cli::FlagParse::kNoMatch) {
      if (parse == cli::FlagParse::kBad) {
        return 2;
      }
    } else if ((parse = cli::ParseIntFlag(arg, "--shards", "bench_fleet", 256, &shards)) !=
               cli::FlagParse::kNoMatch) {
      if (parse == cli::FlagParse::kBad) {
        return 2;
      }
    } else if ((parse = cli::ParseIntFlag(arg, "--messages", "bench_fleet", 1000000,
                                          &base_messages)) != cli::FlagParse::kNoMatch) {
      if (parse == cli::FlagParse::kBad) {
        return 2;
      }
    } else if ((parse = cli::ParseIntFlag(arg, "--warmup", "bench_fleet", 100000, &warmup)) !=
               cli::FlagParse::kNoMatch) {
      if (parse == cli::FlagParse::kBad) {
        return 2;
      }
    } else if ((parse = cli::ParseStringFlag(arg, "--trace-export", "bench_fleet", "path",
                                             &trace_export)) != cli::FlagParse::kNoMatch) {
      if (parse == cli::FlagParse::kBad) {
        return 2;
      }
    } else if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      // handled by MaybeDumpMetricsSnapshot after the run
    } else {
      std::fprintf(stderr, "bench_fleet: unknown argument '%s'\n", arg.c_str());
      std::fprintf(stderr,
                   "usage: bench_fleet [--instances=N] [--shards=N] [--messages=N]\n"
                   "                   [--warmup=N] [--trace-export=PATH] [--json[=PATH]]\n");
      return 2;
    }
  }

  std::vector<const CorpusApp*> apps;
  for (const CorpusApp& app : Corpus()) {
    if (app.bucket == CorpusBucket::kTurnstileOnly || app.bucket == CorpusBucket::kBothFind) {
      apps.push_back(&app);
    }
  }
  if (apps.empty()) {
    std::fprintf(stderr, "FATAL: no managed corpus apps\n");
    return 1;
  }

  FleetRuntime::Options options;
  options.shards = shards;
  if (!trace_export.empty()) {
    options.trace_capacity = 1u << 15;
  }
  FleetRuntime fleet(options);

  std::vector<std::string> ids;
  std::vector<int> quotas;
  uint64_t planned = 0;
  ids.reserve(static_cast<size_t>(instances));
  for (int i = 0; i < instances; ++i) {
    ids.push_back(fleet.AddApp(*apps[static_cast<size_t>(i) % apps.size()]));
    quotas.push_back(ClassMessages(static_cast<size_t>(i), base_messages));
    planned += static_cast<uint64_t>(quotas.back());
  }
  if (!trace_export.empty() && ids.size() >= 2) {
    // One cross-instance wire so the exported trace contains wire hops; with
    // >= 2 instances on >= 2 shards the hop crosses a shard boundary.
    Status wired = fleet.Wire(ids[0], ids[1]);
    if (!wired.ok()) {
      std::fprintf(stderr, "bench_fleet: wire for --trace-export: %s\n",
                   wired.ToString().c_str());
    }
  }

  std::printf("Fleet: %d instances x ~%d messages (mixed 0.5x/1x/2x rates, %llu total) "
              "on %d shards, kSelective\n",
              instances, base_messages, static_cast<unsigned long long>(planned),
              fleet.shard_count());

  Stopwatch setup;
  Status started = fleet.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "FATAL: fleet setup failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("setup (parse+analyze+instrument+compile, parallel per shard): %.2f s\n",
              setup.ElapsedSeconds());

  if (obs::TelemetryServer::Global().running()) {
    fleet.AttachTelemetry(&obs::TelemetryServer::Global());
    std::printf("telemetry: fleet health attached at 127.0.0.1:%d (/metrics, /healthz)\n",
                obs::TelemetryServer::Global().port());
  }

  // Warm-up outside the timed/recorded window: caches, compiled chunks.
  for (int seq = 0; seq < warmup; ++seq) {
    for (const std::string& id : ids) {
      fleet.Post(id, seq, /*record=*/false);
    }
  }
  fleet.Drain();

  // Timed window: round-robin across tenants so arrivals interleave; a
  // tenant drops out of a round once its rate-class quota is spent. Posts
  // block under mailbox backpressure, so the wall clock covers exactly the
  // fleet's sustainable ingest rate.
  Stopwatch wall;
  int max_quota = base_messages * 2;
  for (int seq = 0; seq < max_quota; ++seq) {
    for (size_t i = 0; i < ids.size(); ++i) {
      if (seq < quotas[i]) {
        fleet.Post(ids[i], warmup + seq);
      }
    }
  }
  fleet.Drain();
  const double wall_seconds = wall.ElapsedSeconds();

  // Quiescent: assemble + export the fleet trace before Stop tears anything
  // down (and publish to the live server if one is up).
  if (!trace_export.empty()) {
    obs::FleetTraceAssembler assembled = fleet.AssembleTrace();
    std::string json = assembled.ChromeTraceJson().Dump(/*pretty=*/false) + "\n";
    std::FILE* file = std::fopen(trace_export.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "bench_fleet: cannot open '%s' for writing\n", trace_export.c_str());
    } else {
      std::fwrite(json.data(), 1, json.size(), file);
      std::fclose(file);
      std::printf("fleet trace: %zu fleet traces, %llu wire hops -> %s\n",
                  assembled.fleet_trace_count(),
                  static_cast<unsigned long long>(assembled.wire_hops()),
                  trace_export.c_str());
    }
    if (obs::TelemetryServer::Global().running()) {
      fleet.PublishTraces(&obs::TelemetryServer::Global());
    }
  }
  fleet.Stop();

  std::vector<std::string> errors = fleet.errors();
  if (!errors.empty()) {
    std::fprintf(stderr, "FATAL: %zu instance errors, first: %s\n", errors.size(),
                 errors.front().c_str());
    return 1;
  }

  obs::Metrics& global = obs::Metrics::Global();
  std::printf("\n%-6s %10s | %10s %10s %10s | %10s %10s | %12s\n", "shard", "instances",
              "p50 (us)", "p90 (us)", "p99 (us)", "q50 (us)", "q99 (us)", "messages");
  std::printf("------------------+----------------------------------+-----------------------+"
              "-------------\n");
  for (int s = 0; s < fleet.shard_count(); ++s) {
    obs::Histogram shard_hist(obs::Histogram::DefaultLatencyBounds());
    fleet.MergeShardLatency(s, &shard_hist);
    const obs::Histogram& queue_hist = fleet.shard(s).queue_latency();
    std::printf("%-6d %10zu | %10.2f %10.2f %10.2f | %10.2f %10.2f | %12llu\n", s,
                fleet.shard(s).instance_count(), shard_hist.Quantile(0.50) * 1e6,
                shard_hist.Quantile(0.90) * 1e6, shard_hist.Quantile(0.99) * 1e6,
                queue_hist.Quantile(0.50) * 1e6, queue_hist.Quantile(0.99) * 1e6,
                static_cast<unsigned long long>(shard_hist.count()));
    // MetricWithLabel with an empty family yields just the label block, so
    // the published keys read fleet.proc_p99_seconds{shard="0"} etc.
    const std::string scope = obs::MetricWithLabel("", "shard", std::to_string(s));
    PublishQuantiles(global, shard_hist, scope);
    global.GetFloatGauge("fleet.queue_p50_seconds" + scope)->Set(queue_hist.Quantile(0.50));
    global.GetFloatGauge("fleet.queue_p99_seconds" + scope)->Set(queue_hist.Quantile(0.99));
  }

  obs::Histogram fleet_hist(obs::Histogram::DefaultLatencyBounds());
  uint64_t recorded = fleet.MergeFleetLatency(&fleet_hist);
  const uint64_t processed = fleet.messages_processed();
  const double throughput = wall_seconds > 0 ? recorded / wall_seconds : 0.0;

  // The queue-wait vs processing split (satellite of ISSUE 10): merge the
  // shard-level mailbox histograms into global registry entries so the
  // --json snapshot carries full bucket data for both sides of the split.
  obs::Histogram* queue_global = global.GetHistogram("fleet.queue_seconds");
  obs::Histogram* wait_global = global.GetHistogram("fleet.enqueue_wait_seconds");
  const uint64_t queued = fleet.MergeQueueLatency(queue_global);
  const uint64_t stalls = fleet.MergeEnqueueWait(wait_global);

  global.GetGauge("fleet.instances")->Set(instances);
  global.GetGauge("fleet.shards")->Set(fleet.shard_count());
  global.GetGauge("fleet.messages_total")->Set(static_cast<int64_t>(recorded));
  global.GetFloatGauge("fleet.wall_seconds")->Set(wall_seconds);
  global.GetFloatGauge("fleet.throughput_msgs_per_s")->Set(throughput);
  PublishQuantiles(global, fleet_hist, "");
  global.GetFloatGauge("fleet.queue_p50_seconds")->Set(queue_global->Quantile(0.50));
  global.GetFloatGauge("fleet.queue_p90_seconds")->Set(queue_global->Quantile(0.90));
  global.GetFloatGauge("fleet.queue_p99_seconds")->Set(queue_global->Quantile(0.99));
  global.GetFloatGauge("fleet.enqueue_wait_p99_seconds")->Set(wait_global->Quantile(0.99));
  global.GetGauge("fleet.enqueue_stalls")->Set(static_cast<int64_t>(stalls));

  std::printf("\n%llu recorded messages (%llu processed incl. warm-up) over %.3f s wall "
              "-> %.0f msg/s aggregate\n",
              static_cast<unsigned long long>(recorded),
              static_cast<unsigned long long>(processed), wall_seconds, throughput);
  std::printf("processing: p50 %.2f us, p90 %.2f us, p99 %.2f us\n",
              fleet_hist.Quantile(0.50) * 1e6, fleet_hist.Quantile(0.90) * 1e6,
              fleet_hist.Quantile(0.99) * 1e6);
  std::printf("queue wait: p50 %.2f us, p90 %.2f us, p99 %.2f us over %llu deliveries "
              "(%llu backpressure stalls, stall p99 %.2f us)\n",
              queue_global->Quantile(0.50) * 1e6, queue_global->Quantile(0.90) * 1e6,
              queue_global->Quantile(0.99) * 1e6, static_cast<unsigned long long>(queued),
              static_cast<unsigned long long>(stalls), wait_global->Quantile(0.99) * 1e6);
  return 0;
}

}  // namespace
}  // namespace turnstile

int main(int argc, char** argv) {
  int rc = turnstile::Main(argc, argv);
  turnstile::MaybeDumpMetricsSnapshot(argc, argv);
  return rc;
}
