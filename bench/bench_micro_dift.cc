// Microbenchmarks for the DIFT tracker primitives (google-benchmark):
//   - label() with value-dependent label functions (includes boxing)
//   - binaryOp() on labelled vs unlabelled operands
//   - rule-DAG flow checks: first query (O(V+E)) vs cached (O(1)) — the §4.4
//     caching claim
//   - invoke() vs a plain interpreter call — the per-call tracking tax
#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "src/dift/tracker.h"
#include "src/lang/parser.h"
#include "src/obs/audit.h"

namespace turnstile {
namespace {

constexpr const char* kPolicy = R"json({
  "labellers": {
    "byContent": { "$fn": "v => (v.includes(\"employee\") ? \"Alpha\" : \"Beta\")" },
    "const": { "$const": "Alpha" }
  },
  "rules": ["Alpha -> Beta", "Beta -> Gamma"]
})json";

struct Fixture {
  Interpreter interp;
  std::shared_ptr<Policy> policy;
  std::unique_ptr<DiftTracker> tracker;

  Fixture() {
    auto parsed = Policy::FromJsonText(kPolicy);
    if (!parsed.ok()) {
      std::abort();
    }
    policy = std::shared_ptr<Policy>(std::move(parsed).value().release());
    tracker = std::make_unique<DiftTracker>(&interp, policy);
    tracker->Install();
  }
};

void BM_LabelValueType(benchmark::State& state) {
  Fixture f;
  int i = 0;
  for (auto _ : state) {
    Value v("employee-frame-" + std::to_string(i++));
    auto result = f.tracker->Label(v, "byContent");
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_LabelValueType);

void BM_LabelObjectConst(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    ObjectPtr obj = MakeObject();
    obj->Set("payload", Value("data"));
    auto result = f.tracker->Label(Value(obj), "const");
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_LabelObjectConst);

void BM_BinaryOpUnlabelled(benchmark::State& state) {
  Fixture f;
  Value a(21.0);
  Value b(2.0);
  for (auto _ : state) {
    auto result = f.tracker->BinaryOp("*", a, b);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_BinaryOpUnlabelled);

void BM_BinaryOpLabelled(benchmark::State& state) {
  Fixture f;
  auto a = f.tracker->Label(Value("employee-a"), "byContent");
  auto b = f.tracker->Label(Value("employee-b"), "byContent");
  if (!a.ok() || !b.ok()) {
    std::abort();
  }
  for (auto _ : state) {
    auto result = f.tracker->BinaryOp("+", *a, *b);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_BinaryOpLabelled);

// Plain interpreter baseline for the same operation.
void BM_PlainBinaryEval(benchmark::State& state) {
  Interpreter interp;
  Value a("employee-a");
  Value b("employee-b");
  for (auto _ : state) {
    auto result = interp.EvalBinary("+", a, b);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_PlainBinaryEval);

// Rule-DAG reachability: uncached first queries vs cached repeats, on a
// chain lattice of the given depth.
void BM_FlowCheckUncached(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    LabelSpace space;
    RuleGraph graph(&space);
    for (int i = 0; i + 1 < depth; ++i) {
      graph.AddRule("L" + std::to_string(i), "L" + std::to_string(i + 1));
    }
    LabelId from = *space.Find("L0");
    LabelId to = *space.Find("L" + std::to_string(depth - 1));
    state.ResumeTiming();
    benchmark::DoNotOptimize(graph.CanFlowLabel(from, to));
  }
}
BENCHMARK(BM_FlowCheckUncached)->Arg(8)->Arg(64)->Arg(512);

void BM_FlowCheckCached(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  LabelSpace space;
  RuleGraph graph(&space);
  for (int i = 0; i + 1 < depth; ++i) {
    graph.AddRule("L" + std::to_string(i), "L" + std::to_string(i + 1));
  }
  LabelId from = *space.Find("L0");
  LabelId to = *space.Find("L" + std::to_string(depth - 1));
  graph.CanFlowLabel(from, to);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.CanFlowLabel(from, to));
  }
}
BENCHMARK(BM_FlowCheckCached)->Arg(8)->Arg(64)->Arg(512);

// invoke() vs a plain call through the interpreter.
struct CallFixture : Fixture {
  Value receiver;
  FunctionPtr plain_fn;

  CallFixture() {
    auto program = ParseProgram("let svc = { combine: (a, b) => a + b };");
    if (!program.ok() || !interp.RunProgram(*program).ok()) {
      std::abort();
    }
    receiver = *interp.global_env()->Lookup("svc");
    plain_fn = receiver.AsObject()->Get("combine").AsFunction();
  }
};

void BM_PlainCall(benchmark::State& state) {
  CallFixture f;
  for (auto _ : state) {
    auto result = f.interp.CallFunction(f.plain_fn, f.receiver, {Value("a"), Value("b")});
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_PlainCall);

void BM_TrackedInvokeUnlabelled(benchmark::State& state) {
  CallFixture f;
  for (auto _ : state) {
    auto result = f.tracker->Invoke(f.receiver, "combine", {Value("a"), Value("b")});
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_TrackedInvokeUnlabelled);

void BM_TrackedInvokeLabelled(benchmark::State& state) {
  CallFixture f;
  auto labelled = f.tracker->Label(Value("employee-x"), "byContent");
  if (!labelled.ok()) {
    std::abort();
  }
  for (auto _ : state) {
    auto result = f.tracker->Invoke(f.receiver, "combine", {*labelled, Value("b")});
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_TrackedInvokeLabelled);

// Same op with the audit ledger recording: quantifies the enabled-ledger cost
// per labelled invoke (flow-check event + memoized detail lookup). The
// disabled path is covered by BM_TrackedInvokeLabelled itself — audit adds
// one branch there.
void BM_TrackedInvokeLabelledAudit(benchmark::State& state) {
  CallFixture f;
  auto labelled = f.tracker->Label(Value("employee-x"), "byContent");
  if (!labelled.ok()) {
    std::abort();
  }
  obs::AuditLedger::Global().Enable(1u << 12);
  for (auto _ : state) {
    auto result = f.tracker->Invoke(f.receiver, "combine", {*labelled, Value("b")});
    benchmark::DoNotOptimize(result.ok());
  }
  obs::AuditLedger::Global().Disable();
}
BENCHMARK(BM_TrackedInvokeLabelledAudit);

// DeepLabel over an argument object of the given size — the dominant cost of
// exhaustive instrumentation on dictionary-heavy apps (nlp.js).
void BM_DeepLabelObject(benchmark::State& state) {
  Fixture f;
  ObjectPtr big = MakeObject();
  for (int i = 0; i < state.range(0); ++i) {
    big->Set("k" + std::to_string(i), Value("v" + std::to_string(i)));
  }
  Value v(big);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tracker->DeepLabel(v).size());
  }
}
BENCHMARK(BM_DeepLabelObject)->Arg(10)->Arg(100)->Arg(1000);

// Boxing throughput (Track on value types).
void BM_TrackBoxing(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tracker->Track(Value(3.14)).IsObject());
  }
}
BENCHMARK(BM_TrackBoxing);

}  // namespace
}  // namespace turnstile

TURNSTILE_BENCHMARK_MAIN()
