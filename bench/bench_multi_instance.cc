// Multi-instance scaling bench (ISSUE 7): M app instances on M std::threads,
// each on its own isolated RuntimeContext, driving K messages apiece. Reports
// aggregate throughput over the concurrent region plus per-instance p50/p99
// message-processing latency, read back from each context's own obs
// histogram — the same instrument the runtime already carries, now sharded.
//
//   TURNSTILE_BENCH_INSTANCES   number of concurrent instances (default 4)
//   TURNSTILE_BENCH_MESSAGES    messages per instance (default 1000)
//
// Per-instance p99 and the aggregate totals land in the *global* metrics
// registry (`multi.*`), so `--json` snapshots carry them.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/runtime/context.h"
#include "src/support/env.h"

namespace turnstile {
namespace {

// Strict parse (src/support/env.h): trailing garbage or out-of-range values
// warn once and keep the default instead of half-parsing.
int BenchInstanceCount() {
  return static_cast<int>(EnvInt("TURNSTILE_BENCH_INSTANCES", 4, 1, 256));
}

// One instance's run: drives `app` on `context`, observing each per-message
// processing time into the context's private histogram.
struct Instance {
  const CorpusApp* app = nullptr;
  std::unique_ptr<RuntimeContext> context;
  std::unique_ptr<AppRuntime> runtime;
  std::vector<double> proc;  // seconds, one per driven message
  bool ok = true;
};

void DriveInstance(Instance& inst, int messages) {
  obs::Histogram* hist = inst.context->metrics().GetHistogram("multi.proc_seconds");
  Rng rng(0xBE11C0DE);
  for (int seq = 0; seq < 20; ++seq) {  // warm-up: caches, compiled chunks
    if (!inst.runtime->DriveMessage(&rng, seq).ok()) {
      inst.ok = false;
      return;
    }
  }
  inst.proc.reserve(static_cast<size_t>(messages));
  for (int seq = 0; seq < messages; ++seq) {
    Stopwatch watch;
    if (!inst.runtime->DriveMessage(&rng, 100 + seq).ok()) {
      inst.ok = false;
      return;
    }
    double seconds = watch.ElapsedSeconds();
    hist->Observe(seconds);
    inst.proc.push_back(seconds);
  }
}

int Main() {
  const int instances = BenchInstanceCount();
  const int messages = BenchMessageCount();

  // Part-2 apps (those carrying a usable policy), round-robined over the
  // instances: instance i runs the (i mod |apps|)-th managed app.
  std::vector<const CorpusApp*> apps;
  for (const CorpusApp& app : Corpus()) {
    if (app.bucket != CorpusBucket::kTurnstileOnly && app.bucket != CorpusBucket::kBothFind) {
      continue;
    }
    apps.push_back(&app);
  }
  if (apps.empty()) {
    std::fprintf(stderr, "FATAL: no managed corpus apps\n");
    return 1;
  }

  std::printf("Multi-instance scaling: %d instances x %d messages, kSelective, "
              "isolated RuntimeContext per instance\n\n",
              instances, messages);

  // Build every instance before starting the clock: setup (parse, analysis,
  // instrumentation, compile) is the per-tenant cold path, not the steady
  // state this bench measures.
  std::vector<Instance> fleet(static_cast<size_t>(instances));
  for (int i = 0; i < instances; ++i) {
    Instance& inst = fleet[i];
    inst.app = apps[static_cast<size_t>(i) % apps.size()];
    inst.context = RuntimeContext::CreateIsolated();
    auto runtime =
        AppRuntime::Create(*inst.app, AppVersion::kSelective, std::nullopt, inst.context.get());
    if (!runtime.ok()) {
      std::fprintf(stderr, "FATAL: %s setup failed: %s\n", inst.app->name.c_str(),
                   runtime.status().ToString().c_str());
      return 1;
    }
    inst.runtime = std::move(runtime).value();
  }

  Stopwatch wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(fleet.size());
    for (Instance& inst : fleet) {
      threads.emplace_back([&inst, messages] { DriveInstance(inst, messages); });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }
  const double wall_seconds = wall.ElapsedSeconds();

  obs::Metrics& global = obs::Metrics::Global();
  obs::Histogram* aggregate = global.GetHistogram("multi.proc_seconds");
  std::printf("%-4s %-18s | %10s %10s %10s\n", "#", "application", "p50 (us)", "p99 (us)",
              "sum (ms)");
  std::printf("-----------------------+---------------------------------\n");
  uint64_t total_messages = 0;
  for (int i = 0; i < instances; ++i) {
    Instance& inst = fleet[i];
    if (!inst.ok) {
      std::fprintf(stderr, "FATAL: instance %d (%s) failed mid-run\n", i, inst.app->name.c_str());
      return 1;
    }
    const obs::Histogram* hist = inst.context->metrics().GetHistogram("multi.proc_seconds");
    const double p99 = hist->Quantile(0.99);
    std::printf("%-4d %-18s | %10.2f %10.2f %10.2f\n", i, inst.app->name.c_str(),
                hist->Quantile(0.50) * 1e6, p99 * 1e6, hist->sum() * 1e3);
    global
        .GetFloatGauge(obs::MetricWithLabel("multi.proc_p99_seconds", "instance",
                                            std::to_string(i)))
        ->Set(p99);
    for (double seconds : inst.proc) {  // merged post-join: no cross-thread registry
      aggregate->Observe(seconds);
    }
    total_messages += static_cast<uint64_t>(inst.proc.size());
  }

  const double throughput = wall_seconds > 0 ? total_messages / wall_seconds : 0.0;
  global.GetGauge("multi.instances")->Set(instances);
  global.GetGauge("multi.messages_total")->Set(static_cast<int64_t>(total_messages));
  global.GetFloatGauge("multi.wall_seconds")->Set(wall_seconds);
  global.GetFloatGauge("multi.throughput_msgs_per_s")->Set(throughput);
  std::printf("\n%llu messages over %.3f s wall -> %.0f msg/s aggregate; "
              "fleet p50 %.2f us, p99 %.2f us\n",
              static_cast<unsigned long long>(total_messages), wall_seconds, throughput,
              aggregate->Quantile(0.50) * 1e6, aggregate->Quantile(0.99) * 1e6);
  return 0;
}

}  // namespace
}  // namespace turnstile

int main(int argc, char** argv) {
  int rc = turnstile::Main();
  turnstile::MaybeDumpMetricsSnapshot(argc, argv);
  return rc;
}
