// Reproduces Figure 10: distribution of the number of privacy-sensitive
// dataflows detected per application, Turnstile vs QueryDL (the CodeQL
// stand-in), against the manual ground truth — plus §6.1's bucket breakdown.
#include <cstdio>
#include <map>
#include <string>

#include "src/analysis/analyzer.h"
#include "src/baseline/querydl.h"
#include "src/corpus/corpus.h"
#include "src/lang/parser.h"

#include "bench/bench_util.h"

namespace turnstile {
namespace {

int Main() {
  struct AppOutcome {
    std::string name;
    CorpusBucket bucket;
    int ground_truth = 0;
    int turnstile = 0;
    int querydl = 0;
  };
  std::vector<AppOutcome> outcomes;

  for (const CorpusApp& app : Corpus()) {
    auto program = ParseProgram(app.source, app.name + ".js");
    if (!program.ok()) {
      std::fprintf(stderr, "FATAL: %s parse: %s\n", app.name.c_str(),
                   program.status().ToString().c_str());
      return 1;
    }
    auto turnstile_result = AnalyzeProgram(*program);
    auto querydl_result = QueryDlAnalyze(*program);
    if (!turnstile_result.ok() || !querydl_result.ok()) {
      std::fprintf(stderr, "FATAL: %s analysis failed\n", app.name.c_str());
      return 1;
    }
    outcomes.push_back({app.name, app.bucket, app.ground_truth_paths,
                        static_cast<int>(turnstile_result->paths.size()),
                        static_cast<int>(querydl_result->paths.size())});
  }

  std::printf("Figure 10: privacy-sensitive dataflows detected per application\n\n");
  std::printf("%-22s %-15s %6s %10s %8s\n", "application", "bucket", "manual", "turnstile",
              "querydl");
  int gt = 0;
  int t_total = 0;
  int q_total = 0;
  for (const AppOutcome& o : outcomes) {
    std::printf("%-22s %-15s %6d %10d %8d\n", o.name.c_str(), CorpusBucketName(o.bucket),
                o.ground_truth, o.turnstile, o.querydl);
    gt += o.ground_truth;
    t_total += o.turnstile;
    q_total += o.querydl;
  }

  // Distribution (the figure's shape): how many apps had k detected paths.
  std::map<int, int> t_hist;
  std::map<int, int> q_hist;
  std::map<int, int> g_hist;
  for (const AppOutcome& o : outcomes) {
    ++t_hist[o.turnstile];
    ++q_hist[o.querydl];
    ++g_hist[o.ground_truth];
  }
  std::printf("\nDistribution (apps with k paths):  k: manual turnstile querydl\n");
  for (int k = 0; k <= 8; ++k) {
    std::printf("  %d: %6d %9d %7d\n", k, g_hist[k], t_hist[k], q_hist[k]);
  }

  // Bucket summary, the §6.1 narrative.
  int t_pos = 0;
  int q_pos = 0;
  int t_only = 0;
  int q_only = 0;
  int both = 0;
  int neither = 0;
  int neither_with_paths = 0;
  for (const AppOutcome& o : outcomes) {
    bool t = o.turnstile > 0;
    bool q = o.querydl > 0;
    t_pos += t;
    q_pos += q;
    t_only += t && !q;
    q_only += q && !t;
    both += t && q;
    if (!t && !q) {
      ++neither;
      neither_with_paths += o.ground_truth > 0;
    }
  }

  std::printf("\nTotals:   manual ground truth: %d paths across 61 apps\n", gt);
  std::printf("          Turnstile: %d paths (%.0f%% of ground truth), positive in %d apps\n",
              t_total, 100.0 * t_total / gt, t_pos);
  std::printf("          QueryDL:   %d paths (%.0f%% of ground truth), positive in %d apps\n",
              q_total, 100.0 * q_total / gt, q_pos);
  std::printf("          Turnstile finds %.1fx as many paths as QueryDL\n",
              static_cast<double>(t_total) / q_total);
  std::printf("Buckets:  Turnstile-only apps: %d | both: %d | QueryDL-only: %d | neither: %d "
              "(of which %d have real paths, %d have none)\n",
              t_only, both, q_only, neither, neither_with_paths,
              neither - neither_with_paths);
  std::printf("\nPaper reference: 285 manual paths; Turnstile 190 (3.7x CodeQL's 52); 27 "
              "Turnstile-positive apps;\n                 22 Turnstile-only; 32 neither "
              "(26 with paths, 6 without); 2 apps where CodeQL did better.\n");
  return 0;
}

}  // namespace
}  // namespace turnstile

int main(int argc, char** argv) {
  int rc = turnstile::Main();
  turnstile::MaybeDumpMetricsSnapshot(argc, argv);
  return rc;
}
