// Reproduces the §6.1 computation-time comparison: Turnstile's specialized
// on-AST analysis vs QueryDL's compile-to-relations pipeline ("Turnstile is
// an order of magnitude (~67x) faster than CodeQL, completing an analysis in
// 325 ms on average ... CodeQL 59.5 s on average").
//
// Absolute times differ (our corpus apps are smaller than real packages and
// QueryDL is leaner than CodeQL); the reported result is the per-app times
// and the speedup ratio.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/baseline/querydl.h"
#include "src/corpus/corpus.h"
#include "src/lang/parser.h"
#include "src/support/stopwatch.h"

#include "bench/bench_util.h"

namespace turnstile {
namespace {

constexpr int kRepetitions = 3;   // per app, per tool; the median is reported
constexpr int kVendorChain = 2400;  // vendored-bundle scale (package-size inputs)

template <typename Fn>
double MedianMillis(Fn&& run) {
  std::vector<double> times;
  for (int i = 0; i < kRepetitions; ++i) {
    Stopwatch watch;
    run();
    times.push_back(watch.ElapsedMillis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

int Main() {
  // The paper ran both tools over whole packages — application code plus its
  // vendored dependencies. We reproduce that input shape by bundling each
  // corpus app with the deterministic dependency bundle.
  const std::string vendor = VendoredDependencyBundle(kVendorChain);
  std::printf("Analysis computation time per application+dependencies "
              "(median of %d runs)\n\n", kRepetitions);
  std::printf("%-22s %12s %12s %9s\n", "application", "turnstile/ms", "querydl/ms",
              "speedup");

  double t_sum = 0.0;
  double q_sum = 0.0;
  double t_max = 0.0;
  double q_max = 0.0;
  std::string t_max_app;
  std::string q_max_app;
  int apps = 0;

  for (const CorpusApp& app : Corpus()) {
    auto program = ParseProgram(vendor + app.source, app.name + ".js");
    if (!program.ok()) {
      std::fprintf(stderr, "FATAL: parse %s\n", app.name.c_str());
      return 1;
    }
    double t_ms = MedianMillis([&] {
      auto result = AnalyzeProgram(*program);
      if (!result.ok()) {
        std::exit(1);
      }
    });
    double q_ms = MedianMillis([&] {
      auto result = QueryDlAnalyze(*program);
      if (!result.ok()) {
        std::exit(1);
      }
    });
    std::printf("%-22s %12.3f %12.3f %8.1fx\n", app.name.c_str(), t_ms, q_ms, q_ms / t_ms);
    t_sum += t_ms;
    q_sum += q_ms;
    if (t_ms > t_max) {
      t_max = t_ms;
      t_max_app = app.name;
    }
    if (q_ms > q_max) {
      q_max = q_ms;
      q_max_app = app.name;
    }
    ++apps;
  }

  std::printf("\nAverages over %d apps: Turnstile %.3f ms, QueryDL %.3f ms -> %.1fx faster\n",
              apps, t_sum / apps, q_sum / apps, q_sum / t_sum);
  std::printf("Worst cases: Turnstile %.3f ms (%s); QueryDL %.3f ms (%s)\n", t_max,
              t_max_app.c_str(), q_max, q_max_app.c_str());
  std::printf("\nPaper reference: Turnstile 325 ms avg (1578 ms worst, nlp.js); CodeQL "
              "59532 ms avg\n                 (724102 ms worst, modbus); ~67x speedup.\n");
  return 0;
}

}  // namespace
}  // namespace turnstile

int main(int argc, char** argv) {
  int rc = turnstile::Main();
  turnstile::MaybeDumpMetricsSnapshot(argc, argv);
  return rc;
}
