// Shared `--json[=PATH]` metrics-snapshot plumbing for every bench binary.
// Both bench entry-point styles funnel through here: google-benchmark micros
// (bench_main.h) need argv split so the snapshot flags stay away from
// benchmark::Initialize, while the table/figure mains (bench_util.h) parse
// their own argv and just want the dump-at-exit behaviour.
#ifndef TURNSTILE_BENCH_BENCH_SNAPSHOT_H_
#define TURNSTILE_BENCH_BENCH_SNAPSHOT_H_

#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace turnstile {

// Is this argv entry one of ours (`--json` / `--json=PATH`) rather than a
// flag the bench framework should see?
inline bool IsSnapshotFlag(const char* arg) {
  std::string s = arg == nullptr ? "" : arg;
  return s == "--json" || s.rfind("--json=", 0) == 0;
}

// argv partitioned into snapshot flags and everything else; both halves keep
// argv[0] so they remain valid argument vectors on their own.
struct BenchArgs {
  std::vector<char*> bench;
  std::vector<char*> snapshot;
};

inline BenchArgs SplitSnapshotArgs(int argc, char** argv) {
  BenchArgs out;
  out.bench.push_back(argv[0]);
  out.snapshot.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    (IsSnapshotFlag(argv[i]) ? out.snapshot : out.bench).push_back(argv[i]);
  }
  return out;
}

// Dumps the global metrics registry as pretty JSON when requested via
// `--json[=PATH]` on the command line or TURNSTILE_BENCH_JSON in the
// environment ("1" = stdout, a path = pure-JSON file, keeping stdout free
// for figure output). Call at the end of main(), after the bench has run.
inline bool MaybeDumpMetricsSnapshot(int argc = 0, char** argv = nullptr) {
  return obs::MaybeWriteMetricsSnapshot(argc, argv);
}

}  // namespace turnstile

#endif  // TURNSTILE_BENCH_BENCH_SNAPSHOT_H_
