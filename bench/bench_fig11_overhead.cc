// Reproduces Figure 11: relative run-time of the 27 privacy-managed
// applications over input rates from 2 Hz to 1000 Hz — minimum, median and
// maximum across apps, for selective and exhaustive instrumentation.
//
// Per-message processing cost is *measured* on the real interpreter; the
// end-to-end stream time at each rate follows the §6.2 streaming model (see
// src/flow/workload.h and DESIGN.md §1).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace turnstile {
namespace {

const double kRates[] = {2, 10, 30, 100, 250, 500, 1000};

int Main() {
  int messages = BenchMessageCount();
  std::printf("Figure 11: relative run-time vs input rate (%d messages per run, %zu apps)\n\n",
              messages, static_cast<size_t>(27));
  std::vector<OverheadMeasurement> measurements = MeasureAllOverheads(messages);
  if (measurements.size() != 27) {
    std::fprintf(stderr, "FATAL: expected 27 Part-2 apps, found %zu\n", measurements.size());
    return 1;
  }

  std::printf("%8s | %28s | %28s\n", "", "selective t/t_og", "exhaustive t/t_og");
  std::printf("%8s | %8s %9s %9s | %8s %9s %9s\n", "rate/Hz", "min", "median", "max", "min",
              "median", "max");
  std::printf("---------+------------------------------+------------------------------\n");

  for (double rate : kRates) {
    std::vector<double> selective_rel;
    std::vector<double> exhaustive_rel;
    for (const OverheadMeasurement& m : measurements) {
      selective_rel.push_back(RelativeRuntime(m.selective, m.original, rate));
      exhaustive_rel.push_back(RelativeRuntime(m.exhaustive, m.original, rate));
    }
    auto min_of = [](const std::vector<double>& v) {
      return *std::min_element(v.begin(), v.end());
    };
    auto max_of = [](const std::vector<double>& v) {
      return *std::max_element(v.begin(), v.end());
    };
    std::printf("%8.0f | %8.4f %9.4f %9.4f | %8.4f %9.4f %9.4f\n", rate,
                min_of(selective_rel), Median(selective_rel), max_of(selective_rel),
                min_of(exhaustive_rel), Median(exhaustive_rel), max_of(exhaustive_rel));
  }

  // The paper's headline summary numbers.
  auto rel_at = [&](const OverheadMeasurement& m, bool selective, double rate) {
    return RelativeRuntime(selective ? m.selective : m.exhaustive, m.original, rate);
  };
  std::vector<double> sel30;
  std::vector<double> exh30;
  std::vector<double> sel1000;
  std::vector<double> exh1000;
  double sel30_max = 0;
  double exh30_max = 0;
  for (const OverheadMeasurement& m : measurements) {
    sel30.push_back(rel_at(m, true, 30));
    exh30.push_back(rel_at(m, false, 30));
    sel1000.push_back(rel_at(m, true, 1000));
    exh1000.push_back(rel_at(m, false, 1000));
    sel30_max = std::max(sel30_max, sel30.back());
    exh30_max = std::max(exh30_max, exh30.back());
  }
  int acceptable_sel = 0;
  int acceptable_exh = 0;
  for (const OverheadMeasurement& m : measurements) {
    // "Acceptable" = median overhead below 20% across the rate range (§6.2).
    std::vector<double> sel_rels;
    std::vector<double> exh_rels;
    for (double rate : kRates) {
      sel_rels.push_back(rel_at(m, true, rate));
      exh_rels.push_back(rel_at(m, false, rate));
    }
    acceptable_sel += Median(sel_rels) < 1.20;
    acceptable_exh += Median(exh_rels) < 1.20;
  }

  std::printf("\nHeadline numbers (paper values in brackets):\n");
  std::printf("  worst-case overhead at 30 Hz:   exhaustive %.1f%% [153.8%%] -> selective "
              "%.1f%% [15.8%%]\n",
              100 * (exh30_max - 1), 100 * (sel30_max - 1));
  std::printf("  median overhead at 30 Hz:       selective %.1f%% [2.2%%], exhaustive %.1f%% "
              "[2.7%%]\n",
              100 * (Median(sel30) - 1), 100 * (Median(exh30) - 1));
  std::printf("  median overhead at 1000 Hz:     selective %.1f%% [22.0%%], exhaustive %.1f%% "
              "[26.8%%]\n",
              100 * (Median(sel1000) - 1), 100 * (Median(exh1000) - 1));
  std::printf("  apps with acceptable (<20%%) median overhead: selective %d [22/27], "
              "exhaustive %d [16/27]\n",
              acceptable_sel, acceptable_exh);

  // Attribution pass: monitor-vs-app wall-time split per app, over the whole
  // 61-app corpus (not just the 27 Part-2 apps) — this is where the end-to-end
  // deltas above actually live. Split runs are capped so the full-corpus scan
  // stays a fraction of the interleaved measurement above.
  int split_messages = std::min(messages, 200);
  std::printf("\nDIFT overhead attribution (monitor vs app wall time, %d messages per app):\n",
              split_messages);
  std::printf("%-22s | %10s %10s | %9s\n", "application", "app ms", "monitor ms", "fraction");
  std::printf("-----------------------+-----------------------+----------\n");
  obs::Metrics& metrics = obs::Metrics::Global();
  std::vector<double> fractions;
  double app_total = 0.0;
  double monitor_total = 0.0;
  for (const CorpusApp& app : Corpus()) {
    OverheadSplitMeasurement split = MeasureOverheadSplit(app, split_messages);
    metrics.GetFloatGauge(obs::MetricWithLabel("dift.overhead_fraction", "app", app.name))
        ->Set(split.fraction);
    fractions.push_back(split.fraction);
    app_total += split.app_seconds;
    monitor_total += split.monitor_seconds;
    std::printf("%-22s | %10.2f %10.2f | %8.4f%s\n", split.app.c_str(),
                split.app_seconds * 1e3, split.monitor_seconds * 1e3, split.fraction,
                split.instrumented ? "" : "  (original)");
  }
  double aggregate =
      app_total + monitor_total > 0 ? monitor_total / (app_total + monitor_total) : 0.0;
  metrics.GetFloatGauge("dift.overhead_fraction")->Set(aggregate);
  // The attribution pass runs under the default execution tier, which is the
  // DIFT-fused bytecode VM; publish that explicitly so tier-to-tier overhead
  // comparisons (bench_tier_matrix, CI perf smoke) can key on it.
  metrics.GetFloatGauge(obs::MetricWithLabel("dift.overhead_fraction", "tier", "fused"))
      ->Set(aggregate);
  std::printf("\n  corpus aggregate: monitor %.1f ms / total %.1f ms -> fraction %.4f "
              "(median per app %.4f)\n",
              monitor_total * 1e3, (app_total + monitor_total) * 1e3, aggregate,
              Median(fractions));
  return 0;
}

}  // namespace
}  // namespace turnstile

int main(int argc, char** argv) {
  int rc = turnstile::Main();
  turnstile::MaybeDumpMetricsSnapshot(argc, argv);
  return rc;
}
