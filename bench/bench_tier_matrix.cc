// Execution-tier matrix over the corpus: drives every Part-2 app through the
// deployment path (kRoundTrip: instrument -> print -> re-parse -> re-resolve
// -> compile -> run) under all three execution tiers — tree-walk, call-lowered
// bytecode, and the DIFT-fused bytecode default — and reports per-message
// processing time per tier. Per-tier timing lands in the metrics registry
// (`corpus.tier.{treewalk,bytecode-lowered,bytecode}.*`), so `--json`
// snapshots carry it.
#include <cstdio>

#include "bench/bench_util.h"

namespace turnstile {
namespace {

std::vector<double> MeasureTier(const CorpusApp& app, ExecTier tier, int messages) {
  auto runtime = AppRuntime::Create(app, AppVersion::kRoundTrip, tier);
  if (!runtime.ok()) {
    std::fprintf(stderr, "FATAL: %s setup failed: %s\n", app.name.c_str(),
                 runtime.status().ToString().c_str());
    std::exit(1);
  }
  Rng rng(0xBE11C0DE);
  for (int seq = 0; seq < 20; ++seq) {  // warm-up: caches, compiled chunks
    if (!(*runtime)->DriveMessage(&rng, seq).ok()) {
      std::fprintf(stderr, "FATAL: %s warm-up failed\n", app.name.c_str());
      std::exit(1);
    }
  }
  std::vector<double> proc;
  proc.reserve(static_cast<size_t>(messages));
  for (int seq = 0; seq < messages; ++seq) {
    Stopwatch watch;
    Status status = (*runtime)->DriveMessage(&rng, 100 + seq);
    if (!status.ok()) {
      std::fprintf(stderr, "FATAL: %s message %d failed: %s\n", app.name.c_str(), seq,
                   status.ToString().c_str());
      std::exit(1);
    }
    proc.push_back(watch.ElapsedSeconds());
  }
  return proc;
}

int Main() {
  int messages = BenchMessageCount();
  std::printf("Execution-tier matrix: kRoundTrip per-message processing time "
              "(%d messages per run)\n\n",
              messages);
  std::printf("%-18s | %14s %14s %14s | %8s\n", "application", "treewalk (us)",
              "lowered (us)", "fused (us)", "speedup");
  std::printf("-------------------+----------------------------------------------+---------\n");

  obs::Histogram* hist[3] = {
      obs::Metrics::Global().GetHistogram("corpus.tier.treewalk.proc_seconds"),
      obs::Metrics::Global().GetHistogram("corpus.tier.bytecode-lowered.proc_seconds"),
      obs::Metrics::Global().GetHistogram("corpus.tier.bytecode.proc_seconds"),
  };
  double median_sum[3] = {0.0, 0.0, 0.0};
  int app_count = 0;
  for (const CorpusApp& app : Corpus()) {
    if (app.bucket != CorpusBucket::kTurnstileOnly && app.bucket != CorpusBucket::kBothFind) {
      continue;
    }
    constexpr ExecTier kTiers[] = {ExecTier::kTreeWalk, ExecTier::kBytecodeLowered,
                                   ExecTier::kBytecode};
    double medians[3] = {0.0, 0.0, 0.0};
    for (int t = 0; t < 3; ++t) {
      std::vector<double> proc = MeasureTier(app, kTiers[t], messages);
      for (double seconds : proc) {
        hist[t]->Observe(seconds);
      }
      medians[t] = Median(proc);
      median_sum[t] += medians[t];
    }
    ++app_count;
    // "speedup" = tree-walk over the fused default, the shipping configuration.
    std::printf("%-18s | %14.2f %14.2f %14.2f | %7.2fx\n", app.name.c_str(), medians[0] * 1e6,
                medians[1] * 1e6, medians[2] * 1e6,
                medians[2] > 0 ? medians[0] / medians[2] : 0.0);
  }
  obs::Metrics::Global()
      .GetGauge("corpus.tier.treewalk.median_proc_ns_total")
      ->Set(static_cast<int64_t>(median_sum[0] * 1e9));
  obs::Metrics::Global()
      .GetGauge("corpus.tier.bytecode-lowered.median_proc_ns_total")
      ->Set(static_cast<int64_t>(median_sum[1] * 1e9));
  obs::Metrics::Global()
      .GetGauge("corpus.tier.bytecode.median_proc_ns_total")
      ->Set(static_cast<int64_t>(median_sum[2] * 1e9));
  std::printf("\n%d apps; summed medians: treewalk %.2f us, lowered %.2f us, fused %.2f us "
              "(%.2fx treewalk/fused)\n",
              app_count, median_sum[0] * 1e6, median_sum[1] * 1e6, median_sum[2] * 1e6,
              median_sum[2] > 0 ? median_sum[0] / median_sum[2] : 0.0);

  // Monitor-vs-app attribution per tier: how much of each tier's wall time
  // the DIFT monitor consumes, aggregated over the Part-2 apps.
  int split_messages = std::min(messages, 200);
  constexpr ExecTier kTiers[] = {ExecTier::kTreeWalk, ExecTier::kBytecodeLowered,
                                 ExecTier::kBytecode};
  const char* tier_names[] = {"treewalk", "bytecode-lowered", "bytecode"};
  std::printf("\nDIFT overhead fraction per tier (%d messages per app):\n", split_messages);
  for (int t = 0; t < 3; ++t) {
    double app_total = 0.0;
    double monitor_total = 0.0;
    for (const CorpusApp& app : Corpus()) {
      if (app.bucket != CorpusBucket::kTurnstileOnly && app.bucket != CorpusBucket::kBothFind) {
        continue;
      }
      OverheadSplitMeasurement split = MeasureOverheadSplit(app, split_messages, kTiers[t]);
      app_total += split.app_seconds;
      monitor_total += split.monitor_seconds;
    }
    double fraction =
        app_total + monitor_total > 0 ? monitor_total / (app_total + monitor_total) : 0.0;
    obs::Metrics::Global()
        .GetFloatGauge(obs::MetricWithLabel("dift.overhead_fraction", "tier", tier_names[t]))
        ->Set(fraction);
    std::printf("  %-17s monitor %.1f ms / total %.1f ms -> fraction %.4f\n", tier_names[t],
                monitor_total * 1e3, (app_total + monitor_total) * 1e3, fraction);
  }
  return 0;
}

}  // namespace
}  // namespace turnstile

int main(int argc, char** argv) {
  int rc = turnstile::Main();
  turnstile::MaybeDumpMetricsSnapshot(argc, argv);
  return rc;
}
