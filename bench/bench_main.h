// Drop-in replacement for BENCHMARK_MAIN() that honours the repo-wide bench
// contract: `--json` on the command line or TURNSTILE_BENCH_JSON=1 dumps a
// metrics-registry snapshot after the run (see bench_util.h, which the
// google-benchmark micro benches do not include to keep their link
// dependencies minimal).
#ifndef TURNSTILE_BENCH_BENCH_MAIN_H_
#define TURNSTILE_BENCH_BENCH_MAIN_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/obs/metrics.h"

namespace turnstile {

inline int BenchmarkMainWithMetricsSnapshot(int argc, char** argv) {
  bool dump = false;
  std::vector<char*> bench_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      dump = true;
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  const char* env = std::getenv("TURNSTILE_BENCH_JSON");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') {
    dump = true;
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (dump) {
    std::printf("%s\n", obs::Metrics::Global().ToJson().Dump(/*pretty=*/true).c_str());
  }
  return 0;
}

}  // namespace turnstile

#define TURNSTILE_BENCHMARK_MAIN()                                  \
  int main(int argc, char** argv) {                                 \
    return turnstile::BenchmarkMainWithMetricsSnapshot(argc, argv); \
  }

#endif  // TURNSTILE_BENCH_BENCH_MAIN_H_
