// Drop-in replacement for BENCHMARK_MAIN() that honours the repo-wide bench
// contract: `--json[=PATH]` on the command line or TURNSTILE_BENCH_JSON in
// the environment dumps a metrics-registry snapshot after the run (see
// obs::MaybeWriteMetricsSnapshot; bench_util.h is not included here to keep
// the google-benchmark micro benches' link dependencies minimal).
#ifndef TURNSTILE_BENCH_BENCH_MAIN_H_
#define TURNSTILE_BENCH_BENCH_MAIN_H_

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/obs/metrics.h"

namespace turnstile {

inline int BenchmarkMainWithMetricsSnapshot(int argc, char** argv) {
  // Keep the snapshot flags away from google-benchmark's argv parsing; the
  // filtered-out ones are replayed to the snapshot writer afterwards.
  std::vector<char*> bench_args = {argv[0]};
  std::vector<char*> snapshot_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i] == nullptr ? "" : argv[i];
    if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      snapshot_args.push_back(argv[i]);
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  obs::MaybeWriteMetricsSnapshot(static_cast<int>(snapshot_args.size()),
                                 snapshot_args.data());
  return 0;
}

}  // namespace turnstile

#define TURNSTILE_BENCHMARK_MAIN()                                  \
  int main(int argc, char** argv) {                                 \
    return turnstile::BenchmarkMainWithMetricsSnapshot(argc, argv); \
  }

#endif  // TURNSTILE_BENCH_BENCH_MAIN_H_
