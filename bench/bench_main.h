// Drop-in replacement for BENCHMARK_MAIN() that honours the repo-wide bench
// contract: `--json[=PATH]` on the command line or TURNSTILE_BENCH_JSON in
// the environment dumps a metrics-registry snapshot after the run. All of
// the flag plumbing lives in bench_snapshot.h, shared with the table/figure
// bench mains.
#ifndef TURNSTILE_BENCH_BENCH_MAIN_H_
#define TURNSTILE_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include "bench/bench_snapshot.h"

namespace turnstile {

inline int BenchmarkMainWithMetricsSnapshot(int argc, char** argv) {
  // Keep the snapshot flags away from google-benchmark's argv parsing; the
  // filtered-out ones are replayed to the snapshot writer afterwards.
  BenchArgs args = SplitSnapshotArgs(argc, argv);
  int bench_argc = static_cast<int>(args.bench.size());
  benchmark::Initialize(&bench_argc, args.bench.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.bench.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  MaybeDumpMetricsSnapshot(static_cast<int>(args.snapshot.size()), args.snapshot.data());
  return 0;
}

}  // namespace turnstile

#define TURNSTILE_BENCHMARK_MAIN()                                  \
  int main(int argc, char** argv) {                                 \
    return turnstile::BenchmarkMainWithMetricsSnapshot(argc, argv); \
  }

#endif  // TURNSTILE_BENCH_BENCH_MAIN_H_
