// Microbenchmarks and ablations for the static pipeline (google-benchmark):
//   - Turnstile analyzer vs QueryDL on the same programs, by program size —
//     the architectural speed gap of §6.1 at micro scale
//   - instrumentation cost (selective vs exhaustive rewriting)
//   - injected-call-count ablation: how much work selective instrumentation
//     avoids (reported as counters)
#include <benchmark/benchmark.h>

#include "bench/bench_main.h"

#include "src/analysis/analyzer.h"
#include "src/baseline/querydl.h"
#include "src/corpus/corpus.h"
#include "src/instrument/instrumentor.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"

namespace turnstile {
namespace {

// Synthesizes a program with `n` handler blocks, one sensitive flow each.
std::string SyntheticProgram(int n) {
  std::string source = "let net = require(\"net\");\nlet fs = require(\"fs\");\n"
                       "let socket = net.connect(1, \"host\");\n";
  for (int i = 0; i < n; ++i) {
    std::string id = std::to_string(i);
    source += "function helper" + id + "(x) { return \"h" + id + ":\" + x; }\n";
    source += "socket.on(\"data\", chunk => {\n";
    source += "  let derived" + id + " = helper" + id + "(chunk) + " + id + ";\n";
    source += "  fs.writeFileSync(\"/out/" + id + "\", derived" + id + ");\n";
    source += "});\n";
  }
  return source;
}

void BM_TurnstileAnalyze(benchmark::State& state) {
  auto program = ParseProgram(SyntheticProgram(static_cast<int>(state.range(0))));
  if (!program.ok()) {
    std::abort();
  }
  for (auto _ : state) {
    auto result = AnalyzeProgram(*program);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetLabel(std::to_string(program->node_count) + " ast nodes");
}
BENCHMARK(BM_TurnstileAnalyze)->Arg(2)->Arg(8)->Arg(32)->Arg(96);

void BM_QueryDlAnalyze(benchmark::State& state) {
  auto program = ParseProgram(SyntheticProgram(static_cast<int>(state.range(0))));
  if (!program.ok()) {
    std::abort();
  }
  for (auto _ : state) {
    auto result = QueryDlAnalyze(*program);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetLabel(std::to_string(program->node_count) + " ast nodes");
}
BENCHMARK(BM_QueryDlAnalyze)->Arg(2)->Arg(8)->Arg(32)->Arg(96);

void BM_ParseProgram(benchmark::State& state) {
  std::string source = SyntheticProgram(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto program = ParseProgram(source);
    benchmark::DoNotOptimize(program.ok());
  }
}
BENCHMARK(BM_ParseProgram)->Arg(8)->Arg(96);

struct InstrumentFixture {
  Program program;
  std::unique_ptr<Policy> policy;
  AnalysisResult analysis;

  explicit InstrumentFixture(int n) {
    auto parsed = ParseProgram(SyntheticProgram(n));
    auto parsed_policy =
        Policy::FromJsonText(R"json({"labellers": {}, "rules": ["A -> B"]})json");
    auto analyzed = parsed.ok() ? AnalyzeProgram(*parsed) : ParseError("x");
    if (!parsed.ok() || !parsed_policy.ok() || !analyzed.ok()) {
      std::abort();
    }
    program = std::move(parsed).value();
    policy = std::move(parsed_policy).value();
    analysis = std::move(analyzed).value();
  }
};

void BM_InstrumentSelective(benchmark::State& state) {
  InstrumentFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result = InstrumentProgram(f.program, *f.policy, InstrumentMode::kSelective,
                                    &f.analysis);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_InstrumentSelective)->Arg(8)->Arg(32);

void BM_InstrumentExhaustive(benchmark::State& state) {
  InstrumentFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result = InstrumentProgram(f.program, *f.policy, InstrumentMode::kExhaustive,
                                    &f.analysis);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_InstrumentExhaustive)->Arg(8)->Arg(32);

// Ablation: injected tracker-call counts per corpus app, selective vs
// exhaustive. Reported as counters on a single-iteration benchmark so it
// appears in the standard bench output.
void BM_AblationInjectedCalls(benchmark::State& state) {
  int64_t selective_calls = 0;
  int64_t exhaustive_calls = 0;
  int64_t apps = 0;
  for (auto _ : state) {
    selective_calls = exhaustive_calls = apps = 0;
    for (const CorpusApp& app : Corpus()) {
      if (app.bucket != CorpusBucket::kTurnstileOnly &&
          app.bucket != CorpusBucket::kBothFind) {
        continue;
      }
      auto program = ParseProgram(app.source, app.name + ".js");
      auto policy = Policy::FromJsonText(app.policy_json);
      auto analysis = program.ok() ? AnalyzeProgram(*program) : ParseError("x");
      if (!program.ok() || !policy.ok() || !analysis.ok()) {
        std::abort();
      }
      auto selective = InstrumentProgram(*program, **policy, InstrumentMode::kSelective,
                                         &*analysis);
      auto exhaustive = InstrumentProgram(*program, **policy, InstrumentMode::kExhaustive,
                                          &*analysis);
      if (!selective.ok() || !exhaustive.ok()) {
        std::abort();
      }
      auto total = [](const InstrumentStats& s) {
        return s.binary_ops_wrapped + s.invokes_wrapped + s.labels_injected +
               s.tracks_injected;
      };
      selective_calls += total(selective->stats);
      exhaustive_calls += total(exhaustive->stats);
      ++apps;
    }
  }
  state.counters["apps"] = static_cast<double>(apps);
  state.counters["selective_calls"] = static_cast<double>(selective_calls);
  state.counters["exhaustive_calls"] = static_cast<double>(exhaustive_calls);
  state.counters["reduction"] =
      1.0 - static_cast<double>(selective_calls) / static_cast<double>(exhaustive_calls);
}
BENCHMARK(BM_AblationInjectedCalls)->Iterations(1);

}  // namespace
}  // namespace turnstile

TURNSTILE_BENCHMARK_MAIN()
