// Reproduces Figure 12: per-application relative run-times (selective vs
// exhaustive) at 30 Hz and 250 Hz — including the paper's call-outs: modbus
// and nlp.js at 30 Hz; amazon-echo, dialogflow and watson at 250 Hz.
#include <cstdio>

#include "bench/bench_util.h"

namespace turnstile {
namespace {

int Main() {
  int messages = BenchMessageCount();
  std::printf("Figure 12: per-application relative run-times at 30 Hz and 250 Hz "
              "(%d messages per run)\n\n",
              messages);
  std::vector<OverheadMeasurement> measurements = MeasureAllOverheads(messages);

  std::printf("%-18s | %10s %10s | %10s %10s\n", "", "30 Hz", "", "250 Hz", "");
  std::printf("%-18s | %10s %10s | %10s %10s\n", "application", "selective", "exhaustive",
              "selective", "exhaustive");
  std::printf("-------------------+-----------------------+----------------------\n");
  for (const OverheadMeasurement& m : measurements) {
    double s30 = RelativeRuntime(m.selective, m.original, 30);
    double e30 = RelativeRuntime(m.exhaustive, m.original, 30);
    double s250 = RelativeRuntime(m.selective, m.original, 250);
    double e250 = RelativeRuntime(m.exhaustive, m.original, 250);
    std::printf("%-18s | %10.4f %10.4f | %10.4f %10.4f\n", m.app.c_str(), s30, e30, s250,
                e250);
  }

  std::printf("\nCall-outs (paper values in brackets):\n");
  for (const char* name : {"modbus", "nlp.js"}) {
    for (const OverheadMeasurement& m : measurements) {
      if (m.app == name) {
        std::printf("  %-12s at 30 Hz:  selective %+.1f%% vs exhaustive %+.1f%%\n", name,
                    100 * (RelativeRuntime(m.selective, m.original, 30) - 1),
                    100 * (RelativeRuntime(m.exhaustive, m.original, 30) - 1));
      }
    }
  }
  std::printf("  [paper: modbus 15.8%% selective; nlp.js 0.4%% selective at 30 Hz]\n");
  for (const char* name : {"amazon-echo", "dialogflow", "watson", "nlp.js"}) {
    for (const OverheadMeasurement& m : measurements) {
      if (m.app == name) {
        std::printf("  %-12s at 250 Hz: selective %+.1f%% vs exhaustive %+.1f%%\n", name,
                    100 * (RelativeRuntime(m.selective, m.original, 250) - 1),
                    100 * (RelativeRuntime(m.exhaustive, m.original, 250) - 1));
      }
    }
  }
  std::printf("  [paper: nlp.js 980.2%% exhaustive vs 2.5%% selective at 250 Hz]\n");
  return 0;
}

}  // namespace
}  // namespace turnstile

int main(int argc, char** argv) {
  int rc = turnstile::Main();
  turnstile::MaybeDumpMetricsSnapshot(argc, argv);
  return rc;
}
