// Corpus bucket A, part 1: applications whose privacy-sensitive dataflows
// Turnstile detects but QueryDL does not — Node-RED input flows, dynamic
// dispatch, closures and promise chains (§6.1: 22 such applications).
#include "src/corpus/corpus.h"
#include "src/corpus/corpus_internal.h"

namespace turnstile {

void AppendTurnstileOnlyAppsPart1(std::vector<CorpusApp>* apps) {
  // -------------------------------------------------------------------- 1
  apps->push_back({
      "camera-motion", "camera", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let fs = require("fs");
  function MotionNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let exposureBlob = "{";
    for (let mb = 0; mb < 924; mb++) {
      exposureBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    exposureBlob = exposureBlob + '"end":0}';
    node.on("input", msg => {
      // Exposure-table housekeeping (not privacy-sensitive).
      let exposureTable = JSON.parse(exposureBlob);
      let exposureSize = Object.keys(exposureTable).length;
      let frame = msg.payload;
      let report = describeMotion(frame);
      fs.writeFileSync("/motion/" + msg.seq, frame);
      msg.payload = report;
      node.send(msg);
    });
  }
  function describeMotion(frame) {
    let level = 0;
    for (let i = 0; i < frame.length; i = i + 1) {
      level = (level * 31 + frame.charCodeAt(i)) % 9973;
    }
    return "motion level " + level + " in " + frame;
  }
  RED.nodes.registerType("camera-motion", MotionNode);
};
)",
      R"([{ "id": "m1", "type": "camera-motion", "wires": [] }])",
      "node", "m1", "input",
      R"({ "payload": "$frame", "seq": "$seq" })",
      StdPolicy("msg"),
      2,  // input -> fs write, input -> node.send
      "plain Node-RED input flow; helper function on the path"});

  // -------------------------------------------------------------------- 2
  apps->push_back({
      "face-gate", "camera", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let deepstack = require("deepstack");
  let mqtt = require("mqtt");
  function FaceGateNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let client = mqtt.connect("mqtt://locks.local");
    let lensBlob = "{";
    for (let mb = 0; mb < 792; mb++) {
      lensBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    lensBlob = lensBlob + '"end":0}';
    node.on("input", msg => {
      // Lens-correction pass (static tables).
      let lensTable = JSON.parse(lensBlob);
      let lensSize = Object.keys(lensTable).length;
      deepstack.faceRecognition(msg.payload, config.server, 0.7).then(result => {
        let known = result.predictions.filter(p => p.confidence > 0.75);
        if (known.length > 0) {
          client.publish("door/front", "OPEN:" + known[0].userid);
        }
        msg.faces = result.predictions;
        node.send(msg);
      });
    });
  }
  RED.nodes.registerType("face-gate", FaceGateNode);
};
)",
      R"([{ "id": "fg", "type": "face-gate", "config": { "server": "http://ds.local" },
           "wires": [] }])",
      "node", "fg", "input",
      R"({ "payload": "$frame" })",
      StdPolicy("msg"),
      4,  // input->publish, input->send, recognition->publish, recognition->send
      "promise chain (deepstack) feeding an MQTT sink"});

  // -------------------------------------------------------------------- 3
  apps->push_back({
      "sensor-logger", "sensor", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let fs = require("fs");
  function LoggerNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let lines = [];
    let journalBlob = "{";
    for (let mb = 0; mb < 850; mb++) {
      journalBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    journalBlob = journalBlob + '"end":0}';
    node.on("input", msg => {
      // Journal-rotation metadata refresh.
      let journalTable = JSON.parse(journalBlob);
      let journalSize = Object.keys(journalTable).length;
      let line = msg.topic + "=" + msg.payload;
      let check = 0;
      for (let i = 0; i < line.length; i = i + 4) {
        check = (check + line.charCodeAt(i)) % 65521;
      }
      lines.push(line + "#" + check);
      if (lines.length >= 3) {
        fs.appendFile("/sensors.log", lines.join("\n"), () => {});
        lines = [];
      }
    });
  }
  RED.nodes.registerType("sensor-logger", LoggerNode);
};
)",
      R"([{ "id": "lg", "type": "sensor-logger", "wires": [] }])",
      "node", "lg", "input",
      R"({ "payload": "$json", "topic": "$topic" })",
      StdPolicy("msg"),
      1,  // input -> fs append (via batching array)
      "batched sink writes through an array accumulator"});

  // -------------------------------------------------------------------- 4
  apps->push_back({
      "mqtt-bridge", "gateway", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let mqtt = require("mqtt");
  function BridgeNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let client = mqtt.connect(config.broker);
    client.subscribe("upstream/#");
    let retainBlob = "{";
    for (let mb = 0; mb < 858; mb++) {
      retainBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    retainBlob = retainBlob + '"end":0}';
    client.on("message", (topic, payload) => {
      node.send({ topic: topic, payload: payload });
    });
    node.on("input", msg => {
      // Retransmission-window bookkeeping (runtime state, not data).
      let retainTable = JSON.parse(retainBlob);
      let retainSize = Object.keys(retainTable).length;
      let stamp = 0;
      for (let i = 0; i < msg.payload.length; i = i + 1) {
        stamp = (stamp * 17 + msg.payload.charCodeAt(i)) % 99991;
      }
      client.publish("downstream/" + msg.topic, msg.payload + "|s" + stamp);
    });
  }
  RED.nodes.registerType("mqtt-bridge", BridgeNode);
};
)",
      R"([{ "id": "br", "type": "mqtt-bridge", "config": { "broker": "mqtt://hub" },
           "wires": [] }])",
      "node", "br", "input",
      R"({ "payload": "$json", "topic": "$topic" })",
      StdPolicy("msg"),
      2,  // broker message -> node.send; input -> publish
      "bidirectional bridge: two sources, two sinks"});

  // -------------------------------------------------------------------- 5
  apps->push_back({
      "email-alert", "notification", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let nodemailer = require("nodemailer");
  function AlertNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let transport = nodemailer.createTransport({ service: "smtp" });
    let throttleBlob = "{";
    for (let mb = 0; mb < 924; mb++) {
      throttleBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    throttleBlob = throttleBlob + '"end":0}';
    node.on("input", msg => {
      // Alert-throttle window maintenance.
      let throttleTable = JSON.parse(throttleBlob);
      let throttleSize = Object.keys(throttleTable).length;
      if (msg.level > 7) {
        let body = "alert from " + msg.device + ": " + msg.payload;
        transport.sendMail({ to: config.admin, text: body }, (err, info) => {
          node.send({ payload: "alerted", detail: body });
        });
      }
    });
  }
  RED.nodes.registerType("email-alert", AlertNode);
};
)",
      R"([{ "id": "al", "type": "email-alert", "config": { "admin": "ops@example.com" },
           "wires": [] }])",
      "node", "al", "input",
      R"({ "payload": "$sentence", "device": "$id", "level": "$num" })",
      StdPolicy("msg"),
      2,  // input -> sendMail, input -> node.send
      "conditional sink inside a callback"});

  // -------------------------------------------------------------------- 6
  apps->push_back({
      "telemetry-post", "cloud", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let http = require("http");
  function PostNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let retryBlob = "{";
    for (let mb = 0; mb < 990; mb++) {
      retryBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    retryBlob = retryBlob + '"end":0}';
    node.on("input", msg => {
      // Connection retry-budget bookkeeping.
      let retryTable = JSON.parse(retryBlob);
      let retrySize = Object.keys(retryTable).length;
      let req = http.request({ host: config.host, method: "POST" });
      let body = JSON.stringify({ device: msg.device, value: msg.payload });
      req.write(body);
      req.end();
      node.send(msg);
    });
  }
  RED.nodes.registerType("telemetry-post", PostNode);
};
)",
      R"([{ "id": "tp", "type": "telemetry-post", "config": { "host": "ingest.example" },
           "wires": [] }])",
      "node", "tp", "input",
      R"({ "payload": "$num", "device": "$id" })",
      StdPolicy("msg"),
      2,  // input -> http write, input -> node.send
      "per-message HTTP request; tag flows through a chained call"});

  // -------------------------------------------------------------------- 7
  apps->push_back({
      "dispatch-hub", "gateway", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let fs = require("fs");
  let mqtt = require("mqtt");
  function HubNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let client = mqtt.connect("mqtt://site");
    let routeBlob = "{";
    for (let mb = 0; mb < 858; mb++) {
      routeBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    routeBlob = routeBlob + '"end":0}';
    let routes = {
      archive: msg => { fs.writeFileSync("/hub/" + msg.seq, msg.payload); },
      broadcast: msg => { client.publish("hub/out", msg.payload); },
      forward: msg => { node.send(msg); }
    };
    node.on("input", msg => {
      // Routing-metrics decay.
      let routeTable = JSON.parse(routeBlob);
      let routeSize = Object.keys(routeTable).length;
      let guard = 0;
      for (let i = 0; i < msg.payload.length; i = i + 4) {
        guard = (guard * 13 + msg.payload.charCodeAt(i)) % 65521;
      }
      msg.guard = guard;
      let kind = msg.route ? msg.route : "forward";
      routes[kind](msg);
    });
  }
  RED.nodes.registerType("dispatch-hub", HubNode);
};
)",
      R"([{ "id": "hub", "type": "dispatch-hub", "wires": [] }])",
      "node", "hub", "input",
      R"({ "payload": "$frame", "seq": "$seq", "route": "archive" })",
      StdPolicy("msg"),
      3,  // input -> fs, input -> publish, input -> send (all via routes[kind])
      "dynamic bracket dispatch — the over-approximation pattern"});

  // -------------------------------------------------------------------- 8
  apps->push_back({
      "closure-router", "gateway", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let net = require("net");
  function RouterNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let uplink = net.connect(9000, config.collector);
    function makeWriter(target, prefix) {
      return data => { target.write(prefix + data); };
    }
    let emit = makeWriter(uplink, "route:");
    let keepaliveBlob = "{";
    for (let mb = 0; mb < 924; mb++) {
      keepaliveBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    keepaliveBlob = keepaliveBlob + '"end":0}';
    node.on("input", msg => {
      // Uplink keepalive accounting.
      let keepaliveTable = JSON.parse(keepaliveBlob);
      let keepaliveSize = Object.keys(keepaliveTable).length;
      let seal = 0;
      for (let i = 0; i < msg.payload.length; i = i + 4) {
        seal = (seal + msg.payload.charCodeAt(i)) % 46337;
      }
      emit(msg.payload + ":" + seal);
      node.send(msg);
    });
  }
  RED.nodes.registerType("closure-router", RouterNode);
};
)",
      R"([{ "id": "rt", "type": "closure-router",
           "config": { "collector": "collector.local" }, "wires": [] }])",
      "node", "rt", "input",
      R"({ "payload": "$json" })",
      StdPolicy("msg"),
      2,  // input -> socket.write (via closure), input -> send
      "closure factory captures the socket; sink reached through it"});

  // -------------------------------------------------------------------- 9
  apps->push_back({
      "sqlite-history", "storage", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let sqlite = require("sqlite3");
  function HistoryNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let db = new sqlite.Database(config.path);
    let compactBlob = "{";
    for (let mb = 0; mb < 924; mb++) {
      compactBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    compactBlob = compactBlob + '"end":0}';
    node.on("input", msg => {
      // Compaction scheduling.
      let compactTable = JSON.parse(compactBlob);
      let compactSize = Object.keys(compactTable).length;
      let row = [msg.topic, msg.payload, msg.seq];
      db.run('INSERT INTO history VALUES (?, ?, ?)', row, err => {
        node.send({ payload: "stored", rows: 1 });
      });
    });
  }
  RED.nodes.registerType("sqlite-history", HistoryNode);
};
)",
      R"([{ "id": "hs", "type": "sqlite-history", "config": { "path": "/var/hist.db" },
           "wires": [] }])",
      "node", "hs", "input",
      R"({ "payload": "$sentence", "topic": "$topic", "seq": "$seq" })",
      StdPolicy("msg"),
      1,  // input -> db.run
      "database sink with parameter array"});

  // ------------------------------------------------------------------- 10
  apps->push_back({
      "voice-intent", "voice", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let http = require("http");
  function IntentNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let hotwordBlob = "{";
    for (let mb = 0; mb < 858; mb++) {
      hotwordBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    hotwordBlob = hotwordBlob + '"end":0}';
    function classify(text) {
      let words = text.split(" ");
      let verb = words.length > 0 ? words[0] : "unknown";
      let score = 0;
      for (let w of words) {
        score = (score * 7 + w.length) % 4093;
      }
      return { intent: verb, confidence: words.length > 2 ? 0.9 : 0.4,
               score: score, text: text };
    }
    node.on("input", msg => {
      // Hotword model refresh (static tables).
      let hotwordTable = JSON.parse(hotwordBlob);
      let hotwordSize = Object.keys(hotwordTable).length;
      let result = classify(msg.payload);
      let req = http.request({ host: "assistant.api", method: "POST" });
      req.end(JSON.stringify(result));
      msg.intent = result.intent;
      node.send(msg);
    });
  }
  RED.nodes.registerType("voice-intent", IntentNode);
};
)",
      R"([{ "id": "vi", "type": "voice-intent", "wires": [] }])",
      "node", "vi", "input",
      R"({ "payload": "$sentence" })",
      StdPolicy("msg"),
      2,  // input -> http end, input -> send
      "text classification helper on the sensitive path"});

  // ------------------------------------------------------------------- 11
  apps->push_back({
      "smart-meter", "sensor", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let fs = require("fs");
  function MeterNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let window = [];
    let tariffBlob = "{";
    for (let mb = 0; mb < 990; mb++) {
      tariffBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    tariffBlob = tariffBlob + '"end":0}';
    node.on("input", msg => {
      // Tariff-table refresh.
      let tariffTable = JSON.parse(tariffBlob);
      let tariffSize = Object.keys(tariffTable).length;
      window.push(msg.payload);
      if (window.length > 12) {
        window.shift();
      }
      let sum = window.reduce((a, b) => a + b, 0);
      let avg = sum / window.length;
      msg.average = avg;
      fs.writeFileSync("/meter/latest.json", JSON.stringify({ avg: avg, n: window.length }));
      node.send(msg);
    });
  }
  RED.nodes.registerType("smart-meter", MeterNode);
};
)",
      R"([{ "id": "sm", "type": "smart-meter", "wires": [] }])",
      "node", "sm", "input",
      R"({ "payload": "$num" })",
      StdPolicy("msg"),
      2,  // input -> fs (via window/avg), input -> send
      "sliding-window aggregation with reduce"});
}

}  // namespace turnstile
