// Harness that runs corpus applications: original, selectively-managed or
// exhaustively-managed (§6.2's three versions), feeding generated workload
// messages and measuring per-message processing cost.
#ifndef TURNSTILE_SRC_CORPUS_DRIVER_H_
#define TURNSTILE_SRC_CORPUS_DRIVER_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/dift/tracker.h"
#include "src/flow/engine.h"
#include "src/ifc/policy.h"
#include "src/interp/interp.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace turnstile {

// kRoundTrip is kSelective with the instrumented tree printed to source,
// re-parsed and re-resolved before loading — the deployment path, where the
// rewritten app ships as text rather than as an in-memory AST.
enum class AppVersion { kOriginal, kSelective, kExhaustive, kRoundTrip };

// A live, runnable instance of a corpus application.
class AppRuntime {
 public:
  // Parses, (optionally) analyzes + instruments, loads the module into a
  // fresh interpreter/flow engine, instantiates the flow, and installs the
  // framework-injected runtime objects bucket-D apps rely on. `tier` pins the
  // execution tier; nullopt keeps the interpreter's default (bytecode, unless
  // TURNSTILE_EXEC_TIER overrides it). `context` binds the instance to an
  // explicit RuntimeContext (null = the process default); it must outlive the
  // returned runtime. `shared_policy` supplies an already-parsed policy to
  // instrument against instead of re-parsing app.policy_json — the fleet
  // runtime passes one Policy to every same-app instance on a shard so they
  // share its LabelSetPool and RuleGraph memo caches. Sharing is safe only
  // among instances driven by the same thread (Policy caches are not
  // synchronized); ignored for kOriginal, which carries no policy.
  static Result<std::unique_ptr<AppRuntime>> Create(const CorpusApp& app, AppVersion version,
                                                    std::optional<ExecTier> tier = std::nullopt,
                                                    RuntimeContext* context = nullptr,
                                                    std::shared_ptr<Policy> shared_policy = nullptr);

  // Delivers one generated message through the app's entry point and drains
  // the event loop. Returns an error if the app throws. Equivalent to
  // GenerateMessage + InjectValue.
  Status DriveMessage(Rng* rng, int seq);

  // Delivers an already-built message value through the app's entry point and
  // drains the event loop. Node entries go through the flow engine's mailbox
  // (PostInput + PumpMailbox), so a delivery arriving while this instance is
  // mid-pump — e.g. routed in by a fleet terminal sink — queues instead of
  // re-entering the interpreter.
  Status InjectValue(Value msg);

  // Number of statements/expressions evaluated so far — the deterministic
  // work metric.
  uint64_t eval_count() const { return interp_->eval_count(); }

  Interpreter& interp() { return *interp_; }
  FlowEngine& engine() { return *engine_; }
  DiftTracker* tracker() { return tracker_.get(); }  // null for kOriginal
  // The policy this instance was instrumented against (null for kOriginal).
  // Same-app instances created with a shared_policy return the same pointer.
  const std::shared_ptr<Policy>& policy() const { return policy_; }
  const CorpusApp& app() const { return *app_; }
  // Root of the program actually loaded (post-instrumentation; for kRoundTrip
  // the re-parsed tree). Compiled-chunk caches live on its nodes, so tools
  // can disassemble exactly what this runtime executes.
  const NodePtr& program_root() const { return program_root_; }

 private:
  AppRuntime() = default;

  const CorpusApp* app_ = nullptr;
  std::unique_ptr<Interpreter> interp_;
  std::unique_ptr<FlowEngine> engine_;
  std::shared_ptr<Policy> policy_;
  std::unique_ptr<DiftTracker> tracker_;
  NodePtr program_root_;
  Json message_template_;
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_CORPUS_DRIVER_H_
