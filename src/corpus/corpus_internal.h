// Shared helpers for the corpus data files. Internal to src/corpus.
#ifndef TURNSTILE_SRC_CORPUS_CORPUS_INTERNAL_H_
#define TURNSTILE_SRC_CORPUS_CORPUS_INTERNAL_H_

#include <string>

#include "src/support/strings.h"

namespace turnstile {

// The placeholder-label policy used across the run-time evaluation (§6.2:
// "we generated placeholder labels ... such as Alpha and Beta"). The input
// message is labelled by content; sinks are left unlabelled (fail-open), so
// the measurement captures pure tracking overhead, not enforcement aborts.
inline std::string StdPolicy(const std::string& object) {
  std::string policy = R"json({
    "labellers": {
      "inputLabel": { "payload": {
        "$fn": "p => (String(p).includes(\"employee\") ? \"Alpha\" : \"Beta\")" } }
    },
    "rules": ["Alpha -> Beta", "Beta -> Gamma"],
    "injections": [{ "object": "OBJ", "labeller": "inputLabel" }]
  })json";
  return StrReplaceAll(policy, "OBJ", object);
}

// Policy for apps whose tainted value is a bare string parameter.
inline std::string BarePolicy(const std::string& object) {
  std::string policy = R"json({
    "labellers": {
      "inputLabel": {
        "$fn": "p => (String(p).includes(\"employee\") ? \"Alpha\" : \"Beta\")" }
    },
    "rules": ["Alpha -> Beta", "Beta -> Gamma"],
    "injections": [{ "object": "OBJ", "labeller": "inputLabel" }]
  })json";
  return StrReplaceAll(policy, "OBJ", object);
}

}  // namespace turnstile

#endif  // TURNSTILE_SRC_CORPUS_CORPUS_INTERNAL_H_
