// Corpus bucket D: 26 applications with real privacy-sensitive dataflows that
// BOTH analyzers miss (§6.1's most common failure: data exchanged through
// framework APIs such as RED.httpNode, whose nature is assigned dynamically
// by the Node-RED runtime and cannot be inferred statically).
//
// The miss patterns used, mirroring the paper's discussion:
//   - RED.httpNode.on("request", (req, res) => ...)   [dynamically-typed server]
//   - RED.settings.<x> carrying endpoint objects injected at run time
//   - node.context().global — runtime-shared state channels
#include "src/corpus/corpus.h"
#include "src/corpus/corpus_internal.h"

namespace turnstile {

namespace {

// Builds the standard two-arg HTTP entry template used by the driver for
// red.httpNode applications.
constexpr const char* kHttpTemplate = R"({ "body": "$json", "url": "/api" })";

}  // namespace

void AppendBothMissApps(std::vector<CorpusApp>* apps) {
  // ---------------------------------------------------------------- D1
  apps->push_back({
      "http-echo-admin", "dashboard", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  RED.httpNode.on("request", (req, res) => {
    res.end("echo:" + req.body);
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      1, "request body echoed to the response"});

  // ---------------------------------------------------------------- D2
  apps->push_back({
      "http-frame-upload", "camera", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let fs = require("fs");
  RED.httpNode.on("request", (req, res) => {
    fs.writeFileSync("/uploads/frame.bin", req.body);
    res.end("stored");
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      1, "uploaded frame written to disk; source unrecognized"});

  // ---------------------------------------------------------------- D3
  apps->push_back({
      "http-command-relay", "home", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let mqtt = require("mqtt");
  let client = mqtt.connect("mqtt://home");
  RED.httpNode.on("request", (req, res) => {
    client.publish("commands/web", req.body);
    res.end("ok");
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      1, "web command republished over MQTT"});

  // ---------------------------------------------------------------- D4
  apps->push_back({
      "http-query-log", "dashboard", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let sqlite = require("sqlite3");
  let db = new sqlite.Database("/var/web.db");
  RED.httpNode.on("request", (req, res) => {
    db.run('INSERT INTO hits VALUES (?)', [req.url + "|" + req.body]);
    res.end("logged");
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      1, "request details recorded in a database"});

  // ---------------------------------------------------------------- D5
  apps->push_back({
      "settings-exporter", "utility", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  function ExportNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    node.on("input", msg => {
      // RED.settings.uplink is injected by the hosting runtime; statically
      // it has no type, so the write below is invisible to both tools.
      RED.settings.uplink.push(msg.payload);
    });
  }
  RED.nodes.registerType("settings-exporter", ExportNode);
};
)",
      R"([{ "id": "se", "type": "settings-exporter", "wires": [] }])",
      "node", "se", "input", R"({ "payload": "$json" })", StdPolicy("msg"),
      1, "sink is a runtime-injected settings object"});

  // ---------------------------------------------------------------- D6
  apps->push_back({
      "http-badge-lookup", "access", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let badges = { b1: "alice", b7: "bob" };
  RED.httpNode.on("request", (req, res) => {
    let owner = badges[req.body];
    res.end(owner ? "badge of " + owner : "unknown badge " + req.body);
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      1, "badge id reflected into the response"});

  // ---------------------------------------------------------------- D7
  apps->push_back({
      "http-sensor-feed", "sensor", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let fs = require("fs");
  let readings = [];
  RED.httpNode.on("request", (req, res) => {
    readings.push(req.body);
    if (readings.length >= 4) {
      fs.appendFile("/feed/batch.log", readings.join(";"), () => {});
      readings = [];
    }
    res.end("accepted " + readings.length);
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      2, "batched disk write + reflected count"});

  // ---------------------------------------------------------------- D8
  apps->push_back({
      "context-broadcaster", "gateway", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  function BroadcastNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    node.on("input", msg => {
      // The shared bus object is placed into settings by another flow at
      // run time — a channel neither analyzer models.
      let bus = RED.settings.sharedBus;
      bus.emitTo("displays", msg.payload);
    });
  }
  RED.nodes.registerType("context-broadcaster", BroadcastNode);
};
)",
      R"([{ "id": "cb", "type": "context-broadcaster", "wires": [] }])",
      "node", "cb", "input", R"({ "payload": "$sentence" })", StdPolicy("msg"),
      1, "runtime-shared bus sink"});

  // ---------------------------------------------------------------- D9
  apps->push_back({
      "http-config-patch", "utility", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let fs = require("fs");
  RED.httpNode.on("request", (req, res) => {
    let current = fs.readFileSync("/etc/app.json");
    res.end(current + "|patched-with|" + req.body);
    fs.writeFileSync("/etc/app.json", req.body);
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      3, "config read echoed out; patch body persisted"});

  // --------------------------------------------------------------- D10
  apps->push_back({
      "http-camera-proxy", "camera", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let http = require("http");
  RED.httpNode.on("request", (req, res) => {
    let upstream = http.request({ host: "cam.internal", method: "POST" });
    upstream.write(req.body);
    upstream.end();
    res.end("proxied");
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      1, "proxy: body forwarded to the internal camera service"});

  // --------------------------------------------------------------- D11
  apps->push_back({
      "ui-slider-sync", "dashboard", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  function SliderNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    node.on("input", msg => {
      RED.settings.dashboard.update(config.widget, msg.payload);
    });
  }
  RED.nodes.registerType("ui-slider-sync", SliderNode);
};
)",
      R"([{ "id": "sl", "type": "ui-slider-sync", "config": { "widget": "w1" },
           "wires": [] }])",
      "node", "sl", "input", R"({ "payload": "$num" })", StdPolicy("msg"),
      1, "dashboard widget update through injected settings"});

  // --------------------------------------------------------------- D12
  apps->push_back({
      "http-gps-ingest", "mobility", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let sqlite = require("sqlite3");
  let db = new sqlite.Database("/var/tracks.db");
  RED.httpNode.on("request", (req, res) => {
    let parts = req.body.split(",");
    db.run('INSERT INTO points VALUES (?, ?)', [parts[0], parts[1]]);
    res.end("point saved");
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      1, "GPS coordinates parsed and stored"});

  // --------------------------------------------------------------- D13
  apps->push_back({
      "http-intercom", "home", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let mqtt = require("mqtt");
  let client = mqtt.connect("mqtt://home");
  let lastMessage = "";
  RED.httpNode.on("request", (req, res) => {
    lastMessage = req.body;
    client.publish("intercom/hall", lastMessage);
    res.end("announced: " + lastMessage);
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      2, "announcement published and echoed"});

  // --------------------------------------------------------------- D14
  apps->push_back({
      "http-firmware-check", "utility", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let versions = { cam: "2.1", lock: "1.4", hub: "3.0" };
  RED.httpNode.on("request", (req, res) => {
    let device = req.body;
    let version = versions[device];
    res.end(device + " -> " + (version ? version : "unsupported"));
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      1, "device name reflected with its firmware version"});

  // --------------------------------------------------------------- D15
  apps->push_back({
      "http-guestbook", "dashboard", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let fs = require("fs");
  RED.httpNode.on("request", (req, res) => {
    fs.appendFile("/guests.txt", req.body + "\n", () => {});
    let everyone = fs.readFileSync("/guests.txt");
    res.end(everyone);
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      2, "append + full read-back of visitor names"});

  // --------------------------------------------------------------- D16
  apps->push_back({
      "injected-uplink", "cloud", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  function UplinkNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    // The transport is attached to the node by the runtime after deploy.
    node.on("input", msg => {
      node.transport.send({ device: msg.device, reading: msg.payload });
    });
  }
  RED.nodes.registerType("injected-uplink", UplinkNode);
};
)",
      R"([{ "id": "iu", "type": "injected-uplink", "wires": [] }])",
      "node", "iu", "input", R"({ "payload": "$num", "device": "$id" })",
      StdPolicy("msg"),
      1, "sink object attached to the node instance at run time"});

  // --------------------------------------------------------------- D17
  apps->push_back({
      "http-token-mint", "access", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let minted = 0;
  RED.httpNode.on("request", (req, res) => {
    minted = minted + 1;
    let token = "tok-" + minted + "-" + req.body.length;
    res.end(token + " for " + req.body);
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      1, "subject identity embedded in the minted token response"});

  // --------------------------------------------------------------- D18
  apps->push_back({
      "http-meter-export", "sensor", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let http = require("http");
  RED.httpNode.on("request", (req, res) => {
    let out = http.request({ host: "billing.example", method: "POST" });
    out.end("meter:" + req.body);
    res.end("exported");
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      1, "meter reading exported to a billing endpoint"});

  // --------------------------------------------------------------- D19
  apps->push_back({
      "global-blackboard", "gateway", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  function BlackboardNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    node.on("input", msg => {
      let board = RED.settings.blackboard;
      board.post(config.lane, msg.payload);
      node.send({ payload: "posted" });
    });
  }
  RED.nodes.registerType("global-blackboard", BlackboardNode);
};
)",
      R"([{ "id": "bb", "type": "global-blackboard", "config": { "lane": "ops" },
           "wires": [] }])",
      "node", "bb", "input", R"({ "payload": "$sentence" })", StdPolicy("msg"),
      1, "cross-flow blackboard sink injected at run time"});

  // --------------------------------------------------------------- D20
  apps->push_back({
      "http-alarm-ack", "security", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let fs = require("fs");
  let pending = { a1: "door", a2: "window" };
  RED.httpNode.on("request", (req, res) => {
    let alarm = pending[req.body];
    if (alarm) {
      delete pending[req.body];
      fs.appendFile("/alarms/acks.log", req.body + ":" + alarm, () => {});
      res.end("acked " + alarm);
    } else {
      res.end("unknown alarm");
    }
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      2, "acknowledgement id logged and reflected"});

  // --------------------------------------------------------------- D21
  apps->push_back({
      "http-scene-trigger", "home", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let mqtt = require("mqtt");
  let client = mqtt.connect("mqtt://home");
  let scenes = { movie: ["light/dim", "blind/down"], away: ["lock/all"] };
  RED.httpNode.on("request", (req, res) => {
    let actions = scenes[req.body];
    if (actions) {
      for (let a of actions) {
        client.publish(a, "scene:" + req.body);
      }
    }
    res.end("scene " + req.body);
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      2, "scene name fanned out over device topics"});

  // --------------------------------------------------------------- D22
  apps->push_back({
      "http-diagnostics", "utility", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let fs = require("fs");
  RED.httpNode.on("request", (req, res) => {
    let log = fs.readFileSync("/var/log/app.log");
    res.end("tail for " + req.body + ": " + log.slice(-64));
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      2, "internal log contents exposed through the web endpoint"});

  // --------------------------------------------------------------- D23
  apps->push_back({
      "injected-notifier", "notification", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  function NotifyNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    node.on("input", msg => {
      // The pager client arrives through deploy-time dependency injection.
      RED.settings.pager.page(config.oncall, msg.payload);
      node.send({ payload: "paged" });
    });
  }
  RED.nodes.registerType("injected-notifier", NotifyNode);
};
)",
      R"([{ "id": "nf", "type": "injected-notifier", "config": { "oncall": "ops" },
           "wires": [] }])",
      "node", "nf", "input", R"({ "payload": "$sentence" })", StdPolicy("msg"),
      1, "pager sink injected via settings"});

  // --------------------------------------------------------------- D24
  apps->push_back({
      "http-export-csv", "storage", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let sqlite = require("sqlite3");
  let db = new sqlite.Database("/var/data.db");
  RED.httpNode.on("request", (req, res) => {
    db.get("SELECT * FROM readings WHERE id = " + req.body, (err, row) => {
      res.end(row ? row.id + "," + row.value : "none");
    });
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      2, "query string into SQL; row data into the response"});

  // --------------------------------------------------------------- D25
  apps->push_back({
      "http-ota-push", "utility", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let net = require("net");
  let device = net.connect(9100, "esp.device");
  RED.httpNode.on("request", (req, res) => {
    device.write("OTA:" + req.body);
    res.end("pushed " + req.body.length + " bytes");
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      1, "firmware image pushed to the device socket"});

  // --------------------------------------------------------------- D26
  apps->push_back({
      "http-mirror-cluster", "gateway", CorpusBucket::kBothMiss,
      R"(module.exports = function(RED) {
  let http = require("http");
  let peers = ["node-b.local", "node-c.local"];
  RED.httpNode.on("request", (req, res) => {
    for (let peer of peers) {
      let forward = http.request({ host: peer, method: "POST" });
      forward.end(req.body);
    }
    res.end("mirrored to " + peers.length + " peers");
  });
};
)",
      "[]", "emitter", "red.httpNode", "request", kHttpTemplate, StdPolicy("req"),
      1, "request body replicated to cluster peers"});
}

}  // namespace turnstile
