// The 61-application corpus standing in for the paper's 61 third-party
// Node-RED packages (§6), plus the synthetic repository population behind
// Table 2.
//
// Apps are grouped into the §6.1 outcome buckets; within a bucket they vary
// genuinely (different flow shapes, helper structures, sinks and idioms):
//   kTurnstileOnly (22)  — Node-RED input flows, dynamic dispatch, closures,
//                          promise chains: found by Turnstile, missed by
//                          QueryDL
//   kBothFind       (5)  — direct core-I/O flows both analyzers handle;
//                          includes the apps where one tool finds more
//   kQueryDlOnly    (2)  — flows through inherited (prototype-chain) methods
//   kBothMiss      (26)  — RED.httpNode-style framework-injected endpoints
//   kNoPaths        (6)  — genuinely no privacy-sensitive dataflow
//
// Ground truth (`ground_truth_paths`) is the per-app manual annotation: the
// number of distinct source→sink dataflows a human reviewer identifies,
// independent of what either tool detects.
#ifndef TURNSTILE_SRC_CORPUS_CORPUS_H_
#define TURNSTILE_SRC_CORPUS_CORPUS_H_

#include <string>
#include <vector>

namespace turnstile {

enum class CorpusBucket {
  kTurnstileOnly,
  kBothFind,
  kQueryDlOnly,
  kBothMiss,
  kNoPaths,
};

const char* CorpusBucketName(CorpusBucket bucket);

struct CorpusApp {
  std::string name;
  std::string category;          // camera / voice / sensor / storage / ...
  CorpusBucket bucket;
  std::string source;            // MiniScript module source
  std::string flow_json;         // RedFlow instantiation spec
  std::string entry_kind;        // "node" (InjectInput) or "emitter" (EmitEvent)
  std::string entry_ref;         // node id, or emitter tag ("net.socket", ...)
  std::string entry_event;       // event name for emitter entries
  std::string message_template;  // workload JSON template
  std::string policy_json;       // IFC policy for the run-time evaluation
  int ground_truth_paths = 0;    // manual annotation
  std::string notes;             // which patterns the app exercises
};

// All 61 applications.
const std::vector<CorpusApp>& Corpus();

// Lookup by name; nullptr when unknown.
const CorpusApp* FindCorpusApp(const std::string& name);

// Deterministic vendored-dependency bundle: the utility code a real package
// ships alongside its own sources (the paper analyzed whole packages, so both
// tools processed dependencies too). `chain_length` controls the size of the
// bundle's initialization chains; ~400 yields a package-scale program of
// several thousand AST nodes. Analysis-only: it parses and type-checks but is
// never executed by the flow engine.
std::string VendoredDependencyBundle(int chain_length);

// --- Table 2 census substrate --------------------------------------------------

// One synthetic repository for the framework-popularity census.
struct CensusRepo {
  std::string name;
  std::string main_source_excerpt;  // file contents the signature scanner reads
  std::string true_framework;       // generation ground truth
};

// Generates the synthetic population of repositories (deterministic).
std::vector<CensusRepo> GenerateCensusPopulation(uint64_t seed);

// The framework-signature scanner (the measurement procedure of Table 2):
// returns the detected framework name or "" when none matches.
std::string DetectFramework(const std::string& source);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_CORPUS_CORPUS_H_
