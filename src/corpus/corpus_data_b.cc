// Corpus buckets B (both tools find paths, 5 apps), C (QueryDL-only, 2 apps)
// and E (genuinely no privacy-sensitive paths, 6 apps).
#include "src/corpus/corpus.h"
#include "src/corpus/corpus_internal.h"

namespace turnstile {

void AppendBothFindApps(std::vector<CorpusApp>* apps) {
  // ---------------------------------------------------------------- B1
  // modbus: both tools find the direct socket paths; Turnstile additionally
  // resolves the dynamic decoder dispatch (3 vs 2). Heavy per-message
  // register parsing makes it the Fig. 12 worst case at 30 Hz.
  apps->push_back({
      "modbus", "industrial", CorpusBucket::kBothFind,
      R"(let net = require("net");
let fs = require("fs");
let socket = net.connect(502, "plc.local");
let decoders = {
  holding: raw => {
    let regs = [];
    for (let i = 0; i + 4 <= raw.length; i = i + 4) {
      let hi = raw.charCodeAt(i) * 256 + raw.charCodeAt(i + 1);
      let lo = raw.charCodeAt(i + 2) * 256 + raw.charCodeAt(i + 3);
      regs.push(hi * 65536 + lo);
    }
    return regs;
  },
  coil: raw => {
    let bits = [];
    for (let i = 0; i < raw.length; i++) {
      bits.push(raw.charCodeAt(i) % 2);
    }
    return bits;
  }
};
socket.on("data", frame => {
  // Line-noise calibration sweep over the simulated register banks: a large
  // amount of per-poll compute that touches NO privacy-sensitive data. This
  // is what exhaustive instrumentation pays for and selective skips (§6.2).
  let cal = 0;
  for (let k = 0; k < 36000; k++) {
    cal = (cal * 31 + k) % 65521;
  }
  let raw = frame + frame + frame + frame;
  let kind = raw.length % 2 === 0 ? "holding" : "coil";
  let registers = decoders[kind](raw);
  let checksum = 0;
  for (let r of registers) {
    checksum = (checksum * 31 + r) % 1000003;
  }
  fs.writeFileSync("/modbus/raw.bin", frame);
  fs.appendFile("/modbus/registers.log", registers.join(","), () => {});
  socket.write("ACK:" + checksum);
});
)",
      "[]", "emitter", "net.socket", "data",
      R"("$json")",
      BarePolicy("frame"),
      3,  // frame -> raw archive (direct), -> register log (via decoders), -> ACK
      "direct fs flow (both find) + dynamic decoder dispatch (Turnstile only)"});

  // ---------------------------------------------------------------- B2
  // watson: direct http flows both find; the enrichment path through a
  // factory-made closure is Turnstile-only.
  apps->push_back({
      "watson", "voice", CorpusBucket::kBothFind,
      R"(let net = require("net");
let http = require("http");
let socket = net.connect(7700, "audio.gw");
function makeUploader(path) {
  return text => {
    let req = http.request({ host: "watson.cloud", method: "POST" });
    req.end(path + ":" + text);
  };
}
let upload = makeUploader("/v1/analyze");
let fs = require("fs");
let modelBlob = "{";
for (let mb = 0; mb < 850; mb++) {
  modelBlob += '"k' + mb + '":' + (mb % 97) + ",";
}
modelBlob = modelBlob + '"end":0}';
socket.on("data", utterance => {
  // Acoustic-model metadata refresh.
  let modelTable = JSON.parse(modelBlob);
  let modelSize = Object.keys(modelTable).length;
  let energy = 0;
  for (let i = 0; i < utterance.length; i = i + 4) {
    energy = (energy + utterance.charCodeAt(i)) % 65521;
  }
  fs.appendFile("/watson/transcript.log", utterance, () => {});
  let req = http.request({ host: "watson.cloud", method: "POST" });
  req.write(utterance + "#e" + energy);
  req.end();
  upload(utterance.toUpperCase());
});
)",
      "[]", "emitter", "net.socket", "data",
      R"("$sentence")",
      BarePolicy("utterance"),
      3,  // utterance -> transcript log, -> req.write, -> closure req.end (T only)
      "direct fs+http sinks (both) + closure-factory sink (Turnstile only)"});

  // ---------------------------------------------------------------- B3
  apps->push_back({
      "rtsp-relay", "camera", CorpusBucket::kBothFind,
      R"(let net = require("net");
let fs = require("fs");
let camera = net.connect(554, "cam.hall");
let uplink = net.connect(8554, "relay.cloud");
let sinks = {
  mirror: chunk => { uplink.write(chunk); }
};
let ladderBlob = "{";
for (let mb = 0; mb < 850; mb++) {
  ladderBlob += '"k' + mb + '":' + (mb % 97) + ",";
}
ladderBlob = ladderBlob + '"end":0}';
camera.on("data", chunk => {
  // Bitrate-ladder recomputation (stream metadata only).
  let ladderTable = JSON.parse(ladderBlob);
  let ladderSize = Object.keys(ladderTable).length;
  uplink.write(chunk);
  fs.writeFileSync("/relay/last.bin", chunk);
  sinks["mirror"](chunk);
});
)",
      "[]", "emitter", "net.socket", "data",
      R"("$frame")",
      BarePolicy("chunk"),
      3,  // chunk -> uplink (direct, both), chunk -> fs (both), chunk -> bracket sink (T only)
      "relay with direct and bracket-dispatched writes"});

  // ---------------------------------------------------------------- B4
  // legacy-gateway: QueryDL finds MORE than Turnstile here — the report path
  // runs through a method inherited from a base class.
  apps->push_back({
      "legacy-gateway", "industrial", CorpusBucket::kBothFind,
      R"(let net = require("net");
let fs = require("fs");
let socket = net.connect(4840, "scada.local");
class BaseChannel {
  persist(entry) {
    fs.appendFile("/gateway/audit.log", entry, () => {});
  }
}
class AuditChannel extends BaseChannel {
  format(data) {
    let crc = 0;
    for (let i = 0; i < data.length; i = i + 1) {
      crc = (crc * 31 + data.charCodeAt(i)) % 65521;
    }
    return "audit:" + crc + ":" + data;
  }
}
let channel = new AuditChannel();
let tagsetBlob = "{";
for (let mb = 0; mb < 850; mb++) {
  tagsetBlob += '"k' + mb + '":' + (mb % 97) + ",";
}
tagsetBlob = tagsetBlob + '"end":0}';
socket.on("data", reading => {
  // SCADA tag-set metadata refresh.
  let tagsetTable = JSON.parse(tagsetBlob);
  let tagsetSize = Object.keys(tagsetTable).length;
  socket.write("echo:" + reading);
  channel.persist(channel.format(reading));
});
)",
      "[]", "emitter", "net.socket", "data",
      R"("$json")",
      BarePolicy("reading"),
      2,  // reading -> socket.write (both), reading -> fs via inherited persist (QueryDL only)
      "inherited-method sink: the prototype-chain case favouring QueryDL"});

  // ---------------------------------------------------------------- B5
  // file-sync: both tools find exactly the same paths.
  apps->push_back({
      "file-sync", "storage", CorpusBucket::kBothFind,
      R"(let fs = require("fs");
let http = require("http");
let manifest = fs.readFileSync("/sync/manifest.json");
let req = http.request({ host: "backup.example", method: "POST" });
req.write(manifest);
req.end();
let catalogBlob = "{";
for (let mb = 0; mb < 850; mb++) {
  catalogBlob += '"k' + mb + '":' + (mb % 97) + ",";
}
catalogBlob = catalogBlob + '"end":0}';
fs.createReadStream("/sync/payload.bin").on("data", block => {
  // Sync-catalog refresh.
  let catalogTable = JSON.parse(catalogBlob);
  let catalogSize = Object.keys(catalogTable).length;
  let sum = 0;
  for (let i = 0; i < block.length; i = i + 1) {
    sum = (sum + block.charCodeAt(i)) % 46337;
  }
  fs.writeFileSync("/sync/staging.bin", block + "#" + sum);
});
)",
      "[]", "emitter", "fs.readStream", "data",
      R"("$json")",
      BarePolicy("block"),
      2,  // manifest -> http write; stream block -> fs write
      "straight-line flows; the agreement case"});
}

void AppendQueryDlOnlyApps(std::vector<CorpusApp>* apps) {
  // ---------------------------------------------------------------- C1
  apps->push_back({
      "proto-pipeline", "gateway", CorpusBucket::kQueryDlOnly,
      R"(let net = require("net");
let socket = net.connect(6000, "edge.local");
class Stage {
  emit(data) {
    socket.write("stage:" + data);
  }
}
class Enricher extends Stage {
  enrich(data) {
    return data + "|enriched";
  }
}
let pipeline = new Enricher();
socket.on("data", sample => {
  pipeline.emit(pipeline.enrich(sample));
});
)",
      "[]", "emitter", "net.socket", "data",
      R"("$json")",
      BarePolicy("sample"),
      1,  // sample -> socket.write through the inherited emit
      "the only sink sits behind an inherited method — Turnstile finds nothing"});

  // ---------------------------------------------------------------- C2
  apps->push_back({
      "plugin-chain", "gateway", CorpusBucket::kQueryDlOnly,
      R"(let fs = require("fs");
let net = require("net");
let feed = net.connect(7100, "meter.bus");
class PluginBase {
  record(line) {
    fs.appendFile("/plugins/out.log", line, () => {});
  }
  forward(line) {
    feed.write("fwd:" + line);
  }
}
class MeterPlugin extends PluginBase {
  normalize(raw) {
    return raw.trim().toLowerCase();
  }
}
let plugin = new MeterPlugin();
feed.on("data", raw => {
  let n = plugin.normalize(raw);
  plugin.record(n);
  plugin.forward(n);
});
)",
      "[]", "emitter", "net.socket", "data",
      R"("$sentence")",
      BarePolicy("raw"),
      2,  // raw -> fs.record, raw -> feed.forward — both inherited
      "two inherited-method sinks"});
}

void AppendNoPathApps(std::vector<CorpusApp>* apps) {
  // ---------------------------------------------------------------- E1
  apps->push_back({
      "status-led", "home", CorpusBucket::kNoPaths,
      R"(module.exports = function(RED) {
  function LedNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let state = "off";
    node.on("input", msg => {
      state = state === "off" ? "on" : "off";
      node.status({ fill: state === "on" ? "green" : "grey" });
      node.send({ payload: state });
    });
  }
  RED.nodes.registerType("status-led", LedNode);
};
)",
      R"([{ "id": "led", "type": "status-led", "wires": [] }])",
      "node", "led", "input",
      R"({ "payload": "toggle" })",
      StdPolicy("msg"),
      0, "input only toggles internal state; outputs are constants"});

  // ---------------------------------------------------------------- E2
  apps->push_back({
      "config-loader", "utility", CorpusBucket::kNoPaths,
      R"(let defaults = { interval: 30, retries: 3, unit: "C" };
function merge(base, extra) {
  let out = {};
  for (let k of Object.keys(base)) {
    out[k] = base[k];
  }
  for (let k of Object.keys(extra)) {
    out[k] = extra[k];
  }
  return out;
}
let active = merge(defaults, { retries: 5 });
console.log("config ready: " + active.retries);
)",
      "[]", "", "", "",
      R"({ "payload": "unused" })",
      StdPolicy("msg"),
      0, "pure configuration merging, no I/O sources"});

  // ---------------------------------------------------------------- E3
  apps->push_back({
      "unit-converter", "utility", CorpusBucket::kNoPaths,
      R"(module.exports = function(RED) {
  function ConvertNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let conversions = 0;
    node.on("input", msg => {
      conversions = conversions + 1;
      node.send({ payload: conversions });
    });
  }
  RED.nodes.registerType("unit-converter", ConvertNode);
};
)",
      R"([{ "id": "uc", "type": "unit-converter", "wires": [] }])",
      "node", "uc", "input",
      R"({ "payload": "$num" })",
      StdPolicy("msg"),
      0, "only a local counter leaves the node"});

  // ---------------------------------------------------------------- E4
  apps->push_back({
      "scheduler", "utility", CorpusBucket::kNoPaths,
      R"(let slots = [];
for (let h = 0; h < 24; h++) {
  slots.push({ hour: h, active: h >= 8 && h < 20 });
}
function nextActive(from) {
  for (let s of slots) {
    if (s.hour > from && s.active) {
      return s.hour;
    }
  }
  return -1;
}
let horizon = nextActive(9);
console.log("next slot " + horizon);
)",
      "[]", "", "", "",
      R"({ "payload": "unused" })",
      StdPolicy("msg"),
      0, "static schedule computation"});

  // ---------------------------------------------------------------- E5
  apps->push_back({
      "rate-limiter", "utility", CorpusBucket::kNoPaths,
      R"(module.exports = function(RED) {
  function LimitNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let tokens = 5;
    node.on("input", msg => {
      if (tokens > 0) {
        tokens = tokens - 1;
        node.send({ payload: "pass", left: tokens });
      } else {
        node.send({ payload: "drop" });
      }
    });
  }
  RED.nodes.registerType("rate-limiter", LimitNode);
};
)",
      R"([{ "id": "rl", "type": "rate-limiter", "wires": [] }])",
      "node", "rl", "input",
      R"({ "payload": "$num" })",
      StdPolicy("msg"),
      0, "token bucket; message content never leaves"});

  // ---------------------------------------------------------------- E6
  apps->push_back({
      "debug-counter", "utility", CorpusBucket::kNoPaths,
      R"(module.exports = function(RED) {
  function CountNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let counts = { total: 0 };
    node.on("input", msg => {
      counts.total = counts.total + 1;
      node.log("seen " + counts.total);
    });
  }
  RED.nodes.registerType("debug-counter", CountNode);
};
)",
      R"([{ "id": "dc", "type": "debug-counter", "wires": [] }])",
      "node", "dc", "input",
      R"({ "payload": "$word" })",
      StdPolicy("msg"),
      0, "counting only; node.log is not in the sink catalog"});
}

}  // namespace turnstile
