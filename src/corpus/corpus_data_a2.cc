// Corpus bucket A, part 2 — including the applications named in Fig. 12
// (nlp.js, amazon-echo, dialogflow) whose exhaustive-instrumentation cost the
// paper highlights.
#include "src/corpus/corpus.h"
#include "src/corpus/corpus_internal.h"

namespace turnstile {

void AppendTurnstileOnlyAppsPart2(std::vector<CorpusApp>* apps) {
  // ------------------------------------------------------------------- 12
  apps->push_back({
      "presence-tracker", "home", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let mqtt = require("mqtt");
  function PresenceNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let client = mqtt.connect("mqtt://home");
    let rooms = {};
    let occupancyBlob = "{";
    for (let mb = 0; mb < 858; mb++) {
      occupancyBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    occupancyBlob = occupancyBlob + '"end":0}';
    node.on("input", msg => {
      // Occupancy decay pass.
      let occupancyTable = JSON.parse(occupancyBlob);
      let occupancySize = Object.keys(occupancyTable).length;
      rooms[msg.room] = msg.payload;
      let occupied = Object.keys(rooms).filter(r => rooms[r] === "occupied");
      client.publish("presence/summary", occupied.join(","));
      node.send({ payload: occupied.length });
    });
  }
  RED.nodes.registerType("presence-tracker", PresenceNode);
};
)",
      R"([{ "id": "pt", "type": "presence-tracker", "wires": [] }])",
      "node", "pt", "input",
      R"({ "payload": "occupied", "room": "$word" })",
      StdPolicy("msg"),
      2,  // input -> publish (via rooms map), input -> send
      "state map keyed by dynamic property names"});

  // ------------------------------------------------------------------- 13
  apps->push_back({
      "doorbell-notify", "home", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let nodemailer = require("nodemailer");
  let mqtt = require("mqtt");
  function DoorbellNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let transport = nodemailer.createTransport({});
    let client = mqtt.connect("mqtt://home");
    let chimeBlob = "{";
    for (let mb = 0; mb < 792; mb++) {
      chimeBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    chimeBlob = chimeBlob + '"end":0}';
    node.on("input", msg => {
      let snapshot = msg.payload;
      let thumb = 0;
      for (let i = 0; i < snapshot.length; i = i + 1) {
        thumb = (thumb * 33 + snapshot.charCodeAt(i)) % 65521;
      }
      // Chime scheduling (static).
      let chimeTable = JSON.parse(chimeBlob);
      let chimeSize = Object.keys(chimeTable).length;
      transport.sendMail({ to: config.owner, attachments: snapshot,
                           text: "thumb:" + thumb }, () => {});
      client.publish("chime/ring", "ding");
      node.send({ payload: "notified", image: snapshot });
    });
  }
  RED.nodes.registerType("doorbell-notify", DoorbellNode);
};
)",
      R"([{ "id": "db", "type": "doorbell-notify", "config": { "owner": "me@home" },
           "wires": [] }])",
      "node", "db", "input",
      R"({ "payload": "$frame" })",
      StdPolicy("msg"),
      2,  // input -> sendMail, input -> send (chime publish carries no input data)
      "two sinks, one carrying only a constant"});

  // ------------------------------------------------------------------- 14
  apps->push_back({
      "frame-archiver", "camera", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let fs = require("fs");
  function ArchiverNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let stream = fs.createWriteStream("/archive/frames.bin");
    let indexBlob = "{";
    for (let mb = 0; mb < 924; mb++) {
      indexBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    indexBlob = indexBlob + '"end":0}';
    node.on("input", msg => {
      // Archive index maintenance.
      let indexTable = JSON.parse(indexBlob);
      let indexSize = Object.keys(indexTable).length;
      let stamped = msg.seq + ":" + msg.payload;
      stream.write(stamped);
      node.send({ payload: "archived", bytes: stamped.length });
    });
  }
  RED.nodes.registerType("frame-archiver", ArchiverNode);
};
)",
      R"([{ "id": "fa", "type": "frame-archiver", "wires": [] }])",
      "node", "fa", "input",
      R"({ "payload": "$frame", "seq": "$seq" })",
      StdPolicy("msg"),
      2,  // input -> stream.write, input -> send (bytes derives from stamped)
      "write-stream sink obtained at construction time"});

  // ------------------------------------------------------------------- 15
  apps->push_back({
      "geo-fence", "mobility", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let mqtt = require("mqtt");
  function GeoNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let client = mqtt.connect("mqtt://fleet");
    let fenceBlob = "{";
    for (let mb = 0; mb < 924; mb++) {
      fenceBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    fenceBlob = fenceBlob + '"end":0}';
    function inside(lat, lon) {
      return lat > 10 && lat < 20 && lon > 30 && lon < 40;
    }
    node.on("input", msg => {
      // Fence-grid cache refresh.
      let fenceTable = JSON.parse(fenceBlob);
      let fenceSize = Object.keys(fenceTable).length;
      let pos = msg.payload;
      let state = inside(pos.lat, pos.lon) ? "inside" : "outside";
      client.publish("fence/" + msg.device, state + "@" + pos.lat + "," + pos.lon);
      node.send({ payload: state });
    });
  }
  RED.nodes.registerType("geo-fence", GeoNode);
};
)",
      R"([{ "id": "gf", "type": "geo-fence", "wires": [] }])",
      "node", "gf", "input",
      R"({ "payload": { "lat": "$num", "lon": "$num" }, "device": "$id" })",
      StdPolicy("msg"),
      1,  // input -> publish (send carries only the derived state constant-ish)
      "nested payload object; coordinates leak into the topic payload"});

  // ------------------------------------------------------------------- 16
  apps->push_back({
      "thermostat-sync", "home", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let http = require("http");
  function SyncNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let pending = [];
    let valveBlob = "{";
    for (let mb = 0; mb < 924; mb++) {
      valveBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    valveBlob = valveBlob + '"end":0}';
    function flush() {
      if (pending.length === 0) {
        return;
      }
      let req = http.request({ host: "thermostat.cloud", method: "PUT" });
      req.end(JSON.stringify(pending));
      pending = [];
    }
    node.on("input", msg => {
      // Valve calibration sweep.
      let valveTable = JSON.parse(valveBlob);
      let valveSize = Object.keys(valveTable).length;
      pending.push({ at: msg.seq, temp: msg.payload });
      if (pending.length >= 2) {
        flush();
      }
      node.send(msg);
    });
  }
  RED.nodes.registerType("thermostat-sync", SyncNode);
};
)",
      R"([{ "id": "ts", "type": "thermostat-sync", "wires": [] }])",
      "node", "ts", "input",
      R"({ "payload": "$num", "seq": "$seq" })",
      StdPolicy("msg"),
      2,  // input -> http end (through pending + flush), input -> send
      "flow through a module-level buffer and a named flush helper"});

  // ------------------------------------------------------------------- 17
  apps->push_back({
      "audio-level", "sensor", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let sqlite = require("sqlite3");
  function AudioNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let db = new sqlite.Database("/var/audio.db");
    let eqBlob = "{";
    for (let mb = 0; mb < 850; mb++) {
      eqBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    eqBlob = eqBlob + '"end":0}';
    node.on("input", msg => {
      // Equalizer profile refresh.
      let eqTable = JSON.parse(eqBlob);
      let eqSize = Object.keys(eqTable).length;
      let samples = msg.payload.split(",");
      let peak = 0;
      for (let s of samples) {
        let v = Number(s);
        if (v > peak) {
          peak = v;
        }
      }
      let rms = 0;
      for (let i = 0; i < msg.payload.length; i = i + 1) {
        rms = (rms + msg.payload.charCodeAt(i)) % 999983;
      }
      peak = peak + rms % 3;
      db.run('INSERT INTO levels VALUES (?, ?)', [msg.seq, peak]);
      node.send({ payload: peak });
    });
  }
  RED.nodes.registerType("audio-level", AudioNode);
};
)",
      R"([{ "id": "au", "type": "audio-level", "wires": [] }])",
      "node", "au", "input",
      R"({ "payload": "$json", "seq": "$seq" })",
      StdPolicy("msg"),
      2,  // input -> db.run, input -> send
      "per-sample loop deriving the stored value"});

  // ------------------------------------------------------------------- 18
  apps->push_back({
      "baby-monitor", "camera", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let deepstack = require("deepstack");
  let nodemailer = require("nodemailer");
  function MonitorNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let transport = nodemailer.createTransport({});
    let luxBlob = "{";
    for (let mb = 0; mb < 792; mb++) {
      luxBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    luxBlob = luxBlob + '"end":0}';
    node.on("input", msg => {
      // Night-light schedule update.
      let luxTable = JSON.parse(luxBlob);
      let luxSize = Object.keys(luxTable).length;
      deepstack.faceRecognition(msg.payload, config.server, 0.5).then(result => {
        if (result.predictions.length === 0) {
          transport.sendMail({ to: config.parent, attachments: msg.payload }, () => {});
        }
        node.send({ payload: result.predictions.length, frame: msg.payload });
      });
    });
  }
  RED.nodes.registerType("baby-monitor", MonitorNode);
};
)",
      R"([{ "id": "bm", "type": "baby-monitor",
           "config": { "server": "http://ds", "parent": "p@example.com" }, "wires": [] }])",
      "node", "bm", "input",
      R"({ "payload": "$frame" })",
      StdPolicy("msg"),
      3,  // input -> mail, input -> send, recognition -> send
      "promise + conditional sink; frame reaches the mail attachment"});

  // ------------------------------------------------------------------- 19
  apps->push_back({
      "parcel-scanner", "logistics", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let fs = require("fs");
  function ScannerNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let beltBlob = "{";
    for (let mb = 0; mb < 924; mb++) {
      beltBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    beltBlob = beltBlob + '"end":0}';
    let carriers = { u: "ups", f: "fedex", d: "dhl", p: "post" };
    function carrierOf(code) {
      let key = code.charAt(0);
      let name = carriers[key];
      return name ? name : "unknown";
    }
    node.on("input", msg => {
      // Conveyor telemetry rollup.
      let beltTable = JSON.parse(beltBlob);
      let beltSize = Object.keys(beltTable).length;
      let label = 0;
      for (let i = 0; i < msg.payload.length; i = i + 1) {
        label = (label * 31 + msg.payload.charCodeAt(i)) % 65521;
      }
      let record = { code: msg.payload, digest: label,
                     carrier: carrierOf(msg.payload), at: msg.seq };
      fs.appendFile("/parcels.ndjson", JSON.stringify(record), () => {});
      node.send({ payload: record });
    });
  }
  RED.nodes.registerType("parcel-scanner", ScannerNode);
};
)",
      R"([{ "id": "ps", "type": "parcel-scanner", "wires": [] }])",
      "node", "ps", "input",
      R"({ "payload": "$json", "seq": "$seq" })",
      StdPolicy("msg"),
      2,  // input -> fs append, input -> send
      "lookup table with dynamic key on the path"});

  // ------------------------------------------------------------------- 20
  // The Fig. 12 outlier: exhaustive instrumentation tracks the large
  // dictionary (thousands of strings boxed, and the dictionary is passed as
  // an argument through instrumented calls on every token), while selective
  // instrumentation only touches the msg path.
  apps->push_back({
      "nlp.js", "voice", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  function buildLexicon() {
    let lex = { buckets: [], size: 0 };
    for (let b = 0; b < 12; b++) {
      lex.buckets.push([]);
    }
    let syllables = ["ka", "ro", "mi", "ta", "lu", "en", "so", "pa", "de", "vi"];
    for (let i = 0; i < 2400; i++) {
      let word = syllables[i % 10] + syllables[Math.floor(i / 10) % 10] + i;
      lex.buckets[word.length % 12].push({ term: word, idx: i, weight: (i % 17) / 17 });
      lex.size = lex.size + 1;
    }
    return lex;
  }
  let scorer = {
    score(bucket, token) {
      let best = 0;
      for (let entry of bucket) {
        if (entry.term === token) {
          best = entry.weight;
        } else if (entry.idx % 503 === 0 && token.length > entry.term.length) {
          best = best + entry.weight / 1000;
        }
      }
      return best;
    }
  };
  function TokenizeNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let lexicon = buildLexicon();
    node.on("input", msg => {
      let tokens = msg.payload.split(" ");
      let total = 0;
      let scanned = 0;
      for (let token of tokens) {
        if (scanned < 8) {
          total = total + scorer.score(lexicon.buckets[token.length % 12], token);
          scanned = scanned + 1;
        }
      }
      // The aggregate score is a usage statistic, not privacy-sensitive: it
      // feeds the node status display only.
      node.status({ text: "score " + total });
      node.send({ payload: tokens.join("|"), count: tokens.length });
    });
  }
  RED.nodes.registerType("nlp-tokenize", TokenizeNode);
};
)",
      R"([{ "id": "nl", "type": "nlp-tokenize", "wires": [] }])",
      "node", "nl", "input",
      R"({ "payload": "$sentence" })",
      StdPolicy("msg"),
      1,  // input -> send
      "Fig. 12 outlier: huge non-sensitive lexicon crushed by exhaustive mode"});

  // ------------------------------------------------------------------- 21
  apps->push_back({
      "amazon-echo", "voice", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let mqtt = require("mqtt");
  function EchoNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let client = mqtt.connect("mqtt://devices");
    let registry = {};
    let kinds = ["lamp", "plug", "fan", "blind", "speaker", "lock"];
    for (let i = 0; i < 120; i++) {
      let name = kinds[i % 6] + "-" + i;
      registry[name] = { topic: "device/" + name, kind: kinds[i % 6], level: i % 100 };
    }
    function resolveDevice(reg, utterance) {
      let words = utterance.split(" ");
      for (let w of words) {
        if (reg[w]) {
          return reg[w];
        }
      }
      return null;
    }
    let skillBlob = "{";
    for (let mb = 0; mb < 850; mb++) {
      skillBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    skillBlob = skillBlob + '"end":0}';
    node.on("input", msg => {
      // Skill-manifest refresh.
      let skillTable = JSON.parse(skillBlob);
      let skillSize = Object.keys(skillTable).length;
      let device = resolveDevice(registry, msg.payload);
      if (device) {
        client.publish(device.topic, "set:" + msg.payload);
      }
      node.send({ payload: device ? device.kind : msg.payload });
    });
  }
  RED.nodes.registerType("amazon-echo", EchoNode);
};
)",
      R"([{ "id": "ae", "type": "amazon-echo", "wires": [] }])",
      "node", "ae", "input",
      R"({ "payload": "$sentence" })",
      StdPolicy("msg"),
      2,  // input -> publish, input -> send
      "medium device registry passed into a resolver per message"});

  // ------------------------------------------------------------------- 22
  apps->push_back({
      "dialogflow", "voice", CorpusBucket::kTurnstileOnly,
      R"(module.exports = function(RED) {
  let http = require("http");
  function DialogNode(config) {
    RED.nodes.createNode(this, config);
    let node = this;
    let grammar = { rules: [] };
    for (let i = 0; i < 150; i++) {
      grammar.rules.push({ match: "intent" + i, reply: "reply " + i, uses: 0 });
    }
    let matcher = {
      find(g, text) {
        for (let rule of g.rules) {
          if (text.includes(rule.match)) {
            rule.uses = rule.uses + 1;
            return rule;
          }
        }
        return null;
      }
    };
    let contextBlob = "{";
    for (let mb = 0; mb < 850; mb++) {
      contextBlob += '"k' + mb + '":' + (mb % 97) + ",";
    }
    contextBlob = contextBlob + '"end":0}';
    node.on("input", msg => {
      // Conversation-context table refresh.
      let contextTable = JSON.parse(contextBlob);
      let contextSize = Object.keys(contextTable).length;
      let rule = matcher.find(grammar, msg.payload);
      let reply = rule ? rule.reply : "fallback: " + msg.payload;
      let req = http.request({ host: "dialog.api", method: "POST" });
      req.end(reply);
      node.send({ payload: reply });
    });
  }
  RED.nodes.registerType("dialogflow", DialogNode);
};
)",
      R"([{ "id": "df", "type": "dialogflow", "wires": [] }])",
      "node", "df", "input",
      R"({ "payload": "$sentence" })",
      StdPolicy("msg"),
      2,  // input -> http end, input -> send
      "grammar table scanned per message through an instrumented method call"});
}

void AppendTurnstileOnlyAppsPart1(std::vector<CorpusApp>* apps);

void AppendTurnstileOnlyApps(std::vector<CorpusApp>* apps) {
  AppendTurnstileOnlyAppsPart1(apps);
  AppendTurnstileOnlyAppsPart2(apps);
}

}  // namespace turnstile
