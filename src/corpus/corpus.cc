#include "src/corpus/corpus.h"

#include <unordered_map>

#include "src/support/rng.h"
#include "src/support/strings.h"

namespace turnstile {

// Bucket population builders (corpus_data_*.cc).
void AppendTurnstileOnlyApps(std::vector<CorpusApp>* apps);  // 22
void AppendBothFindApps(std::vector<CorpusApp>* apps);       // 5
void AppendQueryDlOnlyApps(std::vector<CorpusApp>* apps);    // 2
void AppendBothMissApps(std::vector<CorpusApp>* apps);       // 26
void AppendNoPathApps(std::vector<CorpusApp>* apps);         // 6

const char* CorpusBucketName(CorpusBucket bucket) {
  switch (bucket) {
    case CorpusBucket::kTurnstileOnly:
      return "turnstile-only";
    case CorpusBucket::kBothFind:
      return "both-find";
    case CorpusBucket::kQueryDlOnly:
      return "querydl-only";
    case CorpusBucket::kBothMiss:
      return "both-miss";
    case CorpusBucket::kNoPaths:
      return "no-paths";
  }
  return "?";
}

const std::vector<CorpusApp>& Corpus() {
  static const std::vector<CorpusApp>* kApps = [] {
    auto* apps = new std::vector<CorpusApp>();
    AppendTurnstileOnlyApps(apps);
    AppendBothFindApps(apps);
    AppendQueryDlOnlyApps(apps);
    AppendBothMissApps(apps);
    AppendNoPathApps(apps);
    return apps;
  }();
  return *kApps;
}

const CorpusApp* FindCorpusApp(const std::string& name) {
  for (const CorpusApp& app : Corpus()) {
    if (app.name == name) {
      return &app;
    }
  }
  return nullptr;
}

std::string VendoredDependencyBundle(int chain_length) {
  std::string out;
  out.reserve(static_cast<size_t>(chain_length) * 64 + 2048);
  out +=
      "// --- vendored dependency bundle (minified-style) ---\n"
      "function u_mix(a, b) { return a * 31 + b % 97; }\n"
      "function u_rot(a) { return a * 2 + 1; }\n"
      "function u_clip(a) { return a % 100003; }\n"
      "function u_fold(xs) {\n"
      "  let acc = 0;\n"
      "  for (let x of xs) { acc = u_clip(u_mix(acc, x)); }\n"
      "  return acc;\n"
      "}\n"
      "let u_state0 = 7;\n";
  // A long single-assignment initialization chain — the def-use shape that
  // makes whole-relation materialization expensive.
  for (int i = 1; i <= chain_length; ++i) {
    out += "let u_state" + std::to_string(i) + " = u_clip(u_mix(u_rot(u_state" +
           std::to_string(i - 1) + "), " + std::to_string(i) + "));\n";
  }
  out += "let u_table = [";
  for (int i = 0; i <= chain_length; i += std::max(1, chain_length / 64)) {
    if (i > 0) {
      out += ", ";
    }
    out += "u_state" + std::to_string(i);
  }
  out += "];\nlet u_digest = u_fold(u_table);\n";
  return out;
}

// --- Table 2 census -------------------------------------------------------------

namespace {

struct FrameworkProfile {
  const char* name;
  const char* signature;      // the code signature the paper searched for
  int repo_count;             // ground-truth repos in the synthetic population
  int total_matches;          // ground-truth search hits (signature occurrences)
};

// Calibrated to Table 2's totals (1,149 repositories).
const FrameworkProfile kProfiles[] = {
    {"Node-RED", "RED.nodes.createNode", 677, 2676},
    {"Azure IoT", "Client.fromConnectionString", 357, 727},
    {"HomeBridge", "homebridge.registerAccessory", 57, 171},
    {"OpenHAB", "openhab.rules.JSRule", 14, 70},
    {"SmartThings", "new SmartApp", 29, 42},
    {"AWS Greengrass", "greengrasssdk.client", 15, 27},
};

}  // namespace

std::string DetectFramework(const std::string& source) {
  for (const FrameworkProfile& profile : kProfiles) {
    if (Contains(source, profile.signature)) {
      return profile.name;
    }
  }
  return "";
}

std::vector<CensusRepo> GenerateCensusPopulation(uint64_t seed) {
  Rng rng(seed);
  std::vector<CensusRepo> repos;
  for (const FrameworkProfile& profile : kProfiles) {
    // Distribute `total_matches` signature occurrences over `repo_count`
    // repositories: every repo gets one, the surplus is spread at random.
    std::vector<int> matches(static_cast<size_t>(profile.repo_count), 1);
    for (int extra = profile.total_matches - profile.repo_count; extra > 0; --extra) {
      ++matches[rng.NextBelow(static_cast<uint64_t>(profile.repo_count))];
    }
    for (int i = 0; i < profile.repo_count; ++i) {
      CensusRepo repo;
      repo.name = std::string(profile.name) + "-" + rng.NextWord(6) + "-" + std::to_string(i);
      repo.true_framework = profile.name;
      std::string body = "// " + repo.name + "\n";
      for (int m = 0; m < matches[static_cast<size_t>(i)]; ++m) {
        body += "function " + rng.NextWord(8) + "() {\n  " + profile.signature +
                "(this, config);\n}\n";
      }
      repo.main_source_excerpt = std::move(body);
      repos.push_back(std::move(repo));
    }
  }
  // Shuffle so the population is not bucket-ordered.
  for (size_t i = repos.size(); i > 1; --i) {
    std::swap(repos[i - 1], repos[rng.NextBelow(i)]);
  }
  return repos;
}

}  // namespace turnstile
