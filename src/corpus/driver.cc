#include "src/corpus/driver.h"

#include "src/analysis/analyzer.h"
#include "src/flow/workload.h"
#include "src/instrument/instrumentor.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"
#include "src/lang/resolve.h"
#include "src/obs/audit.h"
#include "src/runtime/context.h"

namespace turnstile {

namespace {

Value ArgAt(const std::vector<Value>& args, size_t i) {
  return i < args.size() ? args[i] : Value::Undefined();
}

// A generic injected sink object: obj.<any-method>(args) records to the
// "injected" channel. Used to stand in for runtime-provided endpoints
// (RED.settings.uplink, node.transport, pagers, dashboards, ...).
ObjectPtr MakeInjectedSink(Interpreter& interp, const std::string& tag,
                           std::initializer_list<const char*> methods) {
  ObjectPtr sink = MakeObject();
  sink->debug_tag = tag;
  for (const char* method : methods) {
    std::string op = method;
    FunctionPtr native = MakeNativeFunction(
        tag + "." + op,
        [tag, op](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
          std::string payload;
          for (const Value& arg : args) {
            if (!payload.empty()) {
              payload += " ";
            }
            payload += UnboxDeep(arg).ToDisplayString();
          }
          in.io_world().Record(in.VirtualNow(), "injected", op, tag, payload);
          return Value::Undefined();
        });
    native->is_io_sink = true;
    sink->Set(op, Value(native));
  }
  return sink;
}

// Installs the runtime-injected framework objects that bucket-D applications
// use. In real Node-RED these are assigned by the hosting runtime after
// deploy — which is exactly why static analysis cannot type them.
void InstallRuntimeInjections(Interpreter& interp) {
  Value* red_slot = interp.global_env()->Lookup("RED");
  if (red_slot == nullptr || !red_slot->IsObject()) {
    return;
  }
  ObjectPtr red = red_slot->AsObject();
  ObjectPtr settings = MakeObject();
  settings->debug_tag = "RED.settings";
  settings->Set("uplink", Value(MakeInjectedSink(interp, "settings.uplink", {"push", "send"})));
  settings->Set("sharedBus", Value(MakeInjectedSink(interp, "settings.sharedBus", {"emitTo"})));
  settings->Set("dashboard", Value(MakeInjectedSink(interp, "settings.dashboard", {"update"})));
  settings->Set("blackboard", Value(MakeInjectedSink(interp, "settings.blackboard", {"post"})));
  settings->Set("pager", Value(MakeInjectedSink(interp, "settings.pager", {"page"})));
  red->Set("settings", Value(settings));
}

// Builds the per-request `res` object handed to red.httpNode handlers.
Value MakeHttpResponse(Interpreter& interp) {
  ObjectPtr res = MakeObject();
  res->debug_tag = "httpNode.res";
  for (const char* method : {"end", "write", "send"}) {
    std::string op = method;
    FunctionPtr native = MakeNativeFunction(
        "res." + op, [op](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
          in.io_world().Record(in.VirtualNow(), "http", "response", op,
                               UnboxDeep(ArgAt(args, 0)).ToDisplayString());
          return Value::Undefined();
        });
    native->is_io_sink = true;
    res->Set(op, Value(native));
  }
  return Value(res);
}

}  // namespace

Result<std::unique_ptr<AppRuntime>> AppRuntime::Create(const CorpusApp& app, AppVersion version,
                                                       std::optional<ExecTier> tier,
                                                       RuntimeContext* context,
                                                       std::shared_ptr<Policy> shared_policy) {
  RuntimeContext& ctx = context != nullptr ? *context : RuntimeContext::Default();
  auto runtime = std::unique_ptr<AppRuntime>(new AppRuntime());
  runtime->app_ = &app;
  // Stamp subsequent audit-ledger events with the app under drive (cheap
  // no-op when the name is unchanged; harmless when the ledger is disabled).
  ctx.audit().set_app(app.name);
  runtime->interp_ = std::make_unique<Interpreter>(ctx);
  if (tier.has_value()) {
    runtime->interp_->set_exec_tier(*tier);
  }
  runtime->engine_ = std::make_unique<FlowEngine>(runtime->interp_.get());

  TURNSTILE_ASSIGN_OR_RETURN(message_template, Json::Parse(app.message_template));
  runtime->message_template_ = message_template;

  TURNSTILE_ASSIGN_OR_RETURN(program, ParseProgram(app.source, app.name + ".js"));

  if (version == AppVersion::kOriginal) {
    runtime->program_root_ = program.root;
    TURNSTILE_RETURN_IF_ERROR(runtime->engine_->LoadModule(program));
  } else {
    if (shared_policy != nullptr) {
      runtime->policy_ = std::move(shared_policy);
    } else {
      TURNSTILE_ASSIGN_OR_RETURN(policy, Policy::FromJsonText(app.policy_json));
      runtime->policy_ = std::shared_ptr<Policy>(std::move(policy).release());
    }
    TURNSTILE_ASSIGN_OR_RETURN(analysis, AnalyzeProgram(program));
    InstrumentMode mode = version == AppVersion::kExhaustive ? InstrumentMode::kExhaustive
                                                             : InstrumentMode::kSelective;
    TURNSTILE_ASSIGN_OR_RETURN(instrumented,
                               InstrumentProgram(program, *runtime->policy_, mode, &analysis));
    // Report-only mode: the performance evaluation measures tracking cost,
    // not enforcement aborts (the generated placeholder policies are
    // violation-free by construction).
    DiftTracker::Options options;
    options.mode = DiftTracker::Options::Mode::kReport;
    runtime->tracker_ = std::make_unique<DiftTracker>(runtime->interp_.get(), runtime->policy_,
                                                      options);
    runtime->tracker_->Install();
    if (version == AppVersion::kRoundTrip) {
      std::string printed = PrintProgram(instrumented.program);
      TURNSTILE_ASSIGN_OR_RETURN(reparsed, ParseProgram(printed, app.name + ".printed.js"));
      ResolveProgram(reparsed);
      runtime->program_root_ = reparsed.root;
      TURNSTILE_RETURN_IF_ERROR(runtime->engine_->LoadModule(reparsed));
    } else {
      runtime->program_root_ = instrumented.program.root;
      TURNSTILE_RETURN_IF_ERROR(runtime->engine_->LoadModule(instrumented.program));
    }
  }

  TURNSTILE_ASSIGN_OR_RETURN(flow, Json::Parse(app.flow_json));
  if (flow.is_array() && !flow.array_items().empty()) {
    TURNSTILE_RETURN_IF_ERROR(runtime->engine_->InstantiateFlow(flow));
  }
  InstallRuntimeInjections(*runtime->interp_);
  // Inject node.transport on every instantiated flow node (bucket D16).
  TURNSTILE_ASSIGN_OR_RETURN(flow_again, Json::Parse(app.flow_json));
  for (const Json& spec : flow_again.is_array() ? flow_again.array_items() : JsonArray{}) {
    ObjectPtr node = runtime->engine_->FindNode(spec.GetString("id"));
    if (node != nullptr) {
      node->Set("transport",
                Value(MakeInjectedSink(*runtime->interp_, "node.transport", {"send"})));
    }
  }
  // Settle module-load-time async activity (socket connects, stream chunks).
  TURNSTILE_RETURN_IF_ERROR(runtime->interp_->RunEventLoop());
  return runtime;
}

Status AppRuntime::DriveMessage(Rng* rng, int seq) {
  return InjectValue(GenerateMessage(message_template_, rng, seq));
}

Status AppRuntime::InjectValue(Value msg) {
  if (app_->entry_kind == "node") {
    // Mailbox-driven: if this instance is already pumping (the message was
    // routed in mid-flow by a terminal sink), the post queues and the
    // outermost pump drains it; otherwise this pumps to quiescence, which is
    // byte-identical to the historical InjectInput + RunEventLoop sequence.
    engine_->PostInput(app_->entry_ref, std::move(msg));
    Status status = engine_->PumpMailbox();
    if (tracker_ != nullptr) {
      tracker_->PublishMetrics();
    }
    return status;
  }
  if (app_->entry_kind == "emitter") {
    auto it = interp_->io_world().emitters.find(app_->entry_ref);
    if (it == interp_->io_world().emitters.end() || it->second.empty()) {
      return NotFoundError(app_->name + ": no emitter tagged " + app_->entry_ref);
    }
    const ObjectPtr& emitter = it->second.front();
    if (app_->entry_ref == "red.httpNode") {
      // HTTP entry: handler receives (req, res).
      interp_->EmitEvent(emitter, app_->entry_event, {msg, MakeHttpResponse(*interp_)});
    } else if (app_->entry_event == "message") {
      // MQTT-style: (topic, payload).
      Value payload = msg.IsObject() ? msg.AsObject()->Get("payload") : msg;
      interp_->EmitEvent(emitter, app_->entry_event, {Value("inbound/topic"), payload});
    } else {
      // Socket/stream style: the payload value itself.
      Value payload =
          msg.IsObject() && msg.AsObject()->Has("payload") ? msg.AsObject()->Get("payload") : msg;
      interp_->EmitEvent(emitter, app_->entry_event, {payload});
    }
  } else {
    return Status::Ok();  // no entry point (bucket E utility scripts)
  }
  Status status = interp_->RunEventLoop();
  if (tracker_ != nullptr) {
    // Flush per-op tracker stats into the "dift.*" registry counters at
    // message granularity — off the per-op hot path.
    tracker_->PublishMetrics();
  }
  return status;
}

}  // namespace turnstile
