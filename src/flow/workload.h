// Workload synthesis for the §6.2 evaluation: generates per-application input
// message streams from a JSON template, and models streaming completion time
// at a fixed input rate.
#ifndef TURNSTILE_SRC_FLOW_WORKLOAD_H_
#define TURNSTILE_SRC_FLOW_WORKLOAD_H_

#include <string>
#include <vector>

#include "src/interp/value.h"
#include "src/support/json.h"
#include "src/support/rng.h"

namespace turnstile {

// Builds a message Value from a JSON template. String fields beginning with
// '$' expand to synthetic data (deterministic per (rng, seq)):
//   "$frame"    — simulated camera frame bytes with varying face content
//   "$word"     — a random word
//   "$sentence" — several words (voice-assistant text)
//   "$num"      — a number in [0, 100)
//   "$id"       — "devNN" style identifier
//   "$email"    — a recipient address
//   "$topic"    — an mqtt-ish topic path
//   "$seq"      — the message sequence number
//   "$json"     — a small JSON document as a string
// Everything else is copied literally.
Value GenerateMessage(const Json& message_template, Rng* rng, int seq);

// Streaming-time model. Messages arrive at `rate_hz`; message i is processed
// for proc_seconds[i] (measured on the real interpreter). Processing is
// serial and work-conserving:
//     start_i  = max(i / rate_hz, finish_{i-1})
//     finish_i = start_i + proc_seconds[i]
// Returns finish of the last message — the end-to-end time the paper's E2
// experiment measures by actually streaming for that long. The queueing
// behaviour (overhead hidden at low rates, exposed at high rates) is
// identical; see DESIGN.md §1.
double StreamCompletionTime(const std::vector<double>& proc_seconds, double rate_hz);

// Relative run-time t/t_og at a rate (the y-axis of Figs. 11 and 12).
double RelativeRuntime(const std::vector<double>& managed_proc,
                       const std::vector<double>& original_proc, double rate_hz);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_FLOW_WORKLOAD_H_
