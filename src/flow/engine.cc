#include "src/flow/engine.h"

#include "src/lang/parser.h"
#include "src/runtime/context.h"
#include "src/support/logging.h"

namespace turnstile {

namespace {
Value ArgAt(const std::vector<Value>& args, size_t i) {
  return i < args.size() ? args[i] : Value::Undefined();
}
}  // namespace

FlowEngine::FlowEngine(Interpreter* interp) : interp_(interp) {
  // Observability handles come from the interpreter's RuntimeContext, so an
  // engine built on an isolated instance reports into that instance's sinks.
  RuntimeContext& context = interp->context();
  trace_recorder_ = &context.trace_recorder();
  profiler_ = &context.profiler();
  audit_ = &context.audit();
  obs::Metrics& metrics = context.metrics();
  metric_routed_ = metrics.GetCounter("flow.messages_routed");
  metric_terminal_ = metrics.GetCounter("flow.terminal_sends");
  metric_injects_ = metrics.GetCounter("flow.injects");
  metric_node_inputs_ = metrics.GetCounter("flow.node_inputs");
  red_ = MakeRedGlobal();
  interp_->DefineGlobal("RED", Value(red_));
}

ObjectPtr FlowEngine::MakeRedGlobal() {
  ObjectPtr red = MakeObject();
  red->debug_tag = "RED";
  ObjectPtr nodes = MakeObject();
  FlowEngine* engine = this;

  nodes->Set("createNode", Value(MakeNativeFunction(
      "RED.nodes.createNode",
      [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        Value target = Unbox(ArgAt(args, 0));
        if (target.IsObject()) {
          target.AsObject()->Set("__red", Value(true));
          Value config = Unbox(ArgAt(args, 1));
          if (config.IsObject()) {
            target.AsObject()->Set("config", config);
          }
        }
        return Value::Undefined();
      })));

  nodes->Set("registerType", Value(MakeNativeFunction(
      "RED.nodes.registerType",
      [engine](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        Value name = Unbox(ArgAt(args, 0));
        Value ctor = Unbox(ArgAt(args, 1));
        if (!name.IsString() || !ctor.IsFunction()) {
          return Interpreter::TypeError("registerType(name, constructor)");
        }
        engine->types_[name.AsString()] = ctor.AsFunction();
        return Value::Undefined();
      })));

  red->Set("nodes", Value(nodes));
  // RED.httpNode: an emitter the runtime wires up dynamically — exactly the
  // object whose flows static analysis cannot see (§6.1).
  red->Set("httpNode", Value(MakeEmitterObject(*interp_, "red.httpNode")));
  ObjectPtr util = MakeObject();
  util->Set("cloneMessage", Value(MakeNativeFunction(
      "RED.util.cloneMessage",
      [](Interpreter&, const Value&, std::vector<Value>& args) -> Result<Value> {
        Value msg = Unbox(ArgAt(args, 0));
        if (!msg.IsObject()) {
          return msg;
        }
        ObjectPtr copy = MakeObject();
        for (Atom key : msg.AsObject()->insertion_order) {
          if (msg.AsObject()->Has(key)) {
            copy->Set(key, msg.AsObject()->Get(key));
          }
        }
        return Value(copy);
      })));
  red->Set("util", Value(util));
  return red;
}

Status FlowEngine::LoadModule(const std::string& source, const std::string& source_name) {
  TURNSTILE_ASSIGN_OR_RETURN(program, ParseProgram(source, source_name));
  return LoadModule(program);
}

Status FlowEngine::LoadModule(const Program& program) {
  // Provide a fresh `module` object, run the module body, then call
  // module.exports(RED).
  ObjectPtr module = MakeObject();
  module->debug_tag = "module";
  interp_->DefineGlobal("module", Value(module));
  TURNSTILE_RETURN_IF_ERROR(interp_->RunProgram(program));
  Value exports = module->Get("exports");
  exports = Unbox(exports);
  if (exports.IsFunction()) {
    TURNSTILE_ASSIGN_OR_RETURN(
        unused, interp_->CallFunction(exports.AsFunction(), Value::Undefined(), {Value(red_)}));
    (void)unused;
  }
  return Status::Ok();
}

ObjectPtr FlowEngine::MakeNodeObject(const std::string& id,
                                     const std::vector<std::string>& wires) {
  ObjectPtr node = MakeEmitterObject(*interp_, "rednode");
  node->Set("id", Value(id));
  FlowEngine* engine = this;

  node->Set("send", Value(MakeNativeFunction(
      "node.send", [engine, id, wires](Interpreter& in, const Value&,
                                       std::vector<Value>& args) -> Result<Value> {
        Value msg = ArgAt(args, 0);
        // Multi-message send: an array fans out each element to every wire.
        std::vector<Value> messages;
        Value unboxed = Unbox(msg);
        if (unboxed.IsArray()) {
          messages = unboxed.AsArray()->elements;
        } else {
          messages.push_back(msg);
        }
        if (wires.empty()) {
          engine->terminal_sends_ += static_cast<int>(messages.size());
          engine->metric_terminal_->Increment(messages.size());
          engine->trace_recorder_->Record(obs::SpanKind::kNodeSend, id, "(terminal)",
                                          in.VirtualNow());
          if (engine->audit_->enabled()) {
            // A send with no outgoing wires is a flow output: the message
            // leaves the flow graph, which the ledger treats as a sink write
            // (one event per fanned-out message, matching the counter above).
            for (size_t i = 0; i < messages.size(); ++i) {
              obs::AuditEvent event;
              event.kind = obs::AuditKind::kSinkWrite;
              event.subject = id;
              event.rule = "terminal";
              engine->audit_->Record(std::move(event));
            }
          }
          if (engine->terminal_sink_) {
            // Fired after the engine's own terminal accounting so a wired
            // sink never changes what this instance records about itself.
            const uint64_t trace_id = engine->trace_recorder_->current_trace();
            for (const Value& m : messages) {
              engine->terminal_sink_(id, m, trace_id);
            }
          }
          return Value::Undefined();
        }
        for (const std::string& target_id : wires) {
          auto it = engine->nodes_.find(target_id);
          if (it == engine->nodes_.end()) {
            continue;
          }
          for (const Value& m : messages) {
            engine->trace_recorder_->Record(obs::SpanKind::kNodeSend, id, target_id,
                                            in.VirtualNow());
            in.EmitEvent(it->second, "input", {m});
            ++engine->messages_routed_;
            engine->metric_routed_->Increment();
          }
        }
        return Value::Undefined();
      })));

  auto noop = [](Interpreter&, const Value&, std::vector<Value>&) -> Result<Value> {
    return Value::Undefined();
  };
  node->Set("status", Value(MakeNativeFunction("node.status", noop)));
  auto log_fn = [id](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
    in.io_world().Record(in.VirtualNow(), "console", "node.log", id,
                         UnboxDeep(ArgAt(args, 0)).ToDisplayString());
    return Value::Undefined();
  };
  node->Set("log", Value(MakeNativeFunction("node.log", log_fn)));
  node->Set("warn", Value(MakeNativeFunction("node.warn", log_fn)));
  node->Set("error", Value(MakeNativeFunction("node.error", log_fn)));

  // Observability listener: registered before the node constructor runs, so
  // it fires ahead of the application's own "input" handlers and marks the
  // message entering the node on its current trace.
  interp_->AddListener(
      node, "input",
      MakeNativeFunction("obs.node_enter",
                         [engine, id](Interpreter& in, const Value&,
                                      std::vector<Value>&) -> Result<Value> {
                           engine->metric_node_inputs_->Increment();
                           engine->trace_recorder_->Record(obs::SpanKind::kNodeEnter, id, "",
                                                           in.VirtualNow());
                           if (engine->profiler_->enabled()) {
                             // Instant marker: the handler's duration is the
                             // enclosing turn span; this pins node identity
                             // inside it.
                             engine->profiler_->EndSpan(engine->profiler_->BeginSpan(
                                 obs::SpanKind::kNodeEnter, "node_enter:" + id,
                                 /*monitor=*/false));
                           }
                           return Value::Undefined();
                         }));
  return node;
}

Status FlowEngine::InstantiateFlow(const Json& flow) {
  if (!flow.is_array()) {
    return InvalidArgumentError("flow spec must be an array of node objects");
  }
  // Per-flow accessors restart from zero on every instantiation; the
  // process-wide cumulative totals live in the metrics registry.
  messages_routed_ = 0;
  terminal_sends_ = 0;
  // First pass: create node objects so wiring targets exist.
  for (const Json& spec : flow.array_items()) {
    std::string id = spec.GetString("id");
    if (id.empty()) {
      return InvalidArgumentError("flow node needs an id");
    }
    std::vector<std::string> wires;
    for (const Json& wire : spec["wires"].is_array() ? spec["wires"].array_items()
                                                     : JsonArray{}) {
      if (wire.is_string()) {
        wires.push_back(wire.string_value());
      }
    }
    wires_[id] = wires;
    nodes_[id] = MakeNodeObject(id, wires);
  }
  // Second pass: run constructors.
  for (const Json& spec : flow.array_items()) {
    std::string id = spec.GetString("id");
    std::string type = spec.GetString("type");
    auto ctor = types_.find(type);
    if (ctor == types_.end()) {
      return NotFoundError("flow references unregistered node type '" + type + "'");
    }
    // Build the config object from the spec.
    ObjectPtr config = MakeObject();
    config->Set("id", Value(id));
    const Json& config_json = spec["config"];
    if (config_json.is_object()) {
      for (const auto& [key, value] : config_json.object_items()) {
        if (value.is_string()) {
          config->Set(key, Value(value.string_value()));
        } else if (value.is_number()) {
          config->Set(key, Value(value.number_value()));
        } else if (value.is_bool()) {
          config->Set(key, Value(value.bool_value()));
        }
      }
    }
    TURNSTILE_ASSIGN_OR_RETURN(
        unused, interp_->CallFunction(ctor->second, Value(nodes_[id]), {Value(config)}));
    (void)unused;
  }
  TURNSTILE_LOG(Debug) << "instantiated flow with " << nodes_.size() << " node(s)";
  return Status::Ok();
}

Status FlowEngine::InjectInput(const std::string& node_id, Value msg) {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) {
    return NotFoundError("unknown flow node '" + node_id + "'");
  }
  metric_injects_->Increment();
  // Each injected message opens a fresh trace; EmitEvent captures the current
  // trace id into the task, so the whole downstream cascade attributes here.
  uint64_t previous = trace_recorder_->current_trace();
  uint64_t trace_id = trace_recorder_->StartTrace(node_id);
  if (profiler_->enabled()) {
    // Root of this message's span tree; turn/dift spans enqueue under it via
    // the captured trace id and close it as they finish.
    profiler_->BeginMessage(trace_id, node_id);
  }
  interp_->EmitEvent(it->second, "input", {std::move(msg)});
  trace_recorder_->SetCurrentTrace(previous);
  return Status::Ok();
}

void FlowEngine::PostInput(const std::string& node_id, Value msg) {
  mailbox_.push_back(PendingInput{node_id, std::move(msg)});
}

Status FlowEngine::PumpMailbox() {
  if (pumping_) {
    // Re-entrant call (a node handler or terminal sink posted more input):
    // the outermost pump is still draining and will pick the new entry up.
    return Status::Ok();
  }
  pumping_ = true;
  Status status = Status::Ok();
  while (!mailbox_.empty()) {
    PendingInput next = std::move(mailbox_.front());
    mailbox_.pop_front();
    // Same sequence DriveMessage always ran: inject, then run the event loop
    // to quiescence before the next input starts.
    Status inject = InjectInput(next.node_id, std::move(next.msg));
    if (!inject.ok() && status.ok()) {
      status = inject;
      continue;
    }
    Status loop = interp_->RunEventLoop();
    if (!loop.ok() && status.ok()) {
      status = loop;
    }
  }
  pumping_ = false;
  return status;
}

ObjectPtr FlowEngine::FindNode(const std::string& node_id) const {
  auto it = nodes_.find(node_id);
  return it == nodes_.end() ? nullptr : it->second;
}

std::vector<std::string> FlowEngine::registered_types() const {
  std::vector<std::string> out;
  for (const auto& [name, ctor] : types_) {
    (void)ctor;
    out.push_back(name);
  }
  return out;
}

}  // namespace turnstile
