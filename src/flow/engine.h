// RedFlow — the Node-RED-like flow framework substrate (§5).
//
// Node-RED applications are modules of the shape
//
//   module.exports = function(RED) {
//     function MyNode(config) {
//       RED.nodes.createNode(this, config);
//       let node = this;
//       node.on("input", msg => { ...; node.send(out); });
//     }
//     RED.nodes.registerType("my-type", MyNode);
//   };
//
// and a *flow* instantiates registered node types and wires them into a DAG.
// RedFlow executes such modules on the MiniScript interpreter: it provides
// the RED global, instantiates flows from a JSON spec, and routes node.send()
// messages along wires through the interpreter's event loop. Instrumented
// and original modules run identically (the engine knows nothing about
// __dift), which is the non-invasiveness property the case study (§5)
// demonstrates.
#ifndef TURNSTILE_SRC_FLOW_ENGINE_H_
#define TURNSTILE_SRC_FLOW_ENGINE_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/interp/interp.h"
#include "src/obs/audit.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/support/json.h"
#include "src/support/status.h"

namespace turnstile {

class FlowEngine {
 public:
  explicit FlowEngine(Interpreter* interp);

  // Parses and executes a Node-RED module, then calls module.exports(RED).
  // Node types registered via RED.nodes.registerType become available to
  // InstantiateFlow. `source_name` feeds diagnostics and policy file
  // matching.
  Status LoadModule(const std::string& source, const std::string& source_name);

  // Same, for an already-parsed (e.g. instrumented) program.
  Status LoadModule(const Program& program);

  // Instantiates a flow: [{ "id": "n1", "type": "camera-in",
  //                         "config": {...}, "wires": ["n2"] }, ...].
  // Constructors run immediately; event handlers land in the event loop.
  Status InstantiateFlow(const Json& flow);

  // Enqueues an input message for a node (the Inject-node equivalent).
  // Call interp->RunEventLoop() to process. When the obs trace recorder is
  // enabled, each injected message starts a new trace whose id follows the
  // message across wires and event-loop turns.
  Status InjectInput(const std::string& node_id, Value msg);

  // --- mailbox-driven entry (the fleet runtime's re-entrant path) ------------

  // Appends an input for `node_id` to the engine's own mailbox without
  // running anything. Unknown node ids are reported when the mailbox is
  // pumped, not here.
  void PostInput(const std::string& node_id, Value msg);

  // Drains the mailbox: each queued input is injected (InjectInput) and the
  // interpreter event loop runs to quiescence before the next input starts —
  // exactly the sequence DriveMessage always performed, now behind one
  // re-entrant entry point. A PostInput issued while a pump is already
  // running (from a node handler, a module callback, or a terminal sink) is
  // simply appended and drained by the *outermost* pump; the inner call
  // returns immediately instead of re-entering the event loop.
  Status PumpMailbox();

  size_t mailbox_depth() const { return mailbox_.size(); }

  // Called for every message sent from a node with no outgoing wires (a flow
  // output), after the engine records its own terminal accounting (metrics,
  // trace, audit sink-write). The fleet runtime uses this to route one app's
  // outputs into another app instance's mailbox. The hook runs on the
  // engine's own thread mid-event-loop: it must not re-enter this
  // interpreter; enqueue (PostInput on another engine, or a shard mailbox
  // post) and return. `trace_id` is the recorder-local trace the send is
  // attributed to (0 when tracing is disabled) — the fleet runtime folds it
  // into the outgoing FleetTraceContext so cross-shard hops stitch.
  using TerminalSink =
      std::function<void(const std::string& node_id, const Value& msg, uint64_t trace_id)>;
  void set_terminal_sink(TerminalSink sink) { terminal_sink_ = std::move(sink); }

  // The node instance object (for assertions), or nullptr.
  ObjectPtr FindNode(const std::string& node_id) const;

  // Registered node type names.
  std::vector<std::string> registered_types() const;

  // Total node.send() deliveries routed along wires since the last
  // InstantiateFlow (thin reads of the per-engine slice; the cumulative
  // process-wide totals live in Metrics::Global() as "flow.messages_routed" /
  // "flow.terminal_sends").
  int messages_routed() const { return messages_routed_; }
  // Messages sent from nodes with no outgoing wires (flow outputs).
  int terminal_sends() const { return terminal_sends_; }

 private:
  ObjectPtr MakeRedGlobal();
  ObjectPtr MakeNodeObject(const std::string& id, const std::vector<std::string>& wires);

  Interpreter* interp_;
  ObjectPtr red_;                                       // the RED global
  std::unordered_map<std::string, FunctionPtr> types_;  // type -> constructor
  std::unordered_map<std::string, ObjectPtr> nodes_;    // id -> instance
  std::unordered_map<std::string, std::vector<std::string>> wires_;
  int messages_routed_ = 0;
  int terminal_sends_ = 0;

  // The engine mailbox (PostInput/PumpMailbox) and its re-entrancy latch.
  struct PendingInput {
    std::string node_id;
    Value msg;
  };
  std::deque<PendingInput> mailbox_;
  bool pumping_ = false;
  TerminalSink terminal_sink_;

  // Observability handles (resolved once in the constructor).
  obs::TraceRecorder* trace_recorder_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  obs::AuditLedger* audit_ = nullptr;
  obs::Counter* metric_routed_ = nullptr;
  obs::Counter* metric_terminal_ = nullptr;
  obs::Counter* metric_injects_ = nullptr;
  obs::Counter* metric_node_inputs_ = nullptr;
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_FLOW_ENGINE_H_
