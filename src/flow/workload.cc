#include "src/flow/workload.h"

#include <algorithm>

namespace turnstile {

namespace {

Value ExpandPlaceholder(const std::string& token, Rng* rng, int seq) {
  if (token == "$frame") {
    // Frame content varies: ~40% contain an employee face, ~30% a visitor,
    // ~30% no face — so value-dependent labellers exercise all branches.
    double roll = rng->NextDouble();
    std::string face = roll < 0.4 ? "employee:u" + std::to_string(rng->NextBelow(20))
                      : roll < 0.7 ? "visitor:anon" + std::to_string(rng->NextBelow(50))
                                   : "empty";
    std::string pixels;
    for (int i = 0; i < 12; ++i) {
      pixels += rng->NextWord(24);
    }
    return Value("frame#" + std::to_string(seq) + "|" + face + "|" + pixels);
  }
  if (token == "$word") {
    return Value(rng->NextWord(3 + rng->NextBelow(8)));
  }
  if (token == "$sentence") {
    std::string out;
    size_t words = 24 + rng->NextBelow(16);
    for (size_t i = 0; i < words; ++i) {
      if (i > 0) {
        out += " ";
      }
      out += rng->NextWord(2 + rng->NextBelow(7));
    }
    return Value(out);
  }
  if (token == "$num") {
    return Value(static_cast<double>(rng->NextBelow(100)));
  }
  if (token == "$id") {
    return Value("dev" + std::to_string(rng->NextBelow(100)));
  }
  if (token == "$email") {
    return Value(rng->NextWord(6) + "@example.com");
  }
  if (token == "$topic") {
    return Value("site/" + rng->NextWord(4) + "/" + rng->NextWord(6));
  }
  if (token == "$seq") {
    return Value(static_cast<double>(seq));
  }
  if (token == "$json") {
    std::string blob;
    for (int i = 0; i < 10; ++i) {
      blob += ",\"f" + std::to_string(i) + "\":\"" + rng->NextWord(18) + "\"";
    }
    return Value("{\"v\":" + std::to_string(rng->NextBelow(1000)) + blob + "}");
  }
  return Value(token);  // unknown placeholder: literal
}

Value FromTemplate(const Json& json, Rng* rng, int seq) {
  switch (json.type()) {
    case Json::Type::kNull:
      return Value::Null();
    case Json::Type::kBool:
      return Value(json.bool_value());
    case Json::Type::kNumber:
      return Value(json.number_value());
    case Json::Type::kString: {
      const std::string& s = json.string_value();
      if (!s.empty() && s[0] == '$') {
        return ExpandPlaceholder(s, rng, seq);
      }
      return Value(s);
    }
    case Json::Type::kArray: {
      std::vector<Value> elements;
      for (const Json& item : json.array_items()) {
        elements.push_back(FromTemplate(item, rng, seq));
      }
      return Value(MakeArray(std::move(elements)));
    }
    case Json::Type::kObject: {
      ObjectPtr object = MakeObject();
      for (const auto& [key, item] : json.object_items()) {
        object->Set(key, FromTemplate(item, rng, seq));
      }
      return Value(object);
    }
  }
  return Value::Undefined();
}

}  // namespace

Value GenerateMessage(const Json& message_template, Rng* rng, int seq) {
  return FromTemplate(message_template, rng, seq);
}

double StreamCompletionTime(const std::vector<double>& proc_seconds, double rate_hz) {
  double finish = 0.0;
  const double period = rate_hz > 0 ? 1.0 / rate_hz : 0.0;
  for (size_t i = 0; i < proc_seconds.size(); ++i) {
    double arrival = static_cast<double>(i) * period;
    double start = std::max(arrival, finish);
    finish = start + proc_seconds[i];
  }
  return finish;
}

double RelativeRuntime(const std::vector<double>& managed_proc,
                       const std::vector<double>& original_proc, double rate_hz) {
  double managed = StreamCompletionTime(managed_proc, rate_hz);
  double original = StreamCompletionTime(original_proc, rate_hz);
  if (original <= 0.0) {
    return 1.0;
  }
  return managed / original;
}

}  // namespace turnstile
