// The Turnstile Dataflow Analyzer (§4.2): a specialized static taint analysis
// that identifies potentially privacy-sensitive code paths between I/O
// sources and sinks.
//
// Architecture (matching the paper's description):
//   - works directly on the AST (no intermediate representation),
//   - resolves identifiers with full scope information,
//   - runs a combined points-to / type-inference fixpoint so that function
//     values reaching call sites are resolved even through variables, object
//     properties and dynamic (bracket) calls — the "sound over-approximation"
//     and "type-sensitive interprocedural analysis" of §4.5/§6.1,
//   - seeds taint from the I/O catalog (all POSIX-style interfaces plus the
//     Express-like and Node-RED-like framework APIs),
//   - reports explicit-flow paths only (no implicit flows, §4.6).
//
// Known blind spots, reproduced deliberately because the paper reports them:
//   - method calls resolved through class inheritance (the prototype chain)
//     are NOT followed — §6.1's two CodeQL-favoring apps,
//   - framework-injected globals (e.g. `RED.httpNode`) are not modeled —
//     §6.1's 26 apps missed by both tools.
#ifndef TURNSTILE_SRC_ANALYSIS_ANALYZER_H_
#define TURNSTILE_SRC_ANALYSIS_ANALYZER_H_

#include <set>
#include <string>
#include <vector>

#include "src/analysis/catalog.h"
#include "src/analysis/scope.h"
#include "src/lang/ast.h"
#include "src/support/status.h"

namespace turnstile {

// One detected privacy-sensitive dataflow.
struct DataflowPath {
  int source_ast = -1;              // AST id of the source expression
  int sink_ast = -1;                // AST id of the sink call
  std::string source_description;
  std::string sink_description;
  SourceLocation source_loc;
  SourceLocation sink_loc;
  std::vector<int> via_ast_nodes;   // one witness chain, source-to-sink order
};

struct AnalysisStats {
  int graph_nodes = 0;
  int graph_edges = 0;
  int fixpoint_rounds = 0;
  int sources_found = 0;
  int sinks_found = 0;
};

struct AnalysisResult {
  std::vector<DataflowPath> paths;     // distinct (source, sink) pairs
  // Every AST node tainted by a source that reaches at least one sink, plus
  // the sink calls themselves — the node set the selective instrumentor
  // manages (§4.3).
  std::set<int> sensitive_ast_nodes;
  AnalysisStats stats;
};

// Runs the Turnstile analysis with the default catalog.
Result<AnalysisResult> AnalyzeProgram(const Program& program);
Result<AnalysisResult> AnalyzeProgram(const Program& program, const Catalog& catalog);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_ANALYSIS_ANALYZER_H_
