#include "src/analysis/scope.h"

namespace turnstile {

namespace {

class Resolver {
 public:
  explicit Resolver(const Program& program) {
    result_.program = &program;
    result_.ast_count = program.node_count;
    result_.ast_by_id.resize(static_cast<size_t>(program.node_count));
    ForEachNode(program.root, [this](const NodePtr& node) {
      if (node->id >= 0 && node->id < result_.ast_count) {
        result_.ast_by_id[static_cast<size_t>(node->id)] = node;
      }
    });
  }

  ResolvedProgram Run() {
    scopes_.emplace_back();  // global scope
    HoistFunctionDecls(result_.program->root->children);
    WalkStatement(result_.program->root, /*fn_index=*/-1);
    scopes_.pop_back();
    return std::move(result_);
  }

 private:
  int NewBinding(const std::string& name, int decl_ast) {
    int index = static_cast<int>(result_.bindings.size());
    result_.bindings.push_back({name, decl_ast});
    return result_.BindingNode(index);
  }

  void Define(const std::string& name, int binding_node) {
    scopes_.back()[name] = binding_node;
  }

  int LookupBinding(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        return found->second;
      }
    }
    return -1;
  }

  // JS function-declaration hoisting: names of function declarations that are
  // immediate statements of a scope are visible throughout that scope (the
  // idiomatic helpers-after-use pattern relies on this).
  void HoistFunctionDecls(const std::vector<NodePtr>& statements) {
    for (const NodePtr& stmt : statements) {
      if (stmt->kind == NodeKind::kFunctionDecl &&
          result_.decl_binding_by_ast.find(stmt->id) == result_.decl_binding_by_ast.end()) {
        int binding = NewBinding(stmt->str, stmt->id);
        result_.decl_binding_by_ast[stmt->id] = binding;
        Define(stmt->str, binding);
      }
    }
  }

  // Declares a function-like node and walks its body in a fresh scope.
  int WalkFunctionLike(const NodePtr& node, int enclosing_fn) {
    int fn_index = static_cast<int>(result_.functions.size());
    result_.functions.emplace_back();
    result_.function_by_ast[node->id] = fn_index;
    {
      FunctionScopeInfo& info = result_.functions[static_cast<size_t>(fn_index)];
      info.ast_id = node->id;
      info.node = node;
      info.enclosing_function = enclosing_fn;
      info.return_binding = NewBinding("<return>", node->id);
      if (node->kind != NodeKind::kArrowFunction) {
        info.this_binding = NewBinding("<this>", node->id);
      }
    }

    scopes_.emplace_back();
    // Named function expressions can recurse through their own name.
    if (node->kind == NodeKind::kFunctionExpr && !node->str.empty()) {
      int self = NewBinding(node->str, node->id);
      Define(node->str, self);
    }
    const NodePtr& params = node->children[0];
    for (const NodePtr& param : params->children) {
      int binding = NewBinding(param->str, param->id);
      Define(param->str, binding);
      result_.functions[static_cast<size_t>(fn_index)].param_bindings.push_back(binding);
    }
    const NodePtr& body = node->children[1];
    if (body->kind == NodeKind::kBlockStmt) {
      HoistFunctionDecls(body->children);
      for (const NodePtr& stmt : body->children) {
        WalkStatement(stmt, fn_index);
      }
    } else {
      WalkExpression(body, fn_index);
    }
    scopes_.pop_back();
    return fn_index;
  }

  void WalkStatement(const NodePtr& node, int fn_index) {
    switch (node->kind) {
      case NodeKind::kProgram:
        for (const NodePtr& stmt : node->children) {
          WalkStatement(stmt, fn_index);
        }
        return;
      case NodeKind::kVarDecl:
        for (const NodePtr& declarator : node->children) {
          // Init is resolved before the binding is defined (no self-reference
          // in initializers, matching let/const temporal dead zone in spirit).
          if (!declarator->children.empty()) {
            WalkExpression(declarator->children[0], fn_index);
          }
          int binding = NewBinding(declarator->str, declarator->id);
          result_.decl_binding_by_ast[declarator->id] = binding;
          Define(declarator->str, binding);
        }
        return;
      case NodeKind::kFunctionDecl: {
        // The binding was created by HoistFunctionDecls when the scope was
        // entered; nested declarations (e.g. inside if-bodies) bind here.
        if (result_.decl_binding_by_ast.find(node->id) ==
            result_.decl_binding_by_ast.end()) {
          int binding = NewBinding(node->str, node->id);
          result_.decl_binding_by_ast[node->id] = binding;
          Define(node->str, binding);
        }
        WalkFunctionLike(node, fn_index);
        return;
      }
      case NodeKind::kClassDecl: {
        int binding = NewBinding(node->str, node->id);
        result_.decl_binding_by_ast[node->id] = binding;
        Define(node->str, binding);
        ClassScopeInfo cls;
        cls.name = node->str;
        cls.ast_id = node->id;
        if (node->children[0]->kind != NodeKind::kEmpty) {
          cls.super_name = node->children[0]->str;
        }
        for (size_t i = 1; i < node->children.size(); ++i) {
          const NodePtr& method = node->children[i];
          int method_fn = WalkFunctionLike(method, fn_index);
          cls.methods[method->str] = method_fn;
        }
        result_.class_by_name[cls.name] = static_cast<int>(result_.classes.size());
        result_.classes.push_back(std::move(cls));
        return;
      }
      case NodeKind::kBlockStmt: {
        scopes_.emplace_back();
        HoistFunctionDecls(node->children);
        for (const NodePtr& stmt : node->children) {
          WalkStatement(stmt, fn_index);
        }
        scopes_.pop_back();
        return;
      }
      case NodeKind::kIfStmt:
        WalkExpression(node->children[0], fn_index);
        WalkStatement(node->children[1], fn_index);
        if (node->children.size() > 2) {
          WalkStatement(node->children[2], fn_index);
        }
        return;
      case NodeKind::kWhileStmt:
        WalkExpression(node->children[0], fn_index);
        WalkStatement(node->children[1], fn_index);
        return;
      case NodeKind::kForStmt: {
        scopes_.emplace_back();
        if (node->children[0]->kind == NodeKind::kVarDecl) {
          WalkStatement(node->children[0], fn_index);
        } else if (node->children[0]->kind != NodeKind::kEmpty) {
          WalkExpression(node->children[0], fn_index);
        }
        if (node->children[1]->kind != NodeKind::kEmpty) {
          WalkExpression(node->children[1], fn_index);
        }
        if (node->children[2]->kind != NodeKind::kEmpty) {
          WalkExpression(node->children[2], fn_index);
        }
        WalkStatement(node->children[3], fn_index);
        scopes_.pop_back();
        return;
      }
      case NodeKind::kForOfStmt: {
        WalkExpression(node->children[1], fn_index);
        scopes_.emplace_back();
        int binding = NewBinding(node->children[0]->str, node->children[0]->id);
        result_.decl_binding_by_ast[node->children[0]->id] = binding;
        Define(node->children[0]->str, binding);
        // The loop variable node itself resolves to its binding.
        result_.use_to_binding[node->children[0]->id] = binding;
        WalkStatement(node->children[2], fn_index);
        scopes_.pop_back();
        return;
      }
      case NodeKind::kReturnStmt:
        if (!node->children.empty()) {
          WalkExpression(node->children[0], fn_index);
        }
        return;
      case NodeKind::kTryStmt: {
        WalkStatement(node->children[0], fn_index);
        if (node->children[2]->kind == NodeKind::kBlockStmt) {
          scopes_.emplace_back();
          if (node->children[1]->kind != NodeKind::kEmpty) {
            int binding = NewBinding(node->children[1]->str, node->children[1]->id);
            Define(node->children[1]->str, binding);
            result_.use_to_binding[node->children[1]->id] = binding;
          }
          WalkStatement(node->children[2], fn_index);
          scopes_.pop_back();
        }
        if (node->children.size() > 3 && node->children[3]->kind == NodeKind::kBlockStmt) {
          WalkStatement(node->children[3], fn_index);
        }
        return;
      }
      case NodeKind::kThrowStmt:
        WalkExpression(node->children[0], fn_index);
        return;
      case NodeKind::kExprStmt:
        WalkExpression(node->children[0], fn_index);
        return;
      case NodeKind::kBreakStmt:
      case NodeKind::kContinueStmt:
      case NodeKind::kEmpty:
        return;
      default:
        if (node->IsExpression()) {
          WalkExpression(node, fn_index);
        }
        return;
    }
  }

  void WalkExpression(const NodePtr& node, int fn_index) {
    switch (node->kind) {
      case NodeKind::kIdentifier: {
        int binding = LookupBinding(node->str);
        if (binding >= 0) {
          result_.use_to_binding[node->id] = binding;
        }
        return;
      }
      case NodeKind::kThisExpr: {
        // Resolve to the nearest non-arrow enclosing function's this-binding.
        for (int fi = fn_index; fi >= 0;
             fi = result_.functions[static_cast<size_t>(fi)].enclosing_function) {
          const FunctionScopeInfo& info = result_.functions[static_cast<size_t>(fi)];
          if (info.this_binding >= 0) {
            result_.use_to_binding[node->id] = info.this_binding;
            return;
          }
        }
        return;
      }
      case NodeKind::kFunctionExpr:
      case NodeKind::kArrowFunction:
        WalkFunctionLike(node, fn_index);
        return;
      case NodeKind::kObjectLit:
        for (const NodePtr& prop : node->children) {
          if (prop->num != 0) {  // computed key
            WalkExpression(prop->children[0], fn_index);
            WalkExpression(prop->children[1], fn_index);
          } else {
            WalkExpression(prop->children[0], fn_index);
          }
        }
        return;
      case NodeKind::kMemberExpr:
        WalkExpression(node->children[0], fn_index);
        return;
      default:
        for (const NodePtr& child : node->children) {
          if (child->kind == NodeKind::kParams || child->kind == NodeKind::kEmpty) {
            continue;
          }
          if (child->IsExpression()) {
            WalkExpression(child, fn_index);
          } else if (child->kind == NodeKind::kBlockStmt) {
            WalkStatement(child, fn_index);
          }
        }
        return;
    }
  }

  ResolvedProgram result_;
  std::vector<std::unordered_map<std::string, int>> scopes_;
};

}  // namespace

ResolvedProgram ResolveScopes(const Program& program) {
  return Resolver(program).Run();
}

}  // namespace turnstile
