// Thin adapter over the shared sema pass (src/lang/resolve.h).
//
// The analyzer historically ran its own scope walk; it now consumes the same
// resolution the interpreter executes against, so the dataflow graph and the
// runtime share one binding structure by construction. The only analyzer-side
// additions are the synthesized per-function "<return>" collector bindings,
// which are a value-flow-graph concept with no runtime storage.
#include "src/analysis/scope.h"

#include "src/lang/resolve.h"

namespace turnstile {

ResolvedProgram ResolveScopes(const Program& program) {
  SemaResult sema = ResolveProgram(program);

  ResolvedProgram result;
  result.program = &program;
  result.ast_count = sema.ast_count;
  result.ast_by_id = std::move(sema.ast_by_id);

  // Sema bindings map index-for-index; graph ids are offset by ast_count.
  result.bindings.reserve(sema.bindings.size() + sema.functions.size());
  for (const SemaBinding& binding : sema.bindings) {
    result.bindings.push_back({binding.name, binding.decl_ast});
  }

  for (const auto& [use_ast, binding_index] : sema.use_to_binding) {
    result.use_to_binding[use_ast] = result.BindingNode(binding_index);
  }
  for (const auto& [decl_ast, binding_index] : sema.decl_binding_by_ast) {
    result.decl_binding_by_ast[decl_ast] = result.BindingNode(binding_index);
  }

  result.functions.reserve(sema.functions.size());
  for (const SemaFunction& fn : sema.functions) {
    FunctionScopeInfo info;
    info.ast_id = fn.ast_id;
    info.node = fn.node;
    info.enclosing_function = fn.enclosing;
    for (int param_binding : fn.param_bindings) {
      info.param_bindings.push_back(result.BindingNode(param_binding));
    }
    if (fn.this_binding >= 0) {
      info.this_binding = result.BindingNode(fn.this_binding);
    }
    // Synthesize the return-value collector the value-flow graph wires
    // kReturnStmt edges into.
    int return_index = static_cast<int>(result.bindings.size());
    result.bindings.push_back({"<return>", fn.ast_id});
    info.return_binding = result.BindingNode(return_index);
    result.functions.push_back(std::move(info));
  }
  result.function_by_ast = std::move(sema.function_by_ast);

  result.classes.reserve(sema.classes.size());
  for (const SemaClass& cls : sema.classes) {
    ClassScopeInfo info;
    info.name = cls.name;
    info.ast_id = cls.ast_id;
    info.super_name = cls.super_name;
    info.methods = cls.methods;
    result.classes.push_back(std::move(info));
  }
  result.class_by_name = std::move(sema.class_by_name);

  return result;
}

}  // namespace turnstile
