#include "src/analysis/report.h"

#include <map>
#include <set>

#include "src/obs/metrics.h"
#include "src/support/stopwatch.h"
#include "src/support/strings.h"

namespace turnstile {

namespace {

std::string HtmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Classification of each source line for highlighting.
enum class LineRole { kPlain, kOnPath, kSource, kSink };

std::map<int, LineRole> ClassifyLines(const Program& program,
                                      const AnalysisResult& analysis) {
  std::map<int, LineRole> roles;
  std::map<int, SourceLocation> loc_by_id;
  ForEachNode(program.root, [&loc_by_id](const NodePtr& node) {
    loc_by_id[node->id] = node->loc;
  });
  for (int node : analysis.sensitive_ast_nodes) {
    auto it = loc_by_id.find(node);
    if (it != loc_by_id.end() && it->second.line > 0) {
      roles[it->second.line] = LineRole::kOnPath;
    }
  }
  for (const DataflowPath& path : analysis.paths) {
    if (path.source_loc.line > 0) {
      roles[path.source_loc.line] = LineRole::kSource;
    }
  }
  for (const DataflowPath& path : analysis.paths) {
    if (path.sink_loc.line > 0) {
      roles[path.sink_loc.line] = LineRole::kSink;
    }
  }
  return roles;
}

}  // namespace

std::string RenderHtmlReport(const Program& program, const std::string& source,
                             const AnalysisResult& analysis) {
  Stopwatch report_watch;
  std::map<int, LineRole> roles = ClassifyLines(program, analysis);
  std::string out;
  out += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>Turnstile report: ";
  out += HtmlEscape(program.source_name);
  out += "</title>\n<style>\n"
         "body { font-family: sans-serif; margin: 2em; }\n"
         "pre { border: 1px solid #ccc; padding: 1em; }\n"
         ".line { display: block; }\n"
         ".num { color: #999; user-select: none; }\n"
         ".onpath { background: #fff3c4; }\n"
         ".source { background: #c8e6c9; font-weight: bold; }\n"
         ".sink { background: #ffcdd2; font-weight: bold; }\n"
         ".flow { margin: 0.5em 0; padding: 0.5em; border-left: 4px solid #b71c1c; }\n"
         "</style></head><body>\n";
  out += "<h1>Privacy-sensitive dataflows: " + HtmlEscape(program.source_name) + "</h1>\n";
  out += "<p>" + std::to_string(analysis.paths.size()) + " dataflow(s), " +
         std::to_string(analysis.stats.sources_found) + " source(s), " +
         std::to_string(analysis.stats.sinks_found) + " sink(s), " +
         std::to_string(analysis.sensitive_ast_nodes.size()) +
         " privacy-sensitive AST nodes.</p>\n";

  out += "<h2>Dataflows</h2>\n";
  if (analysis.paths.empty()) {
    out += "<p>No privacy-sensitive dataflows detected.</p>\n";
  }
  for (size_t i = 0; i < analysis.paths.size(); ++i) {
    const DataflowPath& path = analysis.paths[i];
    out += "<div class=\"flow\"><b>#" + std::to_string(i + 1) + "</b> " +
           HtmlEscape(path.source_description) + " (line " +
           std::to_string(path.source_loc.line) + ") &rarr; " +
           HtmlEscape(path.sink_description) + " (line " +
           std::to_string(path.sink_loc.line) + "), via " +
           std::to_string(path.via_ast_nodes.size()) + " expressions</div>\n";
  }

  out += "<h2>Source</h2>\n<pre>\n";
  std::vector<std::string> lines = StrSplit(source, '\n');
  for (size_t i = 0; i < lines.size(); ++i) {
    int line_number = static_cast<int>(i) + 1;
    const char* css = "";
    auto it = roles.find(line_number);
    if (it != roles.end()) {
      switch (it->second) {
        case LineRole::kSource:
          css = " source";
          break;
        case LineRole::kSink:
          css = " sink";
          break;
        case LineRole::kOnPath:
          css = " onpath";
          break;
        default:
          break;
      }
    }
    char num[16];
    std::snprintf(num, sizeof(num), "%4d", line_number);
    out += "<span class=\"line" + std::string(css) + "\"><span class=\"num\">" +
           std::string(num) + "</span>  " + HtmlEscape(lines[i]) + "</span>\n";
  }
  out += "</pre>\n</body></html>\n";
  obs::Metrics::Global()
      .GetHistogram("analysis.report_seconds")
      ->Observe(report_watch.ElapsedSeconds());
  return out;
}

std::string RenderTextReport(const Program& program, const std::string& source,
                             const AnalysisResult& analysis) {
  Stopwatch report_watch;
  std::map<int, LineRole> roles = ClassifyLines(program, analysis);
  std::string out = program.source_name + ": " + std::to_string(analysis.paths.size()) +
                    " privacy-sensitive dataflow(s)\n";
  for (size_t i = 0; i < analysis.paths.size(); ++i) {
    const DataflowPath& path = analysis.paths[i];
    out += "  #" + std::to_string(i + 1) + " " + path.source_description + " (line " +
           std::to_string(path.source_loc.line) + ") -> " + path.sink_description +
           " (line " + std::to_string(path.sink_loc.line) + ")\n";
  }
  std::vector<std::string> lines = StrSplit(source, '\n');
  for (size_t i = 0; i < lines.size(); ++i) {
    int line_number = static_cast<int>(i) + 1;
    char marker = ' ';
    auto it = roles.find(line_number);
    if (it != roles.end()) {
      marker = it->second == LineRole::kSource ? 'S'
               : it->second == LineRole::kSink ? '!'
                                               : '*';
    }
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "%c %4d | ", marker, line_number);
    out += buffer + lines[i] + "\n";
  }
  obs::Metrics::Global()
      .GetHistogram("analysis.report_seconds")
      ->Observe(report_watch.ElapsedSeconds());
  return out;
}

std::string ExplainViolation(const Violation& violation) {
  char header[160];
  std::snprintf(header, sizeof(header), "violation at t=%.3f: %s -> %s\n",
                violation.time, violation.data_labels.c_str(),
                violation.sink.c_str());
  std::string out = header;
  if (!violation.origin_node.empty()) {
    out += "  message injected at flow node '" + violation.origin_node + "'";
    if (violation.trace_id != 0) {
      out += " (trace #" + std::to_string(violation.trace_id) + ")";
    }
    out += "\n";
  } else if (violation.trace_id != 0) {
    out += "  trace #" + std::to_string(violation.trace_id) + "\n";
  }
  if (violation.provenance.empty()) {
    out += "  (no provenance recorded — enable DiftTracker provenance and/or "
           "the obs trace recorder)\n";
    return out;
  }
  out += "  provenance chain:\n";
  for (size_t i = 0; i < violation.provenance.size(); ++i) {
    char index[16];
    std::snprintf(index, sizeof(index), "  %3zu. ", i + 1);
    out += index + violation.provenance[i].ToString() + "\n";
  }
  return out;
}

}  // namespace turnstile
