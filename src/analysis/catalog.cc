#include "src/analysis/catalog.h"

namespace turnstile {

const CallTypeRule* Catalog::FindCallType(const std::string& receiver_tag,
                                          const std::string& property) const {
  for (const CallTypeRule& rule : call_types) {
    if (rule.receiver_tag == receiver_tag && rule.property == property) {
      return &rule;
    }
  }
  return nullptr;
}

const CallbackSourceRule* Catalog::FindCallbackSource(const std::string& receiver_tag,
                                                      const std::string& property,
                                                      const std::string& event) const {
  for (const CallbackSourceRule& rule : callback_sources) {
    if (rule.receiver_tag == receiver_tag && rule.property == property &&
        (rule.event.empty() || rule.event == event)) {
      return &rule;
    }
  }
  return nullptr;
}

const ReturnSourceRule* Catalog::FindReturnSource(const std::string& receiver_tag,
                                                  const std::string& property) const {
  for (const ReturnSourceRule& rule : return_sources) {
    if (rule.receiver_tag == receiver_tag && rule.property == property) {
      return &rule;
    }
  }
  return nullptr;
}

const SinkRule* Catalog::FindSink(const std::string& receiver_tag,
                                  const std::string& property) const {
  for (const SinkRule& rule : sinks) {
    if (rule.receiver_tag == receiver_tag && rule.property == property) {
      return &rule;
    }
  }
  return nullptr;
}

const Catalog& DefaultCatalog() {
  static const Catalog* kCatalog = [] {
    auto* c = new Catalog();

    // ---- object-producing calls (type propagation rules) -------------------
    c->call_types = {
        {"module:net", "connect", "net.socket"},
        {"module:net", "createServer", "net.server"},
        {"module:fs", "createReadStream", "fs.readStream"},
        {"module:fs", "createWriteStream", "fs.writeStream"},
        {"module:http", "request", "http.request"},
        {"module:http", "get", "http.request"},
        {"module:http", "createServer", "http.server"},
        {"module:https", "request", "http.request"},
        {"module:https", "get", "http.request"},
        {"module:mqtt", "connect", "mqtt.client"},
        {"module:nodemailer", "createTransport", "smtp.transport"},
        {"module:sqlite3", "Database", "sqlite.db"},  // `new sqlite.Database(...)`
        {"module:express", "", "express.app"},        // calling the module itself
    };

    // ---- sources ------------------------------------------------------------
    c->callback_sources = {
        // net: socket.on("data", chunk => ...)
        {"net.socket", "on", "data", -1, 0, -1, "", "net socket data"},
        {"net.socket", "on", "connect", -1, -1, -1, "", ""},  // no taint
        // net server: connection handler receives a socket (registered either
        // via createServer(cb) or server.on("connection", cb)).
        {"net.server", "on", "connection", -1, -1, 0, "net.socket", "incoming socket"},
        {"module:net", "createServer", "", -1, -1, 0, "net.socket", "incoming socket"},
        // fs: readFile(path, (err, data)), readStream.on("data", cb)
        {"module:fs", "readFile", "", -1, 1, -1, "", "fs.readFile data"},
        {"fs.readStream", "on", "data", -1, 0, -1, "", "fs read stream chunk"},
        // http: get/request callbacks receive a response emitter.
        {"module:http", "get", "", -1, -1, 0, "http.response", "http response"},
        {"module:http", "request", "", -1, -1, 0, "http.response", "http response"},
        {"module:https", "get", "", -1, -1, 0, "http.response", "http response"},
        {"http.response", "on", "data", -1, 0, -1, "", "http body chunk"},
        // http server: request handler receives (req, res).
        {"http.server", "on", "request", -1, 0, 1, "http.serverResponse", "http request"},
        {"module:http", "createServer", "", -1, 0, 1, "http.serverResponse", "http request"},
        // mqtt: client.on("message", (topic, payload) => ...)
        {"mqtt.client", "on", "message", -1, 1, -1, "", "mqtt message"},
        // sqlite reads: db.get(sql, (err, row))
        {"sqlite.db", "get", "", -1, 1, -1, "", "sqlite row"},
        {"sqlite.db", "all", "", -1, 1, -1, "", "sqlite rows"},
        // Express-like: app.get(path, (req, res)), app.post, app.use.
        {"express.app", "get", "", -1, 0, 1, "express.res", "express request"},
        {"express.app", "post", "", -1, 0, 1, "express.res", "express request"},
        {"express.app", "put", "", -1, 0, 1, "express.res", "express request"},
        {"express.app", "use", "", -1, 0, 1, "express.res", "express middleware"},
        // Node-RED: node.on("input", msg => ...) — the canonical IoT source.
        {"rednode", "on", "input", -1, 0, -1, "", "Node-RED input message"},
        // Deepstack SaaS: results arrive via promise .then (handled generically
        // by the analyzers); the initial recognition result is a source.
        {"module:deepstack", "faceRecognition", "", -1, -1, -1, "", ""},
    };

    c->return_sources = {
        {"module:fs", "readFileSync", "fs.readFileSync content"},
        {"module:deepstack", "faceRecognition", "face recognition result"},
    };

    // ---- sinks ---------------------------------------------------------------
    c->sinks = {
        {"net.socket", "write", {0}, "socket write"},
        {"net.socket", "end", {0}, "socket end"},
        {"module:fs", "writeFile", {1}, "fs.writeFile"},
        {"module:fs", "writeFileSync", {1}, "fs.writeFileSync"},
        {"module:fs", "appendFile", {1}, "fs.appendFile"},
        {"fs.writeStream", "write", {0}, "write stream"},
        {"http.request", "write", {0}, "http request body"},
        {"http.request", "end", {0}, "http request end"},
        {"http.serverResponse", "end", {0}, "http response body"},
        {"http.serverResponse", "write", {0}, "http response body"},
        {"mqtt.client", "publish", {0, 1}, "mqtt publish"},
        {"smtp.transport", "sendMail", {0}, "email send"},
        {"sqlite.db", "run", {0, 1}, "sqlite write"},
        {"express.res", "send", {0}, "express response"},
        {"express.res", "json", {0}, "express response"},
        {"express.res", "end", {0}, "express response"},
        {"rednode", "send", {0}, "Node-RED send"},
    };
    return c;
  }();
  return *kCatalog;
}

}  // namespace turnstile
