// HTML dataflow report: renders analyzer findings over the source listing so
// a developer can visually inspect each privacy-sensitive path (the artifact's
// run-turnstile-single.js produces the same kind of page).
#ifndef TURNSTILE_SRC_ANALYSIS_REPORT_H_
#define TURNSTILE_SRC_ANALYSIS_REPORT_H_

#include <string>

#include "src/analysis/analyzer.h"
#include "src/lang/ast.h"

namespace turnstile {

// Produces a self-contained HTML page: the numbered source listing with
// source/sink/path lines highlighted, plus one section per dataflow.
std::string RenderHtmlReport(const Program& program, const std::string& source,
                             const AnalysisResult& analysis);

// Plain-text variant for terminals (used by examples/analyze_app --report).
std::string RenderTextReport(const Program& program, const std::string& source,
                             const AnalysisResult& analysis);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_ANALYSIS_REPORT_H_
