// HTML dataflow report: renders analyzer findings over the source listing so
// a developer can visually inspect each privacy-sensitive path (the artifact's
// run-turnstile-single.js produces the same kind of page).
#ifndef TURNSTILE_SRC_ANALYSIS_REPORT_H_
#define TURNSTILE_SRC_ANALYSIS_REPORT_H_

#include <string>

#include "src/analysis/analyzer.h"
#include "src/dift/tracker.h"
#include "src/lang/ast.h"

namespace turnstile {

// Produces a self-contained HTML page: the numbered source listing with
// source/sink/path lines highlighted, plus one section per dataflow.
std::string RenderHtmlReport(const Program& program, const std::string& source,
                             const AnalysisResult& analysis);

// Plain-text variant for terminals (used by examples/analyze_app --report).
std::string RenderTextReport(const Program& program, const std::string& source,
                             const AnalysisResult& analysis);

// Renders a runtime violation's provenance chain as a human-readable
// multi-line explanation: which labeller attached each offending label, the
// flow node the message was injected at, the spans the message traversed
// (when tracing was enabled), and the forbidden flow itself.
std::string ExplainViolation(const Violation& violation);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_ANALYSIS_REPORT_H_
