// Taint source/sink catalog: the "domain knowledge of commonly used
// JavaScript libraries" the paper's Dataflow Analyzer encodes (§4.2).
//
// The catalog models all POSIX-style I/O interfaces as seen through the
// simulated modules (fs/net/http/mqtt/nodemailer/sqlite3/deepstack), plus the
// Express-like and Node-RED-like framework interfaces the paper's CodeQL
// query also covered (Fig. 9: IOSource/ExpressSource/NodeRedSource).
//
// Both analyzers share this catalog; they differ in propagation power, not in
// the list of recognized interfaces — mirroring the evaluation setup, where
// the custom CodeQL query used the same selection criteria as Turnstile.
#ifndef TURNSTILE_SRC_ANALYSIS_CATALOG_H_
#define TURNSTILE_SRC_ANALYSIS_CATALOG_H_

#include <optional>
#include <string>
#include <vector>

namespace turnstile {

// Result-type rule: calling `property` on a receiver with `receiver_tag`
// yields a value with `result_tag`. Example: ("module:net", "connect") ->
// "net.socket".
struct CallTypeRule {
  std::string receiver_tag;
  std::string property;
  std::string result_tag;
};

// Source rule bound to a callback parameter. `event` restricts `.on(event,
// cb)`-style registrations ("" = not event-based). `callback_arg` is the
// index of the callback argument (-1 = last argument). `param_index` is the
// tainted parameter of that callback. `param_tag`, when set, also assigns a
// type tag to a (possibly different) parameter — e.g. http.createServer's
// response object.
struct CallbackSourceRule {
  std::string receiver_tag;
  std::string property;
  std::string event;       // "" when the call is not `.on(event, cb)`
  int callback_arg = -1;   // -1 = last
  int taint_param = 0;     // parameter index that becomes a taint source
  int tag_param = -1;      // optional parameter receiving `param_tag`
  std::string param_tag;
  const char* description = "";
};

// Source rule for direct return values (e.g. fs.readFileSync).
struct ReturnSourceRule {
  std::string receiver_tag;
  std::string property;
  const char* description = "";
};

// Sink rule: data arguments of `receiver.property(...)` leave the
// application. `data_args` lists tainted-checked argument indices
// (-1 = all arguments).
struct SinkRule {
  std::string receiver_tag;
  std::string property;
  std::vector<int> data_args;
  const char* description = "";
};

// The complete catalog.
struct Catalog {
  std::vector<CallTypeRule> call_types;
  std::vector<CallbackSourceRule> callback_sources;
  std::vector<ReturnSourceRule> return_sources;
  std::vector<SinkRule> sinks;

  const CallTypeRule* FindCallType(const std::string& receiver_tag,
                                   const std::string& property) const;
  const CallbackSourceRule* FindCallbackSource(const std::string& receiver_tag,
                                               const std::string& property,
                                               const std::string& event) const;
  const ReturnSourceRule* FindReturnSource(const std::string& receiver_tag,
                                           const std::string& property) const;
  const SinkRule* FindSink(const std::string& receiver_tag, const std::string& property) const;
};

// The default catalog covering core I/O, Express-like, and Node-RED-like
// interfaces.
const Catalog& DefaultCatalog();

}  // namespace turnstile

#endif  // TURNSTILE_SRC_ANALYSIS_CATALOG_H_
