#include "src/analysis/analyzer.h"

#include <deque>
#include <map>
#include <unordered_set>

#include "src/obs/metrics.h"
#include "src/support/stopwatch.h"

namespace turnstile {

namespace {

// A taint seed: where the analysis starts tracking.
struct SourceSeed {
  int graph_node = -1;
  int report_ast = -1;
  std::string description;
};

// A sink call with the argument nodes that must not receive tainted data.
struct SinkSite {
  int call_ast = -1;
  std::vector<int> data_arg_nodes;  // graph node ids
  std::string description;
};

class Analyzer {
 public:
  Analyzer(const Program& program, const Catalog& catalog)
      : resolved_(ResolveScopes(program)), catalog_(catalog) {
    int n = resolved_.total_nodes();
    edges_.resize(static_cast<size_t>(n));
    redges_.resize(static_cast<size_t>(n));
    funcs_.resize(static_cast<size_t>(n));
    instance_classes_.resize(static_cast<size_t>(n));
    tags_.resize(static_cast<size_t>(n));
  }

  int InternTag(const std::string& tag) {
    auto [it, inserted] = tag_ids_.try_emplace(tag, static_cast<int>(tag_names_.size()));
    if (inserted) {
      tag_names_.push_back(tag);
    }
    return it->second;
  }

  Result<AnalysisResult> Run() {
    obs::Metrics& metrics = obs::Metrics::Global();
    Stopwatch fixpoint_watch;
    BuildGenericEdges();
    SeedFunctionValues();
    // Combined points-to / type-inference / call-resolution fixpoint.
    int rounds = 0;
    bool changed = true;
    while (changed && rounds < 64) {
      ++rounds;
      PropagateSets();
      changed = ScanCallSites();
    }
    metrics.GetHistogram("analysis.fixpoint_seconds")
        ->Observe(fixpoint_watch.ElapsedSeconds());
    AnalysisResult result;
    result.stats.fixpoint_rounds = rounds;
    result.stats.graph_nodes = resolved_.total_nodes();
    result.stats.graph_edges = edge_count_;
    result.stats.sources_found = static_cast<int>(sources_.size());
    result.stats.sinks_found = static_cast<int>(sinks_.size());
    Stopwatch taint_watch;
    RunTaint(&result);
    metrics.GetHistogram("analysis.taint_seconds")
        ->Observe(taint_watch.ElapsedSeconds());
    metrics.GetCounter("analysis.paths_found")->Increment(result.paths.size());
    return result;
  }

 private:
  // --- graph helpers ---------------------------------------------------------

  bool AddEdge(int u, int v) {
    if (u < 0 || v < 0 || u == v) {
      return false;
    }
    auto [it, inserted] = edges_[static_cast<size_t>(u)].insert(v);
    (void)it;
    if (inserted) {
      redges_[static_cast<size_t>(v)].insert(u);
      ++edge_count_;
    }
    return inserted;
  }

  // Member/index *read* edges carry taint and function values, but not type
  // tags: reading node.transport must not make the transport look like the
  // node itself.
  bool AddReadEdge(int u, int v) {
    bool inserted = AddEdge(u, v);
    if (u >= 0 && v >= 0) {
      no_tag_edges_.insert((static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
                           static_cast<uint32_t>(v));
    }
    return inserted;
  }

  bool IsTagEdge(int u, int v) const {
    return no_tag_edges_.count((static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
                               static_cast<uint32_t>(v)) == 0;
  }

  const NodePtr& Ast(int id) const { return resolved_.ast_by_id[static_cast<size_t>(id)]; }

  // Binding node an identifier use resolves to, or -1.
  int UseBinding(const NodePtr& node) const {
    auto it = resolved_.use_to_binding.find(node->id);
    return it == resolved_.use_to_binding.end() ? -1 : it->second;
  }

  // Graph node representing the *value* flowing out of an expression. For
  // identifiers this is the use node itself (which the binding feeds).
  int ValueNode(const NodePtr& node) const { return node->id; }

  // The binding node written by assigning through a member/index chain:
  // follows children[0] to the base identifier/this. -1 when anonymous.
  int RootBindingOfTarget(const NodePtr& target) const {
    NodePtr base = target;
    while (base->kind == NodeKind::kMemberExpr || base->kind == NodeKind::kIndexExpr ||
           base->kind == NodeKind::kCallExpr) {
      base = base->children[0];
    }
    if (base->kind == NodeKind::kIdentifier || base->kind == NodeKind::kThisExpr) {
      return UseBinding(base);
    }
    return base->id;
  }

  // --- generic intraprocedural edges ------------------------------------------

  void BuildGenericEdges() {
    WalkForEdges(resolved_.program->root, /*fn_index=*/-1);
    // Identifier/this uses: binding feeds every use site.
    for (const auto& [use_ast, binding] : resolved_.use_to_binding) {
      AddEdge(binding, use_ast);
    }
  }

  void WalkForEdges(const NodePtr& node, int fn_index) {
    // Recurse first so children exist in the call-site list before parents.
    int child_fn = fn_index;
    if (node->IsFunctionLike()) {
      auto it = resolved_.function_by_ast.find(node->id);
      if (it != resolved_.function_by_ast.end()) {
        child_fn = it->second;
      }
    }
    for (const NodePtr& child : node->children) {
      WalkForEdges(child, child_fn);
    }

    switch (node->kind) {
      case NodeKind::kVarDecl:
        for (const NodePtr& declarator : node->children) {
          if (!declarator->children.empty()) {
            auto it = resolved_.decl_binding_by_ast.find(declarator->id);
            if (it != resolved_.decl_binding_by_ast.end()) {
              AddEdge(ValueNode(declarator->children[0]), it->second);
            }
          }
        }
        return;
      case NodeKind::kAssignExpr: {
        const NodePtr& target = node->children[0];
        const NodePtr& value = node->children[1];
        AddEdge(ValueNode(value), node->id);
        if (target->kind == NodeKind::kIdentifier) {
          int binding = UseBinding(target);
          AddEdge(ValueNode(value), binding);
          if (node->str != "=") {
            AddEdge(binding, node->id);  // compound read …
            AddEdge(node->id, binding);  // … and the derived result flows back
          }
        } else {
          // Field-insensitive write: the whole container becomes tainted.
          int root = RootBindingOfTarget(target);
          AddEdge(ValueNode(value), root);
          if (node->str != "=") {
            AddEdge(root, node->id);
            AddEdge(node->id, root);
          }
        }
        return;
      }
      case NodeKind::kBinaryExpr:
      case NodeKind::kLogicalExpr:
        AddEdge(ValueNode(node->children[0]), node->id);
        AddEdge(ValueNode(node->children[1]), node->id);
        return;
      case NodeKind::kUnaryExpr:
      case NodeKind::kUpdateExpr:
      case NodeKind::kAwaitExpr:
      case NodeKind::kSpreadElement:
        AddEdge(ValueNode(node->children[0]), node->id);
        return;
      case NodeKind::kConditionalExpr:
        AddEdge(ValueNode(node->children[1]), node->id);
        AddEdge(ValueNode(node->children[2]), node->id);
        return;
      case NodeKind::kSequenceExpr:
        AddEdge(ValueNode(node->children.back()), node->id);
        return;
      case NodeKind::kArrayLit:
        for (const NodePtr& element : node->children) {
          AddEdge(ValueNode(element), node->id);
        }
        return;
      case NodeKind::kObjectLit:
        for (const NodePtr& prop : node->children) {
          const NodePtr& value = prop->num != 0 ? prop->children[1] : prop->children[0];
          AddEdge(ValueNode(value), node->id);
        }
        return;
      case NodeKind::kMemberExpr:
      case NodeKind::kIndexExpr:
        // Field-insensitive read (taint + function values, not type tags).
        AddReadEdge(ValueNode(node->children[0]), node->id);
        return;
      case NodeKind::kForOfStmt: {
        auto it = resolved_.decl_binding_by_ast.find(node->children[0]->id);
        if (it != resolved_.decl_binding_by_ast.end()) {
          AddEdge(ValueNode(node->children[1]), it->second);
        }
        return;
      }
      case NodeKind::kReturnStmt: {
        if (!node->children.empty() && fn_index >= 0) {
          AddEdge(ValueNode(node->children[0]),
                  resolved_.functions[static_cast<size_t>(fn_index)].return_binding);
        }
        return;
      }
      case NodeKind::kArrowFunction: {
        // Expression body is an implicit return.
        auto it = resolved_.function_by_ast.find(node->id);
        if (it != resolved_.function_by_ast.end() &&
            node->children[1]->kind != NodeKind::kBlockStmt) {
          AddEdge(ValueNode(node->children[1]),
                  resolved_.functions[static_cast<size_t>(it->second)].return_binding);
        }
        return;
      }
      case NodeKind::kCallExpr:
      case NodeKind::kNewExpr:
        call_sites_.push_back(node->id);
        return;
      case NodeKind::kFunctionDecl: {
        auto it = resolved_.decl_binding_by_ast.find(node->id);
        if (it != resolved_.decl_binding_by_ast.end()) {
          AddEdge(node->id, it->second);
        }
        return;
      }
      default:
        return;
    }
  }

  void SeedFunctionValues() {
    for (size_t fi = 0; fi < resolved_.functions.size(); ++fi) {
      int ast_id = resolved_.functions[fi].ast_id;
      funcs_[static_cast<size_t>(ast_id)].insert(static_cast<int>(fi));
    }
    for (size_t ci = 0; ci < resolved_.classes.size(); ++ci) {
      auto it = resolved_.decl_binding_by_ast.find(resolved_.classes[ci].ast_id);
      if (it != resolved_.decl_binding_by_ast.end()) {
        class_of_binding_[it->second] = static_cast<int>(ci);
      }
    }
  }

  // Propagates funcs/instance/tag sets along edges to a local fixpoint,
  // worklist-driven (near-linear in practice — the specialization that makes
  // Turnstile fast).
  void PropagateSets() {
    std::deque<int> worklist;
    std::vector<bool> queued(static_cast<size_t>(resolved_.total_nodes()), false);
    for (int u = 0; u < resolved_.total_nodes(); ++u) {
      if (!funcs_[static_cast<size_t>(u)].empty() ||
          !instance_classes_[static_cast<size_t>(u)].empty() ||
          !tags_[static_cast<size_t>(u)].empty()) {
        worklist.push_back(u);
        queued[static_cast<size_t>(u)] = true;
      }
    }
    while (!worklist.empty()) {
      int u = worklist.front();
      worklist.pop_front();
      queued[static_cast<size_t>(u)] = false;
      for (int v : edges_[static_cast<size_t>(u)]) {
        bool v_changed = false;
        for (int f : funcs_[static_cast<size_t>(u)]) {
          v_changed |= funcs_[static_cast<size_t>(v)].insert(f).second;
        }
        for (int c : instance_classes_[static_cast<size_t>(u)]) {
          v_changed |= instance_classes_[static_cast<size_t>(v)].insert(c).second;
        }
        if (IsTagEdge(u, v)) {
          for (int t : tags_[static_cast<size_t>(u)]) {
            v_changed |= tags_[static_cast<size_t>(v)].insert(t).second;
          }
        }
        if (v_changed && !queued[static_cast<size_t>(v)]) {
          queued[static_cast<size_t>(v)] = true;
          worklist.push_back(v);
        }
      }
    }
  }

  bool AddTag(int node, const std::string& tag) {
    if (node < 0) {
      return false;
    }
    return tags_[static_cast<size_t>(node)].insert(InternTag(tag)).second;
  }

  bool AddSourceSeed(int graph_node, int report_ast, const std::string& description) {
    if (graph_node < 0) {
      return false;
    }
    for (const SourceSeed& seed : sources_) {
      if (seed.graph_node == graph_node) {
        return false;
      }
    }
    sources_.push_back({graph_node, report_ast, description});
    return true;
  }

  bool AddSink(int call_ast, std::vector<int> data_args, const std::string& description) {
    for (const SinkSite& sink : sinks_) {
      if (sink.call_ast == call_ast) {
        return false;
      }
    }
    sinks_.push_back({call_ast, std::move(data_args), description});
    return true;
  }

  // Argument nodes of a call/new (children[1..]).
  std::vector<int> ArgNodes(const NodePtr& call) const {
    std::vector<int> out;
    for (size_t i = 1; i < call->children.size(); ++i) {
      out.push_back(call->children[i]->id);
    }
    return out;
  }

  // The `.on("event", ...)` event string, or "".
  std::string EventName(const NodePtr& call) const {
    if (call->children.size() > 1 && call->children[1]->kind == NodeKind::kStringLit) {
      return call->children[1]->str;
    }
    return "";
  }

  // Resolves the index of the callback argument (-1 rule = last arg).
  int CallbackArgIndex(const NodePtr& call, int rule_index) const {
    int arg_count = static_cast<int>(call->children.size()) - 1;
    if (arg_count == 0) {
      return -1;
    }
    if (rule_index < 0) {
      return arg_count - 1;
    }
    return rule_index < arg_count ? rule_index : -1;
  }

  // One scan over all call sites; applies catalog rules and resolves calls.
  // Returns true when anything (edge/tag/seed/sink) was added.
  bool ScanCallSites() {
    bool changed = false;
    for (int call_ast : call_sites_) {
      const NodePtr& call = Ast(call_ast);
      const NodePtr& callee = call->children[0];

      // require("x") — the type seed.
      if (callee->kind == NodeKind::kIdentifier && callee->str == "require" &&
          UseBinding(callee) < 0 && call->children.size() > 1 &&
          call->children[1]->kind == NodeKind::kStringLit) {
        changed |= AddTag(call_ast, "module:" + call->children[1]->str);
        continue;
      }

      std::string property;
      int receiver_node = -1;
      if (callee->kind == NodeKind::kMemberExpr) {
        property = callee->str;
        receiver_node = callee->children[0]->id;
      } else if (callee->kind == NodeKind::kIndexExpr) {
        // Dynamic property call foo[x](y): over-approximation handles the
        // function set; catalog rules need a static name and don't apply.
        receiver_node = callee->children[0]->id;
      }

      // RED.nodes.createNode(this, config): tags `this` of the enclosing
      // function as a Node-RED node.
      if (property == "createNode" && callee->children[0]->kind == NodeKind::kMemberExpr &&
          callee->children[0]->str == "nodes" && call->children.size() > 1) {
        int binding = UseBinding(call->children[1]);
        if (binding < 0) {
          binding = call->children[1]->id;
        }
        changed |= AddTag(binding, "rednode");
      }
      // RED.nodes.registerType("name", Ctor): the constructor's `this` is a
      // Node-RED node.
      if (property == "registerType" && callee->children[0]->kind == NodeKind::kMemberExpr &&
          callee->children[0]->str == "nodes" && call->children.size() > 2) {
        for (int fi : funcs_[static_cast<size_t>(call->children[2]->id)]) {
          int this_binding = resolved_.functions[static_cast<size_t>(fi)].this_binding;
          changed |= AddTag(this_binding, "rednode");
        }
      }

      // Collect receiver tags (for member calls) or callee tags (direct).
      std::vector<std::string> receiver_tags;
      if (receiver_node >= 0) {
        for (int tag_id : tags_[static_cast<size_t>(receiver_node)]) {
          receiver_tags.push_back(tag_names_[static_cast<size_t>(tag_id)]);
        }
      } else {
        // Direct call: rules with empty property match callee tags.
        for (int tag_id : tags_[static_cast<size_t>(callee->id)]) {
          const CallTypeRule* rule =
              catalog_.FindCallType(tag_names_[static_cast<size_t>(tag_id)], "");
          if (rule != nullptr) {
            changed |= AddTag(call_ast, rule->result_tag);
          }
        }
      }

      bool catalog_handled = false;
      std::string event = property == "on" || property == "once" ? EventName(call) : "";
      for (const std::string& tag : receiver_tags) {
        if (const CallTypeRule* rule = catalog_.FindCallType(tag, property)) {
          changed |= AddTag(call_ast, rule->result_tag);
          catalog_handled = true;
        }
        if (const CallbackSourceRule* rule =
                catalog_.FindCallbackSource(tag, property, event)) {
          catalog_handled = true;
          int cb_index = CallbackArgIndex(call, rule->callback_arg);
          if (cb_index >= 0) {
            int cb_node = call->children[static_cast<size_t>(cb_index) + 1]->id;
            for (int fi : funcs_[static_cast<size_t>(cb_node)]) {
              const FunctionScopeInfo& fn = resolved_.functions[static_cast<size_t>(fi)];
              if (rule->taint_param >= 0 &&
                  rule->taint_param < static_cast<int>(fn.param_bindings.size())) {
                changed |= AddSourceSeed(
                    fn.param_bindings[static_cast<size_t>(rule->taint_param)], call_ast,
                    rule->description);
              }
              if (rule->tag_param >= 0 &&
                  rule->tag_param < static_cast<int>(fn.param_bindings.size())) {
                changed |= AddTag(fn.param_bindings[static_cast<size_t>(rule->tag_param)],
                                  rule->param_tag);
              }
            }
          }
        }
        if (const ReturnSourceRule* rule = catalog_.FindReturnSource(tag, property)) {
          changed |= AddSourceSeed(call_ast, call_ast, rule->description);
          catalog_handled = true;
        }
        if (const SinkRule* rule = catalog_.FindSink(tag, property)) {
          std::vector<int> data_args;
          if (rule->data_args.size() == 1 && rule->data_args[0] == -1) {
            data_args = ArgNodes(call);
          } else {
            for (int index : rule->data_args) {
              if (index >= 0 && index + 1 < static_cast<int>(call->children.size())) {
                data_args.push_back(call->children[static_cast<size_t>(index) + 1]->id);
              }
            }
          }
          changed |= AddSink(call_ast, std::move(data_args), rule->description);
          catalog_handled = true;
        }
      }

      // Promise pass-through: x.then(cb) forwards x's taint into cb's first
      // parameter (await is handled by a generic edge).
      if (property == "then" || property == "catch") {
        int cb_index = CallbackArgIndex(call, 0);
        if (cb_index >= 0) {
          int cb_node = call->children[static_cast<size_t>(cb_index) + 1]->id;
          for (int fi : funcs_[static_cast<size_t>(cb_node)]) {
            const FunctionScopeInfo& fn = resolved_.functions[static_cast<size_t>(fi)];
            if (!fn.param_bindings.empty()) {
              changed |= AddEdge(receiver_node, fn.param_bindings[0]);
            }
            // The .then() result carries the handler's return value.
            changed |= AddEdge(fn.return_binding, call_ast);
          }
        }
        catalog_handled = true;
      }

      // Resolve user-defined callees: identifiers, properties, dynamic
      // bracket calls — all through the propagated function-value sets.
      bool resolved_user_fn = false;
      const std::set<int>& callee_funcs = funcs_[static_cast<size_t>(callee->id)];
      for (int fi : callee_funcs) {
        resolved_user_fn = true;
        changed |= ConnectCall(call, resolved_.functions[static_cast<size_t>(fi)],
                               receiver_node);
      }

      // Class instantiation and method resolution. Turnstile resolves methods
      // on a class's OWN method table only — inherited (prototype-chain)
      // methods are its documented blind spot.
      if (call->kind == NodeKind::kNewExpr) {
        int callee_binding = UseBinding(callee);
        auto cls = class_of_binding_.find(callee_binding);
        if (cls != class_of_binding_.end()) {
          changed |= instance_classes_[static_cast<size_t>(call_ast)]
                         .insert(cls->second)
                         .second;
          const ClassScopeInfo& info = resolved_.classes[static_cast<size_t>(cls->second)];
          auto ctor = info.methods.find("constructor");
          if (ctor != info.methods.end()) {
            changed |= ConnectCall(call, resolved_.functions[static_cast<size_t>(ctor->second)],
                                   call_ast);
          }
          resolved_user_fn = true;
        }
      }
      if (receiver_node >= 0 && !property.empty()) {
        for (int ci : instance_classes_[static_cast<size_t>(receiver_node)]) {
          const ClassScopeInfo& info = resolved_.classes[static_cast<size_t>(ci)];
          auto method = info.methods.find(property);  // own methods only
          if (method != info.methods.end()) {
            changed |= ConnectCall(call,
                                   resolved_.functions[static_cast<size_t>(method->second)],
                                   receiver_node);
            resolved_user_fn = true;
          }
        }
      }

      // Unresolved library call: conservatively let data flow through it
      // (e.g. JSON.stringify(tainted) is tainted). Event registrations are
      // control-flow, not dataflow, so they are excluded.
      if (!resolved_user_fn && !catalog_handled && property != "on" && property != "once" &&
          property != "subscribe" && property != "listen" && property != "push") {
        for (int arg : ArgNodes(call)) {
          changed |= AddEdge(arg, call_ast);
        }
        if (receiver_node >= 0) {
          changed |= AddEdge(receiver_node, call_ast);
        }
      }
      // `.push(x)` mutates the receiver container.
      if (property == "push") {
        int root = RootBindingOfTarget(callee->children[0]);
        for (int arg : ArgNodes(call)) {
          changed |= AddEdge(arg, root >= 0 ? root : receiver_node);
        }
      }
    }
    return changed;
  }

  // Adds arg→param, return→call, receiver→this edges for a resolved call.
  bool ConnectCall(const NodePtr& call, const FunctionScopeInfo& fn, int receiver_node) {
    bool changed = false;
    int arg_count = static_cast<int>(call->children.size()) - 1;
    for (int i = 0; i < arg_count; ++i) {
      const NodePtr& arg = call->children[static_cast<size_t>(i) + 1];
      if (arg->kind == NodeKind::kSpreadElement) {
        // Spread: conservatively feed every parameter.
        for (int param : fn.param_bindings) {
          changed |= AddEdge(arg->children[0]->id, param);
        }
        continue;
      }
      if (i < static_cast<int>(fn.param_bindings.size())) {
        changed |= AddEdge(arg->id, fn.param_bindings[static_cast<size_t>(i)]);
      } else if (!fn.param_bindings.empty() &&
                 fn.node->children[0]->children.back()->kind == NodeKind::kRestParam) {
        changed |= AddEdge(arg->id, fn.param_bindings.back());
      }
    }
    changed |= AddEdge(fn.return_binding, call->id);
    if (receiver_node >= 0 && fn.this_binding >= 0) {
      changed |= AddEdge(receiver_node, fn.this_binding);
    }
    return changed;
  }

  // --- taint propagation -----------------------------------------------------

  void RunTaint(AnalysisResult* result) {
    const int n = resolved_.total_nodes();
    std::set<std::pair<int, int>> reported;  // (source report ast, sink ast)
    for (size_t si = 0; si < sources_.size(); ++si) {
      const SourceSeed& seed = sources_[si];
      // Forward BFS with predecessors.
      std::vector<int> pred(static_cast<size_t>(n), -2);
      std::deque<int> frontier;
      pred[static_cast<size_t>(seed.graph_node)] = -1;
      frontier.push_back(seed.graph_node);
      while (!frontier.empty()) {
        int u = frontier.front();
        frontier.pop_front();
        for (int v : edges_[static_cast<size_t>(u)]) {
          if (pred[static_cast<size_t>(v)] == -2) {
            pred[static_cast<size_t>(v)] = u;
            frontier.push_back(v);
          }
        }
      }
      bool reaches_sink = false;
      std::vector<int> reached_sink_args;
      for (const SinkSite& sink : sinks_) {
        for (int arg : sink.data_arg_nodes) {
          if (arg >= 0 && pred[static_cast<size_t>(arg)] != -2) {
            reaches_sink = true;
            reached_sink_args.push_back(arg);
            if (reported.insert({seed.report_ast, sink.call_ast}).second) {
              DataflowPath path;
              path.source_ast = seed.report_ast;
              path.sink_ast = sink.call_ast;
              path.source_description = seed.description;
              path.sink_description = sink.description;
              if (seed.report_ast >= 0 && seed.report_ast < resolved_.ast_count) {
                path.source_loc = Ast(seed.report_ast)->loc;
              }
              path.sink_loc = Ast(sink.call_ast)->loc;
              // Witness chain: predecessor walk from the sink argument.
              std::vector<int> chain;
              for (int node = arg; node >= 0; node = pred[static_cast<size_t>(node)]) {
                if (node < resolved_.ast_count) {
                  chain.push_back(node);
                }
              }
              path.via_ast_nodes.assign(chain.rbegin(), chain.rend());
              path.via_ast_nodes.push_back(sink.call_ast);
              result->paths.push_back(std::move(path));
            }
          }
        }
      }
      if (!reaches_sink) {
        continue;
      }
      // Sensitive node set: forward-reachable ∩ backward-reachable-from-sinks.
      std::vector<bool> back(static_cast<size_t>(n), false);
      std::deque<int> back_frontier;
      for (int arg : reached_sink_args) {
        if (!back[static_cast<size_t>(arg)]) {
          back[static_cast<size_t>(arg)] = true;
          back_frontier.push_back(arg);
        }
      }
      while (!back_frontier.empty()) {
        int u = back_frontier.front();
        back_frontier.pop_front();
        for (int v : redges_[static_cast<size_t>(u)]) {
          if (!back[static_cast<size_t>(v)] && pred[static_cast<size_t>(v)] != -2) {
            back[static_cast<size_t>(v)] = true;
            back_frontier.push_back(v);
          }
        }
      }
      for (int node = 0; node < resolved_.ast_count; ++node) {
        if (pred[static_cast<size_t>(node)] != -2 && back[static_cast<size_t>(node)]) {
          result->sensitive_ast_nodes.insert(node);
        }
      }
      if (seed.report_ast >= 0) {
        result->sensitive_ast_nodes.insert(seed.report_ast);
      }
    }
    for (const DataflowPath& path : result->paths) {
      result->sensitive_ast_nodes.insert(path.sink_ast);
    }
  }

  ResolvedProgram resolved_;
  const Catalog& catalog_;
  std::vector<std::set<int>> edges_;
  std::vector<std::set<int>> redges_;
  int edge_count_ = 0;
  std::vector<std::set<int>> funcs_;
  std::vector<std::set<int>> instance_classes_;
  std::vector<std::set<int>> tags_;  // interned tag ids
  std::unordered_map<std::string, int> tag_ids_;
  std::vector<std::string> tag_names_;
  std::map<int, int> class_of_binding_;
  std::unordered_set<uint64_t> no_tag_edges_;
  std::vector<int> call_sites_;
  std::vector<SourceSeed> sources_;
  std::vector<SinkSite> sinks_;
};

}  // namespace

Result<AnalysisResult> AnalyzeProgram(const Program& program, const Catalog& catalog) {
  obs::Metrics& metrics = obs::Metrics::Global();
  metrics.GetCounter("analysis.runs")->Increment();
  // Scope resolution runs in the Analyzer constructor; time it separately
  // from the fixpoint + taint phases (instrumented inside Run()).
  Stopwatch scope_watch;
  Analyzer analyzer(program, catalog);
  metrics.GetHistogram("analysis.scope_seconds")->Observe(scope_watch.ElapsedSeconds());
  return analyzer.Run();
}

Result<AnalysisResult> AnalyzeProgram(const Program& program) {
  return AnalyzeProgram(program, DefaultCatalog());
}

}  // namespace turnstile
