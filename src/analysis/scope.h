// Scope/symbol resolution for MiniScript programs: binds every identifier use
// to its declaration, enumerates function-like nodes with their parameter
// bindings, `this` pseudo-bindings and return collectors, and records class
// declarations for method resolution.
//
// The resolved structures define the node space of the value-flow graph used
// by the Turnstile Dataflow Analyzer: graph node ids are
//   [0, ast_count)                     — AST nodes (by Node::id)
//   [ast_count, ast_count + bindings)  — variable bindings, `this` bindings,
//                                        and per-function return collectors
#ifndef TURNSTILE_SRC_ANALYSIS_SCOPE_H_
#define TURNSTILE_SRC_ANALYSIS_SCOPE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/lang/ast.h"
#include "src/support/status.h"

namespace turnstile {

struct BindingInfo {
  std::string name;   // variable name, or "<this>", "<return>"
  int decl_ast = -1;  // AST node that introduced it (-1 for synthesized)
};

struct FunctionScopeInfo {
  int ast_id = -1;                  // the function-like node
  NodePtr node;
  std::vector<int> param_bindings;  // graph node ids, in parameter order
  int this_binding = -1;            // graph node id (-1 for arrows)
  int return_binding = -1;          // graph node id collecting return values
  int enclosing_function = -1;      // index into functions (-1 = top level)
};

struct ClassScopeInfo {
  std::string name;
  int ast_id = -1;
  std::string super_name;                          // "" when no extends
  std::unordered_map<std::string, int> methods;    // method name -> function index
};

struct ResolvedProgram {
  const Program* program = nullptr;
  int ast_count = 0;
  std::vector<NodePtr> ast_by_id;                  // indexed by Node::id
  std::vector<BindingInfo> bindings;
  // Identifier/ThisExpr AST id -> binding graph node id (absent = unresolved,
  // e.g. builtin globals like `console` or framework-injected names).
  std::unordered_map<int, int> use_to_binding;
  std::vector<FunctionScopeInfo> functions;
  std::unordered_map<int, int> function_by_ast;    // fn ast id -> function index
  std::vector<ClassScopeInfo> classes;
  std::unordered_map<std::string, int> class_by_name;
  // Binding graph node id of each declared function name / class name.
  std::unordered_map<int, int> decl_binding_by_ast;  // decl ast id -> binding id

  int total_nodes() const { return ast_count + static_cast<int>(bindings.size()); }
  int BindingNode(int binding_index) const { return ast_count + binding_index; }
};

// Resolves scopes over a parsed program. Never fails on valid parses; unbound
// identifiers simply have no entry in use_to_binding.
ResolvedProgram ResolveScopes(const Program& program);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_ANALYSIS_SCOPE_H_
