// Small string utilities shared across the project.
#ifndef TURNSTILE_SRC_SUPPORT_STRINGS_H_
#define TURNSTILE_SRC_SUPPORT_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace turnstile {

// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Splits on `sep` and trims ASCII whitespace from each piece; drops empties.
std::vector<std::string> StrSplitTrimmed(std::string_view text, char sep);

// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StrTrim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);
bool Contains(std::string_view text, std::string_view needle);

// Replaces every occurrence of `from` (non-empty) with `to`.
std::string StrReplaceAll(std::string_view text, std::string_view from, std::string_view to);

// Formats a double the way a JS-ish runtime prints numbers: integers without a
// trailing ".0", everything else with up to 12 significant digits.
std::string NumberToString(double value);

// Repeats `unit` `count` times.
std::string StrRepeat(std::string_view unit, size_t count);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_SUPPORT_STRINGS_H_
