// Minimal self-contained JSON document model, parser and serializer.
//
// Used for IFC policy files, corpus metadata and bench output. Objects keep
// insertion order (useful for stable, diffable serialization).
#ifndef TURNSTILE_SRC_SUPPORT_JSON_H_
#define TURNSTILE_SRC_SUPPORT_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "src/support/status.h"

namespace turnstile {

class Json;

using JsonArray = std::vector<Json>;
// Ordered list of key/value pairs; keys are unique (last write wins).
using JsonObject = std::vector<std::pair<std::string, Json>>;

// A JSON document node. Value semantics; cheap to move.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : data_(nullptr) {}
  Json(std::nullptr_t) : data_(nullptr) {}
  Json(bool value) : data_(value) {}
  Json(double value) : data_(value) {}
  Json(int value) : data_(static_cast<double>(value)) {}
  Json(int64_t value) : data_(static_cast<double>(value)) {}
  Json(size_t value) : data_(static_cast<double>(value)) {}
  Json(const char* value) : data_(std::string(value)) {}
  Json(std::string value) : data_(std::move(value)) {}
  Json(JsonArray value) : data_(std::move(value)) {}
  Json(JsonObject value) : data_(std::move(value)) {}

  static Json Array() { return Json(JsonArray{}); }
  static Json Object() { return Json(JsonObject{}); }

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  // Typed accessors; asserted in debug builds, undefined on type mismatch.
  bool bool_value() const { return std::get<bool>(data_); }
  double number_value() const { return std::get<double>(data_); }
  const std::string& string_value() const { return std::get<std::string>(data_); }
  const JsonArray& array_items() const { return std::get<JsonArray>(data_); }
  JsonArray& array_items() { return std::get<JsonArray>(data_); }
  const JsonObject& object_items() const { return std::get<JsonObject>(data_); }
  JsonObject& object_items() { return std::get<JsonObject>(data_); }

  // Object field lookup; returns a shared null instance when missing or when
  // this node is not an object, so lookups chain safely.
  const Json& operator[](std::string_view key) const;
  // Array index; shared null when out of range.
  const Json& operator[](size_t index) const;

  bool Has(std::string_view key) const;

  // Sets (or replaces) an object field. Converts a null node to an object.
  void Set(std::string key, Json value);
  // Appends to an array. Converts a null node to an array.
  void Append(Json value);

  // Convenience typed getters with fallbacks.
  std::string GetString(std::string_view key, std::string fallback = "") const;
  double GetNumber(std::string_view key, double fallback = 0.0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;

  // Serializes compactly ({"a":1}) or with 2-space indentation.
  std::string Dump(bool pretty = false) const;

  // Parses a JSON document. Accepts // line comments (policies are written by
  // hand) and trailing commas.
  static Result<Json> Parse(std::string_view text);

  bool operator==(const Json& other) const { return data_ == other.data_; }

 private:
  void DumpTo(std::string* out, bool pretty, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> data_;
};

// Escapes a string for embedding in JSON (adds surrounding quotes).
std::string JsonQuote(std::string_view text);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_SUPPORT_JSON_H_
