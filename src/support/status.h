// Lightweight Status / Result<T> error-handling primitives.
//
// Library code in this repository does not throw across module boundaries;
// fallible operations return Result<T> and callers decide how to surface
// failures (tests assert, tools print the message and exit).
#ifndef TURNSTILE_SRC_SUPPORT_STATUS_H_
#define TURNSTILE_SRC_SUPPORT_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace turnstile {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kPolicyError,
  kRuntimeError,
};

// Human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A status is either OK or carries an error code plus a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "InvalidArgument: expected a number" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status ParseError(std::string message);
Status PolicyError(std::string message);
Status RuntimeError(std::string message);

// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit: allows `return value;` and `return SomeError(...);`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    assert(!std::get<Status>(data_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok() && "value() called on error Result");
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok() && "value() called on error Result");
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok() && "value() called on error Result");
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // value_or: returns the contained value or `fallback` on error.
  T value_or(T fallback) const {
    if (ok()) {
      return value();
    }
    return fallback;
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace turnstile

// Propagates an error Result from a subexpression: the macro evaluates `expr`
// and returns its status from the enclosing function if it failed.
#define TURNSTILE_ASSIGN_OR_RETURN(lhs, expr)    \
  auto lhs##_result = (expr);                    \
  if (!lhs##_result.ok()) {                      \
    return lhs##_result.status();                \
  }                                              \
  auto lhs = std::move(lhs##_result).value()

#define TURNSTILE_RETURN_IF_ERROR(expr)          \
  do {                                           \
    ::turnstile::Status status_ = (expr);        \
    if (!status_.ok()) {                         \
      return status_;                            \
    }                                            \
  } while (0)

#endif  // TURNSTILE_SRC_SUPPORT_STATUS_H_
