#include "src/support/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace turnstile {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> StrSplitTrimmed(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (const std::string& piece : StrSplit(text, sep)) {
    std::string_view trimmed = StrTrim(piece);
    if (!trimmed.empty()) {
      out.emplace_back(trimmed);
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::string_view StrTrim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string StrReplaceAll(std::string_view text, std::string_view from, std::string_view to) {
  if (from.empty()) {
    return std::string(text);
  }
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string NumberToString(double value) {
  if (std::isnan(value)) {
    return "NaN";
  }
  if (std::isinf(value)) {
    return value > 0 ? "Infinity" : "-Infinity";
  }
  double integral = 0.0;
  if (std::modf(value, &integral) == 0.0 && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::string StrRepeat(std::string_view unit, size_t count) {
  std::string out;
  out.reserve(unit.size() * count);
  for (size_t i = 0; i < count; ++i) {
    out.append(unit);
  }
  return out;
}

}  // namespace turnstile
