#include "src/support/status.h"

namespace turnstile {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kPolicyError:
      return "PolicyError";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status PolicyError(std::string message) {
  return Status(StatusCode::kPolicyError, std::move(message));
}
Status RuntimeError(std::string message) {
  return Status(StatusCode::kRuntimeError, std::move(message));
}

}  // namespace turnstile
