// Strict environment-variable parsing shared by benches and the fleet
// runtime (TURNSTILE_BENCH_INSTANCES, TURNSTILE_FLEET_SHARDS, ...).
//
// Follows the TURNSTILE_EXEC_TIER contract: a malformed value — trailing
// garbage ("8x"), a negative count, out-of-range — keeps the fallback but
// warns loudly ONCE per variable. A silently ignored TURNSTILE_FLEET_SHARDS
// would run a whole fleet bench on the wrong configuration and invalidate
// every number it reports.
#ifndef TURNSTILE_SRC_SUPPORT_ENV_H_
#define TURNSTILE_SRC_SUPPORT_ENV_H_

namespace turnstile {

// Reads integer environment variable `name`. Unset returns `fallback`
// silently. A strict parse (strtol over the whole value, result in
// [min, max]) returns the parsed value; anything else — empty value,
// trailing garbage, a value outside [min, max] — warns once per variable
// name and returns `fallback`.
long EnvInt(const char* name, long fallback, long min, long max);

// Re-arms the once-only warnings (tests only).
void ResetEnvWarningsForTest();

}  // namespace turnstile

#endif  // TURNSTILE_SRC_SUPPORT_ENV_H_
