#include "src/support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/support/strings.h"

namespace turnstile {

namespace {
const Json& SharedNull() {
  static const Json kNull;
  return kNull;
}
}  // namespace

Json::Type Json::type() const {
  switch (data_.index()) {
    case 0:
      return Type::kNull;
    case 1:
      return Type::kBool;
    case 2:
      return Type::kNumber;
    case 3:
      return Type::kString;
    case 4:
      return Type::kArray;
    default:
      return Type::kObject;
  }
}

const Json& Json::operator[](std::string_view key) const {
  if (!is_object()) {
    return SharedNull();
  }
  for (const auto& [k, v] : object_items()) {
    if (k == key) {
      return v;
    }
  }
  return SharedNull();
}

const Json& Json::operator[](size_t index) const {
  if (!is_array() || index >= array_items().size()) {
    return SharedNull();
  }
  return array_items()[index];
}

bool Json::Has(std::string_view key) const {
  if (!is_object()) {
    return false;
  }
  for (const auto& [k, v] : object_items()) {
    (void)v;
    if (k == key) {
      return true;
    }
  }
  return false;
}

void Json::Set(std::string key, Json value) {
  if (is_null()) {
    data_ = JsonObject{};
  }
  JsonObject& fields = object_items();
  for (auto& [k, v] : fields) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  fields.emplace_back(std::move(key), std::move(value));
}

void Json::Append(Json value) {
  if (is_null()) {
    data_ = JsonArray{};
  }
  array_items().push_back(std::move(value));
}

std::string Json::GetString(std::string_view key, std::string fallback) const {
  const Json& field = (*this)[key];
  return field.is_string() ? field.string_value() : fallback;
}

double Json::GetNumber(std::string_view key, double fallback) const {
  const Json& field = (*this)[key];
  return field.is_number() ? field.number_value() : fallback;
}

bool Json::GetBool(std::string_view key, bool fallback) const {
  const Json& field = (*this)[key];
  return field.is_bool() ? field.bool_value() : fallback;
}

std::string JsonQuote(std::string_view text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Json::DumpTo(std::string* out, bool pretty, int depth) const {
  const std::string indent = pretty ? std::string(2 * (depth + 1), ' ') : "";
  const std::string closing_indent = pretty ? std::string(2 * depth, ' ') : "";
  const char* newline = pretty ? "\n" : "";
  switch (type()) {
    case Type::kNull:
      out->append("null");
      return;
    case Type::kBool:
      out->append(bool_value() ? "true" : "false");
      return;
    case Type::kNumber:
      out->append(NumberToString(number_value()));
      return;
    case Type::kString:
      out->append(JsonQuote(string_value()));
      return;
    case Type::kArray: {
      const JsonArray& items = array_items();
      if (items.empty()) {
        out->append("[]");
        return;
      }
      out->append("[");
      out->append(newline);
      for (size_t i = 0; i < items.size(); ++i) {
        out->append(indent);
        items[i].DumpTo(out, pretty, depth + 1);
        if (i + 1 < items.size()) {
          out->append(",");
        }
        out->append(newline);
      }
      out->append(closing_indent);
      out->append("]");
      return;
    }
    case Type::kObject: {
      const JsonObject& fields = object_items();
      if (fields.empty()) {
        out->append("{}");
        return;
      }
      out->append("{");
      out->append(newline);
      for (size_t i = 0; i < fields.size(); ++i) {
        out->append(indent);
        out->append(JsonQuote(fields[i].first));
        out->append(pretty ? ": " : ":");
        fields[i].second.DumpTo(out, pretty, depth + 1);
        if (i + 1 < fields.size()) {
          out->append(",");
        }
        out->append(newline);
      }
      out->append(closing_indent);
      out->append("}");
      return;
    }
  }
}

std::string Json::Dump(bool pretty) const {
  std::string out;
  DumpTo(&out, pretty, 0);
  return out;
}

namespace {

// Recursive-descent JSON parser with // comments and trailing commas.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    SkipWhitespace();
    TURNSTILE_ASSIGN_OR_RETURN(value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& message) const {
    return ParseError(message + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          ++pos_;
        }
      } else {
        break;
      }
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    if (AtEnd()) {
      return Fail("unexpected end of input");
    }
    char c = Peek();
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        if (ConsumeLiteral("true")) {
          return Json(true);
        }
        return Fail("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          return Json(false);
        }
        return Fail("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          return Json(nullptr);
        }
        return Fail("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (!AtEnd() && (Peek() == '-' || Peek() == '+')) {
      ++pos_;
    }
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) || Peek() == '.' ||
                        Peek() == 'e' || Peek() == 'E' || Peek() == '-' || Peek() == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Fail("malformed number '" + token + "'");
    }
    return Json(value);
  }

  Result<Json> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (AtEnd()) {
        return Fail("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return Json(std::move(out));
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (AtEnd()) {
        return Fail("unterminated escape");
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          unsigned code = 0;
          if (std::sscanf(hex.c_str(), "%4x", &code) != 1) {
            return Fail("malformed \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs are not needed here).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json out = Json::Array();
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      SkipWhitespace();
      if (!AtEnd() && Peek() == ']') {  // trailing comma
        ++pos_;
        return out;
      }
      TURNSTILE_ASSIGN_OR_RETURN(item, ParseValue());
      out.Append(std::move(item));
      SkipWhitespace();
      if (AtEnd()) {
        return Fail("unterminated array");
      }
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return out;
      }
      return Fail("expected ',' or ']'");
    }
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json out = Json::Object();
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      SkipWhitespace();
      if (!AtEnd() && Peek() == '}') {  // trailing comma
        ++pos_;
        return out;
      }
      if (AtEnd() || Peek() != '"') {
        return Fail("expected object key");
      }
      TURNSTILE_ASSIGN_OR_RETURN(key, ParseString());
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWhitespace();
      TURNSTILE_ASSIGN_OR_RETURN(value, ParseValue());
      out.Set(key.string_value(), std::move(value));
      SkipWhitespace();
      if (AtEnd()) {
        return Fail("unterminated object");
      }
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return out;
      }
      return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace turnstile
