#include "src/support/env.h"

#include <cctype>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

#include "src/support/logging.h"

namespace turnstile {

namespace {
// Variable names that have already produced a warning. Guarded by a mutex:
// env probes happen at startup/setup time, never on a hot path.
std::mutex g_warned_mu;
std::set<std::string>& WarnedNames() {
  static std::set<std::string>* names = new std::set<std::string>();
  return *names;
}

void WarnOnce(const char* name, const char* value, long fallback, long min, long max) {
  std::lock_guard<std::mutex> lock(g_warned_mu);
  if (!WarnedNames().insert(name).second) {
    return;
  }
  TURNSTILE_LOG(Warning) << "invalid " << name << " value \"" << value
                         << "\"; expected an integer in [" << min << ", " << max
                         << "] — keeping the default " << fallback;
}
}  // namespace

long EnvInt(const char* name, long fallback, long min, long max) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  // Whole-string contract: no leading whitespace either (strtol would skip
  // it), so the accepted language is exactly an optionally-signed integer.
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (std::isspace(static_cast<unsigned char>(value[0])) || end == value || *end != '\0' ||
      parsed < min || parsed > max) {
    WarnOnce(name, value, fallback, min, max);
    return fallback;
  }
  return parsed;
}

void ResetEnvWarningsForTest() {
  std::lock_guard<std::mutex> lock(g_warned_mu);
  WarnedNames().clear();
}

}  // namespace turnstile
