// Deterministic pseudo-random generator (SplitMix64) for workload synthesis.
//
// Benches and tests must be reproducible across runs and platforms, so we do
// not use std::random_device / std::mt19937 distributions (whose outputs are
// implementation-defined for some distributions).
#ifndef TURNSTILE_SRC_SUPPORT_RNG_H_
#define TURNSTILE_SRC_SUPPORT_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace turnstile {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // True with probability p.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  // Random lowercase identifier of the given length.
  std::string NextWord(size_t length) {
    std::string out;
    out.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      out += static_cast<char>('a' + NextBelow(26));
    }
    return out;
  }

  // Picks a uniformly random element (container must be non-empty).
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[NextBelow(items.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_SUPPORT_RNG_H_
