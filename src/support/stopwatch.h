// Wall-clock stopwatch used by the benchmark harnesses.
#ifndef TURNSTILE_SRC_SUPPORT_STOPWATCH_H_
#define TURNSTILE_SRC_SUPPORT_STOPWATCH_H_

#include <chrono>

namespace turnstile {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction / last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_SUPPORT_STOPWATCH_H_
