#include "src/support/logging.h"

#include <atomic>
#include <cstdio>

namespace turnstile {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold.store(level); }
LogLevel GetLogThreshold() { return g_threshold.load(); }

void EmitLogLine(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[turnstile %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace turnstile
