#include "src/support/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace turnstile {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarning};
// Whether the threshold has been decided (explicitly via SetLogThreshold or
// by reading TURNSTILE_LOG at first use). An explicit call wins over the env.
std::atomic<bool> g_threshold_decided{false};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

bool ParseLevel(const char* text, LogLevel* out) {
  std::string name = text == nullptr ? "" : text;
  if (name == "debug") {
    *out = LogLevel::kDebug;
  } else if (name == "info") {
    *out = LogLevel::kInfo;
  } else if (name == "warning" || name == "warn") {
    *out = LogLevel::kWarning;
  } else if (name == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

// Seconds since the first log-related call — a monotonic clock, so lines can
// be correlated with bench timings even when the wall clock steps.
double MonotonicSeconds() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}
}  // namespace

void SetLogThreshold(LogLevel level) {
  g_threshold_decided.store(true);
  g_threshold.store(level);
}

LogLevel GetLogThreshold() {
  if (!g_threshold_decided.load()) {
    // First use: honor TURNSTILE_LOG=debug|info|warning|error. Unset or
    // unrecognized values keep the compiled-in default.
    LogLevel from_env;
    if (ParseLevel(std::getenv("TURNSTILE_LOG"), &from_env)) {
      g_threshold.store(from_env);
    }
    g_threshold_decided.store(true);
  }
  return g_threshold.load();
}

void EmitLogLine(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[turnstile %s +%.6f] %s\n", LevelName(level),
               MonotonicSeconds(), message.c_str());
}

}  // namespace turnstile
