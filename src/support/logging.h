// Minimal leveled logging to stderr.
//
// Usage: TURNSTILE_LOG(Warning) << "policy has " << n << " cycles";
// The default threshold is Warning so library code is quiet in benches; tests
// and tools can lower it via SetLogThreshold.
#ifndef TURNSTILE_SRC_SUPPORT_LOGGING_H_
#define TURNSTILE_SRC_SUPPORT_LOGGING_H_

#include <sstream>
#include <string>

namespace turnstile {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

// Internal: emits one formatted line to stderr.
void EmitLogLine(LogLevel level, const std::string& message);

// RAII message builder; emits on destruction if the level passes the filter.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() {
    if (level_ >= GetLogThreshold()) {
      EmitLogLine(level_, stream_.str());
    }
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace turnstile

#define TURNSTILE_LOG(severity) ::turnstile::LogMessage(::turnstile::LogLevel::k##severity)

#endif  // TURNSTILE_SRC_SUPPORT_LOGGING_H_
