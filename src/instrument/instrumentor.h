// The Code Instrumentor (§4.3): rewrites an application's AST to route
// privacy-relevant operations through the inlined DIFT tracker.
//
// Two strategies, matching the §6.2 evaluation:
//   - kSelective: only AST nodes on analyzer-reported privacy-sensitive
//     paths are instrumented (Turnstile's contribution),
//   - kExhaustive: every eligible expression in the program is instrumented
//     (the baseline that §6.2 shows can cost up to 2406% overhead).
//
// Rewrites applied (bold parts of Fig. 2b):
//   scene = analyzeVideoFrame(f)    →  scene = __dift.label(analyzeVideoFrame(f), "Scene")
//   a + b (value-producing ops)     →  __dift.binaryOp("+", a, b)
//   obj.method(args)                →  __dift.invoke(obj, "method", [args])
//   obj[k](args)                    →  __dift.invoke(obj, k, [args])
//   {…} / […] literals (exhaustive) →  __dift.trackDeep({…})
//
// The output program re-parses and runs on the unmodified interpreter; the
// only dependency is the `__dift` global installed by DiftTracker::Install.
#ifndef TURNSTILE_SRC_INSTRUMENT_INSTRUMENTOR_H_
#define TURNSTILE_SRC_INSTRUMENT_INSTRUMENTOR_H_

#include <set>
#include <string>

#include "src/analysis/analyzer.h"
#include "src/ifc/policy.h"
#include "src/lang/ast.h"
#include "src/support/status.h"

namespace turnstile {

enum class InstrumentMode { kSelective, kExhaustive };

struct InstrumentStats {
  int labels_injected = 0;
  int binary_ops_wrapped = 0;
  int invokes_wrapped = 0;
  int tracks_injected = 0;
};

struct InstrumentedProgram {
  Program program;  // deep copy; the input program is untouched
  InstrumentStats stats;
};

// Instruments `program` for the given policy.
//   kSelective requires `analysis` (the sensitive-node set drives scoping);
//   kExhaustive ignores it and instruments everything.
Result<InstrumentedProgram> InstrumentProgram(const Program& program, const Policy& policy,
                                              InstrumentMode mode,
                                              const AnalysisResult* analysis);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_INSTRUMENT_INSTRUMENTOR_H_
