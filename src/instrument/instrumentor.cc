#include "src/instrument/instrumentor.h"

#include <cstdlib>

#include "src/lang/parser.h"
#include "src/lang/resolve.h"

namespace turnstile {

namespace {

// Operators whose results carry compound labels (Fig. 5 binaryOp). Pure
// comparisons produce booleans used for control flow; tracking them would be
// implicit-flow territory, which Turnstile does not do (§4.6).
bool IsValueProducingOp(const std::string& op) {
  static const char* kOps[] = {"+", "-", "*", "/", "%", "**", "&", "|", "^", "<<", ">>"};
  for (const char* candidate : kOps) {
    if (op == candidate) {
      return true;
    }
  }
  return false;
}

class Instrumentor {
 public:
  Instrumentor(const Policy& policy, InstrumentMode mode, const AnalysisResult* analysis)
      : policy_(policy), mode_(mode), analysis_(analysis) {}

  Result<InstrumentedProgram> Run(const Program& program) {
    if (mode_ == InstrumentMode::kSelective && analysis_ == nullptr) {
      return InvalidArgumentError("selective instrumentation requires an analysis result");
    }
    InstrumentedProgram out;
    out.program.root = CloneTree(program.root);
    out.program.source_name = program.source_name;
    out.program.node_count = program.node_count;
    source_name_ = program.source_name;

    ApplyLabelInjections(out.program.root);
    out.program.root = RewriteTree(std::move(out.program.root));
    RenumberNodes(&out.program);
    // The clone kept the source tree's resolution annotations (including the
    // root's "resolved" marker) but rewriting inserted brand-new nodes; resolve
    // again so the rewritten tree carries a coherent set. The same invariant
    // applies after a printer round-trip: instrumented output must re-parse
    // *and* re-resolve before it can run.
    ResolveProgram(out.program);
    out.stats = stats_;
    return out;
  }

 private:
  bool InScope(const NodePtr& node) const {
    if (mode_ == InstrumentMode::kExhaustive) {
      return true;
    }
    return node->id >= 0 && analysis_->sensitive_ast_nodes.count(node->id) > 0;
  }

  NodePtr MakeDiftCall(const std::string& method, std::vector<NodePtr> args) {
    return MakeCall(MakeMember(MakeIdentifier("__dift"), method), std::move(args));
  }

  // --- label injections -------------------------------------------------------

  bool InjectionMatches(const Injection& injection, const std::string& name,
                        const SourceLocation& loc) const {
    if (injection.object != name) {
      return false;
    }
    if (!injection.file.empty() && injection.file != source_name_) {
      return false;
    }
    if (injection.line > 0 && std::abs(loc.line - injection.line) > 1) {
      return false;
    }
    return true;
  }

  void ApplyLabelInjections(const NodePtr& root) {
    for (const Injection& injection : policy_.injections()) {
      ApplyInjection(root, injection);
    }
  }

  // True when `node` is already a __dift.label(...) wrapper.
  static bool IsDiftLabelCall(const NodePtr& node) {
    return node->kind == NodeKind::kCallExpr &&
           node->children[0]->kind == NodeKind::kMemberExpr &&
           node->children[0]->str == "label" &&
           node->children[0]->children[0]->kind == NodeKind::kIdentifier &&
           node->children[0]->children[0]->str == "__dift";
  }

  // Walks the tree looking for sites that bind `injection.object` and wraps
  // them with __dift.label(..., labeller).
  void ApplyInjection(const NodePtr& node, const Injection& injection) {
    if (node->kind == NodeKind::kVarDecl) {
      for (const NodePtr& declarator : node->children) {
        if (!declarator->children.empty() && !IsDiftLabelCall(declarator->children[0]) &&
            InjectionMatches(injection, declarator->str, declarator->loc)) {
          declarator->children[0] = MakeDiftCall(
              "label", {declarator->children[0], MakeStringLit(injection.labeller)});
          ++stats_.labels_injected;
        }
      }
    } else if (node->kind == NodeKind::kAssignExpr && node->str == "=" &&
               node->children[0]->kind == NodeKind::kIdentifier) {
      if (!IsDiftLabelCall(node->children[1]) &&
          InjectionMatches(injection, node->children[0]->str, node->loc)) {
        node->children[1] =
            MakeDiftCall("label", {node->children[1], MakeStringLit(injection.labeller)});
        ++stats_.labels_injected;
      }
    } else if (node->IsFunctionLike()) {
      // Parameter injection: prepend `p = __dift.label(p, "L");` to the body.
      const NodePtr& params = node->children[0];
      NodePtr body = node->children[1];
      for (const NodePtr& param : params->children) {
        if (InjectionMatches(injection, param->str, param->loc) &&
            body->kind == NodeKind::kBlockStmt) {
          NodePtr assign = MakeNode(NodeKind::kAssignExpr, "=");
          assign->children.push_back(MakeIdentifier(param->str));
          assign->children.push_back(
              MakeDiftCall("label", {MakeIdentifier(param->str),
                                     MakeStringLit(injection.labeller)}));
          NodePtr stmt = MakeNode(NodeKind::kExprStmt, {std::move(assign)});
          body->children.insert(body->children.begin(), std::move(stmt));
          ++stats_.labels_injected;
        }
      }
    }
    for (const NodePtr& child : node->children) {
      ApplyInjection(child, injection);
    }
  }

  // --- expression rewriting ----------------------------------------------------

  NodePtr RewriteTree(NodePtr node) {
    // Call sites are managed when the call itself OR any argument is on a
    // privacy-sensitive path: data can flow *through* the callee's body into
    // a sink without the call's result ever being tainted (Fig. 2b wraps
    // deviceControl.send(person) because `person` is managed). Decide before
    // rewriting children, which replaces them with synthesized nodes.
    bool call_in_scope = false;
    if (node->kind == NodeKind::kCallExpr) {
      call_in_scope = InScope(node);
      for (size_t i = 1; !call_in_scope && i < node->children.size(); ++i) {
        call_in_scope = InScope(node->children[i]);
      }
    }
    bool assign_in_scope = false;
    if (node->kind == NodeKind::kAssignExpr) {
      assign_in_scope =
          InScope(node) || InScope(node->children[0]) || InScope(node->children[1]);
    }
    // Children first (a freshly synthesized wrapper is never re-visited).
    for (NodePtr& child : node->children) {
      child = RewriteTree(std::move(child));
    }
    switch (node->kind) {
      case NodeKind::kBinaryExpr: {
        if (!IsValueProducingOp(node->str) || !InScope(node)) {
          return node;
        }
        ++stats_.binary_ops_wrapped;
        NodePtr left = node->children[0];
        NodePtr right = node->children[1];
        return MakeDiftCall("binaryOp",
                            {MakeStringLit(node->str), std::move(left), std::move(right)});
      }
      case NodeKind::kAssignExpr: {
        // Compound assignments hide a binary operation: `acc += tainted`
        // must not launder labels. Desugar `t op= v` on sensitive paths to
        // `t = __dift.binaryOp(op, t, v)`. Logical forms (&&= ||= ??=) are
        // control-flow selections and stay untouched (§4.6: no implicit
        // flows).
        if (node->str.size() < 2 || node->str == "=" ||
            !IsValueProducingOp(node->str.substr(0, node->str.size() - 1))) {
          return node;
        }
        if (mode_ != InstrumentMode::kExhaustive && !assign_in_scope) {
          return node;
        }
        ++stats_.binary_ops_wrapped;
        std::string op = node->str.substr(0, node->str.size() - 1);
        NodePtr read_target = CloneTree(node->children[0]);
        NodePtr wrapped = MakeDiftCall(
            "binaryOp", {MakeStringLit(op), std::move(read_target), node->children[1]});
        node->str = "=";
        node->children[1] = std::move(wrapped);
        return node;
      }
      case NodeKind::kCallExpr: {
        const NodePtr& callee = node->children[0];
        bool is_member = callee->kind == NodeKind::kMemberExpr;
        bool is_index = callee->kind == NodeKind::kIndexExpr;
        if ((!is_member && !is_index) ||
            !(mode_ == InstrumentMode::kExhaustive || call_in_scope)) {
          return node;
        }
        // Never rewrap the tracker's own calls.
        if (is_member && callee->children[0]->kind == NodeKind::kIdentifier &&
            callee->children[0]->str == "__dift") {
          return node;
        }
        ++stats_.invokes_wrapped;
        NodePtr target = callee->children[0];
        NodePtr method = is_member ? MakeStringLit(callee->str) : callee->children[1];
        NodePtr args = MakeNode(NodeKind::kArrayLit);
        for (size_t i = 1; i < node->children.size(); ++i) {
          args->children.push_back(node->children[i]);
        }
        return MakeDiftCall("invoke", {std::move(target), std::move(method), std::move(args)});
      }
      case NodeKind::kObjectLit:
      case NodeKind::kArrayLit:
        // Exhaustive tracking registers every freshly created container and
        // boxes its value-type contents — the nlp.js dictionary cost.
        if (mode_ == InstrumentMode::kExhaustive && !node->children.empty()) {
          ++stats_.tracks_injected;
          return MakeDiftCall("trackDeep", {std::move(node)});
        }
        return node;
      default:
        return node;
    }
  }

  const Policy& policy_;
  InstrumentMode mode_;
  const AnalysisResult* analysis_;
  std::string source_name_;
  InstrumentStats stats_;
};

}  // namespace

Result<InstrumentedProgram> InstrumentProgram(const Program& program, const Policy& policy,
                                              InstrumentMode mode,
                                              const AnalysisResult* analysis) {
  return Instrumentor(policy, mode, analysis).Run(program);
}

}  // namespace turnstile
