#include "src/vm/compiler.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/interp/interp.h"
#include "src/obs/metrics.h"

namespace turnstile {
namespace vm {

namespace {

// The compiler mirrors the tree-walker's evaluation order and environment
// discipline instruction for instruction: every Environment::MakeChild site in
// the tree-walker has a matching kEnvPush here (and transparent blocks are
// skipped under the same `slot == 0 && frame_size == 0` test), so the runtime
// parent chain — and with it every (hops, slot) coordinate and every
// escape-hatch hand-off — lines up between tiers.
class Compiler {
 public:
  // `fuse_dift` selects the fused compilation flavor: recognized `__dift.*`
  // call shapes lower onto the labelled opcodes and plain member accesses use
  // the kGetPropLabelled/kSetPropLabelled variants. Only privacy-sensitive
  // chunks (those that mention `__dift` at all — which is "everywhere" under
  // exhaustive instrumentation) are compiled this way; see
  // GetOrCompileProgramFused.
  explicit Compiler(Chunk* chunk, bool fuse_dift = false)
      : chunk_(chunk), fuse_dift_(fuse_dift) {}

  void CompileProgram(const NodePtr& root) {
    // Function-declaration hoisting: same double-definition the tree-walker
    // performs (hoist pass + textual position).
    for (const NodePtr& stmt : root->children) {
      if (stmt->kind == NodeKind::kFunctionDecl) {
        CompileStmt(stmt);
      }
    }
    for (const NodePtr& stmt : root->children) {
      CompileStmt(stmt);
    }
    Emit(root.get(), Op::kHalt);
    Finish();
  }

  void CompileFunctionBody(const NodePtr& body) {
    if (body->kind == NodeKind::kBlockStmt) {
      CompileBlock(body);
      Emit(body.get(), Op::kHalt);
    } else {
      RegScope scope(this);
      int r = AllocReg();
      CompileExprInto(r, body);
      Emit(body.get(), Op::kHaltValue, r);
    }
    Finish();
  }

 private:
  // --- registers -------------------------------------------------------------

  struct RegScope {
    explicit RegScope(Compiler* c) : c_(c), saved_(c->next_reg_) {}
    ~RegScope() { c_->next_reg_ = saved_; }
    Compiler* c_;
    int saved_;
  };

  int AllocReg() {
    int r = next_reg_++;
    if (next_reg_ > max_regs_) {
      max_regs_ = next_reg_;
    }
    return r;
  }

  // --- emission and pools ----------------------------------------------------

  size_t Emit(const Node* dbg, Op op, int32_t a = 0, int32_t b = 0, int32_t c = 0,
              int32_t d = 0, int32_t e = 0, int32_t f = 0) {
    chunk_->code.push_back(Insn{op, a, b, c, d, e, f});
    chunk_->debug_nodes.push_back(dbg);
    return chunk_->code.size() - 1;
  }

  int Here() const { return static_cast<int>(chunk_->code.size()); }

  // Jump targets always live in operand `a` (bytecode.h invariant).
  void PatchJump(size_t insn, int target) {
    chunk_->code[insn].a = target;
  }

  int ConstIdx(Value v) {
    chunk_->constants.push_back(std::move(v));
    return static_cast<int>(chunk_->constants.size() - 1);
  }

  int UndefConstIdx() {
    if (undef_const_ < 0) {
      undef_const_ = ConstIdx(Value::Undefined());
    }
    return undef_const_;
  }

  int NameIdx(const std::string& name) {
    auto it = name_indices_.find(name);
    if (it != name_indices_.end()) {
      return it->second;
    }
    chunk_->names.push_back(name);
    int idx = static_cast<int>(chunk_->names.size() - 1);
    name_indices_.emplace(name, idx);
    return idx;
  }

  int NodeIdx(const NodePtr& node) {
    chunk_->nodes.push_back(node);
    return static_cast<int>(chunk_->nodes.size() - 1);
  }

  void EmitLoadUndef(const Node* dbg, int dst) {
    Emit(dbg, Op::kLoadConst, dst, UndefConstIdx());
  }

  static int32_t AtomOf(const NodePtr& node) {
    Atom atom = node->atom != kAtomEmpty || node->str.empty() ? node->atom
                                                              : InternAtom(node->str);
    return static_cast<int32_t>(atom);
  }

  // --- loops -----------------------------------------------------------------

  struct LoopCtx {
    int break_env_depth;     // env depth at the break landing site
    int continue_env_depth;  // env depth at the continue landing site
    bool pops_iter_on_break;
    std::vector<size_t> break_jumps;       // kJump -> patch .a
    std::vector<size_t> break_eval_nodes;  // kEvalNode -> patch .b
    std::vector<size_t> cont_jumps;        // kJump -> patch .a
    std::vector<size_t> cont_eval_nodes;   // kEvalNode -> patch .e
  };

  void PatchLoop(LoopCtx& loop, int break_pc, int cont_pc) {
    for (size_t insn : loop.break_jumps) {
      chunk_->code[insn].a = break_pc;
    }
    for (size_t insn : loop.break_eval_nodes) {
      chunk_->code[insn].b = break_pc;
    }
    for (size_t insn : loop.cont_jumps) {
      chunk_->code[insn].a = cont_pc;
    }
    for (size_t insn : loop.cont_eval_nodes) {
      chunk_->code[insn].e = cont_pc;
    }
  }

  void EmitBreak(const Node* dbg) {
    if (loops_.empty()) {
      // No enclosing loop in this chunk: surface the abrupt completion to the
      // caller (CallFunction reports the function-boundary error; a top-level
      // break simply stops the program, as in the tree-walker).
      Emit(dbg, Op::kComplete, 0);
      return;
    }
    LoopCtx& loop = loops_.back();
    int pops = env_depth_ - loop.break_env_depth;
    if (pops > 0) {
      Emit(dbg, Op::kEnvPopN, pops);
    }
    if (loop.pops_iter_on_break) {
      Emit(dbg, Op::kIterPop);
    }
    loop.break_jumps.push_back(Emit(dbg, Op::kJump, -1));
  }

  void EmitContinue(const Node* dbg) {
    if (loops_.empty()) {
      Emit(dbg, Op::kComplete, 1);
      return;
    }
    LoopCtx& loop = loops_.back();
    int pops = env_depth_ - loop.continue_env_depth;
    if (pops > 0) {
      Emit(dbg, Op::kEnvPopN, pops);
    }
    loop.cont_jumps.push_back(Emit(dbg, Op::kJump, -1));
  }

  // Hands a statement subtree to the tree-walking oracle. Inside a loop the
  // instruction carries break/continue trampolines (landing pc + how many
  // environments to unwind from this site); outside, abrupt loop completions
  // propagate out of the chunk.
  void EmitEvalNode(const NodePtr& node) {
    size_t insn = Emit(node.get(), Op::kEvalNode, NodeIdx(node), -1, 0, 0, -1, 0);
    if (!loops_.empty()) {
      LoopCtx& loop = loops_.back();
      chunk_->code[insn].c = env_depth_ - loop.break_env_depth;
      chunk_->code[insn].d = loop.pops_iter_on_break ? 1 : 0;
      chunk_->code[insn].f = env_depth_ - loop.continue_env_depth;
      loop.break_eval_nodes.push_back(insn);
      loop.cont_eval_nodes.push_back(insn);
    }
  }

  void EmitEvalExpr(int dst, const NodePtr& node) {
    Emit(node.get(), Op::kEvalExpr, dst, NodeIdx(node));
  }

  // --- identifiers -----------------------------------------------------------

  void EmitLoadIdent(int dst, const NodePtr& node, const char* error_verb) {
    if (node->hops >= 0) {
      Emit(node.get(), Op::kLoadSlot, dst, node->hops, node->slot);
      return;
    }
    // Unbound-name diagnostics are precomputed: the failure message is fixed
    // at compile time, so the dispatch loop never builds strings.
    int msg = NameIdx(std::string(error_verb) + " undeclared variable " + node->str +
                      (error_verb[0] == 'r' ? " at " + node->loc.ToString() : ""));
    if (node->hops == kHopsGlobal) {
      Emit(node.get(), Op::kLoadGlobal, dst, AtomOf(node), msg);
    } else {
      Emit(node.get(), Op::kLoadDyn, dst, static_cast<int32_t>(InternAtom(node->str)), msg);
    }
  }

  void EmitStoreIdent(const NodePtr& node, int src) {
    if (node->hops >= 0) {
      Emit(node.get(), Op::kStoreSlot, node->hops, node->slot, src);
    } else if (node->hops == kHopsGlobal) {
      Emit(node.get(), Op::kStoreGlobal, AtomOf(node), src);
    } else {
      Emit(node.get(), Op::kStoreDyn, static_cast<int32_t>(InternAtom(node->str)), src);
    }
  }

  // --- expressions -----------------------------------------------------------

  void CompileExprInto(int dst, const NodePtr& node) {
    switch (node->kind) {
      case NodeKind::kNumberLit:
        Emit(node.get(), Op::kLoadConst, dst, ConstIdx(Value(node->num)));
        return;
      case NodeKind::kStringLit:
        Emit(node.get(), Op::kLoadConst, dst, ConstIdx(Value(node->str)));
        return;
      case NodeKind::kBoolLit:
        Emit(node.get(), Op::kLoadConst, dst, ConstIdx(Value(node->num != 0)));
        return;
      case NodeKind::kNullLit:
        Emit(node.get(), Op::kLoadConst, dst, ConstIdx(Value::Null()));
        return;
      case NodeKind::kUndefinedLit:
        EmitLoadUndef(node.get(), dst);
        return;
      case NodeKind::kThisExpr:
        if (node->hops >= 0) {
          Emit(node.get(), Op::kLoadSlot, dst, node->hops, 0);
        } else {
          Emit(node.get(), Op::kLoadThisDyn, dst, static_cast<int32_t>(InternAtom("this")));
        }
        return;
      case NodeKind::kIdentifier:
        EmitLoadIdent(dst, node, "reference to");
        return;
      case NodeKind::kArrayLit:
        CompileArrayLit(dst, node);
        return;
      case NodeKind::kObjectLit:
        CompileObjectLit(dst, node);
        return;
      case NodeKind::kFunctionExpr:
      case NodeKind::kArrowFunction:
        Emit(node.get(), Op::kClosure, dst, NodeIdx(node));
        return;
      case NodeKind::kCallExpr:
        CompileCall(dst, node);
        return;
      case NodeKind::kNewExpr:
        CompileNew(dst, node);
        return;
      case NodeKind::kMemberExpr: {
        RegScope scope(this);
        int obj = AllocReg();
        CompileExprInto(obj, node->children[0]);
        size_t skip = SIZE_MAX;
        if (node->num != 0) {  // optional chaining
          skip = Emit(node.get(), Op::kJumpIfNullish, -1, obj);
        }
        EmitGetMember(dst, obj, node);
        if (skip != SIZE_MAX) {
          size_t done = Emit(node.get(), Op::kJump, -1);
          PatchJump(skip, Here());
          EmitLoadUndef(node.get(), dst);
          PatchJump(done, Here());
        }
        return;
      }
      case NodeKind::kIndexExpr: {
        RegScope scope(this);
        int obj = AllocReg();
        CompileExprInto(obj, node->children[0]);
        int key = AllocReg();
        CompileExprInto(key, node->children[1]);
        Emit(node.get(), Op::kGetIndex, dst, obj, key);
        return;
      }
      case NodeKind::kBinaryExpr: {
        BinaryOp op = BinaryOpFromString(node->str);
        if (op == BinaryOp::kInvalid) {
          EmitEvalExpr(dst, node);
          return;
        }
        RegScope scope(this);
        int left = AllocReg();
        CompileExprInto(left, node->children[0]);
        int right = AllocReg();
        CompileExprInto(right, node->children[1]);
        Emit(node.get(), Op::kBinary, dst, static_cast<int32_t>(op), left, right);
        return;
      }
      case NodeKind::kLogicalExpr: {
        CompileExprInto(dst, node->children[0]);
        Op jump = node->str == "&&"   ? Op::kJumpIfFalse
                  : node->str == "||" ? Op::kJumpIfTrue
                                      : Op::kJumpIfNotNullish;  // ??
        size_t shortcut = Emit(node.get(), jump, -1, dst);
        CompileExprInto(dst, node->children[1]);
        PatchJump(shortcut, Here());
        return;
      }
      case NodeKind::kUnaryExpr:
        CompileUnary(dst, node);
        return;
      case NodeKind::kUpdateExpr:
        CompileUpdate(dst, node);
        return;
      case NodeKind::kAssignExpr:
        CompileAssign(dst, node);
        return;
      case NodeKind::kConditionalExpr: {
        size_t to_else;
        {
          RegScope scope(this);
          int cond = AllocReg();
          CompileExprInto(cond, node->children[0]);
          to_else = Emit(node.get(), Op::kJumpIfFalse, -1, cond);
        }
        CompileExprInto(dst, node->children[1]);
        size_t to_end = Emit(node.get(), Op::kJump, -1);
        PatchJump(to_else, Here());
        CompileExprInto(dst, node->children[2]);
        PatchJump(to_end, Here());
        return;
      }
      case NodeKind::kAwaitExpr: {
        RegScope scope(this);
        int operand = AllocReg();
        CompileExprInto(operand, node->children[0]);
        Emit(node.get(), Op::kAwait, dst, operand);
        return;
      }
      case NodeKind::kSequenceExpr:
        if (node->children.empty()) {
          EmitLoadUndef(node.get(), dst);
          return;
        }
        for (const NodePtr& part : node->children) {
          CompileExprInto(dst, part);
        }
        return;
      default:
        // kSpreadElement outside call/array context and anything the compiler
        // does not know: the oracle produces the exact runtime error.
        EmitEvalExpr(dst, node);
        return;
    }
  }

  void EmitGetMember(int dst, int obj, const NodePtr& member) {
    if (member->atom != kAtomEmpty) {
      Emit(member.get(), fuse_dift_ ? Op::kGetPropLabelled : Op::kGetProp, dst, obj,
           static_cast<int32_t>(member->atom));
    } else {
      Emit(member.get(), Op::kGetPropName, dst, obj, NameIdx(member->str));
    }
  }

  void CompileArrayLit(int dst, const NodePtr& node) {
    bool has_spread = false;
    for (const NodePtr& element : node->children) {
      if (element->kind == NodeKind::kSpreadElement) {
        has_spread = true;
        break;
      }
    }
    if (!has_spread) {
      RegScope scope(this);
      int base = next_reg_;
      for (const NodePtr& element : node->children) {
        int r = AllocReg();
        CompileExprInto(r, element);
      }
      Emit(node.get(), Op::kArray, dst, base, static_cast<int32_t>(node->children.size()));
      return;
    }
    Emit(node.get(), Op::kArgStart);
    for (const NodePtr& element : node->children) {
      RegScope scope(this);
      int r = AllocReg();
      if (element->kind == NodeKind::kSpreadElement) {
        CompileExprInto(r, element->children[0]);
        Emit(element.get(), Op::kArgSpread, r, 1);
      } else {
        CompileExprInto(r, element);
        Emit(element.get(), Op::kArgPush, r);
      }
    }
    Emit(node.get(), Op::kArrayV, dst);
  }

  void CompileObjectLit(int dst, const NodePtr& node) {
    Emit(node.get(), Op::kObjNew, dst);
    for (const NodePtr& prop : node->children) {
      RegScope scope(this);
      if (prop->num != 0) {  // computed key
        int key = AllocReg();
        CompileExprInto(key, prop->children[0]);
        int value = AllocReg();
        CompileExprInto(value, prop->children[1]);
        Emit(prop.get(), Op::kObjSetComputed, dst, key, value);
      } else {
        int value = AllocReg();
        CompileExprInto(value, prop->children[0]);
        if (prop->atom != kAtomEmpty) {
          Emit(prop.get(), Op::kObjSetAtom, dst, static_cast<int32_t>(prop->atom), value);
        } else {
          Emit(prop.get(), Op::kObjSetName, dst, NameIdx(prop->str), value);
        }
      }
    }
  }

  // Compiles the arguments of a call/new/array-literal region. Returns true
  // and leaves a populated argument buffer when spread is involved; otherwise
  // fills a contiguous register window starting at *base.
  bool CompileArgs(const NodePtr& node, size_t first, int* base, int* count) {
    bool has_spread = false;
    for (size_t i = first; i < node->children.size(); ++i) {
      if (node->children[i]->kind == NodeKind::kSpreadElement) {
        has_spread = true;
        break;
      }
    }
    if (!has_spread) {
      *base = next_reg_;
      *count = static_cast<int>(node->children.size() - first);
      for (size_t i = first; i < node->children.size(); ++i) {
        int r = AllocReg();
        CompileExprInto(r, node->children[i]);
      }
      return false;
    }
    Emit(node.get(), Op::kArgStart);
    for (size_t i = first; i < node->children.size(); ++i) {
      const NodePtr& arg = node->children[i];
      RegScope scope(this);
      int r = AllocReg();
      if (arg->kind == NodeKind::kSpreadElement) {
        CompileExprInto(r, arg->children[0]);
        Emit(arg.get(), Op::kArgSpread, r, 0);
      } else {
        CompileExprInto(r, arg);
        Emit(arg.get(), Op::kArgPush, r);
      }
    }
    return true;
  }

  // --- fused DIFT call sites -------------------------------------------------

  // Emits the kDiftGuard prologue for a fused `__dift.<method>` site and
  // returns the guard register pair base (r[base] = method fn, r[base+1] =
  // the `__dift` object — populated only when no DiftHook is installed). The
  // guard runs *before* operand evaluation, exactly where the call lowering
  // evaluates its callee, so tracker-free programs fail with the same
  // undeclared-variable error at the same point.
  int EmitDiftGuard(const NodePtr& object, const NodePtr& callee) {
    int base = AllocReg();
    AllocReg();  // base + 1
    int msg = NameIdx("reference to undeclared variable " + object->str + " at " +
                      object->loc.ToString());
    Emit(callee.get(), Op::kDiftGuard, base, AtomOf(callee), msg, AtomOf(object));
    return base;
  }

  // Recognizes the instrumentor's `__dift.<method>(...)` call shapes and
  // lowers them onto the labelled opcodes. Returns false — and the caller
  // emits the ordinary call lowering — for every shape the fused ISA does not
  // cover. `__dift.label` stays call-lowered on purpose: labellers run policy
  // code whose kDiftLabel spans are part of the exported profile contract.
  bool TryCompileDiftCall(int dst, const NodePtr& node) {
    const NodePtr& callee = node->children[0];
    if (callee->kind != NodeKind::kMemberExpr || callee->num != 0) {
      return false;  // not a member call / optional chaining
    }
    const NodePtr& object = callee->children[0];
    if (object->kind != NodeKind::kIdentifier || object->str != "__dift" ||
        object->hops != kHopsGlobal) {
      return false;  // only the global `__dift` binding is fusable
    }
    for (size_t i = 1; i < node->children.size(); ++i) {
      if (node->children[i]->kind == NodeKind::kSpreadElement) {
        return false;
      }
    }
    const std::string& method = callee->str;
    if (method == "binaryOp" && node->children.size() == 4 &&
        node->children[1]->kind == NodeKind::kStringLit) {
      // Decoded at compile time; kInvalid spellings still fuse — the tracker
      // reproduces the string API's UnimplementedError from names[f].
      BinaryOp op = BinaryOpFromString(node->children[1]->str);
      RegScope scope(this);
      int guard = EmitDiftGuard(object, callee);
      int left = AllocReg();
      CompileExprInto(left, node->children[2]);
      int right = AllocReg();
      CompileExprInto(right, node->children[3]);
      Emit(node.get(), Op::kBinaryLabelled, dst, static_cast<int32_t>(op), left, right,
           guard, NameIdx(node->children[1]->str));
      return true;
    }
    if (method == "check" && node->children.size() == 3) {
      RegScope scope(this);
      int guard = EmitDiftGuard(object, callee);
      int data = AllocReg();
      CompileExprInto(data, node->children[1]);
      int recv = AllocReg();
      CompileExprInto(recv, node->children[2]);
      Emit(node.get(), Op::kCheckSink, dst, data, recv, guard);
      return true;
    }
    if (method == "invoke" && node->children.size() == 4 &&
        node->children[2]->kind == NodeKind::kStringLit &&
        node->children[3]->kind == NodeKind::kArrayLit) {
      const NodePtr& args_array = node->children[3];
      for (const NodePtr& element : args_array->children) {
        if (element->kind == NodeKind::kSpreadElement) {
          return false;
        }
      }
      RegScope scope(this);
      int guard = EmitDiftGuard(object, callee);
      int target = AllocReg();
      CompileExprInto(target, node->children[1]);
      int base = next_reg_;
      for (const NodePtr& element : args_array->children) {
        int r = AllocReg();
        CompileExprInto(r, element);
      }
      Emit(node.get(), Op::kCallLabelled, dst, target, base,
           static_cast<int32_t>(args_array->children.size()), guard,
           NameIdx(node->children[2]->str));
      return true;
    }
    return false;
  }

  void CompileCall(int dst, const NodePtr& node) {
    if (fuse_dift_ && TryCompileDiftCall(dst, node)) {
      return;
    }
    const NodePtr& callee = node->children[0];
    int name = NameIdx(callee->str);
    RegScope scope(this);
    int fn = AllocReg();
    int this_reg = -1;
    size_t skip = SIZE_MAX;
    if (callee->kind == NodeKind::kMemberExpr) {
      this_reg = AllocReg();
      CompileExprInto(this_reg, callee->children[0]);
      if (callee->num != 0) {  // optional call a?.b(...): nullish skips args too
        skip = Emit(callee.get(), Op::kJumpIfNullish, -1, this_reg);
      }
      EmitGetMember(fn, this_reg, callee);
    } else if (callee->kind == NodeKind::kIndexExpr) {
      this_reg = AllocReg();
      CompileExprInto(this_reg, callee->children[0]);
      {
        RegScope key_scope(this);
        int key = AllocReg();
        CompileExprInto(key, callee->children[1]);
        Emit(callee.get(), Op::kGetIndex, fn, this_reg, key);
      }
    } else {
      CompileExprInto(fn, callee);
    }
    int base = 0;
    int count = 0;
    if (CompileArgs(node, 1, &base, &count)) {
      Emit(node.get(), Op::kCallV, dst, fn, this_reg, 0, 0, name);
    } else {
      Emit(node.get(), Op::kCall, dst, fn, this_reg, base, count, name);
    }
    if (skip != SIZE_MAX) {
      size_t done = Emit(node.get(), Op::kJump, -1);
      PatchJump(skip, Here());
      EmitLoadUndef(node.get(), dst);
      PatchJump(done, Here());
    }
  }

  void CompileNew(int dst, const NodePtr& node) {
    RegScope scope(this);
    int fn = AllocReg();
    CompileExprInto(fn, node->children[0]);
    int base = 0;
    int count = 0;
    if (CompileArgs(node, 1, &base, &count)) {
      Emit(node.get(), Op::kNewV, dst, fn);
    } else {
      Emit(node.get(), Op::kNew, dst, fn, base, count);
    }
  }

  void CompileUnary(int dst, const NodePtr& node) {
    const std::string& op = node->str;
    if (op == "typeof") {
      const NodePtr& operand = node->children[0];
      RegScope scope(this);
      int r = AllocReg();
      if (operand->kind == NodeKind::kIdentifier) {
        // typeof tolerates unbound names: soft loads yield undefined, whose
        // TypeName matches the tree-walker's literal "undefined".
        if (operand->hops >= 0) {
          Emit(operand.get(), Op::kLoadSlot, r, operand->hops, operand->slot);
        } else if (operand->hops == kHopsGlobal) {
          Emit(operand.get(), Op::kLoadGlobalSoft, r, AtomOf(operand));
        } else {
          Emit(operand.get(), Op::kLoadDynSoft, r,
               static_cast<int32_t>(InternAtom(operand->str)));
        }
      } else {
        CompileExprInto(r, operand);
      }
      Emit(node.get(), Op::kTypeof, dst, r);
      return;
    }
    if (op == "delete") {
      const NodePtr& target = node->children[0];
      if (target->kind == NodeKind::kMemberExpr || target->kind == NodeKind::kIndexExpr) {
        RegScope scope(this);
        int obj = AllocReg();
        CompileExprInto(obj, target->children[0]);
        if (target->kind == NodeKind::kMemberExpr) {
          Emit(target.get(), Op::kDeleteProp, obj, NameIdx(target->str));
        } else {
          int key = AllocReg();
          CompileExprInto(key, target->children[1]);
          Emit(target.get(), Op::kDeleteIndex, obj, key);
        }
        Emit(node.get(), Op::kLoadConst, dst, ConstIdx(Value(true)));
        return;
      }
      // Non-member delete targets are not evaluated; the result is false.
      Emit(node.get(), Op::kLoadConst, dst, ConstIdx(Value(false)));
      return;
    }
    UnaryOp decoded;
    if (op == "!") {
      decoded = UnaryOp::kNot;
    } else if (op == "-") {
      decoded = UnaryOp::kNeg;
    } else if (op == "+") {
      decoded = UnaryOp::kPlus;
    } else if (op == "~") {
      decoded = UnaryOp::kBitNot;
    } else {
      EmitEvalExpr(dst, node);  // unknown unary -> oracle's UnimplementedError
      return;
    }
    RegScope scope(this);
    int r = AllocReg();
    CompileExprInto(r, node->children[0]);
    Emit(node.get(), Op::kUnary, dst, static_cast<int32_t>(decoded), r);
  }

  void CompileUpdate(int dst, const NodePtr& node) {
    const NodePtr& target = node->children[0];
    BinaryOp step = node->str == "++" ? BinaryOp::kAdd : BinaryOp::kSub;
    bool prefix = node->num != 0;
    if (target->kind == NodeKind::kIdentifier) {
      RegScope scope(this);
      int old_raw = AllocReg();
      if (target->hops >= 0) {
        Emit(target.get(), Op::kLoadSlot, old_raw, target->hops, target->slot);
      } else {
        int msg = NameIdx("update of undeclared variable " + target->str);
        if (target->hops == kHopsGlobal) {
          Emit(target.get(), Op::kLoadGlobal, old_raw, AtomOf(target), msg);
        } else {
          Emit(target.get(), Op::kLoadDyn, old_raw,
               static_cast<int32_t>(InternAtom(target->str)), msg);
        }
      }
      EmitUpdateArithmetic(node, target, step, prefix, dst, old_raw,
                           /*obj=*/-1, /*key=*/-1, /*member=*/nullptr);
      return;
    }
    if (target->kind == NodeKind::kMemberExpr || target->kind == NodeKind::kIndexExpr) {
      RegScope scope(this);
      int obj = AllocReg();
      CompileExprInto(obj, target->children[0]);
      int key = -1;
      if (target->kind == NodeKind::kIndexExpr) {
        key = AllocReg();
        CompileExprInto(key, target->children[1]);
      }
      int old_raw = AllocReg();
      if (target->kind == NodeKind::kMemberExpr) {
        EmitGetMember(old_raw, obj, target);
      } else {
        Emit(target.get(), Op::kGetIndex, old_raw, obj, key);
      }
      EmitUpdateArithmetic(node, target, step, prefix, dst, old_raw, obj, key, target.get());
      return;
    }
    EmitEvalExpr(dst, node);  // invalid update target -> oracle's TypeError
  }

  // Shared tail of kUpdateExpr: coerce, step by one, store, pick the result
  // per fixity (the *coerced* old number for postfix, matching the oracle).
  void EmitUpdateArithmetic(const NodePtr& node, const NodePtr& target, BinaryOp step,
                            bool prefix, int dst, int old_raw, int obj, int key,
                            const Node* member) {
    int old_num = AllocReg();
    Emit(node.get(), Op::kUnary, old_num, static_cast<int32_t>(UnaryOp::kPlus), old_raw);
    int one = AllocReg();
    Emit(node.get(), Op::kLoadConst, one, ConstIdx(Value(1.0)));
    int updated = AllocReg();
    Emit(node.get(), Op::kBinary, updated, static_cast<int32_t>(step), old_num, one);
    if (member == nullptr) {
      EmitStoreIdent(target, updated);
    } else if (member->kind == NodeKind::kMemberExpr) {
      EmitSetMember(obj, target, updated);
    } else {
      Emit(member, Op::kSetIndex, obj, key, updated);
    }
    Emit(node.get(), Op::kMove, dst, prefix ? updated : old_num);
  }

  void EmitSetMember(int obj, const NodePtr& member, int src) {
    if (member->atom != kAtomEmpty) {
      Emit(member.get(), fuse_dift_ ? Op::kSetPropLabelled : Op::kSetProp, obj,
           static_cast<int32_t>(member->atom), src);
    } else {
      Emit(member.get(), Op::kSetPropName, obj, NameIdx(member->str), src);
    }
  }

  void CompileAssign(int dst, const NodePtr& node) {
    const NodePtr& target = node->children[0];
    const std::string& op = node->str;
    bool plain = op == "=";
    bool logical = op == "&&=" || op == "||=" || op == "?\?=";
    BinaryOp compound = BinaryOp::kInvalid;
    if (!plain && !logical) {
      compound = BinaryOpFromString(op.substr(0, op.size() - 1));
      if (compound == BinaryOp::kInvalid) {
        EmitEvalExpr(dst, node);
        return;
      }
    }
    if (target->kind == NodeKind::kIdentifier) {
      RegScope scope(this);
      int old_raw = -1;
      if (!plain) {
        old_raw = AllocReg();
        if (target->hops >= 0) {
          Emit(target.get(), Op::kLoadSlot, old_raw, target->hops, target->slot);
        } else {
          int msg = NameIdx("assignment to undeclared variable " + target->str);
          if (target->hops == kHopsGlobal) {
            Emit(target.get(), Op::kLoadGlobal, old_raw, AtomOf(target), msg);
          } else {
            Emit(target.get(), Op::kLoadDyn, old_raw,
                 static_cast<int32_t>(InternAtom(target->str)), msg);
          }
        }
      }
      EmitAssignValue(node, plain, logical, compound, dst, old_raw);
      EmitStoreIdent(target, dst);
      return;
    }
    if (target->kind == NodeKind::kMemberExpr || target->kind == NodeKind::kIndexExpr) {
      RegScope scope(this);
      int obj = AllocReg();
      CompileExprInto(obj, target->children[0]);
      int key = -1;
      if (target->kind == NodeKind::kIndexExpr) {
        key = AllocReg();
        CompileExprInto(key, target->children[1]);
      }
      int old_raw = -1;
      if (!plain) {
        old_raw = AllocReg();
        if (target->kind == NodeKind::kMemberExpr) {
          EmitGetMember(old_raw, obj, target);
        } else {
          Emit(target.get(), Op::kGetIndex, old_raw, obj, key);
        }
      }
      EmitAssignValue(node, plain, logical, compound, dst, old_raw);
      if (target->kind == NodeKind::kMemberExpr) {
        EmitSetMember(obj, target, dst);
      } else {
        Emit(target.get(), Op::kSetIndex, obj, key, dst);
      }
      return;
    }
    EmitEvalExpr(dst, node);  // invalid assignment target -> oracle's TypeError
  }

  // Computes the stored value of an assignment into `dst`. The RHS is always
  // evaluated — including for short-circuit spellings — matching the oracle's
  // EvalAssignment exactly.
  void EmitAssignValue(const NodePtr& node, bool plain, bool logical, BinaryOp compound,
                       int dst, int old_raw) {
    const std::string& op = node->str;
    if (plain) {
      CompileExprInto(dst, node->children[1]);
      return;
    }
    if (logical) {
      CompileExprInto(dst, node->children[1]);
      Op keep_rhs = op == "&&="   ? Op::kJumpIfTrue
                    : op == "||=" ? Op::kJumpIfFalse
                                  : Op::kJumpIfNullish;  // ??=
      size_t jump = Emit(node.get(), keep_rhs, -1, old_raw);
      Emit(node.get(), Op::kMove, dst, old_raw);
      PatchJump(jump, Here());
      return;
    }
    RegScope scope(this);
    int rhs = AllocReg();
    CompileExprInto(rhs, node->children[1]);
    Emit(node.get(), Op::kBinary, dst, static_cast<int32_t>(compound), old_raw, rhs);
  }

  // --- statements ------------------------------------------------------------

  void CompileStmt(const NodePtr& node) {
    switch (node->kind) {
      case NodeKind::kVarDecl:
        for (const NodePtr& declarator : node->children) {
          RegScope scope(this);
          int r = AllocReg();
          if (!declarator->children.empty()) {
            CompileExprInto(r, declarator->children[0]);
            // Anonymous function initializers inherit the declared name.
            Emit(declarator.get(), Op::kSetFnName, r, NameIdx(declarator->str));
          } else {
            EmitLoadUndef(declarator.get(), r);
          }
          if (declarator->slot >= 0) {
            Emit(declarator.get(), Op::kStoreSlot, 0, declarator->slot, r);
          } else {
            Emit(declarator.get(), Op::kDefineCur,
                 static_cast<int32_t>(InternAtom(declarator->str)), r);
          }
        }
        return;
      case NodeKind::kExprStmt: {
        RegScope scope(this);
        int r = AllocReg();
        CompileExprInto(r, node->children[0]);
        return;
      }
      case NodeKind::kBlockStmt:
        CompileBlock(node);
        return;
      case NodeKind::kIfStmt: {
        size_t to_else;
        {
          RegScope scope(this);
          int cond = AllocReg();
          CompileExprInto(cond, node->children[0]);
          to_else = Emit(node.get(), Op::kJumpIfFalse, -1, cond);
        }
        CompileStmt(node->children[1]);
        if (node->children.size() > 2) {
          size_t to_end = Emit(node.get(), Op::kJump, -1);
          PatchJump(to_else, Here());
          CompileStmt(node->children[2]);
          PatchJump(to_end, Here());
        } else {
          PatchJump(to_else, Here());
        }
        return;
      }
      case NodeKind::kWhileStmt:
        CompileWhile(node);
        return;
      case NodeKind::kForStmt:
        CompileFor(node);
        return;
      case NodeKind::kForOfStmt:
        CompileForOf(node);
        return;
      case NodeKind::kReturnStmt: {
        RegScope scope(this);
        int r = AllocReg();
        if (node->children.empty()) {
          EmitLoadUndef(node.get(), r);
        } else {
          CompileExprInto(r, node->children[0]);
        }
        Emit(node.get(), Op::kReturn, r);
        return;
      }
      case NodeKind::kThrowStmt: {
        RegScope scope(this);
        int r = AllocReg();
        CompileExprInto(r, node->children[0]);
        Emit(node.get(), Op::kThrow, r);
        return;
      }
      case NodeKind::kBreakStmt:
        EmitBreak(node.get());
        return;
      case NodeKind::kContinueStmt:
        EmitContinue(node.get());
        return;
      case NodeKind::kEmpty:
        return;
      case NodeKind::kFunctionDecl: {
        RegScope scope(this);
        int r = AllocReg();
        Emit(node.get(), Op::kClosure, r, NodeIdx(node));
        if (node->slot >= 0) {
          Emit(node.get(), Op::kStoreSlot, 0, node->slot, r);
        } else {
          Emit(node.get(), Op::kDefineCur, static_cast<int32_t>(InternAtom(node->str)), r);
        }
        return;
      }
      case NodeKind::kTryStmt:
      case NodeKind::kClassDecl:
        // Exception handling and class construction run through the oracle:
        // both are cold, and try/catch in particular would otherwise need an
        // in-VM handler stack for no measurable gain.
        EmitEvalNode(node);
        return;
      default:
        if (node->IsExpression()) {
          RegScope scope(this);
          int r = AllocReg();
          CompileExprInto(r, node);
          return;
        }
        EmitEvalNode(node);
        return;
    }
  }

  void CompileBlock(const NodePtr& block) {
    // Transparent blocks (no frame) get no Environment and no hoist pass,
    // exactly like the tree-walker's EvalBlock.
    bool transparent = block->slot == 0 && block->frame_size == 0;
    if (!transparent) {
      Emit(block.get(), Op::kEnvPush, static_cast<int32_t>(block->frame_size));
      ++env_depth_;
      for (const NodePtr& stmt : block->children) {
        if (stmt->kind == NodeKind::kFunctionDecl) {
          CompileStmt(stmt);  // hoist: same double definition as the oracle
        }
      }
    }
    for (const NodePtr& stmt : block->children) {
      CompileStmt(stmt);
    }
    if (!transparent) {
      Emit(block.get(), Op::kEnvPop);
      --env_depth_;
    }
  }

  void CompileWhile(const NodePtr& node) {
    loops_.push_back(LoopCtx{env_depth_, env_depth_, false, {}, {}, {}, {}});
    int start = Here();
    size_t exit_jump;
    {
      RegScope scope(this);
      int cond = AllocReg();
      CompileExprInto(cond, node->children[0]);
      exit_jump = Emit(node.get(), Op::kJumpIfFalse, -1, cond);
    }
    CompileStmt(node->children[1]);
    Emit(node.get(), Op::kJump, start);
    int exit = Here();
    PatchJump(exit_jump, exit);
    PatchLoop(loops_.back(), exit, start);
    loops_.pop_back();
  }

  void CompileFor(const NodePtr& node) {
    bool header = !(node->slot == 0 && node->frame_size == 0);
    if (header) {
      Emit(node.get(), Op::kEnvPush, static_cast<int32_t>(node->frame_size));
      ++env_depth_;
    }
    if (node->children[0]->kind != NodeKind::kEmpty) {
      CompileStmt(node->children[0]);
    }
    loops_.push_back(LoopCtx{env_depth_, env_depth_, false, {}, {}, {}, {}});
    int start = Here();
    size_t exit_jump = SIZE_MAX;
    if (node->children[1]->kind != NodeKind::kEmpty) {
      RegScope scope(this);
      int cond = AllocReg();
      CompileExprInto(cond, node->children[1]);
      exit_jump = Emit(node.get(), Op::kJumpIfFalse, -1, cond);
    }
    CompileStmt(node->children[3]);
    int cont = Here();
    if (node->children[2]->kind != NodeKind::kEmpty) {
      RegScope scope(this);
      int update = AllocReg();
      CompileExprInto(update, node->children[2]);
    }
    Emit(node.get(), Op::kJump, start);
    int exit = Here();
    if (exit_jump != SIZE_MAX) {
      PatchJump(exit_jump, exit);
    }
    PatchLoop(loops_.back(), exit, cont);
    loops_.pop_back();
    if (header) {
      Emit(node.get(), Op::kEnvPop);
      --env_depth_;
    }
  }

  void CompileForOf(const NodePtr& node) {
    RegScope scope(this);  // keeps the item register alive across the loop
    {
      RegScope iterable_scope(this);
      int iterable = AllocReg();
      CompileExprInto(iterable, node->children[1]);  // evaluated in outer scope
      Emit(node.get(), Op::kIterNew, 0, iterable);
    }
    int item = AllocReg();
    // The per-iteration environment sits one deeper than the break landing
    // site; the iteration frame must be popped on break (kIterNext pops it on
    // normal exhaustion).
    loops_.push_back(LoopCtx{env_depth_, env_depth_ + 1, true, {}, {}, {}, {}});
    int start = Here();
    size_t next = Emit(node.get(), Op::kIterNext, -1, item);
    Emit(node.get(), Op::kEnvPush, static_cast<int32_t>(node->frame_size));
    ++env_depth_;
    const NodePtr& loop_var = node->children[0];
    if (loop_var->slot >= 0) {
      Emit(loop_var.get(), Op::kStoreSlot, 0, loop_var->slot, item);
    } else {
      Emit(loop_var.get(), Op::kDefineCur, static_cast<int32_t>(InternAtom(loop_var->str)),
           item);
    }
    CompileStmt(node->children[2]);
    int cont = Here();
    Emit(node.get(), Op::kEnvPop);
    --env_depth_;
    Emit(node.get(), Op::kJump, start);
    int exit = Here();
    PatchJump(next, exit);
    PatchLoop(loops_.back(), exit, cont);
    loops_.pop_back();
  }

  void Finish() {
    chunk_->num_regs = static_cast<uint32_t>(max_regs_ > 0 ? max_regs_ : 1);
    chunk_->lines.reserve(chunk_->debug_nodes.size());
    for (const Node* node : chunk_->debug_nodes) {
      chunk_->lines.push_back(node != nullptr ? static_cast<int32_t>(node->loc.line) : 0);
    }
  }

  Chunk* chunk_;
  bool fuse_dift_ = false;
  int next_reg_ = 0;
  int max_regs_ = 0;
  int env_depth_ = 0;
  std::vector<LoopCtx> loops_;
  std::unordered_map<std::string, int> name_indices_;
  int undef_const_ = -1;
};

obs::Counter* ChunksCompiledCounter() {
  static obs::Counter* counter = obs::Metrics::Global().GetCounter("vm.chunks_compiled");
  return counter;
}

// Privacy-sensitivity scan for one chunk region: does this node's own code —
// excluding nested function bodies, which compile to their own chunks —
// mention `__dift`? The instrumentor only injects `__dift.*` calls into
// functions its analysis marks sensitive (selective mode) or into everything
// (exhaustive mode), so "mentions __dift" is exactly "the instrumentor
// touched this region" and the fused flavor is selected per chunk with no
// extra plumbing.
bool MentionsDift(const NodePtr& node) {
  if (node->kind == NodeKind::kIdentifier && node->str == "__dift") {
    return true;
  }
  for (const NodePtr& child : node->children) {
    if (child == nullptr || child->IsFunctionLike()) {
      continue;
    }
    if (MentionsDift(child)) {
      return true;
    }
  }
  return false;
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kLoadConst: return "LoadConst";
    case Op::kMove: return "Move";
    case Op::kLoadSlot: return "LoadSlot";
    case Op::kStoreSlot: return "StoreSlot";
    case Op::kLoadGlobal: return "LoadGlobal";
    case Op::kLoadGlobalSoft: return "LoadGlobalSoft";
    case Op::kStoreGlobal: return "StoreGlobal";
    case Op::kLoadDyn: return "LoadDyn";
    case Op::kLoadDynSoft: return "LoadDynSoft";
    case Op::kStoreDyn: return "StoreDyn";
    case Op::kDefineCur: return "DefineCur";
    case Op::kLoadThisDyn: return "LoadThisDyn";
    case Op::kSetFnName: return "SetFnName";
    case Op::kBinary: return "Binary";
    case Op::kUnary: return "Unary";
    case Op::kTypeof: return "Typeof";
    case Op::kJump: return "Jump";
    case Op::kJumpIfFalse: return "JumpIfFalse";
    case Op::kJumpIfTrue: return "JumpIfTrue";
    case Op::kJumpIfNullish: return "JumpIfNullish";
    case Op::kJumpIfNotNullish: return "JumpIfNotNullish";
    case Op::kGetProp: return "GetProp";
    case Op::kGetPropName: return "GetPropName";
    case Op::kGetIndex: return "GetIndex";
    case Op::kSetProp: return "SetProp";
    case Op::kSetPropName: return "SetPropName";
    case Op::kSetIndex: return "SetIndex";
    case Op::kDeleteProp: return "DeleteProp";
    case Op::kDeleteIndex: return "DeleteIndex";
    case Op::kObjNew: return "ObjNew";
    case Op::kObjSetAtom: return "ObjSetAtom";
    case Op::kObjSetName: return "ObjSetName";
    case Op::kObjSetComputed: return "ObjSetComputed";
    case Op::kArray: return "Array";
    case Op::kArrayV: return "ArrayV";
    case Op::kArgStart: return "ArgStart";
    case Op::kArgPush: return "ArgPush";
    case Op::kArgSpread: return "ArgSpread";
    case Op::kCall: return "Call";
    case Op::kCallV: return "CallV";
    case Op::kNew: return "New";
    case Op::kNewV: return "NewV";
    case Op::kClosure: return "Closure";
    case Op::kEnvPush: return "EnvPush";
    case Op::kEnvPop: return "EnvPop";
    case Op::kEnvPopN: return "EnvPopN";
    case Op::kIterNew: return "IterNew";
    case Op::kIterNext: return "IterNext";
    case Op::kIterPop: return "IterPop";
    case Op::kDiftGuard: return "DiftGuard";
    case Op::kBinaryLabelled: return "BinaryLabelled";
    case Op::kCheckSink: return "CheckSink";
    case Op::kCallLabelled: return "CallLabelled";
    case Op::kGetPropLabelled: return "GetPropLabelled";
    case Op::kSetPropLabelled: return "SetPropLabelled";
    case Op::kEvalNode: return "EvalNode";
    case Op::kEvalExpr: return "EvalExpr";
    case Op::kAwait: return "Await";
    case Op::kThrow: return "Throw";
    case Op::kReturn: return "Return";
    case Op::kHalt: return "Halt";
    case Op::kHaltValue: return "HaltValue";
    case Op::kComplete: return "Complete";
  }
  return "?";
}

ChunkPtr GetOrCompileProgram(const NodePtr& root) {
  if (root->compiled_chunk != nullptr) {
    return std::static_pointer_cast<const Chunk>(root->compiled_chunk);
  }
  auto chunk = std::make_shared<Chunk>();
  Compiler(chunk.get()).CompileProgram(root);
  ChunksCompiledCounter()->Increment();
  root->compiled_chunk = chunk;
  return chunk;
}

ChunkPtr GetOrCompileFunctionBody(const NodePtr& body) {
  if (body->compiled_chunk != nullptr) {
    return std::static_pointer_cast<const Chunk>(body->compiled_chunk);
  }
  auto chunk = std::make_shared<Chunk>();
  Compiler(chunk.get()).CompileFunctionBody(body);
  ChunksCompiledCounter()->Increment();
  body->compiled_chunk = chunk;
  return chunk;
}

ChunkPtr GetOrCompileProgramFused(const NodePtr& root) {
  if (root->compiled_chunk_fused != nullptr) {
    return std::static_pointer_cast<const Chunk>(root->compiled_chunk_fused);
  }
  if (!MentionsDift(root)) {
    // Nothing to fuse: alias the lowered chunk so clean code compiles once
    // and both tiers share its cache entry.
    ChunkPtr lowered = GetOrCompileProgram(root);
    root->compiled_chunk_fused = root->compiled_chunk;
    return lowered;
  }
  auto chunk = std::make_shared<Chunk>();
  Compiler(chunk.get(), /*fuse_dift=*/true).CompileProgram(root);
  ChunksCompiledCounter()->Increment();
  root->compiled_chunk_fused = chunk;
  return chunk;
}

ChunkPtr GetOrCompileFunctionBodyFused(const NodePtr& body) {
  if (body->compiled_chunk_fused != nullptr) {
    return std::static_pointer_cast<const Chunk>(body->compiled_chunk_fused);
  }
  if (!MentionsDift(body)) {
    ChunkPtr lowered = GetOrCompileFunctionBody(body);
    body->compiled_chunk_fused = body->compiled_chunk;
    return lowered;
  }
  auto chunk = std::make_shared<Chunk>();
  Compiler(chunk.get(), /*fuse_dift=*/true).CompileFunctionBody(body);
  ChunksCompiledCounter()->Increment();
  body->compiled_chunk_fused = chunk;
  return chunk;
}

}  // namespace vm
}  // namespace turnstile
