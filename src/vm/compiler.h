// Lowers resolved MiniScript ASTs to register bytecode (see bytecode.h).
//
// Compilation is per function body, on first execution, *after* any
// instrumentation rewrite: the instrumentor re-resolves the tree it rewrote,
// re-resolution clears the per-node chunk cache (src/lang/resolve.cc), and
// the injected `__dift.*` calls are ordinary member calls by the time they
// reach the compiler. Compilation never fails: statements the compiler does
// not lower natively (try/catch, class declarations, anything unknown) are
// emitted as kEvalNode escape hatches that run the subtree through the
// tree-walking oracle with the current environment.
#ifndef TURNSTILE_SRC_VM_COMPILER_H_
#define TURNSTILE_SRC_VM_COMPILER_H_

#include "src/lang/ast.h"
#include "src/vm/bytecode.h"

namespace turnstile {
namespace vm {

// Compiles (or returns the cached chunk of) a kProgram root: hoisted function
// declarations, top-level statements, kHalt. The cache lives on the node
// (Node::compiled_chunk) and is invalidated by ResolveProgram.
ChunkPtr GetOrCompileProgram(const NodePtr& root);

// Compiles (or returns the cached chunk of) a function body: a kBlockStmt
// lowers like any block (ending in kHalt); an expression body lowers to the
// expression followed by kHaltValue. The caller (Interpreter::CallFunction)
// owns frame setup — `this`, self binding, parameters — exactly as for the
// tree-walked tier, so the chunk starts with the call environment current.
ChunkPtr GetOrCompileFunctionBody(const NodePtr& body);

// The DIFT-fused compilation flavor (default bytecode tier): recognized
// `__dift.*` call shapes lower onto the labelled opcodes and member accesses
// in sensitive chunks use the kGetPropLabelled/kSetPropLabelled variants.
// Chunks that never mention `__dift` alias the lowered chunk — one compile,
// one cache entry, identical code. Cached in Node::compiled_chunk_fused,
// invalidated by ResolveProgram alongside the lowered cache.
ChunkPtr GetOrCompileProgramFused(const NodePtr& root);
ChunkPtr GetOrCompileFunctionBodyFused(const NodePtr& body);

}  // namespace vm
}  // namespace turnstile

#endif  // TURNSTILE_SRC_VM_COMPILER_H_
