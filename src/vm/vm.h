// The bytecode dispatch loop: executes Chunks (bytecode.h) against the same
// runtime the tree-walker uses — Value, Environment frames, builtins, the
// event-loop task queue — via the Interpreter's tier-shared helpers.
#ifndef TURNSTILE_SRC_VM_VM_H_
#define TURNSTILE_SRC_VM_VM_H_

#include "src/interp/dift_hook.h"
#include "src/interp/environment.h"
#include "src/interp/interp.h"
#include "src/interp/value.h"
#include "src/lang/ast.h"
#include "src/support/status.h"
#include "src/vm/bytecode.h"

namespace turnstile {
namespace vm {

class Vm {
 public:
  // Compiles (cached) and runs a kProgram root in `env` (the global scope).
  // Mirrors Interpreter::EvalStatement on the root for completion semantics.
  static Result<Completion> ExecuteProgram(Interpreter& interp, const NodePtr& root,
                                           const EnvPtr& env);

  // Compiles (cached) and runs a function body in the already-populated call
  // environment (Interpreter::CallFunction owns frame setup for both tiers).
  // Returns the same Completion shapes the tree-walked body dispatch does:
  // Normal(undefined) for a block body falling off the end, Normal(value) for
  // expression-body arrows, Return/Throw/Break/Continue passed through.
  static Result<Completion> ExecuteFunctionBody(Interpreter& interp, const FunctionObject& fn,
                                                const EnvPtr& call_env);

  // Runs one chunk. Host errors surface as Status; MiniScript throws as
  // Completion::Throw. Never handles exceptions itself — try/catch runs in
  // the tree-walking oracle via the kEvalNode escape hatch.
  static Result<Completion> Execute(Interpreter& interp, const Chunk& chunk, EnvPtr env);

 private:
  // The dispatch loop is compiled twice: the kProfiled=false instantiation
  // carries no per-instruction profiling code at all, so the disabled-path
  // cost is the single tier-selection branch in Execute.
  template <bool kProfiled>
  static Result<Completion> ExecuteImpl(Interpreter& interp, const Chunk& chunk, EnvPtr env);
};

}  // namespace vm
}  // namespace turnstile

#endif  // TURNSTILE_SRC_VM_VM_H_
