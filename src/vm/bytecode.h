// Register-bytecode definitions for the compiled execution tier.
//
// A Chunk is the compiled form of one function body (or program top level).
// Instructions address a per-activation register file holding expression
// temporaries only; variables stay in the same slot-indexed Environment
// frames the tree-walker uses (src/interp/environment.h), addressed by the
// (hops, slot) coordinates the resolver annotated onto the AST. Sharing the
// frame layout is what lets the two tiers interoperate: a closure compiled
// here can capture an environment built by the tree-walker and vice versa,
// and the escape-hatch instructions (kEvalNode / kEvalExpr) can hand any
// subtree back to the tree-walker mid-chunk with full scope fidelity.
//
// Operand conventions:
//   - registers are indices into the activation's register file
//   - jump targets always live in operand `a` (the patching invariant)
//   - `atom` operands are interned atoms (src/lang/atoms.h)
//   - `name`/`msg` operands index Chunk::names (keys and precomputed
//     diagnostic strings); `node` operands index Chunk::nodes
#ifndef TURNSTILE_SRC_VM_BYTECODE_H_
#define TURNSTILE_SRC_VM_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/interp/value.h"
#include "src/lang/ast.h"

namespace turnstile {
namespace vm {

enum class Op : uint8_t {
  // --- moves and constants ---------------------------------------------------
  kLoadConst,        // r[a] = constants[b]
  kMove,             // r[a] = r[b]

  // --- variable access (shared Environment frames) ---------------------------
  kLoadSlot,         // r[a] = frame(b hops up).slots[c]
  kStoreSlot,        // frame(a hops up).slots[b] = r[c]
  kLoadGlobal,       // r[a] = global.bindings[atom b]; unbound -> RuntimeError names[c]
  kLoadGlobalSoft,   // r[a] = global.bindings[atom b], undefined when unbound (typeof)
  kStoreGlobal,      // global.bindings[atom a] = r[b] (defines when unbound)
  kLoadDyn,          // r[a] = name-chain lookup of atom b; unbound -> RuntimeError names[c]
  kLoadDynSoft,      // r[a] = name-chain lookup of atom b, undefined when unbound
  kStoreDyn,         // chain-assign atom a = r[b]; unbound -> implicit global define
  kDefineCur,        // cur_env.Define(atom a, r[b])  (unresolved declarations)
  kLoadThisDyn,      // r[a] = name-chain lookup of `this` (atom b), undefined when unbound
  kSetFnName,        // if r[a] is an unnamed function, set its name to names[b]

  // --- operators -------------------------------------------------------------
  kBinary,           // r[a] = EvalBinaryOp(BinaryOp b, r[c], r[d])
  kUnary,            // r[a] = UnaryOp b applied to Unbox(r[c])
  kTypeof,           // r[a] = typeof Unbox(r[b])

  // --- control flow ----------------------------------------------------------
  kJump,             // pc = a
  kJumpIfFalse,      // if (!r[b].Truthy()) pc = a
  kJumpIfTrue,       // if (r[b].Truthy()) pc = a
  kJumpIfNullish,    // if (r[b].IsNullish()) pc = a
  kJumpIfNotNullish, // if (!r[b].IsNullish()) pc = a

  // --- property access -------------------------------------------------------
  kGetProp,          // r[a] = GetProperty(r[b], atom c)
  kGetPropName,      // r[a] = GetProperty(r[b], names[c])
  kGetIndex,         // r[a] = GetProperty(r[b], Unbox(r[c]).ToDisplayString())
  kSetProp,          // SetProperty(r[a], atom b, r[c])
  kSetPropName,      // SetProperty(r[a], names[b], r[c])
  kSetIndex,         // SetProperty(r[a], Unbox(r[b]).ToDisplayString(), r[c])
  kDeleteProp,       // if Unbox(r[a]) is an object, delete key names[b]
  kDeleteIndex,      // if Unbox(r[a]) is an object, delete key Unbox(r[b]).ToDisplayString()

  // --- object / array construction ------------------------------------------
  kObjNew,           // r[a] = {}
  kObjSetAtom,       // r[a].AsObject()->Set(atom b, r[c])   (static literal key)
  kObjSetName,       // r[a].AsObject()->Set(names[b], r[c]) (empty-atom fallback)
  kObjSetComputed,   // r[a].AsObject()->Set(Unbox(r[b]).ToDisplayString(), r[c])
  kArray,            // r[a] = [r[b] .. r[b+c])
  kArrayV,           // r[a] = array from the popped argument buffer (spread literals)

  // --- calls -----------------------------------------------------------------
  // Spread-free calls take their arguments from a contiguous register window;
  // calls with spread build a variable-length argument buffer first.
  kArgStart,         // push a fresh argument buffer
  kArgPush,          // buffer.push(r[a])
  kArgSpread,        // append elements of Unbox(r[a]); b: 0 = call ("argument"
                     //   in the TypeError), 1 = array literal ("element")
  kCall,             // r[a] = call r[b] (this = r[c], or undefined when c < 0)
                     //   with args r[d] .. r[d+e); callee name = names[f]
  kCallV,            // like kCall but args = popped buffer
  kNew,              // r[a] = construct r[b] with args r[c] .. r[c+d)
  kNewV,             // like kNew but args = popped buffer

  // --- closures and scopes ---------------------------------------------------
  kClosure,          // r[a] = MakeClosure(nodes[b], cur_env)
  kEnvPush,          // cur_env = Environment::MakeChild(cur_env, frame_size a)
  kEnvPop,           // cur_env = cur_env.parent
  kEnvPopN,          // pop a environments (break/continue unwinding)

  // --- iteration (for-of) ----------------------------------------------------
  kIterNew,          // push an iteration frame over Unbox(r[b]); TypeError when
                     //   not an array or string (arrays are copied, matching
                     //   the tree-walker's mutation-safe snapshot)
  kIterNext,         // r[b] = next item; when exhausted pop the frame and pc = a
  kIterPop,          // pop the top iteration frame (break paths)

  // --- fused DIFT (labelled opcode variants; see DESIGN.md §13) --------------
  // The fused compiler flavor lowers recognized `__dift.*` call shapes onto
  // these opcodes. When a DiftHook is registered (DiftTracker::Install) the
  // arms call straight into the tracker — no `__dift` global load, property
  // fetch, argument Values, or native-call frame. Without a hook they fall
  // back to the exact call-lowered sequence, so programs that run fused
  // chunks tracker-free behave identically to the oracle tiers.
  kDiftGuard,        // hook installed: no-op. Otherwise materialize the slow
                     //   path's callee pair: r[a+1] = global.bindings[atom d]
                     //   (unbound -> RuntimeError names[c]), r[a] =
                     //   GetProperty(r[a+1], atom b). Emitted before operand
                     //   evaluation, mirroring the lowered evaluation order.
  kBinaryLabelled,   // r[a] = hook->FusedBinary(names[f], BinaryOp b, r[c], r[d]);
                     //   slow path: r[a] = InvokeValue(r[e], r[e+1],
                     //   [names[f], r[c], r[d]], "binaryOp")
  kCheckSink,        // r[a] = hook->FusedCheck(r[b], r[c]); slow path:
                     //   r[a] = InvokeValue(r[d], r[d+1], [r[b], r[c]], "check")
  kCallLabelled,     // r[a] = hook->FusedInvoke(r[b], names[f], args r[c]..r[c+d));
                     //   slow path: r[a] = InvokeValue(r[e], r[e+1],
                     //   [r[b], names[f], [args...]], "invoke")
  kGetPropLabelled,  // as kGetProp, with an inline hit path for plain (non-box)
                     //   object own properties
  kSetPropLabelled,  // as kSetProp, with an inline store path for plain
                     //   trap-free objects (still bumps the heap write epoch)

  // --- escape hatches (tree-walker oracle) -----------------------------------
  kEvalNode,         // interp.EvalStatement(nodes[a], cur_env); on break: pop c
                     //   envs (+ the top iteration frame when d != 0) and pc = b;
                     //   on continue: pop f envs and pc = e; b/e < 0 propagate
                     //   the completion out of the chunk
  kEvalExpr,         // r[a] = interp.EvalExpression(nodes[b], cur_env)

  // --- completions -----------------------------------------------------------
  kAwait,            // r[a] = await r[b]
  kThrow,            // return Throw(r[a])
  kReturn,           // return Return(r[a])
  kHalt,             // return Normal(undefined)  (block body fell off the end)
  kHaltValue,        // return Normal(r[a])       (expression-body arrows)
  kComplete,         // return Break (a = 0) / Continue (a = 1) with no target
                     //   loop in this chunk (top-level or function-body break)
};

// Operand of Op::kUnary.
enum class UnaryOp : uint8_t { kNot, kNeg, kPlus, kBitNot };

struct Insn {
  Op op;
  int32_t a = 0, b = 0, c = 0, d = 0, e = 0, f = 0;
};

// One compiled function body / program top level.
struct Chunk {
  std::vector<Insn> code;
  std::vector<Value> constants;
  std::vector<NodePtr> nodes;       // closure bodies and escape-hatch subtrees
  std::vector<std::string> names;   // property keys and precompiled diagnostics
  uint32_t num_regs = 0;            // register-file size

  // Source node of each instruction, parallel to `code` (diagnostics only).
  std::vector<const Node*> debug_nodes;

  // 1-based source line of each instruction, parallel to `code` (0 = no
  // source position). Derived from debug_nodes at Finish(); drives the
  // profiler's per-line attribution clock in the dispatch loop.
  std::vector<int32_t> lines;
};

using ChunkPtr = std::shared_ptr<const Chunk>;

// Human-readable opcode name, e.g. "LoadSlot".
const char* OpName(Op op);

// Renders a chunk one line per instruction: index, opcode, raw operands, and
// a trailing comment resolving atom/name/constant operands plus the source
// line (disasm.cc; surfaced through `profile_app --disasm`).
std::string DisassembleChunk(const Chunk& chunk);

}  // namespace vm
}  // namespace turnstile

#endif  // TURNSTILE_SRC_VM_BYTECODE_H_
