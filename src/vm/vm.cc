#include "src/vm/vm.h"

#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/vm/compiler.h"

namespace turnstile {
namespace vm {

namespace {

// Mirrors the tree-walker's (TU-local) ToInt for the kBitNot operand.
int64_t BitwiseInt(const Value& v) {
  double n = v.ToNumber();
  if (std::isnan(n) || std::isinf(n)) {
    return 0;
  }
  return static_cast<int64_t>(n);
}

// Active for-of iteration: a mutation-safe snapshot of the items plus a
// cursor. Kept on a VM-side stack (not the heap) so iterating never bumps the
// heap write epoch.
struct IterFrame {
  std::vector<Value> items;
  size_t next = 0;
};

struct VmMetrics {
  obs::Counter* ops_executed;
  obs::Histogram* activation_ops;

  static VmMetrics& Get() {
    static VmMetrics metrics{
        obs::Metrics::Global().GetCounter("vm.ops_executed"),
        obs::Metrics::Global().GetHistogram("vm.activation_ops"),
    };
    return metrics;
  }
};

}  // namespace

Result<Completion> Vm::ExecuteProgram(Interpreter& interp, const NodePtr& root,
                                      const EnvPtr& env) {
  ChunkPtr chunk = GetOrCompileProgram(root);
  return Execute(interp, *chunk, env);
}

Result<Completion> Vm::ExecuteFunctionBody(Interpreter& interp, const FunctionObject& fn,
                                           const EnvPtr& call_env) {
  ChunkPtr chunk = GetOrCompileFunctionBody(fn.body);
  return Execute(interp, *chunk, call_env);
}

Result<Completion> Vm::Execute(Interpreter& interp, const Chunk& chunk, EnvPtr env) {
  std::vector<Value> regs(chunk.num_regs);
  std::vector<IterFrame> iters;
  std::vector<std::vector<Value>> arg_stack;

  // Instructions are counted locally and flushed once per activation: into the
  // obs registry, and into eval_count_ so the interpreter's deterministic work
  // metric stays meaningful under the bytecode tier.
  uint64_t ops = 0;
  struct MetricsFlush {
    Interpreter& interp;
    const uint64_t& ops;
    ~MetricsFlush() {
      interp.eval_count_ += ops;
      VmMetrics& metrics = VmMetrics::Get();
      metrics.ops_executed->Increment(ops);
      metrics.activation_ops->Observe(static_cast<double>(ops));
    }
  } flush{interp, ops};

  const Insn* code = chunk.code.data();
  size_t pc = 0;
  while (true) {
    const Insn& in = code[pc];
    ++pc;
    ++ops;
    switch (in.op) {
      case Op::kLoadConst:
        regs[in.a] = chunk.constants[in.b];
        break;
      case Op::kMove:
        regs[in.a] = regs[in.b];
        break;
      case Op::kLoadSlot: {
        Environment* frame = env.get();
        for (int32_t i = 0; i < in.b; ++i) {
          frame = frame->parent.get();
        }
        regs[in.a] = frame->slots[static_cast<size_t>(in.c)];
        break;
      }
      case Op::kStoreSlot: {
        Environment* frame = env.get();
        for (int32_t i = 0; i < in.a; ++i) {
          frame = frame->parent.get();
        }
        frame->slots[static_cast<size_t>(in.b)] = regs[in.c];
        break;
      }
      case Op::kLoadGlobal: {
        Value* binding = interp.global_env_->LookupLocal(static_cast<Atom>(in.b));
        if (binding == nullptr) {
          return RuntimeError(chunk.names[in.c]);
        }
        regs[in.a] = *binding;
        break;
      }
      case Op::kLoadGlobalSoft: {
        Value* binding = interp.global_env_->LookupLocal(static_cast<Atom>(in.b));
        regs[in.a] = binding != nullptr ? *binding : Value::Undefined();
        break;
      }
      case Op::kStoreGlobal:
        // Assign-or-define collapses to Define on the atom-keyed global map.
        interp.global_env_->Define(static_cast<Atom>(in.a), regs[in.b]);
        break;
      case Op::kLoadDyn: {
        Value* binding = env->Lookup(static_cast<Atom>(in.b));
        if (binding == nullptr) {
          return RuntimeError(chunk.names[in.c]);
        }
        regs[in.a] = *binding;
        break;
      }
      case Op::kLoadDynSoft: {
        Value* binding = env->Lookup(static_cast<Atom>(in.b));
        regs[in.a] = binding != nullptr ? *binding : Value::Undefined();
        break;
      }
      case Op::kStoreDyn: {
        Value* binding = env->Lookup(static_cast<Atom>(in.a));
        if (binding != nullptr) {
          *binding = regs[in.b];
        } else {
          // Implicit global definition (sloppy-mode JS), as in EvalAssignment.
          interp.global_env_->Define(static_cast<Atom>(in.a), regs[in.b]);
        }
        break;
      }
      case Op::kDefineCur:
        env->Define(static_cast<Atom>(in.a), regs[in.b]);
        break;
      case Op::kLoadThisDyn: {
        Value* binding = env->Lookup(static_cast<Atom>(in.b));
        regs[in.a] = binding != nullptr ? *binding : Value::Undefined();
        break;
      }
      case Op::kSetFnName: {
        Value& v = regs[in.a];
        if (v.IsFunction() && v.AsFunction()->name.empty()) {
          v.AsFunction()->name = chunk.names[in.b];
        }
        break;
      }
      case Op::kBinary: {
        const Value& left = regs[in.c];
        const Value& right = regs[in.d];
        const BinaryOp bop = static_cast<BinaryOp>(in.b);
        if (left.IsNumber() && right.IsNumber()) {
          // Number-number fast path, inline; identical results to
          // EvalBinaryOp (strict/loose equality coincide on numbers).
          const double l = left.AsNumber();
          const double r = right.AsNumber();
          bool handled = true;
          Value out;
          switch (bop) {
            case BinaryOp::kAdd: out = Value(l + r); break;
            case BinaryOp::kSub: out = Value(l - r); break;
            case BinaryOp::kMul: out = Value(l * r); break;
            case BinaryOp::kDiv: out = Value(l / r); break;
            case BinaryOp::kLt: out = Value(l < r); break;
            case BinaryOp::kGt: out = Value(l > r); break;
            case BinaryOp::kLe: out = Value(l <= r); break;
            case BinaryOp::kGe: out = Value(l >= r); break;
            case BinaryOp::kStrictEq:
            case BinaryOp::kLooseEq: out = Value(l == r); break;
            case BinaryOp::kStrictNe:
            case BinaryOp::kLooseNe: out = Value(l != r); break;
            default: handled = false; break;
          }
          if (handled) {
            regs[in.a] = std::move(out);
            break;
          }
        }
        TURNSTILE_ASSIGN_OR_RETURN(c, interp.EvalBinaryOp(bop, left, right));
        regs[in.a] = std::move(c.value);
        break;
      }
      case Op::kUnary: {
        Value v = Unbox(regs[in.c]);
        switch (static_cast<UnaryOp>(in.b)) {
          case UnaryOp::kNot:
            regs[in.a] = Value(!v.Truthy());
            break;
          case UnaryOp::kNeg:
            regs[in.a] = Value(-v.ToNumber());
            break;
          case UnaryOp::kPlus:
            regs[in.a] = Value(v.ToNumber());
            break;
          case UnaryOp::kBitNot:
            regs[in.a] = Value(static_cast<double>(~BitwiseInt(v)));
            break;
        }
        break;
      }
      case Op::kTypeof:
        regs[in.a] = Value(Unbox(regs[in.b]).TypeName());
        break;
      case Op::kJump:
        pc = static_cast<size_t>(in.a);
        break;
      case Op::kJumpIfFalse:
        if (!regs[in.b].Truthy()) {
          pc = static_cast<size_t>(in.a);
        }
        break;
      case Op::kJumpIfTrue:
        if (regs[in.b].Truthy()) {
          pc = static_cast<size_t>(in.a);
        }
        break;
      case Op::kJumpIfNullish:
        if (regs[in.b].IsNullish()) {
          pc = static_cast<size_t>(in.a);
        }
        break;
      case Op::kJumpIfNotNullish:
        if (!regs[in.b].IsNullish()) {
          pc = static_cast<size_t>(in.a);
        }
        break;
      case Op::kGetProp: {
        TURNSTILE_ASSIGN_OR_RETURN(v, interp.GetProperty(regs[in.b], static_cast<Atom>(in.c)));
        regs[in.a] = std::move(v);
        break;
      }
      case Op::kGetPropName: {
        TURNSTILE_ASSIGN_OR_RETURN(v, interp.GetProperty(regs[in.b], chunk.names[in.c]));
        regs[in.a] = std::move(v);
        break;
      }
      case Op::kGetIndex: {
        TURNSTILE_ASSIGN_OR_RETURN(
            v, interp.GetProperty(regs[in.b], Unbox(regs[in.c]).ToDisplayString()));
        regs[in.a] = std::move(v);
        break;
      }
      case Op::kSetProp:
        TURNSTILE_RETURN_IF_ERROR(
            interp.SetProperty(regs[in.a], static_cast<Atom>(in.b), regs[in.c]));
        break;
      case Op::kSetPropName:
        TURNSTILE_RETURN_IF_ERROR(interp.SetProperty(regs[in.a], chunk.names[in.b], regs[in.c]));
        break;
      case Op::kSetIndex:
        TURNSTILE_RETURN_IF_ERROR(
            interp.SetProperty(regs[in.a], Unbox(regs[in.b]).ToDisplayString(), regs[in.c]));
        break;
      case Op::kDeleteProp: {
        Value object = Unbox(regs[in.a]);
        if (object.IsObject()) {
          object.AsObject()->Delete(chunk.names[in.b]);
        }
        break;
      }
      case Op::kDeleteIndex: {
        Value object = Unbox(regs[in.a]);
        if (object.IsObject()) {
          object.AsObject()->Delete(Unbox(regs[in.b]).ToDisplayString());
        }
        break;
      }
      case Op::kObjNew:
        regs[in.a] = Value(MakeObject());
        break;
      case Op::kObjSetAtom:
        regs[in.a].AsObject()->Set(static_cast<Atom>(in.b), regs[in.c]);
        break;
      case Op::kObjSetName:
        regs[in.a].AsObject()->Set(chunk.names[in.b], regs[in.c]);
        break;
      case Op::kObjSetComputed:
        regs[in.a].AsObject()->Set(Unbox(regs[in.b]).ToDisplayString(), regs[in.c]);
        break;
      case Op::kArray: {
        std::vector<Value> elements(regs.begin() + in.b, regs.begin() + in.b + in.c);
        regs[in.a] = Value(MakeArray(std::move(elements)));
        break;
      }
      case Op::kArrayV:
        regs[in.a] = Value(MakeArray(std::move(arg_stack.back())));
        arg_stack.pop_back();
        break;
      case Op::kArgStart:
        arg_stack.emplace_back();
        break;
      case Op::kArgPush:
        arg_stack.back().push_back(regs[in.a]);
        break;
      case Op::kArgSpread: {
        Value spread = Unbox(regs[in.a]);
        if (!spread.IsArray()) {
          return Interpreter::TypeError(in.b != 0 ? "spread element is not an array"
                                                  : "spread argument is not an array");
        }
        std::vector<Value>& buffer = arg_stack.back();
        for (const Value& element : spread.AsArray()->elements) {
          buffer.push_back(element);
        }
        break;
      }
      case Op::kCall: {
        std::vector<Value> args(regs.begin() + in.d, regs.begin() + in.d + in.e);
        TURNSTILE_ASSIGN_OR_RETURN(
            c, interp.InvokeValue(regs[in.b],
                                  in.c >= 0 ? regs[in.c] : Value::Undefined(),
                                  std::move(args), chunk.names[in.f]));
        if (c.IsAbrupt()) {
          return c;
        }
        regs[in.a] = std::move(c.value);
        break;
      }
      case Op::kCallV: {
        std::vector<Value> args = std::move(arg_stack.back());
        arg_stack.pop_back();
        TURNSTILE_ASSIGN_OR_RETURN(
            c, interp.InvokeValue(regs[in.b],
                                  in.c >= 0 ? regs[in.c] : Value::Undefined(),
                                  std::move(args), chunk.names[in.f]));
        if (c.IsAbrupt()) {
          return c;
        }
        regs[in.a] = std::move(c.value);
        break;
      }
      case Op::kNew: {
        std::vector<Value> args(regs.begin() + in.c, regs.begin() + in.c + in.d);
        TURNSTILE_ASSIGN_OR_RETURN(c, interp.ConstructValue(regs[in.b], std::move(args)));
        if (c.IsAbrupt()) {
          return c;
        }
        regs[in.a] = std::move(c.value);
        break;
      }
      case Op::kNewV: {
        std::vector<Value> args = std::move(arg_stack.back());
        arg_stack.pop_back();
        TURNSTILE_ASSIGN_OR_RETURN(c, interp.ConstructValue(regs[in.b], std::move(args)));
        if (c.IsAbrupt()) {
          return c;
        }
        regs[in.a] = std::move(c.value);
        break;
      }
      case Op::kClosure:
        regs[in.a] = Value(interp.MakeClosure(chunk.nodes[in.b], env));
        break;
      case Op::kEnvPush:
        env = Environment::MakeChild(std::move(env), static_cast<uint32_t>(in.a));
        break;
      case Op::kEnvPop:
        env = env->parent;
        break;
      case Op::kEnvPopN:
        for (int32_t i = 0; i < in.a; ++i) {
          env = env->parent;
        }
        break;
      case Op::kIterNew: {
        Value iterable = Unbox(regs[in.b]);
        IterFrame frame;
        if (iterable.IsArray()) {
          frame.items = iterable.AsArray()->elements;  // copy: body may mutate
        } else if (iterable.IsString()) {
          for (char ch : iterable.AsString()) {
            frame.items.push_back(Value(std::string(1, ch)));
          }
        } else {
          return Interpreter::TypeError("for-of target is not iterable");
        }
        iters.push_back(std::move(frame));
        break;
      }
      case Op::kIterNext: {
        IterFrame& frame = iters.back();
        if (frame.next >= frame.items.size()) {
          iters.pop_back();
          pc = static_cast<size_t>(in.a);
        } else {
          regs[in.b] = frame.items[frame.next++];
        }
        break;
      }
      case Op::kIterPop:
        iters.pop_back();
        break;
      case Op::kEvalNode: {
        TURNSTILE_ASSIGN_OR_RETURN(c, interp.EvalStatement(chunk.nodes[in.a], env));
        if (c.kind == Completion::Kind::kBreak) {
          if (in.b < 0) {
            return c;
          }
          for (int32_t i = 0; i < in.c; ++i) {
            env = env->parent;
          }
          if (in.d != 0) {
            iters.pop_back();
          }
          pc = static_cast<size_t>(in.b);
        } else if (c.kind == Completion::Kind::kContinue) {
          if (in.e < 0) {
            return c;
          }
          for (int32_t i = 0; i < in.f; ++i) {
            env = env->parent;
          }
          pc = static_cast<size_t>(in.e);
        } else if (c.IsAbrupt()) {
          return c;  // return / throw propagate out of the chunk
        }
        break;
      }
      case Op::kEvalExpr: {
        TURNSTILE_ASSIGN_OR_RETURN(c, interp.EvalExpression(chunk.nodes[in.b], env));
        if (c.IsAbrupt()) {
          return c;
        }
        regs[in.a] = std::move(c.value);
        break;
      }
      case Op::kAwait: {
        TURNSTILE_ASSIGN_OR_RETURN(c, interp.AwaitValue(regs[in.b]));
        if (c.IsAbrupt()) {
          return c;
        }
        regs[in.a] = std::move(c.value);
        break;
      }
      case Op::kThrow:
        return Completion::Throw(regs[in.a]);
      case Op::kReturn:
        return Completion::Return(regs[in.a]);
      case Op::kHalt:
        return Completion::Normal();
      case Op::kHaltValue:
        return Completion::Normal(regs[in.a]);
      case Op::kComplete:
        return in.a == 0 ? Completion::Break() : Completion::Continue();
    }
  }
}

}  // namespace vm
}  // namespace turnstile
