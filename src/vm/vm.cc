#include "src/vm/vm.h"

#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/vm/compiler.h"

namespace turnstile {
namespace vm {

Result<Completion> Vm::ExecuteProgram(Interpreter& interp, const NodePtr& root,
                                      const EnvPtr& env) {
  // The default bytecode tier runs the DIFT-fused compilation flavor; the
  // bytecode-lowered oracle keeps every `__dift.*` hook as an ordinary call.
  ChunkPtr chunk = interp.exec_tier() == ExecTier::kBytecodeLowered
                       ? GetOrCompileProgram(root)
                       : GetOrCompileProgramFused(root);
  return Execute(interp, *chunk, env);
}

Result<Completion> Vm::ExecuteFunctionBody(Interpreter& interp, const FunctionObject& fn,
                                           const EnvPtr& call_env) {
  ChunkPtr chunk = interp.exec_tier() == ExecTier::kBytecodeLowered
                       ? GetOrCompileFunctionBody(fn.body)
                       : GetOrCompileFunctionBodyFused(fn.body);
  return Execute(interp, *chunk, call_env);
}

// The profiled instantiation is compiled in vm_profiled.cc; keeping it out
// of this TU preserves the inlining budget for the disabled loop.
extern template Result<Completion> Vm::ExecuteImpl<true>(Interpreter&, const Chunk&, EnvPtr);

Result<Completion> Vm::Execute(Interpreter& interp, const Chunk& chunk, EnvPtr env) {
  // interp.profiler_ caches &Profiler::Global(), avoiding the function-local
  // static guard on every activation.
  if (interp.profiler_->enabled() && !chunk.lines.empty()) {
    return ExecuteImpl<true>(interp, chunk, std::move(env));
  }
  return ExecuteImpl<false>(interp, chunk, std::move(env));
}

}  // namespace vm
}  // namespace turnstile

#include "src/vm/vm_execute.inc"

namespace turnstile {
namespace vm {
template Result<Completion> Vm::ExecuteImpl<false>(Interpreter&, const Chunk&, EnvPtr);
}  // namespace vm
}  // namespace turnstile
