// Renders compiled chunks for inspection (`profile_app --disasm`, tests).
//
// One line per instruction:
//
//     12  GetProp          r2, r1, atom(payload)              ; line 7
//
// Operand rendering is driven by a per-opcode spec string — one character per
// used operand — so the disassembly stays honest as the ISA grows: an opcode
// without a spec renders all six raw fields, which is ugly enough to notice
// in the golden test.

#include <cstdio>
#include <string>

#include "src/interp/interp.h"
#include "src/interp/value.h"
#include "src/lang/ast.h"
#include "src/lang/atoms.h"
#include "src/vm/bytecode.h"

namespace turnstile {
namespace vm {

namespace {

// Operand spec characters:
//   r  register            a  atom (interned; rendered via AtomName)
//   n  Chunk::names index  k  Chunk::constants index
//   j  jump target (pc)    d  Chunk::nodes index
//   i  plain integer       b  BinaryOp    u  UnaryOp
//   .  unused (skip)
const char* OperandSpec(Op op) {
  switch (op) {
    case Op::kLoadConst:        return "rk";
    case Op::kMove:             return "rr";
    case Op::kLoadSlot:         return "rii";
    case Op::kStoreSlot:        return "iir";
    case Op::kLoadGlobal:       return "ran";
    case Op::kLoadGlobalSoft:   return "ra";
    case Op::kStoreGlobal:      return "ar";
    case Op::kLoadDyn:          return "ran";
    case Op::kLoadDynSoft:      return "ra";
    case Op::kStoreDyn:         return "ar";
    case Op::kDefineCur:        return "ar";
    case Op::kLoadThisDyn:      return "ra";
    case Op::kSetFnName:        return "rn";
    case Op::kBinary:           return "rbrr";
    case Op::kUnary:            return "rur";
    case Op::kTypeof:           return "rr";
    case Op::kJump:             return "j";
    case Op::kJumpIfFalse:      return "jr";
    case Op::kJumpIfTrue:       return "jr";
    case Op::kJumpIfNullish:    return "jr";
    case Op::kJumpIfNotNullish: return "jr";
    case Op::kGetProp:          return "rra";
    case Op::kGetPropName:      return "rrn";
    case Op::kGetIndex:         return "rrr";
    case Op::kSetProp:          return "rar";
    case Op::kSetPropName:      return "rnr";
    case Op::kSetIndex:         return "rrr";
    case Op::kDeleteProp:       return "rn";
    case Op::kDeleteIndex:      return "rr";
    case Op::kObjNew:           return "r";
    case Op::kObjSetAtom:       return "rar";
    case Op::kObjSetName:       return "rnr";
    case Op::kObjSetComputed:   return "rrr";
    case Op::kArray:            return "rri";
    case Op::kArrayV:           return "r";
    case Op::kArgStart:         return "";
    case Op::kArgPush:          return "r";
    case Op::kArgSpread:        return "ri";
    case Op::kCall:             return "rrrrin";
    case Op::kCallV:            return "rrr..n";
    case Op::kNew:              return "rrri";
    case Op::kNewV:             return "rr";
    case Op::kClosure:          return "rd";
    case Op::kEnvPush:          return "i";
    case Op::kEnvPop:           return "";
    case Op::kEnvPopN:          return "i";
    case Op::kIterNew:          return ".r";
    case Op::kIterNext:         return "jr";
    case Op::kIterPop:          return "";
    case Op::kDiftGuard:        return "rana";
    case Op::kBinaryLabelled:   return "rbrrrn";
    case Op::kCheckSink:        return "rrrr";
    case Op::kCallLabelled:     return "rrrirn";
    case Op::kGetPropLabelled:  return "rra";
    case Op::kSetPropLabelled:  return "rar";
    case Op::kEvalNode:         return "djiiji";
    case Op::kEvalExpr:         return "rd";
    case Op::kAwait:            return "rr";
    case Op::kThrow:            return "r";
    case Op::kReturn:           return "r";
    case Op::kHalt:             return "";
    case Op::kHaltValue:        return "r";
    case Op::kComplete:         return "i";
  }
  return nullptr;
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:      return "+";
    case BinaryOp::kSub:      return "-";
    case BinaryOp::kMul:      return "*";
    case BinaryOp::kDiv:      return "/";
    case BinaryOp::kMod:      return "%";
    case BinaryOp::kPow:      return "**";
    case BinaryOp::kLooseEq:  return "==";
    case BinaryOp::kLooseNe:  return "!=";
    case BinaryOp::kStrictEq: return "===";
    case BinaryOp::kStrictNe: return "!==";
    case BinaryOp::kLt:       return "<";
    case BinaryOp::kGt:       return ">";
    case BinaryOp::kLe:       return "<=";
    case BinaryOp::kGe:       return ">=";
    case BinaryOp::kBitAnd:   return "&";
    case BinaryOp::kBitOr:    return "|";
    case BinaryOp::kBitXor:   return "^";
    case BinaryOp::kShl:      return "<<";
    case BinaryOp::kShr:      return ">>";
    case BinaryOp::kIn:       return "in";
    case BinaryOp::kInvalid:  return "<invalid>";
  }
  return "<invalid>";
}

const char* UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot:    return "!";
    case UnaryOp::kNeg:    return "-";
    case UnaryOp::kPlus:   return "+";
    case UnaryOp::kBitNot: return "~";
  }
  return "<invalid>";
}

// Quoted, escaped, truncated rendering for names/constants so one giant
// diagnostic string cannot wreck the listing.
std::string QuoteClip(const std::string& s) {
  constexpr size_t kMax = 40;
  std::string out = "\"";
  for (size_t i = 0; i < s.size() && i < kMax; ++i) {
    char ch = s[i];
    if (ch == '\n') {
      out += "\\n";
    } else if (ch == '"') {
      out += "\\\"";
    } else {
      out += ch;
    }
  }
  if (s.size() > kMax) {
    out += "...";
  }
  out += "\"";
  return out;
}

std::string RenderOperand(const Chunk& chunk, char kind, int32_t value) {
  switch (kind) {
    case 'r':
      // Negative register operands are "absent" markers (kCall's this-slot).
      return value < 0 ? "_" : "r" + std::to_string(value);
    case 'a':
      return "atom(" + AtomName(static_cast<Atom>(value)) + ")";
    case 'n': {
      size_t idx = static_cast<size_t>(value);
      return idx < chunk.names.size() ? QuoteClip(chunk.names[idx])
                                      : "names[" + std::to_string(value) + "?]";
    }
    case 'k': {
      size_t idx = static_cast<size_t>(value);
      return idx < chunk.constants.size()
                 ? "const " + QuoteClip(chunk.constants[idx].ToDisplayString())
                 : "constants[" + std::to_string(value) + "?]";
    }
    case 'j':
      return "->" + std::to_string(value);
    case 'd': {
      size_t idx = static_cast<size_t>(value);
      std::string kind_name =
          idx < chunk.nodes.size() && chunk.nodes[idx] != nullptr
              ? NodeKindName(chunk.nodes[idx]->kind)
              : "?";
      return "node[" + std::to_string(value) + "](" + kind_name + ")";
    }
    case 'b':
      return std::string("op(") + BinaryOpName(static_cast<BinaryOp>(value)) + ")";
    case 'u':
      return std::string("op(") + UnaryOpName(static_cast<UnaryOp>(value)) + ")";
    case 'i':
    default:
      return std::to_string(value);
  }
}

}  // namespace

std::string DisassembleChunk(const Chunk& chunk) {
  std::string out;
  out += "; chunk: " + std::to_string(chunk.code.size()) + " insns, " +
         std::to_string(chunk.num_regs) + " regs, " +
         std::to_string(chunk.constants.size()) + " constants, " +
         std::to_string(chunk.names.size()) + " names, " +
         std::to_string(chunk.nodes.size()) + " nodes\n";
  for (size_t i = 0; i < chunk.code.size(); ++i) {
    const Insn& in = chunk.code[i];
    char head[40];
    std::snprintf(head, sizeof(head), "%4zu  %-18s", i, OpName(in.op));
    std::string line = head;
    const int32_t operands[6] = {in.a, in.b, in.c, in.d, in.e, in.f};
    const char* spec = OperandSpec(in.op);
    if (spec == nullptr) {
      spec = "iiiiii";  // unknown opcode: dump everything raw
    }
    bool first = true;
    for (size_t oi = 0; spec[oi] != '\0' && oi < 6; ++oi) {
      if (spec[oi] == '.') {
        continue;
      }
      if (!first) {
        line += ", ";
      }
      first = false;
      line += RenderOperand(chunk, spec[oi], operands[oi]);
    }
    if (i < chunk.lines.size() && chunk.lines[i] != 0) {
      line += "  ; line " + std::to_string(chunk.lines[i]);
    }
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace vm
}  // namespace turnstile
