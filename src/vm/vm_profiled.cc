// Explicit instantiation of the profiled dispatch loop (per-line clock
// compiled in). Isolated in its own translation unit so vm.cc's inlining
// budget is spent entirely on the production ExecuteImpl<false> loop.
#include "src/vm/vm.h"

#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"

#include "src/vm/vm_execute.inc"

namespace turnstile {
namespace vm {
template Result<Completion> Vm::ExecuteImpl<true>(Interpreter&, const Chunk&, EnvPtr);
}  // namespace vm
}  // namespace turnstile
