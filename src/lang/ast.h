// Abstract syntax tree for MiniScript.
//
// The tree uses a single generic Node struct (kind + string/number payload +
// ordered children) so that the static analyzer and the instrumentor can walk
// and rewrite programs uniformly. The child layout of every kind is fixed and
// documented below; helper accessors encode the layouts.
//
// Child layouts (— marks optional trailing children):
//   kProgram          statements...
//   kNumberLit        (payload: num)
//   kStringLit        (payload: str = decoded value)
//   kBoolLit          (payload: num = 0/1)
//   kNullLit, kUndefinedLit, kThisExpr
//   kIdentifier       (payload: str = name)
//   kArrayLit         elements... (elements may be kSpreadElement)
//   kObjectLit        properties... (kProperty nodes)
//   kProperty         static key:  [value]          (payload: str = key)
//                     computed:    [keyExpr, value] (payload: str empty, num = 1)
//   kFunctionExpr     [params, body]                (payload: str = optional name)
//   kArrowFunction    [params, body]  body is kBlockStmt or an expression
//   kParams           identifiers... (last may be kRestParam)
//   kRestParam        (payload: str = name)
//   kClassDecl        [superclassIdent-or-kEmpty, methods...] (payload: str = name)
//   kMethodDef        [params, body]                (payload: str = method name)
//   kCallExpr         [callee, args...]
//   kNewExpr          [callee, args...]
//   kMemberExpr       [object]                      (payload: str = property name)
//   kIndexExpr        [object, index]
//   kBinaryExpr       [left, right]                 (payload: str = operator)
//   kLogicalExpr      [left, right]                 (payload: str = && / || / ??)
//   kUnaryExpr        [operand]                     (payload: str = op, e.g. !, -, typeof)
//   kUpdateExpr       [operand]                     (payload: str = ++/--, num = 1 if prefix)
//   kAssignExpr       [target, value]               (payload: str = =, +=, ...)
//   kConditionalExpr  [cond, thenExpr, elseExpr]
//   kSpreadElement    [argument]
//   kAwaitExpr        [argument]
//   kSequenceExpr     expressions...
//   kVarDecl          declarators...                (payload: str = let/const/var)
//   kDeclarator       [init] or []                  (payload: str = name)
//   kExprStmt         [expression]
//   kBlockStmt        statements...
//   kIfStmt           [cond, thenStmt] or [cond, thenStmt, elseStmt]
//   kWhileStmt        [cond, body]
//   kForStmt          [init, cond, update, body]    (missing parts are kEmpty)
//   kForOfStmt        [iterVar(kIdentifier), iterable, body] (payload: str = decl kind)
//   kReturnStmt       [] or [argument]
//   kBreakStmt, kContinueStmt, kEmpty
//   kFunctionDecl     [params, body]                (payload: str = name)
//   kTryStmt          [block, catchParam(kIdentifier or kEmpty), catchBlock, finallyBlock-or-kEmpty]
//   kThrowStmt        [argument]
#ifndef TURNSTILE_SRC_LANG_AST_H_
#define TURNSTILE_SRC_LANG_AST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/lang/atoms.h"
#include "src/lang/token.h"

namespace turnstile {

enum class NodeKind {
  kProgram,
  kNumberLit,
  kStringLit,
  kBoolLit,
  kNullLit,
  kUndefinedLit,
  kThisExpr,
  kIdentifier,
  kArrayLit,
  kObjectLit,
  kProperty,
  kFunctionExpr,
  kArrowFunction,
  kParams,
  kRestParam,
  kClassDecl,
  kMethodDef,
  kCallExpr,
  kNewExpr,
  kMemberExpr,
  kIndexExpr,
  kBinaryExpr,
  kLogicalExpr,
  kUnaryExpr,
  kUpdateExpr,
  kAssignExpr,
  kConditionalExpr,
  kSpreadElement,
  kAwaitExpr,
  kSequenceExpr,
  kVarDecl,
  kDeclarator,
  kExprStmt,
  kBlockStmt,
  kIfStmt,
  kWhileStmt,
  kForStmt,
  kForOfStmt,
  kReturnStmt,
  kBreakStmt,
  kContinueStmt,
  kEmpty,
  kFunctionDecl,
  kTryStmt,
  kThrowStmt,
};

// Human-readable kind name, e.g. "CallExpr".
const char* NodeKindName(NodeKind kind);

struct Node;
using NodePtr = std::shared_ptr<Node>;

// Resolution annotations (written by ResolveProgram in src/lang/resolve.h).
//
// `hops` on a kIdentifier / kThisExpr:
//   >= 0             walk that many Environment parents, read slots[slot]
//   kHopsGlobal      name lives in the (name-keyed) global environment
//   kHopsUnresolved  no static information; fall back to the dynamic
//                    name-chain walk (hand-built ASTs, typeof probes, ...)
inline constexpr int32_t kHopsUnresolved = -1;
inline constexpr int32_t kHopsGlobal = -2;

struct Node {
  NodeKind kind;
  int id = -1;  // unique within a parsed Program; -1 for synthesized nodes
  SourceLocation loc;
  std::string str;   // see per-kind layout above
  double num = 0.0;  // see per-kind layout above

  // --- resolution annotations (see resolve.h; 0 / defaults = unresolved) ---
  Atom atom = kAtomEmpty;          // interned `str` for identifier-ish kinds
  int32_t hops = kHopsUnresolved;  // scope hops for kIdentifier/kThisExpr uses
  int32_t slot = -1;               // slot index (use sites and decl sites)
  uint32_t frame_size = 0;         // on scope-owning nodes: slots to allocate

  // Compiled-bytecode caches (src/vm). Set on function bodies and program
  // roots the first time the bytecode tier executes them; opaque here so the
  // AST layer does not depend on the VM. Invalidated by ResolveProgram —
  // re-resolution can reassign slots, and chunks bake slot coordinates in.
  // The fused slot holds the DIFT-fused compilation flavor (labelled opcodes
  // for `__dift.*` call sites); for chunks with nothing to fuse it aliases
  // `compiled_chunk`, so clean code compiles once.
  std::shared_ptr<void> compiled_chunk;
  std::shared_ptr<void> compiled_chunk_fused;

  std::vector<NodePtr> children;

  explicit Node(NodeKind k) : kind(k) {}

  bool Is(NodeKind k) const { return kind == k; }

  // Convenience accessors (valid only for the matching kinds).
  const NodePtr& child(size_t i) const { return children[i]; }
  size_t child_count() const { return children.size(); }

  // True for nodes that represent expressions producing a value.
  bool IsExpression() const;
  // True for function-like nodes (kFunctionExpr/kArrowFunction/kFunctionDecl/kMethodDef).
  bool IsFunctionLike() const;
};

// Creates a node of the given kind (id unassigned).
NodePtr MakeNode(NodeKind kind);
NodePtr MakeNode(NodeKind kind, std::string str);
NodePtr MakeNode(NodeKind kind, std::vector<NodePtr> children);
NodePtr MakeNode(NodeKind kind, std::string str, std::vector<NodePtr> children);

// Shorthand constructors used by the instrumentor and tests.
NodePtr MakeIdentifier(const std::string& name);
NodePtr MakeStringLit(const std::string& value);
NodePtr MakeNumberLit(double value);
NodePtr MakeMember(NodePtr object, const std::string& property);
NodePtr MakeCall(NodePtr callee, std::vector<NodePtr> args);

// Deep-copies a subtree (fresh shared_ptrs, same ids).
NodePtr CloneTree(const NodePtr& node);

// A parsed compilation unit.
struct Program {
  NodePtr root;            // kProgram
  std::string source_name; // file name used in diagnostics and policies
  int node_count = 0;      // ids are in [0, node_count)
};

// Calls `fn(node)` for every node in the subtree, pre-order.
void ForEachNode(const NodePtr& root, const std::function<void(const NodePtr&)>& fn);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_LANG_AST_H_
