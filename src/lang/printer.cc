#include "src/lang/printer.h"

#include <cassert>
#include <cctype>

#include "src/support/strings.h"

namespace turnstile {

namespace {

// Escapes a MiniScript string literal body and wraps it in double quotes.
std::string QuoteString(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

class Printer {
 public:
  std::string Render(const NodePtr& node) {
    if (node->IsExpression()) {
      PrintExpr(node);
    } else {
      PrintStmt(node);
    }
    return std::move(out_);
  }

 private:
  void Emit(std::string_view text) { out_.append(text); }
  void EmitIndent() { out_.append(static_cast<size_t>(indent_) * 2, ' '); }
  void EmitLine(std::string_view text) {
    EmitIndent();
    Emit(text);
    Emit("\n");
  }

  // True if an operand needs parentheses when nested inside another operator.
  bool NeedsParens(const NodePtr& node) const {
    switch (node->kind) {
      case NodeKind::kBinaryExpr:
      case NodeKind::kLogicalExpr:
      case NodeKind::kConditionalExpr:
      case NodeKind::kAssignExpr:
      case NodeKind::kArrowFunction:
      case NodeKind::kFunctionExpr:
      case NodeKind::kSequenceExpr:
      case NodeKind::kAwaitExpr:
      case NodeKind::kUnaryExpr:
        return true;
      default:
        return false;
    }
  }

  void PrintOperand(const NodePtr& node) {
    if (NeedsParens(node)) {
      Emit("(");
      PrintExpr(node);
      Emit(")");
    } else {
      PrintExpr(node);
    }
  }

  void PrintParams(const NodePtr& params) {
    Emit("(");
    for (size_t i = 0; i < params->children.size(); ++i) {
      if (i > 0) {
        Emit(", ");
      }
      const NodePtr& p = params->children[i];
      if (p->kind == NodeKind::kRestParam) {
        Emit("...");
        Emit(p->str);
      } else {
        Emit(p->str);
      }
    }
    Emit(")");
  }

  // Prints an expression in a comma-separated list context; sequence
  // expressions must keep their parentheses there.
  void PrintListItem(const NodePtr& node) {
    if (node->kind == NodeKind::kSequenceExpr) {
      Emit("(");
      PrintExpr(node);
      Emit(")");
    } else {
      PrintExpr(node);
    }
  }

  void PrintArgs(const NodePtr& call, size_t first_arg_index) {
    Emit("(");
    for (size_t i = first_arg_index; i < call->children.size(); ++i) {
      if (i > first_arg_index) {
        Emit(", ");
      }
      PrintListItem(call->children[i]);
    }
    Emit(")");
  }

  void PrintExpr(const NodePtr& node) {
    switch (node->kind) {
      case NodeKind::kNumberLit:
        if (node->num < 0) {
          Emit("(" + NumberToString(node->num) + ")");
        } else {
          Emit(NumberToString(node->num));
        }
        return;
      case NodeKind::kStringLit:
        Emit(QuoteString(node->str));
        return;
      case NodeKind::kBoolLit:
        Emit(node->num != 0 ? "true" : "false");
        return;
      case NodeKind::kNullLit:
        Emit("null");
        return;
      case NodeKind::kUndefinedLit:
        Emit("undefined");
        return;
      case NodeKind::kThisExpr:
        Emit("this");
        return;
      case NodeKind::kIdentifier:
        Emit(node->str);
        return;
      case NodeKind::kArrayLit:
        Emit("[");
        for (size_t i = 0; i < node->children.size(); ++i) {
          if (i > 0) {
            Emit(", ");
          }
          PrintListItem(node->children[i]);
        }
        Emit("]");
        return;
      case NodeKind::kObjectLit:
        if (node->children.empty()) {
          Emit("{}");
          return;
        }
        Emit("{ ");
        for (size_t i = 0; i < node->children.size(); ++i) {
          if (i > 0) {
            Emit(", ");
          }
          PrintProperty(node->children[i]);
        }
        Emit(" }");
        return;
      case NodeKind::kSpreadElement:
        Emit("...");
        PrintOperand(node->children[0]);
        return;
      case NodeKind::kFunctionExpr:
        Emit(node->num != 0 ? "async function" : "function");
        if (!node->str.empty()) {
          Emit(" ");
          Emit(node->str);
        }
        PrintParams(node->children[0]);
        Emit(" ");
        PrintBlockInline(node->children[1]);
        return;
      case NodeKind::kArrowFunction:
        if (node->num != 0) {
          Emit("async ");
        }
        PrintParams(node->children[0]);
        Emit(" => ");
        if (node->children[1]->kind == NodeKind::kBlockStmt) {
          PrintBlockInline(node->children[1]);
        } else if (node->children[1]->kind == NodeKind::kObjectLit ||
                   node->children[1]->kind == NodeKind::kSequenceExpr) {
          Emit("(");
          PrintExpr(node->children[1]);
          Emit(")");
        } else {
          PrintExpr(node->children[1]);
        }
        return;
      case NodeKind::kCallExpr:
        PrintOperand(node->children[0]);
        PrintArgs(node, 1);
        return;
      case NodeKind::kNewExpr:
        Emit("new ");
        PrintOperand(node->children[0]);
        PrintArgs(node, 1);
        return;
      case NodeKind::kMemberExpr:
        PrintOperand(node->children[0]);
        Emit(node->num != 0 ? "?." : ".");
        Emit(node->str);
        return;
      case NodeKind::kIndexExpr:
        PrintOperand(node->children[0]);
        Emit("[");
        PrintExpr(node->children[1]);
        Emit("]");
        return;
      case NodeKind::kBinaryExpr:
      case NodeKind::kLogicalExpr:
        PrintOperand(node->children[0]);
        Emit(" ");
        Emit(node->str);
        Emit(" ");
        PrintOperand(node->children[1]);
        return;
      case NodeKind::kUnaryExpr:
        Emit(node->str);
        if (node->str.size() > 1) {  // typeof, delete
          Emit(" ");
        }
        PrintOperand(node->children[0]);
        return;
      case NodeKind::kUpdateExpr:
        if (node->num != 0) {
          Emit(node->str);
          PrintOperand(node->children[0]);
        } else {
          PrintOperand(node->children[0]);
          Emit(node->str);
        }
        return;
      case NodeKind::kAssignExpr:
        PrintExpr(node->children[0]);
        Emit(" ");
        Emit(node->str);
        Emit(" ");
        PrintOperand(node->children[1]);
        return;
      case NodeKind::kConditionalExpr:
        PrintOperand(node->children[0]);
        Emit(" ? ");
        PrintOperand(node->children[1]);
        Emit(" : ");
        PrintOperand(node->children[2]);
        return;
      case NodeKind::kAwaitExpr:
        Emit("await ");
        PrintOperand(node->children[0]);
        return;
      case NodeKind::kSequenceExpr:
        for (size_t i = 0; i < node->children.size(); ++i) {
          if (i > 0) {
            Emit(", ");
          }
          PrintOperand(node->children[i]);
        }
        return;
      default:
        assert(false && "PrintExpr called on a statement node");
        Emit("/*?*/");
        return;
    }
  }

  void PrintProperty(const NodePtr& prop) {
    if (prop->num != 0) {  // computed
      Emit("[");
      PrintExpr(prop->children[0]);
      Emit("]: ");
      PrintExpr(prop->children[1]);
      return;
    }
    bool plain_ident = !prop->str.empty() &&
                       (std::isalpha(static_cast<unsigned char>(prop->str[0])) ||
                        prop->str[0] == '_' || prop->str[0] == '$');
    for (char c : prop->str) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$')) {
        plain_ident = false;
        break;
      }
    }
    if (plain_ident) {
      Emit(prop->str);
    } else {
      Emit(QuoteString(prop->str));
    }
    Emit(": ");
    PrintListItem(prop->children[0]);
  }

  // Prints a block starting at the current position (used after `) ` of a
  // function head); ends without a newline.
  void PrintBlockInline(const NodePtr& block) {
    if (block->children.empty()) {
      Emit("{}");
      return;
    }
    Emit("{\n");
    ++indent_;
    for (const NodePtr& stmt : block->children) {
      PrintStmt(stmt);
    }
    --indent_;
    EmitIndent();
    Emit("}");
  }

  void PrintStmt(const NodePtr& node) {
    switch (node->kind) {
      case NodeKind::kProgram:
        for (const NodePtr& stmt : node->children) {
          PrintStmt(stmt);
        }
        return;
      case NodeKind::kVarDecl:
        EmitIndent();
        Emit(node->str);
        Emit(" ");
        for (size_t i = 0; i < node->children.size(); ++i) {
          if (i > 0) {
            Emit(", ");
          }
          const NodePtr& d = node->children[i];
          Emit(d->str);
          if (!d->children.empty()) {
            Emit(" = ");
            PrintListItem(d->children[0]);
          }
        }
        Emit(";\n");
        return;
      case NodeKind::kExprStmt:
        EmitIndent();
        // A leading `{` or `function` would be mis-parsed as block/decl.
        if (node->children[0]->kind == NodeKind::kObjectLit ||
            node->children[0]->kind == NodeKind::kFunctionExpr) {
          Emit("(");
          PrintExpr(node->children[0]);
          Emit(")");
        } else {
          PrintExpr(node->children[0]);
        }
        Emit(";\n");
        return;
      case NodeKind::kBlockStmt:
        EmitIndent();
        PrintBlockInline(node);
        Emit("\n");
        return;
      case NodeKind::kIfStmt:
        EmitIndent();
        Emit("if (");
        PrintExpr(node->children[0]);
        Emit(") ");
        PrintNestedStmt(node->children[1]);
        if (node->children.size() > 2) {
          EmitIndent();
          Emit("else ");
          PrintNestedStmt(node->children[2]);
        }
        return;
      case NodeKind::kWhileStmt:
        EmitIndent();
        Emit("while (");
        PrintExpr(node->children[0]);
        Emit(") ");
        PrintNestedStmt(node->children[1]);
        return;
      case NodeKind::kForStmt: {
        EmitIndent();
        Emit("for (");
        const NodePtr& init = node->children[0];
        if (init->kind == NodeKind::kVarDecl) {
          Emit(init->str);
          Emit(" ");
          for (size_t i = 0; i < init->children.size(); ++i) {
            if (i > 0) {
              Emit(", ");
            }
            Emit(init->children[i]->str);
            if (!init->children[i]->children.empty()) {
              Emit(" = ");
              PrintExpr(init->children[i]->children[0]);
            }
          }
        } else if (init->kind != NodeKind::kEmpty) {
          PrintExpr(init);
        }
        Emit("; ");
        if (node->children[1]->kind != NodeKind::kEmpty) {
          PrintExpr(node->children[1]);
        }
        Emit("; ");
        if (node->children[2]->kind != NodeKind::kEmpty) {
          PrintExpr(node->children[2]);
        }
        Emit(") ");
        PrintNestedStmt(node->children[3]);
        return;
      }
      case NodeKind::kForOfStmt:
        EmitIndent();
        Emit("for (");
        Emit(node->str);
        Emit(" ");
        Emit(node->children[0]->str);
        Emit(" of ");
        PrintExpr(node->children[1]);
        Emit(") ");
        PrintNestedStmt(node->children[2]);
        return;
      case NodeKind::kReturnStmt:
        EmitIndent();
        if (node->children.empty()) {
          Emit("return;\n");
        } else {
          Emit("return ");
          PrintExpr(node->children[0]);
          Emit(";\n");
        }
        return;
      case NodeKind::kBreakStmt:
        EmitLine("break;");
        return;
      case NodeKind::kContinueStmt:
        EmitLine("continue;");
        return;
      case NodeKind::kEmpty:
        return;
      case NodeKind::kFunctionDecl:
        EmitIndent();
        Emit(node->num != 0 ? "async function " : "function ");
        Emit(node->str);
        PrintParams(node->children[0]);
        Emit(" ");
        PrintBlockInline(node->children[1]);
        Emit("\n");
        return;
      case NodeKind::kClassDecl:
        EmitIndent();
        Emit("class ");
        Emit(node->str);
        if (node->children[0]->kind != NodeKind::kEmpty) {
          Emit(" extends ");
          Emit(node->children[0]->str);
        }
        Emit(" {\n");
        ++indent_;
        for (size_t i = 1; i < node->children.size(); ++i) {
          const NodePtr& method = node->children[i];
          EmitIndent();
          Emit(method->str);
          PrintParams(method->children[0]);
          Emit(" ");
          PrintBlockInline(method->children[1]);
          Emit("\n");
        }
        --indent_;
        EmitIndent();
        Emit("}\n");
        return;
      case NodeKind::kTryStmt:
        EmitIndent();
        Emit("try ");
        PrintBlockInline(node->children[0]);
        if (node->children[2]->kind == NodeKind::kBlockStmt) {
          Emit(" catch ");
          if (node->children[1]->kind != NodeKind::kEmpty) {
            Emit("(");
            Emit(node->children[1]->str);
            Emit(") ");
          }
          PrintBlockInline(node->children[2]);
        }
        if (node->children.size() > 3 && node->children[3]->kind == NodeKind::kBlockStmt) {
          Emit(" finally ");
          PrintBlockInline(node->children[3]);
        }
        Emit("\n");
        return;
      case NodeKind::kThrowStmt:
        EmitIndent();
        Emit("throw ");
        PrintExpr(node->children[0]);
        Emit(";\n");
        return;
      default:
        // Expression used in statement position.
        EmitIndent();
        PrintExpr(node);
        Emit(";\n");
        return;
    }
  }

  // Prints a statement that follows `if (...) ` etc. — blocks inline, other
  // statements on the next line, indented. No braces are synthesized so the
  // printed tree re-parses to an identical structure.
  void PrintNestedStmt(const NodePtr& stmt) {
    if (stmt->kind == NodeKind::kBlockStmt) {
      PrintBlockInline(stmt);
      Emit("\n");
      return;
    }
    Emit("\n");
    ++indent_;
    PrintStmt(stmt);
    --indent_;
  }

  std::string out_;
  int indent_ = 0;
};

}  // namespace

std::string PrintProgram(const NodePtr& root) {
  Printer printer;
  return printer.Render(root);
}

std::string PrintProgram(const Program& program) { return PrintProgram(program.root); }

std::string PrintNode(const NodePtr& node) {
  Printer printer;
  return printer.Render(node);
}

}  // namespace turnstile
