// Token definitions for MiniScript, the JavaScript-like language used by the
// Turnstile reproduction as its application language substrate.
#ifndef TURNSTILE_SRC_LANG_TOKEN_H_
#define TURNSTILE_SRC_LANG_TOKEN_H_

#include <cstdint>
#include <string>

namespace turnstile {

enum class TokenKind {
  kEndOfFile,
  kIdentifier,   // foo
  kNumber,       // 42, 3.14, 0x1f
  kString,       // "..." or '...'
  kKeyword,      // let const var function class ...
  kPunct,        // operators and punctuation
};

struct SourceLocation {
  int line = 0;    // 1-based
  int column = 0;  // 1-based

  std::string ToString() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;     // identifier/keyword/punct spelling, or decoded string value
  double number = 0.0;  // for kNumber
  SourceLocation loc;

  bool Is(TokenKind k) const { return kind == k; }
  bool IsPunct(const char* spelling) const {
    return kind == TokenKind::kPunct && text == spelling;
  }
  bool IsKeyword(const char* spelling) const {
    return kind == TokenKind::kKeyword && text == spelling;
  }
};

// True for MiniScript reserved words.
bool IsKeywordText(const std::string& text);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_LANG_TOKEN_H_
