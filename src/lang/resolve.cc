#include "src/lang/resolve.h"

namespace turnstile {

namespace {

// One static scope per runtime Environment the interpreter creates. The walk
// order below mirrors the interpreter exactly: a call frame per function-like
// node (its block body then opens a nested block scope, as EvalBlock does), a
// scope per block, one per for-header, one per for-of iteration, and one per
// catch clause.
struct Scope {
  NodePtr owner;               // node that carries frame_size
  bool is_global = false;
  bool is_function = false;    // call frame
  bool is_arrow = false;
  bool transparent = false;    // zero-slot block/for scope: no runtime env
  int function_index = -1;     // for call frames
  uint32_t next_slot = 0;
  std::unordered_map<Atom, int> names;  // atom -> binding index
};

class Resolver {
 public:
  explicit Resolver(const Program& program) : program_(program) {
    result_.ast_count = program.node_count;
    result_.ast_by_id.resize(static_cast<size_t>(program.node_count));
    ForEachNode(program.root, [this](const NodePtr& node) {
      if (node->id >= 0 && node->id < result_.ast_count) {
        result_.ast_by_id[static_cast<size_t>(node->id)] = node;
      }
    });
  }

  SemaResult Run() {
    Scope global;
    global.is_global = true;
    global.owner = program_.root;
    scopes_.push_back(std::move(global));
    HoistInto(program_.root->children);
    for (const NodePtr& stmt : program_.root->children) {
      WalkStatement(stmt);
    }
    scopes_.pop_back();
    program_.root->frame_size = 0;
    program_.root->slot = 0;  // resolved marker (see IsResolved)
    return std::move(result_);
  }

 private:
  // --- bindings --------------------------------------------------------------

  int Declare(Atom atom, const std::string& name, int decl_ast, BindingKind kind) {
    Scope& scope = scopes_.back();
    auto it = scope.names.find(atom);
    if (it != scope.names.end()) {
      // Redeclaration in the same scope reuses the slot and the binding.
      return it->second;
    }
    SemaBinding binding;
    binding.atom = atom;
    binding.name = name;
    binding.decl_ast = decl_ast;
    binding.is_global = scope.is_global;
    binding.slot = scope.is_global ? -1 : static_cast<int32_t>(scope.next_slot++);
    binding.kind = kind;
    int index = static_cast<int>(result_.bindings.size());
    result_.bindings.push_back(std::move(binding));
    scope.names.emplace(atom, index);
    return index;
  }

  // `this` lives at slot 0 of every non-arrow call frame but is not a name
  // (identifiers cannot be spelled "this"), so it skips the name map.
  int DeclareThis(int decl_ast) {
    Scope& scope = scopes_.back();
    SemaBinding binding;
    binding.atom = InternAtom("this");
    binding.name = "<this>";
    binding.decl_ast = decl_ast;
    binding.slot = static_cast<int32_t>(scope.next_slot++);
    binding.kind = BindingKind::kThis;
    int index = static_cast<int>(result_.bindings.size());
    result_.bindings.push_back(std::move(binding));
    return index;
  }

  // --- hoisting --------------------------------------------------------------
  //
  // Declares every name the interpreter would Define into the scope currently
  // on top of the stack. Follows exactly the statements that execute in this
  // scope's environment: nested blocks, for/for-of headers and function bodies
  // own their declarations, while bare (non-block) if/while branches execute
  // here and so declare here.

  void HoistInto(const std::vector<NodePtr>& statements) {
    for (const NodePtr& stmt : statements) {
      HoistStatement(stmt);
    }
  }

  void HoistStatement(const NodePtr& node) {
    switch (node->kind) {
      case NodeKind::kVarDecl:
        for (const NodePtr& declarator : node->children) {
          int binding = Declare(InternAtom(declarator->str), declarator->str,
                                declarator->id, BindingKind::kVar);
          RecordDecl(declarator->id, binding);
        }
        return;
      case NodeKind::kFunctionDecl: {
        int binding =
            Declare(InternAtom(node->str), node->str, node->id, BindingKind::kFunction);
        RecordDecl(node->id, binding);
        return;  // the body is its own scope
      }
      case NodeKind::kClassDecl: {
        int binding =
            Declare(InternAtom(node->str), node->str, node->id, BindingKind::kClass);
        RecordDecl(node->id, binding);
        return;  // method bodies are their own scopes
      }
      case NodeKind::kIfStmt:
        HoistBranch(node->children[1]);
        if (node->children.size() > 2) {
          HoistBranch(node->children[2]);
        }
        return;
      case NodeKind::kWhileStmt:
        HoistBranch(node->children[1]);
        return;
      default:
        return;  // blocks/loops/functions own their declarations
    }
  }

  void HoistBranch(const NodePtr& stmt) {
    // A block branch owns its own scope; a bare statement executes in ours.
    if (stmt->kind != NodeKind::kBlockStmt) {
      HoistStatement(stmt);
    }
  }

  void RecordDecl(int ast_id, int binding) {
    if (ast_id >= 0) {
      result_.decl_binding_by_ast[ast_id] = binding;
    }
  }

  // --- scope plumbing --------------------------------------------------------

  void PushScope(NodePtr owner) {
    Scope scope;
    scope.owner = std::move(owner);
    scopes_.push_back(std::move(scope));
  }

  // Called after hoisting, before walking the body: a block or for-header that
  // allocated no slots gets no runtime Environment (and does not count as a
  // hop). The owner's slot doubles as the marker the interpreter checks.
  void FinalizeBlockish(const NodePtr& owner) {
    Scope& scope = scopes_.back();
    scope.transparent = scope.next_slot == 0;
    owner->slot = scope.transparent ? 0 : -1;
  }

  void PopScopeInto(const NodePtr& owner) {
    owner->frame_size = scopes_.back().next_slot;
    scopes_.pop_back();
  }

  // --- uses ------------------------------------------------------------------

  void ResolveUse(const NodePtr& node, bool record_use = true) {
    node->atom = InternAtom(node->str);
    int env_hops = 0;
    for (size_t i = scopes_.size(); i-- > 0;) {
      Scope& scope = scopes_[i];
      auto it = scope.names.find(node->atom);
      if (it != scope.names.end()) {
        const SemaBinding& binding = result_.bindings[static_cast<size_t>(it->second)];
        if (scope.is_global) {
          node->hops = kHopsGlobal;
          node->slot = -1;
        } else {
          node->hops = env_hops;
          node->slot = binding.slot;
        }
        if (record_use && node->id >= 0) {
          result_.use_to_binding[node->id] = it->second;
        }
        return;
      }
      if (!scope.transparent && !scope.is_global) {
        ++env_hops;
      }
    }
    // Unbound: builtins, framework globals, implicit globals. The interpreter
    // probes the name-keyed global environment directly.
    node->hops = kHopsGlobal;
    node->slot = -1;
  }

  void ResolveThis(const NodePtr& node) {
    int env_hops = 0;
    for (size_t i = scopes_.size(); i-- > 0;) {
      Scope& scope = scopes_[i];
      if (scope.is_function && !scope.is_arrow) {
        node->hops = env_hops;
        node->slot = 0;
        if (node->id >= 0) {
          int this_binding =
              result_.functions[static_cast<size_t>(scope.function_index)].this_binding;
          if (this_binding >= 0) {
            result_.use_to_binding[node->id] = this_binding;
          }
        }
        return;
      }
      if (!scope.transparent && !scope.is_global) {
        ++env_hops;
      }
    }
    // `this` outside any non-arrow function: dynamic lookup (undefined).
    node->hops = kHopsUnresolved;
    node->slot = -1;
  }

  // --- functions -------------------------------------------------------------

  int WalkFunctionLike(const NodePtr& node) {
    int fn_index = static_cast<int>(result_.functions.size());
    result_.functions.emplace_back();
    result_.function_by_ast[node->id] = fn_index;
    result_.functions[static_cast<size_t>(fn_index)].ast_id = node->id;
    result_.functions[static_cast<size_t>(fn_index)].node = node;
    result_.functions[static_cast<size_t>(fn_index)].enclosing = current_function_;

    PushScope(node);
    Scope& scope = scopes_.back();
    scope.is_function = true;
    scope.is_arrow = node->kind == NodeKind::kArrowFunction;
    scope.function_index = fn_index;
    int saved_function = current_function_;
    current_function_ = fn_index;

    if (!scope.is_arrow) {
      result_.functions[static_cast<size_t>(fn_index)].this_binding = DeclareThis(node->id);
    }
    // kFunctionDecl keeps the declaration-name slot its statement case wrote;
    // kFunctionExpr carries its self-binding slot; others carry none.
    if (node->kind == NodeKind::kFunctionExpr) {
      node->slot = -1;
      if (!node->str.empty()) {
        int self = Declare(InternAtom(node->str), node->str, node->id, BindingKind::kSelf);
        result_.functions[static_cast<size_t>(fn_index)].self_binding = self;
        node->slot = result_.bindings[static_cast<size_t>(self)].slot;
      }
    } else if (node->kind != NodeKind::kFunctionDecl) {
      node->slot = -1;
    }
    for (const NodePtr& param : node->children[0]->children) {
      Atom atom = InternAtom(param->str);
      BindingKind kind = param->kind == NodeKind::kRestParam ? BindingKind::kRest
                                                             : BindingKind::kParam;
      int binding = Declare(atom, param->str, param->id, kind);
      param->atom = atom;
      param->slot = result_.bindings[static_cast<size_t>(binding)].slot;
      result_.functions[static_cast<size_t>(fn_index)].param_bindings.push_back(binding);
    }

    const NodePtr& body = node->children[1];
    if (body->kind == NodeKind::kBlockStmt) {
      WalkStatement(body);  // opens the body-block scope, like EvalBlock does
    } else {
      WalkExpression(body);
    }

    current_function_ = saved_function;
    PopScopeInto(node);
    return fn_index;
  }

  // --- statements ------------------------------------------------------------

  void WalkStatement(const NodePtr& node) {
    switch (node->kind) {
      case NodeKind::kProgram:
        for (const NodePtr& stmt : node->children) {
          WalkStatement(stmt);
        }
        return;
      case NodeKind::kVarDecl: {
        for (const NodePtr& declarator : node->children) {
          declarator->atom = InternAtom(declarator->str);
          // Re-fetch the scope each iteration: walking an initializer can
          // push scopes and reallocate the stack.
          Scope& scope = scopes_.back();
          auto it = scope.names.find(declarator->atom);
          declarator->slot =
              it == scope.names.end()
                  ? -1
                  : result_.bindings[static_cast<size_t>(it->second)].slot;
          if (!declarator->children.empty()) {
            WalkExpression(declarator->children[0]);
          }
        }
        return;
      }
      case NodeKind::kFunctionDecl: {
        node->atom = InternAtom(node->str);
        Scope& scope = scopes_.back();
        auto it = scope.names.find(node->atom);
        node->slot = it == scope.names.end()
                         ? -1
                         : result_.bindings[static_cast<size_t>(it->second)].slot;
        WalkFunctionLike(node);
        return;
      }
      case NodeKind::kClassDecl: {
        node->atom = InternAtom(node->str);
        Scope& scope = scopes_.back();
        auto it = scope.names.find(node->atom);
        node->slot = it == scope.names.end()
                         ? -1
                         : result_.bindings[static_cast<size_t>(it->second)].slot;
        SemaClass cls;
        cls.name = node->str;
        cls.ast_id = node->id;
        if (node->children[0]->kind != NodeKind::kEmpty) {
          cls.super_name = node->children[0]->str;
          // Annotate the superclass use for the interpreter, but keep it out
          // of use_to_binding: the dataflow graph wires classes by name.
          ResolveUse(node->children[0], /*record_use=*/false);
        }
        for (size_t i = 1; i < node->children.size(); ++i) {
          const NodePtr& method = node->children[i];
          int method_fn = WalkFunctionLike(method);
          cls.methods[method->str] = method_fn;
        }
        result_.class_by_name[cls.name] = static_cast<int>(result_.classes.size());
        result_.classes.push_back(std::move(cls));
        return;
      }
      case NodeKind::kBlockStmt: {
        PushScope(node);
        HoistInto(node->children);
        FinalizeBlockish(node);
        for (const NodePtr& stmt : node->children) {
          WalkStatement(stmt);
        }
        PopScopeInto(node);
        return;
      }
      case NodeKind::kIfStmt:
        WalkExpression(node->children[0]);
        WalkStatement(node->children[1]);
        if (node->children.size() > 2) {
          WalkStatement(node->children[2]);
        }
        return;
      case NodeKind::kWhileStmt:
        WalkExpression(node->children[0]);
        WalkStatement(node->children[1]);
        return;
      case NodeKind::kForStmt: {
        PushScope(node);
        if (node->children[0]->kind == NodeKind::kVarDecl) {
          HoistStatement(node->children[0]);
        }
        HoistBranch(node->children[3]);
        FinalizeBlockish(node);
        WalkStatement(node->children[0]);
        if (node->children[1]->kind != NodeKind::kEmpty) {
          WalkExpression(node->children[1]);
        }
        if (node->children[2]->kind != NodeKind::kEmpty) {
          WalkExpression(node->children[2]);
        }
        WalkStatement(node->children[3]);
        PopScopeInto(node);
        return;
      }
      case NodeKind::kForOfStmt: {
        WalkExpression(node->children[1]);  // iterable evaluates in the outer scope
        PushScope(node);
        const NodePtr& loop_var = node->children[0];
        loop_var->atom = InternAtom(loop_var->str);
        int binding =
            Declare(loop_var->atom, loop_var->str, loop_var->id, BindingKind::kForOf);
        RecordDecl(loop_var->id, binding);
        if (loop_var->id >= 0) {
          result_.use_to_binding[loop_var->id] = binding;
        }
        loop_var->slot = result_.bindings[static_cast<size_t>(binding)].slot;
        loop_var->hops = 0;
        HoistBranch(node->children[2]);
        node->slot = -1;  // per-iteration frames always materialize
        WalkStatement(node->children[2]);
        PopScopeInto(node);
        return;
      }
      case NodeKind::kReturnStmt:
        if (!node->children.empty()) {
          WalkExpression(node->children[0]);
        }
        return;
      case NodeKind::kTryStmt: {
        WalkStatement(node->children[0]);
        node->slot = -1;
        if (node->children[2]->kind == NodeKind::kBlockStmt) {
          PushScope(node);
          const NodePtr& param = node->children[1];
          if (param->kind != NodeKind::kEmpty) {
            param->atom = InternAtom(param->str);
            int binding = Declare(param->atom, param->str, param->id, BindingKind::kCatch);
            if (param->id >= 0) {
              result_.use_to_binding[param->id] = binding;
            }
            param->slot = result_.bindings[static_cast<size_t>(binding)].slot;
            param->hops = 0;
          }
          WalkStatement(node->children[2]);
          PopScopeInto(node);  // the catch frame lives on the try node
        } else {
          node->frame_size = 0;
        }
        if (node->children.size() > 3 && node->children[3]->kind == NodeKind::kBlockStmt) {
          WalkStatement(node->children[3]);
        }
        return;
      }
      case NodeKind::kThrowStmt:
        WalkExpression(node->children[0]);
        return;
      case NodeKind::kExprStmt:
        WalkExpression(node->children[0]);
        return;
      case NodeKind::kBreakStmt:
      case NodeKind::kContinueStmt:
      case NodeKind::kEmpty:
        return;
      default:
        WalkExpression(node);
        return;
    }
  }

  // --- expressions -----------------------------------------------------------

  void WalkExpression(const NodePtr& node) {
    switch (node->kind) {
      case NodeKind::kIdentifier:
        ResolveUse(node);
        return;
      case NodeKind::kThisExpr:
        ResolveThis(node);
        return;
      case NodeKind::kFunctionExpr:
      case NodeKind::kArrowFunction:
        WalkFunctionLike(node);
        return;
      case NodeKind::kObjectLit:
        for (const NodePtr& prop : node->children) {
          if (prop->num != 0) {  // computed key
            WalkExpression(prop->children[0]);
            WalkExpression(prop->children[1]);
          } else {
            prop->atom = InternAtom(prop->str);
            WalkExpression(prop->children[0]);
          }
        }
        return;
      case NodeKind::kMemberExpr:
        node->atom = InternAtom(node->str);
        WalkExpression(node->children[0]);
        return;
      case NodeKind::kNumberLit:
      case NodeKind::kStringLit:
      case NodeKind::kBoolLit:
      case NodeKind::kNullLit:
      case NodeKind::kUndefinedLit:
      case NodeKind::kEmpty:
        return;
      case NodeKind::kArrayLit:
      case NodeKind::kCallExpr:
      case NodeKind::kNewExpr:
      case NodeKind::kIndexExpr:
      case NodeKind::kBinaryExpr:
      case NodeKind::kLogicalExpr:
      case NodeKind::kUnaryExpr:
      case NodeKind::kUpdateExpr:
      case NodeKind::kAssignExpr:
      case NodeKind::kConditionalExpr:
      case NodeKind::kSpreadElement:
      case NodeKind::kAwaitExpr:
      case NodeKind::kSequenceExpr:
        for (const NodePtr& child : node->children) {
          WalkExpression(child);
        }
        return;
      default:
        // Defensive: a statement-ish node in expression position. Keep every
        // identifier under it annotated (a missed one would name-walk past
        // slot-only frames at runtime).
        for (const NodePtr& child : node->children) {
          if (child->kind == NodeKind::kBlockStmt) {
            WalkStatement(child);
          } else if (child->IsExpression()) {
            WalkExpression(child);
          }
        }
        return;
    }
  }

  const Program& program_;
  SemaResult result_;
  std::vector<Scope> scopes_;
  int current_function_ = -1;
};

}  // namespace

SemaResult ResolveProgram(const Program& program) {
  // Slots may move under re-resolution (the instrumentor rewrites trees in
  // place); any bytecode compiled against the old coordinates is stale.
  ForEachNode(program.root, [](const NodePtr& node) {
    node->compiled_chunk.reset();
    node->compiled_chunk_fused.reset();
  });
  return Resolver(program).Run();
}

}  // namespace turnstile
