#include "src/lang/lexer.h"

#include <cctype>
#include <cstdlib>
#include <set>

namespace turnstile {

bool IsKeywordText(const std::string& text) {
  static const std::set<std::string> kKeywords = {
      "let",     "const",    "var",    "function", "return", "if",    "else",
      "while",   "for",      "of",     "break",    "continue", "true", "false",
      "null",    "undefined", "new",   "class",    "extends", "this",  "typeof",
      "delete",  "in",       "try",    "catch",    "finally", "throw", "await",
      "async",   "static",
  };
  return kKeywords.count(text) > 0;
}

namespace {

// Longest-first list of multi-character punctuators.
const char* kPunctuators[] = {
    "===", "!==", "**=", "...", "<<=", ">>=", "&&=", "||=", "?\?=",
    "==", "!=", "<=", ">=", "&&", "||", "??", "?.", "=>", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "**",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "?", ":", ";", ",",
    ".", "(", ")", "[", "]", "{", "}", "&", "|", "^", "~",
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      TURNSTILE_RETURN_IF_ERROR(SkipTrivia());
      if (AtEnd()) {
        Token eof;
        eof.kind = TokenKind::kEndOfFile;
        eof.loc = Location();
        tokens.push_back(eof);
        return tokens;
      }
      TURNSTILE_ASSIGN_OR_RETURN(token, Next());
      tokens.push_back(std::move(token));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= source_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }

  SourceLocation Location() const { return {line_, static_cast<int>(pos_ - line_start_) + 1}; }

  void Advance() {
    if (Peek() == '\n') {
      ++line_;
      line_start_ = pos_ + 1;
    }
    ++pos_;
  }

  Status Fail(const std::string& message) const {
    return ParseError(message + " at " + Location().ToString());
  }

  Status SkipTrivia() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (!AtEnd() && Peek() != '\n') {
          Advance();
        }
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) {
          Advance();
        }
        if (AtEnd()) {
          return Fail("unterminated block comment");
        }
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::Ok();
  }

  Result<Token> Next() {
    char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      return LexIdentifier();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return LexNumber();
    }
    if (c == '"' || c == '\'' || c == '`') {
      return LexString(c);
    }
    return LexPunct();
  }

  Result<Token> LexIdentifier() {
    Token token;
    token.loc = Location();
    std::string text;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
        text += c;
        Advance();
      } else {
        break;
      }
    }
    token.kind = IsKeywordText(text) ? TokenKind::kKeyword : TokenKind::kIdentifier;
    token.text = std::move(text);
    return token;
  }

  Result<Token> LexNumber() {
    Token token;
    token.kind = TokenKind::kNumber;
    token.loc = Location();
    size_t start = pos_;
    if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
      Advance();
      Advance();
      while (!AtEnd() && std::isxdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
      if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
        Advance();
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          Advance();
        }
      }
      if (Peek() == 'e' || Peek() == 'E') {
        size_t mark = pos_;
        Advance();
        if (Peek() == '+' || Peek() == '-') {
          Advance();
        }
        if (std::isdigit(static_cast<unsigned char>(Peek()))) {
          while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
            Advance();
          }
        } else {
          pos_ = mark;  // not an exponent after all
        }
      }
    }
    std::string text(source_.substr(start, pos_ - start));
    token.text = text;
    token.number = std::strtod(text.c_str(), nullptr);
    return token;
  }

  Result<Token> LexString(char quote) {
    Token token;
    token.kind = TokenKind::kString;
    token.loc = Location();
    Advance();  // opening quote
    std::string value;
    while (true) {
      if (AtEnd()) {
        return Fail("unterminated string literal");
      }
      char c = Peek();
      if (c == quote) {
        Advance();
        token.text = std::move(value);
        return token;
      }
      if (c == '\n' && quote != '`') {
        return Fail("newline in string literal");
      }
      if (c == '\\') {
        Advance();
        if (AtEnd()) {
          return Fail("unterminated escape sequence");
        }
        char esc = Peek();
        Advance();
        switch (esc) {
          case 'n':
            value += '\n';
            break;
          case 't':
            value += '\t';
            break;
          case 'r':
            value += '\r';
            break;
          case '0':
            value += '\0';
            break;
          case '\\':
            value += '\\';
            break;
          case '\'':
            value += '\'';
            break;
          case '"':
            value += '"';
            break;
          case '`':
            value += '`';
            break;
          case '\n':
            break;  // line continuation
          default:
            value += esc;
        }
        continue;
      }
      value += c;
      Advance();
    }
  }

  Result<Token> LexPunct() {
    Token token;
    token.kind = TokenKind::kPunct;
    token.loc = Location();
    std::string_view rest = source_.substr(pos_);
    for (const char* punct : kPunctuators) {
      std::string_view spelling(punct);
      if (rest.substr(0, spelling.size()) == spelling) {
        token.text = std::string(spelling);
        for (size_t i = 0; i < spelling.size(); ++i) {
          Advance();
        }
        return token;
      }
    }
    return Fail(std::string("unexpected character '") + Peek() + "'");
  }

  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
  size_t line_start_ = 0;
};

}  // namespace

Result<std::vector<Token>> Lex(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace turnstile
