// Hand-written lexer for MiniScript.
//
// Supported lexical grammar (a pragmatic ES6 subset):
//   - line comments (//) and block comments (/* */)
//   - identifiers and keywords
//   - decimal and hex number literals
//   - single- and double-quoted strings with the usual escapes
//   - template literals WITHOUT interpolation (`...`), lexed as plain strings
//   - multi-character punctuators, longest-match (===, !==, =>, ..., &&= etc.)
#ifndef TURNSTILE_SRC_LANG_LEXER_H_
#define TURNSTILE_SRC_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/lang/token.h"
#include "src/support/status.h"

namespace turnstile {

// Tokenizes `source`. On success the token stream always ends with a
// kEndOfFile token.
Result<std::vector<Token>> Lex(std::string_view source);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_LANG_LEXER_H_
