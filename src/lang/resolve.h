// Static name resolution ("sema") for MiniScript programs.
//
// ResolveProgram walks a parsed AST once and annotates it in place:
//   - every kIdentifier / kThisExpr use gets (hops, slot) coordinates that the
//     interpreter turns into direct frame indexing (src/interp/environment.h):
//       hops >= 0        walk that many Environment parents, read slots[slot]
//       kHopsGlobal      the name lives in the name-keyed global environment
//       kHopsUnresolved  no static info; dynamic name-chain walk (hand-built
//                        ASTs that never went through ResolveProgram)
//   - every declaration site (declarators, params, rest params, catch params,
//     for-of loop variables, function/class names) gets its defining slot
//   - every scope-owning node gets frame_size, the number of value slots its
//     runtime Environment must allocate:
//       function-like nodes   the call frame (slot 0 = `this` for non-arrows,
//                             then the self-binding of named function
//                             expressions, then parameters)
//       kBlockStmt            the block frame
//       kForStmt              the loop-header frame (init declarations)
//       kForOfStmt            the per-iteration frame (the loop variable)
//       kTryStmt              the catch frame (the catch parameter)
//   - identifier-ish payload strings (identifiers, member-access property
//     names, static object-literal keys) are interned into the atom table
//
// The scope structure mirrors the interpreter's runtime environment creation
// sites exactly — one static scope per Environment the interpreter makes — so
// hop counts line up with the runtime parent chain. Blocks and for-headers
// that end up with zero slots are marked "transparent" (node->slot == 0 with
// frame_size == 0): the interpreter skips creating an Environment for them and
// the resolver skips them when counting hops.
//
// Binding visibility is hoisted: every declaration in a scope is visible (and
// has a slot) from scope entry, initialized to undefined. This matches JS var
// hoisting and function-declaration hoisting; for let/const it diverges from
// a strict TDZ (reads before the declaration yield undefined instead of an
// error). The analyzer adapter (src/analysis/scope.cc) consumes the SemaResult
// tables below, so the analyzer and the interpreter share one binding
// structure by construction.
//
// Re-resolution: ResolveProgram overwrites every annotation it is responsible
// for, so it is safe (and required) to re-run it after the instrumentor
// rewrites a tree or after a printer round-trip re-parses one. Instrumented
// output must re-parse *and* re-resolve before it can run.
#ifndef TURNSTILE_SRC_LANG_RESOLVE_H_
#define TURNSTILE_SRC_LANG_RESOLVE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/lang/ast.h"

namespace turnstile {

enum class BindingKind {
  kVar,       // let / const / var declarator
  kParam,     // function parameter
  kRest,      // rest parameter
  kCatch,     // catch clause parameter
  kForOf,     // for-of loop variable
  kFunction,  // function declaration name
  kClass,     // class declaration name
  kThis,      // the `this` pseudo-binding of a non-arrow function
  kSelf,      // self-binding of a named function expression
};

struct SemaBinding {
  Atom atom = kAtomEmpty;
  std::string name;    // "<this>" for kThis bindings
  int decl_ast = -1;   // id of the node that introduced the binding
  int32_t slot = -1;   // slot in the owning frame; -1 for global bindings
  bool is_global = false;
  BindingKind kind = BindingKind::kVar;
};

struct SemaFunction {
  int ast_id = -1;
  NodePtr node;
  int enclosing = -1;                // index into SemaResult::functions
  std::vector<int> param_bindings;   // indices into SemaResult::bindings
  int this_binding = -1;             // index into bindings (-1 for arrows)
  int self_binding = -1;             // named function expressions only
};

struct SemaClass {
  std::string name;
  int ast_id = -1;
  std::string super_name;                        // "" when no extends clause
  std::unordered_map<std::string, int> methods;  // method name -> fn index
};

struct SemaResult {
  int ast_count = 0;
  std::vector<NodePtr> ast_by_id;  // indexed by Node::id
  std::vector<SemaBinding> bindings;
  // Use-site AST id -> binding index. Entries exist only for uses bound to a
  // program-declared name (unbound builtins like `console` have none), for
  // kThisExpr uses, for for-of loop variables and for catch parameters —
  // matching what the dataflow analyzer consumes.
  std::unordered_map<int, int> use_to_binding;
  std::vector<SemaFunction> functions;
  std::unordered_map<int, int> function_by_ast;  // fn ast id -> function index
  std::vector<SemaClass> classes;
  std::unordered_map<std::string, int> class_by_name;
  std::unordered_map<int, int> decl_binding_by_ast;  // decl ast id -> binding
};

// Resolves (and annotates) `program`. Never fails on valid parses. Mutates the
// AST nodes through their shared pointers; the Program itself is untouched.
SemaResult ResolveProgram(const Program& program);

// True once ResolveProgram has run over this tree (the root carries a marker).
// Cloned trees keep their annotations; rewritten trees must re-resolve.
inline bool IsResolved(const Program& program) {
  return program.root != nullptr && program.root->slot >= 0;
}

}  // namespace turnstile

#endif  // TURNSTILE_SRC_LANG_RESOLVE_H_
