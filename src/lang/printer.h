// Source-code generator for MiniScript ASTs.
//
// The instrumentor emits a rewritten tree; PrintProgram turns it back into
// compilable source. The printer inserts parentheses conservatively, so
// Parse(Print(t)) always yields a tree that evaluates identically to t, and
// Print is a fixed point of Parse∘Print (tested).
#ifndef TURNSTILE_SRC_LANG_PRINTER_H_
#define TURNSTILE_SRC_LANG_PRINTER_H_

#include <string>

#include "src/lang/ast.h"

namespace turnstile {

// Renders a whole program with 2-space indentation.
std::string PrintProgram(const Program& program);
std::string PrintProgram(const NodePtr& root);

// Renders a single expression or statement subtree (no trailing newline for
// expressions).
std::string PrintNode(const NodePtr& node);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_LANG_PRINTER_H_
