// Recursive-descent parser for MiniScript.
//
// The accepted language is the pragmatic ES6 subset described in
// src/lang/ast.h. Notable properties:
//   - semicolons are recommended but optional (the parser is newline-agnostic;
//     corpus sources always use semicolons)
//   - arrow functions, spread, classes, for-of, try/catch, async/await are
//     supported; `await x` is an expression node the interpreter evaluates as
//     `x` (promises are pass-through, matching the paper's treatment)
//   - `eval` is not part of the language (matching the paper)
#ifndef TURNSTILE_SRC_LANG_PARSER_H_
#define TURNSTILE_SRC_LANG_PARSER_H_

#include <string>
#include <string_view>

#include "src/lang/ast.h"
#include "src/support/status.h"

namespace turnstile {

// Parses `source` into a Program. `source_name` is used in diagnostics and in
// policy injection points ("file" field).
Result<Program> ParseProgram(std::string_view source, std::string source_name = "<input>");

// Re-assigns dense node ids across the tree (used after instrumentation adds
// synthesized nodes). Returns the new node count.
int RenumberNodes(Program* program);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_LANG_PARSER_H_
