#include "src/lang/atoms.h"

namespace turnstile {

AtomTable& AtomTable::Global() {
  static AtomTable* table = new AtomTable();
  return *table;
}

AtomTable::AtomTable() {
  // Atom 0 == "".
  names_.emplace_back();
  index_.emplace(std::string_view(names_.back()), kAtomEmpty);
}

Atom AtomTable::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    return it->second;
  }
  Atom atom = static_cast<Atom>(names_.size());
  names_.emplace_back(name);
  // Key the index by the deque-owned storage: deque push_back never moves
  // existing elements, so the view stays valid forever.
  index_.emplace(std::string_view(names_.back()), atom);
  return atom;
}

const std::string& AtomTable::NameOf(Atom atom) const {
  static const std::string kEmpty;
  if (atom >= names_.size()) {
    return kEmpty;
  }
  return names_[atom];
}

}  // namespace turnstile
