#include "src/lang/atoms.h"

#include <cstdio>
#include <cstdlib>
#include <functional>

namespace turnstile {
namespace {

size_t HashName(std::string_view name) { return std::hash<std::string_view>{}(name); }

}  // namespace

AtomTable& AtomTable::Global() {
  static AtomTable* table = new AtomTable();
  return *table;
}

AtomTable::AtomTable() {
  auto index = std::make_unique<Index>(1024);
  index_.store(index.get(), std::memory_order_release);
  retired_.push_back(std::move(index));
  Intern(std::string_view());  // Atom 0 == "".
}

AtomTable::~AtomTable() {
  size_t count = size_.load(std::memory_order_acquire);
  for (size_t chunk = 0; chunk * kChunkSize < count; ++chunk) {
    delete[] chunks_[chunk].load(std::memory_order_acquire);
  }
}

void AtomTable::IndexInsert(Index& index, size_t hash, Atom atom) {
  for (size_t i = hash & index.mask;; i = (i + 1) & index.mask) {
    if (index.slots[i].load(std::memory_order_relaxed) == 0) {
      // Release so a reader that observes the slot also observes the string
      // written before publication.
      index.slots[i].store(atom + 1, std::memory_order_release);
      return;
    }
  }
}

Atom AtomTable::Find(std::string_view name) const {
  const Index* index = index_.load(std::memory_order_acquire);
  const size_t hash = HashName(name);
  for (size_t i = hash & index->mask;; i = (i + 1) & index->mask) {
    const uint32_t slot = index->slots[i].load(std::memory_order_acquire);
    if (slot == 0) {
      return kAtomInvalid;
    }
    const Atom atom = slot - 1;
    if (SlotAt(atom) == name) {
      return atom;
    }
  }
}

Atom AtomTable::Intern(std::string_view name) {
  Atom found = Find(name);
  if (found != kAtomInvalid) {
    return found;
  }
  std::lock_guard<std::mutex> lock(write_mu_);
  // Double-check: another writer may have interned it while we waited.
  found = Find(name);
  if (found != kAtomInvalid) {
    return found;
  }

  const uint32_t count = size_.load(std::memory_order_relaxed);
  const size_t chunk = count >> kChunkShift;
  if (chunk >= kMaxChunks) {
    std::fprintf(stderr, "AtomTable: intern capacity exhausted (%u atoms)\n", count);
    std::abort();
  }
  std::string* storage = chunks_[chunk].load(std::memory_order_relaxed);
  if (storage == nullptr) {
    storage = new std::string[kChunkSize];
    chunks_[chunk].store(storage, std::memory_order_release);
  }
  const Atom atom = count;
  storage[count & (kChunkSize - 1)] = std::string(name);

  // Grow the index before inserting when load would exceed 3/4. Readers keep
  // probing the old table until the new one is published; the old one is
  // retired, not freed, so their probes stay valid.
  Index* index = index_.load(std::memory_order_relaxed);
  if ((static_cast<size_t>(count) + 1) * 4 > (index->mask + 1) * 3) {
    auto grown = std::make_unique<Index>((index->mask + 1) * 2);
    for (Atom a = 0; a < count; ++a) {
      IndexInsert(*grown, HashName(SlotAt(a)), a);
    }
    index = grown.get();
    index_.store(index, std::memory_order_release);
    retired_.push_back(std::move(grown));
  }

  // Publish: index slot first (release; makes the string findable), then
  // size last — so a reader that observes `atom < size()` is guaranteed both
  // NameOf and Find see the entry.
  IndexInsert(*index, HashName(name), atom);
  size_.store(count + 1, std::memory_order_release);
  return atom;
}

const std::string& AtomTable::NameOf(Atom atom) const {
  static const std::string kEmpty;
  if (atom >= size_.load(std::memory_order_acquire)) {
    return kEmpty;
  }
  return SlotAt(atom);
}

}  // namespace turnstile
