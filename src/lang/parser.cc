#include "src/lang/parser.h"

#include <cassert>

#include "src/lang/lexer.h"
#include "src/obs/metrics.h"
#include "src/support/stopwatch.h"

namespace turnstile {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string source_name)
      : tokens_(std::move(tokens)), source_name_(std::move(source_name)) {}

  Result<Program> Run() {
    NodePtr root = NewNode(NodeKind::kProgram);
    while (!AtEnd()) {
      TURNSTILE_ASSIGN_OR_RETURN(stmt, ParseStatement());
      root->children.push_back(std::move(stmt));
    }
    Program program;
    program.root = std::move(root);
    program.source_name = source_name_;
    program.node_count = next_id_;
    return program;
  }

 private:
  // ---- token helpers -------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) {
      return tokens_.back();  // EOF token
    }
    return tokens_[i];
  }

  bool AtEnd() const { return Peek().Is(TokenKind::kEndOfFile); }

  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool MatchPunct(const char* spelling) {
    if (Peek().IsPunct(spelling)) {
      Advance();
      return true;
    }
    return false;
  }

  bool MatchKeyword(const char* spelling) {
    if (Peek().IsKeyword(spelling)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Fail(const std::string& message) const {
    return ParseError(source_name_ + ":" + Peek().loc.ToString() + ": " + message +
                      " (got '" + Peek().text + "')");
  }

  Status ExpectPunct(const char* spelling) {
    if (!MatchPunct(spelling)) {
      return Fail(std::string("expected '") + spelling + "'");
    }
    return Status::Ok();
  }

  NodePtr NewNode(NodeKind kind) {
    NodePtr node = std::make_shared<Node>(kind);
    node->id = next_id_++;
    node->loc = Peek().loc;
    return node;
  }

  // ---- statements ----------------------------------------------------------

  Result<NodePtr> ParseStatement() {
    const Token& token = Peek();
    if (token.Is(TokenKind::kKeyword)) {
      const std::string& kw = token.text;
      if (kw == "let" || kw == "const" || kw == "var") {
        TURNSTILE_ASSIGN_OR_RETURN(decl, ParseVarDecl());
        MatchPunct(";");
        return decl;
      }
      if (kw == "function") {
        return ParseFunctionDecl(/*is_async=*/false);
      }
      if (kw == "async" && Peek(1).IsKeyword("function")) {
        Advance();  // async
        return ParseFunctionDecl(/*is_async=*/true);
      }
      if (kw == "class") {
        return ParseClassDecl();
      }
      if (kw == "if") {
        return ParseIfStatement();
      }
      if (kw == "while") {
        return ParseWhileStatement();
      }
      if (kw == "for") {
        return ParseForStatement();
      }
      if (kw == "return") {
        NodePtr stmt = NewNode(NodeKind::kReturnStmt);
        Advance();
        if (!Peek().IsPunct(";") && !Peek().IsPunct("}") && !AtEnd()) {
          TURNSTILE_ASSIGN_OR_RETURN(arg, ParseExpression());
          stmt->children.push_back(std::move(arg));
        }
        MatchPunct(";");
        return stmt;
      }
      if (kw == "break") {
        NodePtr stmt = NewNode(NodeKind::kBreakStmt);
        Advance();
        MatchPunct(";");
        return stmt;
      }
      if (kw == "continue") {
        NodePtr stmt = NewNode(NodeKind::kContinueStmt);
        Advance();
        MatchPunct(";");
        return stmt;
      }
      if (kw == "try") {
        return ParseTryStatement();
      }
      if (kw == "throw") {
        NodePtr stmt = NewNode(NodeKind::kThrowStmt);
        Advance();
        TURNSTILE_ASSIGN_OR_RETURN(arg, ParseExpression());
        stmt->children.push_back(std::move(arg));
        MatchPunct(";");
        return stmt;
      }
    }
    if (token.IsPunct("{")) {
      return ParseBlock();
    }
    if (token.IsPunct(";")) {
      NodePtr stmt = NewNode(NodeKind::kEmpty);
      Advance();
      return stmt;
    }
    NodePtr stmt = NewNode(NodeKind::kExprStmt);
    TURNSTILE_ASSIGN_OR_RETURN(expr, ParseExpression());
    stmt->children.push_back(std::move(expr));
    MatchPunct(";");
    return stmt;
  }

  // Parses `let a = 1, b` WITHOUT consuming a trailing semicolon.
  Result<NodePtr> ParseVarDecl() {
    NodePtr decl = NewNode(NodeKind::kVarDecl);
    decl->str = Advance().text;  // let/const/var
    while (true) {
      if (!Peek().Is(TokenKind::kIdentifier)) {
        return Fail("expected variable name");
      }
      NodePtr declarator = NewNode(NodeKind::kDeclarator);
      declarator->str = Advance().text;
      if (MatchPunct("=")) {
        TURNSTILE_ASSIGN_OR_RETURN(init, ParseAssignment());
        declarator->children.push_back(std::move(init));
      }
      decl->children.push_back(std::move(declarator));
      if (!MatchPunct(",")) {
        return decl;
      }
    }
  }

  Result<NodePtr> ParseFunctionDecl(bool is_async) {
    NodePtr fn = NewNode(NodeKind::kFunctionDecl);
    fn->num = is_async ? 1 : 0;
    Advance();  // function
    if (!Peek().Is(TokenKind::kIdentifier)) {
      return Fail("expected function name");
    }
    fn->str = Advance().text;
    TURNSTILE_ASSIGN_OR_RETURN(params, ParseParams());
    TURNSTILE_ASSIGN_OR_RETURN(body, ParseBlock());
    fn->children.push_back(std::move(params));
    fn->children.push_back(std::move(body));
    return fn;
  }

  Result<NodePtr> ParseClassDecl() {
    NodePtr cls = NewNode(NodeKind::kClassDecl);
    Advance();  // class
    if (!Peek().Is(TokenKind::kIdentifier)) {
      return Fail("expected class name");
    }
    cls->str = Advance().text;
    if (MatchKeyword("extends")) {
      if (!Peek().Is(TokenKind::kIdentifier)) {
        return Fail("expected superclass name");
      }
      NodePtr super = NewNode(NodeKind::kIdentifier);
      super->str = Advance().text;
      cls->children.push_back(std::move(super));
    } else {
      cls->children.push_back(NewNode(NodeKind::kEmpty));
    }
    TURNSTILE_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!Peek().IsPunct("}")) {
      if (AtEnd()) {
        return Fail("unterminated class body");
      }
      if (MatchPunct(";")) {
        continue;
      }
      MatchKeyword("async");  // ignored modifier
      NodePtr method = NewNode(NodeKind::kMethodDef);
      if (!Peek().Is(TokenKind::kIdentifier) && !Peek().Is(TokenKind::kKeyword)) {
        return Fail("expected method name");
      }
      method->str = Advance().text;
      TURNSTILE_ASSIGN_OR_RETURN(params, ParseParams());
      TURNSTILE_ASSIGN_OR_RETURN(body, ParseBlock());
      method->children.push_back(std::move(params));
      method->children.push_back(std::move(body));
      cls->children.push_back(std::move(method));
    }
    Advance();  // }
    return cls;
  }

  Result<NodePtr> ParseParams() {
    NodePtr params = NewNode(NodeKind::kParams);
    TURNSTILE_RETURN_IF_ERROR(ExpectPunct("("));
    if (MatchPunct(")")) {
      return params;
    }
    while (true) {
      if (MatchPunct("...")) {
        if (!Peek().Is(TokenKind::kIdentifier)) {
          return Fail("expected rest parameter name");
        }
        NodePtr rest = NewNode(NodeKind::kRestParam);
        rest->str = Advance().text;
        params->children.push_back(std::move(rest));
      } else {
        if (!Peek().Is(TokenKind::kIdentifier)) {
          return Fail("expected parameter name");
        }
        NodePtr param = NewNode(NodeKind::kIdentifier);
        param->str = Advance().text;
        params->children.push_back(std::move(param));
      }
      if (MatchPunct(",")) {
        continue;
      }
      TURNSTILE_RETURN_IF_ERROR(ExpectPunct(")"));
      return params;
    }
  }

  Result<NodePtr> ParseBlock() {
    NodePtr block = NewNode(NodeKind::kBlockStmt);
    TURNSTILE_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!Peek().IsPunct("}")) {
      if (AtEnd()) {
        return Fail("unterminated block");
      }
      TURNSTILE_ASSIGN_OR_RETURN(stmt, ParseStatement());
      block->children.push_back(std::move(stmt));
    }
    Advance();  // }
    return block;
  }

  Result<NodePtr> ParseIfStatement() {
    NodePtr stmt = NewNode(NodeKind::kIfStmt);
    Advance();  // if
    TURNSTILE_RETURN_IF_ERROR(ExpectPunct("("));
    TURNSTILE_ASSIGN_OR_RETURN(cond, ParseExpression());
    TURNSTILE_RETURN_IF_ERROR(ExpectPunct(")"));
    TURNSTILE_ASSIGN_OR_RETURN(then_stmt, ParseStatement());
    stmt->children.push_back(std::move(cond));
    stmt->children.push_back(std::move(then_stmt));
    if (MatchKeyword("else")) {
      TURNSTILE_ASSIGN_OR_RETURN(else_stmt, ParseStatement());
      stmt->children.push_back(std::move(else_stmt));
    }
    return stmt;
  }

  Result<NodePtr> ParseWhileStatement() {
    NodePtr stmt = NewNode(NodeKind::kWhileStmt);
    Advance();  // while
    TURNSTILE_RETURN_IF_ERROR(ExpectPunct("("));
    TURNSTILE_ASSIGN_OR_RETURN(cond, ParseExpression());
    TURNSTILE_RETURN_IF_ERROR(ExpectPunct(")"));
    TURNSTILE_ASSIGN_OR_RETURN(body, ParseStatement());
    stmt->children.push_back(std::move(cond));
    stmt->children.push_back(std::move(body));
    return stmt;
  }

  Result<NodePtr> ParseForStatement() {
    SourceLocation loc = Peek().loc;
    Advance();  // for
    TURNSTILE_RETURN_IF_ERROR(ExpectPunct("("));

    // for-of: `for (let x of expr)`.
    if ((Peek().IsKeyword("let") || Peek().IsKeyword("const") || Peek().IsKeyword("var")) &&
        Peek(1).Is(TokenKind::kIdentifier) && Peek(2).IsKeyword("of")) {
      NodePtr stmt = NewNode(NodeKind::kForOfStmt);
      stmt->loc = loc;
      stmt->str = Advance().text;  // decl kind
      NodePtr var = NewNode(NodeKind::kIdentifier);
      var->str = Advance().text;
      Advance();  // of
      TURNSTILE_ASSIGN_OR_RETURN(iterable, ParseAssignment());
      TURNSTILE_RETURN_IF_ERROR(ExpectPunct(")"));
      TURNSTILE_ASSIGN_OR_RETURN(body, ParseStatement());
      stmt->children.push_back(std::move(var));
      stmt->children.push_back(std::move(iterable));
      stmt->children.push_back(std::move(body));
      return stmt;
    }

    NodePtr stmt = NewNode(NodeKind::kForStmt);
    stmt->loc = loc;
    // init
    if (Peek().IsPunct(";")) {
      stmt->children.push_back(NewNode(NodeKind::kEmpty));
      Advance();
    } else if (Peek().IsKeyword("let") || Peek().IsKeyword("const") || Peek().IsKeyword("var")) {
      TURNSTILE_ASSIGN_OR_RETURN(init, ParseVarDecl());
      stmt->children.push_back(std::move(init));
      TURNSTILE_RETURN_IF_ERROR(ExpectPunct(";"));
    } else {
      TURNSTILE_ASSIGN_OR_RETURN(init, ParseExpression());
      stmt->children.push_back(std::move(init));
      TURNSTILE_RETURN_IF_ERROR(ExpectPunct(";"));
    }
    // condition
    if (Peek().IsPunct(";")) {
      stmt->children.push_back(NewNode(NodeKind::kEmpty));
      Advance();
    } else {
      TURNSTILE_ASSIGN_OR_RETURN(cond, ParseExpression());
      stmt->children.push_back(std::move(cond));
      TURNSTILE_RETURN_IF_ERROR(ExpectPunct(";"));
    }
    // update
    if (Peek().IsPunct(")")) {
      stmt->children.push_back(NewNode(NodeKind::kEmpty));
      Advance();
    } else {
      TURNSTILE_ASSIGN_OR_RETURN(update, ParseExpression());
      stmt->children.push_back(std::move(update));
      TURNSTILE_RETURN_IF_ERROR(ExpectPunct(")"));
    }
    TURNSTILE_ASSIGN_OR_RETURN(body, ParseStatement());
    stmt->children.push_back(std::move(body));
    return stmt;
  }

  Result<NodePtr> ParseTryStatement() {
    NodePtr stmt = NewNode(NodeKind::kTryStmt);
    Advance();  // try
    TURNSTILE_ASSIGN_OR_RETURN(block, ParseBlock());
    stmt->children.push_back(std::move(block));
    if (MatchKeyword("catch")) {
      if (MatchPunct("(")) {
        if (!Peek().Is(TokenKind::kIdentifier)) {
          return Fail("expected catch parameter");
        }
        NodePtr param = NewNode(NodeKind::kIdentifier);
        param->str = Advance().text;
        stmt->children.push_back(std::move(param));
        TURNSTILE_RETURN_IF_ERROR(ExpectPunct(")"));
      } else {
        stmt->children.push_back(NewNode(NodeKind::kEmpty));
      }
      TURNSTILE_ASSIGN_OR_RETURN(catch_block, ParseBlock());
      stmt->children.push_back(std::move(catch_block));
    } else {
      stmt->children.push_back(NewNode(NodeKind::kEmpty));
      stmt->children.push_back(NewNode(NodeKind::kBlockStmt));
    }
    if (MatchKeyword("finally")) {
      TURNSTILE_ASSIGN_OR_RETURN(finally_block, ParseBlock());
      stmt->children.push_back(std::move(finally_block));
    } else {
      stmt->children.push_back(NewNode(NodeKind::kEmpty));
    }
    return stmt;
  }

  // ---- expressions ---------------------------------------------------------

  Result<NodePtr> ParseExpression() {
    TURNSTILE_ASSIGN_OR_RETURN(first, ParseAssignment());
    if (!Peek().IsPunct(",")) {
      return first;
    }
    NodePtr seq = NewNode(NodeKind::kSequenceExpr);
    seq->children.push_back(std::move(first));
    while (MatchPunct(",")) {
      TURNSTILE_ASSIGN_OR_RETURN(next, ParseAssignment());
      seq->children.push_back(std::move(next));
    }
    return seq;
  }

  // Checks whether the tokens starting at the current position form an arrow
  // function head: `ident =>` or `( ... ) =>` (with balanced parens).
  bool LooksLikeArrowFunction() const {
    size_t i = pos_;
    if (Peek().IsKeyword("async")) {
      ++i;
    }
    const Token& t0 = i < tokens_.size() ? tokens_[i] : tokens_.back();
    const Token& t1 = i + 1 < tokens_.size() ? tokens_[i + 1] : tokens_.back();
    if (t0.Is(TokenKind::kIdentifier) && t1.IsPunct("=>")) {
      return true;
    }
    if (!t0.IsPunct("(")) {
      return false;
    }
    int depth = 0;
    for (size_t j = i; j < tokens_.size(); ++j) {
      const Token& t = tokens_[j];
      if (t.IsPunct("(")) {
        ++depth;
      } else if (t.IsPunct(")")) {
        --depth;
        if (depth == 0) {
          return j + 1 < tokens_.size() && tokens_[j + 1].IsPunct("=>");
        }
      } else if (t.Is(TokenKind::kEndOfFile)) {
        return false;
      }
    }
    return false;
  }

  Result<NodePtr> ParseArrowFunction() {
    NodePtr fn = NewNode(NodeKind::kArrowFunction);
    if (MatchKeyword("async")) {
      fn->num = 1;
    }
    NodePtr params = NewNode(NodeKind::kParams);
    if (Peek().Is(TokenKind::kIdentifier)) {
      NodePtr param = NewNode(NodeKind::kIdentifier);
      param->str = Advance().text;
      params->children.push_back(std::move(param));
    } else {
      TURNSTILE_ASSIGN_OR_RETURN(parsed, ParseParams());
      params = std::move(parsed);
    }
    TURNSTILE_RETURN_IF_ERROR(ExpectPunct("=>"));
    fn->children.push_back(std::move(params));
    if (Peek().IsPunct("{")) {
      TURNSTILE_ASSIGN_OR_RETURN(body, ParseBlock());
      fn->children.push_back(std::move(body));
    } else {
      TURNSTILE_ASSIGN_OR_RETURN(body, ParseAssignment());
      fn->children.push_back(std::move(body));
    }
    return fn;
  }

  bool IsAssignOp(const Token& token) const {
    if (!token.Is(TokenKind::kPunct)) {
      return false;
    }
    static const char* kOps[] = {"=", "+=", "-=", "*=", "/=", "%=", "&&=", "||=", "?\?=",
                                 "&=", "|=", "^=", "<<=", ">>=", "**="};
    for (const char* op : kOps) {
      if (token.text == op) {
        return true;
      }
    }
    return false;
  }

  Result<NodePtr> ParseAssignment() {
    if (LooksLikeArrowFunction()) {
      return ParseArrowFunction();
    }
    TURNSTILE_ASSIGN_OR_RETURN(left, ParseConditional());
    if (!IsAssignOp(Peek())) {
      return left;
    }
    if (left->kind != NodeKind::kIdentifier && left->kind != NodeKind::kMemberExpr &&
        left->kind != NodeKind::kIndexExpr) {
      return Fail("invalid assignment target");
    }
    NodePtr assign = NewNode(NodeKind::kAssignExpr);
    assign->str = Advance().text;
    TURNSTILE_ASSIGN_OR_RETURN(value, ParseAssignment());
    assign->children.push_back(std::move(left));
    assign->children.push_back(std::move(value));
    return assign;
  }

  Result<NodePtr> ParseConditional() {
    TURNSTILE_ASSIGN_OR_RETURN(cond, ParseBinary(0));
    if (!Peek().IsPunct("?") ) {
      return cond;
    }
    Advance();
    NodePtr node = NewNode(NodeKind::kConditionalExpr);
    TURNSTILE_ASSIGN_OR_RETURN(then_expr, ParseAssignment());
    TURNSTILE_RETURN_IF_ERROR(ExpectPunct(":"));
    TURNSTILE_ASSIGN_OR_RETURN(else_expr, ParseAssignment());
    node->children.push_back(std::move(cond));
    node->children.push_back(std::move(then_expr));
    node->children.push_back(std::move(else_expr));
    return node;
  }

  // Operator precedence table for binary/logical operators (low to high).
  struct OpLevel {
    std::vector<const char*> ops;
    bool logical;
  };

  const std::vector<OpLevel>& Levels() const {
    static const std::vector<OpLevel> kLevels = {
        {{"??"}, true},
        {{"||"}, true},
        {{"&&"}, true},
        {{"|"}, false},
        {{"^"}, false},
        {{"&"}, false},
        {{"===", "!==", "==", "!="}, false},
        {{"<", ">", "<=", ">=", "in"}, false},
        {{"<<", ">>"}, false},
        {{"+", "-"}, false},
        {{"*", "/", "%"}, false},
        {{"**"}, false},
    };
    return kLevels;
  }

  bool PeekMatchesLevel(const OpLevel& level, std::string* matched) const {
    const Token& token = Peek();
    for (const char* op : level.ops) {
      if (token.IsPunct(op) || (std::string(op) == "in" && token.IsKeyword("in"))) {
        *matched = op;
        return true;
      }
    }
    return false;
  }

  Result<NodePtr> ParseBinary(size_t level_index) {
    const auto& levels = Levels();
    if (level_index >= levels.size()) {
      return ParseUnary();
    }
    TURNSTILE_ASSIGN_OR_RETURN(left, ParseBinary(level_index + 1));
    const OpLevel& level = levels[level_index];
    std::string op;
    while (PeekMatchesLevel(level, &op)) {
      Advance();
      NodePtr node = NewNode(level.logical ? NodeKind::kLogicalExpr : NodeKind::kBinaryExpr);
      node->str = op;
      TURNSTILE_ASSIGN_OR_RETURN(right, ParseBinary(level_index + 1));
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<NodePtr> ParseUnary() {
    const Token& token = Peek();
    if (token.IsPunct("!") || token.IsPunct("-") || token.IsPunct("+") || token.IsPunct("~") ||
        token.IsKeyword("typeof") || token.IsKeyword("delete")) {
      NodePtr node = NewNode(NodeKind::kUnaryExpr);
      node->str = Advance().text;
      TURNSTILE_ASSIGN_OR_RETURN(operand, ParseUnary());
      node->children.push_back(std::move(operand));
      return node;
    }
    if (token.IsKeyword("await")) {
      NodePtr node = NewNode(NodeKind::kAwaitExpr);
      Advance();
      TURNSTILE_ASSIGN_OR_RETURN(operand, ParseUnary());
      node->children.push_back(std::move(operand));
      return node;
    }
    if (token.IsPunct("++") || token.IsPunct("--")) {
      NodePtr node = NewNode(NodeKind::kUpdateExpr);
      node->str = Advance().text;
      node->num = 1;  // prefix
      TURNSTILE_ASSIGN_OR_RETURN(operand, ParseUnary());
      node->children.push_back(std::move(operand));
      return node;
    }
    return ParsePostfix();
  }

  Result<NodePtr> ParsePostfix() {
    TURNSTILE_ASSIGN_OR_RETURN(expr, ParseCallMember());
    if (Peek().IsPunct("++") || Peek().IsPunct("--")) {
      NodePtr node = NewNode(NodeKind::kUpdateExpr);
      node->str = Advance().text;
      node->num = 0;  // postfix
      node->children.push_back(std::move(expr));
      return node;
    }
    return expr;
  }

  Result<NodePtr> ParseArguments(NodePtr call) {
    TURNSTILE_RETURN_IF_ERROR(ExpectPunct("("));
    if (MatchPunct(")")) {
      return call;
    }
    while (true) {
      if (MatchPunct("...")) {
        NodePtr spread = NewNode(NodeKind::kSpreadElement);
        TURNSTILE_ASSIGN_OR_RETURN(arg, ParseAssignment());
        spread->children.push_back(std::move(arg));
        call->children.push_back(std::move(spread));
      } else {
        TURNSTILE_ASSIGN_OR_RETURN(arg, ParseAssignment());
        call->children.push_back(std::move(arg));
      }
      if (MatchPunct(",")) {
        continue;
      }
      TURNSTILE_RETURN_IF_ERROR(ExpectPunct(")"));
      return call;
    }
  }

  Result<NodePtr> ParseCallMember() {
    TURNSTILE_ASSIGN_OR_RETURN(expr, ParsePrimary());
    while (true) {
      if (Peek().IsPunct(".") || Peek().IsPunct("?.")) {
        bool optional = Peek().IsPunct("?.");
        Advance();
        if (!Peek().Is(TokenKind::kIdentifier) && !Peek().Is(TokenKind::kKeyword)) {
          return Fail("expected property name");
        }
        NodePtr member = NewNode(NodeKind::kMemberExpr);
        member->str = Advance().text;
        member->num = optional ? 1 : 0;
        member->children.push_back(std::move(expr));
        expr = std::move(member);
      } else if (Peek().IsPunct("[")) {
        Advance();
        NodePtr index = NewNode(NodeKind::kIndexExpr);
        TURNSTILE_ASSIGN_OR_RETURN(index_expr, ParseExpression());
        TURNSTILE_RETURN_IF_ERROR(ExpectPunct("]"));
        index->children.push_back(std::move(expr));
        index->children.push_back(std::move(index_expr));
        expr = std::move(index);
      } else if (Peek().IsPunct("(")) {
        NodePtr call = NewNode(NodeKind::kCallExpr);
        call->children.push_back(std::move(expr));
        TURNSTILE_ASSIGN_OR_RETURN(done, ParseArguments(std::move(call)));
        expr = std::move(done);
      } else {
        return expr;
      }
    }
  }

  Result<NodePtr> ParsePrimary() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kNumber: {
        NodePtr node = NewNode(NodeKind::kNumberLit);
        node->num = Advance().number;
        return node;
      }
      case TokenKind::kString: {
        NodePtr node = NewNode(NodeKind::kStringLit);
        node->str = Advance().text;
        return node;
      }
      case TokenKind::kIdentifier: {
        NodePtr node = NewNode(NodeKind::kIdentifier);
        node->str = Advance().text;
        return node;
      }
      case TokenKind::kKeyword: {
        const std::string& kw = token.text;
        if (kw == "true" || kw == "false") {
          NodePtr node = NewNode(NodeKind::kBoolLit);
          node->num = (kw == "true") ? 1 : 0;
          Advance();
          return node;
        }
        if (kw == "null") {
          NodePtr node = NewNode(NodeKind::kNullLit);
          Advance();
          return node;
        }
        if (kw == "undefined") {
          NodePtr node = NewNode(NodeKind::kUndefinedLit);
          Advance();
          return node;
        }
        if (kw == "this") {
          NodePtr node = NewNode(NodeKind::kThisExpr);
          Advance();
          return node;
        }
        if (kw == "function") {
          return ParseFunctionExpr(/*is_async=*/false);
        }
        if (kw == "async" && Peek(1).IsKeyword("function")) {
          Advance();
          return ParseFunctionExpr(/*is_async=*/true);
        }
        if (kw == "async" && LooksLikeArrowFunction()) {
          return ParseArrowFunction();
        }
        if (kw == "new") {
          return ParseNewExpr();
        }
        return Fail("unexpected keyword '" + kw + "' in expression");
      }
      case TokenKind::kPunct: {
        if (token.text == "(") {
          Advance();
          TURNSTILE_ASSIGN_OR_RETURN(expr, ParseExpression());
          TURNSTILE_RETURN_IF_ERROR(ExpectPunct(")"));
          return expr;
        }
        if (token.text == "[") {
          return ParseArrayLiteral();
        }
        if (token.text == "{") {
          return ParseObjectLiteral();
        }
        return Fail("unexpected token in expression");
      }
      case TokenKind::kEndOfFile:
        return Fail("unexpected end of input in expression");
    }
    return Fail("unexpected token");
  }

  Result<NodePtr> ParseFunctionExpr(bool is_async) {
    NodePtr fn = NewNode(NodeKind::kFunctionExpr);
    fn->num = is_async ? 1 : 0;
    Advance();  // function
    if (Peek().Is(TokenKind::kIdentifier)) {
      fn->str = Advance().text;
    }
    TURNSTILE_ASSIGN_OR_RETURN(params, ParseParams());
    TURNSTILE_ASSIGN_OR_RETURN(body, ParseBlock());
    fn->children.push_back(std::move(params));
    fn->children.push_back(std::move(body));
    return fn;
  }

  Result<NodePtr> ParseNewExpr() {
    NodePtr node = NewNode(NodeKind::kNewExpr);
    Advance();  // new
    // Callee: identifier with optional member accesses (no calls).
    TURNSTILE_ASSIGN_OR_RETURN(callee, ParsePrimary());
    while (Peek().IsPunct(".")) {
      Advance();
      if (!Peek().Is(TokenKind::kIdentifier)) {
        return Fail("expected property name after '.'");
      }
      NodePtr member = NewNode(NodeKind::kMemberExpr);
      member->str = Advance().text;
      member->children.push_back(std::move(callee));
      callee = std::move(member);
    }
    node->children.push_back(std::move(callee));
    if (Peek().IsPunct("(")) {
      TURNSTILE_ASSIGN_OR_RETURN(done, ParseArguments(std::move(node)));
      return done;
    }
    return node;
  }

  Result<NodePtr> ParseArrayLiteral() {
    NodePtr array = NewNode(NodeKind::kArrayLit);
    Advance();  // [
    if (MatchPunct("]")) {
      return array;
    }
    while (true) {
      if (MatchPunct("...")) {
        NodePtr spread = NewNode(NodeKind::kSpreadElement);
        TURNSTILE_ASSIGN_OR_RETURN(arg, ParseAssignment());
        spread->children.push_back(std::move(arg));
        array->children.push_back(std::move(spread));
      } else {
        TURNSTILE_ASSIGN_OR_RETURN(element, ParseAssignment());
        array->children.push_back(std::move(element));
      }
      if (MatchPunct(",")) {
        if (MatchPunct("]")) {  // trailing comma
          return array;
        }
        continue;
      }
      TURNSTILE_RETURN_IF_ERROR(ExpectPunct("]"));
      return array;
    }
  }

  Result<NodePtr> ParseObjectLiteral() {
    NodePtr object = NewNode(NodeKind::kObjectLit);
    Advance();  // {
    if (MatchPunct("}")) {
      return object;
    }
    while (true) {
      NodePtr prop = NewNode(NodeKind::kProperty);
      if (Peek().IsPunct("[")) {
        // Computed key: [expr]: value
        Advance();
        prop->num = 1;
        TURNSTILE_ASSIGN_OR_RETURN(key, ParseAssignment());
        TURNSTILE_RETURN_IF_ERROR(ExpectPunct("]"));
        TURNSTILE_RETURN_IF_ERROR(ExpectPunct(":"));
        TURNSTILE_ASSIGN_OR_RETURN(value, ParseAssignment());
        prop->children.push_back(std::move(key));
        prop->children.push_back(std::move(value));
      } else if (Peek().Is(TokenKind::kString)) {
        prop->str = Advance().text;
        TURNSTILE_RETURN_IF_ERROR(ExpectPunct(":"));
        TURNSTILE_ASSIGN_OR_RETURN(value, ParseAssignment());
        prop->children.push_back(std::move(value));
      } else if (Peek().Is(TokenKind::kIdentifier) || Peek().Is(TokenKind::kKeyword)) {
        prop->str = Advance().text;
        if (Peek().IsPunct("(")) {
          // Method shorthand: name(params) { ... }
          NodePtr fn = NewNode(NodeKind::kFunctionExpr);
          TURNSTILE_ASSIGN_OR_RETURN(params, ParseParams());
          TURNSTILE_ASSIGN_OR_RETURN(body, ParseBlock());
          fn->children.push_back(std::move(params));
          fn->children.push_back(std::move(body));
          prop->children.push_back(std::move(fn));
        } else if (MatchPunct(":")) {
          TURNSTILE_ASSIGN_OR_RETURN(value, ParseAssignment());
          prop->children.push_back(std::move(value));
        } else {
          // Shorthand: {a} means {a: a}.
          NodePtr value = NewNode(NodeKind::kIdentifier);
          value->str = prop->str;
          prop->children.push_back(std::move(value));
        }
      } else {
        return Fail("expected property name");
      }
      object->children.push_back(std::move(prop));
      if (MatchPunct(",")) {
        if (MatchPunct("}")) {  // trailing comma
          return object;
        }
        continue;
      }
      TURNSTILE_RETURN_IF_ERROR(ExpectPunct("}"));
      return object;
    }
  }

  std::vector<Token> tokens_;
  std::string source_name_;
  size_t pos_ = 0;
  int next_id_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view source, std::string source_name) {
  Stopwatch parse_watch;
  TURNSTILE_ASSIGN_OR_RETURN(tokens, Lex(source));
  Result<Program> program = Parser(std::move(tokens), std::move(source_name)).Run();
  obs::Metrics::Global()
      .GetHistogram("lang.parse_seconds")
      ->Observe(parse_watch.ElapsedSeconds());
  return program;
}

int RenumberNodes(Program* program) {
  int next_id = 0;
  ForEachNode(program->root, [&next_id](const NodePtr& node) { node->id = next_id++; });
  program->node_count = next_id;
  return next_id;
}

}  // namespace turnstile
