#include "src/lang/ast.h"

namespace turnstile {

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kProgram:
      return "Program";
    case NodeKind::kNumberLit:
      return "NumberLit";
    case NodeKind::kStringLit:
      return "StringLit";
    case NodeKind::kBoolLit:
      return "BoolLit";
    case NodeKind::kNullLit:
      return "NullLit";
    case NodeKind::kUndefinedLit:
      return "UndefinedLit";
    case NodeKind::kThisExpr:
      return "ThisExpr";
    case NodeKind::kIdentifier:
      return "Identifier";
    case NodeKind::kArrayLit:
      return "ArrayLit";
    case NodeKind::kObjectLit:
      return "ObjectLit";
    case NodeKind::kProperty:
      return "Property";
    case NodeKind::kFunctionExpr:
      return "FunctionExpr";
    case NodeKind::kArrowFunction:
      return "ArrowFunction";
    case NodeKind::kParams:
      return "Params";
    case NodeKind::kRestParam:
      return "RestParam";
    case NodeKind::kClassDecl:
      return "ClassDecl";
    case NodeKind::kMethodDef:
      return "MethodDef";
    case NodeKind::kCallExpr:
      return "CallExpr";
    case NodeKind::kNewExpr:
      return "NewExpr";
    case NodeKind::kMemberExpr:
      return "MemberExpr";
    case NodeKind::kIndexExpr:
      return "IndexExpr";
    case NodeKind::kBinaryExpr:
      return "BinaryExpr";
    case NodeKind::kLogicalExpr:
      return "LogicalExpr";
    case NodeKind::kUnaryExpr:
      return "UnaryExpr";
    case NodeKind::kUpdateExpr:
      return "UpdateExpr";
    case NodeKind::kAssignExpr:
      return "AssignExpr";
    case NodeKind::kConditionalExpr:
      return "ConditionalExpr";
    case NodeKind::kSpreadElement:
      return "SpreadElement";
    case NodeKind::kAwaitExpr:
      return "AwaitExpr";
    case NodeKind::kSequenceExpr:
      return "SequenceExpr";
    case NodeKind::kVarDecl:
      return "VarDecl";
    case NodeKind::kDeclarator:
      return "Declarator";
    case NodeKind::kExprStmt:
      return "ExprStmt";
    case NodeKind::kBlockStmt:
      return "BlockStmt";
    case NodeKind::kIfStmt:
      return "IfStmt";
    case NodeKind::kWhileStmt:
      return "WhileStmt";
    case NodeKind::kForStmt:
      return "ForStmt";
    case NodeKind::kForOfStmt:
      return "ForOfStmt";
    case NodeKind::kReturnStmt:
      return "ReturnStmt";
    case NodeKind::kBreakStmt:
      return "BreakStmt";
    case NodeKind::kContinueStmt:
      return "ContinueStmt";
    case NodeKind::kEmpty:
      return "Empty";
    case NodeKind::kFunctionDecl:
      return "FunctionDecl";
    case NodeKind::kTryStmt:
      return "TryStmt";
    case NodeKind::kThrowStmt:
      return "ThrowStmt";
  }
  return "Unknown";
}

bool Node::IsExpression() const {
  switch (kind) {
    case NodeKind::kNumberLit:
    case NodeKind::kStringLit:
    case NodeKind::kBoolLit:
    case NodeKind::kNullLit:
    case NodeKind::kUndefinedLit:
    case NodeKind::kThisExpr:
    case NodeKind::kIdentifier:
    case NodeKind::kArrayLit:
    case NodeKind::kObjectLit:
    case NodeKind::kFunctionExpr:
    case NodeKind::kArrowFunction:
    case NodeKind::kCallExpr:
    case NodeKind::kNewExpr:
    case NodeKind::kMemberExpr:
    case NodeKind::kIndexExpr:
    case NodeKind::kBinaryExpr:
    case NodeKind::kLogicalExpr:
    case NodeKind::kUnaryExpr:
    case NodeKind::kUpdateExpr:
    case NodeKind::kAssignExpr:
    case NodeKind::kConditionalExpr:
    case NodeKind::kSpreadElement:
    case NodeKind::kAwaitExpr:
    case NodeKind::kSequenceExpr:
      return true;
    default:
      return false;
  }
}

bool Node::IsFunctionLike() const {
  switch (kind) {
    case NodeKind::kFunctionExpr:
    case NodeKind::kArrowFunction:
    case NodeKind::kFunctionDecl:
    case NodeKind::kMethodDef:
      return true;
    default:
      return false;
  }
}

NodePtr MakeNode(NodeKind kind) { return std::make_shared<Node>(kind); }

NodePtr MakeNode(NodeKind kind, std::string str) {
  NodePtr node = std::make_shared<Node>(kind);
  node->str = std::move(str);
  return node;
}

NodePtr MakeNode(NodeKind kind, std::vector<NodePtr> children) {
  NodePtr node = std::make_shared<Node>(kind);
  node->children = std::move(children);
  return node;
}

NodePtr MakeNode(NodeKind kind, std::string str, std::vector<NodePtr> children) {
  NodePtr node = std::make_shared<Node>(kind);
  node->str = std::move(str);
  node->children = std::move(children);
  return node;
}

NodePtr MakeIdentifier(const std::string& name) {
  return MakeNode(NodeKind::kIdentifier, name);
}

NodePtr MakeStringLit(const std::string& value) {
  return MakeNode(NodeKind::kStringLit, value);
}

NodePtr MakeNumberLit(double value) {
  NodePtr node = MakeNode(NodeKind::kNumberLit);
  node->num = value;
  return node;
}

NodePtr MakeMember(NodePtr object, const std::string& property) {
  NodePtr node = MakeNode(NodeKind::kMemberExpr, property);
  node->children.push_back(std::move(object));
  return node;
}

NodePtr MakeCall(NodePtr callee, std::vector<NodePtr> args) {
  NodePtr node = MakeNode(NodeKind::kCallExpr);
  node->children.push_back(std::move(callee));
  for (NodePtr& arg : args) {
    node->children.push_back(std::move(arg));
  }
  return node;
}

NodePtr CloneTree(const NodePtr& node) {
  if (node == nullptr) {
    return nullptr;
  }
  NodePtr copy = std::make_shared<Node>(node->kind);
  copy->id = node->id;
  copy->loc = node->loc;
  copy->str = node->str;
  copy->num = node->num;
  copy->atom = node->atom;
  copy->hops = node->hops;
  copy->slot = node->slot;
  copy->frame_size = node->frame_size;
  copy->children.reserve(node->children.size());
  for (const NodePtr& child : node->children) {
    copy->children.push_back(CloneTree(child));
  }
  return copy;
}

void ForEachNode(const NodePtr& root, const std::function<void(const NodePtr&)>& fn) {
  if (root == nullptr) {
    return;
  }
  fn(root);
  for (const NodePtr& child : root->children) {
    ForEachNode(child, fn);
  }
}

}  // namespace turnstile
