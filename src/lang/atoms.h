#ifndef TURNSTILE_LANG_ATOMS_H_
#define TURNSTILE_LANG_ATOMS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace turnstile {

// Interned identifier / property-name handle. Atom 0 is always the empty
// string, so a zero-initialized Node trivially means "not yet interned".
using Atom = uint32_t;

inline constexpr Atom kAtomEmpty = 0;

// Returned by AtomTable::Find for strings that were never interned.
inline constexpr Atom kAtomInvalid = 0xFFFFFFFFu;

// Process-wide intern table. Identifier and property-name strings are interned
// once; everywhere downstream (AST annotations, environment bindings, object
// property maps, DIFT labeller keys) compares 32-bit atoms instead of hashing
// full strings. The table only grows — like the DIFT label space, entries live
// for the process lifetime. Not thread-safe; the runtime is single-threaded.
class AtomTable {
 public:
  static AtomTable& Global();

  Atom Intern(std::string_view name);

  // Non-inserting probe: the atom for `name`, or kAtomInvalid if it was never
  // interned. Lets read paths (property Has/Get with dynamic keys) avoid
  // growing the table.
  Atom Find(std::string_view name) const {
    auto it = index_.find(name);
    return it == index_.end() ? kAtomInvalid : it->second;
  }

  // Returns the canonical string for an atom. The reference is stable for the
  // process lifetime (storage is a deque, never reallocated element-wise).
  const std::string& NameOf(Atom atom) const;

  size_t size() const { return names_.size(); }

 private:
  AtomTable();

  std::deque<std::string> names_;
  std::unordered_map<std::string_view, Atom> index_;
};

inline Atom InternAtom(std::string_view name) {
  return AtomTable::Global().Intern(name);
}

inline const std::string& AtomName(Atom atom) {
  return AtomTable::Global().NameOf(atom);
}

}  // namespace turnstile

#endif  // TURNSTILE_LANG_ATOMS_H_
