#ifndef TURNSTILE_LANG_ATOMS_H_
#define TURNSTILE_LANG_ATOMS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace turnstile {

// Interned identifier / property-name handle. Atom 0 is always the empty
// string, so a zero-initialized Node trivially means "not yet interned".
using Atom = uint32_t;

inline constexpr Atom kAtomEmpty = 0;

// Returned by AtomTable::Find for strings that were never interned. Note the
// asymmetry with kAtomEmpty: Find("") returns kAtomEmpty (0), a valid atom —
// callers must compare against kAtomInvalid, never truthiness.
inline constexpr Atom kAtomInvalid = 0xFFFFFFFFu;

// Process-wide intern table. Identifier and property-name strings are interned
// once; everywhere downstream (AST annotations, environment bindings, object
// property maps, DIFT labeller keys) compares 32-bit atoms instead of hashing
// full strings. The table only grows — like the DIFT label space, entries live
// for the process lifetime.
//
// Concurrency: concurrent-read / seldom-write. Find and NameOf are lock-free
// (they sit on the property-access and tracked-invoke hot paths of every app
// instance); Intern takes a writer mutex. Strings live in fixed-size chunks
// whose slots are never moved once published, so NameOf references stay stable
// for the table's lifetime exactly as the old deque guaranteed. The lookup
// index is an open-addressed table published atomically; growth retires (but
// never frees) the previous index so in-flight readers stay valid.
class AtomTable {
 public:
  static AtomTable& Global();

  // Tests construct private tables; the runtime shares Global() so atoms mean
  // the same thing across every RuntimeContext in the process.
  AtomTable();
  ~AtomTable();
  AtomTable(const AtomTable&) = delete;
  AtomTable& operator=(const AtomTable&) = delete;

  Atom Intern(std::string_view name);

  // Non-inserting probe: the atom for `name`, or kAtomInvalid if it was never
  // interned. Lets read paths (property Has/Get with dynamic keys) avoid
  // growing the table. Lock-free.
  Atom Find(std::string_view name) const;

  // Returns the canonical string for an atom. The reference is stable for the
  // table's lifetime (chunked storage, slots never moved). Lock-free.
  const std::string& NameOf(Atom atom) const;

  size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  // 8192 strings per chunk, 4096 chunk slots -> 33.5M atoms before Intern
  // aborts; far below the kAtomInvalid sentinel so a valid atom can never
  // collide with it.
  static constexpr size_t kChunkShift = 13;
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;
  static constexpr size_t kMaxChunks = size_t{1} << 12;

  // Open-addressed hash index: slot value is atom+1 so 0 means empty.
  struct Index {
    explicit Index(size_t capacity)
        : mask(capacity - 1), slots(new std::atomic<uint32_t>[capacity]) {
      for (size_t i = 0; i < capacity; ++i) {
        slots[i].store(0, std::memory_order_relaxed);
      }
    }
    size_t mask;
    std::unique_ptr<std::atomic<uint32_t>[]> slots;
  };

  const std::string& SlotAt(Atom atom) const {
    return chunks_[atom >> kChunkShift].load(std::memory_order_acquire)[atom & (kChunkSize - 1)];
  }

  // Writer-side only (holds write_mu_): probe `index` for an empty slot and
  // publish atom there.
  static void IndexInsert(Index& index, size_t hash, Atom atom);

  std::atomic<std::string*> chunks_[kMaxChunks] = {};
  std::atomic<uint32_t> size_{0};
  std::atomic<Index*> index_{nullptr};

  std::mutex write_mu_;
  std::vector<std::unique_ptr<Index>> retired_;  // old indexes, freed with the table
};

inline Atom InternAtom(std::string_view name) {
  return AtomTable::Global().Intern(name);
}

inline const std::string& AtomName(Atom atom) {
  return AtomTable::Global().NameOf(atom);
}

}  // namespace turnstile

#endif  // TURNSTILE_LANG_ATOMS_H_
