#include "src/interp/interp.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "src/lang/resolve.h"
#include "src/runtime/context.h"
#include "src/support/logging.h"
#include "src/support/stopwatch.h"
#include "src/support/strings.h"
#include "src/vm/vm.h"

namespace turnstile {

// Evaluates an expression into `var`; propagates host errors upward and
// abrupt completions (throw) to the caller.
#define TS_EVAL(var, node, env)                                        \
  Value var;                                                           \
  {                                                                    \
    TURNSTILE_ASSIGN_OR_RETURN(var##_c, EvalExpression((node), (env))); \
    if (var##_c.IsAbrupt()) {                                          \
      return var##_c;                                                  \
    }                                                                  \
    var = std::move(var##_c.value);                                    \
  }

namespace {
constexpr int kMaxCallDepth = 400;

// One warning per process for a bad TURNSTILE_EXEC_TIER: every Interpreter
// construction re-probes the variable, and a misspelled tier would otherwise
// spam one line per instance (the corpus harness builds hundreds).
std::atomic<bool> g_exec_tier_warned{false};
}  // namespace

std::optional<ExecTier> ExecTierFromName(const char* name) {
  if (name == nullptr) {
    return std::nullopt;
  }
  if (std::strcmp(name, "bytecode") == 0) {
    return ExecTier::kBytecode;
  }
  if (std::strcmp(name, "bytecode-lowered") == 0) {
    return ExecTier::kBytecodeLowered;
  }
  if (std::strcmp(name, "treewalk") == 0) {
    return ExecTier::kTreeWalk;
  }
  return std::nullopt;
}

void ResetExecTierWarningForTest() { g_exec_tier_warned.store(false); }

Interpreter::Interpreter() : Interpreter(RuntimeContext::Default()) {}

Interpreter::Interpreter(RuntimeContext& context) : context_(&context) {
  // TURNSTILE_EXEC_TIER selects the execution tier ("treewalk" for the
  // reference oracle, "bytecode-lowered" for call-lowered DIFT, "bytecode"
  // for the fused default). Unrecognized spellings keep the default but warn
  // loudly once — a silently ignored "tree-walk" would invalidate a whole
  // differential run.
  const char* tier = std::getenv("TURNSTILE_EXEC_TIER");
  if (tier != nullptr) {
    std::optional<ExecTier> parsed = ExecTierFromName(tier);
    if (parsed.has_value()) {
      exec_tier_ = *parsed;
    } else if (!g_exec_tier_warned.exchange(true)) {
      TURNSTILE_LOG(Warning)
          << "unrecognized TURNSTILE_EXEC_TIER value \"" << tier
          << "\"; accepted values are \"bytecode\", \"bytecode-lowered\", and "
             "\"treewalk\" — keeping the bytecode default";
    }
  }
  global_env_ = std::make_shared<Environment>();
  // Honor TURNSTILE_TRACE / TURNSTILE_PROFILE before resolving handles so any
  // binary that constructs an interpreter picks up env-driven observability
  // (a no-op for isolated contexts: env vars bind to the default context).
  context.ApplyEnvObsConfig();
  trace_recorder_ = &context.trace_recorder();
  profiler_ = &context.profiler();
  obs::Metrics& metrics = context.metrics();
  metric_macrotasks_ = metrics.GetCounter("interp.macrotasks_executed");
  metric_microtasks_ = metrics.GetCounter("interp.microtasks_executed");
  metric_listeners_fired_ = metrics.GetCounter("interp.listeners_fired");
  metric_turn_seconds_ = metrics.GetHistogram("interp.turn_seconds");
  metric_vm_ops_ = metrics.GetCounter("vm.ops_executed");
  metric_vm_activation_ops_ = metrics.GetHistogram("vm.activation_ops");
  InstallBuiltins();
  InstallIoModules();
}

Interpreter::~Interpreter() = default;

Status Interpreter::RunProgram(const Program& program) {
  // Parsed (and instrumented/re-parsed) trees carry no resolution annotations
  // until someone runs the sema pass; do it here so every execution path —
  // harnesses, the flow engine, DIFT labellers — gets slot-indexed frames.
  if (!IsResolved(program)) {
    ResolveProgram(program);
  }
  TURNSTILE_ASSIGN_OR_RETURN(completion,
                             exec_tier_ != ExecTier::kTreeWalk
                                 ? vm::Vm::ExecuteProgram(*this, program.root, global_env_)
                                 : EvalStatement(program.root, global_env_));
  if (completion.kind == Completion::Kind::kThrow) {
    return RuntimeError("uncaught exception: " + completion.value.ToDisplayString());
  }
  return Status::Ok();
}

// --- events and tasks --------------------------------------------------------

void Interpreter::AddListener(const ObjectPtr& emitter, const std::string& event,
                              FunctionPtr listener) {
  listeners_[emitter.get()][event].push_back(std::move(listener));
}

bool Interpreter::HasListener(const ObjectPtr& emitter, const std::string& event) const {
  auto it = listeners_.find(emitter.get());
  if (it == listeners_.end()) {
    return false;
  }
  auto jt = it->second.find(event);
  return jt != it->second.end() && !jt->second.empty();
}

void Interpreter::EmitEvent(const ObjectPtr& emitter, const std::string& event,
                            std::vector<Value> args, double delay_s) {
  Task task;
  task.time = virtual_time_ + delay_s;
  task.seq = task_seq_++;
  task.trace_id = trace_recorder_->current_trace();
  task.emitter = emitter;
  task.event = event;
  task.args = std::move(args);
  macrotasks_[{task.time, task.seq}] = std::move(task);
}

Status Interpreter::ExecuteTask(const Task& task) {
  // Run the task under the trace it was enqueued from, so spans recorded by
  // flow nodes and DIFT ops downstream attribute to the injected message.
  obs::ScopedTrace trace_scope(*trace_recorder_, task.trace_id);
  if (task.fn != nullptr) {
    trace_recorder_->Record(obs::SpanKind::kLoopTurn, task.fn->name, "callback",
                            virtual_time_);
    obs::ScopedProfileSpan turn_span;
    if (profiler_->enabled()) {
      turn_span = obs::ScopedProfileSpan(
          profiler_, obs::SpanKind::kLoopTurn,
          task.fn->name.empty() ? "<anonymous>" : task.fn->name, /*monitor=*/false, "callback");
    }
    TURNSTILE_ASSIGN_OR_RETURN(unused, CallFunction(task.fn, Value::Undefined(), task.args));
    (void)unused;
    return Status::Ok();
  }
  // Event task: snapshot the current listener list (a listener may re-register
  // or remove itself while running).
  std::vector<FunctionPtr> fire;
  auto it = listeners_.find(task.emitter.get());
  if (it != listeners_.end()) {
    auto jt = it->second.find(task.event);
    if (jt != it->second.end()) {
      fire = jt->second;
    }
  }
  if (trace_recorder_->enabled()) {
    trace_recorder_->Record(obs::SpanKind::kLoopTurn, task.event,
                            std::to_string(fire.size()) + " listener(s)", virtual_time_);
  }
  obs::ScopedProfileSpan turn_span;
  if (profiler_->enabled()) {
    // Name flow-node turns "node:<id>" so per-node latency histograms (and
    // Perfetto lanes) key on the node; other emitters use their debug tag.
    std::string name;
    if (task.emitter != nullptr && task.emitter->debug_tag == "rednode") {
      name = "node:" + task.emitter->Get("id").ToDisplayString();
    } else if (task.emitter != nullptr && !task.emitter->debug_tag.empty()) {
      name = task.emitter->debug_tag + ":" + task.event;
    } else {
      name = "event:" + task.event;
    }
    turn_span = obs::ScopedProfileSpan(profiler_, obs::SpanKind::kLoopTurn, std::move(name),
                                       /*monitor=*/false,
                                       std::to_string(fire.size()) + " listener(s)");
  }
  metric_listeners_fired_->Increment(fire.size());
  for (const FunctionPtr& listener : fire) {
    TURNSTILE_ASSIGN_OR_RETURN(unused, CallFunction(listener, Value::Undefined(), task.args));
    (void)unused;
  }
  return Status::Ok();
}

void Interpreter::ScheduleTask(FunctionPtr fn, std::vector<Value> args, double delay_s) {
  Task task;
  task.time = virtual_time_ + delay_s;
  task.seq = task_seq_++;
  task.trace_id = trace_recorder_->current_trace();
  task.fn = std::move(fn);
  task.args = std::move(args);
  macrotasks_[{task.time, task.seq}] = std::move(task);
}

void Interpreter::ScheduleMicrotask(FunctionPtr fn, std::vector<Value> args) {
  Task task;
  task.time = virtual_time_;
  task.seq = task_seq_++;
  task.trace_id = trace_recorder_->current_trace();
  task.fn = std::move(fn);
  task.args = std::move(args);
  microtasks_.push_back(std::move(task));
}

Status Interpreter::DrainMicrotasks(int max_tasks) {
  int executed = 0;
  while (!microtasks_.empty()) {
    if (++executed > max_tasks) {
      return InternalError("microtask limit exceeded (possible livelock)");
    }
    Task task = std::move(microtasks_.front());
    microtasks_.pop_front();
    metric_microtasks_->Increment();
    obs::ScopedTrace trace_scope(*trace_recorder_, task.trace_id);
    obs::ScopedProfileSpan turn_span;
    if (profiler_->enabled()) {
      turn_span = obs::ScopedProfileSpan(
          profiler_, obs::SpanKind::kLoopTurn,
          task.fn->name.empty() ? "<anonymous>" : task.fn->name, /*monitor=*/false, "microtask");
    }
    TURNSTILE_ASSIGN_OR_RETURN(unused, CallFunction(task.fn, Value::Undefined(), task.args));
    (void)unused;
  }
  return Status::Ok();
}

Status Interpreter::RunEventLoop(int max_tasks) {
  int executed = 0;
  while (true) {
    TURNSTILE_RETURN_IF_ERROR(DrainMicrotasks());
    if (macrotasks_.empty()) {
      return Status::Ok();
    }
    if (++executed > max_tasks) {
      return InternalError("macrotask limit exceeded");
    }
    auto it = macrotasks_.begin();
    Task task = std::move(it->second);
    macrotasks_.erase(it);
    if (task.time > virtual_time_) {
      virtual_time_ = task.time;
    }
    metric_macrotasks_->Increment();
    Stopwatch turn_watch;
    TURNSTILE_RETURN_IF_ERROR(ExecuteTask(task));
    metric_turn_seconds_->Observe(turn_watch.ElapsedSeconds());
  }
}

// --- modules -----------------------------------------------------------------

void Interpreter::RegisterModule(const std::string& name,
                                 std::function<Value(Interpreter&)> factory) {
  module_factories_[name] = std::move(factory);
  module_cache_.erase(name);
}

Result<Value> Interpreter::RequireModule(const std::string& name) {
  auto cached = module_cache_.find(name);
  if (cached != module_cache_.end()) {
    return cached->second;
  }
  auto it = module_factories_.find(name);
  if (it == module_factories_.end()) {
    return NotFoundError("module not found: " + name);
  }
  Value module = it->second(*this);
  module_cache_[name] = module;
  return module;
}

// --- functions ---------------------------------------------------------------

FunctionPtr Interpreter::MakeClosure(const NodePtr& node, const EnvPtr& env) {
  BumpHeapWriteEpoch();  // fresh identity (see value.h epoch contract)
  FunctionPtr fn = std::make_shared<FunctionObject>();
  fn->name = node->str;
  fn->params = node->children[0];
  fn->body = node->children[1];
  fn->closure = env;
  fn->frame_size = node->frame_size;
  // Only function *expressions* carry a self-binding slot; on declarations
  // `slot` is the name's slot in the enclosing scope.
  fn->self_slot = node->kind == NodeKind::kFunctionExpr ? node->slot : -1;
  fn->is_arrow = node->kind == NodeKind::kArrowFunction;
  fn->is_async = node->num != 0;
  return fn;
}

Result<Value> Interpreter::CallFunction(const FunctionPtr& fn, const Value& this_value,
                                        std::vector<Value> args) {
  if (fn == nullptr) {
    return TypeError("value is not a function");
  }
  // Instrumenting profiler frame hook: one branch when disabled. Covers
  // natives (__dift.* dispatch included) and both execution tiers — this is
  // the single funnel every call goes through.
  obs::ScopedProfileFrame profile_frame;
  if (profiler_->enabled()) {
    profile_frame.Begin(profiler_, fn.get(), fn->name,
                        fn->body != nullptr ? static_cast<int>(fn->body->loc.line) : 0);
  }
  if (fn->IsNative()) {
    return fn->native(*this, this_value, args);
  }
  if (++call_depth_ > kMaxCallDepth) {
    --call_depth_;
    return RuntimeError("maximum call depth exceeded in " + fn->name);
  }
  EnvPtr call_env = Environment::MakeChild(fn->closure, fn->frame_size);
  // `this`: regular functions bind it per call; arrows inherit lexically (no
  // binding defined here, so lookup reaches the defining scope's binding).
  // Resolved frames keep `this` at slot 0 (see resolve.h).
  if (!fn->is_arrow) {
    const Value& this_binding = fn->has_bound_this ? fn->bound_this : this_value;
    if (fn->frame_size > 0) {
      call_env->slots[0] = this_binding;
    } else {
      call_env->Define("this", this_binding);
    }
  }
  // Named function expressions see themselves; parameters are written after so
  // a parameter reusing the name wins.
  if (fn->self_slot >= 0) {
    call_env->slots[static_cast<size_t>(fn->self_slot)] = Value(fn);
  }
  const auto& params = fn->params->children;
  size_t arg_index = 0;
  for (const NodePtr& param : params) {
    if (param->kind == NodeKind::kRestParam) {
      std::vector<Value> rest(args.begin() + static_cast<long>(std::min(arg_index, args.size())),
                              args.end());
      Value rest_array = Value(MakeArray(std::move(rest)));
      if (param->slot >= 0) {
        call_env->slots[static_cast<size_t>(param->slot)] = std::move(rest_array);
      } else {
        call_env->Define(param->str, std::move(rest_array));
      }
      break;
    }
    Value arg = arg_index < args.size() ? args[arg_index] : Value::Undefined();
    if (param->slot >= 0) {
      call_env->slots[static_cast<size_t>(param->slot)] = std::move(arg);
    } else {
      call_env->Define(param->str, std::move(arg));
    }
    ++arg_index;
  }
  Result<Completion> body_result =
      exec_tier_ != ExecTier::kTreeWalk
          ? vm::Vm::ExecuteFunctionBody(*this, *fn, call_env)
          : fn->body->kind == NodeKind::kBlockStmt ? EvalBlock(fn->body, call_env)
                                                   : EvalExpression(fn->body, call_env);
  --call_depth_;
  TURNSTILE_ASSIGN_OR_RETURN(completion, std::move(body_result));
  // Async functions deliver their result through an (already settled) promise.
  auto wrap = [this, &fn](Value v) -> Value {
    if (fn->is_async && !(v.IsObject() && v.AsObject()->Has("__promiseState"))) {
      return MakeResolvedPromise(*this, std::move(v));
    }
    return v;
  };
  switch (completion.kind) {
    case Completion::Kind::kNormal:
      // Arrow expression bodies return the expression value; block bodies
      // return undefined when falling off the end.
      return wrap(fn->body->kind == NodeKind::kBlockStmt ? Value::Undefined()
                                                         : completion.value);
    case Completion::Kind::kReturn:
      return wrap(completion.value);
    case Completion::Kind::kThrow:
      SetPendingThrow(completion.value);
      return RuntimeError("uncaught exception in " + (fn->name.empty() ? "<anonymous>" : fn->name) +
                          ": " + completion.value.ToDisplayString());
    default:
      return RuntimeError("illegal break/continue across function boundary");
  }
}

// Like CallFunction but keeps abrupt `throw` completions as completions so
// they propagate through MiniScript try/catch.
static Result<Completion> CallAsCompletion(Interpreter& interp, const FunctionPtr& fn,
                                           const Value& this_value, std::vector<Value> args);

// --- properties --------------------------------------------------------------

// Array and string method factories (implemented in builtins.cc).
FunctionPtr GetArrayMethod(const std::string& name);
FunctionPtr GetStringMethod(const std::string& name);
FunctionPtr GetFunctionMethod(const std::string& name);

Result<Value> Interpreter::GetProperty(const Value& object, Atom key) {
  if (object.IsObject()) {
    const ObjectPtr& obj = object.AsObject();
    if (obj->is_box) {
      return GetProperty(obj->box_payload, key);
    }
    auto it = obj->properties.find(key);
    if (it != obj->properties.end()) {
      return it->second;
    }
    if (obj->class_info != nullptr) {
      FunctionPtr method = obj->class_info->FindMethod(AtomName(key));
      if (method != nullptr) {
        return Value(method);
      }
    }
    return Value::Undefined();
  }
  // Arrays/strings/functions key their synthetic properties by name.
  return GetProperty(object, AtomName(key));
}

Result<Value> Interpreter::GetProperty(const Value& object, const std::string& key) {
  if (object.IsObject()) {
    const ObjectPtr& obj = object.AsObject();
    if (obj->is_box) {
      // Forward property access to the payload (e.g. boxedString.length).
      return GetProperty(obj->box_payload, key);
    }
    Atom atom = AtomTable::Global().Find(key);
    if (atom != kAtomInvalid) {
      auto it = obj->properties.find(atom);
      if (it != obj->properties.end()) {
        return it->second;
      }
    }
    if (obj->class_info != nullptr) {
      FunctionPtr method = obj->class_info->FindMethod(key);
      if (method != nullptr) {
        return Value(method);
      }
    }
    return Value::Undefined();
  }
  if (object.IsArray()) {
    if (key == "length") {
      return Value(static_cast<double>(object.AsArray()->elements.size()));
    }
    FunctionPtr method = GetArrayMethod(key);
    if (method != nullptr) {
      return Value(method);
    }
    // Numeric string keys index the array.
    char* end = nullptr;
    long index = std::strtol(key.c_str(), &end, 10);
    if (end != key.c_str() && *end == '\0') {
      const auto& elements = object.AsArray()->elements;
      if (index >= 0 && static_cast<size_t>(index) < elements.size()) {
        return elements[static_cast<size_t>(index)];
      }
    }
    return Value::Undefined();
  }
  if (object.IsString()) {
    if (key == "length") {
      return Value(static_cast<double>(object.AsString().size()));
    }
    FunctionPtr method = GetStringMethod(key);
    if (method != nullptr) {
      return Value(method);
    }
    return Value::Undefined();
  }
  if (object.IsFunction()) {
    FunctionPtr method = GetFunctionMethod(key);
    if (method != nullptr) {
      return Value(method);
    }
    return Value::Undefined();
  }
  if (object.IsNullish()) {
    return TypeError("cannot read property '" + key + "' of " +
                     (object.IsNull() ? "null" : "undefined"));
  }
  return Value::Undefined();  // number/bool property access
}

Status Interpreter::SetProperty(const Value& object, Atom key, Value value) {
  if (object.IsObject()) {
    const ObjectPtr& obj = object.AsObject();
    if (obj->is_box) {
      return SetProperty(obj->box_payload, key, std::move(value));
    }
    obj->Set(key, std::move(value));
    return Status::Ok();
  }
  return SetProperty(object, AtomName(key), std::move(value));
}

Status Interpreter::SetProperty(const Value& object, const std::string& key, Value value) {
  if (object.IsObject()) {
    const ObjectPtr& obj = object.AsObject();
    if (obj->is_box) {
      return SetProperty(obj->box_payload, key, std::move(value));
    }
    obj->Set(key, std::move(value));
    return Status::Ok();
  }
  if (object.IsArray()) {
    BumpHeapWriteEpoch();
    auto& elements = object.AsArray()->elements;
    if (key == "length") {
      size_t new_size = static_cast<size_t>(value.ToNumber());
      elements.resize(new_size);
      return Status::Ok();
    }
    char* end = nullptr;
    long index = std::strtol(key.c_str(), &end, 10);
    if (end != key.c_str() && *end == '\0' && index >= 0) {
      if (static_cast<size_t>(index) >= elements.size()) {
        elements.resize(static_cast<size_t>(index) + 1);
      }
      elements[static_cast<size_t>(index)] = std::move(value);
      return Status::Ok();
    }
    return Status::Ok();  // non-index properties on arrays are dropped
  }
  return TypeError("cannot set property '" + key + "' on a " + object.TypeName());
}

Value Interpreter::MakeError(const std::string& message) {
  ObjectPtr err = MakeObject();
  err->Set("message", Value(message));
  err->debug_tag = "error";
  return Value(err);
}

// --- identifier storage ------------------------------------------------------

Value* Interpreter::ResolveIdentPtr(const NodePtr& node, const EnvPtr& env) {
  if (node->hops >= 0) {
    // Resolved local: the frame chain mirrors the static scope chain by
    // construction, so `hops` parents up there is a frame with `slot` in range.
    Environment* frame = env.get();
    for (int32_t i = 0; i < node->hops; ++i) {
      frame = frame->parent.get();
    }
    return &frame->slots[static_cast<size_t>(node->slot)];
  }
  if (node->hops == kHopsGlobal) {
    // Globals (and unbound names — builtins, implicit globals) live in the
    // name-keyed global environment; probe it without walking the chain.
    return global_env_->LookupLocal(node->atom);
  }
  return env->Lookup(node->str);
}

// --- expression evaluation ---------------------------------------------------

Result<Completion> Interpreter::EvalArgs(const NodePtr& call, size_t first_index,
                                         const EnvPtr& env, std::vector<Value>* out) {
  for (size_t i = first_index; i < call->children.size(); ++i) {
    const NodePtr& arg_node = call->children[i];
    if (arg_node->kind == NodeKind::kSpreadElement) {
      TS_EVAL(spread, arg_node->children[0], env);
      Value unboxed = Unbox(spread);
      if (!unboxed.IsArray()) {
        return TypeError("spread argument is not an array");
      }
      for (const Value& element : unboxed.AsArray()->elements) {
        out->push_back(element);
      }
    } else {
      TS_EVAL(arg, arg_node, env);
      out->push_back(std::move(arg));
    }
  }
  return Completion::Normal();
}

Result<Completion> Interpreter::EvalCall(const NodePtr& node, const EnvPtr& env) {
  const NodePtr& callee = node->children[0];
  Value this_value = Value::Undefined();
  Value fn_value;
  if (callee->kind == NodeKind::kMemberExpr) {
    TS_EVAL(object, callee->children[0], env);
    if (callee->num != 0 && object.IsNullish()) {  // optional call a?.b()
      return Completion::Normal(Value::Undefined());
    }
    TURNSTILE_ASSIGN_OR_RETURN(member, callee->atom != kAtomEmpty
                                           ? GetProperty(object, callee->atom)
                                           : GetProperty(object, callee->str));
    this_value = object;
    fn_value = member;
  } else if (callee->kind == NodeKind::kIndexExpr) {
    TS_EVAL(object, callee->children[0], env);
    TS_EVAL(key, callee->children[1], env);
    TURNSTILE_ASSIGN_OR_RETURN(member, GetProperty(object, Unbox(key).ToDisplayString()));
    this_value = object;
    fn_value = member;
  } else {
    TS_EVAL(direct, callee, env);
    fn_value = direct;
  }
  std::vector<Value> args;
  {
    TURNSTILE_ASSIGN_OR_RETURN(c, EvalArgs(node, 1, env, &args));
    if (c.IsAbrupt()) {
      return c;
    }
  }
  return InvokeValue(fn_value, this_value, std::move(args), callee->str);
}

Result<Completion> Interpreter::InvokeValue(const Value& fn_value, const Value& this_value,
                                            std::vector<Value> args,
                                            const std::string& callee_name) {
  Value fn_unboxed = Unbox(fn_value);
  if (!fn_unboxed.IsFunction()) {
    return TypeError("'" + callee_name + "' is not a function (it is " +
                     std::string(fn_unboxed.TypeName()) + ")");
  }
  return CallAsCompletion(*this, fn_unboxed.AsFunction(), this_value, std::move(args));
}

Result<Completion> Interpreter::EvalNew(const NodePtr& node, const EnvPtr& env) {
  TS_EVAL(callee, node->children[0], env);
  std::vector<Value> args;
  {
    TURNSTILE_ASSIGN_OR_RETURN(c, EvalArgs(node, 1, env, &args));
    if (c.IsAbrupt()) {
      return c;
    }
  }
  return ConstructValue(callee, std::move(args));
}

Result<Completion> Interpreter::ConstructValue(const Value& callee, std::vector<Value> args) {
  Value fn_unboxed = Unbox(callee);
  if (!fn_unboxed.IsFunction()) {
    return TypeError("new target is not constructible");
  }
  const FunctionPtr& ctor = fn_unboxed.AsFunction();
  ObjectPtr instance = MakeObject();
  if (ctor->construct_class != nullptr) {
    instance->class_info = ctor->construct_class;
    FunctionPtr constructor = ctor->construct_class->FindMethod("constructor");
    if (constructor != nullptr) {
      TURNSTILE_ASSIGN_OR_RETURN(c, CallAsCompletion(*this, constructor, Value(instance),
                                                     std::move(args)));
      if (c.IsAbrupt()) {
        return c;
      }
    }
    return Completion::Normal(Value(instance));
  }
  // Plain / native function used as constructor: call with fresh `this`; if it
  // returns an object, that wins (lets natives like Promise produce their own).
  TURNSTILE_ASSIGN_OR_RETURN(c, CallAsCompletion(*this, ctor, Value(instance), std::move(args)));
  if (c.IsAbrupt()) {
    return c;
  }
  if (c.value.IsObject() || c.value.IsArray() || c.value.IsFunction()) {
    return Completion::Normal(c.value);
  }
  return Completion::Normal(Value(instance));
}

namespace {

// Loose equality (==): a pragmatic subset of the JS algorithm.
bool LooseEquals(const Value& a, const Value& b) {
  if (a.IsNullish() && b.IsNullish()) {
    return true;
  }
  if (a.IsNullish() || b.IsNullish()) {
    return false;
  }
  if (a.IsBool() || b.IsBool() || (a.IsNumber() && b.IsString()) ||
      (a.IsString() && b.IsNumber())) {
    double an = a.ToNumber();
    double bn = b.ToNumber();
    return an == bn && !std::isnan(an);
  }
  return a.StrictEquals(b);
}

int64_t ToInt(const Value& v) {
  double n = v.ToNumber();
  if (std::isnan(n) || std::isinf(n)) {
    return 0;
  }
  return static_cast<int64_t>(n);
}

}  // namespace

BinaryOp BinaryOpFromString(const std::string& op) {
  switch (op.size()) {
    case 1:
      switch (op[0]) {
        case '+': return BinaryOp::kAdd;
        case '-': return BinaryOp::kSub;
        case '*': return BinaryOp::kMul;
        case '/': return BinaryOp::kDiv;
        case '%': return BinaryOp::kMod;
        case '<': return BinaryOp::kLt;
        case '>': return BinaryOp::kGt;
        case '&': return BinaryOp::kBitAnd;
        case '|': return BinaryOp::kBitOr;
        case '^': return BinaryOp::kBitXor;
        default: return BinaryOp::kInvalid;
      }
    case 2:
      if (op == "**") return BinaryOp::kPow;
      if (op == "==") return BinaryOp::kLooseEq;
      if (op == "!=") return BinaryOp::kLooseNe;
      if (op == "<=") return BinaryOp::kLe;
      if (op == ">=") return BinaryOp::kGe;
      if (op == "<<") return BinaryOp::kShl;
      if (op == ">>") return BinaryOp::kShr;
      if (op == "in") return BinaryOp::kIn;
      return BinaryOp::kInvalid;
    case 3:
      if (op == "===") return BinaryOp::kStrictEq;
      if (op == "!==") return BinaryOp::kStrictNe;
      return BinaryOp::kInvalid;
    default:
      return BinaryOp::kInvalid;
  }
}

Result<Completion> Interpreter::EvalBinary(const std::string& op, const Value& left_in,
                                           const Value& right_in) {
  BinaryOp decoded = BinaryOpFromString(op);
  if (decoded == BinaryOp::kInvalid) {
    return UnimplementedError("binary operator " + op);
  }
  return EvalBinaryOp(decoded, left_in, right_in);
}

Result<Completion> Interpreter::EvalBinaryOp(BinaryOp op, const Value& left_in,
                                             const Value& right_in) {
  // Boxes are transparent to operators (the DIFT binaryOp API relies on this
  // when re-dispatching an instrumented operation).
  Value left = Unbox(left_in);
  Value right = Unbox(right_in);
  switch (op) {
    case BinaryOp::kAdd:
      if (left.IsString() || right.IsString()) {
        return Completion::Normal(Value(left.ToDisplayString() + right.ToDisplayString()));
      }
      return Completion::Normal(Value(left.ToNumber() + right.ToNumber()));
    case BinaryOp::kSub:
      return Completion::Normal(Value(left.ToNumber() - right.ToNumber()));
    case BinaryOp::kMul:
      return Completion::Normal(Value(left.ToNumber() * right.ToNumber()));
    case BinaryOp::kDiv:
      return Completion::Normal(Value(left.ToNumber() / right.ToNumber()));
    case BinaryOp::kMod:
      return Completion::Normal(Value(std::fmod(left.ToNumber(), right.ToNumber())));
    case BinaryOp::kPow:
      return Completion::Normal(Value(std::pow(left.ToNumber(), right.ToNumber())));
    case BinaryOp::kLooseEq:
      return Completion::Normal(Value(LooseEquals(left, right)));
    case BinaryOp::kLooseNe:
      return Completion::Normal(Value(!LooseEquals(left, right)));
    case BinaryOp::kStrictEq:
      return Completion::Normal(Value(left.StrictEquals(right)));
    case BinaryOp::kStrictNe:
      return Completion::Normal(Value(!left.StrictEquals(right)));
    case BinaryOp::kLt:
    case BinaryOp::kGt:
    case BinaryOp::kLe:
    case BinaryOp::kGe: {
      bool result = false;
      if (left.IsString() && right.IsString()) {
        int cmp = left.AsString().compare(right.AsString());
        result = op == BinaryOp::kLt   ? cmp < 0
                 : op == BinaryOp::kGt ? cmp > 0
                 : op == BinaryOp::kLe ? cmp <= 0
                                       : cmp >= 0;
      } else {
        double l = left.ToNumber();
        double r = right.ToNumber();
        result = op == BinaryOp::kLt   ? l < r
                 : op == BinaryOp::kGt ? l > r
                 : op == BinaryOp::kLe ? l <= r
                                       : l >= r;
      }
      return Completion::Normal(Value(result));
    }
    case BinaryOp::kBitAnd:
      return Completion::Normal(Value(static_cast<double>(ToInt(left) & ToInt(right))));
    case BinaryOp::kBitOr:
      return Completion::Normal(Value(static_cast<double>(ToInt(left) | ToInt(right))));
    case BinaryOp::kBitXor:
      return Completion::Normal(Value(static_cast<double>(ToInt(left) ^ ToInt(right))));
    case BinaryOp::kShl:
      return Completion::Normal(Value(static_cast<double>(ToInt(left) << (ToInt(right) & 63))));
    case BinaryOp::kShr:
      return Completion::Normal(Value(static_cast<double>(ToInt(left) >> (ToInt(right) & 63))));
    case BinaryOp::kIn:
      if (right.IsObject()) {
        return Completion::Normal(Value(right.AsObject()->Has(left.ToDisplayString())));
      }
      if (right.IsArray()) {
        size_t index = static_cast<size_t>(left.ToNumber());
        return Completion::Normal(Value(index < right.AsArray()->elements.size()));
      }
      return TypeError("'in' requires an object operand");
    case BinaryOp::kInvalid:
      break;
  }
  return UnimplementedError("binary operator");
}

Result<Completion> Interpreter::EvalAssignment(const NodePtr& node, const EnvPtr& env) {
  const NodePtr& target = node->children[0];
  const std::string& op = node->str;

  // Compute the new value. For compound ops, read the old value first.
  auto compute = [&](const Value& old_value) -> Result<Completion> {
    TS_EVAL(rhs, node->children[1], env);
    if (op == "=") {
      return Completion::Normal(rhs);
    }
    if (op == "&&=") {
      return Completion::Normal(old_value.Truthy() ? rhs : old_value);
    }
    if (op == "||=") {
      return Completion::Normal(old_value.Truthy() ? old_value : rhs);
    }
    if (op == "?\?=") {
      return Completion::Normal(old_value.IsNullish() ? rhs : old_value);
    }
    std::string base_op = op.substr(0, op.size() - 1);  // "+=" -> "+"
    return EvalBinary(base_op, old_value, rhs);
  };

  if (target->kind == NodeKind::kIdentifier) {
    // Resolve the storage location once; binding pointers stay valid across
    // the RHS evaluation (see environment.h), so the write needs no second
    // chain walk.
    Value* binding = ResolveIdentPtr(target, env);
    Value old_value;
    if (op != "=") {
      if (binding == nullptr) {
        return RuntimeError("assignment to undeclared variable " + target->str);
      }
      old_value = *binding;
    }
    TURNSTILE_ASSIGN_OR_RETURN(c, compute(old_value));
    if (c.IsAbrupt()) {
      return c;
    }
    if (binding != nullptr) {
      *binding = c.value;
    } else {
      // Implicit global definition (sloppy-mode JS); corpus apps rely on it
      // for framework-injected globals.
      global_env_->Define(target->str, c.value);
    }
    return Completion::Normal(c.value);
  }

  if (target->kind == NodeKind::kMemberExpr || target->kind == NodeKind::kIndexExpr) {
    TS_EVAL(object, target->children[0], env);
    std::string key;
    if (target->kind == NodeKind::kMemberExpr) {
      key = target->str;
    } else {
      TS_EVAL(key_value, target->children[1], env);
      key = Unbox(key_value).ToDisplayString();
    }
    Value old_value;
    if (op != "=") {
      TURNSTILE_ASSIGN_OR_RETURN(read, GetProperty(object, key));
      old_value = read;
    }
    TURNSTILE_ASSIGN_OR_RETURN(c, compute(old_value));
    if (c.IsAbrupt()) {
      return c;
    }
    TURNSTILE_RETURN_IF_ERROR(SetProperty(object, key, c.value));
    return Completion::Normal(c.value);
  }
  return TypeError("invalid assignment target");
}

Result<Completion> Interpreter::EvalExpression(const NodePtr& node, const EnvPtr& env) {
  ++eval_count_;
  switch (node->kind) {
    case NodeKind::kNumberLit:
      return Completion::Normal(Value(node->num));
    case NodeKind::kStringLit:
      return Completion::Normal(Value(node->str));
    case NodeKind::kBoolLit:
      return Completion::Normal(Value(node->num != 0));
    case NodeKind::kNullLit:
      return Completion::Normal(Value::Null());
    case NodeKind::kUndefinedLit:
      return Completion::Normal(Value::Undefined());
    case NodeKind::kThisExpr: {
      if (node->hops >= 0) {
        Environment* frame = env.get();
        for (int32_t i = 0; i < node->hops; ++i) {
          frame = frame->parent.get();
        }
        return Completion::Normal(frame->slots[0]);
      }
      Value* slot = env->Lookup("this");
      return Completion::Normal(slot != nullptr ? *slot : Value::Undefined());
    }
    case NodeKind::kIdentifier: {
      Value* binding = ResolveIdentPtr(node, env);
      if (binding == nullptr) {
        return RuntimeError("reference to undeclared variable " + node->str + " at " +
                            node->loc.ToString());
      }
      return Completion::Normal(*binding);
    }
    case NodeKind::kArrayLit: {
      std::vector<Value> elements;
      for (const NodePtr& element : node->children) {
        if (element->kind == NodeKind::kSpreadElement) {
          TS_EVAL(spread, element->children[0], env);
          Value unboxed = Unbox(spread);
          if (!unboxed.IsArray()) {
            return TypeError("spread element is not an array");
          }
          for (const Value& v : unboxed.AsArray()->elements) {
            elements.push_back(v);
          }
        } else {
          TS_EVAL(v, element, env);
          elements.push_back(std::move(v));
        }
      }
      return Completion::Normal(Value(MakeArray(std::move(elements))));
    }
    case NodeKind::kObjectLit: {
      ObjectPtr object = MakeObject();
      for (const NodePtr& prop : node->children) {
        if (prop->num != 0) {  // computed
          TS_EVAL(key_value, prop->children[0], env);
          TS_EVAL(computed, prop->children[1], env);
          object->Set(Unbox(key_value).ToDisplayString(), std::move(computed));
        } else {
          TS_EVAL(v, prop->children[0], env);
          // Static keys are pre-interned by the resolver; "" interns to
          // kAtomEmpty so the fallback is also correct for empty-string keys.
          if (prop->atom != kAtomEmpty) {
            object->Set(prop->atom, std::move(v));
          } else {
            object->Set(prop->str, std::move(v));
          }
        }
      }
      return Completion::Normal(Value(object));
    }
    case NodeKind::kFunctionExpr:
    case NodeKind::kArrowFunction:
      return Completion::Normal(Value(MakeClosure(node, env)));
    case NodeKind::kCallExpr:
      return EvalCall(node, env);
    case NodeKind::kNewExpr:
      return EvalNew(node, env);
    case NodeKind::kMemberExpr: {
      TS_EVAL(object, node->children[0], env);
      if (node->num != 0 && object.IsNullish()) {  // optional chaining
        return Completion::Normal(Value::Undefined());
      }
      if (node->atom != kAtomEmpty) {
        TURNSTILE_ASSIGN_OR_RETURN(v, GetProperty(object, node->atom));
        return Completion::Normal(v);
      }
      TURNSTILE_ASSIGN_OR_RETURN(v, GetProperty(object, node->str));
      return Completion::Normal(v);
    }
    case NodeKind::kIndexExpr: {
      TS_EVAL(object, node->children[0], env);
      TS_EVAL(key, node->children[1], env);
      TURNSTILE_ASSIGN_OR_RETURN(v, GetProperty(object, Unbox(key).ToDisplayString()));
      return Completion::Normal(v);
    }
    case NodeKind::kBinaryExpr: {
      TS_EVAL(left, node->children[0], env);
      TS_EVAL(right, node->children[1], env);
      return EvalBinary(node->str, left, right);
    }
    case NodeKind::kLogicalExpr: {
      TS_EVAL(left, node->children[0], env);
      if (node->str == "&&") {
        if (!left.Truthy()) {
          return Completion::Normal(left);
        }
      } else if (node->str == "||") {
        if (left.Truthy()) {
          return Completion::Normal(left);
        }
      } else {  // ??
        if (!left.IsNullish()) {
          return Completion::Normal(left);
        }
      }
      TS_EVAL(right, node->children[1], env);
      return Completion::Normal(right);
    }
    case NodeKind::kUnaryExpr: {
      if (node->str == "typeof") {
        // typeof tolerates undeclared identifiers; resolve the storage once
        // instead of a lookup followed by a full re-evaluation.
        if (node->children[0]->kind == NodeKind::kIdentifier) {
          Value* binding = ResolveIdentPtr(node->children[0], env);
          if (binding == nullptr) {
            return Completion::Normal(Value("undefined"));
          }
          return Completion::Normal(Value(Unbox(*binding).TypeName()));
        }
        TS_EVAL(v, node->children[0], env);
        return Completion::Normal(Value(Unbox(v).TypeName()));
      }
      if (node->str == "delete") {
        const NodePtr& target = node->children[0];
        if (target->kind == NodeKind::kMemberExpr || target->kind == NodeKind::kIndexExpr) {
          TS_EVAL(object, target->children[0], env);
          std::string key;
          if (target->kind == NodeKind::kMemberExpr) {
            key = target->str;
          } else {
            TS_EVAL(key_value, target->children[1], env);
            key = Unbox(key_value).ToDisplayString();
          }
          Value unboxed = Unbox(object);
          if (unboxed.IsObject()) {
            unboxed.AsObject()->Delete(key);
          }
          return Completion::Normal(Value(true));
        }
        return Completion::Normal(Value(false));
      }
      TS_EVAL(operand, node->children[0], env);
      Value v = Unbox(operand);
      if (node->str == "!") {
        return Completion::Normal(Value(!v.Truthy()));
      }
      if (node->str == "-") {
        return Completion::Normal(Value(-v.ToNumber()));
      }
      if (node->str == "+") {
        return Completion::Normal(Value(v.ToNumber()));
      }
      if (node->str == "~") {
        return Completion::Normal(Value(static_cast<double>(~ToInt(v))));
      }
      return UnimplementedError("unary operator " + node->str);
    }
    case NodeKind::kUpdateExpr: {
      const NodePtr& target = node->children[0];
      if (target->kind != NodeKind::kIdentifier && target->kind != NodeKind::kMemberExpr &&
          target->kind != NodeKind::kIndexExpr) {
        return TypeError("invalid update target");
      }
      // Desugar: evaluate old, compute new = old ± 1, store, return per fixity.
      Value old_value;
      if (target->kind == NodeKind::kIdentifier) {
        Value* binding = ResolveIdentPtr(target, env);
        if (binding == nullptr) {
          return RuntimeError("update of undeclared variable " + target->str);
        }
        old_value = *binding;
        double n = Unbox(old_value).ToNumber();
        double updated = node->str == "++" ? n + 1 : n - 1;
        *binding = Value(updated);
        return Completion::Normal(Value(node->num != 0 ? updated : n));
      }
      TS_EVAL(object, target->children[0], env);
      std::string key;
      if (target->kind == NodeKind::kMemberExpr) {
        key = target->str;
      } else {
        TS_EVAL(key_value, target->children[1], env);
        key = Unbox(key_value).ToDisplayString();
      }
      TURNSTILE_ASSIGN_OR_RETURN(read, GetProperty(object, key));
      double n = Unbox(read).ToNumber();
      double updated = node->str == "++" ? n + 1 : n - 1;
      TURNSTILE_RETURN_IF_ERROR(SetProperty(object, key, Value(updated)));
      return Completion::Normal(Value(node->num != 0 ? updated : n));
    }
    case NodeKind::kAssignExpr:
      return EvalAssignment(node, env);
    case NodeKind::kConditionalExpr: {
      TS_EVAL(cond, node->children[0], env);
      return EvalExpression(cond.Truthy() ? node->children[1] : node->children[2], env);
    }
    case NodeKind::kSpreadElement:
      return TypeError("spread element outside call/array context");
    case NodeKind::kAwaitExpr: {
      TS_EVAL(operand, node->children[0], env);
      return AwaitValue(operand);
    }
    case NodeKind::kSequenceExpr: {
      Value last;
      for (const NodePtr& part : node->children) {
        TS_EVAL(v, part, env);
        last = std::move(v);
      }
      return Completion::Normal(last);
    }
    default:
      return InternalError(std::string("EvalExpression on ") + NodeKindName(node->kind));
  }
}

Result<Completion> Interpreter::AwaitValue(const Value& operand) {
  // Promises are pass-through (matching the paper's dataflow treatment):
  // a settled promise yields its value; anything else awaits to itself.
  Value v = Unbox(operand);
  if (v.IsObject() && v.AsObject()->Has("__promiseState")) {
    TURNSTILE_RETURN_IF_ERROR(DrainMicrotasks());
    const ObjectPtr& promise = v.AsObject();
    std::string state = promise->Get("__promiseState").ToDisplayString();
    if (state == "fulfilled") {
      return Completion::Normal(promise->Get("__promiseValue"));
    }
    if (state == "rejected") {
      return Completion::Throw(promise->Get("__promiseValue"));
    }
    return RuntimeError("await on a pending promise (unsupported)");
  }
  return Completion::Normal(operand);
}

// --- statement evaluation ----------------------------------------------------

// JS function-declaration hoisting: function declarations that are immediate
// statements of a scope are callable before their textual position.
static void HoistFunctionDeclarations(Interpreter& interp, const NodePtr& scope_node,
                                      const EnvPtr& env);

Result<Completion> Interpreter::EvalBlock(const NodePtr& block, const EnvPtr& env) {
  // A resolved block that allocated no slots is transparent: the resolver did
  // not count it as a hop, so no Environment may be created for it. (It also
  // cannot contain function declarations, so skipping the hoist is safe.)
  if (block->slot == 0 && block->frame_size == 0) {
    for (const NodePtr& stmt : block->children) {
      TURNSTILE_ASSIGN_OR_RETURN(c, EvalStatement(stmt, env));
      if (c.IsAbrupt()) {
        return c;
      }
    }
    return Completion::Normal();
  }
  EnvPtr scope = Environment::MakeChild(env, block->frame_size);
  HoistFunctionDeclarations(*this, block, scope);
  for (const NodePtr& stmt : block->children) {
    TURNSTILE_ASSIGN_OR_RETURN(c, EvalStatement(stmt, scope));
    if (c.IsAbrupt()) {
      return c;
    }
  }
  return Completion::Normal();
}

Result<Completion> Interpreter::EvalStatement(const NodePtr& node, const EnvPtr& env) {
  ++eval_count_;
  switch (node->kind) {
    case NodeKind::kProgram: {
      HoistFunctionDeclarations(*this, node, env);
      for (const NodePtr& stmt : node->children) {
        TURNSTILE_ASSIGN_OR_RETURN(c, EvalStatement(stmt, env));
        if (c.IsAbrupt()) {
          return c;
        }
      }
      return Completion::Normal();
    }
    case NodeKind::kVarDecl: {
      for (const NodePtr& declarator : node->children) {
        Value init;
        if (!declarator->children.empty()) {
          TS_EVAL(v, declarator->children[0], env);
          init = std::move(v);
          if (init.IsFunction() && init.AsFunction()->name.empty()) {
            init.AsFunction()->name = declarator->str;
          }
        }
        if (declarator->slot >= 0) {
          env->slots[static_cast<size_t>(declarator->slot)] = std::move(init);
        } else {
          env->Define(declarator->str, std::move(init));
        }
      }
      return Completion::Normal();
    }
    case NodeKind::kExprStmt:
      return EvalExpression(node->children[0], env);
    case NodeKind::kBlockStmt:
      return EvalBlock(node, env);
    case NodeKind::kIfStmt: {
      TS_EVAL(cond, node->children[0], env);
      if (cond.Truthy()) {
        return EvalStatement(node->children[1], env);
      }
      if (node->children.size() > 2) {
        return EvalStatement(node->children[2], env);
      }
      return Completion::Normal();
    }
    case NodeKind::kWhileStmt: {
      while (true) {
        TS_EVAL(cond, node->children[0], env);
        if (!cond.Truthy()) {
          return Completion::Normal();
        }
        TURNSTILE_ASSIGN_OR_RETURN(c, EvalStatement(node->children[1], env));
        if (c.kind == Completion::Kind::kBreak) {
          return Completion::Normal();
        }
        if (c.kind == Completion::Kind::kReturn || c.kind == Completion::Kind::kThrow) {
          return c;
        }
      }
    }
    case NodeKind::kForStmt: {
      // Transparent for-header (no declarations): reuse the enclosing scope,
      // mirroring the resolver's hop counting.
      EnvPtr scope = node->slot == 0 && node->frame_size == 0
                         ? env
                         : Environment::MakeChild(env, node->frame_size);
      if (node->children[0]->kind != NodeKind::kEmpty) {
        TURNSTILE_ASSIGN_OR_RETURN(init, EvalStatement(node->children[0], scope));
        if (init.IsAbrupt()) {
          return init;
        }
      }
      while (true) {
        if (node->children[1]->kind != NodeKind::kEmpty) {
          TS_EVAL(cond, node->children[1], scope);
          if (!cond.Truthy()) {
            return Completion::Normal();
          }
        }
        TURNSTILE_ASSIGN_OR_RETURN(c, EvalStatement(node->children[3], scope));
        if (c.kind == Completion::Kind::kBreak) {
          return Completion::Normal();
        }
        if (c.kind == Completion::Kind::kReturn || c.kind == Completion::Kind::kThrow) {
          return c;
        }
        if (node->children[2]->kind != NodeKind::kEmpty) {
          TS_EVAL(update, node->children[2], scope);
          (void)update;
        }
      }
    }
    case NodeKind::kForOfStmt: {
      TS_EVAL(iterable_value, node->children[1], env);
      Value iterable = Unbox(iterable_value);
      std::vector<Value> items;
      if (iterable.IsArray()) {
        items = iterable.AsArray()->elements;  // copy: body may mutate
      } else if (iterable.IsString()) {
        for (char c : iterable.AsString()) {
          items.push_back(Value(std::string(1, c)));
        }
      } else {
        return TypeError("for-of target is not iterable");
      }
      const NodePtr& loop_var = node->children[0];
      for (const Value& item : items) {
        EnvPtr scope = Environment::MakeChild(env, node->frame_size);
        if (loop_var->slot >= 0) {
          scope->slots[static_cast<size_t>(loop_var->slot)] = item;
        } else {
          scope->Define(loop_var->str, item);
        }
        TURNSTILE_ASSIGN_OR_RETURN(c, EvalStatement(node->children[2], scope));
        if (c.kind == Completion::Kind::kBreak) {
          return Completion::Normal();
        }
        if (c.kind == Completion::Kind::kReturn || c.kind == Completion::Kind::kThrow) {
          return c;
        }
      }
      return Completion::Normal();
    }
    case NodeKind::kReturnStmt: {
      if (node->children.empty()) {
        return Completion::Return(Value::Undefined());
      }
      TS_EVAL(v, node->children[0], env);
      return Completion::Return(std::move(v));
    }
    case NodeKind::kBreakStmt:
      return Completion::Break();
    case NodeKind::kContinueStmt:
      return Completion::Continue();
    case NodeKind::kEmpty:
      return Completion::Normal();
    case NodeKind::kFunctionDecl: {
      Value closure = Value(MakeClosure(node, env));
      if (node->slot >= 0) {
        env->slots[static_cast<size_t>(node->slot)] = std::move(closure);
      } else {
        env->Define(node->str, std::move(closure));
      }
      return Completion::Normal();
    }
    case NodeKind::kClassDecl: {
      auto info = std::make_shared<ClassInfo>();
      info->name = node->str;
      if (node->children[0]->kind != NodeKind::kEmpty) {
        Value* super = ResolveIdentPtr(node->children[0], env);
        if (super == nullptr || !super->IsFunction() ||
            super->AsFunction()->construct_class == nullptr) {
          return TypeError("superclass " + node->children[0]->str + " is not a class");
        }
        info->superclass = super->AsFunction()->construct_class;
      }
      for (size_t i = 1; i < node->children.size(); ++i) {
        const NodePtr& method_node = node->children[i];
        FunctionPtr method = MakeClosure(method_node, env);
        info->methods[method_node->str] = method;
      }
      BumpHeapWriteEpoch();
      FunctionPtr ctor = std::make_shared<FunctionObject>();
      ctor->name = node->str;
      ctor->construct_class = info;
      // Calling the class object without `new` is a TypeError in JS; we model
      // the constructor function as a native that reports this.
      std::string class_name = node->str;
      ctor->native = [class_name](Interpreter&, const Value&,
                                  std::vector<Value>&) -> Result<Value> {
        return Interpreter::TypeError("class " + class_name + " must be called with new");
      };
      if (node->slot >= 0) {
        env->slots[static_cast<size_t>(node->slot)] = Value(ctor);
      } else {
        env->Define(node->str, Value(ctor));
      }
      return Completion::Normal();
    }
    case NodeKind::kTryStmt: {
      TURNSTILE_ASSIGN_OR_RETURN(result, EvalBlock(node->children[0], env));
      Completion outcome = result;
      if (outcome.kind == Completion::Kind::kThrow &&
          node->children[2]->kind == NodeKind::kBlockStmt) {
        // The try node carries the catch frame's size (see resolve.h).
        EnvPtr catch_env = Environment::MakeChild(env, node->frame_size);
        const NodePtr& param = node->children[1];
        if (param->kind != NodeKind::kEmpty) {
          if (param->slot >= 0) {
            catch_env->slots[static_cast<size_t>(param->slot)] = outcome.value;
          } else {
            catch_env->Define(param->str, outcome.value);
          }
        }
        TURNSTILE_ASSIGN_OR_RETURN(catch_result, EvalBlock(node->children[2], catch_env));
        outcome = catch_result;
      }
      if (node->children.size() > 3 && node->children[3]->kind == NodeKind::kBlockStmt) {
        TURNSTILE_ASSIGN_OR_RETURN(finally_result, EvalBlock(node->children[3], env));
        if (finally_result.IsAbrupt()) {
          return finally_result;  // finally overrides
        }
      }
      return outcome;
    }
    case NodeKind::kThrowStmt: {
      TS_EVAL(v, node->children[0], env);
      return Completion::Throw(std::move(v));
    }
    default:
      // Expression in statement position.
      return EvalExpression(node, env);
  }
}

// --- hoisting ----------------------------------------------------------------

static void HoistFunctionDeclarations(Interpreter& interp, const NodePtr& scope_node,
                                      const EnvPtr& env) {
  for (const NodePtr& stmt : scope_node->children) {
    if (stmt->kind == NodeKind::kFunctionDecl) {
      // EvalStatement re-defines the same closure at the declaration's
      // textual position; both definitions share this scope.
      auto result = interp.EvalStatement(stmt, env);
      (void)result;
    }
  }
}

// --- CallAsCompletion --------------------------------------------------------

static Result<Completion> CallAsCompletion(Interpreter& interp, const FunctionPtr& fn,
                                           const Value& this_value, std::vector<Value> args) {
  // CallFunction collapses a MiniScript `throw` into a Status plus a pending
  // thrown value; re-raise it here as a throw completion so an enclosing
  // MiniScript try/catch observes the original value.
  Result<Value> result = interp.CallFunction(fn, this_value, std::move(args));
  if (result.ok()) {
    return Completion::Normal(std::move(result).value());
  }
  Value thrown;
  if (interp.ConsumePendingThrow(&thrown)) {
    return Completion::Throw(std::move(thrown));
  }
  return result.status();
}

#undef TS_EVAL

}  // namespace turnstile
