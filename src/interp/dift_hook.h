// Fused-ISA entry points into the DIFT monitor.
//
// The bytecode compiler lowers recognized `__dift.*` call shapes onto
// dedicated labelled opcodes (kBinaryLabelled / kCheckSink / kCallLabelled,
// see src/vm/bytecode.h). Their dispatch arms call straight through this
// interface instead of routing via the `__dift` bridge object: no global
// lookup, no property load, no argument Value for the operator spelling, no
// native-call frame. The interpreter itself stays IFC-free — it only stores
// an opaque hook pointer that DiftTracker::Install() registers.
//
// Contract: every entry point must emit exactly the trace records, audit
// events, and tracker stats the equivalent call-lowered `__dift.*` native
// would, so CanonicalLog() stays byte-identical across execution tiers. Only
// the per-op profiling shape differs (a bare monitor-accounting window
// instead of a heap-named span).
#ifndef TURNSTILE_SRC_INTERP_DIFT_HOOK_H_
#define TURNSTILE_SRC_INTERP_DIFT_HOOK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/interp/value.h"
#include "src/support/status.h"

namespace turnstile {

enum class BinaryOp : uint8_t;  // src/interp/interp.h

class DiftHook {
 public:
  virtual ~DiftHook() = default;

  // `__dift.binaryOp(spelling, left, right)`: merge operand labels, evaluate
  // the operator, label the result. `op` is the compile-time decode of
  // `spelling` (kInvalid spellings surface the same UnimplementedError the
  // string API produces).
  virtual Result<Value> FusedBinary(const std::string& spelling, BinaryOp op,
                                    const Value& left, const Value& right) = 0;

  // `__dift.check(data, receiver)`: policy check against the "check" sink.
  // Returns the allowed/blocked verdict as a MiniScript boolean.
  virtual Result<Value> FusedCheck(const Value& data, const Value& receiver) = 0;

  // `__dift.invoke(target, func, [args...])`: labelled method invocation with
  // invoke-labeller resolution. The argument window is passed directly —
  // no intermediate array object is materialized.
  virtual Result<Value> FusedInvoke(const Value& target, const std::string& func,
                                    std::vector<Value> args) = 0;
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_INTERP_DIFT_HOOK_H_
