// Runtime value model for the MiniScript interpreter.
//
// MiniScript distinguishes value types (undefined, null, boolean, number,
// string) from reference types (object, array, function) — the distinction
// the paper's DIFT tracker relies on: reference types can be used directly as
// keys in the label map, while value types must be boxed (§4.4).
#ifndef TURNSTILE_SRC_INTERP_VALUE_H_
#define TURNSTILE_SRC_INTERP_VALUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "src/lang/ast.h"
#include "src/support/status.h"

namespace turnstile {

class Interpreter;
class Value;
struct Object;
struct ArrayObject;
struct FunctionObject;
struct Environment;

using ObjectPtr = std::shared_ptr<Object>;
using ArrayPtr = std::shared_ptr<ArrayObject>;
using FunctionPtr = std::shared_ptr<FunctionObject>;
using EnvPtr = std::shared_ptr<Environment>;

// Signature of a native (C++-implemented) function exposed to MiniScript.
using NativeFn =
    std::function<Result<Value>(Interpreter&, const Value& this_value, std::vector<Value>& args)>;

// Per-thread heap-mutation epoch. Bumped on every object property
// write/delete, array element mutation, and reference-type *destruction*
// (destruction rather than allocation: a recycled address must not inherit a
// stale cache entry keyed by its predecessor's identity pointer, and an
// address cannot be recycled without a free first — so bumping in the
// destructor covers reuse while letting caches survive pure allocation). The
// DIFT tracker's deep-label memo is valid only within one epoch; anything
// that mutates reachable heap shape through a path the tracker cannot
// observe must call BumpHeapWriteEpoch(). Thread-local: every app instance
// (interpreter + tracker) is confined to one thread, heap objects never cross
// instances, and the tracker's memo lives on the same thread as the heap it
// memoizes — so a plain per-thread increment keeps the write path free of
// atomics even with many instances running concurrently.
inline thread_local uint64_t g_heap_write_epoch = 0;
inline void BumpHeapWriteEpoch() { ++g_heap_write_epoch; }
inline uint64_t HeapWriteEpoch() { return g_heap_write_epoch; }

struct UndefinedTag {
  bool operator==(const UndefinedTag&) const { return true; }
};
struct NullTag {
  bool operator==(const NullTag&) const { return true; }
};

// A MiniScript runtime value. Copying is cheap (reference types share).
class Value {
 public:
  Value() : data_(UndefinedTag{}) {}
  static Value Undefined() { return Value(); }
  static Value Null() {
    Value v;
    v.data_ = NullTag{};
    return v;
  }
  Value(bool b) : data_(b) {}
  Value(double n) : data_(n) {}
  Value(int n) : data_(static_cast<double>(n)) {}
  Value(const char* s) : data_(std::make_shared<std::string>(s)) {}
  Value(std::string s) : data_(std::make_shared<std::string>(std::move(s))) {}
  Value(ObjectPtr o) : data_(std::move(o)) {}
  Value(ArrayPtr a) : data_(std::move(a)) {}
  Value(FunctionPtr f) : data_(std::move(f)) {}

  bool IsUndefined() const { return std::holds_alternative<UndefinedTag>(data_); }
  bool IsNull() const { return std::holds_alternative<NullTag>(data_); }
  bool IsNullish() const { return IsUndefined() || IsNull(); }
  bool IsBool() const { return std::holds_alternative<bool>(data_); }
  bool IsNumber() const { return std::holds_alternative<double>(data_); }
  bool IsString() const { return std::holds_alternative<std::shared_ptr<std::string>>(data_); }
  bool IsObject() const { return std::holds_alternative<ObjectPtr>(data_); }
  bool IsArray() const { return std::holds_alternative<ArrayPtr>(data_); }
  bool IsFunction() const { return std::holds_alternative<FunctionPtr>(data_); }
  // Value types require boxing in the DIFT label map.
  bool IsValueType() const { return !IsObject() && !IsArray() && !IsFunction(); }

  bool AsBool() const { return std::get<bool>(data_); }
  double AsNumber() const { return std::get<double>(data_); }
  const std::string& AsString() const { return *std::get<std::shared_ptr<std::string>>(data_); }
  const ObjectPtr& AsObject() const { return std::get<ObjectPtr>(data_); }
  const ArrayPtr& AsArray() const { return std::get<ArrayPtr>(data_); }
  const FunctionPtr& AsFunction() const { return std::get<FunctionPtr>(data_); }

  // Stable identity pointer for reference types (nullptr for value types).
  // Used as the key of the DIFT label map.
  const void* IdentityKey() const;

  // JS-like coercions.
  bool Truthy() const;
  double ToNumber() const;
  std::string ToDisplayString() const;  // console.log-style rendering
  const char* TypeName() const;         // typeof operator result

  // Strict equality (===). Reference types compare by identity.
  bool StrictEquals(const Value& other) const;

 private:
  std::variant<UndefinedTag, NullTag, bool, double, std::shared_ptr<std::string>, ObjectPtr,
               ArrayPtr, FunctionPtr>
      data_;
};

// Class metadata produced by `class` declarations.
struct ClassInfo {
  std::string name;
  std::unordered_map<std::string, FunctionPtr> methods;  // includes "constructor"
  std::shared_ptr<ClassInfo> superclass;

  // Walks the inheritance chain for a method.
  FunctionPtr FindMethod(const std::string& method_name) const;
};

// A heap object: ordered-insertion property map plus optional class metadata
// and optional proxy traps (used by the DIFT tracker to observe dynamic
// property creation/deletion, mirroring the paper's use of JS Proxy).
//
// Property keys are interned atoms: the map hashes a uint32_t and the
// insertion-order vector stores 4-byte handles instead of duplicating every
// key string. String-keyed convenience overloads intern on write and do a
// non-inserting table probe on read (a key that was never interned anywhere
// cannot be present).
struct Object {
  ~Object() { BumpHeapWriteEpoch(); }  // this address may now be recycled

  std::unordered_map<Atom, Value> properties;
  std::vector<Atom> insertion_order;  // keys in first-set order
  std::shared_ptr<ClassInfo> class_info;

  // Proxy traps: when set, property reads/writes are reported to the trap
  // after the underlying operation resolves. The trap must not re-enter the
  // interpreter.
  std::function<void(Object&, const std::string& key, const Value& value)> set_trap;
  std::function<void(Object&, const std::string& key)> delete_trap;

  // DIFT boxing support: a box carries exactly one value-type payload. Box
  // labels live inline on the box itself rather than in the tracker's label
  // store — boxes are tracker-created temporaries, so the store would only
  // accumulate dead entries. `box_labels` is an interned label-set handle
  // meaningful to the pool identified by `box_label_pool`; both are opaque
  // at this layer.
  bool is_box = false;
  Value box_payload;
  uint32_t box_labels = 0;
  const void* box_label_pool = nullptr;

  // Set for objects created by simulated I/O modules ("socket", "mqtt", ...),
  // used for diagnostics.
  std::string debug_tag;

  bool Has(Atom key) const { return properties.count(key) > 0; }
  bool Has(const std::string& key) const {
    Atom atom = AtomTable::Global().Find(key);
    return atom != kAtomInvalid && Has(atom);
  }
  Value Get(Atom key) const {
    auto it = properties.find(key);
    return it == properties.end() ? Value::Undefined() : it->second;
  }
  Value Get(const std::string& key) const {
    Atom atom = AtomTable::Global().Find(key);
    return atom == kAtomInvalid ? Value::Undefined() : Get(atom);
  }
  void Set(Atom key, Value value) {
    BumpHeapWriteEpoch();
    auto [it, inserted] = properties.insert_or_assign(key, std::move(value));
    if (inserted) {
      insertion_order.push_back(key);
    }
    if (set_trap) {
      set_trap(*this, AtomName(key), it->second);
    }
  }
  void Set(const std::string& key, Value value) {
    Set(InternAtom(key), std::move(value));
  }
  void Delete(Atom key) {
    BumpHeapWriteEpoch();
    if (properties.erase(key) > 0) {
      for (auto it = insertion_order.begin(); it != insertion_order.end(); ++it) {
        if (*it == key) {
          insertion_order.erase(it);
          break;
        }
      }
      if (delete_trap) {
        delete_trap(*this, AtomName(key));
      }
    }
  }
  void Delete(const std::string& key) {
    Atom atom = AtomTable::Global().Find(key);
    if (atom != kAtomInvalid) {
      Delete(atom);
    }
  }
};

// A JS-style array with identity.
struct ArrayObject {
  ~ArrayObject() { BumpHeapWriteEpoch(); }  // this address may now be recycled
  std::vector<Value> elements;
};

// A callable: either a MiniScript closure or a native function.
struct FunctionObject {
  ~FunctionObject() { BumpHeapWriteEpoch(); }  // this address may now be recycled
  std::string name;          // for diagnostics
  NodePtr params;            // kParams (closures only)
  NodePtr body;              // kBlockStmt or expression (closures only)
  EnvPtr closure;            // captured environment (closures only)
  // Resolution annotations copied from the function-like node (resolve.h):
  // frame_size > 0 means the call frame is slot-indexed (`this` at slot 0 for
  // non-arrows, parameters at their annotated slots). 0 means the dynamic
  // name-keyed calling convention (hand-built ASTs, resolved empty arrows —
  // both conventions coincide at zero slots).
  uint32_t frame_size = 0;
  int32_t self_slot = -1;    // named function expressions bind themselves here
  bool is_arrow = false;     // arrows inherit `this` from the closure
  bool is_async = false;     // async functions wrap returns in a promise
  Value bound_this;          // captured `this` for arrows / bound methods
  bool has_bound_this = false;
  std::shared_ptr<ClassInfo> construct_class;  // set for class constructors
  NativeFn native;           // set for native functions
  // True for natives that write to the outside world (fs.writeFile,
  // socket.write, ...). The DIFT tracker unwraps boxed arguments only for
  // these, matching the paper's "unwrapped upon writing to a sink".
  bool is_io_sink = false;

  bool IsNative() const { return static_cast<bool>(native); }
};

// Helpers.
ObjectPtr MakeObject();
ArrayPtr MakeArray(std::vector<Value> elements = {});
FunctionPtr MakeNativeFunction(std::string name, NativeFn fn);

// True when `value` is a DIFT box object.
bool IsBox(const Value& value);
// Unwraps one layer of boxing, or returns `value` unchanged.
Value Unbox(const Value& value);
// Fully unwraps nested boxes.
Value UnboxDeep(const Value& value);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_INTERP_VALUE_H_
