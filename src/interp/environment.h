// Lexical environments (scope chains) for the MiniScript interpreter.
//
// Each environment carries two stores:
//   - `slots`: a flat value frame indexed by the coordinates the resolver
//     (src/lang/resolve.h) annotated onto the AST. All statically resolved
//     locals live here; access is a parent-pointer walk plus a vector index,
//     no hashing.
//   - `bindings`: an atom-keyed name map. Only the global environment and
//     dynamically-evaluated code (hand-built ASTs that never went through
//     ResolveProgram) use it; native modules and the C++ embedding API define
//     and look up globals by name through it.
//
// The two stores are disjoint by construction: resolved code never defines
// names into `bindings` (except implicit globals, which go to the global
// environment), and the dynamic name-chain walk intentionally skips `slots`.
#ifndef TURNSTILE_SRC_INTERP_ENVIRONMENT_H_
#define TURNSTILE_SRC_INTERP_ENVIRONMENT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/lang/atoms.h"
#include "src/interp/value.h"

namespace turnstile {

struct Environment : std::enable_shared_from_this<Environment> {
  std::vector<Value> slots;                    // resolved frame (fixed size)
  std::unordered_map<Atom, Value> bindings;    // name-keyed dynamic/global store
  EnvPtr parent;

  static EnvPtr MakeChild(EnvPtr parent_env, uint32_t frame_size = 0) {
    EnvPtr env = std::make_shared<Environment>();
    env->parent = std::move(parent_env);
    if (frame_size > 0) {
      env->slots.resize(frame_size);
    }
    return env;
  }

  // Declares (or redeclares) a name-keyed binding in this scope.
  void Define(Atom atom, Value value) { bindings[atom] = std::move(value); }
  void Define(const std::string& name, Value value) {
    Define(InternAtom(name), std::move(value));
  }

  // Looks up this environment's name map only (no chain walk). Used for the
  // resolver's kHopsGlobal fast path against the global environment.
  Value* LookupLocal(Atom atom) {
    auto it = bindings.find(atom);
    return it == bindings.end() ? nullptr : &it->second;
  }

  // Looks up `atom` along the scope chain's name maps; returns nullptr when
  // unbound. Slots are invisible here by design (see file comment). Returned
  // pointers stay valid across later Define calls (unordered_map references
  // are stable) — callers may hold one across an RHS evaluation.
  Value* Lookup(Atom atom) {
    for (Environment* env = this; env != nullptr; env = env->parent.get()) {
      auto it = env->bindings.find(atom);
      if (it != env->bindings.end()) {
        return &it->second;
      }
    }
    return nullptr;
  }
  Value* Lookup(const std::string& name) { return Lookup(InternAtom(name)); }

  // Assigns to an existing binding with a single chain walk; returns false
  // when unbound.
  bool Assign(Atom atom, Value value) {
    Value* binding = Lookup(atom);
    if (binding == nullptr) {
      return false;
    }
    *binding = std::move(value);
    return true;
  }
  bool Assign(const std::string& name, Value value) {
    return Assign(InternAtom(name), std::move(value));
  }
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_INTERP_ENVIRONMENT_H_
