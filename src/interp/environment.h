// Lexical environments (scope chains) for the MiniScript interpreter.
#ifndef TURNSTILE_SRC_INTERP_ENVIRONMENT_H_
#define TURNSTILE_SRC_INTERP_ENVIRONMENT_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "src/interp/value.h"

namespace turnstile {

struct Environment : std::enable_shared_from_this<Environment> {
  std::unordered_map<std::string, Value> bindings;
  EnvPtr parent;

  static EnvPtr MakeChild(EnvPtr parent_env) {
    EnvPtr env = std::make_shared<Environment>();
    env->parent = std::move(parent_env);
    return env;
  }

  // Declares (or redeclares) a binding in this scope.
  void Define(const std::string& name, Value value) {
    bindings[name] = std::move(value);
  }

  // Looks up `name` along the scope chain; returns nullptr when unbound.
  Value* Lookup(const std::string& name) {
    for (Environment* env = this; env != nullptr; env = env->parent.get()) {
      auto it = env->bindings.find(name);
      if (it != env->bindings.end()) {
        return &it->second;
      }
    }
    return nullptr;
  }

  // Assigns to an existing binding; returns false when unbound.
  bool Assign(const std::string& name, Value value) {
    Value* slot = Lookup(name);
    if (slot == nullptr) {
      return false;
    }
    *slot = std::move(value);
    return true;
  }
};

}  // namespace turnstile

#endif  // TURNSTILE_SRC_INTERP_ENVIRONMENT_H_
