// Simulated I/O modules — the substitution for Node.js's fs/net/http/etc.
//
// The paper's taint sources and sinks are "all POSIX I/O interfaces" as seen
// through Node.js modules. We reproduce that boundary: every module here
// routes reads from a virtual world and records writes into IoWorld, so tests
// and benches can assert on exactly what left the application.
#include <cmath>

#include "src/interp/interp.h"
#include "src/support/strings.h"

namespace turnstile {

namespace {

Value Arg(const std::vector<Value>& args, size_t i) {
  return i < args.size() ? args[i] : Value::Undefined();
}

std::string Render(const Value& v) { return UnboxDeep(v).ToDisplayString(); }

// Finds the trailing callback argument, if any.
FunctionPtr TrailingCallback(const std::vector<Value>& args) {
  if (args.empty()) {
    return nullptr;
  }
  Value last = Unbox(args.back());
  return last.IsFunction() ? last.AsFunction() : nullptr;
}

}  // namespace

ObjectPtr MakeEmitterObject(Interpreter& interp, const std::string& tag) {
  ObjectPtr emitter = MakeObject();
  emitter->debug_tag = tag;
  std::weak_ptr<Object> weak = emitter;
  emitter->Set("on", Value(MakeNativeFunction(
      tag + ".on", [weak](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        ObjectPtr self = weak.lock();
        if (self == nullptr) {
          return Value::Undefined();
        }
        Value event = Unbox(Arg(args, 0));
        Value listener = Unbox(Arg(args, 1));
        if (!event.IsString() || !listener.IsFunction()) {
          return Interpreter::TypeError("on(event, listener) expects a string and a function");
        }
        in.AddListener(self, event.AsString(), listener.AsFunction());
        return Value(self);
      })));
  emitter->Set("once", emitter->Get("on"));
  interp.io_world().emitters[tag].push_back(emitter);
  return emitter;
}

namespace {

// Marks a native function value as an I/O sink (boxed DIFT arguments are
// unwrapped before such functions run).
Value SinkNative(std::string name, NativeFn fn) {
  FunctionPtr native = MakeNativeFunction(std::move(name), std::move(fn));
  native->is_io_sink = true;
  return Value(native);
}

// --- fs ----------------------------------------------------------------------

Value MakeFsModule(Interpreter& interp) {
  ObjectPtr fs = MakeObject();
  fs->debug_tag = "module:fs";

  fs->Set("readFileSync", Value(MakeNativeFunction(
      "fs.readFileSync", [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        std::string path = Render(Arg(args, 0));
        auto it = in.io_world().files.find(path);
        std::string content = it != in.io_world().files.end()
                                  ? it->second
                                  : "simulated-content:" + path;
        return Value(content);
      })));

  fs->Set("readFile", Value(MakeNativeFunction(
      "fs.readFile", [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        std::string path = Render(Arg(args, 0));
        FunctionPtr cb = TrailingCallback(args);
        auto it = in.io_world().files.find(path);
        std::string content = it != in.io_world().files.end()
                                  ? it->second
                                  : "simulated-content:" + path;
        if (cb != nullptr) {
          in.ScheduleTask(cb, {Value::Null(), Value(content)}, 0.0);
        }
        return Value::Undefined();
      })));

  fs->Set("writeFileSync", Value(MakeNativeFunction(
      "fs.writeFileSync", [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        std::string path = Render(Arg(args, 0));
        std::string data = Render(Arg(args, 1));
        in.io_world().files[path] = data;
        in.io_world().Record(in.VirtualNow(), "fs", "write", path, data);
        return Value::Undefined();
      })));

  fs->Set("writeFile", Value(MakeNativeFunction(
      "fs.writeFile", [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        std::string path = Render(Arg(args, 0));
        std::string data = Render(Arg(args, 1));
        in.io_world().files[path] = data;
        in.io_world().Record(in.VirtualNow(), "fs", "write", path, data);
        FunctionPtr cb = TrailingCallback(args);
        if (cb != nullptr && args.size() > 2) {
          in.ScheduleTask(cb, {Value::Null()}, 0.0);
        }
        return Value::Undefined();
      })));

  fs->Set("appendFile", fs->Get("writeFile"));
  fs->Get("writeFileSync").AsFunction()->is_io_sink = true;
  fs->Get("writeFile").AsFunction()->is_io_sink = true;

  fs->Set("createReadStream", Value(MakeNativeFunction(
      "fs.createReadStream",
      [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        std::string path = Render(Arg(args, 0));
        ObjectPtr stream = MakeEmitterObject(in, "fs.readStream");
        stream->Set("path", Value(path));
        // Synthetic chunked content arrives asynchronously.
        for (int chunk = 0; chunk < 3; ++chunk) {
          in.EmitEvent(stream, "data",
                       {Value("chunk" + std::to_string(chunk) + ":" + path)},
                       0.001 * (chunk + 1));
        }
        in.EmitEvent(stream, "end", {}, 0.004);
        return Value(stream);
      })));

  fs->Set("createWriteStream", Value(MakeNativeFunction(
      "fs.createWriteStream",
      [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        std::string path = Render(Arg(args, 0));
        ObjectPtr stream = MakeEmitterObject(in, "fs.writeStream");
        stream->Set("path", Value(path));
        stream->Set("write", SinkNative(
            "writeStream.write",
            [path](Interpreter& in2, const Value&, std::vector<Value>& a) -> Result<Value> {
              in2.io_world().Record(in2.VirtualNow(), "fs", "write", path, Render(Arg(a, 0)));
              return Value(true);
            }));
        stream->Set("end", SinkNative(
            "writeStream.end",
            [](Interpreter&, const Value&, std::vector<Value>&) -> Result<Value> {
              return Value::Undefined();
            }));
        return Value(stream);
      })));
  return Value(fs);
}

// --- net ---------------------------------------------------------------------

ObjectPtr MakeSocket(Interpreter& interp, const std::string& peer) {
  ObjectPtr socket = MakeEmitterObject(interp, "net.socket");
  socket->Set("remoteAddress", Value(peer));
  socket->Set("write", Value(MakeNativeFunction(
      "socket.write", [peer](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        in.io_world().Record(in.VirtualNow(), "net", "write", peer, Render(Arg(args, 0)));
        return Value(true);
      })));
  socket->Set("end", Value(MakeNativeFunction(
      "socket.end", [peer](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        if (!args.empty()) {
          in.io_world().Record(in.VirtualNow(), "net", "write", peer, Render(Arg(args, 0)));
        }
        return Value::Undefined();
      })));
  socket->Get("write").AsFunction()->is_io_sink = true;
  socket->Get("end").AsFunction()->is_io_sink = true;
  return socket;
}

Value MakeNetModule(Interpreter& interp) {
  ObjectPtr net = MakeObject();
  net->debug_tag = "module:net";
  net->Set("connect", Value(MakeNativeFunction(
      "net.connect", [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        std::string peer = Render(Arg(args, 1));
        if (peer == "undefined") {
          peer = "port:" + Render(Arg(args, 0));
        }
        ObjectPtr socket = MakeSocket(in, peer);
        in.EmitEvent(socket, "connect", {}, 0.0005);
        return Value(socket);
      })));
  net->Set("createServer", Value(MakeNativeFunction(
      "net.createServer",
      [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        ObjectPtr server = MakeEmitterObject(in, "net.server");
        Value handler = Unbox(Arg(args, 0));
        if (handler.IsFunction()) {
          in.AddListener(server, "connection", handler.AsFunction());
        }
        server->Set("listen", Value(MakeNativeFunction(
            "server.listen",
            [](Interpreter&, const Value& self, std::vector<Value>&) -> Result<Value> {
              return self;
            })));
        return Value(server);
      })));
  return Value(net);
}

// --- http --------------------------------------------------------------------

Value MakeHttpModule(Interpreter& interp) {
  ObjectPtr http = MakeObject();
  http->debug_tag = "module:http";

  http->Set("get", Value(MakeNativeFunction(
      "http.get", [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        std::string url = Render(Arg(args, 0));
        FunctionPtr cb = TrailingCallback(args);
        ObjectPtr response = MakeEmitterObject(in, "http.response");
        response->Set("statusCode", Value(200.0));
        response->Set("url", Value(url));
        if (cb != nullptr) {
          in.ScheduleTask(cb, {Value(response)}, 0.001);
        }
        in.EmitEvent(response, "data", {Value("http-body:" + url)}, 0.002);
        in.EmitEvent(response, "end", {}, 0.003);
        ObjectPtr request = MakeEmitterObject(in, "http.request");
        return Value(request);
      })));

  http->Set("request", Value(MakeNativeFunction(
      "http.request", [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        Value options = Unbox(Arg(args, 0));
        std::string host = "unknown-host";
        if (options.IsObject()) {
          Value h = options.AsObject()->Get("host");
          if (h.IsUndefined()) {
            h = options.AsObject()->Get("hostname");
          }
          if (!h.IsUndefined()) {
            host = Render(h);
          }
        } else if (options.IsString()) {
          host = options.AsString();
        }
        FunctionPtr cb = TrailingCallback(args);
        ObjectPtr response = MakeEmitterObject(in, "http.response");
        response->Set("statusCode", Value(200.0));
        if (cb != nullptr) {
          in.ScheduleTask(cb, {Value(response)}, 0.001);
        }
        in.EmitEvent(response, "data", {Value("http-body:" + host)}, 0.002);
        in.EmitEvent(response, "end", {}, 0.003);
        ObjectPtr request = MakeEmitterObject(in, "http.request");
        std::string peer = host;
        request->Set("write", SinkNative(
            "request.write",
            [peer](Interpreter& in2, const Value&, std::vector<Value>& a) -> Result<Value> {
              in2.io_world().Record(in2.VirtualNow(), "http", "request", peer, Render(Arg(a, 0)));
              return Value(true);
            }));
        request->Set("end", SinkNative(
            "request.end",
            [peer](Interpreter& in2, const Value&, std::vector<Value>& a) -> Result<Value> {
              if (!a.empty()) {
                in2.io_world().Record(in2.VirtualNow(), "http", "request", peer,
                                      Render(Arg(a, 0)));
              }
              return Value::Undefined();
            }));
        return Value(request);
      })));

  http->Set("createServer", Value(MakeNativeFunction(
      "http.createServer",
      [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        ObjectPtr server = MakeEmitterObject(in, "http.server");
        Value handler = Unbox(Arg(args, 0));
        if (handler.IsFunction()) {
          in.AddListener(server, "request", handler.AsFunction());
        }
        server->Set("listen", Value(MakeNativeFunction(
            "server.listen",
            [](Interpreter&, const Value& self, std::vector<Value>&) -> Result<Value> {
              return self;
            })));
        return Value(server);
      })));
  return Value(http);
}

// --- mqtt --------------------------------------------------------------------

Value MakeMqttModule(Interpreter& interp) {
  ObjectPtr mqtt = MakeObject();
  mqtt->debug_tag = "module:mqtt";
  mqtt->Set("connect", Value(MakeNativeFunction(
      "mqtt.connect", [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        std::string broker = Render(Arg(args, 0));
        ObjectPtr client = MakeEmitterObject(in, "mqtt.client");
        client->Set("broker", Value(broker));
        client->Set("publish", SinkNative(
            "mqtt.publish",
            [broker](Interpreter& in2, const Value&, std::vector<Value>& a) -> Result<Value> {
              in2.io_world().Record(in2.VirtualNow(), "mqtt", "publish",
                                    broker + "/" + Render(Arg(a, 0)), Render(Arg(a, 1)));
              return Value::Undefined();
            }));
        client->Set("subscribe", Value(MakeNativeFunction(
            "mqtt.subscribe",
            [](Interpreter&, const Value& self, std::vector<Value>&) -> Result<Value> {
              return self;
            })));
        in.EmitEvent(client, "connect", {}, 0.0005);
        return Value(client);
      })));
  return Value(mqtt);
}

// --- nodemailer (smtp) --------------------------------------------------------

Value MakeNodemailerModule(Interpreter& interp) {
  ObjectPtr mailer = MakeObject();
  mailer->debug_tag = "module:nodemailer";
  mailer->Set("createTransport", Value(MakeNativeFunction(
      "nodemailer.createTransport",
      [](Interpreter& in, const Value&, std::vector<Value>&) -> Result<Value> {
        ObjectPtr transport = MakeEmitterObject(in, "smtp.transport");
        transport->Set("sendMail", SinkNative(
            "transport.sendMail",
            [](Interpreter& in2, const Value&, std::vector<Value>& a) -> Result<Value> {
              Value opts = Unbox(Arg(a, 0));
              std::string to = "unknown";
              std::string body;
              if (opts.IsObject()) {
                to = Render(opts.AsObject()->Get("to"));
                Value attachments = opts.AsObject()->Get("attachments");
                if (!attachments.IsUndefined()) {
                  body = Render(attachments);
                } else {
                  body = Render(opts.AsObject()->Get("text"));
                }
              }
              in2.io_world().Record(in2.VirtualNow(), "smtp", "sendMail", to, body);
              FunctionPtr cb = TrailingCallback(a);
              if (cb != nullptr) {
                ObjectPtr info = MakeObject();
                info->Set("accepted", Value(MakeArray({Value(to)})));
                in2.ScheduleTask(cb, {Value::Null(), Value(info)}, 0.001);
              }
              return Value::Undefined();
            }));
        return Value(transport);
      })));
  return Value(mailer);
}

// --- sqlite3 -----------------------------------------------------------------

Value MakeSqliteModule(Interpreter& interp) {
  ObjectPtr sqlite = MakeObject();
  sqlite->debug_tag = "module:sqlite3";
  sqlite->Set("Database", Value(MakeNativeFunction(
      "sqlite3.Database",
      [](Interpreter& in, const Value& self, std::vector<Value>& args) -> Result<Value> {
        ObjectPtr db = self.IsObject() ? self.AsObject() : MakeObject();
        std::string path = Render(Arg(args, 0));
        db->debug_tag = "sqlite.db";
        db->Set("path", Value(path));
        db->Set("run", SinkNative(
            "db.run", [path](Interpreter& in2, const Value&, std::vector<Value>& a) -> Result<Value> {
              std::string sql = Render(Arg(a, 0));
              std::string params;
              if (a.size() > 1 && !Unbox(a[1]).IsFunction()) {
                params = Render(a[1]);
              }
              in2.io_world().Record(in2.VirtualNow(), "sqlite", "run", path,
                                    sql + (params.empty() ? "" : " <- " + params));
              FunctionPtr cb = TrailingCallback(a);
              if (cb != nullptr) {
                in2.ScheduleTask(cb, {Value::Null()}, 0.0005);
              }
              return Value::Undefined();
            }));
        db->Set("get", Value(MakeNativeFunction(
            "db.get", [](Interpreter& in2, const Value&, std::vector<Value>& a) -> Result<Value> {
              FunctionPtr cb = TrailingCallback(a);
              if (cb != nullptr) {
                ObjectPtr row = MakeObject();
                row->Set("id", Value(1.0));
                row->Set("value", Value("simulated-row"));
                in2.ScheduleTask(cb, {Value::Null(), Value(row)}, 0.0005);
              }
              return Value::Undefined();
            })));
        in.io_world().emitters["sqlite.db"].push_back(db);
        return Value(db);
      })));
  return Value(sqlite);
}

// --- deepstack (face recognition SaaS client) ---------------------------------

Value MakeDeepstackModule(Interpreter& interp) {
  ObjectPtr deepstack = MakeObject();
  deepstack->debug_tag = "module:deepstack";
  deepstack->Set("faceRecognition", Value(MakeNativeFunction(
      "deepstack.faceRecognition",
      [](Interpreter& in, const Value&, std::vector<Value>& args) -> Result<Value> {
        // Simulated recognizer: derives deterministic "predictions" from the
        // frame content so label functions see realistic variation.
        std::string frame = Render(Arg(args, 0));
        ObjectPtr result = MakeObject();
        std::vector<Value> predictions;
        uint64_t hash = 1469598103934665603ull;
        for (char c : frame) {
          hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ull;
        }
        int face_count = static_cast<int>(hash % 3);
        for (int i = 0; i < face_count; ++i) {
          ObjectPtr person = MakeObject();
          uint64_t h = hash >> (8 * (i + 1));
          person->Set("userid", Value("user" + std::to_string(h % 20)));
          person->Set("confidence", Value(0.5 + static_cast<double>(h % 50) / 100.0));
          predictions.push_back(Value(person));
        }
        result->Set("predictions", Value(MakeArray(std::move(predictions))));
        result->Set("success", Value(true));
        return MakeResolvedPromise(in, Value(result));
      })));
  return Value(deepstack);
}

}  // namespace

void Interpreter::InstallIoModules() {
  RegisterModule("fs", MakeFsModule);
  RegisterModule("net", MakeNetModule);
  RegisterModule("http", MakeHttpModule);
  RegisterModule("https", MakeHttpModule);
  RegisterModule("mqtt", MakeMqttModule);
  RegisterModule("nodemailer", MakeNodemailerModule);
  RegisterModule("sqlite3", MakeSqliteModule);
  RegisterModule("deepstack", MakeDeepstackModule);
}

}  // namespace turnstile
