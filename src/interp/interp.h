// Tree-walking interpreter for MiniScript with a virtual-time event loop and
// simulated I/O modules.
//
// The interpreter is the "runtime platform" substrate of the reproduction: it
// plays the role Node.js plays in the paper. Crucially it contains no IFC
// logic — the DIFT tracker (src/dift) is an ordinary native module registered
// into the global scope, mirroring the paper's platform-independence claim.
#ifndef TURNSTILE_SRC_INTERP_INTERP_H_
#define TURNSTILE_SRC_INTERP_INTERP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/interp/environment.h"
#include "src/interp/value.h"
#include "src/lang/ast.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace turnstile {

class RuntimeContext;  // src/runtime/context.h — the per-instance environment
class DiftHook;        // src/interp/dift_hook.h — fused-ISA monitor entry points

namespace vm {
class Vm;  // src/vm/vm.h — the bytecode dispatch loop
}  // namespace vm

// One observable side effect produced through a simulated I/O module (the
// runtime equivalent of a taint sink).
struct IoRecord {
  double time = 0.0;       // virtual seconds
  std::string channel;     // "fs", "net", "http", "mqtt", "smtp", "sqlite", "console"
  std::string op;          // "write", "sendMail", "publish", ...
  std::string detail;      // path / host / topic / recipient
  std::string payload;     // rendered written data
};

// The simulated outside world shared by all I/O modules.
struct IoWorld {
  std::unordered_map<std::string, std::string> files;  // virtual filesystem
  std::vector<IoRecord> records;                        // every sink write
  // Emitter objects created by modules, keyed by tag ("net.socket", ...), so
  // harnesses can push events into a running program.
  std::unordered_map<std::string, std::vector<ObjectPtr>> emitters;

  void Record(double time, std::string channel, std::string op, std::string detail,
              std::string payload) {
    records.push_back({time, std::move(channel), std::move(op), std::move(detail),
                       std::move(payload)});
  }
};

// Execution tiers. The bytecode tier (default) compiles resolved function
// bodies to register bytecode (src/vm) with `__dift.*` calls fused onto the
// labelled opcodes; the tree-walker is retained unchanged as the reference
// oracle (and as the escape hatch the VM uses for try/catch and class
// declarations); the bytecode-lowered tier keeps every `__dift.*` hook as an
// ordinary call, serving as the second differential oracle for the fused ISA.
// Selected per interpreter via the TURNSTILE_EXEC_TIER environment variable
// ("bytecode" / "bytecode-lowered" / "treewalk") or set_exec_tier().
enum class ExecTier { kBytecode, kTreeWalk, kBytecodeLowered };

// Parses a TURNSTILE_EXEC_TIER spelling ("bytecode", "bytecode-lowered",
// "treewalk"); nullopt for null or unrecognized input. Shared by the
// interpreter's environment probe and the CLI tools' --tier flags.
std::optional<ExecTier> ExecTierFromName(const char* name);

// Re-arms the one-time unrecognized-TURNSTILE_EXEC_TIER warning (tests only).
void ResetExecTierWarningForTest();

// Binary operators pre-decoded from their source spelling. Shared by the
// tree-walker (which decodes once per evaluation) and the bytecode compiler
// (which decodes once per compile and bakes the enum into the instruction).
enum class BinaryOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kMod, kPow,
  kLooseEq, kLooseNe, kStrictEq, kStrictNe,
  kLt, kGt, kLe, kGe,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kIn,
  kInvalid,
};

// kInvalid for unknown spellings.
BinaryOp BinaryOpFromString(const std::string& op);

// Statement/expression completion record (JS-style abrupt completions).
struct Completion {
  enum class Kind { kNormal, kReturn, kBreak, kContinue, kThrow };
  Kind kind = Kind::kNormal;
  Value value;

  static Completion Normal(Value v = Value::Undefined()) {
    return {Kind::kNormal, std::move(v)};
  }
  static Completion Return(Value v) { return {Kind::kReturn, std::move(v)}; }
  static Completion Break() { return {Kind::kBreak, Value::Undefined()}; }
  static Completion Continue() { return {Kind::kContinue, Value::Undefined()}; }
  static Completion Throw(Value v) { return {Kind::kThrow, std::move(v)}; }

  bool IsAbrupt() const { return kind != Kind::kNormal; }
};

class Interpreter {
 public:
  // Binds to the process-default RuntimeContext (today's behavior for tools,
  // benches and single-instance tests).
  Interpreter();
  // Binds to an explicit context: all observability handles (trace recorder,
  // profiler, metrics) resolve from it. `context` must outlive the
  // interpreter and every component constructed on top of it.
  explicit Interpreter(RuntimeContext& context);
  ~Interpreter();
  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  RuntimeContext& context() const { return *context_; }

  // Evaluates the top level of a program in the global scope. An uncaught
  // MiniScript exception or a host error is returned as a Status.
  Status RunProgram(const Program& program);

  // Runs queued macrotasks/microtasks until the queues drain or `max_tasks`
  // macrotasks have executed.
  Status RunEventLoop(int max_tasks = 100000);

  // Calls a MiniScript or native function from C++.
  Result<Value> CallFunction(const FunctionPtr& fn, const Value& this_value,
                             std::vector<Value> args);

  // --- event / task plumbing -------------------------------------------------

  // Registers `listener` for `event` on `emitter` (the `.on` mechanism).
  void AddListener(const ObjectPtr& emitter, const std::string& event, FunctionPtr listener);
  // Enqueues a macrotask firing all listeners of `event` at virtual `delay_s`
  // seconds from now.
  void EmitEvent(const ObjectPtr& emitter, const std::string& event, std::vector<Value> args,
                 double delay_s = 0.0);
  bool HasListener(const ObjectPtr& emitter, const std::string& event) const;
  // Schedules a bare callback macrotask.
  void ScheduleTask(FunctionPtr fn, std::vector<Value> args, double delay_s);
  // Schedules a microtask (runs before the next macrotask).
  void ScheduleMicrotask(FunctionPtr fn, std::vector<Value> args);

  double VirtualNow() const { return virtual_time_; }
  void AdvanceVirtualTime(double seconds) { virtual_time_ += seconds; }

  // --- environment access ----------------------------------------------------

  EnvPtr global_env() { return global_env_; }
  void DefineGlobal(const std::string& name, Value value) {
    global_env_->Define(name, std::move(value));
  }
  IoWorld& io_world() { return io_world_; }
  Rng& rng() { return rng_; }

  // Registers a module for `require(name)`. The factory runs once (cached).
  void RegisterModule(const std::string& name,
                      std::function<Value(Interpreter&)> factory);
  Result<Value> RequireModule(const std::string& name);

  // --- expression/statement evaluation (used by dift + tests) ---------------

  Result<Completion> EvalStatement(const NodePtr& node, const EnvPtr& env);
  Result<Completion> EvalExpression(const NodePtr& node, const EnvPtr& env);

  // Property access helpers shared with native modules. The Atom overloads are
  // the fast path for statically-known keys (resolved member expressions and
  // object-literal keys); they avoid re-hashing the key string on objects.
  Result<Value> GetProperty(const Value& object, const std::string& key);
  Result<Value> GetProperty(const Value& object, Atom key);
  Status SetProperty(const Value& object, const std::string& key, Value value);
  Status SetProperty(const Value& object, Atom key, Value value);

  // Creates a MiniScript error object ({ message }).
  Value MakeError(const std::string& message);

  // Applies a MiniScript binary operator to two already-evaluated values.
  // Exposed for the DIFT tracker's binaryOp API.
  Result<Completion> EvalBinary(const std::string& op, const Value& left, const Value& right);

  // Pre-decoded variant; the hot path for both tiers.
  Result<Completion> EvalBinaryOp(BinaryOp op, const Value& left, const Value& right);

  // --- tier-shared runtime helpers (used by the bytecode VM) ----------------

  // Unboxes `fn_value`, checks callability (TypeError names `callee_name`)
  // and calls it, keeping MiniScript `throw`s as throw completions.
  Result<Completion> InvokeValue(const Value& fn_value, const Value& this_value,
                                 std::vector<Value> args, const std::string& callee_name);
  // `new callee(...args)`: class construction or plain-function construction
  // with the returned-object-wins rule.
  Result<Completion> ConstructValue(const Value& callee, std::vector<Value> args);
  // `await operand`: settled promises yield their value (draining microtasks
  // first); anything else awaits to itself.
  Result<Completion> AwaitValue(const Value& operand);
  // Creates a closure from a function-like node capturing `env`.
  FunctionPtr MakeClosure(const NodePtr& node, const EnvPtr& env);

  // Execution-tier selection (see ExecTier). Affects RunProgram and calls to
  // MiniScript closures; EvalStatement/EvalExpression always tree-walk.
  ExecTier exec_tier() const { return exec_tier_; }
  void set_exec_tier(ExecTier tier) { exec_tier_ = tier; }

  // Fused-ISA monitor hook (see src/interp/dift_hook.h). Registered by
  // DiftTracker::Install(); null means labelled opcodes take their slow path
  // (the ordinary `__dift` bridge-object call), which is also how programs
  // without a tracker see the same undeclared-variable errors as the oracle
  // tiers. The hook must outlive every chunk execution (the tracker
  // deregisters itself on destruction).
  DiftHook* dift_hook() const { return dift_hook_; }
  void set_dift_hook(DiftHook* hook) { dift_hook_ = hook; }

  // Throws a host-level error carrying a MiniScript-visible message.
  static Status TypeError(const std::string& message) {
    return RuntimeError("TypeError: " + message);
  }

  // Total number of statements/expressions evaluated (a deterministic,
  // platform-independent work metric used by tests).
  uint64_t eval_count() const { return eval_count_; }

  // Exception plumbing: when CallFunction fails because the callee threw a
  // MiniScript value, the thrown value can be retrieved exactly once. Used to
  // re-raise the original value across native call boundaries.
  bool ConsumePendingThrow(Value* out) {
    if (!has_pending_throw_) {
      return false;
    }
    *out = std::move(pending_throw_);
    pending_throw_ = Value::Undefined();
    has_pending_throw_ = false;
    return true;
  }
  void SetPendingThrow(Value v) {
    pending_throw_ = std::move(v);
    has_pending_throw_ = true;
  }

 private:
  friend class vm::Vm;  // the bytecode dispatch loop shares the runtime internals

  struct Task {
    double time = 0.0;
    uint64_t seq = 0;
    uint64_t trace_id = 0;   // obs trace the task was enqueued under (0 = none)
    FunctionPtr fn;          // direct callback task …
    ObjectPtr emitter;       // … or an event task: listeners are resolved at
    std::string event;       //     fire time (so late .on() registration works)
    std::vector<Value> args;
  };

  Status ExecuteTask(const Task& task);

  Result<Completion> EvalBlock(const NodePtr& block, const EnvPtr& env);
  Result<Completion> EvalCall(const NodePtr& node, const EnvPtr& env);
  Result<Completion> EvalNew(const NodePtr& node, const EnvPtr& env);
  Result<Completion> EvalAssignment(const NodePtr& node, const EnvPtr& env);
  Result<Completion> EvalArgs(const NodePtr& call, size_t first_index, const EnvPtr& env,
                              std::vector<Value>* out);
  Status DrainMicrotasks(int max_tasks = 100000);

  // Locates the storage for an identifier use, honoring the resolver's
  // annotations: slot-indexed frame access for resolved locals, a direct
  // global-map probe for kHopsGlobal, and the dynamic name-chain walk for
  // unresolved trees. Returns nullptr for unbound names.
  Value* ResolveIdentPtr(const NodePtr& node, const EnvPtr& env);

  void InstallBuiltins();   // builtins.cc
  void InstallIoModules();  // modules.cc

  EnvPtr global_env_;
  IoWorld io_world_;
  Rng rng_{0x7457eeull};

  // The per-instance environment everything below resolves handles from.
  RuntimeContext* context_ = nullptr;

  // Observability handles, resolved once from context_ (hot paths must not
  // hash names or call through TU boundaries per task).
  obs::TraceRecorder* trace_recorder_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  obs::Counter* metric_macrotasks_ = nullptr;
  obs::Counter* metric_microtasks_ = nullptr;
  obs::Counter* metric_listeners_fired_ = nullptr;
  obs::Histogram* metric_turn_seconds_ = nullptr;
  // Bytecode-tier counters, cached here so the VM flush path (vm_execute.inc,
  // a friend) bills ops into this instance's registry.
  obs::Counter* metric_vm_ops_ = nullptr;
  obs::Histogram* metric_vm_activation_ops_ = nullptr;

  std::map<std::pair<double, uint64_t>, Task> macrotasks_;
  std::deque<Task> microtasks_;
  uint64_t task_seq_ = 0;
  double virtual_time_ = 0.0;
  uint64_t eval_count_ = 0;
  int call_depth_ = 0;
  ExecTier exec_tier_ = ExecTier::kBytecode;
  DiftHook* dift_hook_ = nullptr;
  Value pending_throw_;
  bool has_pending_throw_ = false;

  std::unordered_map<const Object*, std::unordered_map<std::string, std::vector<FunctionPtr>>>
      listeners_;
  std::unordered_map<std::string, std::function<Value(Interpreter&)>> module_factories_;
  std::unordered_map<std::string, Value> module_cache_;
};

// Creates a promise object already fulfilled with `value` (implemented in
// builtins.cc; used by simulated async I/O modules).
Value MakeResolvedPromise(Interpreter& interp, Value value);

// Creates an event-emitter object whose `.on(event, cb)` registers listeners
// with the interpreter (implemented in modules.cc).
ObjectPtr MakeEmitterObject(Interpreter& interp, const std::string& tag);

}  // namespace turnstile

#endif  // TURNSTILE_SRC_INTERP_INTERP_H_
