#include "src/interp/value.h"

#include <cmath>
#include <cstdlib>

#include "src/support/strings.h"

namespace turnstile {

FunctionPtr ClassInfo::FindMethod(const std::string& method_name) const {
  auto it = methods.find(method_name);
  if (it != methods.end()) {
    return it->second;
  }
  if (superclass != nullptr) {
    return superclass->FindMethod(method_name);
  }
  return nullptr;
}

const void* Value::IdentityKey() const {
  if (IsObject()) {
    return AsObject().get();
  }
  if (IsArray()) {
    return AsArray().get();
  }
  if (IsFunction()) {
    return AsFunction().get();
  }
  return nullptr;
}

bool Value::Truthy() const {
  if (IsUndefined() || IsNull()) {
    return false;
  }
  if (IsBool()) {
    return AsBool();
  }
  if (IsNumber()) {
    double n = AsNumber();
    return n != 0.0 && !std::isnan(n);
  }
  if (IsString()) {
    return !AsString().empty();
  }
  if (IsObject() && AsObject()->is_box) {
    return AsObject()->box_payload.Truthy();
  }
  return true;  // objects/arrays/functions
}

double Value::ToNumber() const {
  if (IsNumber()) {
    return AsNumber();
  }
  if (IsBool()) {
    return AsBool() ? 1.0 : 0.0;
  }
  if (IsNull()) {
    return 0.0;
  }
  if (IsString()) {
    const std::string& s = AsString();
    if (StrTrim(s).empty()) {
      return 0.0;
    }
    char* end = nullptr;
    double n = std::strtod(s.c_str(), &end);
    while (*end != '\0' && std::isspace(static_cast<unsigned char>(*end))) {
      ++end;
    }
    if (*end != '\0') {
      return std::nan("");
    }
    return n;
  }
  if (IsObject() && AsObject()->is_box) {
    return AsObject()->box_payload.ToNumber();
  }
  return std::nan("");
}

std::string Value::ToDisplayString() const {
  if (IsUndefined()) {
    return "undefined";
  }
  if (IsNull()) {
    return "null";
  }
  if (IsBool()) {
    return AsBool() ? "true" : "false";
  }
  if (IsNumber()) {
    return NumberToString(AsNumber());
  }
  if (IsString()) {
    return AsString();
  }
  if (IsArray()) {
    std::string out = "[";
    const auto& elements = AsArray()->elements;
    for (size_t i = 0; i < elements.size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += elements[i].ToDisplayString();
    }
    out += "]";
    return out;
  }
  if (IsFunction()) {
    return "[function " + AsFunction()->name + "]";
  }
  const ObjectPtr& obj = AsObject();
  if (obj->is_box) {
    return obj->box_payload.ToDisplayString();
  }
  std::string out = "{ ";
  bool first = true;
  for (Atom key : obj->insertion_order) {
    auto it = obj->properties.find(key);
    if (it == obj->properties.end()) {
      continue;
    }
    if (!first) {
      out += ", ";
    }
    first = false;
    out += AtomName(key);
    out += ": ";
    if (it->second.IsString()) {
      out += "\"" + it->second.AsString() + "\"";
    } else {
      out += it->second.ToDisplayString();
    }
  }
  out += first ? "}" : " }";
  return out;
}

const char* Value::TypeName() const {
  if (IsUndefined()) {
    return "undefined";
  }
  if (IsNull()) {
    return "object";  // JS quirk, preserved
  }
  if (IsBool()) {
    return "boolean";
  }
  if (IsNumber()) {
    return "number";
  }
  if (IsString()) {
    return "string";
  }
  if (IsFunction()) {
    return "function";
  }
  return "object";
}

bool Value::StrictEquals(const Value& other) const {
  if (IsUndefined()) {
    return other.IsUndefined();
  }
  if (IsNull()) {
    return other.IsNull();
  }
  if (IsBool() && other.IsBool()) {
    return AsBool() == other.AsBool();
  }
  if (IsNumber() && other.IsNumber()) {
    return AsNumber() == other.AsNumber();
  }
  if (IsString() && other.IsString()) {
    return AsString() == other.AsString();
  }
  if (IdentityKey() != nullptr) {
    return IdentityKey() == other.IdentityKey();
  }
  return false;
}

ObjectPtr MakeObject() {
  return std::make_shared<Object>();
}

ArrayPtr MakeArray(std::vector<Value> elements) {
  ArrayPtr array = std::make_shared<ArrayObject>();
  array->elements = std::move(elements);
  return array;
}

FunctionPtr MakeNativeFunction(std::string name, NativeFn fn) {
  FunctionPtr function = std::make_shared<FunctionObject>();
  function->name = std::move(name);
  function->native = std::move(fn);
  return function;
}

bool IsBox(const Value& value) { return value.IsObject() && value.AsObject()->is_box; }

Value Unbox(const Value& value) {
  if (IsBox(value)) {
    return value.AsObject()->box_payload;
  }
  return value;
}

Value UnboxDeep(const Value& value) {
  Value current = value;
  while (IsBox(current)) {
    current = current.AsObject()->box_payload;
  }
  return current;
}

}  // namespace turnstile
